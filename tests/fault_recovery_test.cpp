// Fault-injection framework tests (ctest label: faults): injector plan
// semantics and determinism, fabric-level fault records and injections
// (IOMMU drops, lost completions, link degradation), and the reorder
// buffer's stale-completion absorption that backs the streamer's watchdog.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "pcie/fabric.hpp"
#include "pcie/memory_target.hpp"
#include "sim/task.hpp"
#include "snacc/reorder_buffer.hpp"

namespace snacc {
namespace {

using fault::FaultPlan;
using fault::Injector;

// ---------------------------------------------------------------------------
// Injector semantics

TEST(Injector, DisabledIsInertAndCountsNothing) {
  Injector inj;  // default: no plan, disarmed
  EXPECT_FALSE(inj.armed());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(inj.fire());
  EXPECT_EQ(inj.events(), 0u);
  EXPECT_EQ(inj.fired(), 0u);
}

TEST(Injector, ScheduleFiresExactlyAtGivenIndices) {
  Injector inj(FaultPlan::at({0, 3, 5}));
  ASSERT_TRUE(inj.armed());
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(inj.fire());
  const std::vector<bool> want = {true, false, false, true,
                                  false, true, false, false};
  EXPECT_EQ(fired, want);
  EXPECT_EQ(inj.events(), 8u);
  EXPECT_EQ(inj.fired(), 3u);
}

TEST(Injector, UnsortedAndDuplicatedScheduleStillFiresEveryIndex) {
  // The injector matches schedule entries against a monotone event counter;
  // before the constructor sorted and deduplicated the plan, a duplicate
  // entry ({3, 3, 5}) stalled the cursor at the second 3 forever and 5
  // never fired. User-authored plans are allowed to be messy.
  Injector inj(FaultPlan::at({5, 3, 3}));
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(inj.fire());
  const std::vector<bool> want = {false, false, false, true,
                                  false, true, false, false};
  EXPECT_EQ(fired, want);
  EXPECT_EQ(inj.fired(), 2u);
}

TEST(Injector, RateDrawsAreDeterministicPerSeed) {
  Injector a(FaultPlan::rate(0.3, 42));
  Injector b(FaultPlan::rate(0.3, 42));
  std::uint64_t fired = 0;
  for (int i = 0; i < 2000; ++i) {
    const bool fa = a.fire();
    ASSERT_EQ(fa, b.fire()) << "same plan+seed must fire identically, i=" << i;
    fired += fa ? 1 : 0;
  }
  // Law of large numbers sanity: ~600 expected.
  EXPECT_GT(fired, 450u);
  EXPECT_LT(fired, 750u);

  // A different seed yields a different (but equally deterministic) stream.
  Injector c(FaultPlan::rate(0.3, 43));
  bool any_diff = false;
  Injector a2(FaultPlan::rate(0.3, 42));
  for (int i = 0; i < 2000; ++i) any_diff |= a2.fire() != c.fire();
  EXPECT_TRUE(any_diff);
}

TEST(Injector, ScheduleDoesNotShiftTheProbabilisticStream) {
  // The probability draw happens on every event even when the schedule
  // already fired it, so mixing sources keeps the random stream aligned.
  FaultPlan plain = FaultPlan::rate(0.5, 7);
  FaultPlan mixed = FaultPlan::rate(0.5, 7);
  mixed.schedule = {2};
  Injector a(plain);
  Injector b(mixed);
  for (int i = 0; i < 64; ++i) {
    const bool fa = a.fire();
    const bool fb = b.fire();
    if (i == 2) {
      EXPECT_TRUE(fb);
    } else {
      EXPECT_EQ(fa, fb) << "event " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Fabric-level faults

struct FabricFixture : ::testing::Test {
  FabricFixture()
      : fabric(sim, PcieProfile{}), host_mem(sim, 64 * MiB) {
    root = fabric.add_port("root", 64.0);
    fabric.set_root_port(root);
    dev = fabric.add_port("dev", 13.0);
    fabric.map(pcie::Addr{}, Bytes{64 * MiB}, &host_mem, root,
               pcie::MemKind::kHostDram);
  }

  sim::Simulator sim;
  pcie::Fabric fabric;
  pcie::HostMemory host_mem;
  pcie::PortId root{};
  pcie::PortId dev{};
};

TEST_F(FabricFixture, IommuWriteDropIsRecordedPerDeviceWithLastFault) {
  // Read-only grant: device writes are silently dropped on the wire (posted
  // semantics) -- but no longer silently *unaccounted*.
  fabric.iommu().grant({dev, pcie::Addr{}, Bytes{64 * MiB}, true, false});
  auto io = [&]() -> sim::Task {
    co_await fabric.write(dev, pcie::Addr{0x3000}, Payload::filled(4096, 7));
  };
  sim.spawn(io());
  sim.run();
  EXPECT_EQ(fabric.iommu().faults(), 1u);
  EXPECT_EQ(fabric.iommu().faults_for(dev), 1u);
  EXPECT_EQ(fabric.iommu().faults_for(root), 0u);
  EXPECT_EQ(fabric.port_faults(dev).iommu_write_drops, 1u);
  EXPECT_EQ(fabric.port_faults(dev).total(), 1u);
  EXPECT_EQ(fabric.port_faults(root).total(), 0u);
  ASSERT_TRUE(fabric.last_fault().has_value());
  const pcie::FaultRecord& rec = *fabric.last_fault();
  EXPECT_EQ(rec.kind, pcie::FaultKind::kIommuWriteDrop);
  EXPECT_EQ(rec.initiator, dev);
  EXPECT_EQ(rec.addr.value(), 0x3000u);
  EXPECT_EQ(rec.len.value(), 4096u);
  EXPECT_STREQ(pcie::fault_kind_name(rec.kind), "iommu-write-drop");
}

TEST_F(FabricFixture, UnmappedAccessesAreRecordedToo) {
  auto io = [&]() -> sim::Task {
    auto rr = co_await fabric.read(root, pcie::Addr{0x9999'0000'0000}, Bytes{64});
    EXPECT_FALSE(rr.ok);
  };
  sim.spawn(io());
  sim.run();
  EXPECT_EQ(fabric.port_faults(root).unmapped, 1u);
  ASSERT_TRUE(fabric.last_fault().has_value());
  EXPECT_EQ(fabric.last_fault()->kind, pcie::FaultKind::kUnmappedRead);
}

TEST_F(FabricFixture, InjectedReadLossStallsForCompletionTimeout) {
  fabric.iommu().set_enabled(false);
  fabric.set_read_loss_plan(FaultPlan::at({0}));
  bool first_ok = true;
  bool second_ok = false;
  TimePs first_elapsed;
  auto io = [&]() -> sim::Task {
    const TimePs t0 = sim.now();
    auto rr1 = co_await fabric.read(root, pcie::Addr{0x1000}, Bytes{512});
    first_elapsed = sim.now() - t0;
    first_ok = rr1.ok;
    auto rr2 = co_await fabric.read(root, pcie::Addr{0x1000}, Bytes{512});
    second_ok = rr2.ok;
  };
  sim.spawn(io());
  sim.run();
  EXPECT_FALSE(first_ok);
  EXPECT_TRUE(second_ok);
  EXPECT_GE(first_elapsed, fabric.profile().completion_timeout);
  EXPECT_EQ(fabric.injected_timeouts(), 1u);
  EXPECT_EQ(fabric.port_faults(root).completion_timeouts, 1u);
  ASSERT_TRUE(fabric.last_fault().has_value());
  EXPECT_EQ(fabric.last_fault()->kind, pcie::FaultKind::kCompletionTimeout);
}

TEST_F(FabricFixture, LinkDegradationSlowsTransfersThenRecovers) {
  fabric.iommu().set_enabled(false);
  const std::uint64_t bytes = 8 * MiB;
  TimePs healthy;
  TimePs degraded;
  TimePs recovered;
  auto io = [&]() -> sim::Task {
    TimePs t0 = sim.now();
    co_await fabric.write(dev, pcie::Addr{}, Payload::phantom(bytes));
    healthy = sim.now() - t0;

    fabric.degrade_link(dev, 0.25, seconds(10));
    t0 = sim.now();
    co_await fabric.write(dev, pcie::Addr{}, Payload::phantom(bytes));
    degraded = sim.now() - t0;

    co_await sim.delay(seconds(11));  // window expired, rate restored
    t0 = sim.now();
    co_await fabric.write(dev, pcie::Addr{}, Payload::phantom(bytes));
    recovered = sim.now() - t0;
  };
  sim.spawn(io());
  sim.run();
  // 4x rate cut: the paced portion takes ~4x longer while the window is
  // open (the fixed per-TLP latency component is unaffected, so the
  // end-to-end ratio lands a little under 4x).
  EXPECT_GT(degraded, healthy * 2);
  EXPECT_LT(recovered, healthy * 2);
}

TEST_F(FabricFixture, WindowedIommuFlipOnlyFiresInsideTheWindow) {
  fabric.iommu().grant({dev, pcie::Addr{}, Bytes{64 * MiB}, true, true});
  // Flip verdicts only for writes landing in [0x10000, 0x11000).
  fabric.iommu().set_fault_plan(FaultPlan::rate(1.0), pcie::Addr{0x10000},
                                Bytes{0x1000});
  bool outside_ok = false;
  auto io = [&]() -> sim::Task {
    co_await fabric.write(dev, pcie::Addr{0x10000}, Payload::filled(512, 1));  // dropped
    co_await fabric.write(dev, pcie::Addr{0x20000}, Payload::filled(512, 2));  // passes
    auto rr = co_await fabric.read(dev, pcie::Addr{0x20000}, Bytes{512});
    outside_ok = rr.ok && rr.data.content_equals(Payload::filled(512, 2));
  };
  sim.spawn(io());
  sim.run();
  EXPECT_TRUE(outside_ok);
  EXPECT_EQ(fabric.iommu().injected_faults(), 1u);
  EXPECT_EQ(fabric.port_faults(dev).iommu_write_drops, 1u);
  EXPECT_EQ(host_mem.store().read(0x10000, 512).has_data(), false);
}

// ---------------------------------------------------------------------------
// Reorder buffer recovery support

TEST(ReorderBuffer, StaleCompletionsAreAbsorbedNotAsserted) {
  sim::Simulator sim;
  core::ReorderBuffer rob(sim, 4);
  SlotIdx slot;
  auto setup = [&]() -> sim::Task {
    core::RobEntry e;
    co_await rob.alloc(std::move(e), &slot);
  };
  sim.spawn(setup());
  sim.run();

  // First completion lands.
  EXPECT_TRUE(rob.complete(slot, nvme::Status::kSuccess));
  // A duplicate (e.g. the original command's CQE arriving after a watchdog
  // retry already completed the slot) is absorbed.
  EXPECT_FALSE(rob.complete(slot, nvme::Status::kSuccess));
  // A completion for a slot outside the in-flight window is stale too.
  EXPECT_FALSE(rob.complete(SlotIdx{2}, nvme::Status::kSuccess));
  EXPECT_EQ(rob.stale_completions(), 2u);
  EXPECT_TRUE(rob.head_ready());
}

TEST(ReorderBuffer, ReopenHeadClearsCompletionForRetry) {
  sim::Simulator sim;
  core::ReorderBuffer rob(sim, 4);
  SlotIdx slot;
  auto setup = [&]() -> sim::Task {
    core::RobEntry e;
    co_await rob.alloc(std::move(e), &slot);
  };
  sim.spawn(setup());
  sim.run();

  rob.complete(slot, nvme::Status::kUnrecoveredReadError);
  ASSERT_TRUE(rob.head_ready());
  EXPECT_EQ(rob.head().status, nvme::Status::kUnrecoveredReadError);
  rob.reopen_head();
  EXPECT_FALSE(rob.head_ready());
  EXPECT_EQ(rob.head().status, nvme::Status::kSuccess);
  // The retried command's completion closes it again.
  EXPECT_TRUE(rob.complete(slot, nvme::Status::kSuccess));
  EXPECT_TRUE(rob.head_ready());
}

TEST(ReorderBuffer, FailHeadSynthesizesWatchdogCompletion) {
  sim::Simulator sim;
  core::ReorderBuffer rob(sim, 4);
  SlotIdx slot;
  auto setup = [&]() -> sim::Task {
    core::RobEntry e;
    co_await rob.alloc(std::move(e), &slot);
  };
  sim.spawn(setup());
  sim.run();

  ASSERT_FALSE(rob.head_ready());
  rob.fail_head(nvme::Status::kWatchdogTimeout);
  ASSERT_TRUE(rob.head_ready());
  EXPECT_EQ(rob.head().status, nvme::Status::kWatchdogTimeout);
  // The genuinely-late CQE for the failed command is now stale.
  EXPECT_FALSE(rob.complete(slot, nvme::Status::kSuccess));
  EXPECT_EQ(rob.stale_completions(), 1u);
}

}  // namespace
}  // namespace snacc
