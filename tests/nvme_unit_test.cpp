// NVMe protocol unit tests: SQE/CQE byte-level encode/decode, queue-ring
// arithmetic (wrap, full/empty, phase tags), PRP walking (direct entries,
// lists, chained lists), identify serialization, and controller behaviour
// against protocol errors (bad opcode, CQ backpressure, queue deletion).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "host/system.hpp"
#include "nvme/prp.hpp"
#include "nvme/queues.hpp"
#include "host/nvme_admin.hpp"
#include "nvme/spec.hpp"
#include "spdk/driver.hpp"

namespace snacc::nvme {
namespace {

TEST(Spec, SqeEncodeDecodeRoundTrip) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(IoOpcode::kWrite);
  e.cid = Cid{0xBEEF};
  e.nsid = 3;
  e.prp1 = BusAddr{0x1234'5678'9ABC'D000};
  e.prp2 = BusAddr{0x0FED'CBA9'8765'4000};
  e.slba = Lba{0x12'3456'789A};
  e.nlb = 255;
  auto raw = e.encode();
  SubmissionEntry d = SubmissionEntry::decode(raw);
  EXPECT_EQ(d.opcode, e.opcode);
  EXPECT_EQ(d.cid.value(), e.cid.value());
  EXPECT_EQ(d.nsid, e.nsid);
  EXPECT_EQ(d.prp1.value(), e.prp1.value());
  EXPECT_EQ(d.prp2.value(), e.prp2.value());
  EXPECT_EQ(d.slba.value(), e.slba.value());
  EXPECT_EQ(d.nlb, e.nlb);
  EXPECT_EQ(d.data_bytes().value(), 256u * kLbaSize);
}

TEST(Spec, CqeEncodeDecodeRoundTripWithPhase) {
  for (bool phase : {false, true}) {
    CompletionEntry e;
    e.dw0 = 0xA5A5A5A5;
    e.sq_head = 17;
    e.sq_id = 4;
    e.cid = Cid{42};
    e.status = Status::kLbaOutOfRange;
    e.phase = phase;
    auto raw = e.encode();
    CompletionEntry d = CompletionEntry::decode(raw);
    EXPECT_EQ(d.dw0, e.dw0);
    EXPECT_EQ(d.sq_head, e.sq_head);
    EXPECT_EQ(d.sq_id, e.sq_id);
    EXPECT_EQ(d.cid.value(), e.cid.value());
    EXPECT_EQ(d.status, e.status);
    EXPECT_EQ(d.phase, phase);
  }
}

TEST(Spec, IdentifyRoundTrip) {
  IdentifyController id;
  id.namespace_blocks = 488378646;
  id.max_transfer_bytes = 1 * MiB;
  id.max_queue_entries = 1024;
  id.num_io_queues = 16;
  IdentifyController d = IdentifyController::decode(id.encode());
  EXPECT_EQ(d.namespace_blocks, id.namespace_blocks);
  EXPECT_EQ(d.max_transfer_bytes, id.max_transfer_bytes);
  EXPECT_EQ(d.max_queue_entries, id.max_queue_entries);
  EXPECT_EQ(d.num_io_queues, id.num_io_queues);
}

TEST(Rings, SqRingFullAndWrap) {
  SqRing sq(QueueConfig{1, BusAddr{0x1000}, 4});
  EXPECT_EQ(sq.free_slots(), 3);  // N-1 usable
  EXPECT_FALSE(sq.full());
  sq.advance_tail();
  sq.advance_tail();
  sq.advance_tail();
  EXPECT_TRUE(sq.full());
  EXPECT_EQ(sq.in_flight(), 3);
  sq.update_head(2);  // controller consumed two
  EXPECT_FALSE(sq.full());
  EXPECT_EQ(sq.free_slots(), 2);
  // Wrap: tail 3 -> 0.
  EXPECT_EQ(sq.next_slot_addr().value(), 0x1000 + 3u * kSqeSize);
  EXPECT_EQ(sq.advance_tail(), 0);
}

TEST(Rings, CqRingPhaseFlipsOnWrap) {
  CqRing cq(QueueConfig{1, BusAddr{0x2000}, 3});
  EXPECT_TRUE(cq.expected_phase());
  cq.advance();
  cq.advance();
  EXPECT_TRUE(cq.expected_phase());
  cq.advance();  // wrapped to 0
  EXPECT_FALSE(cq.expected_phase());
  CompletionEntry stale;
  stale.phase = true;
  EXPECT_FALSE(cq.is_new(stale));
  CompletionEntry fresh;
  fresh.phase = false;
  EXPECT_TRUE(cq.is_new(fresh));
}

TEST(Prp, PageCountMath) {
  EXPECT_EQ(prp_page_count(Bytes{}), 0u);
  EXPECT_EQ(prp_page_count(Bytes{1}), 1u);
  EXPECT_EQ(prp_page_count(Bytes{kPageSize}), 1u);
  EXPECT_EQ(prp_page_count(Bytes{kPageSize + 1}), 2u);
  EXPECT_EQ(prp_page_count(Bytes{1 * MiB}), 256u);
}

TEST(Prp, WalkerDirectEntries) {
  sim::Simulator sim;
  PrpWalker walker(sim, [&](BusAddr) -> sim::Future<std::uint64_t> {
    ADD_FAILURE() << "direct PRPs must not fetch a list";
    sim::Promise<std::uint64_t> p(sim);
    p.set(0);
    return p.future();
  });
  std::vector<BusAddr> pages;
  auto t = [&]() -> sim::Task {
    co_await walker.walk(BusAddr{0xA000}, BusAddr{}, Bytes{kPageSize},
                         &pages == nullptr ? pages : pages);
  };
  // walk with one page
  auto one = [&]() -> sim::Task { co_await walker.walk(BusAddr{0xA000}, BusAddr{}, Bytes{100}, pages); };
  sim.spawn(one());
  sim.run();
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0].value(), 0xA000u);
  (void)t;

  auto two = [&]() -> sim::Task {
    co_await walker.walk(BusAddr{0xA000}, BusAddr{0xB000}, Bytes{2 * kPageSize},
                         pages);
  };
  sim.spawn(two());
  sim.run();
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[1].value(), 0xB000u);
}

TEST(Prp, WalkerFollowsChainedLists) {
  sim::Simulator sim;
  // Build reference lists for a 600-page transfer and serve entry reads
  // from them.
  const std::uint64_t pages_total = 600;
  const BusAddr buf{0x10'0000};
  const BusAddr list_base{0x90'0000};
  auto lists =
      build_prp_lists(buf, Bytes{pages_total * kPageSize}, list_base);
  ASSERT_EQ(lists.size(), 2u);

  std::uint64_t fetches = 0;
  PrpWalker walker(sim, [&](BusAddr addr) -> sim::Future<std::uint64_t> {
    ++fetches;
    const std::uint64_t page = (addr - list_base).value() / kPageSize;
    const std::uint64_t idx = addr.value() % kPageSize / 8;
    sim::Promise<std::uint64_t> p(sim);
    p.set(lists.at(page).at(idx));
    return p.future();
  });
  std::vector<BusAddr> pages;
  auto t = [&]() -> sim::Task {
    co_await walker.walk(buf, list_base, Bytes{pages_total * kPageSize}, pages);
  };
  sim.spawn(t());
  sim.run();
  ASSERT_EQ(pages.size(), pages_total);
  for (std::uint64_t i = 0; i < pages_total; ++i) {
    EXPECT_EQ(pages[i].value(), (buf + Bytes{i * kPageSize}).value()) << i;
  }
  EXPECT_EQ(fetches, 599u + 1u);  // 599 entries + the chain pointer slot
}

class PrpWalkerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrpWalkerProperty, MatchesReferenceForRandomSizes) {
  sim::Simulator sim;
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    const std::uint64_t pages_total = 1 + rng.below(1200);
    const BusAddr buf{(1 + rng.below(1000)) * kPageSize};
    const BusAddr list_base{0x4000'0000};
    auto lists =
        build_prp_lists(buf, Bytes{pages_total * kPageSize}, list_base);
    PrpWalker walker(sim, [&](BusAddr addr) -> sim::Future<std::uint64_t> {
      const std::uint64_t page = (addr - list_base).value() / kPageSize;
      const std::uint64_t idx = addr.value() % kPageSize / 8;
      sim::Promise<std::uint64_t> p(sim);
      p.set(lists.at(page).at(idx));
      return p.future();
    });
    std::vector<BusAddr> pages;
    const BusAddr prp2 = pages_total == 1   ? BusAddr{}
                         : pages_total == 2 ? buf + Bytes{kPageSize}
                                            : list_base;
    auto t = [&]() -> sim::Task {
      co_await walker.walk(buf, prp2, Bytes{pages_total * kPageSize}, pages);
    };
    sim.spawn(t());
    sim.run();
    ASSERT_EQ(pages.size(), pages_total);
    for (std::uint64_t i = 0; i < pages_total; ++i) {
      ASSERT_EQ(pages[i].value(), (buf + Bytes{i * kPageSize}).value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrpWalkerProperty, ::testing::Values(3, 5, 7));

// ---------------------------------------------------------------------------
// Controller protocol errors, via the full system + SPDK driver.

struct CtrlFixture : ::testing::Test {
  CtrlFixture() {
    driver = std::make_unique<spdk::Driver>(
        sys.sim(), sys.fabric(), sys.host_mem(), host::addr_map::kHostDramBase,
        sys.ssd(), sys.config().profile.host);
    bool done = false;
    auto boot = [](spdk::Driver* d, bool* f) -> sim::Task {
      co_await d->init();
      *f = true;
    };
    sys.sim().spawn(boot(driver.get(), &done));
    sys.sim().run_until(seconds(1));
    EXPECT_TRUE(done);
  }
  void run_for(TimePs d) { sys.sim().run_until(sys.sim().now() + d); }

  host::System sys;
  std::unique_ptr<spdk::Driver> driver;
};

TEST_F(CtrlFixture, ControllerRegistersReadBack) {
  bool checked = false;
  auto io = [&]() -> sim::Task {
    auto r = sys.fabric().read(sys.root_port(),
                               sys.ssd().bar_base() + reg::kCap, Bytes{8});
    auto rr = co_await r;
    std::uint64_t cap = 0;
    if (rr.data.has_data()) std::memcpy(&cap, rr.data.view().data(), 8);
    EXPECT_EQ(cap & 0xFFFF, sys.ssd().profile().max_queue_entries - 1u);
    checked = true;
  };
  sys.sim().spawn(io());
  run_for(seconds(1));
  EXPECT_TRUE(checked);
}

TEST(CtrlAdmin, ProtocolErrorsSurfaceInCompletions) {
  host::System sys;
  host::NvmeAdmin admin(sys.sim(), sys.fabric(), sys.host_mem(),
                        host::addr_map::kHostDramBase, sys.ssd(),
                        /*region=*/Bytes{128 * MiB});
  bool done = false;
  Status sq_without_cq{};
  Status bad_opcode{};
  Status oversized_cq{};
  auto io = [&]() -> sim::Task {
    co_await admin.bring_up();

    // CreateIoSq bound to a CQ that was never created.
    SubmissionEntry sq;
    sq.opcode = static_cast<std::uint8_t>(AdminOpcode::kCreateIoSq);
    sq.prp1 = BusAddr{0x5000'0000};
    sq.cdw10 = 5 | (63u << 16);
    sq.cdw11 = (9u << 16) | 1;  // cqid 9 does not exist
    co_await admin.command(sq, &sq_without_cq);

    // Unknown admin opcode.
    SubmissionEntry bogus;
    bogus.opcode = 0x7F;
    co_await admin.command(bogus, &bad_opcode);

    // CQ larger than the controller supports.
    SubmissionEntry cq;
    cq.opcode = static_cast<std::uint8_t>(AdminOpcode::kCreateIoCq);
    cq.prp1 = BusAddr{0x5001'0000};
    cq.cdw10 = 7 | (60000u << 16);
    co_await admin.command(cq, &oversized_cq);
    done = true;
  };
  sys.sim().spawn(io());
  sys.sim().run_until(seconds(1));
  ASSERT_TRUE(done);
  EXPECT_EQ(sq_without_cq, Status::kInvalidQueueId);
  EXPECT_EQ(bad_opcode, Status::kInvalidOpcode);
  EXPECT_EQ(oversized_cq, Status::kInvalidQueueSize);
}

TEST_F(CtrlFixture, UnknownOpcodeCompletesWithError) {
  // Craft a raw SQE with a bogus opcode through the driver's queue memory.
  // Simpler: LBA out of range exercised elsewhere; here use nlb too large
  // (exceeds MDTS).
  bool done = false;
  nvme::Status st{};
  auto io = [&]() -> sim::Task {
    // 2 MiB in one command exceeds MDTS=1 MiB -> the driver splits it, so
    // instead issue one command of exactly MDTS (fine) and rely on the
    // dedicated splitter tests; check flush path works (opcode 0).
    co_await driver->write(Lba{}, Payload::filled(4096, 1), &st);
    done = true;
  };
  sys.sim().spawn(io());
  run_for(seconds(1));
  ASSERT_TRUE(done);
  EXPECT_EQ(st, Status::kSuccess);
}

TEST_F(CtrlFixture, MediaReflectsWritesExactly) {
  Payload data = Payload::filled(3 * kLbaSize, 0x77);
  bool done = false;
  auto io = [&]() -> sim::Task {
    co_await driver->write(Lba{1000}, data);
    done = true;
  };
  sys.sim().spawn(io());
  run_for(seconds(1));
  ASSERT_TRUE(done);
  Payload media = sys.ssd().media().read(1000 * kLbaSize, 3 * kLbaSize);
  EXPECT_TRUE(media.content_equals(data));
  EXPECT_EQ(sys.ssd().media().resident_pages(), 3u);
}

// ---------------------------------------------------------------------------
// Fault injection: NAND-level failures surface as real NVMe error CQEs.

TEST_F(CtrlFixture, InjectedNandReadFaultSurfacesUnrecoveredReadError) {
  bool done = false;
  Status wr{};
  Status rd{};
  auto io = [&]() -> sim::Task {
    co_await driver->write(Lba{2000}, Payload::filled(8 * kLbaSize, 0x5A), &wr);
    sys.ssd().nand().set_read_fault_plan(fault::FaultPlan::at({0}));
    co_await driver->read(Lba{2000}, Bytes{8 * kLbaSize}, nullptr, &rd);
    done = true;
  };
  sys.sim().spawn(io());
  run_for(seconds(1));
  ASSERT_TRUE(done);
  EXPECT_EQ(wr, Status::kSuccess);
  EXPECT_EQ(rd, Status::kUnrecoveredReadError);
  EXPECT_EQ(sys.ssd().read_errors(), 1u);
  EXPECT_EQ(sys.ssd().error_cqes(), 1u);
  EXPECT_EQ(sys.ssd().nand().read_faults_injected(), 1u);
  // Retries are disabled by default: the error reaches the caller.
  EXPECT_EQ(driver->io_errors(), 1u);
  EXPECT_EQ(driver->io_failed(), 1u);
  EXPECT_EQ(driver->io_retries(), 0u);
}

TEST_F(CtrlFixture, InjectedProgramFailureSurfacesWriteFault) {
  bool done = false;
  Status st{};
  auto io = [&]() -> sim::Task {
    sys.ssd().nand().set_program_fault_plan(fault::FaultPlan::at({0}));
    co_await driver->write(Lba{3000}, Payload::filled(4096, 0x11), &st);
    done = true;
  };
  sys.sim().spawn(io());
  run_for(seconds(1));
  ASSERT_TRUE(done);
  EXPECT_EQ(st, Status::kWriteFault);
  EXPECT_EQ(sys.ssd().write_errors(), 1u);
  EXPECT_EQ(sys.ssd().nand().program_faults_injected(), 1u);
}

TEST(CtrlFault, DriverRetryRecoversTransientNandFault) {
  host::System sys;
  spdk::DriverConfig dcfg;
  dcfg.max_retries = 2;
  dcfg.retry_backoff = us(2);
  spdk::Driver driver(sys.sim(), sys.fabric(), sys.host_mem(),
                      host::addr_map::kHostDramBase, sys.ssd(),
                      sys.config().profile.host, dcfg);
  Payload data = Payload::filled(16 * kLbaSize, 0x42);
  bool done = false;
  Status st{};
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await driver.init();
    co_await driver.write(Lba{500}, data);
    // Fail the 4th page of the first read attempt; the retry reads cleanly.
    sys.ssd().nand().set_read_fault_plan(fault::FaultPlan::at({3}));
    co_await driver.read(Lba{500}, Bytes{16 * kLbaSize}, &got, &st);
    done = true;
  };
  sys.sim().spawn(io());
  sys.sim().run_until(seconds(2));
  ASSERT_TRUE(done);
  EXPECT_EQ(st, Status::kSuccess);
  EXPECT_TRUE(got.content_equals(data));
  EXPECT_EQ(driver.io_errors(), 1u);
  EXPECT_EQ(driver.io_retries(), 1u);
  EXPECT_EQ(driver.io_failed(), 0u);
  EXPECT_EQ(sys.ssd().read_errors(), 1u);
}

TEST(CtrlRaw, ErrorCqeCarriesCorrectPhaseTag) {
  // Handcrafted SQE through a directly-created queue pair in host memory:
  // checks the raw CQE bytes of an *error* completion -- status code, CID and
  // the phase tag of the first CQ pass.
  host::System sys;
  auto& ssd = sys.ssd();
  const Bytes sq_off{64 * MiB};
  const Bytes cq_off{65 * MiB};
  const Bytes buf_off{66 * MiB};
  const pcie::Addr base = host::addr_map::kHostDramBase;
  ssd.create_io_queues_direct(QueueConfig{1, base + sq_off, 4},
                              QueueConfig{1, base + cq_off, 4});
  ssd.nand().set_read_fault_plan(fault::FaultPlan::rate(1.0));

  SubmissionEntry sqe;
  sqe.opcode = static_cast<std::uint8_t>(IoOpcode::kRead);
  sqe.cid = Cid{7};
  sqe.slba = Lba{};
  sqe.nlb = 0;
  sqe.prp1 = base + buf_off;
  auto raw = sqe.encode();
  sys.host_mem().store().write(sq_off.value(),
                               Payload::bytes({raw.begin(), raw.end()}));

  bool done = false;
  CompletionEntry cqe;
  auto io = [&]() -> sim::Task {
    std::vector<std::byte> db(4);
    const std::uint32_t tail = 1;
    std::memcpy(db.data(), &tail, 4);
    co_await sys.fabric().write(sys.root_port(),
                                ssd.bar_base() + reg::sq_tail_doorbell(1),
                                Payload::bytes(std::move(db)));
    while (true) {
      Payload p = sys.host_mem().store().read(cq_off.value(), kCqeSize);
      if (p.has_data()) {
        const auto e = CompletionEntry::decode(p.view());
        if (e.phase) {
          cqe = e;
          break;
        }
      }
      co_await sys.sim().delay(us(1));
    }
    done = true;
  };
  sys.sim().spawn(io());
  sys.sim().run_until(seconds(1));
  ASSERT_TRUE(done);
  EXPECT_EQ(cqe.cid.value(), 7);
  EXPECT_TRUE(cqe.phase);  // first pass through the CQ posts phase 1
  EXPECT_EQ(cqe.status, Status::kUnrecoveredReadError);
  EXPECT_EQ(cqe.sq_id, 1);
  EXPECT_EQ(ssd.read_errors(), 1u);
  EXPECT_EQ(ssd.error_cqes(), 1u);
}

}  // namespace
}  // namespace snacc::nvme
