// Unit tests for the discrete-event kernel: event ordering, coroutine tasks,
// channels (backpressure, close), futures, wait groups, gates, semaphores and
// rate servers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.hpp"
#include "sim/future.hpp"
#include "sim/rate_server.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace snacc::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(ns(30), [&] { order.push_back(3); });
  sim.at(ns(10), [&] { order.push_back(1); });
  sim.at(ns(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), ns(30));
}

TEST(Simulator, EqualTimestampsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.at(ns(7), [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.at(us(1), [&] { ++fired; });
  sim.at(us(3), [&] { ++fired; });
  sim.run_until(us(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), us(2));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NestedEventsFromHandlers) {
  Simulator sim;
  int depth = 0;
  sim.at(ns(1), [&] {
    sim.after(ns(1), [&] {
      sim.after(ns(1), [&] { depth = 3; });
      depth = 2;
    });
    depth = 1;
  });
  sim.run();
  EXPECT_EQ(depth, 3);
  EXPECT_EQ(sim.now(), ns(3));
}

TEST(Task, DelaySuspendsForExactDuration) {
  Simulator sim;
  TimePs woke;
  auto proc = [&]() -> Task {
    co_await sim.delay(us(5));
    woke = sim.now();
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_EQ(woke, us(5));
}

TEST(Task, AwaitedChildRunsToCompletionFirst) {
  Simulator sim;
  std::vector<int> order;
  auto child = [&]() -> Task {
    order.push_back(1);
    co_await sim.delay(ns(100));
    order.push_back(2);
  };
  auto parent = [&]() -> Task {
    order.push_back(0);
    co_await child();
    order.push_back(3);
  };
  sim.spawn(parent());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Task, ManyConcurrentTasksInterleaveDeterministically) {
  Simulator sim;
  std::vector<int> order;
  auto worker = [&](int id, TimePs period) -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await sim.delay(period);
      order.push_back(id);
    }
  };
  sim.spawn(worker(0, ns(10)));
  sim.spawn(worker(1, ns(15)));
  sim.run();
  // t=10:0, t=15:1, t=20:0, t=30: 1 then 0 (1's delay was scheduled at
  // t=15, before 0's at t=20), t=45:1.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(Channel, FifoOrderPreserved) {
  Simulator sim;
  Channel<int> ch(sim, 4);
  std::vector<int> got;
  auto producer = [&]() -> Task {
    for (int i = 0; i < 10; ++i) co_await ch.push(i);
    ch.close();
  };
  auto consumer = [&]() -> Task {
    while (auto v = co_await ch.pop()) got.push_back(*v);
  };
  sim.spawn(producer());
  sim.spawn(consumer());
  sim.run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(Channel, BackpressureBlocksProducer) {
  Simulator sim;
  Channel<int> ch(sim, 2);
  TimePs producer_done;
  auto producer = [&]() -> Task {
    for (int i = 0; i < 4; ++i) co_await ch.push(i);
    producer_done = sim.now();
  };
  auto consumer = [&]() -> Task {
    co_await sim.delay(us(10));
    while (co_await ch.pop()) {
      if (ch.empty() && ch.size() == 0) break;  // drain
    }
  };
  sim.spawn(producer());
  sim.spawn(consumer());
  sim.run_until(us(100));
  // Producer cannot finish before the consumer starts draining at 10 us.
  EXPECT_GE(producer_done, us(10));
}

TEST(Channel, PopOnClosedEmptyReturnsNullopt) {
  Simulator sim;
  Channel<int> ch(sim, 2);
  bool saw_end = false;
  auto consumer = [&]() -> Task {
    auto v = co_await ch.pop();
    saw_end = !v.has_value();
  };
  sim.spawn(consumer());
  sim.after(ns(5), [&] { ch.close(); });
  sim.run();
  EXPECT_TRUE(saw_end);
}

TEST(Channel, CloseDrainsRemainingItems) {
  Simulator sim;
  Channel<int> ch(sim, 8);
  std::vector<int> got;
  auto producer = [&]() -> Task {
    co_await ch.push(1);
    co_await ch.push(2);
    ch.close();
  };
  auto consumer = [&]() -> Task {
    co_await sim.delay(us(1));
    while (auto v = co_await ch.pop()) got.push_back(*v);
  };
  sim.spawn(producer());
  sim.spawn(consumer());
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Channel, MultipleConsumersEachGetItems) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  int count_a = 0;
  int count_b = 0;
  auto consumer = [&](int* counter) -> Task {
    while (auto v = co_await ch.pop()) ++*counter;
  };
  auto producer = [&]() -> Task {
    for (int i = 0; i < 100; ++i) co_await ch.push(i);
    ch.close();
  };
  sim.spawn(consumer(&count_a));
  sim.spawn(consumer(&count_b));
  sim.spawn(producer());
  sim.run();
  EXPECT_EQ(count_a + count_b, 100);
  EXPECT_GT(count_a, 0);
  EXPECT_GT(count_b, 0);
}

// Regression test for a GCC 12 coroutine miscompilation: awaiters returned
// by value that carry non-trivial members (e.g. aggregates holding a
// shared_ptr) are duplicated bitwise and destroyed twice, silently dropping
// ownership. The channel therefore keeps all in-flight values in
// channel-owned nodes; this test fails (use_count reaches 0 mid-flight) if
// that invariant is broken.
TEST(Channel, SharedOwnershipSurvivesHandoff) {
  // NB: Msg deliberately declares its special members -- a plain aggregate
  // {shared_ptr, bool} is bitwise-duplicated by the compiler bug and this
  // test would fail. Every repo struct crossing co_await boundaries follows
  // this pattern (Chunk, RobEntry, ReadResult).
  struct Msg {
    std::shared_ptr<int> p;
    bool flag = false;
    Msg() = default;
    Msg(std::shared_ptr<int> q, bool f) : p(std::move(q)), flag(f) {}
    Msg(Msg&&) noexcept = default;
    Msg& operator=(Msg&&) noexcept = default;
  };
  Simulator sim;
  Channel<Msg> ch(sim, 4);
  std::weak_ptr<int> weak;
  long observed_use = -1;
  int observed_value = -1;
  auto receiver = [&]() -> Task {
    auto msg = co_await ch.pop();
    observed_use = weak.use_count();
    if (msg && msg->p) observed_value = *msg->p;
  };
  auto sender = [&]() -> Task {
    auto sp = std::make_shared<int>(77);
    weak = sp;
    co_await ch.push(Msg(std::move(sp), true));
    EXPECT_GE(weak.use_count(), 1) << "ownership lost during push handoff";
  };
  sim.spawn(receiver());
  sim.spawn(sender());
  sim.run();
  EXPECT_EQ(observed_use, 1);
  EXPECT_EQ(observed_value, 77);
  EXPECT_EQ(weak.use_count(), 0);  // consumer released it at scope exit
}

TEST(Channel, SharedOwnershipSurvivesBackpressuredPush) {
  struct Msg {
    std::shared_ptr<int> p;
    Msg() = default;
    explicit Msg(std::shared_ptr<int> q) : p(std::move(q)) {}
    Msg(Msg&&) noexcept = default;
    Msg& operator=(Msg&&) noexcept = default;
  };
  Simulator sim;
  Channel<Msg> ch(sim, 1);
  std::vector<std::weak_ptr<int>> weaks;
  int received = 0;
  auto sender = [&]() -> Task {
    for (int i = 0; i < 5; ++i) {
      auto sp = std::make_shared<int>(i);
      weaks.push_back(sp);
      co_await ch.push(Msg(std::move(sp)));
    }
    ch.close();
  };
  auto receiver = [&]() -> Task {
    while (auto msg = co_await ch.pop()) {
      co_await sim.delay(us(1));
      EXPECT_TRUE(msg->p != nullptr);
      if (msg->p) EXPECT_EQ(*msg->p, received);
      ++received;
    }
  };
  sim.spawn(sender());
  sim.spawn(receiver());
  sim.run();
  EXPECT_EQ(received, 5);
  for (auto& w : weaks) EXPECT_EQ(w.use_count(), 0);
}

TEST(Future, AwaitersResumeWhenSet) {
  Simulator sim;
  Promise<int> promise(sim);
  int got_a = 0;
  int got_b = 0;
  auto waiter = [&](int* out) -> Task {
    auto fut = promise.future();
    *out = co_await fut;
  };
  sim.spawn(waiter(&got_a));
  sim.spawn(waiter(&got_b));
  sim.after(us(2), [&] { promise.set(42); });
  sim.run();
  EXPECT_EQ(got_a, 42);
  EXPECT_EQ(got_b, 42);
}

TEST(Future, AwaitAfterSetIsImmediate) {
  Simulator sim;
  Promise<int> promise(sim);
  promise.set(7);
  int got = 0;
  auto waiter = [&]() -> Task {
    auto fut = promise.future();
    got = co_await fut;
  };
  sim.spawn(waiter());
  sim.run();
  EXPECT_EQ(got, 7);
}

TEST(WaitGroup, JoinsAllTasks) {
  Simulator sim;
  WaitGroup wg(sim);
  TimePs joined_at;
  auto worker = [&](TimePs d) -> Task {
    co_await sim.delay(d);
    wg.done();
  };
  auto joiner = [&]() -> Task {
    co_await wg.wait();
    joined_at = sim.now();
  };
  wg.add(3);
  sim.spawn(worker(us(1)));
  sim.spawn(worker(us(5)));
  sim.spawn(worker(us(3)));
  sim.spawn(joiner());
  sim.run();
  EXPECT_EQ(joined_at, us(5));
}

TEST(Gate, ClosedGateBlocksUntilOpened) {
  Simulator sim;
  Gate gate(sim, /*open=*/false);
  TimePs passed_at;
  auto proc = [&]() -> Task {
    co_await gate.opened();
    passed_at = sim.now();
  };
  sim.spawn(proc());
  sim.after(us(9), [&] { gate.open(); });
  sim.run();
  EXPECT_EQ(passed_at, us(9));
}

TEST(Gate, OpenGateDoesNotBlock) {
  Simulator sim;
  Gate gate(sim, /*open=*/true);
  bool passed = false;
  auto proc = [&]() -> Task {
    co_await gate.opened();
    passed = true;
    co_return;
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_TRUE(passed);
}

TEST(Semaphore, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int active = 0;
  int max_active = 0;
  auto worker = [&]() -> Task {
    co_await sem.acquire();
    ++active;
    max_active = std::max(max_active, active);
    co_await sim.delay(us(1));
    --active;
    sem.release();
  };
  for (int i = 0; i < 10; ++i) sim.spawn(worker());
  sim.run();
  EXPECT_EQ(max_active, 2);
  EXPECT_EQ(sem.available(), 2);
}

TEST(RateServer, SerializesAtConfiguredRate) {
  Simulator sim;
  RateServer server(sim, /*gb_s=*/1.0);  // 1 GB/s => 1 byte/ns
  TimePs done;
  auto proc = [&]() -> Task {
    co_await server.acquire(1000);
    done = sim.now();
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_EQ(done, us(1));
}

TEST(RateServer, FifoQueueingAccumulates) {
  Simulator sim;
  RateServer server(sim, 1.0);
  std::vector<TimePs> done;
  auto proc = [&]() -> Task {
    co_await server.acquire(500);
    done.push_back(sim.now());
  };
  sim.spawn(proc());
  sim.spawn(proc());
  sim.spawn(proc());
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], ns(500));
  EXPECT_EQ(done[1], ns(1000));
  EXPECT_EQ(done[2], ns(1500));
}

TEST(RateServer, PerOpOverheadCharged) {
  Simulator sim;
  RateServer server(sim, 1.0, /*per_op=*/ns(100));
  TimePs done;
  auto proc = [&]() -> Task {
    co_await server.acquire(100);
    co_await server.acquire(100);
    done = sim.now();
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_EQ(done, ns(400));
  EXPECT_EQ(server.total_bytes(), 200u);
  EXPECT_EQ(server.total_ops(), 2u);
}

TEST(RateServer, AchievesConfiguredBandwidthUnderLoad) {
  Simulator sim;
  RateServer server(sim, 6.9);
  std::uint64_t moved = 0;
  auto producer = [&]() -> Task {
    for (int i = 0; i < 1000; ++i) {
      co_await server.acquire(4096);
      moved += 4096;
    }
  };
  sim.spawn(producer());
  sim.run();
  const double gbs = gb_per_s(moved, sim.now());
  EXPECT_NEAR(gbs, 6.9, 0.05);
}

TEST(RateServer, SetRateMidFlightAppliesToSubsequentAcquiresOnly) {
  Simulator sim;
  RateServer server(sim, 1.0);  // 1 GB/s => 1 byte/ns
  std::vector<TimePs> done;
  auto proc = [&]() -> Task {
    co_await server.acquire(1000);  // occupies [0, 1000 ns) at the old rate
    done.push_back(sim.now());
    co_await server.acquire(1000);  // served at the doubled rate: 500 ns
    done.push_back(sim.now());
  };
  sim.spawn(proc());
  // Rate change lands while the first acquisition is in flight; its already
  // computed occupation window must not shrink retroactively.
  sim.after(ns(200), [&] { server.set_rate(2.0); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], ns(1000));
  EXPECT_EQ(done[1], ns(1500));
}

TEST(RateServer, ZeroByteAcquireChargesPerOpOnly) {
  Simulator sim;
  RateServer server(sim, 1.0, /*per_op=*/ns(50));
  std::vector<TimePs> done;
  auto proc = [&]() -> Task {
    co_await server.acquire(0);
    done.push_back(sim.now());
    co_await server.acquire(0);
    done.push_back(sim.now());
  };
  sim.spawn(proc());
  sim.run();
  // Command-only traffic still serializes: per_op each, back to back.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], ns(50));
  EXPECT_EQ(done[1], ns(100));
  EXPECT_EQ(server.total_bytes(), 0u);
  EXPECT_EQ(server.total_ops(), 2u);
}

TEST(RateServer, ZeroByteAcquireWithoutPerOpCompletesImmediately) {
  Simulator sim;
  RateServer server(sim, 1.0);
  TimePs done;
  bool ran = false;
  auto proc = [&]() -> Task {
    co_await server.acquire(0);
    done = sim.now();
    ran = true;
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(done, TimePs{});
  EXPECT_EQ(server.total_ops(), 1u);
}

TEST(RateServer, BusyTimeAndUtilizationAccounting) {
  Simulator sim;
  RateServer server(sim, 1.0, /*per_op=*/ns(100));
  auto proc = [&]() -> Task {
    co_await server.acquire(400);       // 100 + 400 = 500 ns occupied
    co_await sim.delay(ns(500));        // idle gap
    co_await server.acquire(0, ns(25)); // 100 + 0 + 25 = 125 ns occupied
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_EQ(server.busy_time(), ns(625));
  EXPECT_EQ(server.busy_until(), sim.now());
  EXPECT_NEAR(server.utilization(sim.now()), 625.0 / 1125.0, 1e-9);
  EXPECT_EQ(server.utilization(TimePs{}), 0.0);
  // busy_time is charged eagerly at acquire(), so utilization over a window
  // shorter than the committed occupation clamps at 1.
  EXPECT_EQ(server.utilization(ns(1)), 1.0);
}

// -- Intrusive scheduling API (EventNode) -----------------------------------

TEST(Simulator, IntrusiveNodesFireInScheduleOrderAtEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  struct Probe : EventNode {
    std::vector<int>* out = nullptr;
    int id = 0;
    static void run(EventNode& e) {
      auto& p = static_cast<Probe&>(e);
      p.out->push_back(p.id);
    }
  };
  Probe probes[4];
  for (int i = 0; i < 4; ++i) {
    probes[i].fire = &Probe::run;
    probes[i].out = &order;
    probes[i].id = i;
  }
  // Interleave two timestamps; within each, schedule-call order must hold.
  sim.schedule(probes[2], ns(20));
  sim.schedule(probes[0], ns(10));
  sim.schedule(probes[3], ns(20));
  sim.schedule(probes[1], ns(10));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now(), ns(20));
}

TEST(Simulator, IntrusiveNodeIsReusableAfterFiring) {
  Simulator sim;
  int fires = 0;
  struct Probe : EventNode {
    int* count = nullptr;
    static void run(EventNode& e) { ++*static_cast<Probe&>(e).count; }
  };
  Probe p;
  p.fire = &Probe::run;
  p.count = &fires;
  sim.schedule(p, ns(1));
  sim.run();
  sim.schedule(p, ns(2));  // same node, relinked after it fired
  sim.run();
  EXPECT_EQ(fires, 2);
}

TEST(Simulator, WakeInterleavesWithTimedEventsDeterministically) {
  Simulator sim;
  std::vector<int> order;
  struct Probe : EventNode {
    std::vector<int>* out = nullptr;
    int id = 0;
    static void run(EventNode& e) {
      auto& p = static_cast<Probe&>(e);
      p.out->push_back(p.id);
    }
  };
  Probe a, b;
  a.fire = b.fire = &Probe::run;
  a.out = b.out = &order;
  a.id = 1;
  b.id = 2;
  // A closure scheduled at t=5 wakes `a` (zero-delay, so still t=5); the
  // pre-scheduled `b` at t=5 was linked first and must fire first.
  sim.at(ns(5), [&] { sim.wake(a); });
  sim.schedule(b, ns(5));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

// Regression: a producer parked in push() on a full channel must be woken by
// close() and see a failed push, instead of staying parked forever (its
// frame used to leak at ~Simulator, and pipelines never learned their
// downstream died).
TEST(Channel, CloseWakesBlockedProducer) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  bool push1_ok = false;
  bool push2_ok = true;
  bool producer_finished = false;
  auto producer = [&]() -> Task {
    push1_ok = co_await ch.push(1);   // fills the channel
    push2_ok = co_await ch.push(2);   // parks: channel full, no consumer
    producer_finished = true;
  };
  sim.spawn(producer());
  sim.after(ns(10), [&] { ch.close(); });
  sim.run();
  EXPECT_TRUE(producer_finished);
  EXPECT_TRUE(push1_ok);
  EXPECT_FALSE(push2_ok);  // the parked value was dropped by close()
}

TEST(Channel, CloseWakesAllBlockedProducersInOrder) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  std::vector<int> failed_order;
  auto producer = [&](int id) -> Task {
    if (!co_await ch.push(id)) {  // only the first fill succeeds
      failed_order.push_back(id);
      co_return;
    }
    if (!co_await ch.push(id + 100)) failed_order.push_back(id);
  };
  sim.spawn(producer(1));
  sim.spawn(producer(2));
  sim.after(ns(10), [&] { ch.close(); });
  sim.run();
  // Producer 1 filled the channel; both then parked (1 first) and close()
  // must wake them in park order with a failed push each.
  EXPECT_EQ(failed_order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace snacc::sim
