// Tracer tests: category filtering, bounded ring semantics, and end-to-end
// trace capture of a live streamer workload (submissions, completions,
// retirements in causal order).
#include <gtest/gtest.h>

#include "host/snacc_device.hpp"
#include "host/system.hpp"
#include "snacc/pe_client.hpp"

namespace snacc {
namespace {

TEST(Tracer, DisabledByDefaultAndFilterable) {
  sim::Simulator sim;
  sim.trace(sim::TraceCat::kUser, "ignored");
  EXPECT_TRUE(sim.tracer().events().empty());

  sim.tracer().enable(static_cast<std::uint32_t>(sim::TraceCat::kUser));
  sim.trace(sim::TraceCat::kUser, "kept", 1, 2);
  sim.trace(sim::TraceCat::kEth, "filtered");
  ASSERT_EQ(sim.tracer().events().size(), 1u);
  EXPECT_STREQ(sim.tracer().events().front().label, "kept");
  EXPECT_EQ(sim.tracer().events().front().a, 1u);
  EXPECT_EQ(sim.tracer().events().front().b, 2u);
}

TEST(Tracer, RingDropsOldestAtCapacity) {
  sim::Simulator sim;
  sim.tracer().enable(static_cast<std::uint32_t>(sim::TraceCat::kUser),
                      /*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    sim.trace(sim::TraceCat::kUser, "e", i);
  }
  ASSERT_EQ(sim.tracer().events().size(), 4u);
  EXPECT_EQ(sim.tracer().dropped(), 6u);
  EXPECT_EQ(sim.tracer().events().front().a, 6u);
  EXPECT_EQ(sim.tracer().events().back().a, 9u);
}

TEST(Tracer, CapturesStreamerWorkload) {
  host::System sys;
  host::SnaccDeviceConfig cfg;
  host::SnaccDevice dev(sys, cfg);
  bool booted = false;
  auto boot = [&]() -> sim::Task {
    co_await dev.init();
    booted = true;
  };
  sys.sim().spawn(boot());
  sys.sim().run_until(seconds(1));
  ASSERT_TRUE(booted);

  sys.sim().tracer().enable(sim::TraceCat::kStreamerCmd |
                            sim::TraceCat::kStreamerRetire |
                            sim::TraceCat::kNvmeComplete);
  core::PeClient pe(dev.streamer());
  bool done = false;
  auto io = [&]() -> sim::Task {
    co_await pe.write(Bytes{}, Payload::phantom(3 * MiB));  // 3 sub-commands
    co_await pe.read(Bytes{}, Bytes{3 * MiB}, nullptr);            // 3 sub-commands
    done = true;
  };
  sys.sim().spawn(io());
  sys.sim().run_until(sys.sim().now() + seconds(5));
  ASSERT_TRUE(done);

  auto& tracer = sys.sim().tracer();
  EXPECT_EQ(tracer.count(sim::TraceCat::kStreamerCmd), 6u);
  EXPECT_EQ(tracer.count(sim::TraceCat::kNvmeComplete), 6u);
  EXPECT_EQ(tracer.count(sim::TraceCat::kStreamerRetire), 6u);

  // Causality: timestamps are monotonic, and each command's submission
  // precedes some completion which precedes its retirement.
  TimePs last;
  for (const auto& e : tracer.events()) {
    EXPECT_GE(e.t, last);
    last = e.t;
  }
  EXPECT_STREQ(tracer.events().front().label, "submit-write");
}

}  // namespace
}  // namespace snacc
