// Unit tests for the strong domain types in common/units.hpp: conversion
// rounding at boundary rates, overflow saturation of the literal helpers,
// and compile-time enforcement that illegal unit mixing does not build
// (checked with invocability traits, so an accidentally-added operator turns
// into a test failure instead of a silent API widening).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <type_traits>
#include <utility>

#include "common/units.hpp"

namespace snacc {
namespace {

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

// ---------------------------------------------------------------------------
// transfer_time / gb_per_s rounding

TEST(Conversions, TransferTimeRoundsUpToWholePicoseconds) {
  // 1 byte at 1 GB/s is exactly 1 ns.
  EXPECT_EQ(transfer_time(1, 1.0), ns(1));
  // 1 byte at 3 GB/s is 333.33... ps -> rounds to 333.
  EXPECT_EQ(transfer_time(1, 3.0).value(), 333u);
  // 2 bytes at 3 GB/s is 666.66... ps -> rounds to 667.
  EXPECT_EQ(transfer_time(2, 3.0).value(), 667u);
  // Zero bytes takes zero time at any rate.
  EXPECT_TRUE(transfer_time(0, 64.0).is_zero());
  // Nonpositive rate never produces a bogus huge duration.
  EXPECT_TRUE(transfer_time(4096, 0.0).is_zero());
  EXPECT_TRUE(transfer_time(4096, -1.0).is_zero());
  // The Bytes overload agrees with the raw one.
  EXPECT_EQ(transfer_time(Bytes{1 * MiB}, 6.9), transfer_time(1 * MiB, 6.9));
}

TEST(Conversions, GbPerSRoundTripsThroughTransferTime) {
  // bytes -> duration -> rate should land back within float tolerance, at
  // rates bracketing everything the models use (NAND to 100G ethernet).
  for (double rate : {0.1, 1.0, 6.9, 19.2, 38.0, 64.0, 128.0}) {
    const std::uint64_t bytes = 1 * GiB;
    const TimePs t = transfer_time(bytes, rate);
    EXPECT_NEAR(gb_per_s(bytes, t), rate, rate * 1e-9) << "rate " << rate;
  }
}

TEST(Conversions, GbPerSZeroElapsedIsZeroNotInf) {
  EXPECT_EQ(gb_per_s(1 * GiB, TimePs{}), 0.0);
  EXPECT_EQ(gb_per_s(Bytes{1 * GiB}, TimePs{}), 0.0);
}

TEST(Conversions, ToUnitHelpersInvertLiteralHelpers) {
  EXPECT_DOUBLE_EQ(to_ns(ns(123)), 123.0);
  EXPECT_DOUBLE_EQ(to_us(us(456)), 456.0);
  EXPECT_DOUBLE_EQ(to_ms(ms(789)), 789.0);
  EXPECT_DOUBLE_EQ(to_s(seconds(3)), 3.0);
}

// ---------------------------------------------------------------------------
// Overflow saturation near UINT64_MAX

TEST(Overflow, SecondsSaturatesInsteadOfWrapping) {
  // 2^64 ps is ~18.4M seconds; anything above must clamp, not wrap to a
  // tiny value that would silently truncate a run_until() deadline.
  constexpr std::uint64_t kLimit = kU64Max / kPsPerS;  // 18'446'744
  EXPECT_EQ(seconds(kLimit).value(), kLimit * kPsPerS);
  EXPECT_EQ(seconds(kLimit + 1).value(), kU64Max);
  EXPECT_EQ(seconds(kU64Max).value(), kU64Max);
  static_assert(seconds(kU64Max).value() == kU64Max,
                "saturation must be constexpr-visible");
}

TEST(Overflow, AllLiteralHelpersSaturate) {
  EXPECT_EQ(ns(kU64Max).value(), kU64Max);
  EXPECT_EQ(us(kU64Max).value(), kU64Max);
  EXPECT_EQ(ms(kU64Max).value(), kU64Max);
  // In-range values are exact (no saturation penalty on the hot path).
  EXPECT_EQ(ns(7).value(), 7'000u);
  EXPECT_EQ(us(7).value(), 7'000'000u);
}

// ---------------------------------------------------------------------------
// Arithmetic semantics

TEST(Arithmetic, TimeAndBytesFormClosedGroups) {
  EXPECT_EQ((ns(3) + ns(4)).value(), ns(7).value());
  EXPECT_EQ((ns(9) - ns(2)).value(), ns(7).value());
  EXPECT_EQ((ns(3) * 4).value(), ns(12).value());
  EXPECT_EQ(us(10) / us(2), 5u);  // duration ratio is a raw count
  EXPECT_EQ((Bytes{12 * KiB} / Bytes{4 * KiB}), 3u);
  EXPECT_EQ((Bytes{10} % Bytes{4}).value(), 2u);
}

TEST(Arithmetic, AddressArithmeticIsAffine) {
  const BusAddr a{0x1000};
  EXPECT_EQ((a + Bytes{0x20}).value(), 0x1020u);
  EXPECT_EQ((a - Bytes{0x10}).value(), 0x0FF0u);
  EXPECT_EQ((BusAddr{0x2000} - a).value(), 0x1000u);  // addr - addr = bytes
  static_assert(std::is_same_v<decltype(BusAddr{} - BusAddr{}), Bytes>);
}

TEST(Arithmetic, PageHelpersAgreeAtBoundaries) {
  EXPECT_EQ(page_align_up(Bytes{1}).value(), kPageSize);
  EXPECT_EQ(page_align_up(Bytes{kPageSize}).value(), kPageSize);
  EXPECT_EQ(page_align_down(Bytes{kPageSize + 1}).value(), kPageSize);
  EXPECT_EQ(page_offset(BusAddr{kPageSize + 17}).value(), 17u);
  EXPECT_EQ(page_base(BusAddr{kPageSize + 17}).value(), kPageSize);
}

// ---------------------------------------------------------------------------
// Compile-fail coverage: illegal unit mixing must not be expressible. Each
// trait evaluates the exact expression a confused caller would write; if
// someone adds the operator, the static_assert names the rule they broke.

template <class A, class B>
using add_t = decltype(std::declval<A>() + std::declval<B>());
template <class A, class B, class = void>
struct can_add : std::false_type {};
template <class A, class B>
struct can_add<A, B, std::void_t<add_t<A, B>>> : std::true_type {};

template <class A, class B, class = void>
struct can_assign : std::false_type {};
template <class A, class B>
struct can_assign<A, B,
                  std::void_t<decltype(std::declval<A&>() = std::declval<B>())>>
    : std::true_type {};

// Time and space never mix.
static_assert(!can_add<TimePs, Bytes>::value, "time + bytes must not compile");
static_assert(!can_add<Bytes, TimePs>::value, "bytes + time must not compile");
// Two absolute addresses cannot be summed (affine space, not a vector).
static_assert(!can_add<BusAddr, BusAddr>::value,
              "addr + addr must not compile");
// LBAs are block numbers, not byte addresses.
static_assert(!can_add<Lba, Bytes>::value, "lba + bytes must not compile");
static_assert(!can_add<Lba, BusAddr>::value, "lba + addr must not compile");
// Identifier types carry no arithmetic at all.
static_assert(!can_add<Cid, Cid>::value, "cid + cid must not compile");
static_assert(!can_add<SlotIdx, SlotIdx>::value,
              "slot + slot must not compile");
// Raw integers do not implicitly become domain values.
static_assert(!std::is_convertible_v<std::uint64_t, TimePs>,
              "uint64 must not implicitly convert to TimePs");
static_assert(!std::is_convertible_v<std::uint64_t, BusAddr>,
              "uint64 must not implicitly convert to BusAddr");
static_assert(!std::is_convertible_v<int, Bytes>,
              "int must not implicitly convert to Bytes");
static_assert(!can_assign<TimePs, std::uint64_t>::value,
              "t = 0 must not compile; use TimePs{}");
// Cross-type assignment is out too.
static_assert(!can_assign<BusAddr, Bytes>::value,
              "addr = bytes must not compile");
static_assert(!can_assign<Cid, SlotIdx>::value,
              "cid = slot must not compile; use cid_of()");

TEST(CompileFail, TraitsAreWiredToRealOperators) {
  // Sanity: the positive cases DO compile, so the negative asserts above
  // are testing the operators and not a broken trait.
  EXPECT_TRUE((can_add<TimePs, TimePs>::value));
  EXPECT_TRUE((can_add<Bytes, Bytes>::value));
  EXPECT_TRUE((can_add<BusAddr, Bytes>::value));
  EXPECT_TRUE((can_assign<TimePs, TimePs>::value));
}

}  // namespace
}  // namespace snacc
