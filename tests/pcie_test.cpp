// Unit tests for the PCIe fabric: routing, BAR mapping, read/write data
// integrity, link-bandwidth conservation, latency selection (host vs P2P),
// IOMMU enforcement and traffic accounting.
#include <gtest/gtest.h>

#include "common/calibration.hpp"
#include "pcie/fabric.hpp"
#include "pcie/memory_target.hpp"
#include "sim/task.hpp"

namespace snacc::pcie {
namespace {

struct Fixture : ::testing::Test {
  Fixture()
      : fabric(sim, PcieProfile{}),
        host_mem(sim, 64 * MiB),
        dev_mem(sim, 16 * MiB) {
    root = fabric.add_port("root", 64.0);
    fabric.set_root_port(root);
    dev = fabric.add_port("dev", 13.0);
    peer = fabric.add_port("peer", 7.0);
    fabric.map(Addr{}, Bytes{64 * MiB}, &host_mem, root, MemKind::kHostDram);
    fabric.map(Addr{0x1000'0000}, Bytes{16 * MiB}, &dev_mem, dev,
               MemKind::kFpgaUram);
  }

  sim::Simulator sim;
  Fabric fabric;
  HostMemory host_mem;
  HostMemory dev_mem;  // reuse HostMemory as a simple BAR-backed store
  PortId root{};
  PortId dev{};
  PortId peer{};
};

TEST_F(Fixture, WriteThenReadRoundTripsThroughHostMemory) {
  Payload data = Payload::filled(8192, 0x3C);
  bool done = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    auto w = fabric.write(root, Addr{0x1000}, data);
    co_await w;
    auto r = fabric.read(root, Addr{0x1000}, Bytes{8192});
    auto rr = co_await r;
    got = std::move(rr.data);
    done = rr.ok;
  };
  sim.spawn(io());
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(got.content_equals(data));
}

TEST_F(Fixture, RoutingSelectsWindowByAddress) {
  bool ok_dev = false;
  auto io = [&]() -> sim::Task {
    auto w = fabric.write(root, Addr{0x1000'0000} + Bytes{4096}, Payload::filled(64, 9));
    co_await w;
    auto r = fabric.read(root, Addr{0x1000'0000} + Bytes{4096}, Bytes{64});
    auto rr = co_await r;
    ok_dev = rr.ok && rr.data.content_equals(Payload::filled(64, 9));
  };
  sim.spawn(io());
  sim.run();
  EXPECT_TRUE(ok_dev);
  // Host memory at the same local offset is untouched.
  EXPECT_EQ(host_mem.store().resident_pages(), 0u);
}

TEST_F(Fixture, UnmappedAddressFailsTheRead) {
  bool got_not_ok = false;
  auto io = [&]() -> sim::Task {
    auto r = fabric.read(root, Addr{0x9999'0000'0000}, Bytes{64});
    auto rr = co_await r;
    got_not_ok = !rr.ok && !rr.data.has_data();
  };
  sim.spawn(io());
  sim.run();
  EXPECT_TRUE(got_not_ok);
  EXPECT_EQ(fabric.unmapped_errors(), 1u);
}

TEST_F(Fixture, DeviceInitiatedAccessRequiresIommuGrant) {
  std::uint64_t faults_before = fabric.iommu().faults();
  bool first_failed = false;
  bool second_ok = false;
  auto io = [&]() -> sim::Task {
    auto r1 = fabric.read(dev, Addr{0x2000}, Bytes{512});
    auto rr1 = co_await r1;
    first_failed = !rr1.ok;
    fabric.iommu().grant({dev, Addr{}, Bytes{64 * MiB}, true, true});
    auto r2 = fabric.read(dev, Addr{0x2000}, Bytes{512});
    auto rr2 = co_await r2;
    second_ok = rr2.ok;
  };
  sim.spawn(io());
  sim.run();
  EXPECT_TRUE(first_failed);
  EXPECT_TRUE(second_ok);
  EXPECT_EQ(fabric.iommu().faults(), faults_before + 1);
}

TEST_F(Fixture, ReadOnlyGrantRejectsWrites) {
  fabric.iommu().grant({dev, Addr{}, Bytes{64 * MiB}, true, false});
  auto io = [&]() -> sim::Task {
    auto w = fabric.write(dev, Addr{0x3000}, Payload::filled(4096, 7));
    co_await w;
  };
  sim.spawn(io());
  sim.run();
  EXPECT_EQ(fabric.iommu().faults(), 1u);
  EXPECT_EQ(host_mem.store().resident_pages(), 0u);  // write was dropped
}

TEST_F(Fixture, DisabledIommuAllowsEverything) {
  fabric.iommu().set_enabled(false);
  bool ok = false;
  auto io = [&]() -> sim::Task {
    auto w = fabric.write(dev, Addr{0x4000}, Payload::filled(4096, 1));
    co_await w;
    auto r = fabric.read(peer, Addr{0x4000}, Bytes{4096});
    auto rr = co_await r;
    ok = rr.ok;
  };
  sim.spawn(io());
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(fabric.iommu().faults(), 0u);
}

TEST_F(Fixture, HostPathIsFasterThanPeerToPeer) {
  PcieProfile profile;
  EXPECT_EQ(fabric.read_rtt(root, dev), profile.host_read_rtt);
  EXPECT_EQ(fabric.read_rtt(dev, root), profile.host_read_rtt);
  EXPECT_EQ(fabric.read_rtt(dev, peer), profile.p2p_read_rtt);
  EXPECT_GT(profile.p2p_read_rtt, profile.host_read_rtt);
}

TEST_F(Fixture, TrafficAccountingMatchesTransfers) {
  fabric.iommu().grant({dev, Addr{}, Bytes{64 * MiB}, true, true});
  auto io = [&]() -> sim::Task {
    for (int i = 0; i < 4; ++i) {
      auto w = fabric.write(dev, Addr{0x8000} + Bytes{4096} * std::uint64_t(i),
                            Payload::phantom(4096));
      co_await w;
    }
    auto r = fabric.read(dev, Addr{0x8000}, Bytes{8192});
    auto rr = co_await r;
    (void)rr;
  };
  sim.spawn(io());
  sim.run();
  const PathStats& stats = fabric.path(dev, root);
  EXPECT_EQ(stats.write_bytes, 4u * 4096);
  EXPECT_EQ(stats.read_bytes, 8192u);
  EXPECT_EQ(stats.writes, 4u);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(fabric.total_bytes(), 4u * 4096 + 8192);
}

TEST_F(Fixture, BulkWritesAreLinkRateLimited) {
  // 64 MiB through the dev link at 13 GB/s (plus header overhead) should
  // take at least bytes/rate.
  const std::uint64_t total = 64 * MiB;
  fabric.iommu().grant({dev, Addr{}, Bytes{64 * MiB}, true, true});
  TimePs t_end;
  auto io = [&]() -> sim::Task {
    sim::WaitGroup wg(sim);
    const std::uint64_t chunk = 1 * MiB;
    wg.add(static_cast<int>(total / chunk));
    for (std::uint64_t off = 0; off < total; off += chunk) {
      auto issue = [](Fabric* f, PortId p, pcie::Addr a, std::uint64_t n,
                      sim::WaitGroup* g) -> sim::Task {
        auto w = f->write(p, a, Payload::phantom(n));
        co_await w;
        g->done();
      };
      sim.spawn(issue(&fabric, dev, Addr{off % (32 * MiB)}, chunk, &wg));
    }
    co_await wg.wait();
    t_end = sim.now();
  };
  sim.spawn(io());
  sim.run();
  const double gbs = gb_per_s(total, t_end);
  EXPECT_LT(gbs, 13.0);
  EXPECT_GT(gbs, 11.5);
}

TEST_F(Fixture, KindAtReportsWindowKind) {
  EXPECT_EQ(fabric.kind_at(Addr{0x100}), MemKind::kHostDram);
  EXPECT_EQ(fabric.kind_at(Addr{0x1000'0000}), MemKind::kFpgaUram);
  EXPECT_EQ(fabric.kind_at(Addr{0x7777'0000'0000}), MemKind::kDevice);
  EXPECT_EQ(fabric.owner_at(Addr{0x100}), root);
  EXPECT_EQ(fabric.owner_at(Addr{0x1000'0000}), dev);
}

TEST_F(Fixture, UnmapRemovesWindow) {
  fabric.unmap(Addr{0x1000'0000});
  bool not_ok = false;
  auto io = [&]() -> sim::Task {
    auto r = fabric.read(root, Addr{0x1000'0000}, Bytes{64});
    auto rr = co_await r;
    not_ok = !rr.ok;
  };
  sim.spawn(io());
  sim.run();
  EXPECT_TRUE(not_ok);
}

}  // namespace
}  // namespace snacc::pcie
