// Golden block/edge-structure tests for the lint CFG builder and the
// forward-dataflow solver it feeds: branch diamonds, loop back edges,
// switch fallthrough, early co_return, continue-in-loop, constant loops
// without exit edges, suspension block splits, and fixed-point iteration
// around cycles.
#include <memory>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "lint/cfg.hpp"
#include "lint/dataflow.hpp"
#include "lint/scope.hpp"
#include "lint/source.hpp"

namespace {

struct Built {
  std::unique_ptr<lint::SourceFile> file;
  lint::ScopeInfo scopes;
  lint::Cfg cfg;
};

/// Builds the CFG of the first function in `text`.
Built build(std::string text) {
  Built b;
  b.file = lint::SourceFile::from_text("src/t.cpp", std::move(text));
  EXPECT_NE(b.file, nullptr);
  b.scopes = lint::analyze_scopes(b.file->tokens());
  EXPECT_FALSE(b.scopes.funcs.empty());
  b.cfg = lint::build_cfg(b.file->tokens(), b.scopes, 0);
  return b;
}

/// Index of the (first) block whose token range contains identifier `id`.
int block_of(const Built& b, std::string_view id) {
  const auto& toks = b.file->tokens();
  for (std::size_t i = 0; i < b.cfg.blocks.size(); ++i) {
    const lint::CfgBlock& blk = b.cfg.blocks[i];
    for (std::size_t t = blk.begin; t < blk.end && t < toks.size(); ++t) {
      if (toks[t].ident(id)) return static_cast<int>(i);
    }
  }
  ADD_FAILURE() << "no block covers identifier '" << id << "'";
  return -1;
}

TEST(LintCfg, IfElseDiamond) {
  const auto b = build(
      "void f(int x) {\n"
      "  pre();\n"
      "  if (x) {\n"
      "    then_arm();\n"
      "  } else {\n"
      "    else_arm();\n"
      "  }\n"
      "  join_stmt();\n"
      "}\n");
  const int pre = block_of(b, "pre");
  const int hdr = block_of(b, "x");
  const int t = block_of(b, "then_arm");
  const int e = block_of(b, "else_arm");
  const int j = block_of(b, "join_stmt");
  EXPECT_EQ(pre, b.cfg.entry);
  EXPECT_TRUE(b.cfg.has_edge(pre, hdr));
  EXPECT_TRUE(b.cfg.has_edge(hdr, t));
  EXPECT_TRUE(b.cfg.has_edge(hdr, e));
  EXPECT_TRUE(b.cfg.has_edge(t, j));
  EXPECT_TRUE(b.cfg.has_edge(e, j));
  // With an else, the condition cannot jump straight to the join.
  EXPECT_FALSE(b.cfg.has_edge(hdr, j));
  EXPECT_TRUE(b.cfg.has_edge(j, b.cfg.exit));
}

TEST(LintCfg, IfWithoutElseFallsThrough) {
  const auto b = build(
      "void f(int x) {\n"
      "  if (x) {\n"
      "    then_arm();\n"
      "  }\n"
      "  join_stmt();\n"
      "}\n");
  const int hdr = block_of(b, "x");
  const int j = block_of(b, "join_stmt");
  EXPECT_TRUE(b.cfg.has_edge(hdr, j));
  EXPECT_TRUE(b.cfg.has_edge(block_of(b, "then_arm"), j));
}

TEST(LintCfg, WhileLoopBackEdgeAndExit) {
  const auto b = build(
      "void f(int n) {\n"
      "  while (cond(n)) {\n"
      "    body_stmt();\n"
      "  }\n"
      "  tail_stmt();\n"
      "}\n");
  const int hdr = block_of(b, "cond");
  const int body = block_of(b, "body_stmt");
  const int tail = block_of(b, "tail_stmt");
  EXPECT_TRUE(b.cfg.has_edge(hdr, body));
  EXPECT_TRUE(b.cfg.has_edge(body, hdr)) << "loop back edge";
  EXPECT_TRUE(b.cfg.has_edge(hdr, tail)) << "loop exit edge";
}

TEST(LintCfg, ConstantLoopHasNoExitEdge) {
  // `while (true)` server pumps exit only through explicit co_return; a
  // fall-through edge would fake a resource-leak path that cannot happen.
  const auto b = build(
      "sim::Task f() {\n"
      "  while (true) {\n"
      "    body_stmt();\n"
      "    if (closing()) {\n"
      "      co_return;\n"
      "    }\n"
      "  }\n"
      "}\n");
  const int hdr = block_of(b, "true");
  const int ret = block_of(b, "co_return");
  for (const int s : b.cfg.block(hdr).succ) {
    EXPECT_NE(s, b.cfg.exit) << "constant loop header must not reach exit";
  }
  EXPECT_TRUE(b.cfg.has_edge(ret, b.cfg.exit));
}

TEST(LintCfg, ForInfiniteAlsoHasNoExitEdge) {
  const auto b = build(
      "void f() {\n"
      "  for (;;) {\n"
      "    body_stmt();\n"
      "  }\n"
      "}\n");
  const int body = block_of(b, "body_stmt");
  ASSERT_FALSE(b.cfg.block(body).pred.empty());
  const int hdr = b.cfg.block(body).pred.front();
  for (const int s : b.cfg.block(hdr).succ) {
    EXPECT_NE(s, b.cfg.exit);
  }
}

TEST(LintCfg, SwitchFallthroughAndBreak) {
  const auto b = build(
      "void f(int k) {\n"
      "  switch (k) {\n"
      "    case 0:\n"
      "      arm_zero();\n"
      "    case 1:\n"
      "      arm_one();\n"
      "      break;\n"
      "    default:\n"
      "      arm_def();\n"
      "  }\n"
      "  tail_stmt();\n"
      "}\n");
  const int hdr = block_of(b, "k");
  const int a0 = block_of(b, "arm_zero");
  const int a1 = block_of(b, "arm_one");
  const int ad = block_of(b, "arm_def");
  const int tail = block_of(b, "tail_stmt");
  EXPECT_TRUE(b.cfg.has_edge(hdr, a0));
  EXPECT_TRUE(b.cfg.has_edge(hdr, a1));
  EXPECT_TRUE(b.cfg.has_edge(hdr, ad));
  EXPECT_TRUE(b.cfg.has_edge(a0, a1)) << "case 0 falls through into case 1";
  EXPECT_FALSE(b.cfg.has_edge(a1, ad)) << "break does not fall through";
  // All arms drain into the join ahead of tail_stmt (break target).
  const auto reaches_tail = [&](int from) {
    for (const int s : b.cfg.block(from).succ) {
      if (s == tail || b.cfg.has_edge(s, tail)) return true;
    }
    return false;
  };
  EXPECT_TRUE(reaches_tail(a1));
  EXPECT_TRUE(reaches_tail(ad));
  // With a default arm the header cannot skip the switch entirely.
  for (const int s : b.cfg.block(hdr).succ) {
    EXPECT_NE(s, tail);
  }
}

TEST(LintCfg, EarlyCoReturnEdgesToExit) {
  const auto b = build(
      "sim::Task f(bool e) {\n"
      "  pre();\n"
      "  if (e) {\n"
      "    bail();\n"
      "    co_return;\n"
      "  }\n"
      "  tail_stmt();\n"
      "}\n");
  const int bail = block_of(b, "bail");
  const int tail = block_of(b, "tail_stmt");
  EXPECT_TRUE(b.cfg.has_edge(bail, b.cfg.exit));
  EXPECT_FALSE(b.cfg.has_edge(bail, tail)) << "co_return never falls through";
}

TEST(LintCfg, ContinueEdgesToLoopHeader) {
  const auto b = build(
      "void f(int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    if (skip(i)) {\n"
      "      continue;\n"
      "    }\n"
      "    work();\n"
      "  }\n"
      "}\n");
  const int hdr = block_of(b, "n");
  const int cont = block_of(b, "continue");
  const int work = block_of(b, "work");
  EXPECT_TRUE(b.cfg.has_edge(cont, hdr)) << "continue jumps to the header";
  EXPECT_FALSE(b.cfg.has_edge(cont, work));
  EXPECT_TRUE(b.cfg.has_edge(work, hdr));
}

TEST(LintCfg, SuspensionAnnotatesAndSplitsBlock) {
  const auto b = build(
      "sim::Task f(S s) {\n"
      "  before();\n"
      "  co_await s.delay(1);\n"
      "  after();\n"
      "}\n");
  const int susp = block_of(b, "co_await");
  const int after = block_of(b, "after");
  EXPECT_TRUE(b.cfg.block(susp).suspends);
  EXPECT_NE(susp, after) << "a suspension ends its block";
  EXPECT_TRUE(b.cfg.has_edge(susp, after));
  EXPECT_FALSE(b.cfg.block(after).suspends);
}

TEST(LintCfg, NestedLambdaBodyIsExcluded) {
  // The lambda's co_await belongs to the lambda's own CFG; the enclosing
  // function's blocks must not be marked suspending by it.
  const auto b = build(
      "void f(S s) {\n"
      "  auto inner = [](S sim) -> sim::Task {\n"
      "    co_await sim.delay(1);\n"
      "  };\n"
      "  use(inner);\n"
      "}\n");
  for (const lint::CfgBlock& blk : b.cfg.blocks) {
    EXPECT_FALSE(blk.suspends);
  }
}

TEST(LintCfg, CacheBuildsOnceAndIsStable) {
  const auto sf = lint::SourceFile::from_text(
      "src/t.cpp", "void f() { a(); }\nvoid g() { b(); }\n");
  ASSERT_NE(sf, nullptr);
  const lint::ScopeInfo scopes = lint::analyze_scopes(sf->tokens());
  ASSERT_EQ(scopes.funcs.size(), 2u);
  const lint::CfgCache cache(sf->tokens(), scopes);
  const lint::Cfg* first = &cache.get(0);
  EXPECT_EQ(first, &cache.get(0)) << "same object on repeat lookup";
  EXPECT_NE(first, &cache.get(1));
}

// ---------------------------------------------------------------------------
// ForwardMay on real CFGs.

TEST(LintDataflow, BranchMayMerge) {
  const auto b = build(
      "void f(int x) {\n"
      "  if (x) {\n"
      "    gen_here();\n"
      "  } else {\n"
      "    kill_here();\n"
      "  }\n"
      "  join_stmt();\n"
      "}\n");
  lint::ForwardMay df(b.cfg, 1);
  df.add_gen(block_of(b, "gen_here"), 0);
  df.add_kill(block_of(b, "kill_here"), 0);
  df.solve();
  EXPECT_TRUE(df.in(block_of(b, "join_stmt"), 0)) << "may-facts merge by union";
  EXPECT_TRUE(df.in(b.cfg.exit, 0));
  const auto path = df.live_path(b.cfg.exit, 0);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), block_of(b, "gen_here"));
  EXPECT_EQ(path.back(), b.cfg.exit);
}

TEST(LintDataflow, LoopFixedPointCarriesAroundBackEdge) {
  const auto b = build(
      "void f(int n) {\n"
      "  while (cond(n)) {\n"
      "    body_stmt();\n"
      "  }\n"
      "  tail_stmt();\n"
      "}\n");
  const int body = block_of(b, "body_stmt");
  const int hdr = block_of(b, "cond");
  lint::ForwardMay df(b.cfg, 1);
  df.add_gen(body, 0);
  df.solve();
  EXPECT_TRUE(df.in(hdr, 0)) << "fact flows around the back edge";
  EXPECT_TRUE(df.in(body, 0)) << "and back into the body";
  EXPECT_TRUE(df.in(b.cfg.exit, 0));
}

TEST(LintDataflow, KillOnEveryExitPathClearsExit) {
  const auto b = build(
      "void f(int x) {\n"
      "  gen_here();\n"
      "  if (x) {\n"
      "    kill_a();\n"
      "    return;\n"
      "  }\n"
      "  kill_b();\n"
      "}\n");
  lint::ForwardMay df(b.cfg, 1);
  df.add_gen(block_of(b, "gen_here"), 0);
  df.add_kill(block_of(b, "kill_a"), 0);
  df.add_kill(block_of(b, "kill_b"), 0);
  df.solve();
  EXPECT_FALSE(df.in(b.cfg.exit, 0)) << "both exit paths kill the fact";
}

}  // namespace
