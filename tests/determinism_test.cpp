// Determinism regression (ctest label: determinism): the same seeded
// workload, run twice in the same process, must produce bit-identical
// statistics. This is the property every figure in the paper reproduction
// rests on -- if hash-map iteration order, pointer identity, or wall-clock
// time ever leaks into simulated behaviour, the two snapshots diff and this
// test names the first field that moved.
//
// The workload mirrors bench/fig4c_latency: seeded random single-block
// reads/writes through the full streamer stack (PE -> streamer -> PCIe P2P
// -> NVMe), which exercises the splitter, reorder buffer, PRP engines,
// doorbells, NAND timing, and the IOMMU -- the components where
// nondeterminism could realistically hide.
//
// Set SNACC_DOMAINS=N (N > 1) to run the identical workload on domain 0 of
// an N-domain SimCluster with a cross-domain heartbeat ring alongside it:
// the conservative-sync machinery (merges, window planning, mailbox
// timestamps) is then on the executed path, and the snapshot -- printed as
// a single SNAPSHOT line -- must still be byte-identical to the
// single-domain run. CI byte-compares the SNAPSHOT lines across
// SNACC_DOMAINS=1 and SNACC_DOMAINS=4.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "host/snacc_device.hpp"
#include "host/system.hpp"
#include "sim/cluster.hpp"
#include "sim/mailbox.hpp"
#include "snacc/pe_client.hpp"

namespace snacc {
namespace {

/// Everything observable about a run, in fixed order. Timestamps are kept
/// as raw picoseconds so the comparison is exact, never within-epsilon.
struct RunSnapshot {
  std::vector<std::uint64_t> write_latencies_ps;
  std::vector<std::uint64_t> read_latencies_ps;
  std::uint64_t final_time_ps = 0;
  std::uint64_t fabric_total_bytes = 0;
  std::uint64_t iommu_faults = 0;
  std::vector<std::pair<std::uint16_t, std::uint64_t>> faults_by_initiator;
  std::uint64_t ssd_commands = 0;
  std::uint64_t ssd_error_cqes = 0;

  std::string describe() const {
    std::ostringstream os;
    os << "final_time=" << final_time_ps
       << " fabric_bytes=" << fabric_total_bytes
       << " iommu_faults=" << iommu_faults << " ssd_cmds=" << ssd_commands
       << " ssd_error_cqes=" << ssd_error_cqes
       << " samples=" << write_latencies_ps.size() << "/"
       << read_latencies_ps.size();
    return os.str();
  }

  bool operator==(const RunSnapshot&) const = default;

  /// FNV-1a over every field, latency vectors included -- one number CI can
  /// compare across SNACC_DOMAINS settings without parsing.
  std::uint64_t digest() const {
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h = (h ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ull;
      }
    };
    for (auto v : write_latencies_ps) mix(v);
    for (auto v : read_latencies_ps) mix(v);
    mix(final_time_ps);
    mix(fabric_total_bytes);
    mix(iommu_faults);
    for (const auto& [init, n] : faults_by_initiator) {
      mix(init);
      mix(n);
    }
    mix(ssd_commands);
    mix(ssd_error_cqes);
    return h;
  }
};

std::uint32_t domains_from_env() {
  const char* env = std::getenv("SNACC_DOMAINS");
  if (env == nullptr) return 1;
  const long n = std::strtol(env, nullptr, 10);
  return n > 1 ? static_cast<std::uint32_t>(n) : 1;
}

// Heartbeat token circling the cluster's domains through Mailbox edges, so
// a multi-domain run exercises merges and window planning for real instead
// of letting every domain free-run to the horizon.
sim::Task ring_seed(sim::Mailbox<int>* out, sim::Mailbox<int>* in, int laps) {
  co_await out->push(0);
  for (int i = 0; i < laps; ++i) {
    auto v = co_await in->pop();
    if (!v) break;
    if (i + 1 < laps) co_await out->push(*v + 1);
  }
  out->close();
}

sim::Task ring_forward(sim::Mailbox<int>* in, sim::Mailbox<int>* out) {
  while (auto v = co_await in->pop()) co_await out->push(*v);
  out->close();
}

RunSnapshot run_fig4c_style(std::uint64_t seed) {
  constexpr int kSamples = 40;
  constexpr std::uint64_t kRegionBlocks = 1u << 18;

  const std::uint32_t domains = domains_from_env();
  std::unique_ptr<sim::SimCluster> cluster;
  std::unique_ptr<host::System> sys_owner;
  std::vector<std::unique_ptr<sim::Mailbox<int>>> ring;
  if (domains > 1) {
    cluster = std::make_unique<sim::SimCluster>(domains);
    sys_owner = std::make_unique<host::System>(cluster->domain(0));
    for (std::uint32_t i = 0; i < domains; ++i) {
      ring.push_back(std::make_unique<sim::Mailbox<int>>(
          cluster->domain(i), cluster->domain((i + 1) % domains), 4,
          us(50)));
    }
    cluster->domain(0).spawn(
        ring_seed(ring.front().get(), ring.back().get(), /*laps=*/5000));
    for (std::uint32_t i = 1; i < domains; ++i) {
      cluster->domain(i).spawn(
          ring_forward(ring[i - 1].get(), ring[i].get()));
    }
  } else {
    sys_owner = std::make_unique<host::System>();
  }
  host::System& sys = *sys_owner;
  const auto advance = [&](TimePs horizon) {
    if (cluster) {
      cluster->run_until(horizon);
    } else {
      sys.sim().run_until(horizon);
    }
  };

  host::SnaccDeviceConfig cfg;
  cfg.streamer.variant = core::Variant::kUram;
  host::SnaccDevice dev(sys, cfg);

  bool booted = false;
  auto boot = [&]() -> sim::Task {
    co_await dev.init();
    booted = true;
  };
  sys.sim().spawn(boot());
  advance(seconds(1));
  EXPECT_TRUE(booted);

  core::PeClient pe(dev.streamer());
  RunSnapshot snap;
  bool done = false;
  auto io = [&]() -> sim::Task {
    Xoshiro256 rng(seed);
    for (int i = 0; i < kSamples; ++i) {
      // Seed-dependent size AND address: the size makes latencies diverge
      // across seeds (URAM latency is address-independent), which keeps the
      // double-run check below from passing vacuously.
      const Bytes io{(1 + rng.below(8)) * 4 * KiB};
      const Bytes addr{rng.below(kRegionBlocks) * (4 * KiB) %
                       (1 * MiB)};  // stay inside the URAM window
      TimePs t0 = sys.sim().now();
      co_await pe.write(addr, Payload::phantom(io.value()), io);
      snap.write_latencies_ps.push_back((sys.sim().now() - t0).value());
      t0 = sys.sim().now();
      co_await pe.read(addr, io, nullptr);
      snap.read_latencies_ps.push_back((sys.sim().now() - t0).value());
      co_await sys.sim().delay(us(300));  // cold, isolated accesses
    }
    done = true;
  };
  sys.sim().spawn(io());
  advance(seconds(30));
  EXPECT_TRUE(done);

  snap.final_time_ps = sys.sim().now().value();
  snap.fabric_total_bytes = sys.fabric().total_bytes();
  snap.iommu_faults = sys.fabric().iommu().faults();
  snap.faults_by_initiator = sys.fabric().iommu().faults_by_initiator();
  snap.ssd_commands = sys.ssd().commands_completed();
  snap.ssd_error_cqes = sys.ssd().error_cqes();
  return snap;
}

TEST(Determinism, SeededDoubleRunIsBitIdentical) {
  const RunSnapshot first = run_fig4c_style(/*seed=*/42);
  const RunSnapshot second = run_fig4c_style(/*seed=*/42);
  ASSERT_EQ(first.write_latencies_ps, second.write_latencies_ps);
  ASSERT_EQ(first.read_latencies_ps, second.read_latencies_ps);
  EXPECT_TRUE(first == second) << "first:  " << first.describe()
                               << "\nsecond: " << second.describe();
  // Stable digest line for CI to byte-compare across SNACC_DOMAINS runs.
  // Everything behind it is simulated state, so it must not vary with the
  // domain count, worker count, or host machine.
  std::printf("SNAPSHOT %s digest=%llu\n", first.describe().c_str(),
              static_cast<unsigned long long>(first.digest()));
}

TEST(Determinism, DifferentSeedsActuallyDiverge) {
  // Guards the test itself: if the workload ignored its seed, the
  // double-run check above would pass vacuously.
  const RunSnapshot a = run_fig4c_style(/*seed=*/42);
  const RunSnapshot b = run_fig4c_style(/*seed=*/43);
  EXPECT_NE(a.write_latencies_ps, b.write_latencies_ps);
}

}  // namespace
}  // namespace snacc
