// Memory-model and AXI-Stream unit tests: sparse store semantics (phantom
// interplay), URAM/DRAM timing (dual-port vs shared-bus turnaround),
// stream serialization and chunked transfer framing, round-robin
// packet-level arbitration.
#include <gtest/gtest.h>

#include "axis/stream.hpp"
#include "common/calibration.hpp"
#include "mem/dram.hpp"
#include "mem/sparse_memory.hpp"

namespace snacc {
namespace {

// ---------------------------------------------------------------------------
// SparseMemory

TEST(SparseMemory, RealWriteReadRoundTrip) {
  mem::SparseMemory m(1 * MiB);
  Payload data = Payload::filled(10000, 0x42);
  m.write(4096 + 123, data);
  Payload got = m.read(4096 + 123, 10000);
  ASSERT_TRUE(got.has_data());
  EXPECT_TRUE(got.content_equals(data));
  EXPECT_EQ(m.resident_pages(), 3u);  // bytes 4219..14218 span pages 1-3
}

TEST(SparseMemory, UnwrittenRangeReadsPhantom) {
  mem::SparseMemory m(1 * MiB);
  Payload got = m.read(0, 4096);
  EXPECT_FALSE(got.has_data());
  EXPECT_EQ(got.size(), 4096u);
}

TEST(SparseMemory, PhantomWriteInvalidatesRealData) {
  mem::SparseMemory m(1 * MiB);
  m.fill(0, 8192, 0x11);
  EXPECT_TRUE(m.read(0, 8192).has_data());
  m.write(0, Payload::phantom(4096));
  // First page degraded; a read covering it is phantom, the second page
  // alone still reads real.
  EXPECT_FALSE(m.read(0, 8192).has_data());
  EXPECT_TRUE(m.read(4096, 4096).has_data());
}

TEST(SparseMemory, PartialPageOverwrite) {
  mem::SparseMemory m(1 * MiB);
  m.fill(0, 4096, 0xAA);
  m.write(100, Payload::filled(50, 0xBB));
  Payload got = m.read(0, 4096);
  ASSERT_TRUE(got.has_data());
  auto v = got.view();
  EXPECT_EQ(static_cast<std::uint8_t>(v[99]), 0xAA);
  EXPECT_EQ(static_cast<std::uint8_t>(v[100]), 0xBB);
  EXPECT_EQ(static_cast<std::uint8_t>(v[149]), 0xBB);
  EXPECT_EQ(static_cast<std::uint8_t>(v[150]), 0xAA);
}

// ---------------------------------------------------------------------------
// URAM / DRAM timing

TEST(Uram, DualPortsDoNotContend) {
  sim::Simulator sim;
  FpgaProfile fpga;
  mem::Uram uram(sim, 4 * MiB, fpga);
  TimePs read_done;
  TimePs write_done;
  auto reader = [&]() -> sim::Task {
    auto f = uram.read(0, 1 * MiB);
    co_await f;
    read_done = sim.now();
  };
  auto writer = [&]() -> sim::Task {
    auto f = uram.write(2 * MiB, Payload::phantom(1 * MiB));
    co_await f;
    write_done = sim.now();
  };
  sim.spawn(reader());
  sim.spawn(writer());
  sim.run();
  // Both finish in ~1MiB/19.2GB/s; a shared port would double one of them.
  const TimePs expect = transfer_time(1 * MiB, 19.2) + fpga.uram_latency;
  EXPECT_NEAR(read_done.value(), expect.value(),
              us(1).value());
  EXPECT_NEAR(write_done.value(), expect.value(),
              us(1).value());
}

TEST(Dram, TurnaroundChargedOnDirectionSwitch) {
  sim::Simulator sim;
  FpgaProfile fpga;
  mem::Dram dram(sim, 16 * MiB, fpga);
  auto t = [&]() -> sim::Task {
    auto w1 = dram.write(0, Payload::phantom(4096));
    co_await w1;
    auto r1 = dram.read(0, 4096);  // W -> R switch
    co_await r1;
    auto r2 = dram.read(4096, 4096);  // no switch
    co_await r2;
    auto w2 = dram.write(8192, Payload::phantom(4096));  // R -> W switch
    co_await w2;
  };
  sim.spawn(t());
  sim.run();
  EXPECT_EQ(dram.turnarounds(), 2u);
}

TEST(Dram, SharedBusSerializesReadAndWriteStreams) {
  sim::Simulator sim;
  FpgaProfile fpga;
  mem::Dram dram(sim, 64 * MiB, fpga);
  const std::uint64_t total = 16 * MiB;
  TimePs t_end;
  int remaining = 2;
  auto stream = [&](bool write, std::uint64_t base) -> sim::Task {
    for (std::uint64_t off = 0; off < total; off += 64 * KiB) {
      if (write) {
        auto f = dram.write(base + off, Payload::phantom(64 * KiB));
        co_await f;
      } else {
        auto f = dram.read(base + off, 64 * KiB);
        co_await f;
      }
    }
    if (--remaining == 0) t_end = sim.now();
  };
  sim.spawn(stream(true, 0));
  sim.spawn(stream(false, 32 * MiB));
  sim.run();
  // 32 MiB over a 19.2 GB/s shared bus plus turnaround stalls: strictly
  // slower than the pure transfer time.
  EXPECT_GT(t_end, transfer_time(2 * total, fpga.dram_gb_s));
}

// ---------------------------------------------------------------------------
// AXI-Stream

TEST(Axis, SendChargesBeatSerialization) {
  sim::Simulator sim;
  axis::Stream s(sim, {});
  TimePs done;
  auto t = [&]() -> sim::Task {
    co_await s.send(axis::Chunk(Payload::phantom(64 * KiB), true));
    done = sim.now();
  };
  sim.spawn(t());
  sim.run();
  // 64 KiB at 64 B/beat, 300 MHz -> 1024 beats * 3.334 ns.
  const TimePs expect = 1024 * ps(3334);
  EXPECT_NEAR(done.value(), expect.value(),
              ns(100).value());
}

TEST(Axis, SendChunkedMarksOnlyFinalChunkLast) {
  sim::Simulator sim;
  axis::Stream s(sim, {});
  std::vector<bool> lasts;
  std::vector<std::uint64_t> sizes;
  auto producer = [&]() -> sim::Task {
    co_await axis::send_chunked(s, Payload::phantom(40 * KiB), Bytes{16 * KiB}, true);
    s.close();
  };
  auto consumer = [&]() -> sim::Task {
    while (auto c = co_await s.recv()) {
      lasts.push_back(c->last);
      sizes.push_back(c->data.size());
    }
  };
  sim.spawn(producer());
  sim.spawn(consumer());
  sim.run();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 16 * KiB);
  EXPECT_EQ(sizes[1], 16 * KiB);
  EXPECT_EQ(sizes[2], 8 * KiB);
  EXPECT_EQ(lasts, (std::vector<bool>{false, false, true}));
}

TEST(Axis, RoundRobinArbiterKeepsPacketsIntact) {
  sim::Simulator sim;
  axis::Stream in_a(sim, {});
  axis::Stream in_b(sim, {});
  axis::Stream out(sim, {});
  axis::RoundRobinArbiter arb(sim, {&in_a, &in_b}, out);
  arb.start();

  auto produce = [&](axis::Stream* s, std::uint8_t tag) -> sim::Task {
    for (int pkt = 0; pkt < 3; ++pkt) {
      co_await s->send(axis::Chunk(Payload::filled(128, tag), false, tag));
      co_await s->send(axis::Chunk(Payload::filled(128, tag), true, tag));
    }
    s->close();
  };
  std::vector<std::uint64_t> sequence;
  auto consume = [&]() -> sim::Task {
    while (auto c = co_await out.recv()) sequence.push_back(c->user);
  };
  sim.spawn(produce(&in_a, 1));
  sim.spawn(produce(&in_b, 2));
  sim.spawn(consume());
  sim.run();
  ASSERT_EQ(sequence.size(), 12u);
  // Packet-level arbitration: chunks of one packet are never interleaved
  // with the other input's (pairs share the same tag).
  for (std::size_t i = 0; i < sequence.size(); i += 2) {
    EXPECT_EQ(sequence[i], sequence[i + 1]) << "packet split at " << i;
  }
}

}  // namespace
}  // namespace snacc
