// End-to-end case-study tests (Sec. 6): real image data flows over Ethernet,
// through the classifier, into the NVMe database -- for all three SNAcc
// variants and both host-based references. Verifies record layout, image
// integrity, classification correctness (against the pure reference
// function), flow-control engagement and the CPU-load contrast of Sec. 6.3.
#include <gtest/gtest.h>

#include "apps/case_study.hpp"

namespace snacc::apps {
namespace {

ImageStreamConfig small_real_config() {
  ImageStreamConfig cfg;
  cfg.width = 448;
  cfg.height = 448;
  cfg.count = 6;
  cfg.real_data = true;
  return cfg;
}

TEST(ImageModel, DownscaleProducesExpectedSizeAndDeterminism) {
  ImageStreamConfig cfg = small_real_config();
  Image a = make_image(cfg, 3);
  Image b = make_image(cfg, 3);
  EXPECT_TRUE(a.data.content_equals(b.data));
  Payload sa = downscale(a);
  EXPECT_EQ(sa.size(), kScaledBytes);
  EXPECT_TRUE(sa.content_equals(downscale(b)));
  // Different images classify (usually) differently and always
  // deterministically.
  auto ca = classify_reference(sa, 3);
  auto cb = classify_reference(sa, 3);
  EXPECT_EQ(ca.class_id, cb.class_id);
  EXPECT_LT(ca.class_id, kNumClasses);
}

TEST(ImageModel, HeaderRoundTrip) {
  Payload h = DbRecord::make_header(42, 7, 123456);
  std::uint64_t id = 0;
  std::uint32_t cls = 0;
  std::uint64_t bytes = 0;
  ASSERT_TRUE(DbRecord::parse_header(h, &id, &cls, &bytes));
  EXPECT_EQ(id, 42u);
  EXPECT_EQ(cls, 7u);
  EXPECT_EQ(bytes, 123456u);
  EXPECT_FALSE(DbRecord::parse_header(Payload::filled(4096, 0), &id, &cls, &bytes));
}

class SnaccCaseStudy : public ::testing::TestWithParam<core::Variant> {};

TEST_P(SnaccCaseStudy, StoresVerifiedDatabase) {
  // Note: run_snacc_case_study owns its System; to verify we need the media,
  // so replicate the call with verification plumbed through media shared...
  // The public API returns only results; verification runs inside via a
  // fresh system. Here: run and check the aggregate numbers.
  ImageStreamConfig cfg = small_real_config();
  CaseStudyResult r = run_snacc_case_study(GetParam(), cfg);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.images, cfg.count);
  EXPECT_EQ(r.bytes_ingested, cfg.total_bytes());
  EXPECT_EQ(r.cpu_utilization, 0.0);  // Sec. 6.3: autonomous after setup
  EXPECT_TRUE(r.db_verified) << r.db_error;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, SnaccCaseStudy,
                         ::testing::Values(core::Variant::kUram,
                                           core::Variant::kOnboardDram,
                                           core::Variant::kHostDram),
                         [](const auto& info) {
                           return std::string(core::variant_name(info.param) ==
                                                      std::string("URAM")
                                                  ? "Uram"
                                              : info.param ==
                                                      core::Variant::kOnboardDram
                                                  ? "OnboardDram"
                                                  : "HostDram");
                         });

TEST(SpdkCaseStudy, StoresAllImagesAndBurnsCpu) {
  ImageStreamConfig cfg = small_real_config();
  CaseStudyResult r = run_spdk_case_study(cfg);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.images, cfg.count);
  EXPECT_GT(r.cpu_utilization, 0.0);
  EXPECT_TRUE(r.db_verified) << r.db_error;
}

TEST(GpuCaseStudy, StoresAllImagesAndBurnsCpu) {
  ImageStreamConfig cfg = small_real_config();
  cfg.count = 40;  // > one batch of 32 to exercise batch + remainder
  cfg.real_data = false;
  CaseStudyResult r = run_gpu_case_study(cfg);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.images, cfg.count);
  EXPECT_GT(r.cpu_utilization, 0.5);
}

TEST(CaseStudyBandwidth, SnaccHostDramIsStorageBound) {
  ImageStreamConfig cfg;  // phantom 9 MB images
  cfg.count = 128;
  CaseStudyResult r = run_snacc_case_study(core::Variant::kHostDram, cfg);
  ASSERT_TRUE(r.ok);
  // Paper Fig. 6: ~6.1 GB/s (the NVMe write path limits, not the 12.5 GB/s
  // Ethernet); flow control must have engaged to throttle the sender.
  EXPECT_GT(r.bandwidth_gb_s(), 5.3);
  EXPECT_LT(r.bandwidth_gb_s(), 6.6);
  EXPECT_GT(r.pause_frames, 0u);
}

TEST(CaseStudyTraffic, FpgaVariantsMoveDataOverPcieOnce) {
  ImageStreamConfig cfg;
  cfg.count = 64;
  CaseStudyResult uram = run_snacc_case_study(core::Variant::kUram, cfg);
  CaseStudyResult host = run_snacc_case_study(core::Variant::kHostDram, cfg);
  ASSERT_TRUE(uram.ok);
  ASSERT_TRUE(host.ok);
  // URAM: payload crosses PCIe once (SSD pulls from FPGA); host-DRAM
  // variant crosses twice (FPGA -> host, host -> SSD). Fig. 7.
  const double total = static_cast<double>(cfg.total_bytes());
  EXPECT_NEAR(uram.pcie_total_bytes / total, 1.0, 0.15);
  EXPECT_NEAR(host.pcie_total_bytes / total, 2.0, 0.2);
}

}  // namespace
}  // namespace snacc::apps
