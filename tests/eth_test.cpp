// Ethernet MAC + 802.3x flow-control tests: line-rate throughput, pause
// assertion/release, losslessness under random consumer stalls (property),
// and pause propagation through a switch.
#include <gtest/gtest.h>

#include "common/calibration.hpp"
#include "common/rng.hpp"
#include "eth/switch.hpp"

namespace snacc::eth {
namespace {

struct LinkPair {
  explicit LinkPair(sim::Simulator& sim, const EthProfile& p)
      : a_to_b(sim, p), b_to_a(sim, p), a(sim, p, a_to_b, b_to_a, "a"),
        b(sim, p, b_to_a, a_to_b, "b") {
    a.start();
    b.start();
  }
  Wire a_to_b;
  Wire b_to_a;
  Mac a;
  Mac b;
};

TEST(Eth, FramesArriveInOrderWithContent) {
  sim::Simulator sim;
  EthProfile profile;
  LinkPair link(sim, profile);
  auto sender = [&]() -> sim::Task {
    for (std::uint64_t i = 0; i < 10; ++i) {
      co_await link.a.send(Frame(Payload::filled(1000, static_cast<std::uint8_t>(i)),
                                 1, i * 1000, i == 9));
    }
  };
  std::vector<std::uint64_t> offsets;
  bool saw_end = false;
  auto receiver = [&]() -> sim::Task {
    for (int i = 0; i < 10; ++i) {
      std::optional<Frame> f;
      co_await link.b.recv_accounted(&f);
      EXPECT_TRUE(f.has_value());
      if (!f) co_return;
      offsets.push_back(f->offset);
      saw_end = saw_end || f->end_of_object;
      EXPECT_TRUE(f->payload.content_equals(
          Payload::filled(1000, static_cast<std::uint8_t>(i))));
    }
  };
  sim.spawn(sender());
  sim.spawn(receiver());
  sim.run();
  ASSERT_EQ(offsets.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(offsets[i], i * 1000);
  EXPECT_TRUE(saw_end);
}

TEST(Eth, ThroughputApproachesLineRate) {
  sim::Simulator sim;
  EthProfile profile;
  LinkPair link(sim, profile);
  const std::uint64_t kFrames = 4000;
  const std::uint64_t kBytes = profile.mtu;
  TimePs t_end;
  auto sender = [&]() -> sim::Task {
    for (std::uint64_t i = 0; i < kFrames; ++i) {
      co_await link.a.send(Frame(Payload::phantom(kBytes), 1, i * kBytes, false));
    }
  };
  auto receiver = [&]() -> sim::Task {
    for (std::uint64_t i = 0; i < kFrames; ++i) {
      std::optional<Frame> f;
      co_await link.b.recv_accounted(&f);
    }
    t_end = sim.now();
  };
  sim.spawn(sender());
  sim.spawn(receiver());
  sim.run();
  const double gbs = gb_per_s(kFrames * kBytes, t_end);
  EXPECT_GT(gbs, 12.5 * 0.95);  // goodput ~ line rate minus framing
  EXPECT_LE(gbs, 12.5);
}

TEST(Eth, SlowConsumerAssertsPauseAndNothingIsLost) {
  sim::Simulator sim;
  EthProfile profile;
  LinkPair link(sim, profile);
  const std::uint64_t kFrames = 600;
  std::uint64_t received = 0;
  auto sender = [&]() -> sim::Task {
    for (std::uint64_t i = 0; i < kFrames; ++i) {
      co_await link.a.send(Frame(Payload::phantom(profile.mtu), 1, i, false));
    }
  };
  auto receiver = [&]() -> sim::Task {
    for (std::uint64_t i = 0; i < kFrames; ++i) {
      std::optional<Frame> f;
      co_await link.b.recv_accounted(&f);
      EXPECT_TRUE(f.has_value());
      if (!f) co_return;
      EXPECT_EQ(f->offset, i) << "frame lost or reordered";
      ++received;
      co_await sim.delay(us(2));  // consume at ~2 GB/s << 12.5 GB/s line
    }
  };
  sim.spawn(sender());
  sim.spawn(receiver());
  sim.run();
  EXPECT_EQ(received, kFrames);
  EXPECT_GT(link.b.pauses_sent(), 0u);
  EXPECT_GT(link.a.pauses_received(), 0u);
  // Receiver FIFO never exceeded its physical capacity.
  EXPECT_LE(link.b.rx_backlog_bytes(), profile.rx_fifo_bytes);
}

class EthLossless : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EthLossless, RandomStallsNeverDropFrames) {
  sim::Simulator sim;
  EthProfile profile;
  LinkPair link(sim, profile);
  Xoshiro256 rng(GetParam());
  const std::uint64_t kFrames = 400;
  std::uint64_t received = 0;
  std::uint64_t max_backlog = 0;
  auto sender = [&]() -> sim::Task {
    Xoshiro256 srng(GetParam() * 7 + 1);
    for (std::uint64_t i = 0; i < kFrames; ++i) {
      const std::uint64_t size = 64 + srng.below(profile.mtu - 64);
      co_await link.a.send(Frame(Payload::phantom(size), 1, i, false));
      if (srng.chance(0.1)) co_await sim.delay(us(srng.below(5)));
    }
  };
  auto receiver = [&]() -> sim::Task {
    for (std::uint64_t i = 0; i < kFrames; ++i) {
      std::optional<Frame> f;
      co_await link.b.recv_accounted(&f);
      EXPECT_TRUE(f.has_value());
      if (!f) co_return;
      EXPECT_EQ(f->offset, i);
      ++received;
      max_backlog = std::max<std::uint64_t>(max_backlog, link.b.rx_backlog_bytes());
      if (rng.chance(0.3)) co_await sim.delay(us(rng.below(20)));
    }
  };
  sim.spawn(sender());
  sim.spawn(receiver());
  sim.run();
  EXPECT_EQ(received, kFrames);
  EXPECT_LE(max_backlog, profile.rx_fifo_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EthLossless, ::testing::Values(1, 2, 3, 4, 5));

TEST(Eth, PausePropagatesThroughSwitch) {
  sim::Simulator sim;
  EthProfile profile;
  // endpoint A -- switch -- endpoint B, B consumes slowly.
  Wire a_out(sim, profile), a_in(sim, profile);
  Wire b_out(sim, profile), b_in(sim, profile);
  Mac a(sim, profile, a_out, a_in, "A");
  Mac b(sim, profile, b_out, b_in, "B");
  // Switch port A receives from a_out and transmits to a_in, etc.
  Switch sw(sim, profile, a_out, a_in, b_out, b_in);
  a.start();
  b.start();
  sw.start();

  const std::uint64_t kFrames = 400;
  std::uint64_t received = 0;
  auto sender = [&]() -> sim::Task {
    for (std::uint64_t i = 0; i < kFrames; ++i) {
      co_await a.send(Frame(Payload::phantom(profile.mtu), 1, i, false));
    }
  };
  auto receiver = [&]() -> sim::Task {
    for (std::uint64_t i = 0; i < kFrames; ++i) {
      std::optional<Frame> f;
      co_await b.recv_accounted(&f);
      EXPECT_TRUE(f.has_value());
      if (!f) co_return;
      EXPECT_EQ(f->offset, i);
      ++received;
      co_await sim.delay(us(3));  // slow sink
    }
  };
  sim.spawn(sender());
  sim.spawn(receiver());
  sim.run();
  EXPECT_EQ(received, kFrames);
  // B paused the switch; the switch buffered, then paused A.
  EXPECT_GT(b.pauses_sent(), 0u);
  EXPECT_GT(a.pauses_received(), 0u);
}

}  // namespace
}  // namespace snacc::eth
