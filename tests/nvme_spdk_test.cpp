// Integration tests of the host -> PCIe -> NVMe path via the SPDK-style
// driver: controller bring-up through real admin commands, data integrity
// over PRP lists, MDTS splitting, out-of-order completion harvesting, and
// basic performance sanity (sequential read should be link-limited).
#include <gtest/gtest.h>

#include "host/system.hpp"
#include "spdk/driver.hpp"

namespace snacc {
namespace {

using host::System;
using spdk::Driver;
using spdk::WorkloadResult;

class SpdkFixture : public ::testing::Test {
 protected:
  void init_driver(spdk::DriverConfig cfg = {}) {
    driver_ = std::make_unique<Driver>(sys_.sim(), sys_.fabric(), sys_.host_mem(),
                                       host::addr_map::kHostDramBase, sys_.ssd(),
                                       sys_.config().profile.host, cfg);
    bool done = false;
    auto boot = [&]() -> sim::Task {
      co_await driver_->init();
      done = true;
    };
    sys_.sim().spawn(boot());
    sys_.sim().run_until(sys_.sim().now() + seconds(1));
    ASSERT_TRUE(done) << "driver init did not finish";
  }

  System sys_;
  std::unique_ptr<Driver> driver_;
};

TEST_F(SpdkFixture, InitCompletesAndIdentifies) {
  init_driver();
  EXPECT_TRUE(driver_->initialized());
  EXPECT_TRUE(sys_.ssd().ready());
  EXPECT_EQ(driver_->identify_data().max_transfer_bytes, 1 * MiB);
  EXPECT_EQ(driver_->identify_data().namespace_blocks,
            sys_.ssd().namespace_blocks());
}

TEST_F(SpdkFixture, SmallWriteReadRoundTrip) {
  init_driver();
  Payload data = Payload::filled(4096, 0xAB);
  bool done = false;
  nvme::Status wst{};
  nvme::Status rst{};
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await driver_->write(Lba{100}, data, &wst);
    co_await driver_->read(Lba{100}, Bytes{4096}, &got, &rst);
    done = true;
  };
  sys_.sim().spawn(io());
  sys_.sim().run_until(sys_.sim().now() + seconds(1));
  ASSERT_TRUE(done);
  EXPECT_EQ(wst, nvme::Status::kSuccess);
  EXPECT_EQ(rst, nvme::Status::kSuccess);
  ASSERT_TRUE(got.has_data());
  EXPECT_TRUE(got.content_equals(data));
}

TEST_F(SpdkFixture, LargeTransferUsesPrpListAndSurvivesRoundTrip) {
  init_driver();
  // 1 MiB => PRP1 + a 255-entry PRP list, the exact shape of Sec. 4.4.
  std::vector<std::byte> bytes(1 * MiB);
  Xoshiro256 rng(42);
  for (auto& b : bytes) b = static_cast<std::byte>(rng.next() & 0xFF);
  Payload data = Payload::bytes(std::move(bytes));

  bool done = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await driver_->write(Lba{5000}, data);
    co_await driver_->read(Lba{5000}, Bytes{1 * MiB}, &got);
    done = true;
  };
  sys_.sim().spawn(io());
  sys_.sim().run_until(sys_.sim().now() + seconds(2));
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.has_data());
  EXPECT_TRUE(got.content_equals(data));
}

TEST_F(SpdkFixture, MultiCommandTransferSplitsAtMdts) {
  init_driver();
  // 3.5 MiB spans four commands (1+1+1+0.5).
  Payload data = Payload::filled(3 * MiB + 512 * KiB, 0x5C);
  bool done = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await driver_->write(Lba{}, data);
    co_await driver_->read(Lba{}, Bytes{data.size()}, &got);
    done = true;
  };
  sys_.sim().spawn(io());
  sys_.sim().run_until(sys_.sim().now() + seconds(2));
  ASSERT_TRUE(done);
  EXPECT_TRUE(got.content_equals(data));
  EXPECT_GE(sys_.ssd().commands_completed(), 8u);
}

TEST_F(SpdkFixture, OutOfRangeLbaFails) {
  init_driver();
  bool done = false;
  nvme::Status st{};
  auto io = [&]() -> sim::Task {
    co_await driver_->write(Lba{sys_.ssd().namespace_blocks() - 1},
                            Payload::filled(8192, 1), &st);
    done = true;
  };
  sys_.sim().spawn(io());
  sys_.sim().run_until(sys_.sim().now() + seconds(1));
  ASSERT_TRUE(done);
  EXPECT_EQ(st, nvme::Status::kLbaOutOfRange);
}

TEST_F(SpdkFixture, SequentialReadIsLinkLimited) {
  init_driver();
  WorkloadResult res;
  bool done = false;
  auto io = [&]() -> sim::Task {
    co_await driver_->run_sequential(/*is_write=*/false, Lba{},
                                     Bytes{256 * MiB}, Bytes{1 * MiB}, &res);
    done = true;
  };
  sys_.sim().spawn(io());
  sys_.sim().run_until(sys_.sim().now() + seconds(5));
  ASSERT_TRUE(done);
  // Paper Fig. 4a: ~6.9 GB/s sequential read through SPDK.
  EXPECT_GT(res.bandwidth_gb_s(), 6.0);
  EXPECT_LT(res.bandwidth_gb_s(), 7.2);
}

TEST_F(SpdkFixture, SequentialWriteLandsInOneProgramMode) {
  init_driver();
  sys_.ssd().nand().force_mode(/*fast=*/true);
  WorkloadResult res;
  bool done = false;
  auto io = [&]() -> sim::Task {
    co_await driver_->run_sequential(/*is_write=*/true, Lba{},
                                     Bytes{256 * MiB}, Bytes{1 * MiB}, &res);
    done = true;
  };
  sys_.sim().spawn(io());
  sys_.sim().run_until(sys_.sim().now() + seconds(5));
  ASSERT_TRUE(done);
  // Paper Fig. 4a: 6.24 GB/s in the fast program mode via SPDK.
  EXPECT_NEAR(res.bandwidth_gb_s(), 6.24, 0.3);
}

TEST_F(SpdkFixture, RandomReadKeepsQueueDepthBusy) {
  init_driver();
  WorkloadResult res;
  bool done = false;
  auto io = [&]() -> sim::Task {
    co_await driver_->run_random(/*is_write=*/false, Bytes{64 * MiB},
                                 Bytes{4 * KiB},
                                 /*region_blocks=*/1u << 20, /*seed=*/7, &res);
    done = true;
  };
  sys_.sim().spawn(io());
  sys_.sim().run_until(sys_.sim().now() + seconds(5));
  ASSERT_TRUE(done);
  // Paper Fig. 4b: ~4.5 GB/s random 4 kB read at QD 64 via SPDK.
  EXPECT_GT(res.bandwidth_gb_s(), 3.5);
  EXPECT_LT(res.bandwidth_gb_s(), 5.5);
  EXPECT_EQ(res.commands, (64 * MiB) / (4 * KiB));
}

TEST_F(SpdkFixture, CpuThreadIsBusyDuringWorkload) {
  init_driver();
  WorkloadResult res;
  bool done = false;
  driver_->cpu().reset();
  TimePs t0;
  TimePs t1;
  auto io = [&]() -> sim::Task {
    t0 = sys_.sim().now();
    co_await driver_->run_sequential(false, Lba{}, Bytes{64 * MiB},
                                     Bytes{1 * MiB}, &res);
    t1 = sys_.sim().now();
    done = true;
  };
  sys_.sim().spawn(io());
  sys_.sim().run_until(sys_.sim().now() + seconds(5));
  ASSERT_TRUE(done);
  // The polling thread burns CPU the whole time (Sec. 6.3).
  EXPECT_GT(driver_->cpu().utilization(t1 - t0), 0.5);
}

TEST_F(SpdkFixture, IommuFaultOnUngrantedAccessFailsCommand) {
  init_driver();
  // Revoke the SSD's grant: payload fetches now fault.
  sys_.fabric().iommu().revoke_all(sys_.ssd().port());
  bool done = false;
  nvme::Status st{};
  auto io = [&]() -> sim::Task {
    co_await driver_->write(Lba{}, Payload::filled(4096, 9), &st);
    done = true;
  };
  sys_.sim().spawn(io());
  sys_.sim().run_until(sys_.sim().now() + seconds(1));
  // The SQE fetch itself faults, so the command may never complete; either
  // way the fabric must have recorded faults and no data must reach media.
  EXPECT_GT(sys_.fabric().iommu().faults(), 0u);
  (void)done;
  EXPECT_EQ(sys_.ssd().media().resident_pages(), 0u);
}

}  // namespace
}  // namespace snacc
