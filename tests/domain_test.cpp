// Unit tests for the parallel kernel: SimCluster window planning, Mailbox
// transfer timing, credit backpressure across a domain boundary, close
// semantics in both directions (drain-at-shutdown, failed-push results,
// parked-waiter wakeups), and the seeded-merge determinism guarantee --
// the same topology + seed must be bit-identical for every worker thread
// count. Labeled "parallel" so the TSan CI job can select exactly the
// multi-threaded suites.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace snacc::sim {
namespace {

TEST(SimCluster, SingleDomainRunsLikeASimulator) {
  SimCluster cluster(1);
  Domain& d = cluster.domain(0);
  std::vector<int> order;
  d.at(ns(30), [&] { order.push_back(3); });
  d.at(ns(10), [&] { order.push_back(1); });
  d.at(ns(10), [&] { order.push_back(2); });
  cluster.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(d.now(), ns(30));
  EXPECT_TRUE(cluster.idle());
}

TEST(SimCluster, IndependentDomainsBothDrain) {
  SimCluster cluster(2);
  int a = 0, b = 0;
  cluster.domain(0).at(ns(5), [&] { a = 1; });
  cluster.domain(1).at(ns(9), [&] { b = 1; });
  cluster.run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(cluster.events_processed(), 2u);
}

TEST(SimCluster, RunUntilAdvancesEveryClockToHorizon) {
  SimCluster cluster(2);
  int fired = 0;
  cluster.domain(0).at(us(1), [&] { ++fired; });
  cluster.domain(0).at(us(3), [&] { ++fired; });
  cluster.run_until(us(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(cluster.domain(0).now(), us(2));
  EXPECT_EQ(cluster.domain(1).now(), us(2));
  cluster.run();
  EXPECT_EQ(fired, 2);
}

TEST(Mailbox, ValueArrivesAfterLinkLatency) {
  SimCluster cluster(2);
  Domain& p = cluster.domain(0);
  Domain& c = cluster.domain(1);
  Mailbox<int> mb(p, c, 4, ns(500));

  TimePs arrived;
  int got = 0;
  auto producer = [&]() -> Task {
    co_await p.delay(ns(100));
    co_await mb.push(42);
  };
  auto consumer = [&]() -> Task {
    auto v = co_await mb.pop();
    EXPECT_TRUE(v.has_value());
    if (v) got = *v;
    arrived = c.now();
  };
  p.spawn(producer());
  c.spawn(consumer());
  cluster.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(arrived, ns(600));  // pushed at 100, +500 link latency
}

TEST(Mailbox, FifoOrderAcrossTheBoundary) {
  SimCluster cluster(2);
  Mailbox<int> mb(cluster.domain(0), cluster.domain(1), 8, ns(100));
  std::vector<int> got;
  auto producer = [&]() -> Task {
    for (int i = 0; i < 6; ++i) co_await mb.push(i);
    mb.close();
  };
  auto consumer = [&]() -> Task {
    while (auto v = co_await mb.pop()) got.push_back(*v);
  };
  cluster.domain(0).spawn(producer());
  cluster.domain(1).spawn(consumer());
  cluster.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Mailbox, CreditBackpressureParksAndResumesProducer) {
  SimCluster cluster(2);
  Domain& p = cluster.domain(0);
  Domain& c = cluster.domain(1);
  Mailbox<int> mb(p, c, /*capacity=*/1, ns(100));

  std::vector<TimePs> push_done;
  auto producer = [&]() -> Task {
    for (int i = 0; i < 3; ++i) {
      bool ok = co_await mb.push(i);
      EXPECT_TRUE(ok);
      push_done.push_back(p.now());
    }
    mb.close();
  };
  std::vector<int> got;
  auto consumer = [&]() -> Task {
    while (auto v = co_await mb.pop()) {
      got.push_back(*v);
      co_await c.delay(ns(1000));  // slow consumer forces producer parking
    }
  };
  p.spawn(producer());
  c.spawn(consumer());
  cluster.run();

  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
  ASSERT_EQ(push_done.size(), 3u);
  // First push has the free credit and completes at t=0. The second parks
  // until the first value's pop (t=100 arrival) returns a credit at
  // 100 + latency = 200. The third parks behind the second value's pop
  // (arrives 300, popped after the 1000ns stall at 1100) -> credit at 1200.
  EXPECT_EQ(push_done[0], ns(0));
  EXPECT_EQ(push_done[1], ns(200));
  EXPECT_EQ(push_done[2], ns(1200));
}

TEST(Mailbox, CloseDrainsInFlightValuesBeforeNullopt) {
  SimCluster cluster(2);
  Mailbox<int> mb(cluster.domain(0), cluster.domain(1), 8, ns(100));
  auto producer = [&]() -> Task {
    co_await mb.push(1);
    co_await mb.push(2);
    mb.close();  // marker trails the two values through the same link
    co_return;
  };
  std::vector<int> got;
  bool saw_end = false;
  auto consumer = [&]() -> Task {
    for (;;) {
      auto v = co_await mb.pop();
      if (!v) {
        saw_end = true;
        break;
      }
      got.push_back(*v);
    }
  };
  cluster.domain(0).spawn(producer());
  cluster.domain(1).spawn(consumer());
  cluster.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  EXPECT_TRUE(saw_end);
  EXPECT_TRUE(mb.rx_closed());
}

TEST(Mailbox, CloseFailsParkedProducerImmediately) {
  SimCluster cluster(2);
  Domain& p = cluster.domain(0);
  Mailbox<int> mb(p, cluster.domain(1), /*capacity=*/1, ns(100));

  bool parked_result = true;
  auto producer = [&]() -> Task {
    EXPECT_TRUE(co_await mb.push(1));      // takes the only credit
    parked_result = co_await mb.push(2);   // parks -- no credit left
  };
  auto closer = [&]() -> Task {
    co_await p.delay(ns(50));
    mb.close();
    co_return;
  };
  p.spawn(producer());
  p.spawn(closer());
  // No consumer pops, so no credit ever comes back; only close() can
  // resolve the parked push.
  cluster.run();
  EXPECT_FALSE(parked_result);
}

TEST(Mailbox, CloseRxFailsSubsequentAndParkedPushes) {
  SimCluster cluster(2);
  Domain& p = cluster.domain(0);
  Domain& c = cluster.domain(1);
  Mailbox<int> mb(p, c, /*capacity=*/1, ns(100));

  std::vector<bool> results;
  auto producer = [&]() -> Task {
    results.push_back(co_await mb.push(1));  // accepted (credit available)
    results.push_back(co_await mb.push(2));  // parks; failed by hangup
    results.push_back(co_await mb.push(3));  // after hangup: fails fast
  };
  auto consumer = [&]() -> Task {
    co_await c.delay(ns(50));
    mb.close_rx();
    co_return;
  };
  p.spawn(producer());
  c.spawn(consumer());
  cluster.run();

  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0]);
  EXPECT_FALSE(results[1]);  // parked producer woken with failed push
  EXPECT_FALSE(results[2]);
  EXPECT_TRUE(mb.peer_closed());
}

TEST(Mailbox, CloseRxWakesParkedConsumerWithNullopt) {
  SimCluster cluster(2);
  Domain& c = cluster.domain(1);
  Mailbox<int> mb(cluster.domain(0), c, 4, ns(100));
  bool got_nullopt = false;
  auto consumer = [&]() -> Task {
    auto v = co_await mb.pop();  // parks -- nothing was ever pushed
    got_nullopt = !v.has_value();
  };
  auto hangup = [&]() -> Task {
    co_await c.delay(ns(10));
    mb.close_rx();
    co_return;
  };
  c.spawn(consumer());
  c.spawn(hangup());
  cluster.run();
  EXPECT_TRUE(got_nullopt);
}

TEST(Mailbox, TeardownWithRecordsStillInFlight) {
  // A mailbox destroyed while deliveries are linked in the peer domain's
  // heap must withdraw them (no dangling EventNodes in ~Domain).
  SimCluster cluster(2);
  {
    Mailbox<int> mb(cluster.domain(0), cluster.domain(1), 4, ns(100));
    auto producer = [&]() -> Task {
      co_await mb.push(7);
      co_return;
    };
    cluster.domain(0).spawn(producer());
    cluster.run_until(ns(150));  // value now linked in domain 1's heap
  }
  cluster.run();  // must not fire into the dead mailbox
}

// -- Determinism across worker thread counts -------------------------------

/// A little 3-domain pipeline with contention: two producer domains feed one
/// consumer domain through separate mailboxes at the same link latency, with
/// seeded pseudo-random spacing, so merge ordering actually matters. Returns
/// the consumer's observation log.
std::string run_pipeline(unsigned threads, std::uint64_t seed) {
  SimCluster cluster(3, threads);
  Domain& pa = cluster.domain(0);
  Domain& pb = cluster.domain(1);
  Domain& c = cluster.domain(2);
  Mailbox<std::uint64_t> ma(pa, c, 2, ns(100));
  Mailbox<std::uint64_t> mb(pb, c, 2, ns(100));

  auto producer = [](Domain& d, Mailbox<std::uint64_t>& m,
                     std::uint64_t lcg) -> Task {
    for (int i = 0; i < 40; ++i) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      co_await d.delay(TimePs{(lcg >> 33) % 250});
      if (!co_await m.push(lcg >> 40)) break;
    }
    m.close();
  };
  std::string log;
  auto consumer = [&]() -> Task {
    bool a_open = true, b_open = true;
    while (a_open || b_open) {
      if (a_open) {
        if (auto v = co_await ma.pop()) {
          log += 'a' + std::to_string(c.now().value() % 100000) +
                 ':' + std::to_string(*v) + ' ';
        } else {
          a_open = false;
        }
      }
      if (b_open) {
        if (auto v = co_await mb.pop()) {
          log += 'b' + std::to_string(c.now().value() % 100000) +
                 ':' + std::to_string(*v) + ' ';
        } else {
          b_open = false;
        }
      }
    }
  };
  pa.spawn(producer(pa, ma, seed));
  pb.spawn(producer(pb, mb, seed ^ 0x9e3779b97f4a7c15ull));
  c.spawn(consumer());
  cluster.run();
  log += "| events=" + std::to_string(cluster.events_processed());
  return log;
}

TEST(SimCluster, BitIdenticalAcrossThreadCounts) {
  const std::string one = run_pipeline(1, 12345);
  EXPECT_EQ(one, run_pipeline(2, 12345)) << "1 vs 2 workers diverged";
  EXPECT_EQ(one, run_pipeline(3, 12345)) << "1 vs 3 workers diverged";
  EXPECT_EQ(one, run_pipeline(1, 12345)) << "re-run with same seed diverged";
  EXPECT_NE(one, run_pipeline(1, 54321)) << "seed has no effect?";
}

#ifndef NDEBUG
TEST(DomainDeathTest, FrameResumedOnWrongDomainFailsFast) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        SimCluster cluster(2);
        EventNode n;
        cluster.domain(0).schedule(n, ns(1));
        cluster.domain(0).cancel(n);
        cluster.domain(1).schedule(n, ns(1));  // sticky owner assert fires
      },
      "domain other than its owner");
}
#endif

}  // namespace
}  // namespace snacc::sim
