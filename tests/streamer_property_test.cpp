// Property tests of the full streamer stack: randomized interleaved
// reads/writes with end-to-end integrity against a reference model, across
// all buffer variants and both retirement engines; plus invariants on the
// analytic resource model.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "host/snacc_device.hpp"
#include "host/system.hpp"
#include "snacc/pe_client.hpp"
#include "snacc/resource_model.hpp"

namespace snacc {
namespace {

using core::Variant;

struct Config {
  Variant variant;
  bool out_of_order;
  std::uint64_t seed;
};

class MixedWorkload : public ::testing::TestWithParam<Config> {};

/// Reference model: a flat byte image of what the device must contain.
class Reference {
 public:
  explicit Reference(std::uint64_t region)
      : data_(region, 0), written_(region, false) {}

  void write(std::uint64_t addr, const Payload& p) {
    auto v = p.view();
    for (std::uint64_t i = 0; i < v.size(); ++i) {
      data_[addr + i] = static_cast<std::uint8_t>(v[i]);
      written_[addr + i] = true;
    }
  }
  bool check(std::uint64_t addr, const Payload& got, std::string* err) const {
    if (!got.has_data()) {
      *err = "phantom read of real data";
      return false;
    }
    auto v = got.view();
    for (std::uint64_t i = 0; i < v.size(); ++i) {
      if (static_cast<std::uint8_t>(v[i]) != data_[addr + i]) {
        *err = "mismatch at device byte " + std::to_string(addr + i);
        return false;
      }
    }
    return true;
  }
  bool covered(std::uint64_t addr, std::uint64_t len) const {
    // Only check fully-written ranges (unwritten media reads back phantom).
    for (std::uint64_t i = 0; i < len; ++i) {
      if (!written_[addr + i]) return false;
    }
    return true;
  }

 private:
  std::vector<std::uint8_t> data_;
  std::vector<bool> written_;
};

TEST_P(MixedWorkload, RandomizedInterleavedIoMatchesReference) {
  const Config cfg = GetParam();
  host::System sys;
  sys.ssd().nand().force_mode(true);
  host::SnaccDeviceConfig dcfg;
  dcfg.streamer.variant = cfg.variant;
  dcfg.streamer.out_of_order = cfg.out_of_order;
  host::SnaccDevice dev(sys, dcfg);
  bool booted = false;
  auto boot = [&]() -> sim::Task {
    co_await dev.init();
    booted = true;
  };
  sys.sim().spawn(boot());
  sys.sim().run_until(seconds(1));
  ASSERT_TRUE(booted);

  core::PeClient pe(dev.streamer());
  Reference ref(64 * MiB);
  Xoshiro256 rng(cfg.seed);
  bool done = false;
  int checks = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;
  auto workload = [&]() -> sim::Task {
    const std::uint64_t region = 64 * MiB;
    for (int op = 0; op < 60; ++op) {
      if (extents.empty() || rng.chance(0.6)) {
        // Block-aligned write of 4 KiB .. ~1.5 MiB with random fill.
        const std::uint64_t len = kPageSize * (1 + rng.below(384));
        const std::uint64_t addr =
            (rng.below((region - len) / kPageSize)) * kPageSize;
        std::vector<std::byte> data(len);
        const std::uint8_t tag = static_cast<std::uint8_t>(rng.next());
        for (std::uint64_t i = 0; i < len; i += 512) {
          data[i] = static_cast<std::byte>(tag ^ (i >> 9));
        }
        Payload p = Payload::bytes(std::move(data));
        ref.write(addr, p);
        extents.emplace_back(addr, len);
        co_await pe.write(Bytes{addr}, std::move(p));
      } else {
        // Read a random (possibly unaligned) subrange of a past write.
        const auto [w_addr, w_len] = extents[rng.below(extents.size())];
        const std::uint64_t off = rng.below(w_len);
        const std::uint64_t len = 1 + rng.below(w_len - off);
        const std::uint64_t addr = w_addr + off;
        if (!ref.covered(addr, len)) continue;  // later write may overlap
        Payload got;
        co_await pe.read(Bytes{addr}, Bytes{len}, &got);
        std::string err;
        EXPECT_TRUE(ref.check(addr, got, &err)) << err << " (op " << op << ")";
        ++checks;
      }
    }
    done = true;
  };
  sys.sim().spawn(workload());
  sys.sim().run_until(sys.sim().now() + seconds(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(dev.streamer().errors(), 0u);
  // At least a few reads must have validated data (seed-dependent).
  EXPECT_GT(checks, 10);
}

// Same randomized workload under NAND read faults with recovery enabled: a
// low probabilistic fault rate plus one scheduled hit (so every seed sees at
// least one fault) must not cost any data integrity, and the streamer's
// counters must account for every error -- no lost commands, no hangs.
class FaultedWorkload : public ::testing::TestWithParam<Config> {};

TEST_P(FaultedWorkload, RecoveryPreservesIntegrityAndAccountsForFaults) {
  const Config cfg = GetParam();
  host::System sys;
  sys.ssd().nand().force_mode(true);
  fault::FaultPlan plan = fault::FaultPlan::rate(2e-3, cfg.seed);
  plan.schedule = {10};  // guarantee at least one mid-stream fault
  sys.ssd().nand().set_read_fault_plan(plan);
  host::SnaccDeviceConfig dcfg;
  dcfg.streamer.variant = cfg.variant;
  dcfg.streamer.out_of_order = cfg.out_of_order;
  dcfg.streamer.recovery = true;
  dcfg.streamer.max_retries = 6;
  dcfg.streamer.retry_backoff = us(2);
  host::SnaccDevice dev(sys, dcfg);
  bool booted = false;
  auto boot = [&]() -> sim::Task {
    co_await dev.init();
    booted = true;
  };
  sys.sim().spawn(boot());
  sys.sim().run_until(seconds(1));
  ASSERT_TRUE(booted);

  core::PeClient pe(dev.streamer());
  Reference ref(64 * MiB);
  Xoshiro256 rng(cfg.seed);
  bool done = false;
  int checks = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;
  auto workload = [&]() -> sim::Task {
    const std::uint64_t region = 64 * MiB;
    for (int op = 0; op < 60; ++op) {
      if (extents.empty() || rng.chance(0.6)) {
        const std::uint64_t len = kPageSize * (1 + rng.below(384));
        const std::uint64_t addr =
            (rng.below((region - len) / kPageSize)) * kPageSize;
        std::vector<std::byte> data(len);
        const std::uint8_t tag = static_cast<std::uint8_t>(rng.next());
        for (std::uint64_t i = 0; i < len; i += 512) {
          data[i] = static_cast<std::byte>(tag ^ (i >> 9));
        }
        Payload p = Payload::bytes(std::move(data));
        ref.write(addr, p);
        extents.emplace_back(addr, len);
        bool err = false;
        co_await pe.write(Bytes{addr}, std::move(p), Bytes{16 * KiB}, &err);
        EXPECT_FALSE(err) << "write quarantined (op " << op << ")";
      } else {
        const auto [w_addr, w_len] = extents[rng.below(extents.size())];
        const std::uint64_t off = rng.below(w_len);
        const std::uint64_t len = 1 + rng.below(w_len - off);
        const std::uint64_t addr = w_addr + off;
        if (!ref.covered(addr, len)) continue;
        Payload got;
        bool err = false;
        co_await pe.read(Bytes{addr}, Bytes{len}, &got, &err);
        EXPECT_FALSE(err) << "read quarantined (op " << op << ")";
        std::string err_msg;
        EXPECT_TRUE(ref.check(addr, got, &err_msg))
            << err_msg << " (op " << op << ")";
        ++checks;
      }
    }
    done = true;
  };
  sys.sim().spawn(workload());
  sys.sim().run_until(sys.sim().now() + seconds(60));
  ASSERT_TRUE(done);
  EXPECT_GT(checks, 10);

  const auto& s = dev.streamer();
  // The scheduled fault guarantees at least one recovery happened.
  EXPECT_GE(s.retries(), 1u);
  EXPECT_GE(s.recovered(), 1u);
  EXPECT_EQ(s.quarantined(), 0u) << "retry budget must absorb all faults";
  // Every error CQE was either retried or quarantined -- nothing leaked.
  EXPECT_EQ(s.errors(), s.retries() + s.quarantined());
  // Every submission (first attempt or retry) was retired exactly once.
  EXPECT_EQ(s.commands_submitted(), s.commands_retired() + s.retries());
  // The injected NAND faults explain the device-side error CQEs. A command
  // spanning several pages can fault on more than one of them but posts a
  // single error CQE, so the injected count bounds the CQE count from above.
  EXPECT_GE(sys.ssd().nand().read_faults_injected(), sys.ssd().read_errors());
  EXPECT_GE(sys.ssd().read_errors(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    FaultSweep, FaultedWorkload,
    ::testing::Values(Config{Variant::kUram, false, 11},
                      Config{Variant::kUram, true, 12},
                      Config{Variant::kHostDram, false, 13},
                      Config{Variant::kHbm, true, 14}),
    [](const ::testing::TestParamInfo<Config>& info) {
      std::string name = core::variant_name(info.param.variant);
      for (auto& c : name) {
        if (c == ' ' || c == '-') c = '_';
      }
      return name + (info.param.out_of_order ? "_ooo" : "_inorder") + "_s" +
             std::to_string(info.param.seed);
    });

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  std::string name = core::variant_name(info.param.variant);
  for (auto& c : name) {
    if (c == ' ' || c == '-') c = '_';
  }
  return name + (info.param.out_of_order ? "_ooo" : "_inorder") + "_s" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MixedWorkload,
    ::testing::Values(Config{Variant::kUram, false, 1},
                      Config{Variant::kUram, true, 2},
                      Config{Variant::kOnboardDram, false, 3},
                      Config{Variant::kOnboardDram, true, 4},
                      Config{Variant::kHostDram, false, 5},
                      Config{Variant::kHostDram, true, 6},
                      Config{Variant::kHbm, false, 7},
                      Config{Variant::kHbm, true, 8}),
    config_name);

// ---------------------------------------------------------------------------
// Resource model invariants (Table 1)

TEST(ResourceModel, MatchesPaperTable1) {
  using core::ResourceUsage;
  core::StreamerConfig cfg;
  cfg.variant = Variant::kUram;
  ResourceUsage u = core::estimate_resources(cfg);
  EXPECT_EQ(u.lut, 7260u);
  EXPECT_EQ(u.ff, 8388u);
  EXPECT_EQ(u.bram_36k, 0.0);
  EXPECT_EQ(u.uram_bytes, 4 * MiB);
  EXPECT_NEAR(u.uram_pct(), 13.3, 0.1);

  cfg.variant = Variant::kOnboardDram;
  u = core::estimate_resources(cfg);
  EXPECT_EQ(u.lut, 14063u);
  EXPECT_EQ(u.ff, 16487u);
  EXPECT_EQ(u.bram_36k, 24.0);
  EXPECT_EQ(u.dram_bytes, 128 * MiB);
  EXPECT_FALSE(u.dram_is_host_pinned);

  cfg.variant = Variant::kHostDram;
  u = core::estimate_resources(cfg);
  EXPECT_EQ(u.lut, 12228u);
  EXPECT_EQ(u.ff, 13373u);
  EXPECT_EQ(u.bram_36k, 17.5);
  EXPECT_TRUE(u.dram_is_host_pinned);
}

TEST(ResourceModel, StructuralOrderings) {
  core::StreamerConfig cfg;
  std::map<Variant, core::ResourceUsage> u;
  for (Variant v : {Variant::kUram, Variant::kOnboardDram, Variant::kHostDram,
                    Variant::kHbm}) {
    cfg.variant = v;
    u[v] = core::estimate_resources(cfg);
  }
  // The URAM variant is cheapest in fabric logic (Sec. 5.4); the DRAM
  // variants cost 2-3x; HBM tops the on-board variant (extra AXI ports).
  EXPECT_LT(u[Variant::kUram].lut, u[Variant::kHostDram].lut);
  EXPECT_LT(u[Variant::kHostDram].lut, u[Variant::kOnboardDram].lut);
  EXPECT_LT(u[Variant::kOnboardDram].lut, u[Variant::kHbm].lut);
  // Only the URAM variant uses URAM blocks.
  EXPECT_GT(u[Variant::kUram].uram_bytes, 0u);
  EXPECT_EQ(u[Variant::kOnboardDram].uram_bytes, 0u);
  // OOO retirement adds logic to every variant.
  cfg.out_of_order = true;
  for (Variant v : {Variant::kUram, Variant::kOnboardDram}) {
    cfg.variant = v;
    const auto ooo = core::estimate_resources(cfg);
    EXPECT_GT(ooo.lut, u[v].lut);
    EXPECT_GT(ooo.ff, u[v].ff);
  }
}

}  // namespace
}  // namespace snacc
