// KvStore tests: put/get round trips, overwrite semantics (latest wins),
// values spanning multiple NVMe commands, index recovery from the on-device
// log, and capacity handling.
#include <gtest/gtest.h>

#include "apps/kv_store.hpp"
#include "common/rng.hpp"
#include "host/snacc_device.hpp"
#include "host/system.hpp"

namespace snacc::apps {
namespace {

struct KvFixture : ::testing::Test {
  KvFixture() {
    host::SnaccDeviceConfig cfg;
    cfg.streamer.variant = core::Variant::kUram;
    dev = std::make_unique<host::SnaccDevice>(sys, cfg);
    bool booted = false;
    auto boot = [](host::SnaccDevice* d, bool* f) -> sim::Task {
      co_await d->init();
      *f = true;
    };
    sys.sim().spawn(boot(dev.get(), &booted));
    sys.sim().run_until(seconds(1));
    EXPECT_TRUE(booted);
    store = std::make_unique<KvStore>(dev->streamer(), /*log_base=*/Bytes{},
                                      /*log_capacity=*/Bytes{256 * MiB});
  }

  void run(sim::Task t, std::uint64_t budget_s = 10) {
    sys.sim().spawn(std::move(t));
    sys.sim().run_until(sys.sim().now() + seconds(budget_s));
  }

  host::System sys;
  std::unique_ptr<host::SnaccDevice> dev;
  std::unique_ptr<KvStore> store;
};

TEST_F(KvFixture, PutGetRoundTrip) {
  bool done = false;
  auto t = [&]() -> sim::Task {
    PutStatus st = PutStatus::kIoError;
    co_await store->put("alpha", Payload::filled(1000, 0xA1), &st);
    EXPECT_EQ(st, PutStatus::kOk);
    Payload got;
    bool found = false;
    co_await store->get("alpha", &got, &found);
    EXPECT_TRUE(found);
    EXPECT_TRUE(got.content_equals(Payload::filled(1000, 0xA1)));
    co_await store->get("missing", nullptr, &found);
    EXPECT_FALSE(found);
    done = true;
  };
  run(t());
  ASSERT_TRUE(done);
  EXPECT_EQ(store->entries(), 1u);
}

TEST_F(KvFixture, OverwriteReturnsLatestVersion) {
  bool done = false;
  auto t = [&]() -> sim::Task {
    co_await store->put("key", Payload::filled(500, 0x01));
    co_await store->put("key", Payload::filled(900, 0x02));
    Payload got;
    bool found = false;
    co_await store->get("key", &got, &found);
    EXPECT_TRUE(found);
    EXPECT_EQ(got.size(), 900u);
    EXPECT_TRUE(got.content_equals(Payload::filled(900, 0x02)));
    done = true;
  };
  run(t());
  ASSERT_TRUE(done);
  EXPECT_EQ(store->entries(), 1u);  // one live key, two log records
  EXPECT_EQ(store->log_bytes_used().value(),
            (KvStore::record_span(Bytes{500}) + KvStore::record_span(Bytes{900}))
                .value());
}

TEST_F(KvFixture, LargeValueSpansMultipleCommands) {
  Xoshiro256 rng(3);
  std::vector<std::byte> big(2 * MiB + 5000);
  for (auto& b : big) b = static_cast<std::byte>(rng.next() & 0xFF);
  Payload value = Payload::bytes(std::move(big));
  bool done = false;
  auto t = [&]() -> sim::Task {
    co_await store->put("blob", value);
    Payload got;
    bool found = false;
    co_await store->get("blob", &got, &found);
    EXPECT_TRUE(found);
    EXPECT_TRUE(got.content_equals(value));
    done = true;
  };
  run(t());
  ASSERT_TRUE(done);
}

TEST_F(KvFixture, RecoveryRebuildsIndexFromLog) {
  bool done = false;
  auto t = [&]() -> sim::Task {
    for (int i = 0; i < 20; ++i) {
      co_await store->put("key-" + std::to_string(i),
                          Payload::filled(100 + i * 37,
                                          static_cast<std::uint8_t>(i)));
    }
    done = true;
  };
  run(t());
  ASSERT_TRUE(done);

  // A fresh store instance (lost in-memory index) recovers from the log.
  KvStore recovered(dev->streamer(), Bytes{}, Bytes{256 * MiB});
  bool done2 = false;
  auto t2 = [&]() -> sim::Task {
    std::uint64_t records = 0;
    co_await recovered.recover(&records);
    EXPECT_EQ(records, 20u);
    Payload got;
    bool found = false;
    co_await recovered.get("key-7", &got, &found);
    EXPECT_TRUE(found);
    EXPECT_TRUE(got.content_equals(Payload::filled(100 + 7 * 37, 7)));
    done2 = true;
  };
  run(t2());
  ASSERT_TRUE(done2);
  EXPECT_EQ(recovered.entries(), 20u);
  EXPECT_EQ(recovered.log_bytes_used(), store->log_bytes_used());
}

TEST_F(KvFixture, CompactionReclaimsOverwrittenSpace) {
  bool done = false;
  auto t = [&]() -> sim::Task {
    // 10 keys, each overwritten 4 times: 50 records, 10 live.
    for (int round = 0; round < 5; ++round) {
      for (int i = 0; i < 10; ++i) {
        co_await store->put(
            "k" + std::to_string(i),
            Payload::filled(1000 + i * 100,
                            static_cast<std::uint8_t>(round * 16 + i)));
      }
    }
    const Bytes before = store->log_bytes_used();
    Bytes reclaimed;
    co_await store->compact(/*scratch_base=*/Bytes{512 * MiB}, Bytes{256 * MiB},
                            &reclaimed);
    EXPECT_GT(reclaimed.value(), 0u);
    EXPECT_EQ(store->log_bytes_used().value(), (before - reclaimed).value());
    EXPECT_EQ(store->entries(), 10u);
    // Every key still returns its latest version.
    for (int i = 0; i < 10; ++i) {
      Payload got;
      bool found = false;
      co_await store->get("k" + std::to_string(i), &got, &found);
      EXPECT_TRUE(found);
      EXPECT_TRUE(got.content_equals(Payload::filled(
          1000 + i * 100, static_cast<std::uint8_t>(4 * 16 + i))));
    }
    done = true;
  };
  run(t());
  ASSERT_TRUE(done);

  // The compacted log is recoverable from the *original* region: the
  // superblock there names the new generation's extent.
  KvStore recovered(dev->streamer(), Bytes{}, Bytes{256 * MiB});
  bool done2 = false;
  auto t2 = [&]() -> sim::Task {
    std::uint64_t records = 0;
    co_await recovered.recover(&records);
    EXPECT_EQ(records, 10u);
    done2 = true;
  };
  run(t2());
  ASSERT_TRUE(done2);
}

TEST_F(KvFixture, CompactionAbortsWhenScratchTooSmall) {
  bool done = false;
  auto t = [&]() -> sim::Task {
    co_await store->put("a", Payload::filled(64 * KiB, 1));
    co_await store->put("b", Payload::filled(64 * KiB, 2));
    const Bytes before = store->log_bytes_used();
    Bytes reclaimed{123};
    co_await store->compact(Bytes{512 * MiB}, Bytes{8 * KiB}, &reclaimed);
    EXPECT_EQ(reclaimed.value(), 0u);
    EXPECT_EQ(store->log_bytes_used().value(), before.value());  // unchanged, still valid
    Payload got;
    bool found = false;
    co_await store->get("a", &got, &found);
    EXPECT_TRUE(found);
    done = true;
  };
  run(t());
  ASSERT_TRUE(done);
}

TEST_F(KvFixture, OversizedKeyAndFullLogAreRejected) {
  bool done = false;
  auto t = [&]() -> sim::Task {
    PutStatus st = PutStatus::kOk;
    co_await store->put(std::string(4000, 'k'), Payload::filled(10, 1), &st);
    EXPECT_EQ(st, PutStatus::kOversizedKey);
    done = true;
  };
  run(t());
  ASSERT_TRUE(done);

  KvStore tiny(dev->streamer(), Bytes{512 * MiB}, Bytes{16 * KiB});
  bool done2 = false;
  auto t2 = [&]() -> sim::Task {
    PutStatus st = PutStatus::kIoError;
    co_await tiny.put("fits", Payload::filled(100, 1), &st);
    EXPECT_EQ(st, PutStatus::kOk);
    co_await tiny.put("does-not", Payload::filled(100 * KiB, 2), &st);
    EXPECT_EQ(st, PutStatus::kLogFull);
    done2 = true;
  };
  run(t2());
  ASSERT_TRUE(done2);
}

}  // namespace
}  // namespace snacc::apps
