// Golden tests for the whole-program layer underneath the interprocedural
// rules: cross-TU call-graph construction (definitions, arity ranges,
// receiver-type disambiguation, lambda bindings, the conservative ambiguity
// policy from callgraph.hpp), bottom-up function summaries, the
// content-hash summary cache, and the genuinely cross-file code flow that
// lint_test.cpp's fixture checks defer to here.
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint/callgraph.hpp"
#include "lint/cfg.hpp"
#include "lint/engine.hpp"
#include "lint/scope.hpp"
#include "lint/source.hpp"
#include "lint/summary.hpp"

namespace {

/// Files, scopes, and the graph built over them; the files own the text the
/// graph's string_views point into, so everything lives together.
struct Prog {
  std::vector<std::unique_ptr<lint::SourceFile>> files;
  std::vector<lint::ScopeInfo> scopes;
  lint::CallGraph graph;
};

Prog build_graph(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  Prog p;
  std::vector<const lint::SourceFile*> fptrs;
  for (const auto& [rel, text] : sources) {
    p.files.push_back(lint::SourceFile::from_text(rel, text));
    EXPECT_NE(p.files.back(), nullptr);
    p.scopes.push_back(lint::analyze_scopes(p.files.back()->tokens()));
    fptrs.push_back(p.files.back().get());
  }
  p.graph = lint::CallGraph::build(fptrs, p.scopes);
  return p;
}

/// Same inputs, but runs the full summary layer on top of the graph.
struct Whole {
  Prog prog;
  std::vector<std::unique_ptr<lint::CfgCache>> cfgs;
  lint::ProgramInfo info;
};

Whole build_whole(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  Whole w;
  w.prog = build_graph(sources);
  std::vector<const lint::SourceFile*> fptrs;
  std::vector<const lint::CfgCache*> cptrs;
  for (std::size_t i = 0; i < w.prog.files.size(); ++i) {
    fptrs.push_back(w.prog.files[i].get());
    w.cfgs.push_back(std::make_unique<lint::CfgCache>(
        w.prog.files[i]->tokens(), w.prog.scopes[i]));
    cptrs.push_back(w.cfgs.back().get());
  }
  w.info = lint::build_program(fptrs, w.prog.scopes, cptrs, "", nullptr);
  return w;
}

/// Def id of the unique definition named `name` (class-qualified defs match
/// on the unqualified name); fails the test when not exactly one.
int def_named(const lint::CallGraph& g, std::string_view name) {
  int found = -1;
  int count = 0;
  for (std::size_t i = 0; i < g.defs().size(); ++i) {
    if (g.defs()[i].name == name) {
      found = static_cast<int>(i);
      ++count;
    }
  }
  EXPECT_EQ(count, 1) << "expected exactly one def named '" << name << "'";
  return found;
}

/// The unique call site of `callee_name` in `file`; fails when absent.
const lint::CallSite* site_calling(const Prog& p, int file,
                                   std::string_view callee_name) {
  const lint::CallSite* found = nullptr;
  for (const lint::CallSite& s : p.graph.sites(file)) {
    if (s.callee_name == callee_name) {
      EXPECT_EQ(found, nullptr)
          << "more than one call to '" << callee_name << "'";
      found = &s;
    }
  }
  EXPECT_NE(found, nullptr) << "no call to '" << callee_name << "'";
  return found;
}

lint::ScanResult analyze_texts(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const lint::AnalyzeOptions& opts) {
  std::vector<std::unique_ptr<lint::SourceFile>> files;
  for (const auto& [rel, text] : sources) {
    files.push_back(lint::SourceFile::from_text(rel, text));
  }
  return lint::analyze(std::move(files), opts);
}

// ---------------------------------------------------------------------------
// Graph construction.

TEST(LintCallGraph, DefsCaptureArityAndKind) {
  const auto p = build_graph({{"src/a.cpp",
                               "void plain(int a, int b = 1) {\n"
                               "  use(a, b);\n"
                               "}\n"
                               "sim::Task coro() {\n"
                               "  co_return;\n"
                               "}\n"
                               "void outer() {\n"
                               "  auto bound = [](int x) { use(x); };\n"
                               "  bound(2);\n"
                               "}\n"}});
  const int plain = def_named(p.graph, "plain");
  EXPECT_EQ(p.graph.defs()[plain].arity_min, 1);
  EXPECT_EQ(p.graph.defs()[plain].arity_max, 2);
  EXPECT_FALSE(p.graph.defs()[plain].is_lambda);
  EXPECT_FALSE(p.graph.defs()[plain].returns_async);

  const int coro = def_named(p.graph, "coro");
  EXPECT_TRUE(p.graph.defs()[coro].is_coroutine);
  EXPECT_TRUE(p.graph.defs()[coro].returns_async);

  const int bound = def_named(p.graph, "bound");
  EXPECT_TRUE(p.graph.defs()[bound].is_lambda);

  // The bound-lambda call resolves through the per-file binding table.
  const lint::CallSite* call = site_calling(p, 0, "bound");
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->callee, bound);
  EXPECT_EQ(call->caller, def_named(p.graph, "outer"));
}

TEST(LintCallGraph, ArityDisambiguatesOverloads) {
  const auto p = build_graph({{"src/defs.cpp",
                               "void over(int a) {\n"
                               "  one(a);\n"
                               "}\n"
                               "void over(int a, int b) {\n"
                               "  two(a, b);\n"
                               "}\n"},
                              {"src/use.cpp",
                               "void call_one(int x) {\n"
                               "  over(x);\n"
                               "}\n"
                               "void call_two(int x) {\n"
                               "  over(x, x);\n"
                               "}\n"
                               "void call_none(int x) {\n"
                               "  over(x, x, x);\n"
                               "}\n"}});
  const lint::CallSite* one = nullptr;
  const lint::CallSite* two = nullptr;
  const lint::CallSite* none = nullptr;
  for (const lint::CallSite& s : p.graph.sites(1)) {
    if (s.callee_name != "over") continue;
    if (s.args.size() == 1) one = &s;
    if (s.args.size() == 2) two = &s;
    if (s.args.size() == 3) none = &s;
  }
  ASSERT_NE(one, nullptr);
  ASSERT_NE(two, nullptr);
  ASSERT_NE(none, nullptr);
  ASSERT_GE(one->callee, 0);
  ASSERT_GE(two->callee, 0);
  EXPECT_EQ(p.graph.defs()[one->callee].arity_max, 1);
  EXPECT_EQ(p.graph.defs()[two->callee].arity_min, 2);
  // Three arguments fit neither overload: zero candidates, unresolved.
  EXPECT_EQ(none->callee, -1);
  EXPECT_EQ(p.graph.resolved_count(), 2u + 0u);  // the two `over` calls only
  EXPECT_EQ(p.graph.call_site_count(), 3u + 2u);  // + one()/two() externals
}

TEST(LintCallGraph, ReceiverTypeFiltersCandidates) {
  const auto p = build_graph({{"src/rings.cpp",
                               "void Ring::push(int v) {\n"
                               "  ring_store(v);\n"
                               "}\n"
                               "void Rob::push(int v) {\n"
                               "  rob_store(v);\n"
                               "}\n"},
                              {"src/use.cpp",
                               // Receiver is a parameter: its declared type
                               // filters the overload set down to one.
                               "void drive(Ring& r) {\n"
                               "  r.push(1);\n"
                               "}\n"
                               // Receiver is a local: the graph does not
                               // track local declarations, two same-arity
                               // candidates survive, the site stays opaque.
                               "void local_recv() {\n"
                               "  Ring r;\n"
                               "  r.push(2);\n"
                               "}\n"}});
  const lint::CallSite* typed = nullptr;
  const lint::CallSite* untyped = nullptr;
  for (const lint::CallSite& s : p.graph.sites(1)) {
    if (s.callee_name != "push") continue;
    if (typed == nullptr) typed = &s;
    else untyped = &s;
  }
  ASSERT_NE(typed, nullptr);
  ASSERT_NE(untyped, nullptr);
  ASSERT_GE(typed->callee, 0);
  EXPECT_EQ(p.graph.defs()[typed->callee].cls, "Ring");
  EXPECT_EQ(typed->recv, "r");
  EXPECT_EQ(untyped->callee, -1);
}

TEST(LintCallGraph, LambdaBindingCollisionStaysUnresolved) {
  const std::string caller =
      "void run() {\n"
      "  auto pump = []() { tick(); };\n"
      "  pump();\n"
      "}\n";
  // Alone, the binding resolves within its own file.
  const auto solo = build_graph({{"src/a.cpp", caller}});
  const lint::CallSite* call = site_calling(solo, 0, "pump");
  ASSERT_NE(call, nullptr);
  EXPECT_GE(call->callee, 0);
  EXPECT_TRUE(solo.graph.defs()[call->callee].is_lambda);

  // A free function of the same name anywhere in the scan makes the
  // binding ambiguous; the call goes opaque instead of picking a side.
  const auto clash = build_graph(
      {{"src/a.cpp", caller}, {"src/b.cpp", "void pump() {\n  spin();\n}\n"}});
  call = site_calling(clash, 0, "pump");
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->callee, -1);
}

TEST(LintCallGraph, CalleesSortedAndDeduplicated) {
  const auto p = build_graph({{"src/a.cpp",
                               "void leaf_a() {\n"
                               "  wa();\n"
                               "}\n"
                               "void leaf_b() {\n"
                               "  wb();\n"
                               "}\n"
                               "void root() {\n"
                               "  leaf_b();\n"
                               "  leaf_a();\n"
                               "  leaf_a();\n"
                               "}\n"}});
  const int root = def_named(p.graph, "root");
  const std::vector<int> expect = {def_named(p.graph, "leaf_a"),
                                   def_named(p.graph, "leaf_b")};
  EXPECT_EQ(p.graph.callees(root), expect);
}

TEST(LintCallGraph, RootIdentAndGlobMatch) {
  const auto f = lint::SourceFile::from_text("t.cpp", "&gate *p a.b f(x)");
  ASSERT_NE(f, nullptr);
  const auto& toks = f->tokens();
  // `&gate` and `*p`: one identifier behind a leading & / *.
  EXPECT_EQ(lint::root_ident(toks, {0, 2}), "gate");
  EXPECT_EQ(lint::root_ident(toks, {2, 4}), "p");
  // Anything more complex is conservatively empty.
  EXPECT_EQ(lint::root_ident(toks, {4, 7}), "");
  EXPECT_EQ(lint::root_ident(toks, {7, 11}), "");

  EXPECT_TRUE(lint::glob_match("*", "anything"));
  EXPECT_TRUE(lint::glob_match("*ring*", "tx_ring_buf"));
  EXPECT_FALSE(lint::glob_match("*ring*", "robq"));
  EXPECT_TRUE(lint::glob_match("rob_", "rob_"));
}

// ---------------------------------------------------------------------------
// Summaries.

TEST(LintSummary, ResourceEffectsBottomUp) {
  const auto w = build_whole({{"src/a.cpp",
                               "void grab(Sem* gate) {\n"
                               "  gate->acquire();\n"
                               "}\n"
                               "void put_back(Sem* gate) {\n"
                               "  gate->release();\n"
                               "}\n"
                               "void probe(Sem* gate) {\n"
                               "  gate->acquire();\n"
                               "  gate->release();\n"
                               "}\n"}});
  const auto& g = w.info.graph;
  const auto& grab = w.info.summaries[def_named(g, "grab")];
  ASSERT_EQ(grab.resources.size(), 1u);
  EXPECT_TRUE(grab.resources[0].may_acquire);
  EXPECT_FALSE(grab.resources[0].may_release);
  EXPECT_FALSE(grab.resources[0].releases_all);
  EXPECT_EQ(grab.resources[0].recv_param, 0);
  EXPECT_EQ(grab.resources[0].acquire_line, 2u);

  const auto& put = w.info.summaries[def_named(g, "put_back")];
  ASSERT_EQ(put.resources.size(), 1u);
  EXPECT_FALSE(put.resources[0].may_acquire);
  EXPECT_TRUE(put.resources[0].may_release);

  // Balanced on its only path: callers must see no net effect.
  const auto& probe = w.info.summaries[def_named(g, "probe")];
  ASSERT_EQ(probe.resources.size(), 1u);
  EXPECT_TRUE(probe.resources[0].may_acquire);
  EXPECT_TRUE(probe.resources[0].releases_all);
}

TEST(LintSummary, StatusParamsAndAsyncPropagation) {
  const auto w = build_whole({{"src/a.cpp",
                               "void fill(PutStatus& st, Store* s) {\n"
                               "  st = s->put_sync(1);\n"
                               "}\n"
                               "sim::Task job() {\n"
                               "  co_return;\n"
                               "}\n"
                               "auto relay() {\n"
                               "  return job();\n"
                               "}\n"}});
  const auto& g = w.info.graph;
  const auto& fill = w.info.summaries[def_named(g, "fill")];
  ASSERT_EQ(fill.params.size(), 2u);
  EXPECT_TRUE(fill.params[0].is_status_out);
  EXPECT_TRUE(fill.params[0].status_written);
  EXPECT_FALSE(fill.params[1].is_status_out);

  // `auto relay()` declares nothing; its asyncness arrives by propagation
  // from the return site's resolved callee.
  const int relay = def_named(g, "relay");
  EXPECT_TRUE(g.defs()[relay].returns_auto);
  EXPECT_TRUE(w.info.summaries[relay].returns_async);
}

// ---------------------------------------------------------------------------
// The cross-file code flow (deferred here from lint_test.cpp, which only
// checks fixture paths within one file).

namespace {
const std::pair<std::string, std::string> kHelperFile = {
    "src/cf_helper.cpp",
    "void cf_grab(Sem* gate) {\n"
    "  gate->acquire();\n"
    "}\n"
    "void cf_put(Sem* gate) {\n"
    "  gate->release();\n"
    "}\n"};
const std::pair<std::string, std::string> kCallerFile = {
    "src/cf_caller.cpp",
    "sim::Task cf_leak(Sem* gate, bool err) {\n"
    "  cf_grab(gate);\n"
    "  if (err) {\n"
    "    co_return;\n"
    "  }\n"
    "  cf_put(gate);\n"
    "}\n"};
}  // namespace

TEST(LintCrossFile, CodeFlowStepsIntoTheCalleeFile) {
  const auto res = analyze_texts({kHelperFile, kCallerFile},
                                 {.jobs = 1, .summaries = true,
                                  .cache_path = ""});
  ASSERT_EQ(res.findings.size(), 1u);
  const lint::Finding& f = res.findings[0];
  EXPECT_EQ(f.rule, "resource-pairing");
  EXPECT_EQ(f.file, "src/cf_caller.cpp");
  EXPECT_EQ(f.line, 2u);  // anchored at the cf_grab() call, not inside it
  ASSERT_FALSE(f.path.empty());
  // One step walks the reviewer into the helper's own acquire line.
  bool into_helper = false;
  for (const lint::PathStep& s : f.path) {
    if (s.file == "src/cf_helper.cpp") {
      EXPECT_EQ(s.line, 2u);
      into_helper = true;
    }
  }
  EXPECT_TRUE(into_helper);
}

TEST(LintCrossFile, SilentWithoutSummaries) {
  const auto res = analyze_texts({kHelperFile, kCallerFile},
                                 {.jobs = 1, .summaries = false,
                                  .cache_path = ""});
  EXPECT_TRUE(res.findings.empty());
  EXPECT_FALSE(res.stats.summaries);
  EXPECT_EQ(res.stats.defs, 0u);
}

// ---------------------------------------------------------------------------
// Summary cache: keyed on per-file content hashes, invalidated by any edit.

TEST(LintSummaryCache, HitOnSameContentMissAfterEdit) {
  const std::string cache =
      ::testing::TempDir() + "snacc-lint-callgraph-test.cache";
  std::remove(cache.c_str());
  const lint::AnalyzeOptions opts{.jobs = 1, .summaries = true,
                                  .cache_path = cache};

  const auto cold = analyze_texts({kHelperFile, kCallerFile}, opts);
  EXPECT_FALSE(cold.stats.cache_hit);
  ASSERT_EQ(cold.findings.size(), 1u);

  // Same content: the table loads instead of recomputing, findings match.
  const auto warm = analyze_texts({kHelperFile, kCallerFile}, opts);
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_EQ(warm.findings, cold.findings);
  EXPECT_EQ(warm.stats.defs, cold.stats.defs);
  EXPECT_EQ(warm.stats.resolved_calls, cold.stats.resolved_calls);

  // Touch one file: the content hash changes, the cache must not serve the
  // stale table. The edit releases on the error path, so the finding is
  // gone -- a stale hit would still report it.
  auto fixed = kCallerFile;
  const std::string::size_type at = fixed.second.find("co_return;");
  ASSERT_NE(at, std::string::npos);
  fixed.second.insert(at, "cf_put(gate);\n    ");
  const auto edited = analyze_texts({kHelperFile, fixed}, opts);
  EXPECT_FALSE(edited.stats.cache_hit);
  EXPECT_TRUE(edited.findings.empty());

  std::remove(cache.c_str());
}

// The staleness case that matters for correctness: the CALLER's file is
// byte-identical, only the callee changed. The caller's finding exists
// purely through the callee's summary, so a cache keyed on anything less
// than every file's content would serve the stale table and keep (or
// miss) the finding.
TEST(LintSummaryCache, CalleeEditRecomputesCallerFacts) {
  const std::string cache =
      ::testing::TempDir() + "snacc-lint-callee-edit.cache";
  std::remove(cache.c_str());
  const lint::AnalyzeOptions opts{.jobs = 1, .summaries = true,
                                  .cache_path = cache};

  const auto cold = analyze_texts({kHelperFile, kCallerFile}, opts);
  EXPECT_FALSE(cold.stats.cache_hit);
  ASSERT_EQ(cold.findings.size(), 1u);

  // cf_grab now releases what it acquires (a balanced probe): the caller's
  // leak is gone, with the caller file untouched.
  auto balanced = kHelperFile;
  const std::string grab = "gate->acquire();";
  const std::string::size_type at = balanced.second.find(grab);
  ASSERT_NE(at, std::string::npos);
  balanced.second.insert(at + grab.size(), "\n  gate->release();");
  const auto edited = analyze_texts({balanced, kCallerFile}, opts);
  EXPECT_FALSE(edited.stats.cache_hit);
  EXPECT_TRUE(edited.findings.empty());

  // The edited world then warms up under its own key.
  const auto warm = analyze_texts({balanced, kCallerFile}, opts);
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_TRUE(warm.findings.empty());

  std::remove(cache.c_str());
}

// A corrupt or truncated cache file must behave exactly like no cache:
// recompute, report the same findings, and leave a loadable table behind.
TEST(LintSummaryCache, CorruptCacheRecovers) {
  const std::string cache = ::testing::TempDir() + "snacc-lint-corrupt.cache";
  const lint::AnalyzeOptions opts{.jobs = 1, .summaries = true,
                                  .cache_path = cache};
  const auto clean = analyze_texts({kHelperFile, kCallerFile},
                                   {.jobs = 1, .summaries = true,
                                    .cache_path = ""});

  // Garbage with a valid-looking magic line, then binary noise.
  {
    std::FILE* f = std::fopen(cache.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("snacc-lint-cache v2\n\x01\xff not a summary table\n", f);
    std::fclose(f);
  }
  const auto res = analyze_texts({kHelperFile, kCallerFile}, opts);
  EXPECT_FALSE(res.stats.cache_hit);
  EXPECT_EQ(res.findings, clean.findings);

  // The garbage was replaced by a valid table on the way out.
  const auto warm = analyze_texts({kHelperFile, kCallerFile}, opts);
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_EQ(warm.findings, clean.findings);

  // A stale-magic (older format) file is likewise recomputed, not parsed.
  {
    std::FILE* f = std::fopen(cache.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("snacc-lint-cache v1\n", f);
    std::fclose(f);
  }
  const auto old_magic = analyze_texts({kHelperFile, kCallerFile}, opts);
  EXPECT_FALSE(old_magic.stats.cache_hit);
  EXPECT_EQ(old_magic.findings, clean.findings);

  std::remove(cache.c_str());
}

// ---------------------------------------------------------------------------
// Typestate protocol effects across files, and their cache round-trip.

namespace {
const std::pair<std::string, std::string> kTsHelperFile = {
    "src/ts_cf_helper.cpp",
    "void ts_cf_shutdown(sim::Mailbox<int>& mb) {\n"
    "  mb.close();\n"
    "}\n"};
const std::pair<std::string, std::string> kTsCallerFile = {
    "src/ts_cf_caller.cpp",
    "sim::Task ts_cf_racer(sim::Mailbox<int>& mb) {\n"
    "  ts_cf_shutdown(mb);\n"
    "  mb.push(1);\n"
    "  co_return;\n"
    "}\n"};
}  // namespace

TEST(LintCrossFile, TypestateEffectStepsIntoTheCalleeFile) {
  const auto res = analyze_texts({kTsHelperFile, kTsCallerFile},
                                 {.jobs = 1, .summaries = true,
                                  .cache_path = ""});
  ASSERT_EQ(res.findings.size(), 1u);
  const lint::Finding& f = res.findings[0];
  EXPECT_EQ(f.rule, "ts-mailbox");
  EXPECT_EQ(f.file, "src/ts_cf_caller.cpp");
  EXPECT_EQ(f.line, 3u);  // the push, with the close spliced from the callee
  bool into_helper = false;
  for (const lint::PathStep& s : f.path) {
    if (s.file == "src/ts_cf_helper.cpp") {
      EXPECT_EQ(s.line, 2u);  // the close() inside ts_cf_shutdown
      into_helper = true;
    }
  }
  EXPECT_TRUE(into_helper);

  // And per the conservative degradation contract, the finding does not
  // exist without the program layer.
  const auto bare = analyze_texts({kTsHelperFile, kTsCallerFile},
                                  {.jobs = 1, .summaries = false,
                                   .cache_path = ""});
  EXPECT_TRUE(bare.findings.empty());
}

// Protocol effects survive the save/load cycle: a warm (cache-hit) scan
// reproduces the typestate finding byte-for-byte, including its cross-file
// path steps -- the "T" records carry protocol, receiver binding, event
// order and callee lines.
TEST(LintSummaryCache, TypestateEffectsRoundTripThroughCache) {
  const std::string cache = ::testing::TempDir() + "snacc-lint-ts.cache";
  std::remove(cache.c_str());
  const lint::AnalyzeOptions opts{.jobs = 1, .summaries = true,
                                  .cache_path = cache};

  const auto cold = analyze_texts({kTsHelperFile, kTsCallerFile}, opts);
  EXPECT_FALSE(cold.stats.cache_hit);
  ASSERT_EQ(cold.findings.size(), 1u);
  EXPECT_EQ(cold.findings[0].rule, "ts-mailbox");

  const auto warm = analyze_texts({kTsHelperFile, kTsCallerFile}, opts);
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_EQ(warm.findings, cold.findings);

  std::remove(cache.c_str());
}

}  // namespace
