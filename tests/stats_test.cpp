// Unit tests for common/stats.hpp: the bounded (log-bucketed) latency
// histogram against the exact-sample mode, plus accumulator basics.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace snacc {
namespace {

// Deterministic 64-bit mix (splitmix64) for reproducible sample streams.
std::uint64_t mix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

TEST(LatencyStats, BucketedPercentilesTrackExactWithinQuantization) {
  LatencyStats exact{LatencyStats::Mode::kExact};
  LatencyStats bucketed;  // default mode
  std::uint64_t s = 42;
  for (int i = 0; i < 100000; ++i) {
    // Latency-shaped distribution: a dense body plus a long sparse tail.
    const std::uint64_t body = 50000 + mix(s) % 200000;
    const std::uint64_t v = (mix(s) % 100 == 0) ? body * 50 : body;
    exact.add(TimePs{v});
    bucketed.add(TimePs{v});
  }
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    const double e = static_cast<double>(exact.percentile(p).value());
    const double b = static_cast<double>(bucketed.percentile(p).value());
    // 64 sub-buckets per octave bounds relative error at ~1/64; allow 2x
    // headroom for interpolation at bucket edges.
    EXPECT_NEAR(b / e, 1.0, 0.032) << "p" << p;
  }
}

TEST(LatencyStats, MeanIsBitIdenticalAcrossModes) {
  LatencyStats exact{LatencyStats::Mode::kExact};
  LatencyStats bucketed;
  std::uint64_t s = 7;
  for (int i = 0; i < 10000; ++i) {
    const TimePs t{1 + mix(s) % 1000000};
    exact.add(t);
    bucketed.add(t);
  }
  // Both modes accumulate the mean at add() time in insertion order, so the
  // doubles must match exactly, not just approximately.
  EXPECT_EQ(exact.mean_us(), bucketed.mean_us());
  EXPECT_EQ(exact.count(), bucketed.count());
}

TEST(LatencyStats, MinMaxAreExactInBucketedMode) {
  LatencyStats st;
  st.add(TimePs{12345});
  st.add(TimePs{7});
  st.add(TimePs{999999937});
  EXPECT_EQ(st.min(), TimePs{7});
  EXPECT_EQ(st.max(), TimePs{999999937});
  // Extreme percentiles clamp to the observed range instead of reporting a
  // bucket boundary outside it.
  EXPECT_GE(st.percentile(0.0), st.min());
  EXPECT_LE(st.percentile(100.0), st.max());
}

TEST(LatencyStats, SmallValuesAreExactInBucketedMode) {
  // Values below 64 ps land in 1:1 buckets; percentiles quantize exactly.
  LatencyStats st;
  for (std::uint64_t v = 1; v <= 10; ++v) st.add(TimePs{v});
  EXPECT_EQ(st.percentile(0.0), TimePs{1});
  EXPECT_EQ(st.percentile(100.0), TimePs{10});
  const std::uint64_t p50 = st.percentile(50.0).value();
  EXPECT_GE(p50, 5u);
  EXPECT_LE(p50, 6u);
}

TEST(LatencyStats, EmptyHistogramReportsZeros) {
  LatencyStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.mean_us(), 0.0);
  EXPECT_EQ(st.percentile(50.0), TimePs{});
  EXPECT_EQ(st.min(), TimePs{});
  EXPECT_EQ(st.max(), TimePs{});
}

TEST(LatencyStats, ExactModeUsesNearestRank) {
  LatencyStats st{LatencyStats::Mode::kExact};
  for (std::uint64_t v : {10u, 20u, 30u, 40u}) st.add(TimePs{v});
  // rank = round(p/100 * (n-1)): p50 over 4 samples names index 2.
  EXPECT_EQ(st.percentile(50.0), TimePs{30});
  EXPECT_EQ(st.percentile(0.0), TimePs{10});
  EXPECT_EQ(st.percentile(100.0), TimePs{40});
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.stddev(), 1.2909944487358056, 1e-12);
}

}  // namespace
}  // namespace snacc
