// Self-tests for the snacc-lint analysis engine: golden findings over the
// fixture tree (true positives AND near-misses per rule), tokenizer
// behaviour, suppression/stale bookkeeping, SARIF output shape, and
// determinism across worker counts.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "lint/engine.hpp"
#include "lint/rules.hpp"
#include "lint/sarif.hpp"
#include "lint/source.hpp"
#include "lint/token.hpp"

namespace {

std::string fixture_src() {
  return std::string(LINT_FIXTURE_DIR) + "/src";
}

lint::ScanResult scan_fixtures(unsigned jobs = 0, bool summaries = true) {
  lint::Options opts;
  opts.roots = {fixture_src()};
  opts.jobs = jobs;
  opts.summaries = summaries;
  return lint::scan(opts);
}

std::size_t count(const std::vector<lint::Finding>& fs, std::string_view file,
                  std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(), [&](const lint::Finding& f) {
        return f.file == file && f.rule == rule;
      }));
}

bool has(const std::vector<lint::Finding>& fs, std::string_view file,
         std::string_view rule, std::uint32_t line) {
  return std::any_of(fs.begin(), fs.end(), [&](const lint::Finding& f) {
    return f.file == file && f.rule == rule && f.line == line;
  });
}

// ---------------------------------------------------------------------------
// Golden findings over the fixture tree.

TEST(LintFixtures, ScansWholeTree) {
  const auto res = scan_fixtures();
  EXPECT_TRUE(res.error.empty()) << res.error;
  EXPECT_EQ(res.files_scanned, 27u);
  EXPECT_EQ(res.findings.size(), 51u);
}

TEST(LintFixtures, GoldenPositives) {
  const auto& fs = scan_fixtures().findings;
  EXPECT_TRUE(has(fs, "src/pcie/bad_sig.hpp", "bare-uint-signature", 8));
  EXPECT_TRUE(has(fs, "src/nondet.cpp", "nondeterminism", 8));    // rand()
  EXPECT_TRUE(has(fs, "src/nondet.cpp", "nondeterminism", 20));   // map order
  EXPECT_TRUE(has(fs, "src/doorbell.cpp", "raw-doorbell", 8));
  EXPECT_TRUE(has(fs, "src/poll.cpp", "unbounded-poll", 13));
  EXPECT_TRUE(has(fs, "src/lambda_event.cpp", "lambda-event", 15));
  // dangling-capture: ref capture after suspend, [&] header, T&& param.
  EXPECT_TRUE(has(fs, "src/coro.cpp", "dangling-capture", 23));
  EXPECT_TRUE(has(fs, "src/coro.cpp", "dangling-capture", 31));
  EXPECT_TRUE(has(fs, "src/coro.cpp", "dangling-capture", 42));
  EXPECT_TRUE(has(fs, "src/async.cpp", "discarded-async", 14));
  EXPECT_TRUE(has(fs, "src/snacc/escape.cpp", "value-escape", 8));
  EXPECT_TRUE(has(fs, "src/stale.cpp", "stale-suppression", 5));
  // unchecked-put: 2-arg put, nested-comma args, replicated 2-arg write.
  EXPECT_TRUE(has(fs, "src/kv_put.cpp", "unchecked-put", 14));
  EXPECT_TRUE(has(fs, "src/kv_put.cpp", "unchecked-put", 15));
  EXPECT_TRUE(has(fs, "src/kv_put.cpp", "unchecked-put", 16));
  // resource-pairing: early co_return, continue-skips-release, switch arm.
  EXPECT_TRUE(has(fs, "src/resource_pair.cpp", "resource-pairing", 10));
  EXPECT_TRUE(has(fs, "src/resource_pair.cpp", "resource-pairing", 21));
  EXPECT_TRUE(has(fs, "src/resource_pair.cpp", "resource-pairing", 34));
  // use-after-move: branch leak, straight line, loop back edge.
  EXPECT_TRUE(has(fs, "src/use_move.cpp", "use-after-move", 14));
  EXPECT_TRUE(has(fs, "src/use_move.cpp", "use-after-move", 21));
  EXPECT_TRUE(has(fs, "src/use_move.cpp", "use-after-move", 29));
  // unchecked-status-path: one branch, early exit, switch default.
  EXPECT_TRUE(has(fs, "src/status_path.cpp", "unchecked-status-path", 10));
  EXPECT_TRUE(has(fs, "src/status_path.cpp", "unchecked-status-path", 20));
  EXPECT_TRUE(has(fs, "src/status_path.cpp", "unchecked-status-path", 31));
  // cross-domain-touch: wrong-domain spawn, direct call, make_unique handoff.
  EXPECT_TRUE(has(fs, "src/domain_touch.cpp", "cross-domain-touch", 25));
  EXPECT_TRUE(has(fs, "src/domain_touch.cpp", "cross-domain-touch", 32));
  EXPECT_TRUE(has(fs, "src/domain_touch.cpp", "cross-domain-touch", 38));
  // Interprocedural positives: resource pair split across helpers (branch
  // leak, continue-skips-release), status filled by-reference one call
  // deep (one branch, early exit), bound-lambda / auto-relay discards,
  // wrapper-level domain coupling, and callee-acquired summary leaks.
  EXPECT_TRUE(has(fs, "src/interproc_resource.cpp", "resource-pairing", 29));
  EXPECT_TRUE(has(fs, "src/interproc_resource.cpp", "resource-pairing", 40));
  EXPECT_TRUE(
      has(fs, "src/interproc_status.cpp", "unchecked-status-path", 26));
  EXPECT_TRUE(
      has(fs, "src/interproc_status.cpp", "unchecked-status-path", 36));
  EXPECT_TRUE(has(fs, "src/interproc_async.cpp", "discarded-async", 28));
  EXPECT_TRUE(has(fs, "src/interproc_async.cpp", "discarded-async", 32));
  EXPECT_TRUE(has(fs, "src/interproc_domain.cpp", "cross-domain-touch", 36));
  EXPECT_TRUE(has(fs, "src/interproc_domain.cpp", "cross-domain-touch", 44));
  EXPECT_TRUE(has(fs, "src/summary_leak.cpp", "summary-leak", 22));
  EXPECT_TRUE(has(fs, "src/summary_leak.cpp", "summary-leak", 35));
  // Typestate protocols, intraprocedural: mailbox shutdown ordering (push
  // after close, push/pop after close_rx), the WAL commit obligation
  // (early bail, break-skips-commit), blind/raced NVMe retires, and the
  // credit double-acquire (branch, loop back-edge).
  EXPECT_TRUE(has(fs, "src/ts_mailbox.cpp", "ts-mailbox", 12));
  EXPECT_TRUE(has(fs, "src/ts_mailbox.cpp", "ts-mailbox", 19));
  EXPECT_TRUE(has(fs, "src/ts_mailbox.cpp", "ts-mailbox", 30));
  EXPECT_TRUE(has(fs, "src/ts_wal.cpp", "ts-kv-wal", 12));
  EXPECT_TRUE(has(fs, "src/ts_wal.cpp", "ts-kv-wal", 23));
  EXPECT_TRUE(has(fs, "src/ts_nvme.cpp", "ts-nvme-cid", 13));
  EXPECT_TRUE(has(fs, "src/ts_nvme.cpp", "ts-nvme-cid", 24));
  EXPECT_TRUE(has(fs, "src/ts_nvme.cpp", "ts-nvme-cid", 36));
  EXPECT_TRUE(has(fs, "src/ts_credit.cpp", "ts-credit", 16));
  EXPECT_TRUE(has(fs, "src/ts_credit.cpp", "ts-credit", 25));
  // Typestate protocols, interprocedural: the close/put/acquire happens
  // inside a helper whose summary carries the protocol effect.
  EXPECT_TRUE(has(fs, "src/interproc_ts.cpp", "ts-mailbox", 37));
  EXPECT_TRUE(has(fs, "src/interproc_ts.cpp", "ts-kv-wal", 44));
  EXPECT_TRUE(has(fs, "src/interproc_ts.cpp", "ts-credit", 55));
}

TEST(LintFixtures, GoldenCounts) {
  const auto& fs = scan_fixtures().findings;
  EXPECT_EQ(count(fs, "src/pcie/bad_sig.hpp", "bare-uint-signature"), 1u);
  EXPECT_EQ(count(fs, "src/nondet.cpp", "nondeterminism"), 2u);
  EXPECT_EQ(count(fs, "src/doorbell.cpp", "raw-doorbell"), 1u);
  EXPECT_EQ(count(fs, "src/poll.cpp", "unbounded-poll"), 1u);
  EXPECT_EQ(count(fs, "src/lambda_event.cpp", "lambda-event"), 1u);
  EXPECT_EQ(count(fs, "src/coro.cpp", "dangling-capture"), 3u);
  EXPECT_EQ(count(fs, "src/async.cpp", "discarded-async"), 1u);
  EXPECT_EQ(count(fs, "src/snacc/escape.cpp", "value-escape"), 1u);
  EXPECT_EQ(count(fs, "src/stale.cpp", "stale-suppression"), 2u);
  EXPECT_EQ(count(fs, "src/kv_put.cpp", "unchecked-put"), 3u);
  EXPECT_EQ(count(fs, "src/resource_pair.cpp", "resource-pairing"), 3u);
  EXPECT_EQ(count(fs, "src/use_move.cpp", "use-after-move"), 3u);
  EXPECT_EQ(count(fs, "src/status_path.cpp", "unchecked-status-path"), 3u);
  EXPECT_EQ(count(fs, "src/domain_touch.cpp", "cross-domain-touch"), 3u);
  EXPECT_EQ(count(fs, "src/interproc_resource.cpp", "resource-pairing"), 2u);
  EXPECT_EQ(count(fs, "src/interproc_status.cpp", "unchecked-status-path"),
            2u);
  EXPECT_EQ(count(fs, "src/interproc_async.cpp", "discarded-async"), 2u);
  EXPECT_EQ(count(fs, "src/interproc_domain.cpp", "cross-domain-touch"), 2u);
  EXPECT_EQ(count(fs, "src/summary_leak.cpp", "summary-leak"), 2u);
  EXPECT_EQ(count(fs, "src/ts_mailbox.cpp", "ts-mailbox"), 3u);
  EXPECT_EQ(count(fs, "src/ts_wal.cpp", "ts-kv-wal"), 2u);
  EXPECT_EQ(count(fs, "src/ts_nvme.cpp", "ts-nvme-cid"), 3u);
  EXPECT_EQ(count(fs, "src/ts_credit.cpp", "ts-credit"), 2u);
  EXPECT_EQ(count(fs, "src/interproc_ts.cpp", "ts-mailbox"), 1u);
  EXPECT_EQ(count(fs, "src/interproc_ts.cpp", "ts-kv-wal"), 1u);
  EXPECT_EQ(count(fs, "src/interproc_ts.cpp", "ts-credit"), 1u);
}

// Near-misses: code shaped like a violation that must NOT be flagged.
TEST(LintFixtures, NearMissesStaySilent) {
  const auto& fs = scan_fixtures().findings;
  // Accessor *named* like a quantity is not a parameter.
  EXPECT_EQ(count(fs, "src/pcie/bad_sig.hpp", "bare-uint-signature"), 1u);
  // "rand()" inside a string literal (line 12) or a comment (line 14).
  EXPECT_FALSE(has(fs, "src/nondet.cpp", "nondeterminism", 12));
  EXPECT_FALSE(has(fs, "src/nondet.cpp", "nondeterminism", 14));
  // kDoorbellBase inside the exempt spec header.
  EXPECT_EQ(count(fs, "src/nvme/spec.hpp", "raw-doorbell"), 0u);
  // A poll loop bounded by closed().
  EXPECT_EQ(count(fs, "src/poll_ok.cpp", "unbounded-poll"), 0u);
  // Container .at(index) without a lambda argument (line 20).
  EXPECT_FALSE(has(fs, "src/lambda_event.cpp", "lambda-event", 20));
  // dangling-capture near-misses: a non-coroutine ref-capture lambda
  // (sync_ok), a capture used only before/within the first awaited
  // statement (spawn_early), and lvalue-ref params of a named coroutine
  // (pump) -- the three positives above must be the only findings.
  EXPECT_EQ(count(fs, "src/coro.cpp", "dangling-capture"), 3u);
  // discarded-async near-misses: co_await, stored, (void)-cast, passed to
  // spawn(), and the async/sync-ambiguous name.
  EXPECT_EQ(count(fs, "src/async.cpp", "discarded-async"), 1u);
  // ->value() pointer receiver (line 14) and the suppressed escape (20).
  EXPECT_FALSE(has(fs, "src/snacc/escape.cpp", "value-escape", 14));
  EXPECT_FALSE(has(fs, "src/snacc/escape.cpp", "value-escape", 20));
  // The policy'd raw directory is waved through wholesale.
  EXPECT_EQ(count(fs, "src/mem/policy_ok.cpp", "value-escape"), 0u);
  // unchecked-put near-misses: status-checked calls, a 1-arg put, and a
  // 2-arg write on a non-replicated receiver -- only the 3 positives flag.
  EXPECT_EQ(count(fs, "src/kv_put.cpp", "unchecked-put"), 3u);
  // resource-pairing near-misses: release-on-every-path, acquire-only
  // handoff (gated), while(true) pump with cross-iteration re-acquire.
  EXPECT_EQ(count(fs, "src/resource_pair.cpp", "resource-pairing"), 3u);
  // use-after-move near-misses: reassignment, same-statement ternary arms,
  // member move, per-iteration redeclaration, move-of-moved transfer.
  EXPECT_EQ(count(fs, "src/use_move.cpp", "use-after-move"), 3u);
  // unchecked-status-path near-misses: immediate check, both-branch check,
  // non-PutStatus out-param, fill-in-loop-check-after.
  EXPECT_EQ(count(fs, "src/status_path.cpp", "unchecked-status-path"), 3u);
  // cross-domain-touch near-misses: same-domain pair, a Mailbox-mediated
  // statement, and two aliases of one cluster index.
  EXPECT_EQ(count(fs, "src/domain_touch.cpp", "cross-domain-touch"), 3u);
  // Interprocedural near-misses: all-path release via helpers, acquire-only
  // handoff, balanced helper on a branch (interproc_resource); check-by-
  // helper on every path, inert helper, int out-param (interproc_status);
  // awaited/stored/(void)-cast/passed-on calls (interproc_async);
  // same-domain args, boundary-mediated statement, unresolved helper
  // (interproc_domain); release-before-park, bounded pump, direct acquire
  // (summary_leak) -- the 2 positives per file must be the only findings.
  EXPECT_EQ(count(fs, "src/interproc_resource.cpp", "resource-pairing"), 2u);
  EXPECT_EQ(count(fs, "src/interproc_status.cpp", "unchecked-status-path"),
            2u);
  EXPECT_EQ(count(fs, "src/interproc_async.cpp", "discarded-async"), 2u);
  EXPECT_EQ(count(fs, "src/interproc_domain.cpp", "cross-domain-touch"), 2u);
  EXPECT_EQ(count(fs, "src/summary_leak.cpp", "summary-leak"), 2u);
  // summary-leak tracks callee-substituted acquires only; the direct
  // acquire in sl_direct stays resource-pairing's business (and its exit
  // paths all release, so that rule is silent too).
  EXPECT_EQ(count(fs, "src/summary_leak.cpp", "resource-pairing"), 0u);
  // Typestate near-misses. Mailbox: post-close drain, push on the branch
  // that did not close, two distinct objects, an untracked receiver, and a
  // consumed allow() -- only the 3 positives flag.
  EXPECT_EQ(count(fs, "src/ts_mailbox.cpp", "ts-mailbox"), 3u);
  // WAL: commit-on-every-path, the put-only handoff half (gate unarmed),
  // a bare commit, and a put on a non-KvStore receiver.
  EXPECT_EQ(count(fs, "src/ts_wal.cpp", "ts-kv-wal"), 2u);
  // NVMe: the three legal completions each unlock retire, and the retry
  // loop that re-completes after every reopen_head.
  EXPECT_EQ(count(fs, "src/ts_nvme.cpp", "ts-nvme-cid"), 3u);
  // Credit: release-then-reacquire cycles, the acquire-only handoff
  // (gate unarmed even though the loop re-acquires), and a receiver
  // outside the protocol's type/glob set.
  EXPECT_EQ(count(fs, "src/ts_credit.cpp", "ts-credit"), 2u);
  EXPECT_FALSE(has(fs, "src/ts_credit.cpp", "ts-credit", 42));
  // Interprocedural typestate near-misses: push-before-close ordering, the
  // opaque conditional-close helper, and commit-on-every-path -- the 3
  // positives must be the only findings.
  EXPECT_EQ(count(fs, "src/interproc_ts.cpp", "ts-mailbox"), 1u);
  EXPECT_EQ(count(fs, "src/interproc_ts.cpp", "ts-kv-wal"), 1u);
  EXPECT_EQ(count(fs, "src/interproc_ts.cpp", "ts-credit"), 1u);
  // The typestate protocols must not leak onto the older fixtures' stand-in
  // objects (resource_pair.cpp shares the rob_/credits vocabulary).
  EXPECT_EQ(count(fs, "src/resource_pair.cpp", "ts-nvme-cid"), 0u);
  EXPECT_EQ(count(fs, "src/resource_pair.cpp", "ts-credit"), 0u);
  EXPECT_EQ(count(fs, "src/summary_leak.cpp", "ts-credit"), 0u);
  EXPECT_EQ(count(fs, "src/interproc_resource.cpp", "ts-credit"), 0u);
  // The new fixtures must not trip any pre-existing rule.
  for (const char* file :
       {"src/resource_pair.cpp", "src/use_move.cpp", "src/status_path.cpp",
        "src/domain_touch.cpp", "src/interproc_resource.cpp",
        "src/interproc_status.cpp", "src/interproc_async.cpp",
        "src/interproc_domain.cpp", "src/summary_leak.cpp",
        "src/ts_mailbox.cpp", "src/ts_wal.cpp", "src/ts_nvme.cpp",
        "src/ts_credit.cpp", "src/interproc_ts.cpp"}) {
    for (const char* rule :
         {"dangling-capture", "unchecked-put", "unbounded-poll",
          "nondeterminism", "stale-suppression", "resource-pairing",
          "summary-leak"}) {
      if (std::string_view(file) == "src/resource_pair.cpp" &&
          std::string_view(rule) == "resource-pairing") {
        continue;  // its own three positives
      }
      if (std::string_view(file) == "src/interproc_resource.cpp" &&
          std::string_view(rule) == "resource-pairing") {
        continue;
      }
      if (std::string_view(file) == "src/summary_leak.cpp" &&
          std::string_view(rule) == "summary-leak") {
        continue;
      }
      EXPECT_EQ(count(fs, file, rule), 0u) << file << " " << rule;
    }
  }
}

// --no-summaries parity: without the program layer every interprocedural
// positive disappears (the facts literally do not exist at function scope)
// and the intraprocedural findings are byte-identical to the full scan's.
TEST(LintFixtures, NoSummariesDegradesCleanly) {
  const auto full = scan_fixtures();
  const auto bare = scan_fixtures(/*jobs=*/0, /*summaries=*/false);
  ASSERT_TRUE(bare.error.empty()) << bare.error;

  for (const char* file :
       {"src/interproc_resource.cpp", "src/interproc_status.cpp",
        "src/interproc_async.cpp", "src/interproc_domain.cpp",
        "src/summary_leak.cpp", "src/interproc_ts.cpp"}) {
    std::size_t n = 0;
    for (const lint::Finding& f : bare.findings) n += f.file == file;
    EXPECT_EQ(n, 0u) << file << " must be silent under --no-summaries";
  }
  EXPECT_EQ(bare.findings.size(), full.findings.size() - 13u);

  // Every finding the bare scan produces is also in the full scan,
  // unchanged -- summaries only ever add precision, never perturb the
  // intraprocedural rules.
  for (const lint::Finding& f : bare.findings) {
    EXPECT_NE(std::find(full.findings.begin(), full.findings.end(), f),
              full.findings.end())
        << f.file << ":" << f.line << " " << f.rule;
  }
  EXPECT_FALSE(bare.stats.summaries);
  EXPECT_EQ(bare.stats.defs, 0u);
}

// A consumed suppression must not be reported stale; only the marker in
// stale.cpp silences nothing.
TEST(LintFixtures, SuppressionBookkeeping) {
  const auto& fs = scan_fixtures().findings;
  EXPECT_EQ(count(fs, "src/poll.cpp", "stale-suppression"), 0u);
  EXPECT_EQ(count(fs, "src/snacc/escape.cpp", "stale-suppression"), 0u);
  // Consumed typestate allows: the post-close push in ts_mailbox.cpp and
  // the cross-iteration re-acquire in resource_pair.cpp both silence a
  // real finding, so neither is stale.
  EXPECT_EQ(count(fs, "src/ts_mailbox.cpp", "stale-suppression"), 0u);
  EXPECT_EQ(count(fs, "src/resource_pair.cpp", "stale-suppression"), 0u);
  // stale.cpp carries one dead token-rule marker and one dead typestate
  // marker (the commit on every path means ts-kv-wal has nothing to
  // silence): the stale check covers protocol rules like any other.
  EXPECT_EQ(count(fs, "src/stale.cpp", "stale-suppression"), 2u);
  EXPECT_TRUE(has(fs, "src/stale.cpp", "stale-suppression", 10));
  // And the suppressed sites themselves stay silent.
  EXPECT_FALSE(has(fs, "src/poll.cpp", "unbounded-poll", 23));
  EXPECT_EQ(count(fs, "src/stale.cpp", "ts-kv-wal"), 0u);
}

// ---------------------------------------------------------------------------
// Tokenizer.

TEST(LintTokenizer, CommentsStringsAndPreprocessorExcluded) {
  const std::string text =
      "#include <cstdlib> // rand()\n"
      "const char* s = \"rand()\";\n"
      "auto r = R\"(rand())\";\n"
      "/* rand() */ int x = 0;\n";
  const auto sf = lint::SourceFile::from_text("t.cpp", text);
  ASSERT_NE(sf, nullptr);
  for (const lint::Token& t : sf->tokens()) {
    EXPECT_FALSE(t.ident("rand")) << "rand leaked from non-code context";
    EXPECT_FALSE(t.ident("include")) << "preprocessor leaked";
  }
  const auto strings =
      std::count_if(sf->tokens().begin(), sf->tokens().end(),
                    [](const lint::Token& t) { return t.kind == lint::Tok::kString; });
  EXPECT_EQ(strings, 2);  // the plain literal and the raw string
}

TEST(LintTokenizer, PunctuatorsAndLines) {
  const auto sf = lint::SourceFile::from_text(
      "t.cpp", "a->b;\nns::f(x);\nauto y = a <=> b;\n");
  ASSERT_NE(sf, nullptr);
  bool arrow = false, scope = false;
  for (const lint::Token& t : sf->tokens()) {
    if (t.is("->")) {
      arrow = true;
      EXPECT_EQ(t.line, 1u);
    }
    if (t.is("::")) {
      scope = true;
      EXPECT_EQ(t.line, 2u);
    }
  }
  EXPECT_TRUE(arrow);
  EXPECT_TRUE(scope);
}

// analyze() over in-memory buffers: the same engine path the scan driver
// uses, minus the filesystem.
TEST(LintEngine, AnalyzeInMemory) {
  std::vector<std::unique_ptr<lint::SourceFile>> files;
  files.push_back(lint::SourceFile::from_text(
      "src/x.cpp", "int f() { return rand(); }\n"));
  files.push_back(lint::SourceFile::from_text(
      "src/y.cpp",
      "// snacc-lint: allow(nondeterminism): seeding the demo harness\n"
      "int g() { return rand(); }\n"));
  const auto res = lint::analyze(std::move(files), 1);
  EXPECT_EQ(res.findings.size(), 1u);
  EXPECT_TRUE(has(res.findings, "src/x.cpp", "nondeterminism", 1));
  EXPECT_EQ(count(res.findings, "src/y.cpp", "nondeterminism"), 0u);
  EXPECT_EQ(count(res.findings, "src/y.cpp", "stale-suppression"), 0u);
}

// ---------------------------------------------------------------------------
// SARIF output.

TEST(LintSarif, ShapeAndContent) {
  const auto res = scan_fixtures();
  const std::string sarif = lint::to_sarif(res.findings);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("snacc-lint"), std::string::npos);
  // Every rule is in the driver table even when it has no results, and
  // engine-level stale-suppression findings resolve a ruleIndex too.
  for (const char* rule :
       {"bare-uint-signature", "nondeterminism", "raw-doorbell",
        "unbounded-poll", "lambda-event", "unchecked-put",
        "dangling-capture", "discarded-async", "value-escape",
        "resource-pairing", "use-after-move", "unchecked-status-path",
        "summary-leak", "ts-mailbox", "ts-kv-wal", "ts-nvme-cid",
        "ts-credit", "stale-suppression"}) {
    EXPECT_NE(sarif.find(rule), std::string::npos) << rule;
  }
  EXPECT_NE(sarif.find("\"startLine\""), std::string::npos);
  EXPECT_NE(sarif.find("src/coro.cpp"), std::string::npos);
  // With stats, the run carries the phase/rule wall-times and the
  // whole-program counters as properties.
  EXPECT_EQ(sarif.find("\"properties\""), std::string::npos);
  const std::string with_stats = lint::to_sarif(res.findings, &res.stats);
  EXPECT_NE(with_stats.find("\"properties\""), std::string::npos);
  EXPECT_NE(with_stats.find("\"phaseWallMs\""), std::string::npos);
  EXPECT_NE(with_stats.find("\"ruleWallMs\""), std::string::npos);
  EXPECT_NE(with_stats.find("\"resolvedCalls\""), std::string::npos);
}

// Path-sensitive findings carry their execution path, and the SARIF
// rendering exposes it as codeFlows/threadFlows code scanning can walk.
TEST(LintSarif, CodeFlowsShape) {
  const auto res = scan_fixtures();

  // Every flow-rule finding has a path; token-level findings have none.
  // cross-domain-touch and discarded-async carry a path only on their
  // interprocedural (summary-driven) variants.
  for (const lint::Finding& f : res.findings) {
    const bool ts_rule = f.rule.rfind("ts-", 0) == 0;
    const bool flow_rule = f.rule == "resource-pairing" ||
                           f.rule == "use-after-move" ||
                           f.rule == "unchecked-status-path" ||
                           f.rule == "summary-leak" || ts_rule;
    const bool path_optional =
        f.rule == "cross-domain-touch" || f.rule == "discarded-async";
    if (!path_optional) {
      EXPECT_EQ(!f.path.empty(), flow_rule)
          << f.rule << " at " << f.file << ":" << f.line;
    }
    if (f.path.empty()) continue;
    // resource-pairing, unchecked-status-path, summary-leak and the
    // interprocedural variants anchor at the path's source (the acquire /
    // the fill / the call); use-after-move and the typestate error rows
    // anchor at their sink (the read / the illegal event). Typestate
    // obligations anchor mid-path (the last event before the exit step),
    // so only the containment of the anchor is pinned for them. Every
    // step carries a human-readable note.
    if (f.rule == "use-after-move") {
      EXPECT_EQ(f.path.back().line, f.line);
    } else if (ts_rule) {
      const bool anchored =
          std::any_of(f.path.begin(), f.path.end(),
                      [&](const lint::PathStep& s) { return s.line == f.line; });
      EXPECT_TRUE(anchored) << f.rule << " at " << f.file << ":" << f.line;
    } else {
      EXPECT_EQ(f.path.front().line, f.line);
    }
    EXPECT_GE(f.path.size(), 2u) << "a path needs at least source and sink";
    for (const lint::PathStep& s : f.path) {
      EXPECT_GT(s.line, 0u);
      EXPECT_FALSE(s.note.empty());
    }
  }
  // Interprocedural findings point into the callee's body with an explicit
  // per-step artifact (the callee may live in another file; see the
  // call-graph tests for the genuinely cross-file case).
  bool callee_step = false;
  for (const lint::Finding& f : res.findings) {
    for (const lint::PathStep& s : f.path) {
      if (!s.file.empty()) callee_step = true;
    }
  }
  EXPECT_TRUE(callee_step)
      << "expected at least one callee-side path step with its own artifact";

  const std::string sarif = lint::to_sarif(res.findings);
  EXPECT_NE(sarif.find("\"codeFlows\""), std::string::npos);
  EXPECT_NE(sarif.find("\"threadFlows\""), std::string::npos);
  // One threadFlow location per path step, each with a message.
  const auto occurrences = [&](std::string_view needle) {
    std::size_t n = 0;
    for (std::size_t at = sarif.find(needle); at != std::string::npos;
         at = sarif.find(needle, at + needle.size()))
      ++n;
    return n;
  };
  std::size_t steps = 0, flows = 0;
  for (const lint::Finding& f : res.findings) {
    if (f.path.empty()) continue;
    ++flows;
    steps += f.path.size();
  }
  EXPECT_EQ(occurrences("\"codeFlows\""), flows);
  EXPECT_EQ(occurrences("\"threadFlows\""), flows);
  EXPECT_NE(sarif.find("function exit with the resource still held"),
            std::string::npos);
  EXPECT_GE(occurrences("\"message\""), steps);
}

// ---------------------------------------------------------------------------
// Parallel scans are deterministic.

TEST(LintEngine, DeterministicAcrossJobCounts) {
  const auto one = scan_fixtures(1);
  const auto eight = scan_fixtures(8);
  ASSERT_TRUE(one.error.empty());
  ASSERT_TRUE(eight.error.empty());
  // Finding equality includes the execution path, so this also pins the
  // flow rules' codeFlows across worker counts -- make sure they fired,
  // including the two-pass (scope -> program -> rules) interprocedural
  // pipeline whose program build is sequential by construction.
  EXPECT_GT(count(one.findings, "src/resource_pair.cpp", "resource-pairing"),
            0u);
  EXPECT_GT(count(one.findings, "src/use_move.cpp", "use-after-move"), 0u);
  EXPECT_GT(
      count(one.findings, "src/status_path.cpp", "unchecked-status-path"),
      0u);
  EXPECT_GT(count(one.findings, "src/summary_leak.cpp", "summary-leak"), 0u);
  EXPECT_GT(
      count(one.findings, "src/interproc_resource.cpp", "resource-pairing"),
      0u);
  EXPECT_GT(count(one.findings, "src/ts_mailbox.cpp", "ts-mailbox"), 0u);
  EXPECT_GT(count(one.findings, "src/interproc_ts.cpp", "ts-kv-wal"), 0u);
  EXPECT_TRUE(one.findings == eight.findings);
  EXPECT_EQ(one.stats.defs, eight.stats.defs);
  EXPECT_EQ(one.stats.call_sites, eight.stats.call_sites);
  EXPECT_EQ(one.stats.resolved_calls, eight.stats.resolved_calls);

  // And the same for the degraded single-pass pipeline.
  const auto bare1 = scan_fixtures(1, /*summaries=*/false);
  const auto bare8 = scan_fixtures(8, /*summaries=*/false);
  EXPECT_TRUE(bare1.findings == bare8.findings);
}

// ---------------------------------------------------------------------------
// Docs stay in sync with the rule catalog.

// Every rule the binary knows (including the engine-level stale-suppression
// pass) must be documented by name in docs/STATIC_ANALYSIS.md, and the
// catalog itself must be the full 18+1 set (14 hand-written rules, 4
// typestate protocols, plus the stale-suppression pass).
TEST(LintCatalog, DocsListEveryRule) {
  const auto catalog = lint::rule_catalog();
  EXPECT_EQ(catalog.size(), 19u);
  std::ifstream in(LINT_DOCS_FILE);
  ASSERT_TRUE(in.good()) << "cannot open " << LINT_DOCS_FILE;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string docs = ss.str();
  for (const lint::RuleMeta& m : catalog) {
    EXPECT_NE(docs.find(m.name), std::string::npos)
        << "rule '" << m.name << "' missing from docs/STATIC_ANALYSIS.md";
    EXPECT_FALSE(m.description.empty()) << m.name;
  }
}

}  // namespace
