// unchecked-status-path fixture: a PutStatus filled through `&st` must be
// checked on every path to function exit. Near-misses check on all paths,
// use a non-PutStatus local, or never pass the status by address.
// Fixtures are scanned, not compiled.
namespace fix {

// POSITIVE: checked only on the logging branch; the quiet path drops it.
sim::Task one_branch(Store* store, bool verbose) {
  PutStatus st = PutStatus::kOk;
  store->put("k", 1, &st);
  if (verbose) {
    report(st);
  }
  co_return;
}

// POSITIVE: the overload early-exit skips the check entirely.
sim::Task early_exit(Store* store, bool overloaded) {
  PutStatus st = PutStatus::kOk;
  store->put("k", 2, &st);
  if (overloaded) {
    co_return;
  }
  require_ok(st);
  co_return;
}

// POSITIVE: one switch arm checks, the default arm drops the verdict.
sim::Task switch_drop(Store* store, int mode) {
  PutStatus st = PutStatus::kOk;
  store->put("k", 3, &st);
  switch (mode) {
    case 0:
      require_ok(st);
      break;
    default:
      break;
  }
  co_return;
}

// NEGATIVE (near-miss): checked immediately on the only path.
sim::Task checked(Store* store) {
  PutStatus st = PutStatus::kOk;
  store->put("k", 4, &st);
  require_ok(st);
  co_return;
}

// NEGATIVE (near-miss): both branches check before exiting.
sim::Task both_branches(Store* store, bool fast) {
  PutStatus st = PutStatus::kOk;
  store->put("k", 5, &st);
  if (fast) {
    require_ok(st);
    co_return;
  }
  retry_if_failed(st);
  co_return;
}

// NEGATIVE (near-miss): a plain int out-param is not a PutStatus.
sim::Task int_status(Store* store, bool verbose) {
  int st = 0;
  store->put("k", 6, &st);
  if (verbose) {
    report(st);
  }
  co_return;
}

// NEGATIVE (near-miss): filled in a loop, checked once after it -- every
// loop exit passes through the check.
sim::Task loop_then_check(Store* store, int n) {
  PutStatus st = PutStatus::kOk;
  for (int i = 0; i < n; ++i) {
    store->put("k", i, &st);
  }
  require_ok(st);
  co_return;
}

}  // namespace fix
