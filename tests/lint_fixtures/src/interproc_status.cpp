// Interprocedural unchecked-status-path fixture: the status flows through
// helpers by reference, with no `&` at the call site for the local rule to
// see. A helper whose summary *writes* its PutStatus out-param is a fill;
// one that *checks* it is the check. Every positive here is silent under
// --no-summaries. Fixtures are scanned, not compiled.
namespace fix {

// Writes its out-param: callers that drop the verdict are on the hook.
void ips_fill(Store* store, PutStatus& st) {
  st = store->put_sync("k", 1);
}

// Checks its argument on its only path (by-value consume inside).
void ips_require(PutStatus& st) {
  require_ok(st);
}

// Ignores its PutStatus parameter entirely: neither a fill nor a check.
void ips_ignore(PutStatus& st) {
  (void)st;
}

// POSITIVE: filled one call deep, checked only on the logging branch.
sim::Task ips_one_branch(Store* store, bool verbose) {
  PutStatus st = PutStatus::kOk;
  ips_fill(store, st);
  if (verbose) {
    report(st);
  }
  co_return;
}

// POSITIVE: filled one call deep, the overload early-exit drops it.
sim::Task ips_early_exit(Store* store, bool overloaded) {
  PutStatus st = PutStatus::kOk;
  ips_fill(store, st);
  if (overloaded) {
    co_return;
  }
  require_ok(st);
  co_return;
}

// NEGATIVE (near-miss): filled one call deep, checked one call deep on
// every path -- the checking helper's summary consumes the fill.
sim::Task ips_checked_by_helper(Store* store, bool fast) {
  PutStatus st = PutStatus::kOk;
  ips_fill(store, st);
  if (fast) {
    ips_require(st);
    co_return;
  }
  ips_require(st);
  co_return;
}

// NEGATIVE (near-miss): a helper that ignores the status is neither a fill
// nor a check; the direct fill below is checked on the only path.
sim::Task ips_inert_helper(Store* store) {
  PutStatus st = PutStatus::kOk;
  store->put("k", 2, &st);
  ips_ignore(st);
  require_ok(st);
  co_return;
}

// NEGATIVE (near-miss): the helper takes a plain int out-param, which is
// not a PutStatus -- nothing to track.
sim::Task ips_int_status(Store* store, bool verbose) {
  int st = 0;
  ips_fill_int(store, st);
  if (verbose) {
    report(st);
  }
  co_return;
}

}  // namespace fix
