// ts-mailbox fixture: the Mailbox shutdown protocol. close() marks the
// producer side done, close_rx() hangs up the consumer side; pushing after
// either, or popping after the receive end hung up, loses values. Tracking
// is by declared type (sim::Mailbox<...>) or receiver glob (mb, *mailbox*).
// Fixtures are scanned, not compiled.
namespace fix {

// POSITIVE: push after the producer marked shutdown -- the value is
// silently dropped ahead of the consumer's drain.
sim::Task mb_push_after_close(sim::Mailbox<int>& mb) {
  mb.close();
  mb.push(1);
  co_return;
}

// POSITIVE: push after this side hung up the receive end.
sim::Task mb_push_after_hangup(sim::Mailbox<int>& mb) {
  mb.close_rx();
  mb.push(2);
  co_return;
}

// POSITIVE: pop after close_rx -- nothing can arrive once the hangup
// propagates, and the close happens only on the shutdown branch, so the
// error is path-sensitive ("on some path").
sim::Task mb_pop_after_hangup(sim::Mailbox<int>& mb, bool shutdown) {
  if (shutdown) {
    mb.close_rx();
  }
  co_await mb.pop();
}

// NEGATIVE (near-miss): pop after close is the legal drain -- the consumer
// keeps draining queued values until the close marker arrives.
sim::Task mb_drain_ok(sim::Mailbox<int>& mb) {
  mb.close();
  while (co_await mb.pop()) {
  }
}

// NEGATIVE (near-miss): the push sits on the branch that did NOT close;
// the states never meet.
sim::Task mb_branch_ok(sim::Mailbox<int>& mb, bool done) {
  if (done) {
    mb.close();
  } else {
    mb.push(3);
  }
  co_return;
}

// NEGATIVE (near-miss): two distinct mailboxes -- closing one does not
// poison the other.
sim::Task mb_two_objects_ok(sim::Mailbox<int>& mb, sim::Mailbox<int>& mbox2) {
  mb.close();
  mbox2.push(4);
  co_return;
}

// NEGATIVE (near-miss): untracked receiver -- no Mailbox declaration in
// scope and the name matches no receiver glob, so the protocol never
// attaches.
sim::Task mb_untracked_ok() {
  q_.close();
  q_.push(5);
  co_return;
}

// NEGATIVE (suppressed): a deliberate post-close push, e.g. racing
// producers in a shutdown stress test; the reasoned marker consumes the
// finding (stale-suppression stays quiet -- see SuppressionBookkeeping).
sim::Task mb_suppressed(sim::Mailbox<int>& mb) {
  mb.close();
  // snacc-lint: allow(ts-mailbox): shutdown-race stress hits the drop path
  mb.push(6);
  co_return;
}

}  // namespace fix
