// Interprocedural cross-domain-touch fixture: the coupling happens inside
// a helper, so no statement in the caller ever shows a component receiver.
// The helper's summary says which parameters it touches; a call whose
// touched argument shares a statement with a component from another domain
// is the same race one call deep. Every positive here is silent under
// --no-summaries. Fixtures are scanned, not compiled.
namespace fix {

struct Domain {
  void spawn(int);
};
struct Pump {
  explicit Pump(Domain& d);
  int kick();
};
struct Mailbox {
  Mailbox(Domain& a, Domain& b);
};

// Touches both of its parameters.
void ipd_kick_both(Pump& x, Pump& y) {
  x.kick();
  y.kick();
}

// Touches only the first parameter; the pointer rides along untouched.
void ipd_link(Pump& x, Pump* peer) {
  x.kick();
  (void)peer;
}

// POSITIVE: wrapper couples components of two domains one call deep.
void ipd_wrong(Domain& a, Domain& b) {
  Pump intake(a);
  Pump outlet(b);
  ipd_kick_both(intake, outlet);
}

// POSITIVE: the helper touches its first argument while a component bound
// to a different domain shares the statement.
void ipd_wrong_stmt(Domain& a, Domain& b) {
  Pump feeder(a);
  Pump drainer(b);
  ipd_link(feeder, &drainer);
}

// NEGATIVE (near-miss): both arguments live on one domain.
void ipd_same(Domain& a) {
  Pump first(a);
  Pump second(a);
  ipd_kick_both(first, second);
}

// NEGATIVE (near-miss): the statement mentions a boundary-typed variable,
// so the crossing is mediated.
void ipd_bridged(Domain& a, Domain& b) {
  Pump source(a);
  Pump sink_p(b);
  Mailbox link(a, b);
  ipd_kick_both(source, sink_p), (void)link;
}

// NEGATIVE (near-miss): the helper never resolves (no definition in the
// program), so there is no summary to consult -- stay conservative.
void ipd_unresolved(Domain& a, Domain& b) {
  Pump left(a);
  Pump right(b);
  ipd_extern_kick(left, right);
}

}  // namespace fix
