// resource-pairing fixture: acquires from the policy table (acquire/
// release, ring alloc/free_oldest, rob_ alloc/retire) must be released on
// every path to function exit. The rule only arms when a function both
// acquires AND releases a resource: acquire-only bodies are one half of a
// deliberate cross-coroutine handoff. Fixtures are scanned, not compiled.
namespace fix {

// POSITIVE: the error branch co_returns while the credit is still held.
sim::Task leak_early_return(Sem* gate, bool err) {
  gate->acquire();
  if (err) {
    co_return;
  }
  gate->release();
}

// POSITIVE: `continue` jumps to the next iteration without free_oldest,
// and the loop can then exit normally with the slot still allocated.
sim::Task leak_continue(Ring* read_ring, int n) {
  for (int i = 0; i < n; ++i) {
    read_ring->alloc();
    if (full(i)) {
      continue;
    }
    read_ring->free_oldest();
  }
  co_return;
}

// POSITIVE: one switch arm retires the slot, the default arm drops it.
// (The head completion keeps this fixture out of ts-nvme-cid's way: the
// defect here is the leak, not a blind retire.)
sim::Task leak_switch(int kind) {
  rob_.alloc();
  rob_.wait_head();
  switch (kind) {
    case 0:
      rob_.retire();
      break;
    default:
      break;
  }
  co_return;
}

// NEGATIVE (near-miss): every path releases, including the early return.
sim::Task balanced(Sem* gate, bool err) {
  gate->acquire();
  if (err) {
    gate->release();
    co_return;
  }
  gate->release();
}

// NEGATIVE (near-miss): acquire-only handoff -- retirement releases this
// credit in another coroutine, so the pairing gate keeps it silent.
sim::Task handoff(Sem* credits) {
  credits->acquire();
  co_await push();
}

// NEGATIVE (near-miss): a `while (true)` pump hands the credit to the next
// iteration on purpose; its only exit releases first. The constant loop
// has no fall-through exit edge, so the handoff is not a leak.
sim::Task pump_loop(Sem* credits) {
  while (true) {
    co_await tick();
    if (closing()) {
      credits->release();
      co_return;
    }
    // The re-acquire is for the *next* iteration's command: the same
    // deliberate handoff as the fault-retry path in src/snacc/streamer.cpp.
    // snacc-lint: allow(ts-credit): cross-iteration handoff by design
    credits->acquire();
  }
}

}  // namespace fix
