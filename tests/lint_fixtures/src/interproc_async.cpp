// Interprocedural discarded-async fixture: statement-position calls whose
// asyncness the file-level name table cannot see. A lambda bound to a name
// types only through the call graph's binding, and an `auto` function is
// async only by summary propagation through its return sites. Every
// positive here is silent under --no-summaries.
// Fixtures are scanned, not compiled.
namespace fix {

// A real async function: in the name table, so direct discards of it are
// the intraprocedural rule's business (async.cpp covers those).
sim::Task ipa_job() {
  co_return;
}

// `auto` return type: async only via propagation -- its return site calls
// ipa_job(), so the summary pass marks it Task-returning.
auto ipa_relay() {
  return ipa_job();
}

sim::Task ipa_driver(Chan* work) {
  auto ipa_pump = []() -> sim::Task {
    co_await tick();
  };

  // POSITIVE: bound-lambda call dropped at statement position; the name
  // table has no entry for `ipa_pump`, only the call graph does.
  ipa_pump();

  // POSITIVE: `auto` relay dropped at statement position; asyncness came
  // from summary propagation, not from any declared Task return.
  ipa_relay();

  // NEGATIVE (near-miss): awaited, so the frame runs to completion.
  co_await ipa_relay();

  // NEGATIVE (near-miss): stored -- the handle stays alive.
  auto held = ipa_pump();

  // NEGATIVE (near-miss): explicitly acknowledged posted operation.
  (void)ipa_relay();

  // NEGATIVE (near-miss): passed on; the spawn owns the frame now.
  spawn(ipa_pump());

  co_await held;
}

}  // namespace fix
