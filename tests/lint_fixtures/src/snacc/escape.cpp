// Fixture: value-escape. src/snacc/ is typed model code (only the
// prp_engine/buffer_backend adapters are policy'd), so a bare .value() here
// needs a reasoned allow().
namespace fix {

// POSITIVE: strips the unit wrapper inside typed model code.
unsigned long long leak(snacc::Bytes len) {
  return len.value();
}

// NEGATIVE (near-miss): '->' receiver is some pointer-like type
// (std::optional et al.), out of this rule's scope.
unsigned long long via_ptr(const snacc::Bytes* p) {
  return p->value();
}

// NEGATIVE (suppressed): reasoned escape at a wire boundary.
unsigned long long framed(snacc::Bytes len) {
  // snacc-lint: allow(value-escape): wire header stores a raw byte count
  return len.value();
}

}  // namespace fix
