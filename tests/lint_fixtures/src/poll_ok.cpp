// Fixture: unbounded-poll near-miss -- a closed() exit in the loop keeps
// the poll bounded, so nothing fires.
namespace fix {

struct Chan {
  int* try_pop();
  bool closed() const;
};

// NEGATIVE: the closed() check within the window marks a bounded loop.
int drain_ok(Chan& c) {
  int total = 0;
  while (!c.closed()) {
    auto* v = c.try_pop();
    if (v != nullptr) total += *v;
  }
  return total;
}

}  // namespace fix
