// summary-leak fixture: a coroutine acquires a resource through a callee
// (so the acquire is invisible without summaries), then can park at a
// suspension point from which no path ever reaches function exit -- the
// credit is held forever. The rule only tracks callee-substituted acquires;
// direct acquires are resource-pairing's business, and the pairing gate
// (both an acquire and a release somewhere in the body) still applies.
// Every positive here is silent under --no-summaries.
// Fixtures are scanned, not compiled.
namespace fix {

void sl_stage(Sem* credits) {
  credits->acquire();
}

void sl_put_back(Sem* credits) {
  credits->release();
}

// POSITIVE: the fast path releases and leaves; the slow path parks in a
// `while (true)` pump -- no exit edge -- with the staged credit held.
sim::Task sl_forever(Sem* credits, Chan* ch, bool fast) {
  sl_stage(credits);
  if (fast) {
    sl_put_back(credits);
    co_return;
  }
  while (true) {
    co_await ch->recv();
  }
}

// POSITIVE: released only on an interior branch that loops right back; the
// pump re-suspends with the credit possibly held and never co_returns.
sim::Task sl_pump(Sem* credits, Chan* ch) {
  sl_stage(credits);
  while (true) {
    co_await ch->recv();
    if (closing()) {
      sl_put_back(credits);
    }
  }
}

// NEGATIVE (near-miss): released through the helper on every path before
// the eternal pump -- nothing is held at the suspension.
sim::Task sl_release_first(Sem* credits, Chan* ch) {
  sl_stage(credits);
  sl_put_back(credits);
  while (true) {
    co_await ch->recv();
  }
}

// NEGATIVE (near-miss): the loop is bounded, every suspension can still
// reach the release and the function exit below it.
sim::Task sl_bounded(Sem* credits, Chan* ch, int n) {
  sl_stage(credits);
  for (int i = 0; i < n; ++i) {
    co_await ch->recv();
  }
  sl_put_back(credits);
  co_return;
}

// NEGATIVE (near-miss): the acquire is direct, not through a callee --
// resource-pairing territory, and its exit paths all release anyway.
sim::Task sl_direct(Sem* credits, Chan* ch, bool fast) {
  credits->acquire();
  if (fast) {
    credits->release();
    co_return;
  }
  while (true) {
    co_await ch->recv();
  }
}

}  // namespace fix
