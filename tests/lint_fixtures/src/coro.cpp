// Fixture: dangling-capture. A lambda coroutine's captures live in the
// closure object, which usually dies at the end of the statement that
// started the coroutine -- so reads through reference captures (or
// reference parameters) after the first suspension point are reads through
// dangling references. Fixtures are scanned, not compiled.
namespace fix {

struct Sim {
  sim::Task delay(int ps);
};

struct Buf {
  int data;
};

void use(int);

// POSITIVE: reference capture read after the co_await resumes.
inline void spawn_bad(Sim& s) {
  int local = 0;
  auto bad = [&local](Sim& sim) -> sim::Task {
    co_await sim.delay(1);
    local += 1;
  };
  (void)bad;
}

// POSITIVE: [&] makes the implicit capture set unknowable; the lambda
// itself is flagged at its header.
inline void spawn_any(Sim& s) {
  auto any = [&](Sim& sim) -> sim::Task {
    co_await sim.delay(1);
    co_return;
  };
  (void)any;
}

// POSITIVE: a T&& parameter in a named coroutine almost always binds a
// caller temporary that is gone by resume time.
sim::Task consume(Sim& s, Buf&& buf) {
  co_await s.delay(1);
  use(buf.data);
  co_return;
}

// NEGATIVE (near-miss): reference capture in a plain lambda -- no
// suspension point, so the closure outlives every use.
inline int sync_ok() {
  int local = 1;
  auto f = [&local] { return local + 1; };
  return f();
}

// NEGATIVE (near-miss): the capture is used only *before* the first
// suspension (including inside the awaited expression itself, which runs
// synchronously in the starting statement).
inline void spawn_early(Sim& s) {
  int local = 2;
  auto early = [&local](Sim& sim) -> sim::Task {
    local += 1;
    co_await sim.delay(local);
    co_return;
  };
  (void)early;
}

// NEGATIVE (near-miss): lvalue-ref parameters of a *named* coroutine are
// kept alive by the structured `co_await child(...)` caller.
sim::Task pump(Sim& s, int& counter) {
  co_await s.delay(1);
  counter += 1;
  co_return;
}

}  // namespace fix
