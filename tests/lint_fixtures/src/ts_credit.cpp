// ts-credit fixture: the streamer issue-credit discipline. A held credit
// must be released (quarantine counts: it releases on the way out) before
// the same path acquires again -- a second acquire on a held semaphore
// parks the coroutine against itself. The error is gated on the function
// also releasing the object: acquire-only bodies are one half of a
// cross-coroutine handoff (same pairing gate as resource-pairing), and a
// deliberate in-function handoff carries a reasoned allow() like the
// fault-retry re-acquire in src/snacc/streamer.cpp. Fixtures are scanned,
// not compiled.
namespace fix {

// POSITIVE: the retry branch re-acquires without releasing first.
sim::Task cr_double_acquire(Sem* issue_credits, bool retry) {
  issue_credits->acquire();
  if (retry) {
    issue_credits->acquire();
  }
  issue_credits->release();
}

// POSITIVE: the loop back-edge carries the held credit into the next
// iteration's acquire; the release only happens after the loop.
sim::Task cr_loop_reacquire(Sem* issue_credits, int n) {
  for (int i = 0; i < n; ++i) {
    issue_credits->acquire();
  }
  issue_credits->release();
}

// NEGATIVE (near-miss): release-then-reacquire is the legal window cycle.
sim::Task cr_cycle_ok(Sem* issue_credits, int n) {
  for (int i = 0; i < n; ++i) {
    issue_credits->acquire();
    issue_credits->release();
  }
}

// NEGATIVE (near-miss): acquire-only handoff -- the completion path
// releases this credit in another coroutine, so the gate never arms even
// though the loop re-acquires while (from this function's view) held.
sim::Task cr_handoff_ok(Sem* issue_credits, int n) {
  for (int i = 0; i < n; ++i) {
    issue_credits->acquire();
  }
}

// NEGATIVE (near-miss): an untracked receiver -- `gate` matches neither
// the Semaphore type nor the *credit*/*mutex* globs, so the double
// acquire is resource-pairing's business (balanced here), not ts-credit's.
sim::Task cr_untracked_ok(Sem* gate, bool retry) {
  gate->acquire();
  if (retry) {
    gate->acquire();
  }
  gate->release();
}

}  // namespace fix
