// Fixture: unbounded-poll, positive and suppressed.
namespace fix {

struct Queue {
  int* try_pop();
};

// POSITIVE: spins the scheduler -- no co_await yield, no closed() exit
// anywhere near the poll.
int drain(Queue& q) {
  int total = 0;
  while (true) {
    auto* v = q.try_pop();
    if (v == nullptr) break;
    total += *v;
  }
  return total;
}

// NEGATIVE (suppressed): same shape, silenced with a reasoned marker.
int drain_once(Queue& q) {
  // snacc-lint: allow(unbounded-poll): single probe, not a loop
  auto* v = q.try_pop();
  return v != nullptr ? *v : 0;
}

}  // namespace fix
