// Fixture: value-escape policy. src/mem/ is the byte-addressed backing
// store -- raw integers are the point, so the per-directory policy table
// waves the whole file through.
namespace fix {

unsigned long long raw(snacc::Bytes len) {
  return len.value();
}

}  // namespace fix
