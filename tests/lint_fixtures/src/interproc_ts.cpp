// Interprocedural typestate fixture: protocol events that happen one call
// deep. A helper's unconditional events are recorded in its summary as a
// protocol effect and spliced into callers at the call site; conditional
// events poison the effect (opaque, conservative). Every positive here is
// silent under --no-summaries: the caller-side facts literally do not
// exist at function scope. Fixtures are scanned, not compiled.
namespace fix {

// Helper that closes the producer side -- unconditional, so its summary
// carries the close keyed to parameter 0.
void ts_ip_shutdown(sim::Mailbox<int>& mb) {
  mb.close();
}

// Helper whose close is conditional: the effect is opaque and callers
// learn nothing (conservative, like every other summary field).
void ts_ip_maybe_shutdown(sim::Mailbox<int>& mb, bool go) {
  if (go) {
    mb.close();
  }
}

// Helper that stages one record: the put is the helper's, the group
// commit is the caller's.
sim::Task ts_ip_stage(apps::KvStore& store) {
  co_await store.put("k", v_, &st_);
}

// Helper that grabs one issue credit.
void ts_ip_grab(Sem* issue_credits) {
  issue_credits->acquire();
}

// POSITIVE: push after the helper closed the mailbox.
sim::Task ts_ip_push_after_close(sim::Mailbox<int>& mb) {
  ts_ip_shutdown(mb);
  mb.push(1);
  co_return;
}

// POSITIVE: the helper staged a put, and the no-flush branch reaches
// function exit with the record still volatile.
sim::Task ts_ip_stage_dirty(apps::KvStore& store, bool flush) {
  co_await ts_ip_stage(store);
  if (flush) {
    co_await store.commit(&ok_);
  }
}

// POSITIVE: the retry branch re-grabs through the helper while the first
// credit is still held; the direct release arms the gate.
sim::Task ts_ip_regrab(Sem* issue_credits, bool retry) {
  ts_ip_grab(issue_credits);
  if (retry) {
    ts_ip_grab(issue_credits);
  }
  issue_credits->release();
}

// NEGATIVE (near-miss): push happens before the closing helper runs.
sim::Task ts_ip_order_ok(sim::Mailbox<int>& mb) {
  mb.push(2);
  ts_ip_shutdown(mb);
  co_return;
}

// NEGATIVE (near-miss): the helper's close is conditional, so the effect
// is opaque and the push stays silent (conservative on ambiguity).
sim::Task ts_ip_opaque_ok(sim::Mailbox<int>& mb, bool go) {
  ts_ip_maybe_shutdown(mb, go);
  mb.push(3);
  co_return;
}

// NEGATIVE (near-miss): every path commits after the staged put.
sim::Task ts_ip_stage_ok(apps::KvStore& store) {
  co_await ts_ip_stage(store);
  co_await store.commit(&ok_);
}

}  // namespace fix
