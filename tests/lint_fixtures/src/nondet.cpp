// Fixture: nondeterminism.
#include <cstdlib>
#include <unordered_map>

namespace fix {

// POSITIVE: libc randomness.
int roll() { return rand(); }

// NEGATIVE: "rand()" inside a string literal is prose, not a call. The old
// regex engine flagged this line.
const char* advice() { return "never call rand() in model code"; }

// NEGATIVE: rand() in a comment is also prose.

// POSITIVE: iterating an unordered_map exposes hash order.
int sum() {
  std::unordered_map<int, int> table;
  int acc = 0;
  for (const auto& kv : table) acc += kv.second;
  return acc;
}

}  // namespace fix
