// Interprocedural resource-pairing fixture: acquires and releases that
// happen one call deep. The helpers themselves are one-sided (acquire-only
// or release-only bodies never arm the pairing gate); only the caller, with
// callee summaries substituted at the call sites, sees the full pair.
// Every positive here is silent under --no-summaries.
// Fixtures are scanned, not compiled.
namespace fix {

// Acquire-only helper: `gate->acquire()` keyed to its first parameter.
void ipr_grab(Sem* gate) {
  gate->acquire();
}

// Release-only helper, the other half of the pair.
void ipr_put_back(Sem* gate) {
  gate->release();
}

// Balanced helper: acquires AND releases on its only path, so its summary
// contributes nothing to callers (releases_all swallows the acquire).
void ipr_probe(Sem* gate) {
  gate->acquire();
  gate->release();
}

// POSITIVE: the error branch co_returns while the helper-acquired credit
// is still held.
sim::Task ipr_leak_branch(Sem* gate, bool err) {
  ipr_grab(gate);
  if (err) {
    co_return;
  }
  ipr_put_back(gate);
}

// POSITIVE: `continue` jumps past the releasing helper, and the loop can
// then exit normally with the credit still held.
sim::Task ipr_leak_loop(Sem* gate, int n) {
  for (int i = 0; i < n; ++i) {
    ipr_grab(gate);
    if (full(i)) {
      continue;
    }
    ipr_put_back(gate);
  }
  co_return;
}

// NEGATIVE (near-miss): every path releases through the helper, including
// the early return.
sim::Task ipr_all_paths(Sem* gate, bool err) {
  ipr_grab(gate);
  if (err) {
    ipr_put_back(gate);
    co_return;
  }
  ipr_put_back(gate);
}

// NEGATIVE (near-miss): acquire-only handoff -- retirement releases this
// credit in another coroutine, so the pairing gate keeps it silent even
// though the summary substitutes the acquire.
sim::Task ipr_handoff(Sem* credits) {
  ipr_grab(credits);
  co_await push();
}

// NEGATIVE (near-miss): a balanced helper on a branch must not read as an
// unmatched acquire -- the direct pair below it is released on every path.
sim::Task ipr_balanced_call(Sem* gate, bool noisy) {
  gate->acquire();
  if (noisy) {
    ipr_probe(gate);
  }
  gate->release();
  co_return;
}

}  // namespace fix
