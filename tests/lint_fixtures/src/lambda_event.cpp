// Fixture: lambda-event. The closure overload of Simulator::at/after
// allocates an event node per call; model code must embed a sim::EventNode.
#include <vector>

namespace fix {

struct Sim {
  template <typename F>
  void at(int t, F&& fn);
};

// POSITIVE: closure overload, with the call split across lines -- the old
// line-by-line regex could not see this one.
void arm(Sim& sim, int& v) {
  sim.at(5,
         [&v] { v += 1; });
}

// NEGATIVE: container .at(index) has no lambda in the argument list.
int peek(const std::vector<int>& v) { return v.at(0); }

}  // namespace fix
