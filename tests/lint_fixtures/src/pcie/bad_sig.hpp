// Fixture: bare-uint-signature.
#pragma once
#include <cstdint>

namespace fix {

// POSITIVE: a domain-named raw parameter in a typed device header.
void submit(std::uint64_t addr, int flags);

// NEGATIVE: an accessor *named* like a quantity is not a parameter.
struct Probe {
  std::uint64_t bytes() const { return 0; }
};

}  // namespace fix
