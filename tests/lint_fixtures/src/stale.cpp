// Fixture: stale-suppression -- a marker that silences nothing is itself
// reported, so dead allow() comments cannot accumulate.
namespace fix {

// snacc-lint: allow(nondeterminism): nothing on this line actually fires
int identity(int x) { return x; }

// A typestate marker goes stale the same way: the commit on every path
// means ts-kv-wal has nothing to silence here.
// snacc-lint: allow(ts-kv-wal): stale -- the barrier is right below
sim::Task flushed(apps::KvStore& store) {
  co_await store.put("k", v_, &st_);
  co_await store.commit(&ok_);
}

}  // namespace fix
