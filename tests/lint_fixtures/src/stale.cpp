// Fixture: stale-suppression -- a marker that silences nothing is itself
// reported, so dead allow() comments cannot accumulate.
namespace fix {

// snacc-lint: allow(nondeterminism): nothing on this line actually fires
int identity(int x) { return x; }

}  // namespace fix
