// unchecked-put fixture: durable-write calls that drop their status
// out-param (positives) and properly checked ones (near-misses).
struct Store {
  void put(const char* k, int v);
  void put(const char* k, int v, int* st);
  void put(int v);
};
struct Repl {
  void write(unsigned long addr, int data);
  void write(unsigned long addr, int data, bool* err);
};

void positives(Store& store, Store* heap, Repl* repl) {
  store.put("k", 1);                  // finding: 2-arg put, status dropped
  heap->put("k", f(1, 2));            // finding: nested commas don't count
  repl->write(4096, 7);               // finding: quorum verdict dropped
}

void near_misses(Store& store, Repl* repl, Repl* device) {
  int st = 0;
  bool err = false;
  store.put("k", 1, &st);             // status checked
  store.put(1);                       // not the key/value overload
  repl->write(4096, 7, &err);         // error checked
  device->write(4096, 7);             // receiver is not replicated
}
