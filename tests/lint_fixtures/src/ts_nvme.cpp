// ts-nvme-cid fixture: the command lifecycle through the reorder buffer
// (PAPER.md Fig. 4c). A slot is allocated at submission and may be retired
// only after its completion was observed -- complete() CQE, wait_head(),
// or a fail_head() poison. reopen_head() re-arms the head command for a
// retry resubmission, so a retire after it needs a fresh completion.
// Fixtures are scanned, not compiled.
namespace fix {

// POSITIVE: retire straight after alloc -- no completion was ever
// observed for the slot.
sim::Task rob_blind_retire(int n) {
  rob_.alloc();
  rob_.retire();
  co_return;
}

// POSITIVE: the fast path skips the completion wait, so on that path the
// retire happens while the slot is still merely allocated.
sim::Task rob_skip_wait(bool fast) {
  rob_.alloc();
  if (!fast) {
    rob_.wait_head();
  }
  rob_.retire();
  co_return;
}

// POSITIVE: reopen_head re-arms the head for resubmission; retiring
// without a fresh completion repeats the blind retire one round later.
sim::Task rob_retry_blind(ReorderBuffer& rob, bool again) {
  rob.alloc();
  rob.complete();
  if (again) {
    rob.reopen_head();
  }
  rob.retire();
  co_return;
}

// NEGATIVE (near-miss): the three legal completions each unlock retire.
sim::Task rob_complete_ok() {
  rob_.alloc();
  rob_.complete();
  rob_.retire();
  co_return;
}

sim::Task rob_wait_ok() {
  rob_.alloc();
  rob_.wait_head();
  rob_.retire();
  co_return;
}

sim::Task rob_poison_ok() {
  rob_.alloc();
  rob_.fail_head();
  rob_.retire();
  co_return;
}

// NEGATIVE (near-miss): the retry loop re-completes after every reopen
// before retiring.
sim::Task rob_retry_ok(ReorderBuffer& rob, int tries) {
  rob.alloc();
  rob.complete();
  for (int i = 0; i < tries; ++i) {
    rob.reopen_head();
    rob.complete();
  }
  rob.retire();
  co_return;
}

}  // namespace fix
