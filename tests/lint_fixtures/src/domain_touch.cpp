// Fixture: cross-domain-touch. Components bound to different event domains
// interact only through boundary types (Mailbox/Channel/Wire/RateServer);
// direct calls or wrong-domain spawns race the owner's heap.
namespace fix {

struct Domain {
  void spawn(int);
};
struct Cluster {
  Domain& domain(int);
};
struct Pump {
  explicit Pump(Domain& d);
  void attach(Pump* peer);
  int tick();
};
struct Mailbox {
  Mailbox(Domain& a, Domain& b);
};
int work(Pump* p);

// POSITIVE: task spawned on `a` captures a component bound to `b`.
void spawn_wrong(Domain& a, Domain& b) {
  Pump pump_b(b);
  a.spawn(work(&pump_b));
}

// POSITIVE: direct method call coupling components of two domains.
void direct_touch(Domain& a, Domain& b) {
  Pump pump_a(a);
  Pump pump_b(b);
  pump_a.attach(&pump_b);
}

// POSITIVE: make_unique-owned component handed to the wrong domain.
void owned_wrong(Domain& a, Domain& b) {
  auto disk = std::make_unique<Pump>(b);
  a.spawn(work(disk.get()));
}

// NEGATIVE: both components live on one domain; spawn matches too.
void same_domain(Domain& a) {
  Pump first(a);
  Pump second(a);
  first.attach(&second);
  a.spawn(work(&first));
}

// NEGATIVE: the crossing is mediated by a boundary-typed variable.
void bridged(Domain& a, Domain& b) {
  Pump pump_a(a);
  Pump pump_b(b);
  Mailbox link(a, b);
  pump_a.attach(&pump_b), (void)link;
}

// NEGATIVE: two aliases of the same cluster index are the same domain.
void aliased(Cluster& cluster) {
  auto& x = cluster.domain(0);
  auto& y = cluster.domain(0);
  Pump p(x);
  Pump q(y);
  p.attach(&q);
  x.spawn(work(&q));
}

}  // namespace fix
