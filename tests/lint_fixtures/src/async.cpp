// Fixture: discarded-async. Tasks are lazy: a bare `job();` statement
// destroys the frame before it ever runs. Fixtures are scanned, not
// compiled.
namespace fix {

sim::Task job();
sim::Task post();
sim::Task amb();
void amb(int cookie);
void spawn(sim::Task t);

// POSITIVE: statement-position call, result dropped on the floor.
void fire_and_forget() {
  job();
}

// NEGATIVE: co_awaited.
sim::Task caller() {
  co_await job();
}

// NEGATIVE: stored in a local.
void keep_it() {
  auto keep = job();
  (void)keep;
}

// NEGATIVE: explicitly (void)-acknowledged posted operation.
void posted() {
  (void)post();
}

// NEGATIVE: passed on to an owner.
void handed_off() {
  spawn(job());
}

// NEGATIVE (near-miss): 'amb' is declared with both an async and a sync
// signature, so the name-level symbol table is ambiguous at this call site
// and the rule must stay silent rather than guess.
void ambiguous() {
  amb();
}

}  // namespace fix
