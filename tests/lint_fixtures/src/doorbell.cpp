// Fixture: raw-doorbell. This file is not src/nvme/spec.hpp, so touching
// kDoorbellBase directly is a finding. Fixtures are scanned, not compiled,
// so the constant needs no declaration here.
namespace fix {

// POSITIVE: raw doorbell arithmetic outside the spec header.
unsigned ring(unsigned qid) {
  return kDoorbellBase + qid * 8;
}

}  // namespace fix
