// ts-kv-wal fixture: the KV group-commit barrier. put() appends and
// indexes but the record is volatile until a commit() flush barrier; a
// path that acknowledges puts and reaches function exit still dirty loses
// them on a crash. The obligation is gated on the function also committing
// somewhere (put-only bodies are one half of a deliberate handoff, same
// policy as resource-pairing). Fixtures are scanned, not compiled.
namespace fix {

// POSITIVE: the error branch co_returns with the store still dirty; the
// main path's commit arms the gate.
sim::Task wal_bail_dirty(apps::KvStore& store, bool err) {
  co_await store.put("k", v_, &st_);
  if (err) {
    co_return;
  }
  co_await store.commit(&ok_);
}

// POSITIVE: `break` exits the batch loop past the per-batch commit, and
// the function then returns with the tail batch volatile.
sim::Task wal_break_dirty(apps::KvStore& store, int n) {
  for (int i = 0; i < n; ++i) {
    co_await store.put(key(i), v_, &st_);
    if (st_ != apps::PutStatus::kOk) {
      break;
    }
    co_await store.commit(&ok_);
  }
  co_return;
}

// NEGATIVE (near-miss): every path commits, including the bail-out.
sim::Task wal_all_paths_ok(apps::KvStore& store, bool err) {
  co_await store.put("k", v_, &st_);
  if (err) {
    co_await store.commit(&ok_);
    co_return;
  }
  co_await store.commit(&ok_);
}

// NEGATIVE (near-miss): put-only handoff -- the caller owns the group
// commit, so the gate keeps this half silent.
sim::Task wal_handoff_ok(apps::KvStore& store) {
  co_await store.put("k", v_, &st_);
  co_return;
}

// NEGATIVE (near-miss): commit with nothing dirty is a legal (empty)
// barrier.
sim::Task wal_commit_only_ok(apps::KvStore& store) {
  co_await store.commit(&ok_);
}

// NEGATIVE (near-miss): a non-KvStore receiver with a put-shaped call --
// neither the declared type nor the globs match `cache`.
sim::Task wal_untracked_ok(lru::Cache& cache) {
  cache.put("k", v_, &st_);
  co_return;
}

}  // namespace fix
