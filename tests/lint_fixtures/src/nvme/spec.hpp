// Fixture: raw-doorbell exemption. The one file allowed to define and use
// kDoorbellBase is src/nvme/spec.hpp -- this fixture shadows that path.
#pragma once
#include <cstdint>

namespace fix {

// NEGATIVE: definition site inside the exempt header.
inline constexpr std::uint64_t kDoorbellBase = 0x1000;
inline std::uint64_t sq_tail_doorbell(std::uint16_t qid) {
  return kDoorbellBase + 2u * qid * 4u;
}

}  // namespace fix
