// use-after-move fixture: a moved-from Payload/Chunk local must not be
// read on any path before reassignment. The rule tracks bare value
// declarations only, and a read in the same statement as the move (the
// other arm of a conditional operator) stays silent by design. Fixtures
// are scanned, not compiled.
namespace fix {

// POSITIVE: moved on the fast path, read unconditionally afterwards.
sim::Task branch_leak(bool fast) {
  Payload p = make();
  if (fast) {
    co_await sink(std::move(p));
  }
  use(p);
}

// POSITIVE: straight-line move, then a read after the suspension.
sim::Task straight_leak() {
  Chunk c = make_chunk();
  co_await sink_chunk(std::move(c));
  log_size(c);
}

// POSITIVE: the move from the previous loop iteration reaches the read at
// the top of the next one along the back edge.
sim::Task loop_leak(int n) {
  Payload acc = make();
  for (int i = 0; i < n; ++i) {
    append(acc);
    co_await sink(std::move(acc));
  }
}

// NEGATIVE (near-miss): reassigned before the read.
sim::Task reassigned(bool fast) {
  Payload p = make();
  co_await sink(std::move(p));
  p = make();
  use(p);
}

// NEGATIVE (near-miss): the conditional operator moves in one arm and
// reads in the other; only one arm runs, so the same-statement pair is
// silent.
sim::Task ternary_ok(bool first, Payload acc) {
  Payload part = make();
  acc = first ? std::move(part) : concat(acc, part);
  co_return;
}

// NEGATIVE (near-miss): only the member is moved from; the local itself is
// not tracked through member moves.
sim::Task member_move(Payload piece) {
  Chunk keep = wrap(piece);
  co_await sink(std::move(keep.data));
  use_chunk(keep);
}

// NEGATIVE (near-miss): a fresh declaration each iteration resets the
// moved-from state before any read.
sim::Task fresh_decl(int n) {
  for (int i = 0; i < n; ++i) {
    Payload q = make();
    co_await sink(std::move(q));
  }
}

// NEGATIVE (near-miss): a second move is a transfer, not a read.
sim::Task double_move(bool a) {
  Payload p = make();
  if (a) {
    co_await sink(std::move(p));
  } else {
    co_await sink(std::move(p));
  }
}

}  // namespace fix
