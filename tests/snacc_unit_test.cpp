// Unit and property tests for the streamer's pure components: command
// splitter, buffer ring, reorder buffer, and the two on-the-fly PRP engines
// (verified against the reference in-memory PRP-list layout).
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "nvme/prp.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "snacc/buffer_manager.hpp"
#include "snacc/prp_engine.hpp"
#include "snacc/reorder_buffer.hpp"
#include "snacc/splitter.hpp"

namespace snacc::core {
namespace {

// ---------------------------------------------------------------------------
// Splitter

TEST(Splitter, SmallAlignedReadIsOnePiece) {
  auto subs = split_read(Bytes{4096}, Bytes{4096}, {});
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].slba.value(), 1u);
  EXPECT_EQ(subs[0].blocks, 1u);
  EXPECT_EQ(subs[0].trim_head, 0u);
  EXPECT_EQ(subs[0].payload_bytes.value(), 4096u);
  EXPECT_TRUE(subs[0].last);
}

TEST(Splitter, UnalignedReadTrimsHead) {
  auto subs = split_read(Bytes{5000}, Bytes{100}, {});
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].slba.value(), 1u);
  EXPECT_EQ(subs[0].trim_head, 5000u % 4096);
  EXPECT_EQ(subs[0].blocks, 1u);  // 5000+100 fits in block 1
  EXPECT_EQ(subs[0].payload_bytes.value(), 100u);
}

TEST(Splitter, ReadCrossingBlockBoundaryCoversBothBlocks) {
  auto subs = split_read(Bytes{4000}, Bytes{200}, {});
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].slba.value(), 0u);
  EXPECT_EQ(subs[0].blocks, 2u);
  EXPECT_EQ(subs[0].trim_head, 4000u);
}

TEST(Splitter, LargeReadSplitsAtMdtsBoundaries) {
  // 2.5 MiB starting mid-MB: first piece reaches the 1 MiB boundary,
  // middle pieces are full-size, tail is the remainder.
  const Bytes addr{512 * KiB};
  auto subs = split_read(addr, Bytes{2 * MiB + 512 * KiB}, {});
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0].payload_bytes.value(), 512 * KiB);
  EXPECT_EQ(subs[1].payload_bytes.value(), 1 * MiB);
  EXPECT_EQ(subs[2].payload_bytes.value(), 1 * MiB);
  EXPECT_TRUE(subs[2].last);
  EXPECT_FALSE(subs[0].last);
}

TEST(Splitter, WriteRequiresAlignment) {
  EXPECT_TRUE(split_write(Bytes{100}, Bytes{4096}, {}).empty());
  EXPECT_TRUE(split_write(Bytes{4096}, Bytes{100}, {}).empty());
  EXPECT_EQ(split_write(Bytes{4096}, Bytes{8192}, {}).size(), 1u);
}

class SplitterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitterProperty, PiecesReassembleExactly) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t addr = rng.below(16 * MiB);
    const std::uint64_t len = 1 + rng.below(4 * MiB);
    auto subs = split_read(Bytes{addr}, Bytes{len}, {});
    ASSERT_FALSE(subs.empty());
    std::uint64_t total = 0;
    std::uint64_t cursor = addr;
    for (std::size_t k = 0; k < subs.size(); ++k) {
      const auto& s = subs[k];
      // Device coverage must contain the requested range piece.
      EXPECT_EQ(s.slba.value() * nvme::kLbaSize + s.trim_head, cursor);
      EXPECT_LE(s.trim_head + s.payload_bytes.value(),
                static_cast<std::uint64_t>(s.blocks) * nvme::kLbaSize);
      EXPECT_LE(s.buffer_bytes().value(), 1 * MiB + nvme::kLbaSize);
      EXPECT_EQ(s.last, k + 1 == subs.size());
      total += s.payload_bytes.value();
      cursor += s.payload_bytes.value();
    }
    EXPECT_EQ(total, len);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitterProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// BufferRing

TEST(BufferRing, AllocatesPageAligned) {
  sim::Simulator sim;
  BufferRing ring(sim, Bytes{64 * KiB});
  Bytes off{~0ull};
  auto t = [&]() -> sim::Task {
    co_await ring.alloc(Bytes{100}, &off);
  };
  sim.spawn(t());
  sim.run();
  EXPECT_EQ(off.value(), 0u);
  EXPECT_EQ(ring.in_use().value(), kPageSize);
}

TEST(BufferRing, BackpressuresWhenFullAndResumesOnFree) {
  sim::Simulator sim;
  BufferRing ring(sim, Bytes{16 * KiB});
  std::vector<std::uint64_t> offs;
  bool fourth_done = false;
  auto t = [&]() -> sim::Task {
    Bytes o;
    for (int i = 0; i < 4; ++i) {
      co_await ring.alloc(Bytes{4096}, &o);
      offs.push_back(o.value());
    }
    Bytes extra;
    co_await ring.alloc(Bytes{4096}, &extra);  // blocks until a free
    offs.push_back(extra.value());
    fourth_done = true;
  };
  sim.spawn(t());
  sim.after(us(5), [&] { ring.free_oldest(); });
  sim.run();
  ASSERT_TRUE(fourth_done);
  EXPECT_EQ(offs, (std::vector<std::uint64_t>{0, 4096, 8192, 12288, 0}));
}

TEST(BufferRing, WrapSkipsTailRemainder) {
  sim::Simulator sim;
  BufferRing ring(sim, Bytes{24 * KiB});
  Bytes a;
  Bytes b;
  Bytes c;
  auto t = [&]() -> sim::Task {
    co_await ring.alloc(Bytes{16 * KiB}, &a);  // [0, 16k)
    co_await ring.alloc(Bytes{4 * KiB}, &b);   // [16k, 20k)
    ring.free_oldest();                        // head -> 16k
    // 8 KiB does not fit in [20k, 24k); must wrap to 0.
    co_await ring.alloc(Bytes{8 * KiB}, &c);
  };
  sim.spawn(t());
  sim.run();
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 16 * KiB);
  EXPECT_EQ(c.value(), 0u);
}

TEST(BufferRing, StressRandomAllocFreeKeepsInvariants) {
  sim::Simulator sim;
  BufferRing ring(sim, Bytes{4 * MiB});
  Xoshiro256 rng(99);
  bool done = false;
  auto producer = [&]() -> sim::Task {
    for (int i = 0; i < 2000; ++i) {
      Bytes off;
      const Bytes len{kPageSize * (1 + rng.below(64))};
      co_await ring.alloc(len, &off);
      EXPECT_EQ(off.value() % kPageSize, 0u);
      EXPECT_LE(ring.in_use(), ring.capacity());
    }
    done = true;
  };
  auto consumer = [&]() -> sim::Task {
    while (!done || ring.outstanding() > 0) {
      if (ring.outstanding() > 0) {
        ring.free_oldest();
      }
      co_await sim.delay(ns(50));
    }
  };
  sim.spawn(producer());
  sim.spawn(consumer());
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(ring.outstanding(), 0u);
  EXPECT_EQ(ring.in_use().value(), 0u);
}

// ---------------------------------------------------------------------------
// ReorderBuffer

TEST(ReorderBuffer, OutOfOrderCompletionInOrderRetirement) {
  sim::Simulator sim;
  ReorderBuffer rob(sim, 4);
  std::vector<SlotIdx> slots(3);
  std::vector<std::uint64_t> retired;
  auto setup = [&]() -> sim::Task {
    for (std::uint16_t i = 0; i < 3; ++i) {
      RobEntry e;
      e.user_tag = 100 + i;
      co_await rob.alloc(std::move(e), &slots[i]);
    }
  };
  auto retirer = [&]() -> sim::Task {
    for (int i = 0; i < 3; ++i) {
      co_await rob.wait_head();
      retired.push_back(rob.retire().user_tag);
    }
  };
  sim.spawn(setup());
  sim.spawn(retirer());
  // Complete out of order: 2, 0, 1.
  sim.after(us(1), [&] { rob.complete(slots[2], nvme::Status::kSuccess); });
  sim.after(us(2), [&] { rob.complete(slots[0], nvme::Status::kSuccess); });
  sim.after(us(3), [&] { rob.complete(slots[1], nvme::Status::kSuccess); });
  sim.run();
  EXPECT_EQ(retired, (std::vector<std::uint64_t>{100, 101, 102}));
}

TEST(ReorderBuffer, AllocBlocksAtCapacity) {
  sim::Simulator sim;
  ReorderBuffer rob(sim, 2);
  int allocated = 0;
  auto t = [&]() -> sim::Task {
    SlotIdx s;
    for (int i = 0; i < 3; ++i) {
      co_await rob.alloc(RobEntry{}, &s);
      ++allocated;
    }
  };
  sim.spawn(t());
  sim.run_until(us(1));
  EXPECT_EQ(allocated, 2);
  rob.complete(SlotIdx{0}, nvme::Status::kSuccess);
  sim.run_until(us(2));
  EXPECT_EQ(allocated, 2);  // completion alone is not enough...
  auto drain = [&]() -> sim::Task {
    co_await rob.wait_head();
    rob.retire();  // ...retirement frees the slot
  };
  sim.spawn(drain());
  sim.run();
  EXPECT_EQ(allocated, 3);
}

TEST(ReorderBuffer, PeekSeesWindowInOrder) {
  sim::Simulator sim;
  ReorderBuffer rob(sim, 8);
  auto t = [&]() -> sim::Task {
    SlotIdx s;
    for (std::uint64_t i = 0; i < 5; ++i) {
      RobEntry e;
      e.user_tag = i;
      co_await rob.alloc(std::move(e), &s);
    }
  };
  sim.spawn(t());
  sim.run();
  for (std::uint16_t i = 0; i < 5; ++i) {
    ASSERT_NE(rob.peek(i), nullptr);
    EXPECT_EQ(rob.peek(i)->user_tag, i);
  }
  EXPECT_EQ(rob.peek(5), nullptr);
}

// ---------------------------------------------------------------------------
// PRP engines vs. the reference list layout

std::uint64_t entry_from(const Payload& p, std::uint64_t index) {
  std::uint64_t v = 0;
  std::memcpy(&v, p.view().data() + index * 8, 8);
  return v;
}

TEST(UramPrpEngine, SmallCommandsUseDirectEntries) {
  UramPrpEngine eng(pcie::Addr{8 * MiB}, Bytes{4 * MiB});
  auto one = eng.make(Bytes{64 * KiB}, Bytes{4096});
  EXPECT_EQ(one.prp1.value(), 8 * MiB + 64 * KiB);
  EXPECT_EQ(one.prp2.value(), 0u);
  auto two = eng.make(Bytes{64 * KiB}, Bytes{8192});
  EXPECT_EQ(two.prp2.value(), 8 * MiB + 64 * KiB + 4096);
}

TEST(UramPrpEngine, ListEntriesMatchReferenceLayout) {
  const pcie::Addr window{8 * MiB};
  UramPrpEngine eng(window, Bytes{4 * MiB});
  const Bytes off{256 * KiB};
  const Bytes len{1 * MiB};
  auto prps = eng.make(off, len);
  EXPECT_EQ(prps.prp1, window + off);
  // Bit 22 selects the PRP half.
  EXPECT_NE(prps.prp2.value() & (4 * MiB), 0u);

  // Reference: the naive in-memory list for the same contiguous buffer.
  auto ref = nvme::build_prp_lists(window + off, len, pcie::Addr{});
  ASSERT_EQ(ref.size(), 1u);
  const Bytes local = prps.prp2 - window;
  Payload served = eng.serve(local, Bytes{ref[0].size() * 8});
  for (std::size_t n = 0; n < ref[0].size(); ++n) {
    EXPECT_EQ(entry_from(served, n), ref[0][n]) << "entry " << n;
  }
}

class UramPrpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UramPrpProperty, ServedEntriesEqualReferenceForRandomCommands) {
  const pcie::Addr window{16 * MiB};  // naturally aligned for 4 MiB buffer
  UramPrpEngine eng(window, Bytes{4 * MiB});
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t pages = 3 + rng.below(254);  // needs a list
    const Bytes len{pages * kPageSize};
    const Bytes off{rng.below((4 * MiB - len.value()) / kPageSize + 1) *
                    kPageSize};
    auto prps = eng.make(off, len);
    auto ref = nvme::build_prp_lists(window + off, len, pcie::Addr{});
    ASSERT_EQ(ref.size(), 1u);
    Payload served =
        eng.serve(prps.prp2 - window, Bytes{ref[0].size() * 8});
    for (std::size_t n = 0; n < ref[0].size(); ++n) {
      ASSERT_EQ(entry_from(served, n), ref[0][n]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UramPrpProperty, ::testing::Values(11, 22, 33, 44));

TEST(RegfilePrpEngine, TranslatesThroughChunkTable) {
  // Two 4 MiB chunks at scattered global addresses.
  std::vector<pcie::Addr> chunks{pcie::Addr{0x1000'0000},
                                 pcie::Addr{0x5000'0000}};
  ChunkedTranslator xlat(chunks, Bytes{4 * MiB});
  RegfilePrpEngine eng(pcie::Addr{0x9000'0000}, xlat, 64);

  // A 1 MiB command whose pages straddle the chunk boundary.
  const Bytes off{4 * MiB - 512 * KiB};
  auto prps = eng.make(SlotIdx{7}, off, Bytes{1 * MiB});
  EXPECT_EQ(prps.prp1.value(), 0x1000'0000 + 4 * MiB - 512 * KiB);
  EXPECT_EQ(prps.prp2.value(), 0x9000'0000 + 7ull * kPageSize);

  Payload served = eng.serve(Bytes{7ull * kPageSize}, Bytes{255 * 8});
  // Entry n = page n+1 of the buffer, chunk-translated.
  for (std::uint64_t n = 0; n < 255; ++n) {
    const Bytes logical = off + Bytes{(n + 1) * kPageSize};
    EXPECT_EQ(entry_from(served, n), xlat.translate(logical).value()) << n;
  }
}

class RegfilePrpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegfilePrpProperty, MatchesReferenceOnLinearWindow) {
  LinearTranslator xlat(pcie::Addr{0x2000'0000});
  RegfilePrpEngine eng(pcie::Addr{0x7000'0000}, xlat, 64);
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const SlotIdx slot{static_cast<std::uint16_t>(rng.below(64))};
    const std::uint64_t pages = 3 + rng.below(254);
    const Bytes len{pages * kPageSize};
    const Bytes off{rng.below(16 * MiB / kPageSize) * kPageSize};
    auto prps = eng.make(slot, off, len);
    auto ref = nvme::build_prp_lists(pcie::Addr{0x2000'0000} + off, len,
                                     pcie::Addr{});
    ASSERT_EQ(ref.size(), 1u);
    Payload served = eng.serve(prps.prp2 - pcie::Addr{0x7000'0000},
                               Bytes{ref[0].size() * 8});
    for (std::size_t n = 0; n < ref[0].size(); ++n) {
      ASSERT_EQ(entry_from(served, n), ref[0][n]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegfilePrpProperty,
                         ::testing::Values(5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Reference PRP list builder itself (chaining)

TEST(BuildPrpLists, ChainsAcrossListPages) {
  // 600 pages: 1 direct + 599 list entries -> 511 + chain + 88.
  const Bytes len{600 * kPageSize};
  auto lists = nvme::build_prp_lists(pcie::Addr{0x1000'0000}, len,
                                     pcie::Addr{0x9000'0000});
  ASSERT_EQ(lists.size(), 2u);
  EXPECT_EQ(lists[0].size(), nvme::kPrpEntriesPerList);
  EXPECT_EQ(lists[0].back(), 0x9000'0000ull + kPageSize);  // chain pointer
  EXPECT_EQ(lists[1].size(), 599u - 511u);
  EXPECT_EQ(lists[0][0], 0x1000'0000ull + kPageSize);
  EXPECT_EQ(lists[1][0], 0x1000'0000ull + 512 * kPageSize);
}

TEST(BuildPrpLists, ExactlyFullListDoesNotChain) {
  const Bytes len{513 * kPageSize};  // 1 direct + 512 entries
  auto lists = nvme::build_prp_lists(pcie::Addr{0x1000'0000}, len,
                                     pcie::Addr{0x9000'0000});
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_EQ(lists[0].size(), nvme::kPrpEntriesPerList);
  EXPECT_EQ(lists[0].back(), 0x1000'0000ull + 512 * kPageSize);
}

}  // namespace
}  // namespace snacc::core
