// End-to-end tests of the SNAcc streamer through the full simulated system:
// PE streams -> streamer -> PCIe P2P -> NVMe SSD, for all three buffer
// variants (parameterized), plus the out-of-order retirement extension.
#include <gtest/gtest.h>

#include "host/snacc_device.hpp"
#include "host/system.hpp"
#include "snacc/pe_client.hpp"

namespace snacc {
namespace {

using core::PeClient;
using core::Variant;
using host::SnaccDevice;
using host::SnaccDeviceConfig;
using host::System;

class StreamerFixture : public ::testing::TestWithParam<Variant> {
 protected:
  void build(bool out_of_order = false) {
    SnaccDeviceConfig cfg;
    cfg.streamer.variant = GetParam();
    cfg.streamer.out_of_order = out_of_order;
    dev_ = std::make_unique<SnaccDevice>(sys_, cfg);
    bool done = false;
    auto boot = [&]() -> sim::Task {
      co_await dev_->init();
      done = true;
    };
    sys_.sim().spawn(boot());
    run_for(seconds(1));
    ASSERT_TRUE(done) << "SNAcc init did not finish";
    client_ = std::make_unique<PeClient>(dev_->streamer());
  }

  void run_for(TimePs d) { sys_.sim().run_until(sys_.sim().now() + d); }

  Payload random_payload(std::uint64_t size, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<std::byte> v(size);
    for (auto& b : v) b = static_cast<std::byte>(rng.next() & 0xFF);
    return Payload::bytes(std::move(v));
  }

  System sys_;
  std::unique_ptr<SnaccDevice> dev_;
  std::unique_ptr<PeClient> client_;
};

TEST_P(StreamerFixture, InitCreatesQueuesAutonomously) {
  build();
  EXPECT_TRUE(dev_->initialized());
  EXPECT_TRUE(sys_.ssd().ready());
}

TEST_P(StreamerFixture, SmallWriteReadRoundTrip) {
  build();
  Payload data = random_payload(4096, 1);
  bool done = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await client_->write(40960, data);
    co_await client_->read(40960, 4096, &got);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(1));
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.has_data());
  EXPECT_TRUE(got.content_equals(data));
}

TEST_P(StreamerFixture, MegabyteCommandRoundTripExercisesPrpList) {
  build();
  Payload data = random_payload(1 * MiB, 2);
  bool done = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await client_->write(8 * MiB, data);
    co_await client_->read(8 * MiB, 1 * MiB, &got);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(2));
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.has_data());
  EXPECT_TRUE(got.content_equals(data));
  // One write + one read NVMe command, both 1 MiB.
  EXPECT_EQ(dev_->streamer().commands_submitted(), 2u);
}

TEST_P(StreamerFixture, MultiMegabyteWriteSplitsAtBoundaries) {
  build();
  Payload data = random_payload(3 * MiB + 8 * KiB, 3);
  bool done = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await client_->write(0, data);
    co_await client_->read(0, data.size(), &got);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(3));
  ASSERT_TRUE(done);
  EXPECT_TRUE(got.content_equals(data));
  // Write: 4 sub-commands (1+1+1+8k); read: 4.
  EXPECT_EQ(dev_->streamer().commands_submitted(), 8u);
}

TEST_P(StreamerFixture, UnalignedReadReturnsExactBytes) {
  build();
  Payload data = random_payload(64 * KiB, 4);
  bool done = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await client_->write(1 * MiB, data);
    // Read 100 bytes starting 5000 bytes into the written region.
    co_await client_->read(1 * MiB + 5000, 100, &got);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(1));
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.has_data());
  EXPECT_TRUE(got.content_equals(data.slice(5000, 100)));
}

TEST_P(StreamerFixture, PipelinedReadsReturnInIssueOrder) {
  build();
  // Prime the device.
  bool primed = false;
  auto prime = [&]() -> sim::Task {
    co_await client_->write(0, random_payload(256 * KiB, 5));
    primed = true;
  };
  sys_.sim().spawn(prime());
  run_for(seconds(1));
  ASSERT_TRUE(primed);

  bool done = false;
  std::vector<Payload> results(8);
  auto io = [&]() -> sim::Task {
    for (std::uint64_t i = 0; i < 8; ++i) {
      co_await client_->start_read(i * 32 * KiB % (224 * KiB), 16 * KiB);
    }
    for (std::uint64_t i = 0; i < 8; ++i) {
      co_await client_->collect_read(&results[i]);
    }
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(1));
  ASSERT_TRUE(done);
  for (const auto& r : results) EXPECT_EQ(r.size(), 16 * KiB);
}

TEST_P(StreamerFixture, SequentialWriteBandwidthMatchesVariant) {
  build();
  sys_.ssd().nand().force_mode(/*fast=*/true);
  bool done = false;
  TimePs t0 = 0;
  TimePs t1 = 0;
  const std::uint64_t total = 256 * MiB;
  auto io = [&]() -> sim::Task {
    t0 = sys_.sim().now();
    co_await client_->write(0, Payload::phantom(total));
    t1 = sys_.sim().now();
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(5));
  ASSERT_TRUE(done);
  const double gbs = gb_per_s(total, t1 - t0);
  // Paper Fig. 4a fast-mode targets: host 6.24, URAM 5.6, on-board 4.8.
  switch (GetParam()) {
    case Variant::kHostDram:
      EXPECT_NEAR(gbs, 6.24, 0.45);
      break;
    case Variant::kUram:
      EXPECT_NEAR(gbs, 5.60, 0.45);
      break;
    case Variant::kOnboardDram:
      EXPECT_NEAR(gbs, 4.80, 0.45);
      break;
  }
}

TEST_P(StreamerFixture, SequentialReadSaturatesLink) {
  build();
  bool done = false;
  TimePs t0 = 0;
  TimePs t1 = 0;
  const std::uint64_t total = 256 * MiB;
  auto io = [&]() -> sim::Task {
    co_await client_->write(0, Payload::phantom(total));
    t0 = sys_.sim().now();
    co_await client_->read(0, total, nullptr);
    t1 = sys_.sim().now();
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(10));
  ASSERT_TRUE(done);
  const double gbs = gb_per_s(total, t1 - t0);
  // Paper Fig. 4a: ~6.9 GB/s for every variant.
  EXPECT_GT(gbs, 6.2);
  EXPECT_LT(gbs, 7.2);
}

TEST_P(StreamerFixture, WritesToDeviceMatchMediaContents) {
  build();
  Payload data = random_payload(128 * KiB, 6);
  bool done = false;
  auto io = [&]() -> sim::Task {
    co_await client_->write(2 * MiB, data);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(1));
  ASSERT_TRUE(done);
  Payload media = sys_.ssd().media().read(2 * MiB, 128 * KiB);
  ASSERT_TRUE(media.has_data());
  EXPECT_TRUE(media.content_equals(data));
}

TEST_P(StreamerFixture, NoCpuInvolvementAfterInit) {
  build();
  const std::uint64_t root_writes_before =
      sys_.fabric().path(sys_.root_port(), sys_.ssd().port()).writes;
  bool done = false;
  auto io = [&]() -> sim::Task {
    co_await client_->write(0, Payload::phantom(32 * MiB));
    co_await client_->read(0, 32 * MiB, nullptr);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(5));
  ASSERT_TRUE(done);
  // Sec. 6.3: after setup the host CPU issues no further transactions.
  EXPECT_EQ(sys_.fabric().path(sys_.root_port(), sys_.ssd().port()).writes,
            root_writes_before);
}

TEST_P(StreamerFixture, OutOfOrderExtensionPreservesDataAndOrder) {
  build(/*out_of_order=*/true);
  Payload data = random_payload(512 * KiB, 7);
  bool done = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await client_->write(0, data);
    co_await client_->read(0, 512 * KiB, &got);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(2));
  ASSERT_TRUE(done);
  EXPECT_TRUE(got.content_equals(data));
}

INSTANTIATE_TEST_SUITE_P(AllVariants, StreamerFixture,
                         ::testing::Values(Variant::kUram,
                                           Variant::kOnboardDram,
                                           Variant::kHostDram),
                         [](const auto& info) {
                           switch (info.param) {
                             case Variant::kUram:
                               return "Uram";
                             case Variant::kOnboardDram:
                               return "OnboardDram";
                             case Variant::kHostDram:
                               return "HostDram";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace snacc
