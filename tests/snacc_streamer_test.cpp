// End-to-end tests of the SNAcc streamer through the full simulated system:
// PE streams -> streamer -> PCIe P2P -> NVMe SSD, for all three buffer
// variants (parameterized), plus the out-of-order retirement extension.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "host/snacc_device.hpp"
#include "host/system.hpp"
#include "snacc/pe_client.hpp"

namespace snacc {
namespace {

using core::PeClient;
using core::Variant;
using host::SnaccDevice;
using host::SnaccDeviceConfig;
using host::System;

class StreamerFixture : public ::testing::TestWithParam<Variant> {
 protected:
  void build(bool out_of_order = false) {
    SnaccDeviceConfig cfg;
    cfg.streamer.variant = GetParam();
    cfg.streamer.out_of_order = out_of_order;
    build_with(cfg);
  }

  /// Recovery-enabled variant with fast retry/watchdog knobs for tests.
  void build_recovery(bool out_of_order = false, std::uint8_t max_retries = 3) {
    SnaccDeviceConfig cfg;
    cfg.streamer.variant = GetParam();
    cfg.streamer.out_of_order = out_of_order;
    cfg.streamer.recovery = true;
    cfg.streamer.max_retries = max_retries;
    cfg.streamer.retry_backoff = us(2);
    build_with(cfg);
  }

  void build_with(SnaccDeviceConfig cfg) {
    dev_ = std::make_unique<SnaccDevice>(sys_, cfg);
    bool done = false;
    auto boot = [&]() -> sim::Task {
      co_await dev_->init();
      done = true;
    };
    sys_.sim().spawn(boot());
    run_for(seconds(1));
    ASSERT_TRUE(done) << "SNAcc init did not finish";
    client_ = std::make_unique<PeClient>(dev_->streamer());
  }

  void run_for(TimePs d) { sys_.sim().run_until(sys_.sim().now() + d); }

  Payload random_payload(std::uint64_t size, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<std::byte> v(size);
    for (auto& b : v) b = static_cast<std::byte>(rng.next() & 0xFF);
    return Payload::bytes(std::move(v));
  }

  System sys_;
  std::unique_ptr<SnaccDevice> dev_;
  std::unique_ptr<PeClient> client_;
};

TEST_P(StreamerFixture, InitCreatesQueuesAutonomously) {
  build();
  EXPECT_TRUE(dev_->initialized());
  EXPECT_TRUE(sys_.ssd().ready());
}

TEST_P(StreamerFixture, SmallWriteReadRoundTrip) {
  build();
  Payload data = random_payload(4096, 1);
  bool done = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await client_->write(Bytes{40960}, data);
    co_await client_->read(Bytes{40960}, Bytes{4096}, &got);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(1));
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.has_data());
  EXPECT_TRUE(got.content_equals(data));
}

TEST_P(StreamerFixture, MegabyteCommandRoundTripExercisesPrpList) {
  build();
  Payload data = random_payload(1 * MiB, 2);
  bool done = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await client_->write(Bytes{8 * MiB}, data);
    co_await client_->read(Bytes{8 * MiB}, Bytes{1 * MiB}, &got);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(2));
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.has_data());
  EXPECT_TRUE(got.content_equals(data));
  // One write + one read NVMe command, both 1 MiB.
  EXPECT_EQ(dev_->streamer().commands_submitted(), 2u);
}

TEST_P(StreamerFixture, MultiMegabyteWriteSplitsAtBoundaries) {
  build();
  Payload data = random_payload(3 * MiB + 8 * KiB, 3);
  bool done = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await client_->write(Bytes{0}, data);
    co_await client_->read(Bytes{0}, Bytes{data.size()}, &got);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(3));
  ASSERT_TRUE(done);
  EXPECT_TRUE(got.content_equals(data));
  // Write: 4 sub-commands (1+1+1+8k); read: 4.
  EXPECT_EQ(dev_->streamer().commands_submitted(), 8u);
}

TEST_P(StreamerFixture, UnalignedReadReturnsExactBytes) {
  build();
  Payload data = random_payload(64 * KiB, 4);
  bool done = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await client_->write(Bytes{1 * MiB}, data);
    // Read 100 bytes starting 5000 bytes into the written region.
    co_await client_->read(Bytes{1 * MiB + 5000}, Bytes{100}, &got);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(1));
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.has_data());
  EXPECT_TRUE(got.content_equals(data.slice(5000, 100)));
}

TEST_P(StreamerFixture, PipelinedReadsReturnInIssueOrder) {
  build();
  // Prime the device.
  bool primed = false;
  auto prime = [&]() -> sim::Task {
    co_await client_->write(Bytes{0}, random_payload(256 * KiB, 5));
    primed = true;
  };
  sys_.sim().spawn(prime());
  run_for(seconds(1));
  ASSERT_TRUE(primed);

  bool done = false;
  std::vector<Payload> results(8);
  auto io = [&]() -> sim::Task {
    for (std::uint64_t i = 0; i < 8; ++i) {
      co_await client_->start_read(Bytes{i * 32 * KiB % (224 * KiB)}, Bytes{16 * KiB});
    }
    for (std::uint64_t i = 0; i < 8; ++i) {
      co_await client_->collect_read(&results[i]);
    }
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(1));
  ASSERT_TRUE(done);
  for (const auto& r : results) EXPECT_EQ(r.size(), 16 * KiB);
}

TEST_P(StreamerFixture, SequentialWriteBandwidthMatchesVariant) {
  build();
  sys_.ssd().nand().force_mode(/*fast=*/true);
  bool done = false;
  TimePs t0;
  TimePs t1;
  const std::uint64_t total = 256 * MiB;
  auto io = [&]() -> sim::Task {
    t0 = sys_.sim().now();
    co_await client_->write(Bytes{0}, Payload::phantom(total));
    t1 = sys_.sim().now();
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(5));
  ASSERT_TRUE(done);
  const double gbs = gb_per_s(total, t1 - t0);
  // Paper Fig. 4a fast-mode targets: host 6.24, URAM 5.6, on-board 4.8.
  switch (GetParam()) {
    case Variant::kHostDram:
      EXPECT_NEAR(gbs, 6.24, 0.45);
      break;
    case Variant::kUram:
      EXPECT_NEAR(gbs, 5.60, 0.45);
      break;
    case Variant::kOnboardDram:
      EXPECT_NEAR(gbs, 4.80, 0.45);
      break;
  }
}

TEST_P(StreamerFixture, SequentialReadSaturatesLink) {
  build();
  bool done = false;
  TimePs t0;
  TimePs t1;
  const std::uint64_t total = 256 * MiB;
  auto io = [&]() -> sim::Task {
    co_await client_->write(Bytes{0}, Payload::phantom(total));
    t0 = sys_.sim().now();
    co_await client_->read(Bytes{0}, Bytes{total}, nullptr);
    t1 = sys_.sim().now();
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(10));
  ASSERT_TRUE(done);
  const double gbs = gb_per_s(total, t1 - t0);
  // Paper Fig. 4a: ~6.9 GB/s for every variant.
  EXPECT_GT(gbs, 6.2);
  EXPECT_LT(gbs, 7.2);
}

TEST_P(StreamerFixture, WritesToDeviceMatchMediaContents) {
  build();
  Payload data = random_payload(128 * KiB, 6);
  bool done = false;
  auto io = [&]() -> sim::Task {
    co_await client_->write(Bytes{2 * MiB}, data);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(1));
  ASSERT_TRUE(done);
  Payload media = sys_.ssd().media().read(2 * MiB, 128 * KiB);
  ASSERT_TRUE(media.has_data());
  EXPECT_TRUE(media.content_equals(data));
}

TEST_P(StreamerFixture, NoCpuInvolvementAfterInit) {
  build();
  const std::uint64_t root_writes_before =
      sys_.fabric().path(sys_.root_port(), sys_.ssd().port()).writes;
  bool done = false;
  auto io = [&]() -> sim::Task {
    co_await client_->write(Bytes{0}, Payload::phantom(32 * MiB));
    co_await client_->read(Bytes{0}, Bytes{32 * MiB}, nullptr);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(5));
  ASSERT_TRUE(done);
  // Sec. 6.3: after setup the host CPU issues no further transactions.
  EXPECT_EQ(sys_.fabric().path(sys_.root_port(), sys_.ssd().port()).writes,
            root_writes_before);
}

TEST_P(StreamerFixture, OutOfOrderExtensionPreservesDataAndOrder) {
  build(/*out_of_order=*/true);
  Payload data = random_payload(512 * KiB, 7);
  bool done = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await client_->write(Bytes{0}, data);
    co_await client_->read(Bytes{0}, Bytes{512 * KiB}, &got);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(2));
  ASSERT_TRUE(done);
  EXPECT_TRUE(got.content_equals(data));
}

// ---------------------------------------------------------------------------
// Fault injection + recovery (docs/FAULTS.md)

TEST_P(StreamerFixture, MidStreamNandFaultRecoversInOrder) {
  build_recovery();
  Payload data = random_payload(256 * KiB, 21);
  bool done = false;
  bool err = true;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await client_->write(Bytes{0}, data);
    // Fail the 6th page read of the read phase: the command's error CQE
    // triggers one streamer retry, which re-reads the range cleanly.
    sys_.ssd().nand().set_read_fault_plan(fault::FaultPlan::at({5}));
    co_await client_->read(Bytes{0}, Bytes{256 * KiB}, &got, &err);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(2));
  ASSERT_TRUE(done);
  EXPECT_FALSE(err);
  EXPECT_TRUE(got.content_equals(data));
  EXPECT_EQ(dev_->streamer().retries(), 1u);
  EXPECT_EQ(dev_->streamer().recovered(), 1u);
  EXPECT_EQ(dev_->streamer().quarantined(), 0u);
  EXPECT_EQ(dev_->streamer().errors(), 1u);
  EXPECT_EQ(sys_.ssd().read_errors(), 1u);
}

TEST_P(StreamerFixture, ExhaustedRetriesDeliverErrorNotHang) {
  build_recovery(/*out_of_order=*/false, /*max_retries=*/2);
  bool done = false;
  bool err = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await client_->write(Bytes{0}, random_payload(16 * KiB, 22));
    // Every page read fails: retries exhaust and the entry is quarantined.
    sys_.ssd().nand().set_read_fault_plan(fault::FaultPlan::rate(1.0));
    co_await client_->read(Bytes{0}, Bytes{16 * KiB}, &got, &err);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(2));
  ASSERT_TRUE(done) << "exhausted retries must not hang the stream";
  EXPECT_TRUE(err);
  // Stream framing stays intact: placeholder beats with the error TUSER tag.
  EXPECT_EQ(got.size(), 16 * KiB);
  EXPECT_EQ(dev_->streamer().retries(), 2u);
  EXPECT_EQ(dev_->streamer().quarantined(), 1u);
  EXPECT_EQ(dev_->streamer().recovered(), 0u);
  EXPECT_EQ(dev_->streamer().errors(), 3u);  // initial attempt + 2 retries
}

TEST_P(StreamerFixture, TransientProgramFailureRecoversWrite) {
  build_recovery();
  Payload data = random_payload(8 * KiB, 23);
  bool done = false;
  bool err = true;
  auto io = [&]() -> sim::Task {
    // First NAND ingest fails; the retry rewrites the same buffer slot.
    sys_.ssd().nand().set_program_fault_plan(fault::FaultPlan::at({0}));
    co_await client_->write(Bytes{128 * KiB}, data, Bytes{16 * KiB}, &err);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(2));
  ASSERT_TRUE(done);
  EXPECT_FALSE(err);
  EXPECT_EQ(dev_->streamer().retries(), 1u);
  EXPECT_EQ(dev_->streamer().recovered(), 1u);
  Payload media = sys_.ssd().media().read(128 * KiB, 8 * KiB);
  ASSERT_TRUE(media.has_data());
  EXPECT_TRUE(media.content_equals(data));
}

TEST_P(StreamerFixture, PersistentProgramFailurePoisonsResponseToken) {
  build_recovery(/*out_of_order=*/false, /*max_retries=*/1);
  bool done = false;
  bool err = false;
  auto io = [&]() -> sim::Task {
    sys_.ssd().nand().set_program_fault_plan(fault::FaultPlan::rate(1.0));
    co_await client_->write(Bytes{0}, Payload::filled(8 * KiB, 0x3C), Bytes{16 * KiB},
                           &err);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(2));
  ASSERT_TRUE(done) << "a quarantined write must still produce its token";
  EXPECT_TRUE(err);
  EXPECT_EQ(dev_->streamer().quarantined(), 1u);
  EXPECT_EQ(sys_.ssd().write_errors(), 2u);  // initial + 1 retry
}

TEST_P(StreamerFixture, WatchdogRecoversDroppedCompletion) {
  SnaccDeviceConfig cfg;
  cfg.streamer.variant = GetParam();
  cfg.streamer.recovery = true;
  cfg.streamer.retry_backoff = us(2);
  cfg.streamer.cmd_timeout = us(400);
  cfg.streamer.watchdog_period = us(50);
  build_with(cfg);
  Payload data = random_payload(4 * KiB, 24);
  bool done = false;
  bool err = true;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await client_->write(Bytes{64 * KiB}, data);
    // Drop exactly the next CQE posted into the FPGA's CQ window: the IOMMU
    // permission flip is windowed to the reorder buffer's CQE landing zone,
    // so the completion is lost in flight and only the watchdog can save it.
    sys_.fabric().iommu().set_fault_plan(fault::FaultPlan::at({0}),
                                         dev_->bar0() + SnaccDevice::kCqWindow,
                                         dev_->streamer().cq_window_bytes());
    co_await client_->read(Bytes{64 * KiB}, Bytes{4 * KiB}, &got, &err);
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(2));
  ASSERT_TRUE(done) << "a lost completion must not hang the stream";
  EXPECT_FALSE(err);
  EXPECT_TRUE(got.content_equals(data));
  EXPECT_EQ(dev_->streamer().watchdog_timeouts(), 1u);
  EXPECT_EQ(dev_->streamer().retries(), 1u);
  EXPECT_EQ(dev_->streamer().recovered(), 1u);
  EXPECT_EQ(sys_.fabric().iommu().injected_faults(), 1u);
  // Satellite: the silent posted-write drop is now observable.
  ASSERT_TRUE(sys_.fabric().last_fault().has_value());
  EXPECT_EQ(sys_.fabric().last_fault()->kind, pcie::FaultKind::kIommuWriteDrop);
  EXPECT_EQ(sys_.fabric().last_fault()->initiator, sys_.ssd().port());
}

TEST_P(StreamerFixture, OutOfOrderRecoveryKeepsPipelinedReadsInOrder) {
  build_recovery(/*out_of_order=*/true);
  Payload data = random_payload(256 * KiB, 25);
  bool done = false;
  std::vector<Payload> results(8);
  std::vector<bool> errs(8, true);
  auto io = [&]() -> sim::Task {
    co_await client_->write(Bytes{0}, data);
    sys_.ssd().nand().set_read_fault_plan(fault::FaultPlan::at({9}));
    for (std::uint64_t i = 0; i < 8; ++i) {
      co_await client_->start_read(Bytes{i * 32 * KiB}, Bytes{32 * KiB});
    }
    for (std::uint64_t i = 0; i < 8; ++i) {
      bool e = true;
      co_await client_->collect_read(&results[i], &e);
      errs[i] = e;
    }
    done = true;
  };
  sys_.sim().spawn(io());
  run_for(seconds(2));
  ASSERT_TRUE(done);
  EXPECT_EQ(dev_->streamer().retries(), 1u);
  EXPECT_EQ(dev_->streamer().quarantined(), 0u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(errs[i]) << "read " << i;
    EXPECT_TRUE(results[i].content_equals(data.slice(i * 32 * KiB, 32 * KiB)))
        << "read " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, StreamerFixture,
                         ::testing::Values(Variant::kUram,
                                           Variant::kOnboardDram,
                                           Variant::kHostDram),
                         [](const auto& info) {
                           switch (info.param) {
                             case Variant::kUram:
                               return "Uram";
                             case Variant::kOnboardDram:
                               return "OnboardDram";
                             case Variant::kHostDram:
                               return "HostDram";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace snacc
