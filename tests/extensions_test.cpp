// Tests for the Sec. 7 extensions: multi-SSD striping, the HBM buffer
// variant, out-of-order retirement and the PCIe Gen5 profile.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "host/snacc_device.hpp"
#include "host/system.hpp"
#include "snacc/pe_client.hpp"
#include "snacc/striped_client.hpp"

namespace snacc {
namespace {

using core::StripedClient;
using core::Variant;
using host::SnaccDevice;
using host::SnaccDeviceConfig;
using host::System;

/// Builds a system with `n` SSDs, one streamer per SSD sharing the FPGA's
/// PCIe port, and returns the initialized devices.
struct MultiBed {
  explicit MultiBed(std::uint32_t n, Variant variant = Variant::kHostDram) {
    host::SystemConfig cfg;
    cfg.ssd_count = n;
    cfg.host_memory_bytes = 4 * GiB;
    sys = std::make_unique<System>(cfg);
    pcie::PortId shared = pcie::kInvalidPort;
    for (std::uint32_t i = 0; i < n; ++i) {
      sys->ssd(i).nand().force_mode(true);
      SnaccDeviceConfig dcfg;
      dcfg.streamer.variant = variant;
      dcfg.ssd_index = i;
      dcfg.instance = i;
      dcfg.shared_fpga_port = shared;
      devices.push_back(std::make_unique<SnaccDevice>(*sys, dcfg));
      shared = devices.back()->fpga_port();
    }
    int booted = 0;
    for (auto& dev : devices) {
      auto boot = [](SnaccDevice* d, int* count) -> sim::Task {
        co_await d->init();
        ++*count;
      };
      sys->sim().spawn(boot(dev.get(), &booted));
    }
    sys->sim().run_until(seconds(1));
    EXPECT_EQ(booted, static_cast<int>(n));
    std::vector<core::NvmeStreamer*> streamers;
    for (auto& dev : devices) streamers.push_back(&dev->streamer());
    striped = std::make_unique<StripedClient>(streamers);
  }

  void run_for(TimePs d) { sys->sim().run_until(sys->sim().now() + d); }

  std::unique_ptr<System> sys;
  std::vector<std::unique_ptr<SnaccDevice>> devices;
  std::unique_ptr<StripedClient> striped;
};

TEST(MultiSsd, StripedWriteReadRoundTrip) {
  MultiBed bed(2);
  Xoshiro256 rng(9);
  std::vector<std::byte> bytes(3 * MiB + 8 * KiB);
  for (auto& b : bytes) b = static_cast<std::byte>(rng.next() & 0xFF);
  Payload data = Payload::bytes(std::move(bytes));
  bool done = false;
  Payload got;
  auto io = [&]() -> sim::Task {
    co_await bed.striped->write(Bytes{}, data);
    co_await bed.striped->read(Bytes{}, Bytes{data.size()}, &got);
    done = true;
  };
  bed.sys->sim().spawn(io());
  bed.run_for(seconds(2));
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.has_data());
  EXPECT_TRUE(got.content_equals(data));
  // Both SSDs participated: stripes 0,2 on SSD0; 1,3 on SSD1.
  EXPECT_GT(bed.sys->ssd(0).media().resident_pages(), 0u);
  EXPECT_GT(bed.sys->ssd(1).media().resident_pages(), 0u);
}

TEST(MultiSsd, LocateStripesRoundRobin) {
  MultiBed bed(4);
  const Bytes stripe = bed.striped->stripe_bytes();
  for (std::uint64_t i = 0; i < 16; ++i) {
    auto loc = bed.striped->locate(stripe * i);
    EXPECT_EQ(loc.device, i % 4);
    EXPECT_EQ(loc.addr.value(), (stripe * (i / 4)).value());
  }
  auto mid = bed.striped->locate(stripe * 5 + Bytes{777});
  EXPECT_EQ(mid.device, 1u);
  EXPECT_EQ(mid.addr.value(), (stripe + Bytes{777}).value());
}

TEST(MultiSsd, WriteBandwidthScalesAcrossSsds) {
  const std::uint64_t total = 256 * MiB;
  double gbs1 = 0;
  double gbs2 = 0;
  for (std::uint32_t n : {1u, 2u}) {
    MultiBed bed(n);
    bool done = false;
    TimePs t0;
    TimePs t1;
    auto io = [&]() -> sim::Task {
      t0 = bed.sys->sim().now();
      co_await bed.striped->write(Bytes{}, Payload::phantom(total));
      t1 = bed.sys->sim().now();
      done = true;
    };
    bed.sys->sim().spawn(io());
    bed.run_for(seconds(10));
    ASSERT_TRUE(done);
    (n == 1 ? gbs1 : gbs2) = gb_per_s(total, t1 - t0);
  }
  // Sec. 7: multiple SSDs "better saturate PCIe bandwidth".
  EXPECT_GT(gbs2, gbs1 * 1.6);
}

TEST(HbmVariant, RoundTripAndSequentialWrite) {
  host::SystemConfig scfg;
  System sys(scfg);
  sys.ssd().nand().force_mode(true);
  SnaccDeviceConfig dcfg;
  dcfg.streamer.variant = Variant::kHbm;
  SnaccDevice dev(sys, dcfg);
  bool booted = false;
  auto boot = [&]() -> sim::Task {
    co_await dev.init();
    booted = true;
  };
  sys.sim().spawn(boot());
  sys.sim().run_until(seconds(1));
  ASSERT_TRUE(booted);

  core::PeClient pe(dev.streamer());
  Payload data = Payload::filled(1 * MiB, 0x5A);
  bool done = false;
  Payload got;
  TimePs t0;
  TimePs t1;
  auto io = [&]() -> sim::Task {
    co_await pe.write(Bytes{}, data);
    co_await pe.read(Bytes{}, Bytes{data.size()}, &got);
    t0 = sys.sim().now();
    co_await pe.write(Bytes{16 * MiB}, Payload::phantom(256 * MiB));
    t1 = sys.sim().now();
    done = true;
  };
  sys.sim().spawn(io());
  sys.sim().run_until(sys.sim().now() + seconds(10));
  ASSERT_TRUE(done);
  EXPECT_TRUE(got.content_equals(data));
  // Sec. 7 prediction: HBM removes the DRAM-turnaround penalty, so the
  // write bandwidth recovers to the URAM variant's P2P-limited ~5.6 GB/s
  // while keeping the large 64 MB buffers.
  const double gbs = gb_per_s(256 * MiB, t1 - t0);
  EXPECT_GT(gbs, 5.2);
  EXPECT_LT(gbs, 6.0);
}

TEST(OutOfOrder, RandomReadThroughputImproves) {
  auto run_rand = [](bool ooo) {
    host::SystemConfig scfg;
    System sys(scfg);
    sys.ssd().nand().force_mode(true);
    SnaccDeviceConfig dcfg;
    dcfg.streamer.variant = Variant::kHostDram;
    dcfg.streamer.out_of_order = ooo;
    SnaccDevice dev(sys, dcfg);
    bool booted = false;
    auto boot = [&]() -> sim::Task {
      co_await dev.init();
      booted = true;
    };
    sys.sim().spawn(boot());
    sys.sim().run_until(seconds(1));
    EXPECT_TRUE(booted);
    core::PeClient pe(dev.streamer());

    const std::uint64_t kCommands = 8192;
    bool done = false;
    TimePs t0 = sys.sim().now();
    TimePs t1;
    struct Issuer {
      static sim::Task run(core::PeClient* pe, std::uint64_t n) {
        Xoshiro256 rng(77);
        for (std::uint64_t i = 0; i < n; ++i) {
          co_await pe->start_read(Bytes{rng.below(1u << 20) * 4096ull}, Bytes{4096});
        }
      }
    };
    auto collect = [&]() -> sim::Task {
      for (std::uint64_t i = 0; i < kCommands; ++i) {
        co_await pe.collect_read(nullptr);
      }
      t1 = sys.sim().now();
      done = true;
    };
    sys.sim().spawn(Issuer::run(&pe, kCommands));
    sys.sim().spawn(collect());
    sys.sim().run_until(sys.sim().now() + seconds(10));
    EXPECT_TRUE(done);
    return gb_per_s(kCommands * 4096, t1 - t0);
  };
  const double in_order = run_rand(false);
  const double out_of_order = run_rand(true);
  // Paper Sec. 7: out-of-order retirement lifts the ~1.6 GB/s random-read
  // limit toward the SPDK level.
  EXPECT_GT(out_of_order, in_order * 1.8);
}

TEST(Gen5Profile, SequentialReadScalesWithTheLink) {
  host::SystemConfig scfg;
  scfg.profile = CalibrationProfile::gen5();
  System sys(scfg);
  sys.ssd().nand().force_mode(true);
  SnaccDeviceConfig dcfg;
  dcfg.streamer.variant = Variant::kHostDram;
  SnaccDevice dev(sys, dcfg);
  bool booted = false;
  auto boot = [&]() -> sim::Task {
    co_await dev.init();
    booted = true;
  };
  sys.sim().spawn(boot());
  sys.sim().run_until(seconds(1));
  ASSERT_TRUE(booted);
  core::PeClient pe(dev.streamer());
  bool done = false;
  TimePs t0;
  TimePs t1;
  auto io = [&]() -> sim::Task {
    co_await pe.write(Bytes{}, Payload::phantom(256 * MiB));
    t0 = sys.sim().now();
    co_await pe.read(Bytes{}, Bytes{256 * MiB}, nullptr);
    t1 = sys.sim().now();
    done = true;
  };
  sys.sim().spawn(io());
  sys.sim().run_until(sys.sim().now() + seconds(10));
  ASSERT_TRUE(done);
  // Sec. 7: "current NVMe SSDs support PCIe Gen5 x4, doubling the
  // bandwidth... our implementation can accommodate these SSDs without
  // modifications".
  EXPECT_GT(gb_per_s(256 * MiB, t1 - t0), 11.0);
}

}  // namespace
}  // namespace snacc
