// Durability-tier tests (ctest label: faults; docs/DURABILITY.md):
//  - group-committed puts survive a device power cycle,
//  - torn records are truncated (never resurrected) at recovery,
//  - a device crash mid-put is absorbed by the watchdog/retry machinery,
//  - crash-mid-compact leaves the old log authoritative; a completed
//    compaction survives power loss (old-or-new, never a mix),
//  - a 3-way replicated store keeps serving every acknowledged key after
//    one SSD crashes and is quarantined, with read failover and repair.
//
// SNACC_FAULT_SEED (CI seed sweep) varies the crash plans' seeds: the
// torn-destage point moves, the invariants must not.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "apps/kv_store.hpp"
#include "fault/fault.hpp"
#include "host/snacc_device.hpp"
#include "host/system.hpp"
#include "snacc/pe_client.hpp"
#include "snacc/replicated_client.hpp"

namespace snacc::apps {
namespace {

std::uint64_t fault_seed() {
  const char* env = std::getenv("SNACC_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0x5EED;
}

fault::FaultPlan seeded(fault::FaultPlan plan) {
  plan.seed = fault_seed();
  return plan;
}

struct DurabilityFixture : ::testing::Test {
  DurabilityFixture() {
    host::SnaccDeviceConfig cfg;
    cfg.streamer.variant = core::Variant::kUram;
    cfg.streamer.recovery = true;  // crash CQEs are lost; watchdog needed
    dev = std::make_unique<host::SnaccDevice>(sys, cfg);
    bool booted = false;
    auto boot = [](host::SnaccDevice* d, bool* f) -> sim::Task {
      co_await d->init();
      *f = true;
    };
    sys.sim().spawn(boot(dev.get(), &booted));
    sys.sim().run_until(seconds(1));
    EXPECT_TRUE(booted);
    store = std::make_unique<KvStore>(dev->streamer(), Bytes{},
                                      Bytes{256 * MiB});
  }

  void run(sim::Task t, std::uint64_t budget_s = 10) {
    sys.sim().spawn(std::move(t));
    sys.sim().run_until(sys.sim().now() + seconds(budget_s));
  }

  host::System sys;
  std::unique_ptr<host::SnaccDevice> dev;
  std::unique_ptr<KvStore> store;
};

TEST_F(DurabilityFixture, GroupCommittedPutsSurvivePowerCycle) {
  bool done = false;
  auto t = [&]() -> sim::Task {
    PutStatus st = PutStatus::kIoError;
    for (int i = 0; i < 10; ++i) {
      co_await store->put("durable-" + std::to_string(i),
                          Payload::filled(3000 + i, static_cast<std::uint8_t>(i)),
                          &st);
      EXPECT_EQ(st, PutStatus::kOk);
    }
    bool committed = false;
    co_await store->commit(&committed);
    EXPECT_TRUE(committed);
    // Three more puts are acknowledged but never flushed: volatile.
    for (int i = 10; i < 13; ++i) {
      co_await store->put("volatile-" + std::to_string(i),
                          Payload::filled(2000, 0xEE), &st);
      EXPECT_EQ(st, PutStatus::kOk);
    }
    done = true;
  };
  run(t());
  ASSERT_TRUE(done);
  EXPECT_GE(dev->ssd().dirty_cache_blocks(), 1u);

  dev->ssd().power_cycle();
  EXPECT_EQ(dev->ssd().power_cycles(), 1u);
  EXPECT_EQ(dev->ssd().dirty_cache_blocks(), 0u);

  // A fresh store recovers every group-committed put -- and only those.
  KvStore recovered(dev->streamer(), Bytes{}, Bytes{256 * MiB});
  bool done2 = false;
  auto t2 = [&]() -> sim::Task {
    std::uint64_t records = 0;
    co_await recovered.recover(&records);
    EXPECT_EQ(records, 10u);
    for (int i = 0; i < 10; ++i) {
      Payload got;
      bool found = false;
      co_await recovered.get("durable-" + std::to_string(i), &got, &found);
      EXPECT_TRUE(found) << "committed key " << i << " lost";
      EXPECT_TRUE(got.content_equals(
          Payload::filled(3000 + i, static_cast<std::uint8_t>(i))));
    }
    bool found = true;
    co_await recovered.get("volatile-10", nullptr, &found);
    EXPECT_FALSE(found);
    done2 = true;
  };
  run(t2());
  ASSERT_TRUE(done2);
}

TEST_F(DurabilityFixture, TornRecordIsTruncatedAtRecovery) {
  bool done = false;
  auto t = [&]() -> sim::Task {
    PutStatus st = PutStatus::kOk;
    for (int i = 0; i < 5; ++i) {
      co_await store->put("key-" + std::to_string(i),
                          Payload::filled(4 * KiB, static_cast<std::uint8_t>(i)),
                          &st);
      EXPECT_EQ(st, PutStatus::kOk);
    }
    bool committed = false;
    co_await store->commit(&committed);
    EXPECT_TRUE(committed);
    done = true;
  };
  run(t());
  ASSERT_TRUE(done);

  // Tear the last record's value in place (as a mid-record power loss
  // would): its CRC no longer matches the header.
  const Bytes log_base = Bytes{KvStore::kSuperBytes};
  const Bytes span = KvStore::record_span(Bytes{4 * KiB});
  const Bytes torn_value = log_base + span * 4 + Bytes{KvStore::kHeaderBytes};
  dev->ssd().media().write(torn_value.value(), Payload::filled(4 * KiB, 0x5A));

  KvStore recovered(dev->streamer(), Bytes{}, Bytes{256 * MiB});
  bool done2 = false;
  auto t2 = [&]() -> sim::Task {
    std::uint64_t records = 0;
    co_await recovered.recover(&records);
    EXPECT_EQ(records, 4u);  // truncated at the torn record
    bool found = true;
    co_await recovered.get("key-4", nullptr, &found);
    EXPECT_FALSE(found);
    Payload got;
    co_await recovered.get("key-3", &got, &found);
    EXPECT_TRUE(found);
    EXPECT_TRUE(got.content_equals(Payload::filled(4 * KiB, 3)));
    // Truncation leaves the store writable: the head moved back over the
    // torn record and new puts append (and read back) cleanly.
    PutStatus st = PutStatus::kIoError;
    co_await recovered.put("after-truncate", Payload::filled(1 * KiB, 0xAF),
                           &st);
    EXPECT_EQ(st, PutStatus::kOk);
    co_await recovered.get("after-truncate", &got, &found);
    EXPECT_TRUE(found);
    EXPECT_TRUE(got.content_equals(Payload::filled(1 * KiB, 0xAF)));
    done2 = true;
  };
  run(t2());
  ASSERT_TRUE(done2);
  EXPECT_EQ(recovered.truncated_records(), 1u);
}

TEST_F(DurabilityFixture, CrashMidPutRecoversViaWatchdogRetry) {
  bool done = false;
  auto t = [&]() -> sim::Task {
    PutStatus st = PutStatus::kOk;
    co_await store->put("safe-0", Payload::filled(4 * KiB, 0xA0), &st);
    co_await store->put("safe-1", Payload::filled(4 * KiB, 0xA1), &st);
    bool committed = false;
    co_await store->commit(&committed);
    EXPECT_TRUE(committed);
    // The next write command after arming (event 0) powers the device down
    // mid-destage: its CQE is lost, the streamer watchdog times the slot
    // out and the retry rewrites the record from the still-held FPGA
    // buffer.
    dev->ssd().set_crash_plan(seeded(fault::FaultPlan::at({0})));
    co_await store->put("crashy", Payload::filled(4 * KiB, 0xC4), &st);
    EXPECT_EQ(st, PutStatus::kOk);  // recovered transparently
    co_await store->commit(&committed);
    EXPECT_TRUE(committed);
    done = true;
  };
  run(t());
  ASSERT_TRUE(done);
  EXPECT_EQ(dev->ssd().crash_faults_injected(), 1u);
  EXPECT_EQ(dev->ssd().power_cycles(), 1u);
  EXPECT_GE(dev->ssd().suppressed_cqes(), 1u);
  EXPECT_GE(dev->streamer().watchdog_timeouts(), 1u);
  EXPECT_GE(dev->streamer().recovered(), 1u);
  const FaultStats fs = dev->fault_stats();
  EXPECT_EQ(fs.ssd_crash_faults, 1u);
  EXPECT_EQ(fs.ssd_power_cycles, 1u);

  KvStore recovered(dev->streamer(), Bytes{}, Bytes{256 * MiB});
  bool done2 = false;
  auto t2 = [&]() -> sim::Task {
    std::uint64_t records = 0;
    co_await recovered.recover(&records);
    EXPECT_EQ(records, 3u);
    Payload got;
    bool found = false;
    co_await recovered.get("crashy", &got, &found);
    EXPECT_TRUE(found);
    EXPECT_TRUE(got.content_equals(Payload::filled(4 * KiB, 0xC4)));
    done2 = true;
  };
  run(t2());
  ASSERT_TRUE(done2);
}

TEST_F(DurabilityFixture, CrashMidCompactLeavesOldLogAuthoritative) {
  bool done = false;
  auto t = [&]() -> sim::Task {
    PutStatus st = PutStatus::kOk;
    for (int i = 0; i < 6; ++i) {
      co_await store->put("old-" + std::to_string(i),
                          Payload::filled(4 * KiB, static_cast<std::uint8_t>(i)),
                          &st);
      EXPECT_EQ(st, PutStatus::kOk);
    }
    bool committed = false;
    co_await store->commit(&committed);
    EXPECT_TRUE(committed);
    // Crash every attempt of compaction's first scratch write (the original
    // and all max_retries resubmissions): the slot is quarantined, the PE
    // sees a write error, compact() aborts before touching the superblock.
    dev->ssd().set_crash_plan(seeded(fault::FaultPlan::at({0, 1, 2, 3})));
    Bytes reclaimed{123};
    bool ok = true;
    co_await store->compact(Bytes{512 * MiB}, Bytes{256 * MiB}, &reclaimed,
                            &ok);
    EXPECT_FALSE(ok);
    EXPECT_EQ(reclaimed.value(), 0u);
    EXPECT_EQ(store->generation(), 0u);
    done = true;
  };
  run(t(), /*budget_s=*/30);
  ASSERT_TRUE(done);
  EXPECT_GE(dev->streamer().quarantined(), 1u);

  // Recovery sees the old log, whole and unmixed.
  KvStore recovered(dev->streamer(), Bytes{}, Bytes{256 * MiB});
  bool done2 = false;
  auto t2 = [&]() -> sim::Task {
    std::uint64_t records = 0;
    co_await recovered.recover(&records);
    EXPECT_EQ(records, 6u);
    EXPECT_EQ(recovered.generation(), 0u);
    for (int i = 0; i < 6; ++i) {
      Payload got;
      bool found = false;
      co_await recovered.get("old-" + std::to_string(i), &got, &found);
      EXPECT_TRUE(found);
      EXPECT_TRUE(got.content_equals(
          Payload::filled(4 * KiB, static_cast<std::uint8_t>(i))));
    }
    done2 = true;
  };
  run(t2());
  ASSERT_TRUE(done2);
}

TEST_F(DurabilityFixture, CompletedCompactionSurvivesPowerCycle) {
  bool done = false;
  auto t = [&]() -> sim::Task {
    PutStatus st = PutStatus::kOk;
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 4; ++i) {
        co_await store->put(
            "k" + std::to_string(i),
            Payload::filled(4 * KiB, static_cast<std::uint8_t>(round * 16 + i)),
            &st);
      }
    }
    bool committed = false;
    co_await store->commit(&committed);
    bool ok = false;
    co_await store->compact(Bytes{512 * MiB}, Bytes{256 * MiB}, nullptr, &ok);
    EXPECT_TRUE(ok);
    EXPECT_EQ(store->generation(), 1u);
    done = true;
  };
  run(t());
  ASSERT_TRUE(done);

  // compact() flushed both the scratch log and the superblock, so power
  // loss right after the switch-over must land recovery on the *new* log.
  dev->ssd().power_cycle();
  KvStore recovered(dev->streamer(), Bytes{}, Bytes{256 * MiB});
  bool done2 = false;
  auto t2 = [&]() -> sim::Task {
    std::uint64_t records = 0;
    co_await recovered.recover(&records);
    EXPECT_EQ(records, 4u);  // live keys only: the compacted view
    EXPECT_EQ(recovered.generation(), 1u);
    for (int i = 0; i < 4; ++i) {
      Payload got;
      bool found = false;
      co_await recovered.get("k" + std::to_string(i), &got, &found);
      EXPECT_TRUE(found);
      EXPECT_TRUE(got.content_equals(
          Payload::filled(4 * KiB, static_cast<std::uint8_t>(2 * 16 + i))));
    }
    done2 = true;
  };
  run(t2());
  ASSERT_TRUE(done2);
}

// ---------------------------------------------------------------------------
// Replicated writes over the multi-SSD path.

struct ReplicatedFixture : ::testing::Test {
  static constexpr std::uint32_t kReplicas = 3;

  ReplicatedFixture() {
    host::SystemConfig scfg;
    scfg.ssd_count = kReplicas;
    scfg.host_memory_bytes = 4 * GiB;
    sys = std::make_unique<host::System>(scfg);
    pcie::PortId shared = pcie::kInvalidPort;
    for (std::uint32_t i = 0; i < kReplicas; ++i) {
      sys->ssd(i).nand().force_mode(true);
      host::SnaccDeviceConfig dcfg;
      dcfg.streamer.variant = core::Variant::kHostDram;
      dcfg.streamer.recovery = true;
      dcfg.streamer.retry_backoff = us(5);
      dcfg.ssd_index = i;
      dcfg.instance = i;
      dcfg.shared_fpga_port = shared;
      devices.push_back(std::make_unique<host::SnaccDevice>(*sys, dcfg));
      shared = devices.back()->fpga_port();
    }
    int booted = 0;
    for (auto& d : devices) {
      auto boot = [](host::SnaccDevice* dv, int* count) -> sim::Task {
        co_await dv->init();
        ++*count;
      };
      sys->sim().spawn(boot(d.get(), &booted));
    }
    sys->sim().run_until(seconds(1));
    EXPECT_EQ(booted, static_cast<int>(kReplicas));
    for (auto& d : devices) {
      clients.push_back(std::make_unique<core::PeClient>(d->streamer()));
    }
    std::vector<core::StorageClient*> ptrs;
    for (auto& c : clients) ptrs.push_back(c.get());
    core::ReplicatedClient::Config rcfg;
    rcfg.retry_backoff = us(20);
    repl = std::make_unique<core::ReplicatedClient>(sys->sim(), ptrs, rcfg);
    store = std::make_unique<KvStore>(*repl, Bytes{}, Bytes{256 * MiB});
  }

  void run(sim::Task t, std::uint64_t budget_s = 30) {
    sys->sim().spawn(std::move(t));
    sys->sim().run_until(sys->sim().now() + seconds(budget_s));
  }

  std::unique_ptr<host::System> sys;
  std::vector<std::unique_ptr<host::SnaccDevice>> devices;
  std::vector<std::unique_ptr<core::PeClient>> clients;
  std::unique_ptr<core::ReplicatedClient> repl;
  std::unique_ptr<KvStore> store;
};

TEST_F(ReplicatedFixture, ServesAllAcknowledgedKeysAfterOneReplicaCrashes) {
  bool done = false;
  auto t = [&]() -> sim::Task {
    PutStatus st = PutStatus::kOk;
    for (int i = 0; i < 8; ++i) {
      co_await store->put("pre-" + std::to_string(i),
                          Payload::filled(4 * KiB, static_cast<std::uint8_t>(i)),
                          &st);
      EXPECT_EQ(st, PutStatus::kOk);
    }
    bool committed = false;
    co_await store->commit(&committed);
    EXPECT_TRUE(committed);

    // Replica 0 dies: power loss, then every later command on it errors
    // out. The next fan-out exhausts its resubmissions and quarantines it.
    sys->ssd(0).power_cycle();
    sys->ssd(0).set_internal_fault_plan(
        seeded(fault::FaultPlan::rate(1.0, 0)));
    for (int i = 8; i < 12; ++i) {
      co_await store->put("post-" + std::to_string(i),
                          Payload::filled(4 * KiB, static_cast<std::uint8_t>(i)),
                          &st);
      EXPECT_EQ(st, PutStatus::kOk) << "2-of-3 quorum must still ack";
    }
    co_await store->commit(&committed);
    EXPECT_TRUE(committed);
    EXPECT_TRUE(repl->replica_quarantined(0));
    EXPECT_EQ(repl->live_replicas(), 2u);

    // Every acknowledged key -- from before and after the crash -- is
    // served, reads failing over past the dead replica.
    for (int i = 0; i < 12; ++i) {
      const std::string key =
          (i < 8 ? "pre-" : "post-") + std::to_string(i);
      Payload got;
      bool found = false;
      co_await store->get(key, &got, &found);
      EXPECT_TRUE(found) << key;
      EXPECT_TRUE(got.content_equals(
          Payload::filled(4 * KiB, static_cast<std::uint8_t>(i))))
          << key;
    }
    done = true;
  };
  run(t());
  ASSERT_TRUE(done);
  EXPECT_GE(repl->resubmissions(), 1u);
  EXPECT_EQ(repl->replicas_lost(), 1u);
  EXPECT_EQ(repl->quorum_failures(), 0u);

  // A fresh replicated store still recovers the full log.
  KvStore recovered(*repl, Bytes{}, Bytes{256 * MiB});
  bool done2 = false;
  auto t2 = [&]() -> sim::Task {
    std::uint64_t records = 0;
    co_await recovered.recover(&records);
    EXPECT_EQ(records, 12u);
    done2 = true;
  };
  run(t2());
  ASSERT_TRUE(done2);
}

TEST_F(ReplicatedFixture, TransientReadFailureTriggersReadRepair) {
  bool done = false;
  auto t = [&]() -> sim::Task {
    PutStatus st = PutStatus::kOk;
    co_await store->put("repairable", Payload::filled(4 * KiB, 0x7E), &st);
    EXPECT_EQ(st, PutStatus::kOk);
    bool committed = false;
    co_await store->commit(&committed);

    // Replica 0's next read fails persistently enough to quarantine the
    // streamer slot (all retries), but the replica itself stays live: the
    // read fails over to replica 1 and the good blocks are written back.
    sys->ssd(0).set_internal_fault_plan(
        seeded(fault::FaultPlan::at({0, 1, 2, 3})));
    Payload got;
    bool found = false;
    co_await store->get("repairable", &got, &found);
    EXPECT_TRUE(found);
    EXPECT_TRUE(got.content_equals(Payload::filled(4 * KiB, 0x7E)));
    EXPECT_GE(repl->read_failovers(), 1u);
    EXPECT_GE(repl->read_repairs(), 1u);
    EXPECT_FALSE(repl->replica_quarantined(0));

    // The repaired replica serves the key again (fault plan exhausted).
    Payload again;
    co_await store->get("repairable", &again, &found);
    EXPECT_TRUE(found);
    EXPECT_TRUE(again.content_equals(Payload::filled(4 * KiB, 0x7E)));
    done = true;
  };
  run(t());
  ASSERT_TRUE(done);
}

}  // namespace
}  // namespace snacc::apps
