// snacc-lint: repo-specific static checks the compiler cannot enforce.
//
// The strong domain types in common/units.hpp turn unit-mixing into compile
// errors, but four classes of bugs still compile silently; this checker
// scans the source tree for them (docs/STATIC_ANALYSIS.md has the rule
// catalog and rationale):
//
//   bare-uint-signature  A function parameter in a src/{pcie,nvme,snacc}
//                        header typed std::uint64_t but named like a domain
//                        quantity (addr, lba, len, off, ...). Such a
//                        parameter defeats the whole point of the wrapper
//                        types: callers can pass any integer.
//   nondeterminism       rand(), std::random_device, or *_clock::now() --
//                        the DES must be bit-reproducible per seed, so all
//                        randomness goes through common/rng.hpp and all time
//                        through sim::Simulator. Also flags range-for
//                        iteration over a std::unordered_map declared in the
//                        same file: hash-map order is libstdc++-internal and
//                        must never reach simulated behaviour or output
//                        (sort first, as pcie::Iommu::faults_by_initiator
//                        does).
//   raw-doorbell         nvme::reg::kDoorbellBase arithmetic outside
//                        src/nvme/spec.hpp. sq_tail_doorbell()/
//                        cq_head_doorbell() are the only sanctioned ways to
//                        form a doorbell offset; inlined stride math has
//                        already caused an off-by-one between SQ and CQ
//                        doorbells once.
//   unbounded-poll       A try_pop()/try_recv() polling loop with no
//                        co_await or closed() check nearby. Without a yield
//                        the poll spins the scheduler at +0 time and the
//                        simulation livelocks.
//   lambda-event         sim->at(t, [..]{..}) / sim->after(d, [..]{..}) in
//                        src/. The closure overloads heap-allocate a node
//                        per event; model hot paths must embed a
//                        sim::EventNode and use schedule()/wake(), which
//                        never allocate (see docs/MODEL.md, "Scheduler
//                        internals"). Benches and tests may keep the
//                        convenience overloads.
//
// Suppression: append `// snacc-lint: allow(<rule>)` to the offending line,
// or place it alone on the line directly above.
//
// Usage: snacc-lint <repo-src-dir>...    exits 1 if any finding survives.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

struct SourceFile {
  fs::path path;
  std::string rel;  // path relative to the scanned root, '/'-separated
  std::vector<std::string> lines;  // raw text (suppressions live here)
  std::vector<std::string> code;   // same, with // comments blanked out
};

bool suppressed(const SourceFile& f, std::size_t idx, std::string_view rule) {
  const std::string needle = "snacc-lint: allow(" + std::string(rule) + ")";
  if (f.lines[idx].find(needle) != std::string::npos) return true;
  return idx > 0 && f.lines[idx - 1].find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// bare-uint-signature

// Parameter names that denote a quantity with a wrapper type in
// common/units.hpp. `seed`, counters, and bit-field raw values are fine.
// The trailing lookahead skips accessors *named* like a quantity, e.g.
// `std::uint64_t bytes() const` on a stats struct: the rule targets
// parameters, where a caller could pass any integer.
const std::regex kBareParam(
    R"re(std::uint64_t\s+(addr|base|lba|slba|len|size|bytes|off|offset|cid|slot|time|t0|t1|deadline|delay|latency|window)\b(?!\s*\())re");

void check_bare_signature(const SourceFile& f, std::vector<Finding>& out) {
  static const std::regex owned(R"(^src/(pcie|nvme|snacc)/.*\.hpp$)");
  if (!std::regex_match(f.rel, owned)) return;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.code[i], m, kBareParam)) continue;
    if (suppressed(f, i, "bare-uint-signature")) continue;
    out.push_back({f.rel, i + 1, "bare-uint-signature",
                   "parameter '" + m[1].str() +
                       "' is a domain quantity; use the wrapper type from "
                       "common/units.hpp instead of std::uint64_t"});
  }
}

// ---------------------------------------------------------------------------
// nondeterminism

void check_nondeterminism(const SourceFile& f, std::vector<Finding>& out) {
  static const std::regex banned(
      R"(\brand\s*\(\s*\)|std::random_device|(system|steady|high_resolution)_clock)");
  // Names of unordered_map variables declared anywhere in this file.
  static const std::regex decl(R"(std::unordered_map<[^;{]*>\s+(\w+))");
  std::vector<std::string> maps;
  for (const std::string& line : f.code) {
    for (std::sregex_iterator it(line.begin(), line.end(), decl), end;
         it != end; ++it) {
      maps.push_back((*it)[1].str());
    }
  }
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (std::regex_search(line, banned) &&
        !suppressed(f, i, "nondeterminism")) {
      out.push_back({f.rel, i + 1, "nondeterminism",
                     "wall-clock / libc randomness breaks bit-reproducible "
                     "runs; use common/rng.hpp and sim::Simulator time"});
    }
    for (const std::string& name : maps) {
      const std::regex iter(R"(for\s*\([^;)]*:\s*\*?)" + name + R"(\s*\))");
      if (std::regex_search(line, iter) &&
          !suppressed(f, i, "nondeterminism")) {
        out.push_back(
            {f.rel, i + 1, "nondeterminism",
             "iterating std::unordered_map '" + name +
                 "' exposes hash order; copy to a vector and sort first"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// raw-doorbell

void check_raw_doorbell(const SourceFile& f, std::vector<Finding>& out) {
  if (f.rel == "src/nvme/spec.hpp") return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (f.code[i].find("kDoorbellBase") == std::string::npos) continue;
    if (suppressed(f, i, "raw-doorbell")) continue;
    out.push_back({f.rel, i + 1, "raw-doorbell",
                   "doorbell offsets must come from "
                   "nvme::reg::sq_tail_doorbell()/cq_head_doorbell()"});
  }
}

// ---------------------------------------------------------------------------
// unbounded-poll

void check_unbounded_poll(const SourceFile& f, std::vector<Finding>& out) {
  // Call sites only (`.try_pop(` / `->try_recv(`): the definitions in
  // sim/channel.hpp and unqualified internal calls are the primitive itself.
  static const std::regex poll(R"((\.|->)try_(pop|recv)\s*\()");
  constexpr std::size_t kWindow = 20;  // lines of surrounding loop body
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (!std::regex_search(f.code[i], poll)) continue;
    if (suppressed(f, i, "unbounded-poll")) continue;
    bool has_backoff = false;
    const std::size_t lo = i >= kWindow ? i - kWindow : 0;
    const std::size_t hi = std::min(f.lines.size(), i + kWindow + 1);
    for (std::size_t j = lo; j < hi && !has_backoff; ++j) {
      const std::string& l = f.code[j];
      has_backoff = l.find("co_await") != std::string::npos ||
                    l.find("closed()") != std::string::npos;
    }
    if (!has_backoff) {
      out.push_back({f.rel, i + 1, "unbounded-poll",
                     "try_pop/try_recv loop without a co_await yield or "
                     "closed() exit spins the scheduler at +0 time"});
    }
  }
}

// ---------------------------------------------------------------------------
// lambda-event

void check_lambda_event(const SourceFile& f, std::vector<Finding>& out) {
  // src/ only: the closure overloads are fine in tests and benches, where
  // setup runs once and nobody counts allocations. Matching a lambda in the
  // argument list keeps container `.at(idx)` calls out of scope. Line-based,
  // so a call split before the lambda escapes -- good enough for a
  // heuristic that guards a perf property, not correctness.
  static const std::regex closure_event(
      R"re((\.|->)\s*(at|after)\s*\([^;]*,\s*\[)re");
  if (f.rel.rfind("src/", 0) != 0) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.code[i], m, closure_event)) continue;
    if (suppressed(f, i, "lambda-event")) continue;
    out.push_back({f.rel, i + 1, "lambda-event",
                   "Simulator::" + m[2].str() +
                       "(.., lambda) allocates a closure node per event; "
                       "embed a sim::EventNode and use schedule()/wake() in "
                       "model code"});
  }
}

// ---------------------------------------------------------------------------

std::vector<SourceFile> load_tree(const fs::path& root) {
  std::vector<SourceFile> files;
  const fs::path abs_root = fs::canonical(root);
  for (const auto& entry : fs::recursive_directory_iterator(abs_root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    SourceFile f;
    f.path = entry.path();
    f.rel = (abs_root.filename() /
             fs::relative(entry.path(), abs_root)).generic_string();
    std::ifstream in(entry.path());
    for (std::string line; std::getline(in, line);) {
      // Blank out // comments so prose never trips a rule; suppressions are
      // matched against the raw line.
      std::string stripped = line;
      if (const auto pos = stripped.find("//"); pos != std::string::npos) {
        stripped.resize(pos);
      }
      f.code.push_back(std::move(stripped));
      f.lines.push_back(std::move(line));
    }
    files.push_back(std::move(f));
  }
  // Directory iteration order is platform-dependent; report in sorted order.
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.rel < b.rel; });
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: snacc-lint <src-dir>...\n");
    return 2;
  }
  std::vector<Finding> findings;
  std::size_t scanned = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    if (!fs::is_directory(root)) {
      std::fprintf(stderr, "snacc-lint: not a directory: %s\n", argv[i]);
      return 2;
    }
    for (const SourceFile& f : load_tree(root)) {
      ++scanned;
      check_bare_signature(f, findings);
      check_nondeterminism(f, findings);
      check_raw_doorbell(f, findings);
      check_unbounded_poll(f, findings);
      check_lambda_event(f, findings);
    }
  }
  for (const Finding& f : findings) {
    std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  std::printf("snacc-lint: %zu file(s) scanned, %zu finding(s)\n", scanned,
              findings.size());
  return findings.empty() ? 0 : 1;
}
