// liblint: SARIF 2.1.0 serialization for GitHub code scanning.
#pragma once

#include <string>
#include <vector>

#include "lint/source.hpp"

namespace lint {

/// Renders findings as a SARIF 2.1.0 log with one run. The tool.driver
/// rule table covers every built-in rule plus the engine-level
/// `stale-suppression` check, so results always resolve a ruleIndex.
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace lint
