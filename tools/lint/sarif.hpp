// liblint: SARIF 2.1.0 serialization for GitHub code scanning.
#pragma once

#include <string>
#include <vector>

#include "lint/source.hpp"

namespace lint {

struct ScanStats;  // engine.hpp

/// Renders findings as a SARIF 2.1.0 log with one run. The tool.driver
/// rule table covers every built-in rule plus the engine-level
/// `stale-suppression` check, so results always resolve a ruleIndex.
/// Interprocedural PathSteps that carry a `file` render with that file as
/// their artifact (cross-function code flows). When `stats` is given, the
/// run's `properties` embed per-phase/per-rule wall-times and the
/// call-graph counters.
std::string to_sarif(const std::vector<Finding>& findings,
                     const ScanStats* stats = nullptr);

}  // namespace lint
