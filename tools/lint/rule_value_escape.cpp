// value-escape: `.value()` on a strong domain type (TimePs, Bytes, BusAddr,
// Lba, Cid, SlotIdx, ...) is the sanctioned escape hatch to a raw integer --
// but every escape is a place where the unit/typo protection the wrappers
// buy is switched off. This rule inverts the default: raw escapes are only
// allowed where a per-directory policy says the boundary is *supposed* to
// be raw (wire formats, the byte-addressed memory substrate, the generic
// sim kernel), or where an inline `allow(value-escape)` documents the
// specific site. Everywhere else, code must stay in the typed domain or
// use a typed helper from common/units.hpp.
#include "lint/rules.hpp"

namespace lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

class ValueEscape final : public Rule {
 public:
  std::string_view name() const override { return "value-escape"; }
  std::string_view description() const override {
    return ".value() escape from a domain type outside the per-directory "
           "raw-boundary policy; stay typed or add a reasoned allow()";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    // Only enforce inside src/: tests, benches and tools talk to raw
    // integers by nature (assertions, counters, CLI plumbing).
    if (!starts_with(ctx.file.rel(), "src/")) return;
    for (const PolicyEntry& p : value_escape_policy()) {
      if (starts_with(ctx.file.rel(), p.prefix)) return;
    }
    const auto& toks = ctx.file.tokens();
    for (std::size_t i = 1; i + 2 < toks.size(); ++i) {
      // Pattern: `.value()` -- member call with no arguments. The domain
      // wrappers are value types accessed with `.`; `->value()` is some
      // pointer-like type (std::optional et al.) and is out of scope, as is
      // `value(x)` (a free function) or `.value_or(...)`.
      if (!toks[i].ident("value")) continue;
      if (!toks[i - 1].is(".")) continue;
      if (!toks[i + 1].is("(") || !toks[i + 2].is(")")) continue;
      out->push_back(
          {ctx.file.rel(), toks[i].line, std::string(name()),
           ".value() escapes the typed domain outside a policy'd raw "
           "boundary; use a typed helper from common/units.hpp or add "
           "'// snacc-lint: allow(value-escape): <reason>'"});
    }
  }
};

}  // namespace

// Directories where raw integers are the *point*: each prefix names a layer
// whose job is to translate between the typed domain and a raw substrate.
// Mirrored in the policy table in docs/STATIC_ANALYSIS.md; keep in sync.
const std::vector<PolicyEntry>& value_escape_policy() {
  static const std::vector<PolicyEntry> kPolicy = {
      {"src/common/", "defines the unit layer itself; conversions live here"},
      {"src/mem/", "byte-addressed backing-store substrate is raw by design"},
      {"src/sim/", "generic event kernel takes raw counts, not device units"},
      {"src/nvme/", "NVMe wire formats (SQE/CQE/PRP) and NAND byte geometry"},
      {"src/spdk/", "host driver writing raw register/queue-entry images"},
      {"src/host/", "host DRAM sizing and admin command wire encoding"},
      {"src/snacc/prp_engine.", "synthesizes raw PRP entries for the SSD"},
      {"src/snacc/buffer_backend.", "adapter onto the raw mem:: port API"},
      {"src/pcie/memory_target.", "adapter onto the raw mem:: port API"},
  };
  return kPolicy;
}

std::unique_ptr<Rule> make_value_escape() {
  return std::make_unique<ValueEscape>();
}

}  // namespace lint
