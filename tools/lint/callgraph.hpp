// liblint: whole-program symbol table and call graph over token streams.
//
// Lifts the per-file scope analysis to a cross-TU view: every FuncScope in
// every scanned file becomes a FuncDef, every `name(...)` expression becomes
// a CallSite, and resolution connects the two at name level with arity and
// receiver-type disambiguation. The policy is conservative on ambiguity: a
// call site resolves only when exactly one candidate definition survives
// every filter -- zero candidates (external function) or two or more
// (overload set a token-level table cannot split) leave the site unresolved
// and the interprocedural rules treat the call as opaque. A lambda bound to
// a name (`auto pump = [..] ... ;`) resolves within its own file, unless the
// same name also names a function definition somewhere in the scan, in
// which case the binding is ambiguous and stays unresolved. See
// docs/STATIC_ANALYSIS.md "Ambiguity policy".
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/scope.hpp"
#include "lint/source.hpp"

namespace lint {

/// One function definition (a FuncScope with a body) in the program.
struct FuncDef {
  int file = -1;  ///< index into the scanned file list
  int func = -1;  ///< FuncScope index within that file's ScopeInfo
  std::string_view name;  ///< empty for lambdas never bound to a name
  std::string_view cls;   ///< "Cls" from a `Cls::name(...)` definition
  std::uint32_t line = 0;  ///< header line of the definition
  bool is_lambda = false;
  bool is_coroutine = false;
  /// Callable arity range from the parameter list: comma count, minus
  /// defaulted trailing parameters at the low end, open-ended for `...`.
  int arity_min = 0;
  int arity_max = 0;
  /// True when the scope tracker recovered exactly one Param per declared
  /// parameter. When false (unnamed or unparsable parameters), summaries
  /// must not use param indices -- positions would be skewed.
  bool params_reliable = false;
  /// Declared return type mentions Task/Future (named functions: leading or
  /// trailing return type; lambdas: `-> sim::Task` or being a coroutine).
  bool returns_async = false;
  /// Declared `auto` with no trailing type: the real return type comes from
  /// summary propagation (`auto f() { return g(); }`).
  bool returns_auto = false;
};

/// One `name(...)` call expression in a file.
struct CallSite {
  std::size_t name_tok = 0;  ///< token index of the callee name
  std::size_t arg_open = 0;  ///< '(' of the argument list
  std::size_t arg_close = 0;
  std::uint32_t line = 0;
  int caller = -1;  ///< def id of the enclosing function; -1 at file scope
  int callee = -1;  ///< resolved def id; -1 unresolved or ambiguous
  std::string_view callee_name;
  std::string_view recv;  ///< receiver identifier of `recv.f()` / `recv->f()`
  bool stmt_pos = false;  ///< the whole statement is `call(...);`
  /// Top-level argument token ranges [begin, end), in order.
  std::vector<std::pair<std::size_t, std::size_t>> args;
};

class CallGraph {
 public:
  /// Builds the program-wide graph. `files` and `scopes` are parallel; both
  /// must outlive the graph (string_views point into them).
  static CallGraph build(const std::vector<const SourceFile*>& files,
                         const std::vector<ScopeInfo>& scopes);

  const std::vector<FuncDef>& defs() const { return defs_; }
  /// Call sites of one file, in token order.
  const std::vector<CallSite>& sites(int file) const {
    return sites_[static_cast<std::size_t>(file)];
  }
  /// Def id of `scopes[file].funcs[func]`.
  int def_of(int file, int func) const {
    return def_of_[static_cast<std::size_t>(file)]
                  [static_cast<std::size_t>(func)];
  }
  /// Resolved callee def ids of `def`, sorted, deduplicated.
  const std::vector<int>& callees(int def) const {
    return callees_[static_cast<std::size_t>(def)];
  }

  std::size_t file_count() const { return sites_.size(); }
  std::size_t call_site_count() const { return call_sites_; }
  std::size_t resolved_count() const { return resolved_; }

 private:
  std::vector<FuncDef> defs_;
  std::vector<std::vector<CallSite>> sites_;  // per file
  std::vector<std::vector<int>> def_of_;      // per file: func idx -> def id
  std::vector<std::vector<int>> callees_;     // per def
  std::size_t call_sites_ = 0;
  std::size_t resolved_ = 0;
};

/// The root identifier of an argument's token range: the single identifier,
/// optionally behind a leading `&` or `*`. Empty for anything more complex
/// (the conservative answer -- callers skip substitution).
std::string_view root_ident(const std::vector<Token>& toks,
                            std::pair<std::size_t, std::size_t> range);

/// '*'-wildcard match used by the policy tables (the only metacharacter).
bool glob_match(std::string_view glob, std::string_view s);

}  // namespace lint
