// The typestate engine: compiles the declarative protocol tables
// (typestate.hpp) onto the per-function CFGs and reports violations with
// the full event trace attached.
//
// The solver is a worklist reachability pass over <block, state-at-entry>
// nodes, one tracked object at a time. Transitions are deterministic per
// (state, event), so applying a block's event chain to a single entry
// state yields a single exit state plus the ordered list of steps taken --
// which makes the reachable-node set exactly the may-analysis fixpoint
// *and* gives every node a BFS tree parent for witness-path
// reconstruction. Errors fire on an event observed in a reachable error
// state; obligations fire on an obligation state reachable at the CFG
// exit. Both carry the event chain from function entry as PathSteps
// (cross-file steps when an event was spliced in from a callee's protocol
// effect).
//
// Interprocedural lift and `--no-summaries` degradation live in
// summary.cpp (typestate_events / ProtocolEffect): with summaries off the
// engine sees direct events only, so a finding whose witness spans a call
// disappears -- strictly less precise, never differently wrong.
#include "lint/typestate.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "lint/summary.hpp"

namespace lint {

namespace {

bool path_starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string callee_name(const ProgramInfo& prog, int def) {
  const std::string_view n =
      prog.graph.defs()[static_cast<std::size_t>(def)].name;
  return n.empty() ? std::string("<lambda>") : std::string(n);
}

const std::string& callee_file(const ProgramInfo& prog, int def) {
  return prog.file_rels[static_cast<std::size_t>(
      prog.graph.defs()[static_cast<std::size_t>(def)].file)];
}

/// Deterministic next state for `event` in `state`: the transition row if
/// one exists, else stay. Error rows do not move the state by themselves.
int step(const TsProtocol& p, int state, int event) {
  for (const TsTransition& t : p.transitions) {
    if (t.from == state && t.event == event) return t.to;
  }
  return state;
}

const TsError* error_row(const TsProtocol& p, int state, int event) {
  for (const TsError& e : p.errors) {
    if (e.state == state && e.event == event) return &e;
  }
  return nullptr;
}

class TypestateRule final : public Rule {
 public:
  explicit TypestateRule(std::size_t proto) : proto_(proto) {}

  std::string_view name() const override {
    return typestate_protocols()[proto_].rule_name;
  }
  std::string_view description() const override {
    return typestate_protocols()[proto_].description;
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    const TsProtocol& p = typestate_protocols()[proto_];
    if (!p.path_prefixes.empty()) {
      bool in_scope = false;
      for (const std::string_view pre : p.path_prefixes) {
        in_scope |= path_starts_with(ctx.file.rel(), pre);
      }
      if (!in_scope) return;
    }
    for (std::size_t fi = 0; fi < ctx.scopes.funcs.size(); ++fi) {
      const FuncScope& f = ctx.scopes.funcs[fi];
      if (f.body_end <= f.body_begin) continue;
      const Cfg& cfg = ctx.cfgs.get(static_cast<int>(fi));
      const auto evs =
          typestate_events(ctx.prog, ctx.file_index, ctx.file, ctx.scopes,
                           cfg, static_cast<int>(fi), proto_);
      std::set<std::string> objects;
      for (const auto& v : evs) {
        for (const TsEventRef& e : v) objects.insert(e.recv);
      }
      for (const std::string& obj : objects) {
        check_object(ctx, p, cfg, evs, obj, out);
      }
    }
  }

 private:
  /// The per-object chain of one block, in execution order.
  static std::vector<const TsEventRef*> chain_of(
      const std::vector<TsEventRef>& block_evs, const std::string& obj) {
    std::vector<const TsEventRef*> chain;
    for (const TsEventRef& e : block_evs) {
      if (e.recv == obj) chain.push_back(&e);
    }
    return chain;
  }

  void check_object(const RuleContext& ctx, const TsProtocol& p,
                    const Cfg& cfg,
                    const std::vector<std::vector<TsEventRef>>& evs,
                    const std::string& obj,
                    std::vector<Finding>* out) const {
    const std::size_t nb = cfg.blocks.size();
    const std::size_t ns = p.states.size();
    std::vector<std::vector<const TsEventRef*>> chains(nb);
    std::vector<bool> has_event(p.events.size(), false);
    for (std::size_t b = 0; b < nb; ++b) {
      chains[b] = chain_of(evs[b], obj);
      for (const TsEventRef* e : chains[b]) {
        has_event[static_cast<std::size_t>(e->event)] = true;
      }
    }
    const auto armed = [&](int gate) {
      return gate < 0 || has_event[static_cast<std::size_t>(gate)];
    };

    // Reachable <block, entry-state> nodes, BFS from (entry, initial) with
    // tree parents for witness reconstruction. Deterministic: queue order
    // and successor order are fixed.
    const auto id = [ns](int b, int s) {
      return static_cast<std::size_t>(b) * ns + static_cast<std::size_t>(s);
    };
    std::vector<bool> seen(nb * ns, false);
    std::vector<std::size_t> parent(nb * ns, SIZE_MAX);
    std::vector<std::size_t> queue;
    seen[id(cfg.entry, 0)] = true;
    queue.push_back(id(cfg.entry, 0));
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::size_t node = queue[qi];
      const int b = static_cast<int>(node / ns);
      int s = static_cast<int>(node % ns);
      for (const TsEventRef* e : chains[static_cast<std::size_t>(b)]) {
        s = step(p, s, e->event);
      }
      for (const int succ : cfg.block(b).succ) {
        const std::size_t nid = id(succ, s);
        if (seen[nid]) continue;
        seen[nid] = true;
        parent[nid] = node;
        queue.push_back(nid);
      }
    }

    // Witness trace to (and through) `node`: the event chain from function
    // entry, one PathStep per event (plus a cross-file step for spliced
    // callee events), stopping after `upto` events of the final block
    // (SIZE_MAX: all of them).
    const auto trace = [&](std::size_t node,
                           std::size_t upto) -> std::vector<PathStep> {
      std::vector<std::size_t> nodes;
      for (std::size_t n = node; n != SIZE_MAX; n = parent[n]) {
        nodes.push_back(n);
      }
      std::reverse(nodes.begin(), nodes.end());
      std::vector<PathStep> steps;
      for (std::size_t k = 0; k < nodes.size(); ++k) {
        const int b = static_cast<int>(nodes[k] / ns);
        int s = static_cast<int>(nodes[k] % ns);
        const auto& chain = chains[static_cast<std::size_t>(b)];
        const std::size_t stop =
            (k + 1 == nodes.size() && upto != SIZE_MAX) ? upto : chain.size();
        for (std::size_t e = 0; e < stop && e < chain.size(); ++e) {
          const TsEventRef& ev = *chain[e];
          const int to = step(p, s, ev.event);
          const std::string call =
              "'" + obj + "." + std::string(p.events[ev.event]) + "()'";
          std::string note;
          if (ev.callee_def >= 0) {
            note = "call into '" + callee_name(*ctx.prog, ev.callee_def) +
                   "' performs " + call;
          } else {
            note = call;
          }
          if (to != s) {
            note += ": '" + obj + "' " + std::string(p.states[s]) + " -> " +
                    std::string(p.states[to]);
          } else {
            note += " ('" + obj + "' stays " + std::string(p.states[s]) + ")";
          }
          steps.push_back({ev.line, std::move(note)});
          if (ev.callee_def >= 0 && ev.callee_line != 0) {
            steps.push_back({ev.callee_line,
                             "performed here inside '" +
                                 callee_name(*ctx.prog, ev.callee_def) + "'",
                             callee_file(*ctx.prog, ev.callee_def)});
          }
          s = to;
        }
      }
      return steps;
    };

    // Error rows: walk every reachable entry state through each block's
    // chain; an armed error row on the current state reports once per
    // (line, row).
    std::set<std::pair<std::uint32_t, const TsError*>> reported;
    for (std::size_t b = 0; b < nb; ++b) {
      if (chains[b].empty()) continue;
      for (std::size_t s0 = 0; s0 < ns; ++s0) {
        const std::size_t node = id(static_cast<int>(b), static_cast<int>(s0));
        if (!seen[node]) continue;
        int s = static_cast<int>(s0);
        for (std::size_t e = 0; e < chains[b].size(); ++e) {
          const TsEventRef& ev = *chains[b][e];
          const TsError* row = error_row(p, s, ev.event);
          if (row != nullptr && armed(row->gate_event) &&
              reported.emplace(ev.line, row).second) {
            Finding fd{ctx.file.rel(), ev.line, std::string(p.rule_name),
                       "'" + obj + "." + std::string(p.events[ev.event]) +
                           "()' while '" + obj + "' is " +
                           std::string(p.states[s]) + " on some path: " +
                           std::string(row->message),
                       {}};
            fd.path = trace(node, e);
            std::string last = "'" + obj + "." +
                               std::string(p.events[ev.event]) +
                               "()' in state " + std::string(p.states[s]);
            if (ev.callee_def >= 0) {
              last += " (via '" + callee_name(*ctx.prog, ev.callee_def) + "')";
            }
            fd.path.push_back({ev.line, std::move(last)});
            out->push_back(std::move(fd));
          }
          s = step(p, s, ev.event);
        }
      }
    }

    // Exit obligations: an armed obligation state reachable at the CFG
    // exit. Reported at the last event that entered (or kept) the state on
    // the witness path, with the full trace attached.
    for (const TsObligation& ob : p.obligations) {
      if (!armed(ob.gate_event)) continue;
      const std::size_t node = id(cfg.exit, ob.state);
      if (ob.state == 0 || !seen[node]) continue;
      std::vector<PathStep> steps = trace(node, SIZE_MAX);
      // Find the offending event: the last step is the state's most recent
      // cause because trace emits events in execution order.
      std::uint32_t at = steps.empty() ? f_line(cfg) : steps.back().line;
      for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
        if (it->file.empty()) {
          at = it->line;
          break;
        }
      }
      Finding fd{ctx.file.rel(), at, std::string(p.rule_name),
                 "'" + obj + "' can reach function exit still " +
                     std::string(p.states[ob.state]) + ": " +
                     std::string(ob.message),
                 {}};
      fd.path = std::move(steps);
      const std::uint32_t exit_ln = cfg.block(cfg.exit).line;
      fd.path.push_back({exit_ln == 0 ? at : exit_ln,
                         "function exit with '" + obj + "' still " +
                             std::string(p.states[ob.state])});
      out->push_back(std::move(fd));
    }
  }

  static std::uint32_t f_line(const Cfg& cfg) {
    return cfg.block(cfg.entry).line == 0 ? 1 : cfg.block(cfg.entry).line;
  }

  std::size_t proto_;
};

}  // namespace

const std::vector<TsProtocol>& typestate_protocols() {
  static const std::vector<TsProtocol> kProtocols = [] {
    std::vector<TsProtocol> ps;

    {
      // sim::Mailbox producer/consumer shutdown ordering (docs/MODEL.md
      // "Domains & conservative sync"): close() is the producer's shutdown
      // marker, close_rx() the consumer's hangup; pop() after close is the
      // legal drain, push() after either end closed drops the value.
      TsProtocol p;
      p.rule_name = "ts-mailbox";
      p.description =
          "Mailbox lifecycle: no push after close/close_rx, no pop after "
          "hanging up the receive end";
      enum { kLive, kClosed, kRxClosed };
      enum { kPush, kPop, kClose, kCloseRx };
      p.states = {"live", "closed", "rx-closed"};
      p.events = {"push", "pop", "close", "close_rx"};
      p.type_names = {"Mailbox"};
      p.recv_globs = {"*mailbox*", "mb", "mbox*"};
      p.transitions = {{kLive, kClose, kClosed}, {kLive, kCloseRx, kRxClosed}};
      p.errors = {
          {kClosed, kPush, -1,
           "the producer already marked shutdown, so the value is silently "
           "dropped and the consumer's drain ends before it"},
          {kRxClosed, kPush, -1,
           "the consumer hung up, so the push fails after one link latency "
           "and the value is dropped"},
          {kRxClosed, kPop, -1,
           "this side already closed the receive end; nothing can arrive "
           "after the hangup propagates"},
      };
      ps.push_back(std::move(p));
    }

    {
      // KV WAL group-commit barrier (docs/DURABILITY.md): put() appends and
      // indexes but the record is volatile until a commit() flush barrier;
      // acknowledging without the barrier loses the record on a crash.
      TsProtocol p;
      p.rule_name = "ts-kv-wal";
      p.description =
          "KV WAL barrier: every put must be followed by a commit flush "
          "barrier on every path to function exit";
      enum { kClean, kDirty };
      enum { kPut, kCommit };
      p.states = {"clean", "dirty"};
      p.events = {"put", "commit"};
      p.type_names = {"KvStore"};
      p.recv_globs = {"*store*", "kv*"};
      p.transitions = {{kClean, kPut, kDirty}, {kDirty, kCommit, kClean}};
      p.obligations = {
          {kDirty, kCommit,
           "a put on this path is never followed by a commit flush barrier, "
           "so the record is acknowledged but volatile and a crash loses it "
           "(docs/DURABILITY.md)"},
      };
      p.path_prefixes = {"src/", "examples/"};
      ps.push_back(std::move(p));
    }

    {
      // NVMe command lifecycle through the reorder buffer (PAPER.md
      // Fig. 4c): a slot/cid is allocated at submission and may be retired
      // only after its completion was observed (complete CQE, wait_head, or
      // a fail_head poison). reopen_head re-arms the head for resubmission,
      // so a retire after it needs a fresh completion.
      TsProtocol p;
      p.rule_name = "ts-nvme-cid";
      p.description =
          "NVMe cid lifecycle: no retire without an observed completion "
          "(complete/wait_head/fail_head) since the slot was allocated";
      enum { kIdle, kAllocated, kRetirable };
      enum { kAlloc, kComplete, kWaitHead, kRetire, kFailHead, kReopenHead };
      p.states = {"idle", "allocated", "head-completed"};
      p.events = {"alloc",  "complete",  "wait_head",
                  "retire", "fail_head", "reopen_head"};
      p.type_names = {"ReorderBuffer"};
      p.recv_globs = {"rob*"};
      p.transitions = {
          {kIdle, kAlloc, kAllocated},
          {kIdle, kWaitHead, kRetirable},
          {kAllocated, kComplete, kRetirable},
          {kAllocated, kWaitHead, kRetirable},
          {kAllocated, kFailHead, kRetirable},
          {kRetirable, kRetire, kIdle},
          {kRetirable, kReopenHead, kAllocated},
      };
      p.errors = {
          {kAllocated, kRetire, -1,
           "in-order retirement requires the head completion first "
           "(PAPER.md Fig. 4c); complete, wait_head or fail_head the slot "
           "before retiring"},
      };
      ps.push_back(std::move(p));
    }

    {
      // Streamer issue-credit / quarantine discipline: a held credit must
      // be released (or the command quarantined, which releases it) before
      // this path acquires again -- a second acquire on a held semaphore
      // parks the coroutine against itself. Gated on the function also
      // releasing the object, so acquire-only handoff halves stay silent
      // (same pairing gate as resource-pairing).
      TsProtocol p;
      p.rule_name = "ts-credit";
      p.description =
          "credit discipline: no re-acquire while the same credit is still "
          "held on some path (fault-retry exits included)";
      enum { kUnheld, kHeld, kReleased };
      enum { kAcquire, kRelease };
      p.states = {"unheld", "held", "released"};
      p.events = {"acquire", "release"};
      p.type_names = {"Semaphore"};
      p.recv_globs = {"*credit*", "*mutex*"};
      p.transitions = {
          {kUnheld, kAcquire, kHeld},
          {kHeld, kRelease, kReleased},
          {kReleased, kAcquire, kHeld},
      };
      p.errors = {
          {kHeld, kAcquire, kRelease,
           "a second acquire on a held semaphore parks this path against "
           "itself and can deadlock the issue window; release or quarantine "
           "first, or make the cross-coroutine handoff explicit in its own "
           "function"},
      };
      ps.push_back(std::move(p));
    }

    return ps;
  }();
  return kProtocols;
}

std::vector<std::unique_ptr<Rule>> make_typestate_rules() {
  std::vector<std::unique_ptr<Rule>> out;
  for (std::size_t i = 0; i < typestate_protocols().size(); ++i) {
    out.push_back(std::make_unique<TypestateRule>(i));
  }
  return out;
}

}  // namespace lint
