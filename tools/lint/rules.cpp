// The five rules ported from the regex engine, now running on token
// streams: comments, string literals, and preprocessor lines can no longer
// produce false positives, and multi-line constructs (a `sim->at(` call
// split before its lambda) can no longer produce false negatives.
#include <algorithm>
#include <array>

#include "lint/rules.hpp"

namespace lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True for headers in the strongly-typed device directories.
bool owned_header(std::string_view rel) {
  return (starts_with(rel, "src/pcie/") || starts_with(rel, "src/nvme/") ||
          starts_with(rel, "src/snacc/")) &&
         ends_with(rel, ".hpp");
}

// ---------------------------------------------------------------------------
// bare-uint-signature

class BareUintSignature final : public Rule {
 public:
  std::string_view name() const override { return "bare-uint-signature"; }
  std::string_view description() const override {
    return "std::uint64_t parameter named like a domain quantity in a typed "
           "header; use the wrapper types from common/units.hpp";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    if (!owned_header(ctx.file.rel())) return;
    static constexpr std::array<std::string_view, 17> kNames = {
        "addr", "base", "lba",      "slba",  "len",    "size",
        "bytes", "off", "offset",   "cid",   "slot",   "time",
        "t0",    "t1",  "deadline", "delay", "latency"};
    const auto& toks = ctx.file.tokens();
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!toks[i].ident("std") || !toks[i + 1].is("::") ||
          !toks[i + 2].ident("uint64_t") ||
          toks[i + 3].kind != Tok::kIdent) {
        continue;
      }
      const std::string_view id = toks[i + 3].text;
      if (std::find(kNames.begin(), kNames.end(), id) == kNames.end() &&
          id != "window") {
        continue;
      }
      // Skip accessors *named* like a quantity (`std::uint64_t bytes()`):
      // the rule targets parameters, where a caller could pass any integer.
      if (i + 4 < toks.size() && toks[i + 4].is("(")) continue;
      out->push_back({ctx.file.rel(), toks[i + 3].line, std::string(name()),
                      "parameter '" + std::string(id) +
                          "' is a domain quantity; use the wrapper type from "
                          "common/units.hpp instead of std::uint64_t"});
    }
  }
};

// ---------------------------------------------------------------------------
// nondeterminism

class Nondeterminism final : public Rule {
 public:
  std::string_view name() const override { return "nondeterminism"; }
  std::string_view description() const override {
    return "wall-clock, libc randomness, or unordered_map iteration order "
           "reaching simulated behaviour";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    const auto& toks = ctx.file.tokens();
    // Names of unordered_map variables declared anywhere in this file.
    std::vector<std::string_view> maps;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].ident("unordered_map")) continue;
      if (i + 1 >= toks.size() || !toks[i + 1].is("<")) continue;
      // Find the end of the template argument list; `>>` closes two levels.
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (toks[j].is("<")) ++depth;
        else if (toks[j].is(">")) --depth;
        else if (toks[j].is(">>")) depth -= 2;
        if (depth <= 0) break;
      }
      // Declared name: the next identifier (skipping ref/pointer marks).
      for (std::size_t k = j + 1; k < toks.size() && k < j + 4; ++k) {
        if (toks[k].kind == Tok::kIdent) {
          maps.push_back(toks[k].text);
          break;
        }
        if (!toks[k].is("&") && !toks[k].is("*")) break;
      }
    }

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::kIdent) continue;
      const bool is_rand = t.text == "rand" && i + 2 < toks.size() &&
                           toks[i + 1].is("(") && toks[i + 2].is(")");
      const bool is_banned_name =
          t.text == "random_device" || t.text == "system_clock" ||
          t.text == "steady_clock" || t.text == "high_resolution_clock";
      if (is_rand || is_banned_name) {
        out->push_back({ctx.file.rel(), t.line, std::string(name()),
                        "wall-clock / libc randomness breaks bit-reproducible "
                        "runs; use common/rng.hpp and sim::Simulator time"});
        continue;
      }
      if (t.text == "for" && i + 1 < toks.size() && toks[i + 1].is("(")) {
        const std::size_t close = match_forward(toks, i + 1);
        if (close >= toks.size()) continue;
        for (std::size_t j = i + 2; j + 1 < close; ++j) {
          if (!toks[j].is(":")) continue;
          std::size_t v = j + 1;
          if (v < close && toks[v].is("*")) ++v;
          if (v + 1 == close && toks[v].kind == Tok::kIdent &&
              std::find(maps.begin(), maps.end(), toks[v].text) !=
                  maps.end()) {
            out->push_back(
                {ctx.file.rel(), toks[v].line, std::string(name()),
                 "iterating std::unordered_map '" + std::string(toks[v].text) +
                     "' exposes hash order; copy to a vector and sort first"});
          }
          break;  // only the first top-level ':' is the range-for separator
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// raw-doorbell

class RawDoorbell final : public Rule {
 public:
  std::string_view name() const override { return "raw-doorbell"; }
  std::string_view description() const override {
    return "kDoorbellBase arithmetic outside src/nvme/spec.hpp; use "
           "sq_tail_doorbell()/cq_head_doorbell()";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    if (ctx.file.rel() == "src/nvme/spec.hpp") return;
    for (const Token& t : ctx.file.tokens()) {
      if (t.ident("kDoorbellBase")) {
        out->push_back({ctx.file.rel(), t.line, std::string(name()),
                        "doorbell offsets must come from "
                        "nvme::reg::sq_tail_doorbell()/cq_head_doorbell()"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// unbounded-poll

class UnboundedPoll final : public Rule {
 public:
  std::string_view name() const override { return "unbounded-poll"; }
  std::string_view description() const override {
    return "try_pop/try_recv polling loop with no co_await yield or closed() "
           "exit nearby";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    constexpr std::uint32_t kWindow = 20;  // lines of surrounding loop body
    const auto& toks = ctx.file.tokens();
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
      // Call sites only (`.try_pop(` / `->try_recv(`): the definitions and
      // unqualified internal calls are the primitive itself.
      if (toks[i].kind != Tok::kIdent ||
          (toks[i].text != "try_pop" && toks[i].text != "try_recv")) {
        continue;
      }
      if (!toks[i + 1].is("(")) continue;
      if (!toks[i - 1].is(".") && !toks[i - 1].is("->")) continue;
      const std::uint32_t line = toks[i].line;
      const std::uint32_t lo = line > kWindow ? line - kWindow : 1;
      const std::uint32_t hi = line + kWindow;
      bool has_backoff = false;
      for (const Token& t : toks) {
        if (t.line < lo) continue;
        if (t.line > hi) break;
        if (t.ident("co_await") || t.ident("closed")) {
          has_backoff = true;
          break;
        }
      }
      if (!has_backoff) {
        out->push_back({ctx.file.rel(), line, std::string(name()),
                        "try_pop/try_recv loop without a co_await yield or "
                        "closed() exit spins the scheduler at +0 time"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// lambda-event

class LambdaEvent final : public Rule {
 public:
  std::string_view name() const override { return "lambda-event"; }
  std::string_view description() const override {
    return "Simulator::at/after with a closure allocates an event node; "
           "model code must embed a sim::EventNode";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    // src/ only: the closure overloads are fine in tests and benches, where
    // setup runs once and nobody counts allocations.
    if (!starts_with(ctx.file.rel(), "src/")) return;
    const auto& toks = ctx.file.tokens();
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent ||
          (toks[i].text != "at" && toks[i].text != "after")) {
        continue;
      }
      if (!toks[i - 1].is(".") && !toks[i - 1].is("->")) continue;
      if (!toks[i + 1].is("(")) continue;
      const std::size_t close = match_forward(toks, i + 1);
      if (close >= toks.size()) continue;
      // A lambda anywhere in the argument list marks the closure overload;
      // a container `.at(idx)` never contains one. Scope analysis already
      // knows exactly which `[` tokens begin lambdas, so a call split
      // across lines -- invisible to the old line regex -- is still caught.
      for (const FuncScope& f : ctx.scopes.funcs) {
        if (f.is_lambda && f.body_begin > i + 1 && f.body_begin < close) {
          out->push_back(
              {ctx.file.rel(), toks[i].line, std::string(name()),
               "Simulator::" + std::string(toks[i].text) +
                   "(.., lambda) allocates a closure node per event; embed a "
                   "sim::EventNode and use schedule()/wake() in model code"});
          break;
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// unchecked-put

class UncheckedPut final : public Rule {
 public:
  std::string_view name() const override { return "unchecked-put"; }
  std::string_view description() const override {
    return "KvStore::put / replicated write call without a status out-param; "
           "a failed durable write would go unnoticed";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    // src/ and examples/ only: tests assert on statuses anyway, and bench
    // harnesses own their error budget.
    const std::string_view rel = ctx.file.rel();
    if (!starts_with(rel, "src/") && !starts_with(rel, "examples/")) return;
    const auto& toks = ctx.file.tokens();
    for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent) continue;
      const bool is_put = toks[i].text == "put";
      const bool is_write = toks[i].text == "write";
      if (!is_put && !is_write) continue;
      if (!toks[i - 1].is(".") && !toks[i - 1].is("->")) continue;
      if (!toks[i + 1].is("(")) continue;
      if (is_write) {
        // Only replicated receivers: a plain device write's error param is
        // optional by design, but dropping a quorum verdict loses data.
        if (toks[i - 2].kind != Tok::kIdent ||
            toks[i - 2].text.find("repl") == std::string_view::npos) {
          continue;
        }
      }
      const std::size_t close = match_forward(toks, i + 1);
      if (close >= toks.size()) continue;
      // Exactly two top-level arguments = key/value (or addr/data) with the
      // status out-param dropped.
      int depth = 0;
      std::size_t args = close > i + 2 ? 1 : 0;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (toks[j].is("(") || toks[j].is("[") || toks[j].is("{")) {
          ++depth;
        } else if (toks[j].is(")") || toks[j].is("]") || toks[j].is("}")) {
          --depth;
        } else if (depth == 0 && toks[j].is(",")) {
          ++args;
        }
      }
      if (args != 2) continue;
      out->push_back({ctx.file.rel(), toks[i].line, std::string(name()),
                      std::string(is_put ? "put" : "write") +
                          " call discards its status out-param; pass a "
                          "PutStatus*/bool* and check it (docs/DURABILITY.md)"});
    }
  }
};

}  // namespace

// Defined in rules_coro.cpp / rule_value_escape.cpp / rules_flow.cpp.
std::unique_ptr<Rule> make_dangling_capture();
std::unique_ptr<Rule> make_discarded_async();
std::unique_ptr<Rule> make_value_escape();
std::unique_ptr<Rule> make_resource_pairing();
std::unique_ptr<Rule> make_use_after_move();
std::unique_ptr<Rule> make_unchecked_status_path();

const std::vector<std::unique_ptr<Rule>>& all_rules() {
  static const std::vector<std::unique_ptr<Rule>> kRules = [] {
    std::vector<std::unique_ptr<Rule>> r;
    r.push_back(std::make_unique<BareUintSignature>());
    r.push_back(std::make_unique<Nondeterminism>());
    r.push_back(std::make_unique<RawDoorbell>());
    r.push_back(std::make_unique<UnboundedPoll>());
    r.push_back(std::make_unique<LambdaEvent>());
    r.push_back(std::make_unique<UncheckedPut>());
    r.push_back(make_dangling_capture());
    r.push_back(make_discarded_async());
    r.push_back(make_value_escape());
    r.push_back(make_resource_pairing());
    r.push_back(make_use_after_move());
    r.push_back(make_unchecked_status_path());
    return r;
  }();
  return kRules;
}

const std::vector<RuleMeta>& rule_catalog() {
  static const std::vector<RuleMeta> kCatalog = [] {
    std::vector<RuleMeta> c;
    for (const auto& r : all_rules()) {
      c.push_back({r->name(), r->description()});
    }
    // The engine-level suppression-hygiene check has no Rule object but is
    // a real finding kind; it lives in the catalog so --list-rules, SARIF,
    // and the docs can never drift from what the tool actually reports.
    c.push_back({"stale-suppression",
                 "a 'snacc-lint: allow(<rule>)' marker that silences no "
                 "finding; remove it so suppressions stay meaningful"});
    return c;
  }();
  return kCatalog;
}

}  // namespace lint
