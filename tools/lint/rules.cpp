// The five rules ported from the regex engine, now running on token
// streams: comments, string literals, and preprocessor lines can no longer
// produce false positives, and multi-line constructs (a `sim->at(` call
// split before its lambda) can no longer produce false negatives.
#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <string>

#include "lint/rules.hpp"
#include "lint/summary.hpp"
#include "lint/typestate.hpp"

namespace lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True for headers in the strongly-typed device directories.
bool owned_header(std::string_view rel) {
  return (starts_with(rel, "src/pcie/") || starts_with(rel, "src/nvme/") ||
          starts_with(rel, "src/snacc/")) &&
         ends_with(rel, ".hpp");
}

// ---------------------------------------------------------------------------
// bare-uint-signature

class BareUintSignature final : public Rule {
 public:
  std::string_view name() const override { return "bare-uint-signature"; }
  std::string_view description() const override {
    return "std::uint64_t parameter named like a domain quantity in a typed "
           "header; use the wrapper types from common/units.hpp";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    if (!owned_header(ctx.file.rel())) return;
    static constexpr std::array<std::string_view, 17> kNames = {
        "addr", "base", "lba",      "slba",  "len",    "size",
        "bytes", "off", "offset",   "cid",   "slot",   "time",
        "t0",    "t1",  "deadline", "delay", "latency"};
    const auto& toks = ctx.file.tokens();
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!toks[i].ident("std") || !toks[i + 1].is("::") ||
          !toks[i + 2].ident("uint64_t") ||
          toks[i + 3].kind != Tok::kIdent) {
        continue;
      }
      const std::string_view id = toks[i + 3].text;
      if (std::find(kNames.begin(), kNames.end(), id) == kNames.end() &&
          id != "window") {
        continue;
      }
      // Skip accessors *named* like a quantity (`std::uint64_t bytes()`):
      // the rule targets parameters, where a caller could pass any integer.
      if (i + 4 < toks.size() && toks[i + 4].is("(")) continue;
      out->push_back({ctx.file.rel(), toks[i + 3].line, std::string(name()),
                      "parameter '" + std::string(id) +
                          "' is a domain quantity; use the wrapper type from "
                          "common/units.hpp instead of std::uint64_t"});
    }
  }
};

// ---------------------------------------------------------------------------
// nondeterminism

class Nondeterminism final : public Rule {
 public:
  std::string_view name() const override { return "nondeterminism"; }
  std::string_view description() const override {
    return "wall-clock, libc randomness, or unordered_map iteration order "
           "reaching simulated behaviour";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    const auto& toks = ctx.file.tokens();
    // Names of unordered_map variables declared anywhere in this file.
    std::vector<std::string_view> maps;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].ident("unordered_map")) continue;
      if (i + 1 >= toks.size() || !toks[i + 1].is("<")) continue;
      // Find the end of the template argument list; `>>` closes two levels.
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (toks[j].is("<")) ++depth;
        else if (toks[j].is(">")) --depth;
        else if (toks[j].is(">>")) depth -= 2;
        if (depth <= 0) break;
      }
      // Declared name: the next identifier (skipping ref/pointer marks).
      for (std::size_t k = j + 1; k < toks.size() && k < j + 4; ++k) {
        if (toks[k].kind == Tok::kIdent) {
          maps.push_back(toks[k].text);
          break;
        }
        if (!toks[k].is("&") && !toks[k].is("*")) break;
      }
    }

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::kIdent) continue;
      const bool is_rand = t.text == "rand" && i + 2 < toks.size() &&
                           toks[i + 1].is("(") && toks[i + 2].is(")");
      const bool is_banned_name =
          t.text == "random_device" || t.text == "system_clock" ||
          t.text == "steady_clock" || t.text == "high_resolution_clock";
      if (is_rand || is_banned_name) {
        out->push_back({ctx.file.rel(), t.line, std::string(name()),
                        "wall-clock / libc randomness breaks bit-reproducible "
                        "runs; use common/rng.hpp and sim::Simulator time"});
        continue;
      }
      if (t.text == "for" && i + 1 < toks.size() && toks[i + 1].is("(")) {
        const std::size_t close = match_forward(toks, i + 1);
        if (close >= toks.size()) continue;
        for (std::size_t j = i + 2; j + 1 < close; ++j) {
          if (!toks[j].is(":")) continue;
          std::size_t v = j + 1;
          if (v < close && toks[v].is("*")) ++v;
          if (v + 1 == close && toks[v].kind == Tok::kIdent &&
              std::find(maps.begin(), maps.end(), toks[v].text) !=
                  maps.end()) {
            out->push_back(
                {ctx.file.rel(), toks[v].line, std::string(name()),
                 "iterating std::unordered_map '" + std::string(toks[v].text) +
                     "' exposes hash order; copy to a vector and sort first"});
          }
          break;  // only the first top-level ':' is the range-for separator
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// raw-doorbell

class RawDoorbell final : public Rule {
 public:
  std::string_view name() const override { return "raw-doorbell"; }
  std::string_view description() const override {
    return "kDoorbellBase arithmetic outside src/nvme/spec.hpp; use "
           "sq_tail_doorbell()/cq_head_doorbell()";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    if (ctx.file.rel() == "src/nvme/spec.hpp") return;
    for (const Token& t : ctx.file.tokens()) {
      if (t.ident("kDoorbellBase")) {
        out->push_back({ctx.file.rel(), t.line, std::string(name()),
                        "doorbell offsets must come from "
                        "nvme::reg::sq_tail_doorbell()/cq_head_doorbell()"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// unbounded-poll

class UnboundedPoll final : public Rule {
 public:
  std::string_view name() const override { return "unbounded-poll"; }
  std::string_view description() const override {
    return "try_pop/try_recv polling loop with no co_await yield or closed() "
           "exit nearby";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    constexpr std::uint32_t kWindow = 20;  // lines of surrounding loop body
    const auto& toks = ctx.file.tokens();
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
      // Call sites only (`.try_pop(` / `->try_recv(`): the definitions and
      // unqualified internal calls are the primitive itself.
      if (toks[i].kind != Tok::kIdent ||
          (toks[i].text != "try_pop" && toks[i].text != "try_recv")) {
        continue;
      }
      if (!toks[i + 1].is("(")) continue;
      if (!toks[i - 1].is(".") && !toks[i - 1].is("->")) continue;
      const std::uint32_t line = toks[i].line;
      const std::uint32_t lo = line > kWindow ? line - kWindow : 1;
      const std::uint32_t hi = line + kWindow;
      bool has_backoff = false;
      for (const Token& t : toks) {
        if (t.line < lo) continue;
        if (t.line > hi) break;
        if (t.ident("co_await") || t.ident("closed")) {
          has_backoff = true;
          break;
        }
      }
      if (!has_backoff) {
        out->push_back({ctx.file.rel(), line, std::string(name()),
                        "try_pop/try_recv loop without a co_await yield or "
                        "closed() exit spins the scheduler at +0 time"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// lambda-event

class LambdaEvent final : public Rule {
 public:
  std::string_view name() const override { return "lambda-event"; }
  std::string_view description() const override {
    return "Simulator::at/after with a closure allocates an event node; "
           "model code must embed a sim::EventNode";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    // src/ only: the closure overloads are fine in tests and benches, where
    // setup runs once and nobody counts allocations.
    if (!starts_with(ctx.file.rel(), "src/")) return;
    const auto& toks = ctx.file.tokens();
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent ||
          (toks[i].text != "at" && toks[i].text != "after")) {
        continue;
      }
      if (!toks[i - 1].is(".") && !toks[i - 1].is("->")) continue;
      if (!toks[i + 1].is("(")) continue;
      const std::size_t close = match_forward(toks, i + 1);
      if (close >= toks.size()) continue;
      // A lambda anywhere in the argument list marks the closure overload;
      // a container `.at(idx)` never contains one. Scope analysis already
      // knows exactly which `[` tokens begin lambdas, so a call split
      // across lines -- invisible to the old line regex -- is still caught.
      for (const FuncScope& f : ctx.scopes.funcs) {
        if (f.is_lambda && f.body_begin > i + 1 && f.body_begin < close) {
          out->push_back(
              {ctx.file.rel(), toks[i].line, std::string(name()),
               "Simulator::" + std::string(toks[i].text) +
                   "(.., lambda) allocates a closure node per event; embed a "
                   "sim::EventNode and use schedule()/wake() in model code"});
          break;
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// unchecked-put

class UncheckedPut final : public Rule {
 public:
  std::string_view name() const override { return "unchecked-put"; }
  std::string_view description() const override {
    return "KvStore::put / replicated write call without a status out-param; "
           "a failed durable write would go unnoticed";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    // src/ and examples/ only: tests assert on statuses anyway, and bench
    // harnesses own their error budget.
    const std::string_view rel = ctx.file.rel();
    if (!starts_with(rel, "src/") && !starts_with(rel, "examples/")) return;
    const auto& toks = ctx.file.tokens();
    for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent) continue;
      const bool is_put = toks[i].text == "put";
      const bool is_write = toks[i].text == "write";
      if (!is_put && !is_write) continue;
      if (!toks[i - 1].is(".") && !toks[i - 1].is("->")) continue;
      if (!toks[i + 1].is("(")) continue;
      if (is_write) {
        // Only replicated receivers: a plain device write's error param is
        // optional by design, but dropping a quorum verdict loses data.
        if (toks[i - 2].kind != Tok::kIdent ||
            toks[i - 2].text.find("repl") == std::string_view::npos) {
          continue;
        }
      }
      const std::size_t close = match_forward(toks, i + 1);
      if (close >= toks.size()) continue;
      // Exactly two top-level arguments = key/value (or addr/data) with the
      // status out-param dropped.
      int depth = 0;
      std::size_t args = close > i + 2 ? 1 : 0;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (toks[j].is("(") || toks[j].is("[") || toks[j].is("{")) {
          ++depth;
        } else if (toks[j].is(")") || toks[j].is("]") || toks[j].is("}")) {
          --depth;
        } else if (depth == 0 && toks[j].is(",")) {
          ++args;
        }
      }
      if (args != 2) continue;
      out->push_back({ctx.file.rel(), toks[i].line, std::string(name()),
                      std::string(is_put ? "put" : "write") +
                          " call discards its status out-param; pass a "
                          "PutStatus*/bool* and check it (docs/DURABILITY.md)"});
    }
  }
};

// ---------------------------------------------------------------------------
// cross-domain-touch

/// Components bound to different sim::Domains share no thread-safe state;
/// the only sanctioned interactions are the boundary types (Mailbox,
/// Channel, Wire, RateServer). The rule tracks, per file:
///   * domain variables -- `Domain&`/`Simulator&` declarations and
///     `auto& d = <x>.domain(<k>)` aliases (two aliases of one cluster
///     index are the same domain);
///   * component bindings -- `Type name(dvar, ...)`, `Type name{dvar, ...}`
///     and `auto p = std::make_unique<Type>(dvar, ...)` where `Type` is not
///     a boundary or kernel type;
/// and then flags (a) `a.spawn(...)` argument lists mentioning a component
/// bound to a domain other than `a`, and (b) statements where a method is
/// invoked on a component of one domain while a component of another
/// domain appears in the same statement -- unless a boundary-typed
/// variable is also present (the crossing is then mediated). With the
/// program layer on, (b) also sees *wrapper-level* touches: a statement
/// `helper(a, b)` where the resolved helper's summary says it invokes
/// methods on its parameters counts `a` (and `b`) as touched components,
/// with the concrete method call inside the helper attached as a
/// cross-function code flow.
class CrossDomainTouch final : public Rule {
 public:
  std::string_view name() const override { return "cross-domain-touch"; }
  std::string_view description() const override {
    return "component bound to one sim::Domain touched from another "
           "domain's context without a Mailbox/Channel/Wire/RateServer "
           "boundary";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    const std::string_view rel = ctx.file.rel();
    if (!starts_with(rel, "src/") && !starts_with(rel, "bench/") &&
        !starts_with(rel, "examples/")) {
      return;
    }
    const auto& toks = ctx.file.tokens();

    // Pass 1: domain variables.
    std::map<std::string_view, int> domain_of;
    std::map<std::string, int> alias_ids;  // "@<cluster index>" -> id
    int next_id = 0;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if ((toks[i].ident("Domain") || toks[i].ident("Simulator")) &&
          toks[i + 1].is("&") && toks[i + 2].kind == Tok::kIdent) {
        // `Simulator& sim() { ... }` declares an accessor, not a variable.
        if (i + 3 < toks.size() && toks[i + 3].is("(")) continue;
        if (domain_of.emplace(toks[i + 2].text, next_id).second) ++next_id;
      }
      // `auto& name = <x>.domain(<k>)`: alias of cluster domain k.
      if (toks[i].ident("domain") && i >= 6 && toks[i - 1].is(".") &&
          i + 3 < toks.size() && toks[i + 1].is("(") && toks[i + 3].is(")") &&
          toks[i - 2].kind == Tok::kIdent && toks[i - 3].is("=") &&
          toks[i - 4].kind == Tok::kIdent && toks[i - 5].is("&")) {
        const std::string key = "@" + std::string(toks[i + 2].text);
        auto [it, fresh] = alias_ids.emplace(key, next_id);
        if (fresh) ++next_id;
        domain_of.emplace(toks[i - 4].text, it->second);
      }
    }
    if (next_id < 2) return;  // a single domain cannot be crossed

    // Pass 2: component and boundary-variable bindings.
    static constexpr std::array<std::string_view, 10> kBoundary = {
        "Mailbox", "Channel", "Wire",       "RateServer", "Domain",
        "Simulator", "Task",  "SimCluster", "Gate",       "Future"};
    const auto is_boundary = [&](std::string_view t) {
      return std::find(kBoundary.begin(), kBoundary.end(), t) !=
             kBoundary.end();
    };
    // Type name directly before a declared variable: an ident, or the
    // head of a (possibly qualified) template-id whose `>` precedes the
    // variable (`sim::Mailbox<Frame> link(...)`).
    const auto type_head = [&](std::size_t name_idx) -> std::string_view {
      if (name_idx == 0) return {};
      std::size_t t = name_idx - 1;
      if (toks[t].is(">")) {
        int depth = 1;
        while (t > 0 && depth > 0) {
          --t;
          if (toks[t].is(">")) ++depth;
          if (toks[t].is("<")) --depth;
        }
        if (depth != 0 || t == 0) return {};
        --t;  // the ident before '<'
      }
      return toks[t].kind == Tok::kIdent ? toks[t].text : std::string_view{};
    };
    std::map<std::string_view, int> comp_of;
    std::set<std::string_view> boundary_vars;
    for (std::size_t i = 1; i + 2 < toks.size(); ++i) {
      // `Type name(dvar` / `Type name{dvar`.
      if (toks[i].kind == Tok::kIdent &&
          (toks[i + 1].is("(") || toks[i + 1].is("{")) &&
          toks[i + 2].kind == Tok::kIdent) {
        const std::string_view type = type_head(i);
        if (type.empty()) continue;
        const auto dv = domain_of.find(toks[i + 2].text);
        if (dv == domain_of.end()) continue;
        if (is_boundary(type)) {
          boundary_vars.insert(toks[i].text);
        } else if (domain_of.find(toks[i].text) == domain_of.end()) {
          comp_of.emplace(toks[i].text, dv->second);
        }
      }
      // `name = std::make_unique<Type>(dvar`.
      if (toks[i].ident("make_unique") && i >= 4 && toks[i - 1].is("::") &&
          toks[i - 2].ident("std") && toks[i - 3].is("=") &&
          toks[i - 4].kind == Tok::kIdent && toks[i + 1].is("<")) {
        std::size_t j = i + 2;
        int depth = 1;
        bool boundary_type = false;
        while (j < toks.size() && depth > 0) {
          if (toks[j].is("<")) ++depth;
          if (toks[j].is(">")) --depth;
          if (toks[j].kind == Tok::kIdent && is_boundary(toks[j].text)) {
            boundary_type = true;
          }
          ++j;
        }
        if (j + 1 >= toks.size() || !toks[j].is("(")) continue;
        const auto dv = domain_of.find(toks[j + 1].text);
        if (dv == domain_of.end()) continue;
        if (boundary_type) {
          boundary_vars.insert(toks[i - 4].text);
        } else {
          comp_of.emplace(toks[i - 4].text, dv->second);
        }
      }
    }
    if (comp_of.empty()) return;

    // Pass 3a: spawn-site mismatches.
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent || !toks[i + 1].is(".") ||
          !toks[i + 2].ident("spawn") || !toks[i + 3].is("(")) {
        continue;
      }
      const auto dv = domain_of.find(toks[i].text);
      if (dv == domain_of.end()) continue;
      const std::size_t close = match_forward(toks, i + 3);
      if (close >= toks.size()) continue;
      for (std::size_t j = i + 4; j < close; ++j) {
        const auto cp = comp_of.find(toks[j].text);
        if (cp == comp_of.end() || cp->second == dv->second) continue;
        out->push_back(
            {ctx.file.rel(), toks[i].line, std::string(name()),
             "task spawned on domain '" + std::string(toks[i].text) +
                 "' captures '" + std::string(toks[j].text) +
                 "', which is bound to a different domain; resuming there "
                 "would race its owner -- cross through a sim::Mailbox"});
        break;
      }
    }

    // Pass 3b: statement-level mixing. Statements are token runs between
    // ';'/'{'/'}'; a statement that spawns is pass 3a's business, and one
    // that mentions a boundary variable is a mediated crossing.
    std::size_t stmt = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].is(";") && !toks[i].is("{") && !toks[i].is("}")) continue;
      analyze_stmt(ctx, toks, stmt, i, comp_of, boundary_vars, out);
      stmt = i + 1;
    }
  }

 private:
  static void analyze_stmt(const RuleContext& ctx,
                           const std::vector<Token>& toks, std::size_t begin,
                           std::size_t end,
                           const std::map<std::string_view, int>& comp_of,
                           const std::set<std::string_view>& boundary_vars,
                           std::vector<Finding>* out) {
    std::size_t recv = 0;  // token index of the first component receiver
    int recv_domain = -1;
    for (std::size_t i = begin; i < end; ++i) {
      if (toks[i].kind != Tok::kIdent) continue;
      if (toks[i].ident("spawn") || boundary_vars.count(toks[i].text)) return;
      const auto cp = comp_of.find(toks[i].text);
      if (cp == comp_of.end()) continue;
      if (recv_domain < 0 && i + 1 < end &&
          (toks[i + 1].is(".") || toks[i + 1].is("->"))) {
        recv = i;
        recv_domain = cp->second;
      }
    }
    if (recv_domain >= 0) {
      for (std::size_t i = begin; i < end; ++i) {
        if (toks[i].kind != Tok::kIdent || i == recv) continue;
        const auto cp = comp_of.find(toks[i].text);
        if (cp == comp_of.end() || cp->second == recv_domain) continue;
        out->push_back(
            {ctx.file.rel(), toks[recv].line, std::string(name_static()),
             "'" + std::string(toks[recv].text) + "' and '" +
                 std::string(toks[i].text) +
                 "' are bound to different domains; direct calls between "
                 "them race -- route the interaction through a "
                 "Mailbox/Channel/Wire boundary"});
        return;
      }
      return;
    }

    // No direct receiver: with summaries, a resolved helper whose summary
    // touches its parameters makes this statement a wrapper-level access.
    // `helper(a, b)` where the helper calls methods on both params and the
    // caller's arguments live in different domains is the same race, one
    // call deep.
    if (ctx.prog == nullptr) return;
    for (const CallSite& site : ctx.prog->graph.sites(ctx.file_index)) {
      if (site.name_tok < begin || site.name_tok >= end || site.callee < 0) {
        continue;
      }
      const auto c = static_cast<std::size_t>(site.callee);
      if (!ctx.prog->graph.defs()[c].params_reliable) continue;
      const FuncSummary& cs = ctx.prog->summaries[c];
      for (std::size_t a = 0; a < site.args.size() && a < cs.params.size();
           ++a) {
        if (!cs.params[a].touched) continue;
        const std::string_view root = root_ident(toks, site.args[a]);
        const auto cp = comp_of.find(root);
        if (cp == comp_of.end()) continue;
        // A touched component: look for any *other* component in the
        // statement bound to a different domain.
        for (std::size_t i = begin; i < end; ++i) {
          if (toks[i].kind != Tok::kIdent || toks[i].text == root) continue;
          const auto op = comp_of.find(toks[i].text);
          if (op == comp_of.end() || op->second == cp->second) continue;
          const std::string helper(
              ctx.prog->graph.defs()[c].name.empty()
                  ? std::string_view("<lambda>")
                  : ctx.prog->graph.defs()[c].name);
          Finding fd{
              ctx.file.rel(), site.line, std::string(name_static()),
              "'" + helper + "' touches '" + std::string(root) +
                  "' while '" + std::string(toks[i].text) +
                  "' -- bound to a different domain -- is in the same "
                  "statement; the wrapper races across domains -- route "
                  "the interaction through a Mailbox/Channel/Wire boundary",
              {}};
          fd.path.push_back({site.line, "call into '" + helper +
                                            "' touches '" +
                                            std::string(root) + "'"});
          const ParamEffect& pe = cs.params[a];
          if (pe.touch_def >= 0 && pe.touch_line != 0) {
            const auto& tdef = ctx.prog->graph.defs()[static_cast<std::size_t>(
                pe.touch_def)];
            fd.path.push_back(
                {pe.touch_line, "method invoked on it here",
                 ctx.prog->file_rels[static_cast<std::size_t>(tdef.file)]});
          }
          fd.path.push_back({toks[i].line,
                             "'" + std::string(toks[i].text) +
                                 "' from another domain in the same "
                                 "statement"});
          out->push_back(std::move(fd));
          return;
        }
      }
    }
  }
  static std::string name_static() { return "cross-domain-touch"; }
};

}  // namespace

// Defined in rules_coro.cpp / rule_value_escape.cpp / rules_flow.cpp /
// typestate.cpp.
std::unique_ptr<Rule> make_dangling_capture();
std::unique_ptr<Rule> make_discarded_async();
std::unique_ptr<Rule> make_value_escape();
std::unique_ptr<Rule> make_resource_pairing();
std::unique_ptr<Rule> make_use_after_move();
std::unique_ptr<Rule> make_unchecked_status_path();
std::unique_ptr<Rule> make_summary_leak();

const std::vector<std::unique_ptr<Rule>>& all_rules() {
  static const std::vector<std::unique_ptr<Rule>> kRules = [] {
    std::vector<std::unique_ptr<Rule>> r;
    r.push_back(std::make_unique<BareUintSignature>());
    r.push_back(std::make_unique<Nondeterminism>());
    r.push_back(std::make_unique<RawDoorbell>());
    r.push_back(std::make_unique<UnboundedPoll>());
    r.push_back(std::make_unique<LambdaEvent>());
    r.push_back(std::make_unique<UncheckedPut>());
    r.push_back(std::make_unique<CrossDomainTouch>());
    r.push_back(make_dangling_capture());
    r.push_back(make_discarded_async());
    r.push_back(make_value_escape());
    r.push_back(make_resource_pairing());
    r.push_back(make_use_after_move());
    r.push_back(make_unchecked_status_path());
    r.push_back(make_summary_leak());
    for (auto& ts : make_typestate_rules()) r.push_back(std::move(ts));
    return r;
  }();
  return kRules;
}

const std::vector<RuleMeta>& rule_catalog() {
  static const std::vector<RuleMeta> kCatalog = [] {
    std::vector<RuleMeta> c;
    for (const auto& r : all_rules()) {
      c.push_back({r->name(), r->description()});
    }
    // The engine-level suppression-hygiene check has no Rule object but is
    // a real finding kind; it lives in the catalog so --list-rules, SARIF,
    // and the docs can never drift from what the tool actually reports.
    c.push_back({"stale-suppression",
                 "a 'snacc-lint: allow(<rule>)' marker that silences no "
                 "finding; remove it so suppressions stay meaningful"});
    return c;
  }();
  return kCatalog;
}

}  // namespace lint
