// liblint: bottom-up function summaries over the call graph.
//
// A FuncSummary abstracts what a function does to the outside world in the
// vocabulary the interprocedural rules speak:
//   * resources  -- acquire/release effects from the resource policy table,
//                   with "released on all paths" proven by the function's
//                   own CFG dataflow, keyed to a parameter when the
//                   receiver is one (so callers substitute their argument);
//   * params     -- status out-params written/checked, and parameters used
//                   as method-call receivers ("touched", the hook that lets
//                   a component inherit its domain through a wrapper);
//   * returns_async / is_coroutine / suspends_forever -- async frame facts
//                   (suspends_forever: a suspension point from which the
//                   CFG cannot reach function exit, e.g. inside a
//                   `while (true)` pump).
//
// Summaries are computed bottom-up: a local pass per function, then a
// fixpoint propagation that forwards effects through resolved call edges
// (status/touch facts first, then resource effects with callee events
// substituted at call sites). Everything is conservative on ambiguity: an
// unresolved call contributes nothing, except that handing a status
// out-pointer to an unknown callee counts as a write (the pre-existing
// local over-approximation, kept so `--no-summaries` is strictly less
// precise, never differently wrong).
//
// The whole table can be cached keyed by file content hashes: the cache is
// all-or-nothing (any changed file invalidates it), which is trivially
// sound -- a changed callee re-propagates through every caller.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lint/callgraph.hpp"
#include "lint/cfg.hpp"

namespace lint {

struct ResourceEffect {
  std::size_t row = 0;  ///< resource_pair_policy() index
  /// Receiver is the function's parameter #recv_param; -1 for a named
  /// receiver (member/global), which substitutes into callers textually.
  int recv_param = -1;
  std::string recv;  ///< receiver identifier as written in the function
  bool may_acquire = false;
  bool may_release = false;
  /// True when every acquire of this key is released on all paths to exit
  /// (the balanced-helper case: callers see no net effect).
  bool releases_all = false;
  std::uint32_t acquire_line = 0;  ///< first acquire, for code flows
  std::uint32_t release_line = 0;
};

struct ParamEffect {
  bool is_status_out = false;  ///< PutStatus* / PutStatus& parameter
  bool status_written = false;
  bool status_checked = false;
  /// Parameter is the receiver of a method call somewhere below this
  /// function (directly or through a resolved callee).
  bool touched = false;
  int touch_def = -1;  ///< def id where the concrete method call lives
  std::uint32_t touch_line = 0;
  std::uint32_t write_line = 0;
};

/// Typestate events a function performs on one tracked object, in program
/// order -- the protocol-effect field of the summary. Only *unconditional*
/// sequences are recorded: every event lies in a block that is on every
/// entry-to-exit path and in no cycle, so the order is fixed and a caller
/// can splice the sequence in at the call site. Anything conditional,
/// looped, or longer than a small cap makes the whole key opaque (the
/// exact same conservative-on-ambiguity policy the resource effects use).
struct ProtocolEffect {
  std::size_t protocol = 0;  ///< typestate_protocols() index
  /// Receiver is the function's parameter #recv_param; -1 for a named
  /// receiver (member/global), which substitutes into callers textually.
  int recv_param = -1;
  std::string recv;         ///< receiver identifier as written
  std::vector<int> events;  ///< protocol event ids, in execution order
  std::vector<std::uint32_t> lines;  ///< parallel to `events`, for code flows
};

struct FuncSummary {
  bool is_coroutine = false;
  bool returns_async = false;
  bool suspends_forever = false;
  std::vector<ResourceEffect> resources;
  /// Parallel to the FuncScope's params; empty when params are unreliable.
  std::vector<ParamEffect> params;
  std::vector<ProtocolEffect> protocols;
};

struct ProgramInfo {
  CallGraph graph;
  std::vector<FuncSummary> summaries;  ///< parallel to graph.defs()
  /// Scan-root-relative path per file index (for cross-file PathSteps).
  std::vector<std::string> file_rels;
};

/// Builds the whole-program layer: call graph + propagated summaries.
/// `files`, `scopes`, `cfgs` are parallel per-file vectors; `cfgs` entries
/// are consulted (and lazily built) sequentially. When `cache_path` is
/// non-empty, a cache keyed by per-file content hashes is consulted first
/// and rewritten after a recompute; `cache_hit` (optional) reports whether
/// the summary table was loaded instead of computed.
ProgramInfo build_program(const std::vector<const SourceFile*>& files,
                          const std::vector<ScopeInfo>& scopes,
                          const std::vector<const CfgCache*>& cfgs,
                          const std::string& cache_path, bool* cache_hit);

/// One resource event attributed to a CFG block of a function, as consumed
/// by the flow rules: either a direct `recv.verb()` call in the function's
/// own body (receiver matched against the policy glob) or an effect
/// substituted from a resolved callee's summary at a call site.
struct ResourceEventEx {
  std::size_t row = 0;
  std::string recv;      ///< caller-side receiver identifier
  bool acquire = false;  ///< else: release
  std::uint32_t line = 0;
  std::size_t tok = 0;  ///< ordering position within the block
  int callee_def = -1;  ///< >= 0 when substituted from a callee summary
  std::uint32_t callee_line = 0;  ///< event's line inside that callee
};

/// Per-CFG-block resource events of `scopes.funcs[func_idx]`. With
/// `prog == nullptr` this reproduces the pre-interprocedural behaviour
/// exactly (direct events only) -- the `--no-summaries` path.
std::vector<std::vector<ResourceEventEx>> resource_events(
    const ProgramInfo* prog, int file, const SourceFile& sf,
    const ScopeInfo& scopes, const Cfg& cfg, int func_idx);

/// One typestate event attributed to a CFG block: a direct `recv.verb()`
/// call on a tracked object, or a callee's ProtocolEffect spliced in at a
/// call site (callee_def >= 0, with the event's line inside that callee).
struct TsEventRef {
  std::size_t protocol = 0;
  int event = 0;
  std::string recv;  ///< caller-side receiver identifier
  std::uint32_t line = 0;
  std::size_t tok = 0;  ///< ordering position within the block
  int callee_def = -1;
  std::uint32_t callee_line = 0;
};

/// Per-CFG-block typestate events of `scopes.funcs[func_idx]` for one
/// protocol table. Same degradation contract as resource_events: with
/// `prog == nullptr` only direct events appear (`--no-summaries`).
std::vector<std::vector<TsEventRef>> typestate_events(
    const ProgramInfo* prog, int file, const SourceFile& sf,
    const ScopeInfo& scopes, const Cfg& cfg, int func_idx,
    std::size_t protocol);

}  // namespace lint
