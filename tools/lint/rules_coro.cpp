// Coroutine-lifetime rules. These need the scope tracker: which bodies are
// coroutines, where their suspension points sit, and what they capture --
// facts that are simply not expressible line-by-line.
#include <algorithm>
#include <array>

#include "lint/rules.hpp"
#include "lint/summary.hpp"

namespace lint {

namespace {

/// Identifiers that look like uses but never name captured state.
bool builtin_name(std::string_view t) {
  static constexpr std::array<std::string_view, 30> kNames = {
      "auto",     "bool",   "break",    "case",   "char",     "const",
      "continue", "double", "else",     "false",  "float",    "for",
      "if",       "int",    "nullptr",  "return", "sizeof",   "static",
      "std",      "switch", "this",     "true",   "void",     "while",
      "co_await", "co_return", "co_yield", "unsigned", "long", "short"};
  return std::find(kNames.begin(), kNames.end(), t) != kNames.end();
}

/// True when the identifier at `i` is a free-standing use: not a member
/// access (`x.f`, `x->f`), not a qualified name (`ns::f`, `f::g`), and not
/// a declaration keyword.
bool free_use(const std::vector<Token>& toks, std::size_t i) {
  if (toks[i].kind != Tok::kIdent || builtin_name(toks[i].text)) return false;
  if (i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->") ||
                toks[i - 1].is("::"))) {
    return false;
  }
  if (i + 1 < toks.size() && toks[i + 1].is("::")) return false;
  return true;
}

/// Token ranges of `f`'s direct children, to keep nested lambdas' bodies
/// out of `f`'s own use analysis.
std::vector<std::pair<std::size_t, std::size_t>> child_ranges(
    const ScopeInfo& scopes, int idx) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (const FuncScope& g : scopes.funcs) {
    if (g.parent == idx) out.emplace_back(g.body_begin, g.body_end);
  }
  return out;
}

bool in_ranges(const std::vector<std::pair<std::size_t, std::size_t>>& rs,
               std::size_t i) {
  for (const auto& [b, e] : rs) {
    if (i >= b && i <= e) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// dangling-capture
//
// A lambda coroutine's captures live in the *closure object*, not in the
// coroutine frame. The closure is usually a temporary that dies at the end
// of the full expression that started the coroutine, while the frame lives
// on across suspension points -- so a reference capture (or a reference
// parameter bound to a caller temporary) read after the first co_await is a
// read through a dangling reference. Uses *before* the first suspension run
// synchronously inside the starting expression and are fine, which is what
// makes this a scope/suspension question no regex can answer.

class DanglingCapture final : public Rule {
 public:
  std::string_view name() const override { return "dangling-capture"; }
  std::string_view description() const override {
    return "coroutine lambda reference capture or reference parameter used "
           "after a suspension point";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    const auto& toks = ctx.file.tokens();
    for (std::size_t fi = 0; fi < ctx.scopes.funcs.size(); ++fi) {
      const FuncScope& f = ctx.scopes.funcs[fi];
      if (!f.is_coroutine || f.suspends.empty()) continue;

      const std::size_t first_susp = f.suspends.front();
      const auto nested = child_ranges(ctx.scopes, static_cast<int>(fi));

      if (f.is_lambda && f.has_ref_capture()) {
        bool default_ref = false;
        std::vector<std::string_view> ref_names;
        for (const Capture& c : f.captures) {
          if (c.kind == Capture::kDefaultRef) default_ref = true;
          if (c.kind == Capture::kByRef) ref_names.push_back(c.name);
        }
        if (default_ref) {
          // With [&] the implicit capture set is unknowable statically, and
          // every use after the first suspension is suspect: flag the
          // lambda itself.
          out->push_back(
              {ctx.file.rel(), f.header_line, std::string(name()),
               "coroutine lambda with default reference capture [&]: "
               "captured references live in the closure object, which is "
               "destroyed while the frame is suspended"});
        }
        report_uses(ctx, f, first_susp, nested, ref_names,
                    "reference capture '", out);
      }

      // Reference parameters: for lambdas, any reference parameter read
      // after suspension is suspect (the common spawn-a-lambda idiom binds
      // them to soon-dead locals). For named functions only rvalue-ref
      // parameters are flagged -- an lvalue-ref parameter in structured
      // `co_await child()` use is kept alive by the caller, but a `T&&`
      // parameter almost always binds a temporary.
      std::vector<std::string_view> ref_params;
      for (const Param& p : f.params) {
        if (f.is_lambda ? (p.is_lvalue_ref || p.is_rvalue_ref)
                        : p.is_rvalue_ref) {
          ref_params.push_back(p.name);
        }
      }
      report_uses(ctx, f, first_susp, nested, ref_params,
                  "reference parameter '", out);
      (void)toks;
    }
  }

 private:
  void report_uses(const RuleContext& ctx, const FuncScope& f,
                   std::size_t first_susp,
                   const std::vector<std::pair<std::size_t, std::size_t>>& nested,
                   const std::vector<std::string_view>& names,
                   std::string_view what, std::vector<Finding>* out) const {
    if (names.empty()) return;
    const auto& toks = ctx.file.tokens();
    // The awaited expression itself (`co_await s.delay(x)`) runs *before*
    // the coroutine suspends, so scanning starts after the end of the
    // statement containing the first suspension, not after the keyword.
    std::size_t start = first_susp;
    while (start < f.body_end && start < toks.size() &&
           !toks[start].is(";")) {
      ++start;
    }
    std::vector<std::string_view> reported;
    for (std::size_t i = start + 1; i < f.body_end && i < toks.size(); ++i) {
      if (in_ranges(nested, i)) continue;
      if (!free_use(toks, i)) continue;
      if (std::find(names.begin(), names.end(), toks[i].text) == names.end())
        continue;
      if (std::find(reported.begin(), reported.end(), toks[i].text) !=
          reported.end())
        continue;
      reported.push_back(toks[i].text);
      out->push_back({ctx.file.rel(), toks[i].line, std::string(name()),
                      std::string(what) + std::string(toks[i].text) +
                          "' used after a suspension point; the referent may "
                          "be gone by the time the coroutine resumes -- "
                          "capture/pass by value or keep the owner alive"});
    }
  }
};

// ---------------------------------------------------------------------------
// discarded-async
//
// Tasks are lazy: a `foo();` statement that drops a sim::Task destroys the
// frame before it ever runs, and a dropped sim::Future loses the only
// handle to a completion. The rule flags statement-position calls to any
// function whose declared return type mentions Task or Future (symbol table
// built across every scanned file). With the program layer on, the call
// graph extends the reach to calls the name table cannot type: a lambda
// bound to a name (`auto pump = [..]() -> sim::Task {..}; pump();`) and an
// `auto` function whose asyncness comes from summary propagation
// (`auto relay() { return job(); }`). `(void)`-casting is the explicit
// acknowledgement for posted operations and is not flagged, matching the
// [[nodiscard]] attributes on the types themselves.

class DiscardedAsync final : public Rule {
 public:
  std::string_view name() const override { return "discarded-async"; }
  std::string_view description() const override {
    return "result of a Task/Future-returning call is neither co_awaited, "
           "stored, nor passed on";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    const auto& toks = ctx.file.tokens();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent || !toks[i + 1].is("(")) continue;
      if (ctx.async_fns.find(toks[i].text) == ctx.async_fns.end()) continue;
      // Must be a full statement: `expr(...);` with nothing consuming the
      // result.
      const std::size_t close = match_forward(toks, i + 1);
      if (close + 1 >= toks.size() || !toks[close + 1].is(";")) continue;
      if (!at_statement_start(toks, i)) continue;
      // Skip declarations/definitions: `sim::Task name(...);` has type
      // tokens before the name, which at_statement_start already rejects
      // (the name is preceded by an identifier, not ; { }).
      out->push_back(
          {ctx.file.rel(), toks[i].line, std::string(name()),
       "result of Task/Future-returning '" + std::string(toks[i].text) +
               "' is discarded: the coroutine frame is destroyed before it "
               "runs; co_await it, store it, pass it to spawn(), or "
               "(void)-cast a deliberately posted operation"});
    }

    // Interprocedural extension: statement-position calls whose *resolved*
    // callee is async even though the name table cannot see it (bound
    // lambdas, propagated `auto` return types). Sites whose name is in the
    // table were already handled above; skipping them avoids duplicates.
    if (ctx.prog == nullptr) return;
    for (const CallSite& site : ctx.prog->graph.sites(ctx.file_index)) {
      if (!site.stmt_pos || site.callee < 0) continue;
      if (ctx.async_fns.find(site.callee_name) != ctx.async_fns.end()) {
        continue;
      }
      const auto c = static_cast<std::size_t>(site.callee);
      if (!ctx.prog->summaries[c].returns_async) continue;
      const std::string callee(site.callee_name.empty() ? "<lambda>"
                                                        : site.callee_name);
      Finding fd{
          ctx.file.rel(), site.line, std::string(name()),
          "result of Task/Future-returning '" + callee +
              "' is discarded: the coroutine frame is destroyed before it "
              "runs; co_await it, store it, pass it to spawn(), or "
              "(void)-cast a deliberately posted operation",
          {}};
      const auto& cd = ctx.prog->graph.defs()[c];
      fd.path.push_back({site.line, "'" + callee + "' called and dropped"});
      fd.path.push_back(
          {cd.line, "defined as async here",
           ctx.prog->file_rels[static_cast<std::size_t>(cd.file)]});
      out->push_back(std::move(fd));
    }
  }

 private:
  /// Walks the receiver chain (`a.b().c`, `ns::f`) back to the start of the
  /// expression; true when the token before it ends a statement.
  static bool at_statement_start(const std::vector<Token>& toks,
                                 std::size_t i) {
    std::size_t j = i;
    while (true) {
      // Qualified name: ns::f / Class::f.
      while (j >= 2 && toks[j - 1].is("::") &&
             toks[j - 2].kind == Tok::kIdent) {
        j -= 2;
      }
      if (j == 0) return true;
      const Token& p = toks[j - 1];
      if (p.is(".") || p.is("->")) {
        if (j < 2) return false;
        const Token& recv = toks[j - 2];
        if (recv.kind == Tok::kIdent) {
          j -= 2;
          continue;
        }
        if (recv.is(")") || recv.is("]")) {
          const std::size_t open = match_backward(toks, j - 2);
          if (open == SIZE_MAX) return false;
          if (open >= 1 && toks[open - 1].kind == Tok::kIdent) {
            j = open - 1;
            continue;
          }
          j = open;
          continue;
        }
        return false;
      }
      return p.is(";") || p.is("{") || p.is("}");
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_dangling_capture() {
  return std::make_unique<DanglingCapture>();
}
std::unique_ptr<Rule> make_discarded_async() {
  return std::make_unique<DiscardedAsync>();
}

}  // namespace lint
