#include "lint/sarif.hpp"

#include <map>
#include <sstream>

#include "lint/engine.hpp"
#include "lint/rules.hpp"

namespace lint {

namespace {

/// JSON string escape (control chars, quote, backslash).
std::string esc(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings,
                     const ScanStats* stats) {
  // The driver rule table IS the catalog (all rules + the engine-level
  // stale check), so results always resolve a ruleIndex.
  const std::vector<RuleMeta>& rules = rule_catalog();
  std::map<std::string_view, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules.size(); ++i) rule_index[rules[i].name] = i;

  std::ostringstream out;
  out << "{\n"
         "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"snacc-lint\",\n"
         "          \"version\": \"6.0.0\",\n"
         "          \"informationUri\": "
         "\"https://example.invalid/snacc/docs/STATIC_ANALYSIS.md\",\n"
         "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << "            {\n"
        << "              \"id\": \"" << esc(rules[i].name) << "\",\n"
        << "              \"shortDescription\": { \"text\": \""
        << esc(rules[i].description) << "\" },\n"
        << "              \"defaultConfiguration\": { \"level\": \"error\" }\n"
        << "            }" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
         "        }\n"
         "      },\n"
         "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const auto it = rule_index.find(f.rule);
    out << "        {\n"
        << "          \"ruleId\": \"" << esc(f.rule) << "\",\n";
    if (it != rule_index.end()) {
      out << "          \"ruleIndex\": " << it->second << ",\n";
    }
    out << "          \"level\": \"error\",\n"
        << "          \"message\": { \"text\": \"" << esc(f.message)
        << "\" },\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": { \"uri\": \"" << esc(f.file)
        << "\" },\n"
        << "                \"region\": { \"startLine\": "
        << (f.line == 0 ? 1 : f.line) << " }\n"
        << "              }\n"
        << "            }\n"
        << "          ]";
    // Path-sensitive findings carry the execution path as one threadFlow,
    // which GitHub code scanning renders as a step-by-step walkthrough.
    if (!f.path.empty()) {
      out << ",\n          \"codeFlows\": [\n"
             "            { \"threadFlows\": [ { \"locations\": [\n";
      for (std::size_t s = 0; s < f.path.size(); ++s) {
        const PathStep& step = f.path[s];
        // Interprocedural steps carry their own file (a callee body); a
        // step with no file lives in the finding's file.
        out << "              { \"location\": {\n"
            << "                \"physicalLocation\": {\n"
            << "                  \"artifactLocation\": { \"uri\": \""
            << esc(step.file.empty() ? f.file : step.file) << "\" },\n"
            << "                  \"region\": { \"startLine\": "
            << (step.line == 0 ? 1 : step.line) << " }\n"
            << "                },\n"
            << "                \"message\": { \"text\": \"" << esc(step.note)
            << "\" }\n"
            << "              } }" << (s + 1 < f.path.size() ? "," : "")
            << "\n";
      }
      out << "            ] } ] }\n"
             "          ]";
    }
    out << "\n        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]";
  // Per-phase and per-rule wall-time plus whole-program counters, so a CI
  // artifact records where the 30-second budget went.
  if (stats != nullptr) {
    out << ",\n      \"properties\": {\n"
        << "        \"phaseWallMs\": {\n"
        << "          \"load\": " << stats->load_ms << ",\n"
        << "          \"scope\": " << stats->scope_ms << ",\n"
        << "          \"summaries\": " << stats->summary_ms << ",\n"
        << "          \"rules\": " << stats->rules_ms << ",\n"
        << "          \"post\": " << stats->post_ms << "\n"
        << "        },\n"
        << "        \"ruleWallMs\": {\n";
    for (std::size_t i = 0; i < stats->rule_ms.size(); ++i) {
      out << "          \"" << esc(stats->rule_ms[i].first)
          << "\": " << stats->rule_ms[i].second
          << (i + 1 < stats->rule_ms.size() ? "," : "") << "\n";
    }
    out << "        },\n"
        << "        \"program\": {\n"
        << "          \"summaries\": " << (stats->summaries ? "true" : "false")
        << ",\n"
        << "          \"cacheHit\": " << (stats->cache_hit ? "true" : "false")
        << ",\n"
        << "          \"defs\": " << stats->defs << ",\n"
        << "          \"callSites\": " << stats->call_sites << ",\n"
        << "          \"resolvedCalls\": " << stats->resolved_calls << "\n"
        << "        }\n"
        << "      }";
  }
  out << "\n    }\n"
         "  ]\n"
         "}\n";
  return out.str();
}

}  // namespace lint
