#include "lint/sarif.hpp"

#include <map>
#include <sstream>

#include "lint/rules.hpp"

namespace lint {

namespace {

/// JSON string escape (control chars, quote, backslash).
std::string esc(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  // Rule table: catalog order, then the engine-level stale check.
  std::vector<std::pair<std::string, std::string>> rules;
  for (const auto& r : all_rules()) {
    rules.emplace_back(std::string(r->name()), std::string(r->description()));
  }
  rules.emplace_back("stale-suppression",
                     "a 'snacc-lint: allow(<rule>)' marker that silences no "
                     "finding; remove it so suppressions stay meaningful");
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules.size(); ++i) rule_index[rules[i].first] = i;

  std::ostringstream out;
  out << "{\n"
         "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"snacc-lint\",\n"
         "          \"version\": \"2.0.0\",\n"
         "          \"informationUri\": "
         "\"https://example.invalid/snacc/docs/STATIC_ANALYSIS.md\",\n"
         "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << "            {\n"
        << "              \"id\": \"" << esc(rules[i].first) << "\",\n"
        << "              \"shortDescription\": { \"text\": \""
        << esc(rules[i].second) << "\" },\n"
        << "              \"defaultConfiguration\": { \"level\": \"error\" }\n"
        << "            }" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
         "        }\n"
         "      },\n"
         "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const auto it = rule_index.find(f.rule);
    out << "        {\n"
        << "          \"ruleId\": \"" << esc(f.rule) << "\",\n";
    if (it != rule_index.end()) {
      out << "          \"ruleIndex\": " << it->second << ",\n";
    }
    out << "          \"level\": \"error\",\n"
        << "          \"message\": { \"text\": \"" << esc(f.message)
        << "\" },\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": { \"uri\": \"" << esc(f.file)
        << "\" },\n"
        << "                \"region\": { \"startLine\": "
        << (f.line == 0 ? 1 : f.line) << " }\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
         "    }\n"
         "  ]\n"
         "}\n";
  return out.str();
}

}  // namespace lint
