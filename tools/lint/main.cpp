// snacc-lint: CLI front-end over liblint.
//
//   snacc-lint [options] <path>...
//
// Exit codes (kept from the original regex tool): 0 clean, 1 findings,
// 2 usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "lint/engine.hpp"
#include "lint/rules.hpp"
#include "lint/sarif.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: snacc-lint [options] <path>...\n"
      "\n"
      "Token-level static analysis for the SNAcc tree. Paths may be\n"
      "directories (recursed; findings are reported relative to the\n"
      "directory's parent, e.g. src/...) or single files.\n"
      "\n"
      "options:\n"
      "  --sarif <file>       also write findings as SARIF 2.1.0\n"
      "  --jobs <n>           scan with n threads (default: hardware)\n"
      "  --no-summaries       skip the whole-program pass (call graph +\n"
      "                       function summaries); interprocedural rules\n"
      "                       degrade to per-function precision\n"
      "  --summary-cache <f>  cache the summary table in <f>, keyed by\n"
      "                       per-file content hashes (all-or-nothing)\n"
      "  --stats              print per-phase / per-rule wall-time and\n"
      "                       call-graph counters to stderr\n"
      "  --bench-json <file>  write the scan's timings and counters as a\n"
      "                       BENCH_*.json-shaped perf artifact\n"
      "  --list-rules         print the rule catalog and exit\n"
      "  -h, --help           this message\n");
}

/// Writes the scan stats in the shape the bench harnesses emit (see
/// bench/bench_common.hpp JsonReport): a "bench" tag, integer run-shape
/// fields, then a flat "metrics" object -- so the lint scan's own wall
/// time joins the perf trajectory next to the BENCH_*.json artifacts.
bool write_bench_json(const std::string& path, const lint::ScanResult& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const lint::ScanStats& st = r.stats;
  std::fprintf(f, "{\n  \"bench\": \"lint\",");
  std::fprintf(f, "\n  \"files_scanned\": %zu,", r.files_scanned);
  std::fprintf(f, "\n  \"findings\": %zu,", r.findings.size());
  std::fprintf(f, "\n  \"defs\": %zu,", st.defs);
  std::fprintf(f, "\n  \"call_sites\": %zu,", st.call_sites);
  std::fprintf(f, "\n  \"resolved_calls\": %zu,", st.resolved_calls);
  std::fprintf(f, "\n  \"summaries\": %d,", st.summaries ? 1 : 0);
  std::fprintf(f, "\n  \"cache_hit\": %d,", st.cache_hit ? 1 : 0);
  std::fprintf(f, "\n  \"metrics\": {");
  std::fprintf(f, "\n    \"load_ms\": %.3f,", st.load_ms);
  std::fprintf(f, "\n    \"scope_ms\": %.3f,", st.scope_ms);
  std::fprintf(f, "\n    \"summary_ms\": %.3f,", st.summary_ms);
  std::fprintf(f, "\n    \"rules_ms\": %.3f,", st.rules_ms);
  std::fprintf(f, "\n    \"post_ms\": %.3f", st.post_ms);
  for (const auto& [rule, ms] : st.rule_ms) {
    std::string key = "rule_" + rule + "_ms";
    for (char& c : key) {
      if (c == '-') c = '_';
    }
    std::fprintf(f, ",\n    \"%s\": %.3f", key.c_str(), ms);
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lint::Options opts;
  std::string sarif_path;
  std::string bench_json_path;
  bool show_stats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "snacc-lint: %s requires an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--list-rules") {
      // The catalog already includes the engine-level stale-suppression
      // check; nothing is hard-coded here (see lint::rule_catalog()).
      for (const lint::RuleMeta& r : lint::rule_catalog()) {
        std::printf("%-22s %s\n", std::string(r.name).c_str(),
                    std::string(r.description).c_str());
      }
      return 0;
    } else if (arg == "--sarif") {
      sarif_path = next("--sarif");
    } else if (arg == "--bench-json") {
      bench_json_path = next("--bench-json");
    } else if (arg == "--no-summaries") {
      opts.summaries = false;
    } else if (arg == "--summary-cache") {
      opts.cache_path = next("--summary-cache");
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--jobs") {
      const char* val = next("--jobs");
      char* end = nullptr;
      const long n = std::strtol(val, &end, 10);
      if (end == val || *end != '\0' || n < 0 || n > 4096) {
        std::fprintf(stderr,
                     "snacc-lint: --jobs expects a thread count in [0, 4096] "
                     "(0 = hardware), got '%s'\n",
                     val);
        return 2;
      }
      opts.jobs = static_cast<unsigned>(n);
      if (opts.jobs == 0) {
        opts.jobs = std::thread::hardware_concurrency();
        if (opts.jobs == 0) opts.jobs = 1;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "snacc-lint: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      opts.roots.push_back(arg);
    }
  }
  if (opts.roots.empty()) {
    usage(stderr);
    return 2;
  }

  const lint::ScanResult result = lint::scan(opts);
  if (!result.error.empty()) {
    std::fprintf(stderr, "%s\n", result.error.c_str());
    return 2;
  }

  for (const lint::Finding& f : result.findings) {
    std::printf("%s:%u: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  std::printf("snacc-lint: %zu file(s) scanned, %zu finding(s)\n",
              result.files_scanned, result.findings.size());

  if (show_stats) {
    const lint::ScanStats& st = result.stats;
    std::fprintf(stderr,
                 "snacc-lint stats:\n"
                 "  phase wall-time (ms): load %.1f, scope %.1f, "
                 "summaries %.1f, rules %.1f, post %.1f\n",
                 st.load_ms, st.scope_ms, st.summary_ms, st.rules_ms,
                 st.post_ms);
    if (st.summaries) {
      std::fprintf(stderr,
                   "  program: %zu defs, %zu call sites, %zu resolved%s\n",
                   st.defs, st.call_sites, st.resolved_calls,
                   st.cache_hit ? " (summary cache hit)" : "");
    } else {
      std::fprintf(stderr, "  program: summaries disabled\n");
    }
    std::fprintf(stderr, "  per-rule (ms, CPU-sum across threads):\n");
    for (const auto& [rule, ms] : st.rule_ms) {
      std::fprintf(stderr, "    %-22s %8.1f\n", rule.c_str(), ms);
    }
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path);
    if (!out) {
      std::fprintf(stderr, "snacc-lint: cannot write '%s'\n",
                   sarif_path.c_str());
      return 2;
    }
    out << lint::to_sarif(result.findings, &result.stats);
  }
  if (!bench_json_path.empty() &&
      !write_bench_json(bench_json_path, result)) {
    std::fprintf(stderr, "snacc-lint: cannot write '%s'\n",
                 bench_json_path.c_str());
    return 2;
  }
  return result.findings.empty() ? 0 : 1;
}
