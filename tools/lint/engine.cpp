#include "lint/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <mutex>
#include <set>
#include <thread>

#include "lint/rules.hpp"
#include "lint/scope.hpp"
#include "lint/summary.hpp"

namespace fs = std::filesystem;

namespace lint {

namespace {

/// Monotonic nanoseconds for phase/rule wall-time accounting. Timing is
/// reporting-only output (--stats, SARIF run properties): no finding ever
/// depends on a clock value, so the nondeterminism rule's concern does not
/// apply here.
std::uint64_t now_ns() {
  // snacc-lint: allow(nondeterminism): reporting-only timing, see above.
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t).count());
}

double to_ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh" || ext == ".cxx";
}

/// Runs fn(i) for i in [0, n) across `jobs` worker threads. Work items are
/// independent; each writes only its own output slot, so no locking.
void for_each_index(std::size_t n, unsigned jobs,
                    const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, n));
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (unsigned t = 0; t < jobs; ++t) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

/// Collects lintable files under `roots`. For a directory root, reported
/// paths are `<root basename>/<path within root>` so path-scoped rules see
/// the same `src/...` form whether invoked as `snacc-lint src` from the
/// repo or with an absolute path from ctest. Single-file roots report the
/// path as given.
std::vector<std::pair<std::string, std::string>> collect(
    const std::vector<std::string>& roots, std::string* error) {
  std::vector<std::pair<std::string, std::string>> out;  // {disk path, rel}
  for (const std::string& root : roots) {
    std::error_code ec;
    const fs::path rp{root};
    if (fs::is_regular_file(rp, ec)) {
      out.emplace_back(root, rp.generic_string());
      continue;
    }
    if (!fs::is_directory(rp, ec)) {
      *error = "snacc-lint: cannot open '" + root + "'";
      return {};
    }
    const std::string base = rp.filename().empty()
                                 ? rp.parent_path().filename().generic_string()
                                 : rp.filename().generic_string();
    for (auto it = fs::recursive_directory_iterator(rp, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (!it->is_regular_file(ec) || !lintable(it->path())) continue;
      const std::string within =
          fs::relative(it->path(), rp, ec).generic_string();
      out.emplace_back(it->path().string(), base + "/" + within);
    }
    if (ec) {
      *error = "snacc-lint: error walking '" + root + "': " + ec.message();
      return {};
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return out;
}

}  // namespace

ScanResult analyze(std::vector<std::unique_ptr<SourceFile>> files,
                   const AnalyzeOptions& opts) {
  const unsigned jobs = opts.jobs;
  ScanResult result;
  result.files_scanned = files.size();
  result.stats.summaries = opts.summaries;

  // Phase A ran in the caller (files are already tokenized); here we do the
  // scope analysis once per file and pool the async function names.
  std::uint64_t t0 = now_ns();
  std::vector<ScopeInfo> scopes(files.size());
  for_each_index(files.size(), jobs, [&](std::size_t i) {
    scopes[i] = analyze_scopes(files[i]->tokens());
  });
  // Pool declared async names across all files, then drop any name that is
  // *also* declared sync somewhere: name-only resolution cannot tell which
  // overload a call site binds, so ambiguous names must not fire.
  std::set<std::string, std::less<>> async_fns;
  std::set<std::string, std::less<>> sync_fns;
  for (const ScopeInfo& s : scopes) {
    async_fns.insert(s.async_fn_names.begin(), s.async_fn_names.end());
    sync_fns.insert(s.sync_fn_names.begin(), s.sync_fn_names.end());
  }
  for (const std::string& s : sync_fns) async_fns.erase(s);
  result.stats.scope_ms = to_ms(now_ns() - t0);

  // Pass 1 of 2: the whole-program layer. Sequential by design -- def ids,
  // propagation order and therefore every summary are identical at any
  // --jobs value. The CFG caches are shared with the rules pass below:
  // each file's cache is only ever touched by one thread at a time
  // (sequentially here, by that file's single worker there).
  std::vector<std::unique_ptr<CfgCache>> cfg_store;
  cfg_store.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    cfg_store.push_back(
        std::make_unique<CfgCache>(files[i]->tokens(), scopes[i]));
  }
  ProgramInfo prog;
  bool have_prog = false;
  if (opts.summaries) {
    t0 = now_ns();
    std::vector<const SourceFile*> fptrs;
    std::vector<const CfgCache*> cptrs;
    fptrs.reserve(files.size());
    cptrs.reserve(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
      fptrs.push_back(files[i].get());
      cptrs.push_back(cfg_store[i].get());
    }
    prog = build_program(fptrs, scopes, cptrs, opts.cache_path,
                         &result.stats.cache_hit);
    have_prog = true;
    result.stats.summary_ms = to_ms(now_ns() - t0);
    result.stats.defs = prog.graph.defs().size();
    result.stats.call_sites = prog.graph.call_site_count();
    result.stats.resolved_calls = prog.graph.resolved_count();
  }

  // Pass 2 of 2: every rule over every file's shared token stream. Each
  // file writes its own findings slot; no cross-file state is mutated
  // (the program layer is read-only from here on).
  t0 = now_ns();
  const auto& rules = all_rules();
  std::vector<std::atomic<std::uint64_t>> rule_ns(rules.size());
  std::vector<std::vector<Finding>> raw(files.size());
  for_each_index(files.size(), jobs, [&](std::size_t i) {
    const CfgCache& cfgs = *cfg_store[i];
    const RuleContext ctx{*files[i], scopes[i], async_fns, cfgs,
                          have_prog ? &prog : nullptr,
                          have_prog ? static_cast<int>(i) : -1};
    for (std::size_t r = 0; r < rules.size(); ++r) {
      const std::uint64_t rt = now_ns();
      rules[r]->run(ctx, &raw[i]);
      rule_ns[r].fetch_add(now_ns() - rt, std::memory_order_relaxed);
    }
  });
  result.stats.rules_ms = to_ms(now_ns() - t0);
  result.stats.rule_ms.reserve(rules.size());
  for (std::size_t r = 0; r < rules.size(); ++r) {
    result.stats.rule_ms.emplace_back(
        std::string(rules[r]->name()),
        to_ms(rule_ns[r].load(std::memory_order_relaxed)));
  }

  // Sequential post-pass: suppressions (order-dependent bookkeeping), then
  // stale-suppression findings for markers that silenced nothing.
  t0 = now_ns();
  for (std::size_t i = 0; i < files.size(); ++i) {
    SourceFile& sf = *files[i];
    for (Finding& f : raw[i]) {
      if (!sf.suppress(f.rule, f.line)) {
        result.findings.push_back(std::move(f));
      }
    }
    for (const Suppression& s : sf.suppressions()) {
      if (s.used) continue;
      result.findings.push_back(
          {sf.rel(), s.line, "stale-suppression",
           "suppression 'allow(" + s.rule +
               ")' matches no finding; remove it or fix the rule name"});
    }
  }

  std::sort(result.findings.begin(), result.findings.end());
  result.stats.post_ms = to_ms(now_ns() - t0);
  return result;
}

ScanResult analyze(std::vector<std::unique_ptr<SourceFile>> files,
                   unsigned jobs) {
  AnalyzeOptions opts;
  opts.jobs = jobs;
  return analyze(std::move(files), opts);
}

ScanResult scan(const Options& opts) {
  ScanResult result;
  const auto paths = collect(opts.roots, &result.error);
  if (!result.error.empty()) return result;

  const std::uint64_t t0 = now_ns();
  std::vector<std::unique_ptr<SourceFile>> files(paths.size());
  std::atomic<bool> load_failed{false};
  std::string failed_path;
  std::mutex fail_mu;
  for_each_index(paths.size(), opts.jobs, [&](std::size_t i) {
    files[i] = SourceFile::load(paths[i].first, paths[i].second);
    if (!files[i]) {
      load_failed = true;
      std::lock_guard<std::mutex> lock(fail_mu);
      failed_path = paths[i].first;
    }
  });
  if (load_failed) {
    result.error = "snacc-lint: cannot read '" + failed_path + "'";
    return result;
  }
  const double load_ms = to_ms(now_ns() - t0);

  AnalyzeOptions aopts;
  aopts.jobs = opts.jobs;
  aopts.summaries = opts.summaries;
  aopts.cache_path = opts.cache_path;
  ScanResult analyzed = analyze(std::move(files), aopts);
  result.findings = std::move(analyzed.findings);
  result.files_scanned = analyzed.files_scanned;
  result.stats = std::move(analyzed.stats);
  result.stats.load_ms = load_ms;
  return result;
}

}  // namespace lint
