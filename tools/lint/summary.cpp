#include "lint/summary.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <set>

#include "lint/dataflow.hpp"
#include "lint/rules.hpp"
#include "lint/typestate.hpp"

namespace lint {

namespace {

std::vector<std::pair<std::size_t, std::size_t>> child_ranges(
    const ScopeInfo& scopes, int idx) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (const FuncScope& g : scopes.funcs) {
    if (g.parent == idx) out.emplace_back(g.body_begin, g.body_end);
  }
  return out;
}

bool in_ranges(const std::vector<std::pair<std::size_t, std::size_t>>& rs,
               std::size_t i) {
  for (const auto& [b, e] : rs) {
    if (i >= b && i <= e) return true;
  }
  return false;
}

bool plain_use(const std::vector<Token>& toks, std::size_t i) {
  if (i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->") ||
                toks[i - 1].is("::"))) {
    return false;
  }
  if (i + 1 < toks.size() && toks[i + 1].is("::")) return false;
  return true;
}

/// Direct `recv.verb()` events of one function, attributed to CFG blocks.
/// With `bypass_params` set (summary extraction), a receiver that names a
/// parameter matches every policy row with that verb -- the glob is applied
/// later, caller-side, against the substituted argument. Without it (rule
/// checks, `--no-summaries` parity), receivers must match the row glob and
/// only the first matching row fires, exactly like the flow rules always
/// did.
void direct_events(const std::vector<Token>& toks, const ScopeInfo& scopes,
                   int func_idx, const Cfg& cfg,
                   const std::vector<Param>* bypass_params,
                   std::vector<std::vector<ResourceEventEx>>* evs) {
  const auto& policy = resource_pair_policy();
  const auto nested = child_ranges(scopes, func_idx);
  const auto param_named = [&](std::string_view n) {
    if (!bypass_params) return false;
    for (const Param& p : *bypass_params) {
      if (p.name == n) return true;
    }
    return false;
  };
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const CfgBlock& blk = cfg.blocks[b];
    const std::size_t hi = std::min(blk.end, toks.size());
    for (std::size_t i = blk.begin; i + 3 < toks.size() && i < hi; ++i) {
      if (in_ranges(nested, i)) continue;
      if (toks[i].kind != Tok::kIdent) continue;
      if (!toks[i + 1].is(".") && !toks[i + 1].is("->")) continue;
      if (toks[i + 2].kind != Tok::kIdent || !toks[i + 3].is("(")) continue;
      const std::string_view recv = toks[i].text;
      const std::string_view verb = toks[i + 2].text;
      const bool is_param = param_named(recv);
      for (std::size_t pi = 0; pi < policy.size(); ++pi) {
        const ResourcePairEntry& e = policy[pi];
        const bool acq = verb == e.acquire;
        const bool rel = verb == e.release;
        if (!acq && !rel) continue;
        if (!is_param && !glob_match(e.receiver_glob, recv)) continue;
        (*evs)[b].push_back(
            {pi, std::string(recv), acq, toks[i].line, i, -1, 0});
        if (!is_param) break;  // first matching row, as the flow rules do
      }
    }
  }
}

/// Effects of resolved callees substituted at `def_id`'s call sites. A
/// balanced callee (releases_all) contributes nothing; an acquiring one
/// contributes an acquire at the call line; a releasing one a release.
/// Parameter-keyed effects substitute the caller's argument and must then
/// pass the policy-row glob; anything unresolvable is skipped.
void substituted_events(const std::vector<FuncSummary>& sums,
                        const std::vector<Token>& toks,
                        const std::vector<CallSite>& fsites, int def_id,
                        const Cfg& cfg,
                        std::vector<std::vector<ResourceEventEx>>* evs) {
  const auto& policy = resource_pair_policy();
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const CfgBlock& blk = cfg.blocks[b];
    if (blk.end <= blk.begin) continue;
    for (const CallSite& site : fsites) {
      if (site.caller != def_id || site.callee < 0) continue;
      if (site.name_tok < blk.begin || site.name_tok >= blk.end) continue;
      const FuncSummary& cs = sums[static_cast<std::size_t>(site.callee)];
      for (const ResourceEffect& e : cs.resources) {
        std::string recv;
        std::uint32_t callee_line = 0;
        if (e.recv_param >= 0) {
          if (static_cast<std::size_t>(e.recv_param) >= site.args.size()) {
            continue;
          }
          const std::string_view r =
              root_ident(toks, site.args[static_cast<std::size_t>(
                                   e.recv_param)]);
          if (r.empty()) continue;
          if (!glob_match(policy[e.row].receiver_glob, r)) continue;
          recv = std::string(r);
        } else {
          recv = e.recv;
        }
        if (e.may_release) {
          callee_line = e.release_line;
          (*evs)[b].push_back({e.row, recv, false, site.line, site.name_tok,
                               site.callee, callee_line});
        }
        if (e.may_acquire && !e.releases_all) {
          (*evs)[b].push_back({e.row, recv, true, site.line, site.name_tok,
                               site.callee, e.acquire_line});
        }
      }
    }
  }
}

// --- typestate events ------------------------------------------------------

/// Collects identifiers declared in [lo, hi) with one of the protocol's
/// type names: `TypeName [<...>] [&|&&|*]* name` followed by a declarator
/// terminator. Handles both parameter lists (`sim::Mailbox<int>& mb,`) and
/// body-local declarations (`KvStore store(dev);`).
void collect_typed_objects(const std::vector<Token>& toks, std::size_t lo,
                           std::size_t hi, const TsProtocol& p,
                           std::set<std::string_view>* out) {
  hi = std::min(hi, toks.size());
  for (std::size_t i = lo; i < hi; ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    bool is_type = false;
    for (const std::string_view t : p.type_names) is_type |= toks[i].text == t;
    if (!is_type) continue;
    std::size_t j = i + 1;
    if (j < hi && toks[j].is("<")) {
      int depth = 1;
      ++j;
      while (j < hi && depth > 0) {
        if (toks[j].is("<")) ++depth;
        else if (toks[j].is(">")) --depth;
        else if (toks[j].is(">>")) depth -= 2;
        else if (toks[j].is(";")) break;  // comparison, not a template
        ++j;
      }
      if (depth > 0) continue;
    }
    while (j < hi && (toks[j].is("&") || toks[j].is("&&") || toks[j].is("*")))
      ++j;
    if (j >= hi || toks[j].kind != Tok::kIdent) continue;
    if (j + 1 < toks.size() &&
        (toks[j + 1].is(";") || toks[j + 1].is("=") || toks[j + 1].is("{") ||
         toks[j + 1].is("(") || toks[j + 1].is(",") || toks[j + 1].is(")"))) {
      out->insert(toks[j].text);
    }
  }
}

/// Direct `recv.verb()` typestate events of one function for one protocol,
/// attributed to CFG blocks. A receiver is tracked when its declared type
/// matches (parameter list or body-local declaration) or a receiver glob
/// matches.
void direct_ts_events(const std::vector<Token>& toks, const ScopeInfo& scopes,
                      int func_idx, const Cfg& cfg, std::size_t p_idx,
                      std::vector<std::vector<TsEventRef>>* evs) {
  const TsProtocol& p = typestate_protocols()[p_idx];
  const FuncScope& f = scopes.funcs[static_cast<std::size_t>(func_idx)];
  const auto nested = child_ranges(scopes, func_idx);
  std::set<std::string_view> typed;
  if (f.param_open != SIZE_MAX && f.param_close != SIZE_MAX) {
    collect_typed_objects(toks, f.param_open + 1, f.param_close + 1, p,
                          &typed);
  }
  collect_typed_objects(toks, f.body_begin + 1, f.body_end, p, &typed);
  const auto tracked = [&](std::string_view recv) {
    if (typed.count(recv) != 0) return true;
    for (const std::string_view g : p.recv_globs) {
      if (glob_match(g, recv)) return true;
    }
    return false;
  };
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const CfgBlock& blk = cfg.blocks[b];
    const std::size_t hi = std::min(blk.end, toks.size());
    for (std::size_t i = blk.begin; i + 3 < toks.size() && i < hi; ++i) {
      if (in_ranges(nested, i)) continue;
      if (toks[i].kind != Tok::kIdent) continue;
      if (!toks[i + 1].is(".") && !toks[i + 1].is("->")) continue;
      if (toks[i + 2].kind != Tok::kIdent || !toks[i + 3].is("(")) continue;
      int ev = -1;
      for (std::size_t e = 0; e < p.events.size(); ++e) {
        if (toks[i + 2].text == p.events[e]) ev = static_cast<int>(e);
      }
      if (ev < 0 || !tracked(toks[i].text)) continue;
      (*evs)[b].push_back(
          {p_idx, ev, std::string(toks[i].text), toks[i].line, i, -1, 0});
    }
  }
}

/// Protocol effects of resolved callees spliced in at call sites. The
/// receiver substitutes like resource effects do (parameter-keyed effects
/// take the caller's argument root identifier); tracking is trusted -- the
/// callee established the object's type, so the caller needs no glob match.
void substituted_ts_events(const std::vector<FuncSummary>& sums,
                           const std::vector<Token>& toks,
                           const std::vector<CallSite>& fsites, int def_id,
                           const Cfg& cfg, std::size_t p_idx,
                           std::vector<std::vector<TsEventRef>>* evs) {
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const CfgBlock& blk = cfg.blocks[b];
    if (blk.end <= blk.begin) continue;
    for (const CallSite& site : fsites) {
      if (site.caller != def_id || site.callee < 0) continue;
      if (site.name_tok < blk.begin || site.name_tok >= blk.end) continue;
      const FuncSummary& cs = sums[static_cast<std::size_t>(site.callee)];
      for (const ProtocolEffect& e : cs.protocols) {
        if (e.protocol != p_idx) continue;
        std::string recv;
        if (e.recv_param >= 0) {
          if (static_cast<std::size_t>(e.recv_param) >= site.args.size()) {
            continue;
          }
          const std::string_view r = root_ident(
              toks, site.args[static_cast<std::size_t>(e.recv_param)]);
          if (r.empty()) continue;
          recv = std::string(r);
        } else {
          recv = e.recv;
        }
        for (std::size_t k = 0; k < e.events.size(); ++k) {
          (*evs)[b].push_back({p_idx, e.events[k], recv, site.line,
                               site.name_tok, site.callee, e.lines[k]});
        }
      }
    }
  }
}

void sort_ts_blocks(std::vector<std::vector<TsEventRef>>* evs) {
  for (auto& v : *evs) {
    std::stable_sort(v.begin(), v.end(),
                     [](const TsEventRef& a, const TsEventRef& b) {
                       return a.tok < b.tok;
                     });
  }
}

/// Blocks that lie on *every* entry-to-exit path and inside *no* cycle --
/// the only blocks whose events a ProtocolEffect may record (anything
/// conditional or repeated has no fixed order to splice into a caller).
/// All-false when the exit is unreachable (a `while (true)` pump: callers
/// never observe its events completing).
std::vector<bool> mandatory_acyclic(const Cfg& cfg) {
  const auto n = cfg.blocks.size();
  std::vector<bool> out(n, false);
  const auto reaches = [&](int from, int to, int skip) {
    if (from == skip) return false;
    std::vector<bool> seen(n, false);
    std::vector<int> work{from};
    seen[static_cast<std::size_t>(from)] = true;
    while (!work.empty()) {
      const int b = work.back();
      work.pop_back();
      if (b == to) return true;
      for (const int s : cfg.block(b).succ) {
        if (s == skip || seen[static_cast<std::size_t>(s)]) continue;
        seen[static_cast<std::size_t>(s)] = true;
        work.push_back(s);
      }
    }
    return false;
  };
  if (!reaches(cfg.entry, cfg.exit, -1)) return out;
  for (std::size_t b = 0; b < n; ++b) {
    const int bi = static_cast<int>(b);
    if (!reaches(cfg.entry, bi, -1)) continue;
    // Mandatory: removing the block disconnects entry from exit.
    if (bi != cfg.entry && bi != cfg.exit && reaches(cfg.entry, cfg.exit, bi)) {
      continue;
    }
    // Acyclic: the block cannot reach itself.
    bool cyclic = false;
    for (const int s : cfg.block(bi).succ) cyclic |= reaches(s, bi, -1);
    out[b] = !cyclic;
  }
  return out;
}

constexpr std::size_t kMaxProtocolEvents = 8;

/// Folds per-block typestate events into ProtocolEffects: one per receiver
/// whose events are all in mandatory acyclic blocks (fixed order), capped.
void effects_from_ts_events(const Cfg& cfg, const std::vector<bool>& mand,
                            const std::vector<std::vector<TsEventRef>>& evs,
                            std::size_t p_idx, const FuncScope& f,
                            bool params_reliable,
                            std::vector<ProtocolEffect>* out) {
  std::map<std::string, std::vector<const TsEventRef*>> by_recv;
  std::set<std::string> opaque;
  for (std::size_t b = 0; b < evs.size(); ++b) {
    for (const TsEventRef& e : evs[b]) {
      if (mand[b]) {
        by_recv[e.recv].push_back(&e);
      } else {
        opaque.insert(e.recv);  // a conditional event poisons the whole key
      }
    }
  }
  for (auto& [recv, refs] : by_recv) {
    if (opaque.count(recv) != 0 || refs.size() > kMaxProtocolEvents) continue;
    std::stable_sort(refs.begin(), refs.end(),
                     [](const TsEventRef* a, const TsEventRef* b) {
                       return a->tok < b->tok;
                     });
    ProtocolEffect e;
    e.protocol = p_idx;
    e.recv = recv;
    for (const TsEventRef* r : refs) {
      e.events.push_back(r->event);
      e.lines.push_back(r->line);
    }
    if (params_reliable) {
      for (std::size_t pi = 0; pi < f.params.size(); ++pi) {
        if (f.params[pi].name == recv) {
          e.recv_param = static_cast<int>(pi);
          break;
        }
      }
    }
    out->push_back(std::move(e));
  }
}

bool same_protocol_effects(const std::vector<ProtocolEffect>& a,
                           const std::vector<ProtocolEffect>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].protocol != b[i].protocol ||
        a[i].recv_param != b[i].recv_param || a[i].recv != b[i].recv ||
        a[i].events != b[i].events) {
      return false;
    }
  }
  return true;
}

void sort_blocks(std::vector<std::vector<ResourceEventEx>>* evs) {
  for (auto& v : *evs) {
    std::stable_sort(v.begin(), v.end(),
                     [](const ResourceEventEx& a, const ResourceEventEx& b) {
                       return a.tok < b.tok;
                     });
  }
}

/// Folds per-block events into per-(row, receiver) ResourceEffects, with
/// releases_all proven by the function's own dataflow.
std::vector<ResourceEffect> effects_from_events(
    const Cfg& cfg, const std::vector<std::vector<ResourceEventEx>>& evs,
    const FuncScope& f, bool params_reliable) {
  std::map<std::pair<std::size_t, std::string>, std::size_t> keys;
  struct KeyData {
    bool acq = false;
    bool rel = false;
    std::uint32_t aline = 0;
    std::uint32_t rline = 0;
  };
  std::vector<KeyData> kd;
  for (const auto& block_evs : evs) {
    for (const ResourceEventEx& e : block_evs) {
      const auto [it, fresh] =
          keys.try_emplace({e.row, e.recv}, kd.size());
      if (fresh) kd.push_back({});
      KeyData& k = kd[it->second];
      if (e.acquire) {
        k.acq = true;
        if (k.aline == 0) k.aline = e.line;
      } else {
        k.rel = true;
        if (k.rline == 0) k.rline = e.line;
      }
    }
  }
  if (keys.empty()) return {};

  ForwardMay df(cfg, kd.size());
  std::vector<int> state(kd.size());
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (evs[b].empty()) continue;
    std::fill(state.begin(), state.end(), 0);
    for (const ResourceEventEx& e : evs[b]) {
      state[keys.at({e.row, e.recv})] = e.acquire ? 1 : -1;
    }
    for (std::size_t k = 0; k < kd.size(); ++k) {
      if (state[k] == 1) df.add_gen(static_cast<int>(b), k);
      if (state[k] == -1) df.add_kill(static_cast<int>(b), k);
    }
  }
  df.solve();

  std::vector<ResourceEffect> out;
  for (const auto& [key, k] : keys) {
    ResourceEffect e;
    e.row = key.first;
    e.recv = key.second;
    e.may_acquire = kd[k].acq;
    e.may_release = kd[k].rel;
    e.releases_all = kd[k].acq && !df.in(cfg.exit, k);
    e.acquire_line = kd[k].aline;
    e.release_line = kd[k].rline;
    if (params_reliable) {
      for (std::size_t pi = 0; pi < f.params.size(); ++pi) {
        if (f.params[pi].name == e.recv) {
          e.recv_param = static_cast<int>(pi);
          break;
        }
      }
    }
    out.push_back(std::move(e));
  }
  return out;
}

bool same_effects(const std::vector<ResourceEffect>& a,
                  const std::vector<ResourceEffect>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].row != b[i].row || a[i].recv_param != b[i].recv_param ||
        a[i].recv != b[i].recv || a[i].may_acquire != b[i].may_acquire ||
        a[i].may_release != b[i].may_release ||
        a[i].releases_all != b[i].releases_all) {
      return false;
    }
  }
  return true;
}

// --- cache -----------------------------------------------------------------

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::string_view kCacheMagic = "snacc-lint-cache v2";

bool load_cache(const std::string& path,
                const std::vector<const SourceFile*>& files,
                const std::vector<ScopeInfo>& scopes, std::size_t ndefs,
                std::vector<FuncSummary>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != kCacheMagic) return false;
  std::size_t nfiles = 0, cached_defs = 0;
  if (!(in >> nfiles >> cached_defs)) return false;
  if (nfiles != files.size() || cached_defs != ndefs) return false;
  // All-or-nothing validation: every file must match by relative path,
  // content hash, and function count. A changed callee invalidates its
  // callers transitively, so partial reuse would need a dependency walk --
  // full recompute is the simple sound answer.
  for (std::size_t i = 0; i < nfiles; ++i) {
    std::uint64_t hash = 0;
    std::size_t nfuncs = 0;
    std::string rel;
    if (!(in >> hash >> nfuncs)) return false;
    if (!std::getline(in, rel)) return false;
    if (!rel.empty() && rel.front() == ' ') rel.erase(0, 1);
    if (rel != files[i]->rel() || hash != fnv1a(files[i]->text()) ||
        nfuncs != scopes[i].funcs.size()) {
      return false;
    }
  }
  std::vector<FuncSummary> sums(ndefs);
  for (std::size_t d = 0; d < ndefs; ++d) {
    std::string tag;
    int coro = 0, async = 0, susp = 0;
    std::size_t nres = 0, nparams = 0, nproto = 0;
    if (!(in >> tag >> coro >> async >> susp >> nres >> nparams >> nproto) ||
        tag != "D") {
      return false;
    }
    FuncSummary& s = sums[d];
    s.is_coroutine = coro != 0;
    s.returns_async = async != 0;
    s.suspends_forever = susp != 0;
    s.resources.resize(nres);
    for (ResourceEffect& e : s.resources) {
      int acq = 0, rel = 0, rall = 0;
      if (!(in >> tag >> e.row >> e.recv_param >> acq >> rel >> rall >>
            e.acquire_line >> e.release_line >> e.recv) ||
          tag != "R") {
        return false;
      }
      e.may_acquire = acq != 0;
      e.may_release = rel != 0;
      e.releases_all = rall != 0;
    }
    s.params.resize(nparams);
    for (ParamEffect& p : s.params) {
      int so = 0, w = 0, c = 0, t = 0;
      if (!(in >> tag >> so >> w >> c >> t >> p.touch_def >> p.touch_line >>
            p.write_line) ||
          tag != "P") {
        return false;
      }
      p.is_status_out = so != 0;
      p.status_written = w != 0;
      p.status_checked = c != 0;
      p.touched = t != 0;
    }
    s.protocols.resize(nproto);
    for (ProtocolEffect& e : s.protocols) {
      std::size_t nev = 0;
      if (!(in >> tag >> e.protocol >> e.recv_param >> nev) || tag != "T" ||
          nev > kMaxProtocolEvents) {
        return false;
      }
      e.events.resize(nev);
      e.lines.resize(nev);
      for (int& ev : e.events) {
        if (!(in >> ev)) return false;
      }
      for (std::uint32_t& ln : e.lines) {
        if (!(in >> ln)) return false;
      }
      if (!(in >> e.recv)) return false;
    }
  }
  *out = std::move(sums);
  return true;
}

void save_cache(const std::string& path,
                const std::vector<const SourceFile*>& files,
                const std::vector<ScopeInfo>& scopes,
                const std::vector<FuncSummary>& sums) {
  std::ofstream out(path);
  if (!out) return;  // best effort: a missing cache only costs recompute
  out << kCacheMagic << '\n' << files.size() << ' ' << sums.size() << '\n';
  for (std::size_t i = 0; i < files.size(); ++i) {
    out << fnv1a(files[i]->text()) << ' ' << scopes[i].funcs.size() << ' '
        << files[i]->rel() << '\n';
  }
  for (const FuncSummary& s : sums) {
    out << "D " << int(s.is_coroutine) << ' ' << int(s.returns_async) << ' '
        << int(s.suspends_forever) << ' ' << s.resources.size() << ' '
        << s.params.size() << ' ' << s.protocols.size() << '\n';
    for (const ResourceEffect& e : s.resources) {
      out << "R " << e.row << ' ' << e.recv_param << ' '
          << int(e.may_acquire) << ' ' << int(e.may_release) << ' '
          << int(e.releases_all) << ' ' << e.acquire_line << ' '
          << e.release_line << ' ' << e.recv << '\n';
    }
    for (const ParamEffect& p : s.params) {
      out << "P " << int(p.is_status_out) << ' ' << int(p.status_written)
          << ' ' << int(p.status_checked) << ' ' << int(p.touched) << ' '
          << p.touch_def << ' ' << p.touch_line << ' ' << p.write_line
          << '\n';
    }
    for (const ProtocolEffect& e : s.protocols) {
      out << "T " << e.protocol << ' ' << e.recv_param << ' '
          << e.events.size();
      for (const int ev : e.events) out << ' ' << ev;
      for (const std::uint32_t ln : e.lines) out << ' ' << ln;
      out << ' ' << e.recv << '\n';
    }
  }
}

// --- local extraction + propagation ----------------------------------------

/// One status/touch forwarding edge: `def` passes its parameter #param as
/// argument #arg of `site` (whose callee is resolved).
struct FwdRec {
  int param;
  const CallSite* site;
  int arg;
};

void local_param_effects(const std::vector<Token>& toks,
                         const ScopeInfo& scopes, int func_idx,
                         const std::vector<CallSite>& fsites, int def_id,
                         bool params_reliable, FuncSummary* s,
                         std::vector<FwdRec>* fwd) {
  if (!params_reliable) return;  // positions would be skewed; stay silent
  const FuncScope& f = scopes.funcs[static_cast<std::size_t>(func_idx)];
  s->params.resize(f.params.size());
  for (std::size_t pi = 0; pi < f.params.size(); ++pi) {
    const Param& p = f.params[pi];
    s->params[pi].is_status_out =
        p.type_name == "PutStatus" && (p.is_pointer || p.is_lvalue_ref);
  }
  const auto nested = child_ranges(scopes, func_idx);

  // Sites of this function, for argument containment checks.
  std::vector<const CallSite*> own_sites;
  for (const CallSite& site : fsites) {
    if (site.caller == def_id) own_sites.push_back(&site);
  }
  const auto forwarded_at = [&](std::size_t i, std::string_view pname)
      -> std::pair<const CallSite*, int> {
    for (const CallSite* site : own_sites) {
      for (std::size_t a = 0; a < site->args.size(); ++a) {
        const auto& [ab, ae] = site->args[a];
        if (i >= ab && i < ae && root_ident(toks, {ab, ae}) == pname) {
          return {site, static_cast<int>(a)};
        }
      }
    }
    return {nullptr, -1};
  };

  for (std::size_t i = f.body_begin + 1;
       i < f.body_end && i < toks.size(); ++i) {
    if (in_ranges(nested, i) || toks[i].kind != Tok::kIdent) continue;
    std::size_t pi = f.params.size();
    for (std::size_t k = 0; k < f.params.size(); ++k) {
      if (f.params[k].name == toks[i].text) {
        pi = k;
        break;
      }
    }
    if (pi == f.params.size()) continue;
    const Param& p = f.params[pi];
    ParamEffect& pe = s->params[pi];

    // Receiver of a method call: the parameter is "touched" here.
    if (i + 3 < toks.size() && (toks[i + 1].is(".") || toks[i + 1].is("->")) &&
        toks[i + 2].kind == Tok::kIdent && toks[i + 3].is("(")) {
      if (!pe.touched) {
        pe.touched = true;
        pe.touch_def = def_id;
        pe.touch_line = toks[i].line;
      }
    }

    // Status out-param writes: `*st = ...` (pointer) / `st = ...` (ref).
    if (pe.is_status_out) {
      const bool ptr_write = p.is_pointer && i > 0 && toks[i - 1].is("*") &&
                             i + 1 < toks.size() && toks[i + 1].is("=");
      const bool ref_write =
          p.is_lvalue_ref && i + 1 < toks.size() && toks[i + 1].is("=");
      if (ptr_write || ref_write) {
        if (!pe.status_written) {
          pe.status_written = true;
          pe.write_line = toks[i].line;
        }
        continue;
      }
    }

    // Passed along as an argument: record the edge for propagation. When
    // the callee is opaque, mirror the intraprocedural rule's convention:
    // handing the status away under `&` is a write (out-param shape), a
    // plain forward is the read that consumes the pending value.
    if (const auto [site, arg] = forwarded_at(i, p.name); site != nullptr) {
      if (site->callee >= 0) {
        fwd->push_back({static_cast<int>(pi), site, arg});
      } else if (pe.is_status_out) {
        if (i > 0 && toks[i - 1].is("&")) {
          if (!pe.status_written) {
            pe.status_written = true;
            pe.write_line = toks[i].line;
          }
        } else {
          pe.status_checked = true;
        }
      }
      continue;
    }

    // Any other plain use of a status out-param reads/compares it.
    if (pe.is_status_out && plain_use(toks, i)) pe.status_checked = true;
  }
}

}  // namespace

std::vector<std::vector<ResourceEventEx>> resource_events(
    const ProgramInfo* prog, int file, const SourceFile& sf,
    const ScopeInfo& scopes, const Cfg& cfg, int func_idx) {
  std::vector<std::vector<ResourceEventEx>> evs(cfg.blocks.size());
  direct_events(sf.tokens(), scopes, func_idx, cfg, nullptr, &evs);
  if (prog != nullptr) {
    const int def_id = prog->graph.def_of(file, func_idx);
    substituted_events(prog->summaries, sf.tokens(),
                       prog->graph.sites(file), def_id, cfg, &evs);
    sort_blocks(&evs);
  }
  return evs;
}

std::vector<std::vector<TsEventRef>> typestate_events(
    const ProgramInfo* prog, int file, const SourceFile& sf,
    const ScopeInfo& scopes, const Cfg& cfg, int func_idx,
    std::size_t protocol) {
  std::vector<std::vector<TsEventRef>> evs(cfg.blocks.size());
  direct_ts_events(sf.tokens(), scopes, func_idx, cfg, protocol, &evs);
  if (prog != nullptr) {
    const int def_id = prog->graph.def_of(file, func_idx);
    substituted_ts_events(prog->summaries, sf.tokens(),
                          prog->graph.sites(file), def_id, cfg, protocol,
                          &evs);
    sort_ts_blocks(&evs);
  }
  return evs;
}

ProgramInfo build_program(const std::vector<const SourceFile*>& files,
                          const std::vector<ScopeInfo>& scopes,
                          const std::vector<const CfgCache*>& cfgs,
                          const std::string& cache_path, bool* cache_hit) {
  ProgramInfo prog;
  prog.graph = CallGraph::build(files, scopes);
  prog.file_rels.reserve(files.size());
  for (const SourceFile* f : files) prog.file_rels.push_back(f->rel());
  const auto& defs = prog.graph.defs();
  if (cache_hit != nullptr) *cache_hit = false;
  if (!cache_path.empty() &&
      load_cache(cache_path, files, scopes, defs.size(), &prog.summaries)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return prog;
  }

  prog.summaries.assign(defs.size(), {});
  std::vector<std::vector<FwdRec>> fwd(defs.size());
  std::vector<std::vector<const CallSite*>> return_sites(defs.size());

  // Local pass: per-function facts that need no other function's summary.
  for (std::size_t d = 0; d < defs.size(); ++d) {
    const FuncDef& fd = defs[d];
    const auto fi = static_cast<std::size_t>(fd.file);
    const auto& toks = files[fi]->tokens();
    const FuncScope& f =
        scopes[fi].funcs[static_cast<std::size_t>(fd.func)];
    FuncSummary& s = prog.summaries[d];
    s.is_coroutine = fd.is_coroutine;
    s.returns_async = fd.returns_async;
    const Cfg& cfg = cfgs[fi]->get(fd.func);
    if (fd.is_coroutine && !f.suspends.empty()) {
      const std::vector<bool> reach = blocks_reaching_exit(cfg);
      for (std::size_t b = 0; b < cfg.blocks.size() && !s.suspends_forever;
           ++b) {
        if (cfg.blocks[b].suspends && !reach[b]) s.suspends_forever = true;
      }
    }
    local_param_effects(toks, scopes[fi], fd.func,
                        prog.graph.sites(fd.file), static_cast<int>(d),
                        fd.params_reliable, &s, &fwd[d]);
    for (const CallSite& site : prog.graph.sites(fd.file)) {
      if (site.caller != static_cast<int>(d) || site.name_tok == 0) continue;
      const Token& before = toks[site.name_tok - 1];
      if (before.ident("return") || before.ident("co_return")) {
        return_sites[d].push_back(&site);
      }
    }
  }

  // Phase 1: monotone fixpoint for status / touch / returns_async facts
  // flowing through resolved call edges. Bounded rounds; each fact only
  // ever flips false -> true, so the loop terminates early in practice.
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    for (std::size_t d = 0; d < defs.size(); ++d) {
      for (const FwdRec& fr : fwd[d]) {
        const auto c = static_cast<std::size_t>(fr.site->callee);
        ParamEffect& pe =
            prog.summaries[d].params[static_cast<std::size_t>(fr.param)];
        if (!defs[c].params_reliable ||
            static_cast<std::size_t>(fr.arg) >=
                prog.summaries[c].params.size()) {
          // Opaque parameter shape: same conservative answer as an
          // unresolved callee.
          if (pe.is_status_out && !pe.status_written) {
            pe.status_written = true;
            pe.write_line = fr.site->line;
            changed = true;
          }
          continue;
        }
        const ParamEffect& cpe =
            prog.summaries[c].params[static_cast<std::size_t>(fr.arg)];
        if (pe.is_status_out) {
          if (cpe.is_status_out) {
            if (cpe.status_written && !pe.status_written) {
              pe.status_written = true;
              pe.write_line = fr.site->line;
              changed = true;
            }
            if (cpe.status_checked && !pe.status_checked) {
              pe.status_checked = true;
              changed = true;
            }
          } else if (!pe.status_checked) {
            pe.status_checked = true;  // consumed by value
            changed = true;
          }
        }
        if (cpe.touched && !pe.touched) {
          pe.touched = true;
          pe.touch_def = cpe.touch_def;
          pe.touch_line = cpe.touch_line;
          changed = true;
        }
      }
      if (defs[d].returns_auto && !prog.summaries[d].returns_async) {
        for (const CallSite* site : return_sites[d]) {
          if (site->callee >= 0 &&
              prog.summaries[static_cast<std::size_t>(site->callee)]
                  .returns_async) {
            prog.summaries[d].returns_async = true;
            changed = true;
            break;
          }
        }
      }
    }
    if (!changed) break;
  }

  // Phase 2: resource + protocol effects. Each round recomputes every
  // function's effects with the current callee summaries substituted at
  // call sites (Gauss-Seidel in def order); effects grow monotonically
  // towards the key set reachable through the call graph, so a handful of
  // rounds covers any realistic helper depth. Recursion simply stabilizes
  // (protocol effects additionally cap sequence length, so a pathological
  // self-growing recursion drops to opaque instead of oscillating).
  const std::size_t nproto = typestate_protocols().size();
  std::vector<std::vector<bool>> mand(defs.size());
  for (int round = 0; round < 5; ++round) {
    bool changed = false;
    for (std::size_t d = 0; d < defs.size(); ++d) {
      const FuncDef& fd = defs[d];
      const auto fi = static_cast<std::size_t>(fd.file);
      const auto& toks = files[fi]->tokens();
      const FuncScope& f =
          scopes[fi].funcs[static_cast<std::size_t>(fd.func)];
      const Cfg& cfg = cfgs[fi]->get(fd.func);
      std::vector<std::vector<ResourceEventEx>> evs(cfg.blocks.size());
      direct_events(toks, scopes[fi], fd.func, cfg,
                    fd.params_reliable ? &f.params : nullptr, &evs);
      substituted_events(prog.summaries, toks,
                         prog.graph.sites(fd.file), static_cast<int>(d), cfg,
                         &evs);
      sort_blocks(&evs);
      std::vector<ResourceEffect> effects =
          effects_from_events(cfg, evs, f, fd.params_reliable);
      if (!same_effects(effects, prog.summaries[d].resources)) {
        prog.summaries[d].resources = std::move(effects);
        changed = true;
      }

      std::vector<ProtocolEffect> proto_effects;
      for (std::size_t p = 0; p < nproto; ++p) {
        std::vector<std::vector<TsEventRef>> tevs(cfg.blocks.size());
        direct_ts_events(toks, scopes[fi], fd.func, cfg, p, &tevs);
        substituted_ts_events(prog.summaries, toks,
                              prog.graph.sites(fd.file), static_cast<int>(d),
                              cfg, p, &tevs);
        sort_ts_blocks(&tevs);
        bool any = false;
        for (const auto& v : tevs) any = any || !v.empty();
        if (!any) continue;
        if (mand[d].empty()) mand[d] = mandatory_acyclic(cfg);
        effects_from_ts_events(cfg, mand[d], tevs, p, f, fd.params_reliable,
                               &proto_effects);
      }
      if (!same_protocol_effects(proto_effects,
                                 prog.summaries[d].protocols)) {
        prog.summaries[d].protocols = std::move(proto_effects);
        changed = true;
      }
    }
    if (!changed) break;
  }

  if (!cache_path.empty()) {
    save_cache(cache_path, files, scopes, prog.summaries);
  }
  return prog;
}

}  // namespace lint
