#include "lint/summary.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "lint/dataflow.hpp"
#include "lint/rules.hpp"

namespace lint {

namespace {

std::vector<std::pair<std::size_t, std::size_t>> child_ranges(
    const ScopeInfo& scopes, int idx) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (const FuncScope& g : scopes.funcs) {
    if (g.parent == idx) out.emplace_back(g.body_begin, g.body_end);
  }
  return out;
}

bool in_ranges(const std::vector<std::pair<std::size_t, std::size_t>>& rs,
               std::size_t i) {
  for (const auto& [b, e] : rs) {
    if (i >= b && i <= e) return true;
  }
  return false;
}

bool plain_use(const std::vector<Token>& toks, std::size_t i) {
  if (i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->") ||
                toks[i - 1].is("::"))) {
    return false;
  }
  if (i + 1 < toks.size() && toks[i + 1].is("::")) return false;
  return true;
}

/// Direct `recv.verb()` events of one function, attributed to CFG blocks.
/// With `bypass_params` set (summary extraction), a receiver that names a
/// parameter matches every policy row with that verb -- the glob is applied
/// later, caller-side, against the substituted argument. Without it (rule
/// checks, `--no-summaries` parity), receivers must match the row glob and
/// only the first matching row fires, exactly like the flow rules always
/// did.
void direct_events(const std::vector<Token>& toks, const ScopeInfo& scopes,
                   int func_idx, const Cfg& cfg,
                   const std::vector<Param>* bypass_params,
                   std::vector<std::vector<ResourceEventEx>>* evs) {
  const auto& policy = resource_pair_policy();
  const auto nested = child_ranges(scopes, func_idx);
  const auto param_named = [&](std::string_view n) {
    if (!bypass_params) return false;
    for (const Param& p : *bypass_params) {
      if (p.name == n) return true;
    }
    return false;
  };
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const CfgBlock& blk = cfg.blocks[b];
    const std::size_t hi = std::min(blk.end, toks.size());
    for (std::size_t i = blk.begin; i + 3 < toks.size() && i < hi; ++i) {
      if (in_ranges(nested, i)) continue;
      if (toks[i].kind != Tok::kIdent) continue;
      if (!toks[i + 1].is(".") && !toks[i + 1].is("->")) continue;
      if (toks[i + 2].kind != Tok::kIdent || !toks[i + 3].is("(")) continue;
      const std::string_view recv = toks[i].text;
      const std::string_view verb = toks[i + 2].text;
      const bool is_param = param_named(recv);
      for (std::size_t pi = 0; pi < policy.size(); ++pi) {
        const ResourcePairEntry& e = policy[pi];
        const bool acq = verb == e.acquire;
        const bool rel = verb == e.release;
        if (!acq && !rel) continue;
        if (!is_param && !glob_match(e.receiver_glob, recv)) continue;
        (*evs)[b].push_back(
            {pi, std::string(recv), acq, toks[i].line, i, -1, 0});
        if (!is_param) break;  // first matching row, as the flow rules do
      }
    }
  }
}

/// Effects of resolved callees substituted at `def_id`'s call sites. A
/// balanced callee (releases_all) contributes nothing; an acquiring one
/// contributes an acquire at the call line; a releasing one a release.
/// Parameter-keyed effects substitute the caller's argument and must then
/// pass the policy-row glob; anything unresolvable is skipped.
void substituted_events(const std::vector<FuncSummary>& sums,
                        const std::vector<Token>& toks,
                        const std::vector<CallSite>& fsites, int def_id,
                        const Cfg& cfg,
                        std::vector<std::vector<ResourceEventEx>>* evs) {
  const auto& policy = resource_pair_policy();
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const CfgBlock& blk = cfg.blocks[b];
    if (blk.end <= blk.begin) continue;
    for (const CallSite& site : fsites) {
      if (site.caller != def_id || site.callee < 0) continue;
      if (site.name_tok < blk.begin || site.name_tok >= blk.end) continue;
      const FuncSummary& cs = sums[static_cast<std::size_t>(site.callee)];
      for (const ResourceEffect& e : cs.resources) {
        std::string recv;
        std::uint32_t callee_line = 0;
        if (e.recv_param >= 0) {
          if (static_cast<std::size_t>(e.recv_param) >= site.args.size()) {
            continue;
          }
          const std::string_view r =
              root_ident(toks, site.args[static_cast<std::size_t>(
                                   e.recv_param)]);
          if (r.empty()) continue;
          if (!glob_match(policy[e.row].receiver_glob, r)) continue;
          recv = std::string(r);
        } else {
          recv = e.recv;
        }
        if (e.may_release) {
          callee_line = e.release_line;
          (*evs)[b].push_back({e.row, recv, false, site.line, site.name_tok,
                               site.callee, callee_line});
        }
        if (e.may_acquire && !e.releases_all) {
          (*evs)[b].push_back({e.row, recv, true, site.line, site.name_tok,
                               site.callee, e.acquire_line});
        }
      }
    }
  }
}

void sort_blocks(std::vector<std::vector<ResourceEventEx>>* evs) {
  for (auto& v : *evs) {
    std::stable_sort(v.begin(), v.end(),
                     [](const ResourceEventEx& a, const ResourceEventEx& b) {
                       return a.tok < b.tok;
                     });
  }
}

/// Folds per-block events into per-(row, receiver) ResourceEffects, with
/// releases_all proven by the function's own dataflow.
std::vector<ResourceEffect> effects_from_events(
    const Cfg& cfg, const std::vector<std::vector<ResourceEventEx>>& evs,
    const FuncScope& f, bool params_reliable) {
  std::map<std::pair<std::size_t, std::string>, std::size_t> keys;
  struct KeyData {
    bool acq = false;
    bool rel = false;
    std::uint32_t aline = 0;
    std::uint32_t rline = 0;
  };
  std::vector<KeyData> kd;
  for (const auto& block_evs : evs) {
    for (const ResourceEventEx& e : block_evs) {
      const auto [it, fresh] =
          keys.try_emplace({e.row, e.recv}, kd.size());
      if (fresh) kd.push_back({});
      KeyData& k = kd[it->second];
      if (e.acquire) {
        k.acq = true;
        if (k.aline == 0) k.aline = e.line;
      } else {
        k.rel = true;
        if (k.rline == 0) k.rline = e.line;
      }
    }
  }
  if (keys.empty()) return {};

  ForwardMay df(cfg, kd.size());
  std::vector<int> state(kd.size());
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (evs[b].empty()) continue;
    std::fill(state.begin(), state.end(), 0);
    for (const ResourceEventEx& e : evs[b]) {
      state[keys.at({e.row, e.recv})] = e.acquire ? 1 : -1;
    }
    for (std::size_t k = 0; k < kd.size(); ++k) {
      if (state[k] == 1) df.add_gen(static_cast<int>(b), k);
      if (state[k] == -1) df.add_kill(static_cast<int>(b), k);
    }
  }
  df.solve();

  std::vector<ResourceEffect> out;
  for (const auto& [key, k] : keys) {
    ResourceEffect e;
    e.row = key.first;
    e.recv = key.second;
    e.may_acquire = kd[k].acq;
    e.may_release = kd[k].rel;
    e.releases_all = kd[k].acq && !df.in(cfg.exit, k);
    e.acquire_line = kd[k].aline;
    e.release_line = kd[k].rline;
    if (params_reliable) {
      for (std::size_t pi = 0; pi < f.params.size(); ++pi) {
        if (f.params[pi].name == e.recv) {
          e.recv_param = static_cast<int>(pi);
          break;
        }
      }
    }
    out.push_back(std::move(e));
  }
  return out;
}

bool same_effects(const std::vector<ResourceEffect>& a,
                  const std::vector<ResourceEffect>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].row != b[i].row || a[i].recv_param != b[i].recv_param ||
        a[i].recv != b[i].recv || a[i].may_acquire != b[i].may_acquire ||
        a[i].may_release != b[i].may_release ||
        a[i].releases_all != b[i].releases_all) {
      return false;
    }
  }
  return true;
}

// --- cache -----------------------------------------------------------------

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::string_view kCacheMagic = "snacc-lint-cache v1";

bool load_cache(const std::string& path,
                const std::vector<const SourceFile*>& files,
                const std::vector<ScopeInfo>& scopes, std::size_t ndefs,
                std::vector<FuncSummary>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != kCacheMagic) return false;
  std::size_t nfiles = 0, cached_defs = 0;
  if (!(in >> nfiles >> cached_defs)) return false;
  if (nfiles != files.size() || cached_defs != ndefs) return false;
  // All-or-nothing validation: every file must match by relative path,
  // content hash, and function count. A changed callee invalidates its
  // callers transitively, so partial reuse would need a dependency walk --
  // full recompute is the simple sound answer.
  for (std::size_t i = 0; i < nfiles; ++i) {
    std::uint64_t hash = 0;
    std::size_t nfuncs = 0;
    std::string rel;
    if (!(in >> hash >> nfuncs)) return false;
    if (!std::getline(in, rel)) return false;
    if (!rel.empty() && rel.front() == ' ') rel.erase(0, 1);
    if (rel != files[i]->rel() || hash != fnv1a(files[i]->text()) ||
        nfuncs != scopes[i].funcs.size()) {
      return false;
    }
  }
  std::vector<FuncSummary> sums(ndefs);
  for (std::size_t d = 0; d < ndefs; ++d) {
    std::string tag;
    int coro = 0, async = 0, susp = 0;
    std::size_t nres = 0, nparams = 0;
    if (!(in >> tag >> coro >> async >> susp >> nres >> nparams) ||
        tag != "D") {
      return false;
    }
    FuncSummary& s = sums[d];
    s.is_coroutine = coro != 0;
    s.returns_async = async != 0;
    s.suspends_forever = susp != 0;
    s.resources.resize(nres);
    for (ResourceEffect& e : s.resources) {
      int acq = 0, rel = 0, rall = 0;
      if (!(in >> tag >> e.row >> e.recv_param >> acq >> rel >> rall >>
            e.acquire_line >> e.release_line >> e.recv) ||
          tag != "R") {
        return false;
      }
      e.may_acquire = acq != 0;
      e.may_release = rel != 0;
      e.releases_all = rall != 0;
    }
    s.params.resize(nparams);
    for (ParamEffect& p : s.params) {
      int so = 0, w = 0, c = 0, t = 0;
      if (!(in >> tag >> so >> w >> c >> t >> p.touch_def >> p.touch_line >>
            p.write_line) ||
          tag != "P") {
        return false;
      }
      p.is_status_out = so != 0;
      p.status_written = w != 0;
      p.status_checked = c != 0;
      p.touched = t != 0;
    }
  }
  *out = std::move(sums);
  return true;
}

void save_cache(const std::string& path,
                const std::vector<const SourceFile*>& files,
                const std::vector<ScopeInfo>& scopes,
                const std::vector<FuncSummary>& sums) {
  std::ofstream out(path);
  if (!out) return;  // best effort: a missing cache only costs recompute
  out << kCacheMagic << '\n' << files.size() << ' ' << sums.size() << '\n';
  for (std::size_t i = 0; i < files.size(); ++i) {
    out << fnv1a(files[i]->text()) << ' ' << scopes[i].funcs.size() << ' '
        << files[i]->rel() << '\n';
  }
  for (const FuncSummary& s : sums) {
    out << "D " << int(s.is_coroutine) << ' ' << int(s.returns_async) << ' '
        << int(s.suspends_forever) << ' ' << s.resources.size() << ' '
        << s.params.size() << '\n';
    for (const ResourceEffect& e : s.resources) {
      out << "R " << e.row << ' ' << e.recv_param << ' '
          << int(e.may_acquire) << ' ' << int(e.may_release) << ' '
          << int(e.releases_all) << ' ' << e.acquire_line << ' '
          << e.release_line << ' ' << e.recv << '\n';
    }
    for (const ParamEffect& p : s.params) {
      out << "P " << int(p.is_status_out) << ' ' << int(p.status_written)
          << ' ' << int(p.status_checked) << ' ' << int(p.touched) << ' '
          << p.touch_def << ' ' << p.touch_line << ' ' << p.write_line
          << '\n';
    }
  }
}

// --- local extraction + propagation ----------------------------------------

/// One status/touch forwarding edge: `def` passes its parameter #param as
/// argument #arg of `site` (whose callee is resolved).
struct FwdRec {
  int param;
  const CallSite* site;
  int arg;
};

void local_param_effects(const std::vector<Token>& toks,
                         const ScopeInfo& scopes, int func_idx,
                         const std::vector<CallSite>& fsites, int def_id,
                         bool params_reliable, FuncSummary* s,
                         std::vector<FwdRec>* fwd) {
  if (!params_reliable) return;  // positions would be skewed; stay silent
  const FuncScope& f = scopes.funcs[static_cast<std::size_t>(func_idx)];
  s->params.resize(f.params.size());
  for (std::size_t pi = 0; pi < f.params.size(); ++pi) {
    const Param& p = f.params[pi];
    s->params[pi].is_status_out =
        p.type_name == "PutStatus" && (p.is_pointer || p.is_lvalue_ref);
  }
  const auto nested = child_ranges(scopes, func_idx);

  // Sites of this function, for argument containment checks.
  std::vector<const CallSite*> own_sites;
  for (const CallSite& site : fsites) {
    if (site.caller == def_id) own_sites.push_back(&site);
  }
  const auto forwarded_at = [&](std::size_t i, std::string_view pname)
      -> std::pair<const CallSite*, int> {
    for (const CallSite* site : own_sites) {
      for (std::size_t a = 0; a < site->args.size(); ++a) {
        const auto& [ab, ae] = site->args[a];
        if (i >= ab && i < ae && root_ident(toks, {ab, ae}) == pname) {
          return {site, static_cast<int>(a)};
        }
      }
    }
    return {nullptr, -1};
  };

  for (std::size_t i = f.body_begin + 1;
       i < f.body_end && i < toks.size(); ++i) {
    if (in_ranges(nested, i) || toks[i].kind != Tok::kIdent) continue;
    std::size_t pi = f.params.size();
    for (std::size_t k = 0; k < f.params.size(); ++k) {
      if (f.params[k].name == toks[i].text) {
        pi = k;
        break;
      }
    }
    if (pi == f.params.size()) continue;
    const Param& p = f.params[pi];
    ParamEffect& pe = s->params[pi];

    // Receiver of a method call: the parameter is "touched" here.
    if (i + 3 < toks.size() && (toks[i + 1].is(".") || toks[i + 1].is("->")) &&
        toks[i + 2].kind == Tok::kIdent && toks[i + 3].is("(")) {
      if (!pe.touched) {
        pe.touched = true;
        pe.touch_def = def_id;
        pe.touch_line = toks[i].line;
      }
    }

    // Status out-param writes: `*st = ...` (pointer) / `st = ...` (ref).
    if (pe.is_status_out) {
      const bool ptr_write = p.is_pointer && i > 0 && toks[i - 1].is("*") &&
                             i + 1 < toks.size() && toks[i + 1].is("=");
      const bool ref_write =
          p.is_lvalue_ref && i + 1 < toks.size() && toks[i + 1].is("=");
      if (ptr_write || ref_write) {
        if (!pe.status_written) {
          pe.status_written = true;
          pe.write_line = toks[i].line;
        }
        continue;
      }
    }

    // Passed along as an argument: record the edge for propagation. When
    // the callee is opaque, mirror the intraprocedural rule's convention:
    // handing the status away under `&` is a write (out-param shape), a
    // plain forward is the read that consumes the pending value.
    if (const auto [site, arg] = forwarded_at(i, p.name); site != nullptr) {
      if (site->callee >= 0) {
        fwd->push_back({static_cast<int>(pi), site, arg});
      } else if (pe.is_status_out) {
        if (i > 0 && toks[i - 1].is("&")) {
          if (!pe.status_written) {
            pe.status_written = true;
            pe.write_line = toks[i].line;
          }
        } else {
          pe.status_checked = true;
        }
      }
      continue;
    }

    // Any other plain use of a status out-param reads/compares it.
    if (pe.is_status_out && plain_use(toks, i)) pe.status_checked = true;
  }
}

}  // namespace

std::vector<std::vector<ResourceEventEx>> resource_events(
    const ProgramInfo* prog, int file, const SourceFile& sf,
    const ScopeInfo& scopes, const Cfg& cfg, int func_idx) {
  std::vector<std::vector<ResourceEventEx>> evs(cfg.blocks.size());
  direct_events(sf.tokens(), scopes, func_idx, cfg, nullptr, &evs);
  if (prog != nullptr) {
    const int def_id = prog->graph.def_of(file, func_idx);
    substituted_events(prog->summaries, sf.tokens(),
                       prog->graph.sites(file), def_id, cfg, &evs);
    sort_blocks(&evs);
  }
  return evs;
}

ProgramInfo build_program(const std::vector<const SourceFile*>& files,
                          const std::vector<ScopeInfo>& scopes,
                          const std::vector<const CfgCache*>& cfgs,
                          const std::string& cache_path, bool* cache_hit) {
  ProgramInfo prog;
  prog.graph = CallGraph::build(files, scopes);
  prog.file_rels.reserve(files.size());
  for (const SourceFile* f : files) prog.file_rels.push_back(f->rel());
  const auto& defs = prog.graph.defs();
  if (cache_hit != nullptr) *cache_hit = false;
  if (!cache_path.empty() &&
      load_cache(cache_path, files, scopes, defs.size(), &prog.summaries)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return prog;
  }

  prog.summaries.assign(defs.size(), {});
  std::vector<std::vector<FwdRec>> fwd(defs.size());
  std::vector<std::vector<const CallSite*>> return_sites(defs.size());

  // Local pass: per-function facts that need no other function's summary.
  for (std::size_t d = 0; d < defs.size(); ++d) {
    const FuncDef& fd = defs[d];
    const auto fi = static_cast<std::size_t>(fd.file);
    const auto& toks = files[fi]->tokens();
    const FuncScope& f =
        scopes[fi].funcs[static_cast<std::size_t>(fd.func)];
    FuncSummary& s = prog.summaries[d];
    s.is_coroutine = fd.is_coroutine;
    s.returns_async = fd.returns_async;
    const Cfg& cfg = cfgs[fi]->get(fd.func);
    if (fd.is_coroutine && !f.suspends.empty()) {
      const std::vector<bool> reach = blocks_reaching_exit(cfg);
      for (std::size_t b = 0; b < cfg.blocks.size() && !s.suspends_forever;
           ++b) {
        if (cfg.blocks[b].suspends && !reach[b]) s.suspends_forever = true;
      }
    }
    local_param_effects(toks, scopes[fi], fd.func,
                        prog.graph.sites(fd.file), static_cast<int>(d),
                        fd.params_reliable, &s, &fwd[d]);
    for (const CallSite& site : prog.graph.sites(fd.file)) {
      if (site.caller != static_cast<int>(d) || site.name_tok == 0) continue;
      const Token& before = toks[site.name_tok - 1];
      if (before.ident("return") || before.ident("co_return")) {
        return_sites[d].push_back(&site);
      }
    }
  }

  // Phase 1: monotone fixpoint for status / touch / returns_async facts
  // flowing through resolved call edges. Bounded rounds; each fact only
  // ever flips false -> true, so the loop terminates early in practice.
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    for (std::size_t d = 0; d < defs.size(); ++d) {
      for (const FwdRec& fr : fwd[d]) {
        const auto c = static_cast<std::size_t>(fr.site->callee);
        ParamEffect& pe =
            prog.summaries[d].params[static_cast<std::size_t>(fr.param)];
        if (!defs[c].params_reliable ||
            static_cast<std::size_t>(fr.arg) >=
                prog.summaries[c].params.size()) {
          // Opaque parameter shape: same conservative answer as an
          // unresolved callee.
          if (pe.is_status_out && !pe.status_written) {
            pe.status_written = true;
            pe.write_line = fr.site->line;
            changed = true;
          }
          continue;
        }
        const ParamEffect& cpe =
            prog.summaries[c].params[static_cast<std::size_t>(fr.arg)];
        if (pe.is_status_out) {
          if (cpe.is_status_out) {
            if (cpe.status_written && !pe.status_written) {
              pe.status_written = true;
              pe.write_line = fr.site->line;
              changed = true;
            }
            if (cpe.status_checked && !pe.status_checked) {
              pe.status_checked = true;
              changed = true;
            }
          } else if (!pe.status_checked) {
            pe.status_checked = true;  // consumed by value
            changed = true;
          }
        }
        if (cpe.touched && !pe.touched) {
          pe.touched = true;
          pe.touch_def = cpe.touch_def;
          pe.touch_line = cpe.touch_line;
          changed = true;
        }
      }
      if (defs[d].returns_auto && !prog.summaries[d].returns_async) {
        for (const CallSite* site : return_sites[d]) {
          if (site->callee >= 0 &&
              prog.summaries[static_cast<std::size_t>(site->callee)]
                  .returns_async) {
            prog.summaries[d].returns_async = true;
            changed = true;
            break;
          }
        }
      }
    }
    if (!changed) break;
  }

  // Phase 2: resource effects. Each round recomputes every function's
  // effects with the current callee summaries substituted at call sites
  // (Gauss-Seidel in def order); effects grow monotonically towards the
  // key set reachable through the call graph, so a handful of rounds
  // covers any realistic helper depth. Recursion simply stabilizes.
  for (int round = 0; round < 5; ++round) {
    bool changed = false;
    for (std::size_t d = 0; d < defs.size(); ++d) {
      const FuncDef& fd = defs[d];
      const auto fi = static_cast<std::size_t>(fd.file);
      const auto& toks = files[fi]->tokens();
      const FuncScope& f =
          scopes[fi].funcs[static_cast<std::size_t>(fd.func)];
      const Cfg& cfg = cfgs[fi]->get(fd.func);
      std::vector<std::vector<ResourceEventEx>> evs(cfg.blocks.size());
      direct_events(toks, scopes[fi], fd.func, cfg,
                    fd.params_reliable ? &f.params : nullptr, &evs);
      substituted_events(prog.summaries, toks,
                         prog.graph.sites(fd.file), static_cast<int>(d), cfg,
                         &evs);
      sort_blocks(&evs);
      std::vector<ResourceEffect> effects =
          effects_from_events(cfg, evs, f, fd.params_reliable);
      if (!same_effects(effects, prog.summaries[d].resources)) {
        prog.summaries[d].resources = std::move(effects);
        changed = true;
      }
    }
    if (!changed) break;
  }

  if (!cache_path.empty()) {
    save_cache(cache_path, files, scopes, prog.summaries);
  }
  return prog;
}

}  // namespace lint
