// liblint: per-function control-flow graphs over the token stream.
//
// Lifts the scope tracker's flat function bodies to a statement-level CFG:
// basic blocks split at `if`/`else`/`for`/`while`/`do`/`switch`/`break`/
// `continue`/`return`/`co_return`, with suspension points (`co_await`/
// `co_yield`) recorded as block annotations (a suspending statement also
// ends its block, so "after the suspension" is a block boundary). Nested
// lambda bodies are excluded -- each lambda is its own FuncScope and gets
// its own CFG.
//
// Like the scope tracker this is a structural parse, not a compiler
// front-end. It is deliberately conservative where the language is
// undecidable at token level:
//   * conditions are never evaluated -- both edges of a branch exist --
//     EXCEPT the constant loops `while (true)` / `while (1)` / `for (;;)`,
//     which get no loop-exit edge (the repo's server coroutines are
//     `while (true)` pumps whose only exits are explicit `co_return`s, and
//     a spurious fall-through edge would make every cross-iteration
//     resource handoff look leaky);
//   * a `catch` body is reachable from the block preceding its `try`;
//   * `goto` is not modelled (the tree has none).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lint/scope.hpp"
#include "lint/token.hpp"

namespace lint {

struct CfgBlock {
  std::size_t begin = 0;  ///< token range [begin, end) of the block's code
  std::size_t end = 0;    ///< (empty for synthetic join/exit blocks)
  std::uint32_t line = 0;  ///< line of the first token attributed, 0 if none
  bool suspends = false;   ///< block contains/ends at a co_await or co_yield
  std::vector<int> succ;
  std::vector<int> pred;  ///< derived from succ when the build finalizes
};

struct Cfg {
  std::vector<CfgBlock> blocks;
  int entry = 0;  ///< always block 0
  int exit = 1;   ///< always block 1; synthetic, holds no tokens

  const CfgBlock& block(int i) const {
    return blocks[static_cast<std::size_t>(i)];
  }
  bool has_edge(int a, int b) const;
};

/// Builds the CFG of `scopes.funcs[func_idx]` over `toks`. Token ranges of
/// that function's direct child lambdas are excluded from the blocks'
/// suspension scan (callers doing their own token walks over block ranges
/// must skip them too -- see child ranges in ScopeInfo/FuncScope).
Cfg build_cfg(const std::vector<Token>& toks, const ScopeInfo& scopes,
              int func_idx);

/// Per-block reachability of the CFG exit: `result[b]` is true when some
/// path from block `b` reaches the exit block. False for every block of a
/// `while (true)` pump past the last escape -- the "suspends forever"
/// region the summary layer and the summary-leak rule reason about.
std::vector<bool> blocks_reaching_exit(const Cfg& cfg);

/// Lazily-built per-function CFGs for one file, shared by every flow rule
/// so the parse runs once per function no matter how many rules consult
/// it. Not thread-safe; the engine runs all rules for a file on one worker.
class CfgCache {
 public:
  CfgCache(const std::vector<Token>& toks, const ScopeInfo& scopes)
      : toks_(toks), scopes_(scopes), built_(scopes.funcs.size()) {}

  const Cfg& get(int func_idx) const;

 private:
  const std::vector<Token>& toks_;
  const ScopeInfo& scopes_;
  mutable std::vector<std::unique_ptr<Cfg>> built_;
};

}  // namespace lint
