// liblint: function/lambda scope analysis over a token stream.
//
// Walks the brace structure of a file and recovers the facts the coroutine
// rules need but no regex can see:
//   * which `{ ... }` bodies are functions and which are lambdas;
//   * each body's capture list and parameter list;
//   * whether a body is a coroutine (contains co_await / co_return /
//     co_yield at its own nesting level -- a nested lambda's co_await does
//     not make the enclosing function a coroutine);
//   * the token positions of its own suspension points (co_await/co_yield);
//   * the names of functions declared (or defined) to return sim::Task or
//     sim::Future, feeding the cross-file async-call symbol table.
//
// This is a heuristic structural parse, not a compiler front-end: it aims
// for zero false scope assignments on idiomatic code in this repo and its
// fixtures, and degrades by classifying an unrecognized brace as a plain
// block (which merges into the enclosing function scope).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint/token.hpp"

namespace lint {

struct Capture {
  enum Kind { kDefaultRef, kDefaultCopy, kByRef, kByCopy, kThis } kind;
  std::string_view name;  // empty for defaults / this
};

struct Param {
  std::string_view name;
  /// Last identifier of the declared type (`PutStatus* st` -> "PutStatus",
  /// `const std::string& k` -> "string"); empty when unrecoverable. The
  /// call-graph layer uses this for receiver/out-param typing only, so an
  /// imprecise value degrades to "unresolved", never to a wrong edge.
  std::string_view type_name;
  bool is_lvalue_ref = false;
  bool is_rvalue_ref = false;
  bool is_pointer = false;
};

struct FuncScope {
  bool is_lambda = false;
  bool is_coroutine = false;
  std::uint32_t header_line = 0;  // line of the introducer ([ or the name)
  std::string_view name;          // empty for lambdas
  std::string_view cls;           // "Cls" from a `Cls::name(...)` definition
  std::size_t name_tok = SIZE_MAX;    // token index of the name (lambdas:
                                      // the '[' introducer token)
  std::size_t param_open = SIZE_MAX;  // '(' of the parameter list, if any
  std::size_t param_close = SIZE_MAX;
  std::size_t body_begin = 0;     // token index of '{'
  std::size_t body_end = 0;       // token index of matching '}'
  std::vector<Capture> captures;
  std::vector<Param> params;
  std::vector<std::size_t> suspends;  // own-body co_await/co_yield positions
  int parent = -1;                    // enclosing FuncScope index, -1 if none

  bool has_ref_capture() const {
    for (const Capture& c : captures) {
      if (c.kind == Capture::kDefaultRef || c.kind == Capture::kByRef)
        return true;
    }
    return false;
  }
};

struct ScopeInfo {
  std::vector<FuncScope> funcs;
  /// Names of functions whose declared return type mentions Task or Future.
  std::vector<std::string> async_fn_names;
  /// Names declared with any *other* return type (or bound to a lambda).
  /// The engine subtracts these from the async set: a name that is async in
  /// one class and sync in another is ambiguous at a call site, and a
  /// name-only symbol table must stay silent rather than guess.
  std::vector<std::string> sync_fn_names;

  /// Innermost FuncScope whose body contains token index `i`, or -1.
  int enclosing(std::size_t i) const;
};

ScopeInfo analyze_scopes(const std::vector<Token>& toks);

/// Token index of the matching close for the opener at `open` (one of
/// ( [ { ). Returns toks.size() if unbalanced.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open);

/// Token index of the matching opener for the closer at `close`. Returns
/// SIZE_MAX if unbalanced.
std::size_t match_backward(const std::vector<Token>& toks, std::size_t close);

}  // namespace lint
