// liblint: declarative typestate protocols.
//
// A protocol is a small state machine over one *tracked object*: states,
// events (method verbs observed as `recv.verb(...)` / `recv->verb(...)` on
// the object), legal transitions, error rows with messages, and exit
// obligations ("this state must not reach function exit"). The typestate
// engine (typestate.cpp) compiles each table onto the existing per-function
// CFGs as reachable <object, state-at-block-entry> facts and reports every
// error with the full event trace attached (Finding::path -> SARIF
// codeFlows).
//
// Semantics, chosen so tables stay tiny and conservative:
//   * state 0 is the initial state and doubles as "unknown": every object
//     starts there, so an error row can only fire after the machine has
//     *witnessed* the events that led into the error's source state (a
//     function that only ever pushes can never reach "closed");
//   * an event with no transition row for the current state leaves the
//     state unchanged (stay), including after an error fires -- so
//     `close(); push(); push();` reports both pushes;
//   * error rows and obligations may carry a gate event: they are armed
//     only when the function (with callee effects substituted) performs the
//     gate event on the same object somewhere. This is the exact pairing
//     gate the resource rules use -- one half of a deliberate
//     cross-coroutine handoff stays silent.
//
// Objects are tracked by declared type (a parameter or local whose type
// names the protocol's type, template arguments and ref/pointer decorations
// skipped) or by receiver-identifier glob, plus -- interprocedurally --
// any receiver a resolved callee's protocol effect substitutes in (the
// callee typed it, so the caller trusts it). See "Protocol authoring
// guide" in docs/STATIC_ANALYSIS.md.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "lint/rules.hpp"

namespace lint {

/// `from` --event--> `to`. Unlisted (state, event) pairs stay put.
struct TsTransition {
  int from = 0;
  int event = 0;
  int to = 0;
};

/// Observing `event` while the object may be in `state` is a finding.
/// The state still follows the transition table afterwards (stay, unless a
/// transition row exists), so repeated violations each report once.
struct TsError {
  int state = 0;
  int event = 0;
  /// Event index that must also occur on the object somewhere in the same
  /// function for this row to arm; -1 for always armed.
  int gate_event = -1;
  std::string_view message;
};

/// `state` reachable at function exit is a finding (reported at the last
/// event that entered the state on the witness path).
struct TsObligation {
  int state = 0;
  /// Same gating as TsError::gate_event; -1 for always armed.
  int gate_event = -1;
  std::string_view message;
};

struct TsProtocol {
  std::string_view rule_name;    ///< e.g. "ts-mailbox"; also the allow() key
  std::string_view description;  ///< one line, for the rule catalog
  std::vector<std::string_view> states;  ///< display names; [0] is initial
  std::vector<std::string_view> events;  ///< method verbs, unique per table
  /// Tracked-object selectors: declared type names (last identifier of the
  /// template-less type, `sim::Mailbox<int>& mb` -> "Mailbox") and receiver
  /// identifier globs ('*' wildcard).
  std::vector<std::string_view> type_names;
  std::vector<std::string_view> recv_globs;
  std::vector<TsTransition> transitions;
  std::vector<TsError> errors;
  std::vector<TsObligation> obligations;
  /// Scan-root-relative path prefixes this protocol checks; empty means
  /// everywhere (same mechanism as the unchecked-put scope).
  std::vector<std::string_view> path_prefixes;
};

/// The production protocol tables, in rule-catalog order. Indices into this
/// vector are the `protocol` ids used by ProtocolEffect / TsEventRef.
/// Exposed for the docs drift test.
const std::vector<TsProtocol>& typestate_protocols();

/// One checker Rule per protocol table, in the same order.
std::vector<std::unique_ptr<Rule>> make_typestate_rules();

}  // namespace lint
