// liblint: C++ token model and tokenizer.
//
// The tokenizer understands just enough C++ lexing for rule-writing to be
// sound where the old per-line regexes were not: // and /* */ comments,
// string/char literals (including raw strings and digit separators), and
// preprocessor directives (with line continuations) never leak into the
// token stream, so a rule matching `rand(` cannot fire on prose or on a
// string literal. Tokens are string_views into the file's text buffer,
// which the owning lint::SourceFile keeps alive.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lint {

enum class Tok : std::uint8_t {
  kIdent,   // identifiers and keywords (rules compare text)
  kNumber,  // pp-number, including 0x.., digit separators, suffixes
  kString,  // "..", R"(..)", u8".." etc (text includes quotes)
  kChar,    // 'x'
  kPunct,   // operators and punctuation, longest-match (e.g. "->", "::")
};

struct Token {
  Tok kind;
  std::string_view text;
  std::uint32_t line;  // 1-based

  bool is(std::string_view t) const { return text == t; }
  bool ident(std::string_view t) const { return kind == Tok::kIdent && text == t; }
};

/// A comment, kept out of the token stream but retained for suppression
/// parsing. `line` is the line the comment starts on.
struct Comment {
  std::uint32_t line;
  std::string_view text;  // includes the // or /* delimiters
};

struct TokenStream {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes `text`. The returned views point into `text`; the caller must
/// keep the buffer alive for the lifetime of the stream.
TokenStream tokenize(std::string_view text);

}  // namespace lint
