// liblint: forward dataflow over a Cfg.
//
// A deliberately small gen/kill framework: facts are dense small integers
// chosen by the rule (acquire sites, moved-from locals, pending statuses),
// the meet is union ("may" analysis), and the solver iterates to a fixed
// point so facts propagate correctly around loop back edges. Rules compute
// each block's *net* gen/kill by walking the block's tokens in order
// (last-event-wins), then read `in`/`out` back, so intra-block precision
// stays in the rule and the framework stays four operations big.
#pragma once

#include <cstdint>
#include <vector>

#include "lint/cfg.hpp"

namespace lint {

/// Forward may-analysis: out[b] = gen[b] ∪ (in[b] − kill[b]),
/// in[b] = ∪ out[p] over predecessors p, in[entry] = ∅.
class ForwardMay {
 public:
  ForwardMay(const Cfg& cfg, std::size_t num_facts);

  void add_gen(int block, std::size_t fact);
  void add_kill(int block, std::size_t fact);

  /// Iterates to a fixed point. Call once, after all gen/kill are set.
  void solve();

  bool in(int block, std::size_t fact) const;
  bool out(int block, std::size_t fact) const;
  bool gen(int block, std::size_t fact) const;

  /// A shortest block path along which `fact` is generated and survives
  /// to `to`: starts at some block whose gen set holds `fact`, every
  /// interior block keeps it live (fact ∈ out), and ends at `to` (which
  /// need not preserve it). Returns {} if no such path exists -- callers
  /// should only ask after observing fact ∈ in(to) (or to being a gen
  /// block). Deterministic: BFS in block-index order.
  std::vector<int> live_path(int to, std::size_t fact) const;

 private:
  using Row = std::vector<std::uint64_t>;

  static bool get(const Row& r, std::size_t fact) {
    return (r[fact / 64] >> (fact % 64)) & 1u;
  }
  static void set(Row& r, std::size_t fact) {
    r[fact / 64] |= std::uint64_t{1} << (fact % 64);
  }

  const Cfg& cfg_;
  std::size_t words_;
  std::vector<Row> gen_, kill_, in_, out_;
};

}  // namespace lint
