// liblint: the scan driver.
//
// Orchestrates a scan: collect files under the given roots, load+tokenize+
// scope-analyze each exactly once (in parallel), run every rule over the
// shared token streams (in parallel), then apply suppressions, report stale
// suppressions, subtract the baseline, and return deterministically sorted
// findings.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "lint/source.hpp"

namespace lint {

struct Options {
  std::vector<std::string> roots;  // directories (recursed) or single files
  std::string baseline_path;       // empty: no baseline
  bool update_baseline = false;    // rewrite baseline_path from this scan
  unsigned jobs = 0;               // 0: hardware concurrency
};

struct ScanResult {
  std::vector<Finding> findings;  // sorted; after suppressions + baseline
  /// Trimmed source text of each finding's line, parallel to `findings`
  /// (captured while the files are loaded; feeds baseline keys).
  std::vector<std::string> line_texts;
  std::size_t files_scanned = 0;
  std::size_t baseline_matched = 0;  // findings absorbed by the baseline
  std::string error;                 // non-empty: scan failed (I/O, bad root)
};

/// Runs a full scan per `opts`.
ScanResult scan(const Options& opts);

/// Core analysis over already-loaded files; exposed so tests can lint
/// in-memory buffers. Consumes `files`. Applies suppressions and the stale
/// check but no baseline.
ScanResult analyze(std::vector<std::unique_ptr<SourceFile>> files,
                   unsigned jobs);

/// Baseline key for a finding: `rule|file|<trimmed source line text>`.
/// Line-text keyed (not line-number keyed) so unrelated edits above a
/// grandfathered finding do not invalidate the baseline.
std::string baseline_key(const Finding& f, std::string_view line_text);

}  // namespace lint
