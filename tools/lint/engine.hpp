// liblint: the scan driver.
//
// Orchestrates a scan as a two-pass pipeline: collect files under the given
// roots, load+tokenize+scope-analyze each exactly once (in parallel), build
// the whole-program layer (call graph + function summaries, sequential and
// deterministic), then run every rule over the shared token streams (in
// parallel) with summaries available at call sites, apply suppressions,
// report stale suppressions, and return deterministically sorted findings.
// There is no baseline mechanism: the tree lints clean (zero findings) and
// deliberate exceptions carry inline reasoned `allow()` markers -- see
// docs/STATIC_ANALYSIS.md "Zero-finding policy". The summary pass can be
// disabled
// (`--no-summaries`), which degrades every rule to its intraprocedural
// behaviour -- strictly less precise, never differently wrong.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lint/source.hpp"

namespace lint {

struct Options {
  std::vector<std::string> roots;  // directories (recursed) or single files
  unsigned jobs = 0;               // 0: hardware concurrency
  bool summaries = true;           // build the interprocedural layer
  std::string cache_path;          // summary cache file; empty: no cache
};

/// Wall-time and whole-program counters for one scan, surfaced by --stats
/// and embedded in the SARIF run properties. Timings are reporting-only
/// output: findings never depend on them.
struct ScanStats {
  double load_ms = 0;     // read + tokenize
  double scope_ms = 0;    // scope analysis + async name pooling
  double summary_ms = 0;  // call graph + summary propagation (or cache load)
  double rules_ms = 0;    // all rules over all files (wall, not CPU-sum)
  double post_ms = 0;     // suppressions, stale check, sort
  /// Per-rule CPU time summed across files/threads, in all_rules() order.
  std::vector<std::pair<std::string, double>> rule_ms;
  std::size_t defs = 0;            // function definitions in the program
  std::size_t call_sites = 0;      // call expressions seen
  std::size_t resolved_calls = 0;  // sites resolved to exactly one def
  bool summaries = false;          // interprocedural layer was enabled
  bool cache_hit = false;          // summary table loaded from cache
};

struct ScanResult {
  std::vector<Finding> findings;  // sorted; after suppressions
  std::size_t files_scanned = 0;
  std::string error;  // non-empty: scan failed (I/O, bad root)
  ScanStats stats;
};

/// Knobs for the in-memory entry point (tests).
struct AnalyzeOptions {
  unsigned jobs = 0;
  bool summaries = true;
  std::string cache_path;
};

/// Runs a full scan per `opts`.
ScanResult scan(const Options& opts);

/// Core analysis over already-loaded files; exposed so tests can lint
/// in-memory buffers. Consumes `files`. Applies suppressions and the stale
/// check.
ScanResult analyze(std::vector<std::unique_ptr<SourceFile>> files,
                   const AnalyzeOptions& opts);
/// Back-compat shorthand: summaries on, no cache.
ScanResult analyze(std::vector<std::unique_ptr<SourceFile>> files,
                   unsigned jobs);

}  // namespace lint
