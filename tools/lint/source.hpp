// liblint: a loaded, tokenized source file plus suppression bookkeeping.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/token.hpp"

namespace lint {

/// One step of the execution path a flow rule followed to its conclusion
/// (acquire -> branch -> exit, move -> read, ...). Rendered as a SARIF
/// threadFlow location so code scanning walks the reviewer through it.
struct PathStep {
  std::uint32_t line = 0;
  std::string note;
  /// Scan-root-relative path of the file this step lives in; empty means
  /// the finding's own file. Interprocedural rules set it when a step
  /// points into a callee (wrapper body, helper's acquire site, ...).
  std::string file{};

  friend bool operator==(const PathStep& a, const PathStep& b) {
    return a.line == b.line && a.note == b.note && a.file == b.file;
  }
};

struct Finding {
  std::string file;  // scan-root-relative path, '/'-separated (e.g. src/x.hpp)
  std::uint32_t line = 0;
  std::string rule;
  std::string message;
  /// Non-empty only for path-sensitive findings. Not part of the sort key
  /// (file/line/rule/message already order deterministically) but part of
  /// equality, so the jobs-determinism test covers paths too.
  std::vector<PathStep> path{};

  friend bool operator<(const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  }
  friend bool operator==(const Finding& a, const Finding& b) {
    return a.file == b.file && a.line == b.line && a.rule == b.rule &&
           a.message == b.message && a.path == b.path;
  }
};

/// One `allow(<rule>)` marker (prefixed with the tool name in the actual
/// comment syntax -- see docs/STATIC_ANALYSIS.md). A suppression silences
/// findings of `rule` on its own line and the line directly below (so it
/// can sit alone above the offending statement). Suppressions that silence
/// nothing are themselves reported as `stale-suppression` errors.
struct Suppression {
  std::uint32_t line = 0;
  std::string rule;
  bool used = false;
};

class SourceFile {
 public:
  /// Loads and tokenizes `path`. `rel` is the path reported in findings.
  /// Returns nullptr if the file cannot be read.
  static std::unique_ptr<SourceFile> load(const std::string& path,
                                          std::string rel);

  /// Builds a SourceFile from an in-memory buffer (for tests).
  static std::unique_ptr<SourceFile> from_text(std::string rel,
                                               std::string text);

  const std::string& rel() const { return rel_; }
  /// The full file contents (summary-cache hashing).
  const std::string& text() const { return text_; }
  const std::vector<Token>& tokens() const { return stream_.tokens; }
  const std::vector<Comment>& comments() const { return stream_.comments; }
  std::uint32_t line_count() const { return line_count_; }

  /// The raw text of 1-based line `n`, without the trailing newline.
  std::string_view line_text(std::uint32_t n) const;

  std::vector<Suppression>& suppressions() { return suppressions_; }
  const std::vector<Suppression>& suppressions() const { return suppressions_; }

  /// True if a suppression for `rule` covers `line`; marks it used.
  bool suppress(std::string_view rule, std::uint32_t line);

 private:
  void index();

  std::string rel_;
  std::string text_;  // owns the bytes every string_view points into
  TokenStream stream_;
  std::vector<std::size_t> line_offsets_;  // line_offsets_[i] = start of line i+1
  std::uint32_t line_count_ = 0;
  std::vector<Suppression> suppressions_;
};

}  // namespace lint
