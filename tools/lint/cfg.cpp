#include "lint/cfg.hpp"

#include <algorithm>

namespace lint {

bool Cfg::has_edge(int a, int b) const {
  const auto& s = block(a).succ;
  return std::find(s.begin(), s.end(), b) != s.end();
}

namespace {

/// Statement-level recursive-descent walk of one function body. Maintains
/// a "current" open block; control keywords seal it and wire edges.
class Builder {
 public:
  Builder(const std::vector<Token>& toks, const ScopeInfo& scopes,
          int func_idx)
      : toks_(toks), f_(scopes.funcs[static_cast<std::size_t>(func_idx)]) {
    for (const FuncScope& g : scopes.funcs) {
      if (g.parent == func_idx) child_.emplace_back(g.body_begin, g.body_end);
    }
  }

  Cfg run() {
    cfg_.blocks.resize(2);  // entry = 0, exit = 1
    cur_ = 0;
    cfg_.blocks[0].begin = cfg_.blocks[0].end = f_.body_begin + 1;
    attribute_line(0, f_.body_begin + 1);
    if (f_.body_end < toks_.size()) {
      cfg_.blocks[1].line = toks_[f_.body_end].line;  // the closing '}'
    }
    parse_stmts(f_.body_begin + 1, f_.body_end);
    if (cur_ != -1) edge(cur_, cfg_.exit);  // fall off the end
    finalize();
    return std::move(cfg_);
  }

 private:
  // --- graph plumbing ------------------------------------------------------

  int new_block(std::size_t at) {
    cfg_.blocks.push_back(CfgBlock{});
    const int idx = static_cast<int>(cfg_.blocks.size()) - 1;
    cfg_.blocks[static_cast<std::size_t>(idx)].begin = at;
    cfg_.blocks[static_cast<std::size_t>(idx)].end = at;
    attribute_line(idx, at);
    return idx;
  }

  void edge(int a, int b) {
    auto& s = cfg_.blocks[static_cast<std::size_t>(a)].succ;
    if (std::find(s.begin(), s.end(), b) == s.end()) s.push_back(b);
  }

  void attribute_line(int b, std::size_t at) {
    auto& blk = cfg_.blocks[static_cast<std::size_t>(b)];
    if (blk.line == 0 && at < toks_.size()) blk.line = toks_[at].line;
  }

  /// Extends the current block to cover tokens up to (exclusive) `end`,
  /// creating a fresh unreachable block first when no block is open
  /// (statements after a return are dead code but must still hold tokens).
  void cover(std::size_t from, std::size_t end) {
    if (cur_ == -1) cur_ = new_block(from);
    auto& blk = cfg_.blocks[static_cast<std::size_t>(cur_)];
    if (blk.end < end) blk.end = end;
    attribute_line(cur_, from);
  }

  bool in_child(std::size_t i) const {
    for (const auto& [b, e] : child_) {
      if (i >= b && i <= e) return true;
    }
    return false;
  }

  // --- statement scanning --------------------------------------------------

  /// Index one past the `;` terminating the simple statement at `i` (depth-
  /// balanced), or `limit`. Sets *suspends if the statement contains a
  /// co_await / co_yield outside nested lambda bodies.
  std::size_t stmt_end(std::size_t i, std::size_t limit, bool* suspends) {
    int depth = 0;
    for (std::size_t j = i; j < limit; ++j) {
      const Token& t = toks_[j];
      if (t.kind == Tok::kIdent) {
        if ((t.text == "co_await" || t.text == "co_yield") && !in_child(j)) {
          *suspends = true;
        }
        continue;
      }
      if (t.kind != Tok::kPunct) continue;
      if (t.is("(") || t.is("[") || t.is("{")) ++depth;
      else if (t.is(")") || t.is("]") || t.is("}")) --depth;
      else if (t.is(";") && depth <= 0) return j + 1;
    }
    return limit;
  }

  std::size_t parse_stmts(std::size_t i, std::size_t limit) {
    while (i < limit) i = parse_stmt(i, limit);
    return i;
  }

  std::size_t parse_stmt(std::size_t i, std::size_t limit) {
    const Token& t = toks_[i];
    if (t.is("{")) {
      const std::size_t close = std::min(match_forward(toks_, i), limit);
      parse_stmts(i + 1, close);
      return std::min(close + 1, limit);
    }
    if (t.kind == Tok::kIdent) {
      if (t.text == "if") return parse_if(i, limit);
      if (t.text == "while") return parse_while(i, limit);
      if (t.text == "for") return parse_for(i, limit);
      if (t.text == "do") return parse_do(i, limit);
      if (t.text == "switch") return parse_switch(i, limit);
      if (t.text == "try") return i + 1;  // the compound that follows parses
      if (t.text == "catch") return parse_catch(i, limit);
      if (t.text == "break" || t.text == "continue") {
        bool susp = false;
        const std::size_t end = stmt_end(i, limit, &susp);
        cover(i, end);
        if (susp) cfg_.blocks[static_cast<std::size_t>(cur_)].suspends = true;
        const auto& targets = t.text == "break" ? break_ : continue_;
        if (!targets.empty()) edge(cur_, targets.back());
        cur_ = -1;
        return end;
      }
      if (t.text == "return" || t.text == "co_return") {
        bool susp = false;
        const std::size_t end = stmt_end(i, limit, &susp);
        cover(i, end);
        if (susp) cfg_.blocks[static_cast<std::size_t>(cur_)].suspends = true;
        edge(cur_, cfg_.exit);
        cur_ = -1;
        return end;
      }
      if (t.text == "case" || t.text == "default") {
        // A label reached outside parse_switch's own loop (e.g. nested in a
        // brace it treats as one statement): treat as linear.
        std::size_t j = i;
        while (j < limit && !toks_[j].is(":")) ++j;
        cover(i, std::min(j + 1, limit));
        return std::min(j + 1, limit);
      }
      if (t.text == "else") return i + 1;  // stray else: consumed defensively
    }
    // Simple statement (expression, declaration, lambda-valued init, ...).
    bool susp = false;
    const std::size_t end = stmt_end(i, limit, &susp);
    cover(i, end);
    if (susp) {
      cfg_.blocks[static_cast<std::size_t>(cur_)].suspends = true;
      // A suspension ends its block so "after the co_await" is a boundary.
      const int next = new_block(end);
      edge(cur_, next);
      cur_ = next;
    }
    return end;
  }

  /// Seals `cur_` and opens a header block covering `kw (cond)`. Returns
  /// the index one past the condition's `)` (or past the keyword if no
  /// parens followed). Header co_awaits (e.g. `if (co_await f())`) mark the
  /// header block as suspending.
  int open_header(std::size_t kw, std::size_t* after) {
    std::size_t p = kw + 1;
    if (p < toks_.size() && toks_[p].ident("constexpr")) ++p;  // if constexpr
    std::size_t end = p;
    if (p < toks_.size() && toks_[p].is("(")) {
      end = std::min(match_forward(toks_, p) + 1, toks_.size());
    }
    const int prev = cur_;
    cur_ = -1;
    const int hdr = new_block(kw);
    cfg_.blocks[static_cast<std::size_t>(hdr)].end = end;
    if (prev != -1) edge(prev, hdr);
    for (std::size_t j = kw; j < end; ++j) {
      if ((toks_[j].ident("co_await") || toks_[j].ident("co_yield")) &&
          !in_child(j)) {
        cfg_.blocks[static_cast<std::size_t>(hdr)].suspends = true;
      }
    }
    *after = end;
    return hdr;
  }

  std::size_t parse_if(std::size_t i, std::size_t limit) {
    std::size_t after = i;
    const int hdr = open_header(i, &after);
    const int then_entry = new_block(after);
    edge(hdr, then_entry);
    cur_ = then_entry;
    std::size_t next = parse_stmt(after, limit);
    const int then_exit = cur_;
    int else_exit = -1;
    bool has_else = false;
    if (next < limit && toks_[next].ident("else")) {
      has_else = true;
      const int else_entry = new_block(next + 1);
      edge(hdr, else_entry);
      cur_ = else_entry;
      next = parse_stmt(next + 1, limit);
      else_exit = cur_;
    }
    if (then_exit == -1 && has_else && else_exit == -1) {
      cur_ = -1;  // both arms terminated; what follows is dead code
      return next;
    }
    const int join = new_block(next);
    if (!has_else) edge(hdr, join);
    if (then_exit != -1) edge(then_exit, join);
    if (else_exit != -1) edge(else_exit, join);
    cur_ = join;
    return next;
  }

  /// True when the parenthesized condition of the `while` at `kw` is the
  /// constant `true` / `1` (so the only way out of the loop is explicit).
  bool constant_true_cond(std::size_t kw) const {
    if (kw + 3 >= toks_.size() || !toks_[kw + 1].is("(")) return false;
    if (!toks_[kw + 3].is(")")) return false;
    return toks_[kw + 2].ident("true") || toks_[kw + 2].is("1");
  }

  std::size_t parse_while(std::size_t i, std::size_t limit) {
    const bool infinite = constant_true_cond(i);
    std::size_t after = i;
    const int hdr = open_header(i, &after);
    const int body = new_block(after);
    edge(hdr, body);
    const int join = new_block(after);  // begin patched after the body
    break_.push_back(join);
    continue_.push_back(hdr);
    cur_ = body;
    const std::size_t next = parse_stmt(after, limit);
    break_.pop_back();
    continue_.pop_back();
    if (cur_ != -1) edge(cur_, hdr);  // back edge
    if (!infinite) edge(hdr, join);
    auto& j = cfg_.blocks[static_cast<std::size_t>(join)];
    j.begin = j.end = next;
    j.line = 0;
    attribute_line(join, next);
    cur_ = join;
    return next;
  }

  /// `for (;;)` -- empty condition between the two top-level semicolons.
  bool for_missing_cond(std::size_t open, std::size_t close) const {
    int depth = 0;
    std::size_t first_semi = 0;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (toks_[j].is("(") || toks_[j].is("[") || toks_[j].is("{")) ++depth;
      else if (toks_[j].is(")") || toks_[j].is("]") || toks_[j].is("}")) --depth;
      else if (toks_[j].is(";") && depth == 0) {
        if (first_semi == 0) {
          first_semi = j;
        } else {
          return j == first_semi + 1;
        }
      }
    }
    return false;
  }

  std::size_t parse_for(std::size_t i, std::size_t limit) {
    bool infinite = false;
    if (i + 1 < toks_.size() && toks_[i + 1].is("(")) {
      const std::size_t close = match_forward(toks_, i + 1);
      if (close < toks_.size()) infinite = for_missing_cond(i + 1, close);
    }
    std::size_t after = i;
    const int hdr = open_header(i, &after);  // init/cond/incr as one header
    const int body = new_block(after);
    edge(hdr, body);
    const int join = new_block(after);
    break_.push_back(join);
    continue_.push_back(hdr);
    cur_ = body;
    const std::size_t next = parse_stmt(after, limit);
    break_.pop_back();
    continue_.pop_back();
    if (cur_ != -1) edge(cur_, hdr);
    if (!infinite) edge(hdr, join);
    auto& j = cfg_.blocks[static_cast<std::size_t>(join)];
    j.begin = j.end = next;
    j.line = 0;
    attribute_line(join, next);
    cur_ = join;
    return next;
  }

  std::size_t parse_do(std::size_t i, std::size_t limit) {
    const int prev = cur_;
    cur_ = -1;
    const int body = new_block(i + 1);
    if (prev != -1) edge(prev, body);
    const int cond = new_block(i + 1);  // range patched below
    const int join = new_block(i + 1);
    break_.push_back(join);
    continue_.push_back(cond);
    cur_ = body;
    std::size_t next = parse_stmt(i + 1, limit);
    break_.pop_back();
    continue_.pop_back();
    if (cur_ != -1) edge(cur_, cond);
    bool infinite = false;
    if (next < limit && toks_[next].ident("while")) {
      infinite = constant_true_cond(next);
      std::size_t cond_end = next + 1;
      if (cond_end < limit && toks_[cond_end].is("(")) {
        cond_end = std::min(match_forward(toks_, cond_end) + 1, limit);
      }
      if (cond_end < limit && toks_[cond_end].is(";")) ++cond_end;
      auto& c = cfg_.blocks[static_cast<std::size_t>(cond)];
      c.begin = next;
      c.end = cond_end;
      c.line = 0;
      attribute_line(cond, next);
      next = cond_end;
    }
    edge(cond, body);  // loop back
    if (!infinite) edge(cond, join);
    auto& j = cfg_.blocks[static_cast<std::size_t>(join)];
    j.begin = j.end = next;
    j.line = 0;
    attribute_line(join, next);
    cur_ = join;
    return next;
  }

  std::size_t parse_switch(std::size_t i, std::size_t limit) {
    std::size_t after = i;
    const int hdr = open_header(i, &after);
    if (after >= limit || !toks_[after].is("{")) {
      cur_ = hdr;
      return after;  // malformed / macro trickery: degrade to linear
    }
    const std::size_t body_close = std::min(match_forward(toks_, after), limit);
    const int join = new_block(std::min(body_close + 1, limit));
    break_.push_back(join);
    bool has_default = false;
    cur_ = -1;  // statements before the first label are dead
    std::size_t j = after + 1;
    while (j < body_close) {
      const Token& t = toks_[j];
      if (t.ident("case") || t.ident("default")) {
        has_default = has_default || t.ident("default");
        std::size_t lbl = j;
        int depth = 0;
        while (lbl < body_close) {  // scan to the label's ':'
          if (toks_[lbl].is("(") || toks_[lbl].is("[")) ++depth;
          else if (toks_[lbl].is(")") || toks_[lbl].is("]")) --depth;
          else if (toks_[lbl].is(":") && depth == 0) break;
          ++lbl;
        }
        const int fall_from = cur_;
        cur_ = -1;
        const int arm = new_block(j);
        cfg_.blocks[static_cast<std::size_t>(arm)].end =
            std::min(lbl + 1, body_close);
        edge(hdr, arm);
        if (fall_from != -1) edge(fall_from, arm);  // fallthrough
        cur_ = arm;
        j = lbl + 1;
        continue;
      }
      j = parse_stmt(j, body_close);
    }
    if (cur_ != -1) edge(cur_, join);  // fall out of the last arm
    if (!has_default) edge(hdr, join);
    break_.pop_back();
    auto& jb = cfg_.blocks[static_cast<std::size_t>(join)];
    jb.begin = jb.end = std::min(body_close + 1, limit);
    jb.line = 0;
    attribute_line(join, jb.begin);
    cur_ = join;
    return std::min(body_close + 1, limit);
  }

  std::size_t parse_catch(std::size_t i, std::size_t limit) {
    // Reachable both from the try's preceding flow (an exception anywhere in
    // the try body) and as an alternative to the fall-through path.
    const int try_exit = cur_;
    std::size_t after = i;
    const int handler = open_header(i, &after);
    cur_ = handler;
    const std::size_t next = parse_stmt(after, limit);
    const int handler_exit = cur_;
    const int join = new_block(next);
    if (try_exit != -1) edge(try_exit, join);
    if (handler_exit != -1) edge(handler_exit, join);
    cur_ = join;
    return next;
  }

  void finalize() {
    for (std::size_t b = 0; b < cfg_.blocks.size(); ++b) {
      for (int s : cfg_.blocks[b].succ) {
        cfg_.blocks[static_cast<std::size_t>(s)].pred.push_back(
            static_cast<int>(b));
      }
    }
  }

  const std::vector<Token>& toks_;
  const FuncScope& f_;
  std::vector<std::pair<std::size_t, std::size_t>> child_;
  Cfg cfg_;
  int cur_ = -1;
  std::vector<int> break_;
  std::vector<int> continue_;
};

}  // namespace

Cfg build_cfg(const std::vector<Token>& toks, const ScopeInfo& scopes,
              int func_idx) {
  return Builder(toks, scopes, func_idx).run();
}

std::vector<bool> blocks_reaching_exit(const Cfg& cfg) {
  std::vector<bool> r(cfg.blocks.size(), false);
  std::vector<int> work{cfg.exit};
  r[static_cast<std::size_t>(cfg.exit)] = true;
  while (!work.empty()) {
    const int b = work.back();
    work.pop_back();
    for (const int p : cfg.block(b).pred) {
      if (!r[static_cast<std::size_t>(p)]) {
        r[static_cast<std::size_t>(p)] = true;
        work.push_back(p);
      }
    }
  }
  return r;
}

const Cfg& CfgCache::get(int func_idx) const {
  auto& slot = built_[static_cast<std::size_t>(func_idx)];
  if (!slot) {
    slot = std::make_unique<Cfg>(build_cfg(toks_, scopes_, func_idx));
  }
  return *slot;
}

}  // namespace lint
