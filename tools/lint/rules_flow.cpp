// Path-sensitive rules over the CFG/dataflow layers (cfg.hpp,
// dataflow.hpp). Each rule turns a function body into per-block gen/kill
// events, lets ForwardMay push them around branches and loops, and reports
// with the offending path attached (Finding::path -> SARIF codeFlows):
//
//   resource-pairing      an acquire from the policy table can reach
//                         function exit without its release
//   use-after-move        a moved-from Payload/Chunk local is read on some
//                         path before reassignment
//   unchecked-status-path a PutStatus out-param is filled but dropped on
//                         some path (the flow upgrade of unchecked-put)
#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lint/dataflow.hpp"
#include "lint/rules.hpp"

namespace lint {

namespace {

bool path_starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

/// '*'-wildcard match (the only metacharacter the policy table uses).
bool glob_match(std::string_view glob, std::string_view s) {
  std::size_t g = 0, i = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (i < s.size()) {
    if (g < glob.size() && glob[g] == '*') {
      star = g++;
      mark = i;
    } else if (g < glob.size() && glob[g] == s[i]) {
      ++g;
      ++i;
    } else if (star != std::string_view::npos) {
      g = star + 1;
      i = ++mark;
    } else {
      return false;
    }
  }
  while (g < glob.size() && glob[g] == '*') ++g;
  return g == glob.size();
}

/// Token ranges of `idx`'s direct child lambdas: a lambda body is its own
/// FuncScope with its own CFG, so the parent's event scan skips it.
std::vector<std::pair<std::size_t, std::size_t>> child_ranges(
    const ScopeInfo& scopes, int idx) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (const FuncScope& g : scopes.funcs) {
    if (g.parent == idx) out.emplace_back(g.body_begin, g.body_end);
  }
  return out;
}

bool in_ranges(const std::vector<std::pair<std::size_t, std::size_t>>& rs,
               std::size_t i) {
  for (const auto& [b, e] : rs) {
    if (i >= b && i <= e) return true;
  }
  return false;
}

/// Free-standing use: not a member access (`x.v`) or qualified name.
bool plain_use(const std::vector<Token>& toks, std::size_t i) {
  if (i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->") ||
                toks[i - 1].is("::"))) {
    return false;
  }
  if (i + 1 < toks.size() && toks[i + 1].is("::")) return false;
  return true;
}

/// Appends the interior of a block path (everything between the first and
/// last step, which the caller renders itself) as PathSteps, skipping
/// synthetic blocks and repeated lines so the rendered flow stays tight.
void append_interior(const Cfg& cfg, const std::vector<int>& path,
                     const std::string& note, std::vector<PathStep>* steps) {
  std::uint32_t last = steps->empty() ? 0 : steps->back().line;
  for (std::size_t k = 1; k + 1 < path.size(); ++k) {
    const std::uint32_t ln = cfg.block(path[k]).line;
    if (ln == 0 || ln == last) continue;
    steps->push_back({ln, note});
    last = ln;
  }
}

// ---------------------------------------------------------------------------
// resource-pairing

class ResourcePairing final : public Rule {
 public:
  std::string_view name() const override { return "resource-pairing"; }
  std::string_view description() const override {
    return "acquire from the resource policy table can reach function exit "
           "without its matching release on some path";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    const auto& toks = ctx.file.tokens();
    const auto& policy = resource_pair_policy();
    for (std::size_t fi = 0; fi < ctx.scopes.funcs.size(); ++fi) {
      const FuncScope& f = ctx.scopes.funcs[fi];
      if (f.body_end <= f.body_begin) continue;
      const auto nested = child_ranges(ctx.scopes, static_cast<int>(fi));
      const Cfg& cfg = ctx.cfgs.get(static_cast<int>(fi));

      // Collect acquire/release call events per block, keyed by
      // (policy row, receiver identifier).
      struct Ev {
        bool acquire;
        std::size_t key;
        std::size_t tok;
      };
      std::vector<std::vector<Ev>> evs(cfg.blocks.size());
      std::map<std::pair<std::size_t, std::string_view>, std::size_t> keys;
      struct KeyInfo {
        std::size_t policy_row;
        std::string_view recv;
        int acquires = 0;
        int releases = 0;
      };
      std::vector<KeyInfo> key_info;
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const CfgBlock& blk = cfg.blocks[b];
        const std::size_t hi = std::min(blk.end, toks.size());
        for (std::size_t i = blk.begin; i + 3 < toks.size() && i < hi; ++i) {
          if (in_ranges(nested, i)) continue;
          if (toks[i].kind != Tok::kIdent) continue;
          if (!toks[i + 1].is(".") && !toks[i + 1].is("->")) continue;
          if (toks[i + 2].kind != Tok::kIdent || !toks[i + 3].is("(")) continue;
          for (std::size_t pi = 0; pi < policy.size(); ++pi) {
            const ResourcePairEntry& e = policy[pi];
            const bool acq = toks[i + 2].text == e.acquire;
            const bool rel = toks[i + 2].text == e.release;
            if ((!acq && !rel) || !glob_match(e.receiver_glob, toks[i].text)) {
              continue;
            }
            const auto [it, fresh] =
                keys.try_emplace({pi, toks[i].text}, key_info.size());
            if (fresh) key_info.push_back({pi, toks[i].text});
            KeyInfo& ki = key_info[it->second];
            (acq ? ki.acquires : ki.releases)++;
            evs[b].push_back({acq, it->second, i});
            break;
          }
        }
      }

      // Gate: a key participates only when this function both acquires AND
      // releases it -- acquire-only (or release-only) functions are halves
      // of a deliberate cross-coroutine handoff and must stay silent.
      std::vector<bool> active(key_info.size());
      bool any = false;
      for (std::size_t k = 0; k < key_info.size(); ++k) {
        active[k] = key_info[k].acquires > 0 && key_info[k].releases > 0;
        any = any || active[k];
      }
      if (!any) continue;

      // Facts are individual acquire sites of active keys.
      struct Site {
        std::size_t key;
        int block;
        std::uint32_t line;
      };
      std::vector<Site> sites;
      std::map<std::size_t, std::size_t> fact_of_tok;
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        for (const Ev& e : evs[b]) {
          if (e.acquire && active[e.key]) {
            fact_of_tok[e.tok] = sites.size();
            sites.push_back({e.key, static_cast<int>(b), toks[e.tok].line});
          }
        }
      }
      if (sites.empty()) continue;

      ForwardMay df(cfg, sites.size());
      std::vector<int> state(sites.size());  // 0 untouched, 1 live, -1 dead
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (evs[b].empty()) continue;
        std::fill(state.begin(), state.end(), 0);
        for (const Ev& e : evs[b]) {
          if (!active[e.key]) continue;
          if (e.acquire) {
            state[fact_of_tok[e.tok]] = 1;
          } else {
            for (std::size_t s = 0; s < sites.size(); ++s) {
              if (sites[s].key == e.key) state[s] = -1;
            }
          }
        }
        for (std::size_t s = 0; s < sites.size(); ++s) {
          if (state[s] == 1) df.add_gen(static_cast<int>(b), s);
          if (state[s] == -1) df.add_kill(static_cast<int>(b), s);
        }
      }
      df.solve();

      for (std::size_t s = 0; s < sites.size(); ++s) {
        if (!df.in(cfg.exit, s)) continue;
        const KeyInfo& ki = key_info[sites[s].key];
        const ResourcePairEntry& pe = policy[ki.policy_row];
        const std::string recv(ki.recv);
        Finding fd{ctx.file.rel(), sites[s].line, std::string(name()),
                   "'" + recv + "." + std::string(pe.acquire) +
                       "()' can reach function exit without '" + recv + "." +
                       std::string(pe.release) +
                       "()' on some path (early return/continue?); release "
                       "on every path or split the handoff into its own "
                       "function",
                   {}};
        const auto path = df.live_path(cfg.exit, s);
        fd.path.push_back({sites[s].line, "'" + recv + "." +
                                              std::string(pe.acquire) +
                                              "()' acquired here"});
        append_interior(cfg, path,
                        "path continues without '" + recv + "." +
                            std::string(pe.release) + "()'",
                        &fd.path);
        const std::uint32_t exit_ln = cfg.block(cfg.exit).line;
        fd.path.push_back({exit_ln == 0 ? sites[s].line : exit_ln,
                           "function exit with the resource still held"});
        out->push_back(std::move(fd));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// use-after-move

class UseAfterMove final : public Rule {
 public:
  std::string_view name() const override { return "use-after-move"; }
  std::string_view description() const override {
    return "moved-from Payload/Chunk local read on some path before "
           "reassignment";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    const auto& toks = ctx.file.tokens();
    for (std::size_t fi = 0; fi < ctx.scopes.funcs.size(); ++fi) {
      const FuncScope& f = ctx.scopes.funcs[fi];
      if (f.body_end <= f.body_begin) continue;
      const auto nested = child_ranges(ctx.scopes, static_cast<int>(fi));

      // Tracked locals: declared in this body with a bare payload-carrying
      // value type directly before the name (`Payload p = ...`). Pointers,
      // references, templates (`optional<Chunk>`) don't match and stay out.
      std::map<std::string_view, std::size_t> vars;
      for (std::size_t i = f.body_begin + 1;
           i + 2 < toks.size() && i < f.body_end; ++i) {
        if (in_ranges(nested, i)) continue;
        if (!is_tracked_type(toks[i])) continue;
        if (toks[i + 1].kind != Tok::kIdent) continue;
        if (!toks[i + 2].is(";") && !toks[i + 2].is("=") &&
            !toks[i + 2].is("{") && !toks[i + 2].is("(")) {
          continue;
        }
        vars.try_emplace(toks[i + 1].text, vars.size());
      }
      if (vars.empty()) continue;
      const Cfg& cfg = ctx.cfgs.get(static_cast<int>(fi));

      enum class Kind { kMove, kKill, kRead };
      struct Ev {
        Kind kind;
        std::size_t var;
        std::uint32_t line;
        int stmt;  // statement ordinal within the block (for ternary arms)
      };
      std::vector<std::vector<Ev>> evs(cfg.blocks.size());
      // Last move line of each var per block, for path reconstruction.
      std::map<std::pair<int, std::size_t>, std::uint32_t> move_line;
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const CfgBlock& blk = cfg.blocks[b];
        const std::size_t hi = std::min(blk.end, toks.size());
        int depth = 0;
        int stmt = 0;
        for (std::size_t i = blk.begin; i < hi; ++i) {
          if (in_ranges(nested, i)) continue;
          if (toks[i].kind == Tok::kPunct) {
            if (toks[i].is("(") || toks[i].is("[") || toks[i].is("{")) ++depth;
            else if (toks[i].is(")") || toks[i].is("]") || toks[i].is("}"))
              --depth;
            else if (toks[i].is(";") && depth <= 0) ++stmt;
            continue;
          }
          if (toks[i].kind != Tok::kIdent) continue;
          const auto vit = vars.find(toks[i].text);
          if (vit == vars.end()) continue;
          const std::size_t v = vit->second;
          if (i > 0 && is_tracked_type(toks[i - 1])) {
            evs[b].push_back(
                {Kind::kKill, v, toks[i].line, stmt});  // (re)declared
            continue;
          }
          const bool is_move = i >= 4 && i + 1 < toks.size() &&
                               toks[i - 1].is("(") &&
                               toks[i - 2].ident("move") &&
                               toks[i - 3].is("::") &&
                               toks[i - 4].ident("std") && toks[i + 1].is(")");
          if (is_move) {
            evs[b].push_back({Kind::kMove, v, toks[i].line, stmt});
            move_line[{static_cast<int>(b), v}] = toks[i].line;
            continue;
          }
          if (!plain_use(toks, i)) continue;
          if (i + 1 < toks.size() && toks[i + 1].is("=")) {
            evs[b].push_back({Kind::kKill, v, toks[i].line, stmt});  // reassign
          } else if (i > 0 && toks[i - 1].is("&")) {
            evs[b].push_back({Kind::kKill, v, toks[i].line, stmt});  // escapes
          } else {
            evs[b].push_back({Kind::kRead, v, toks[i].line, stmt});
          }
        }
      }

      ForwardMay df(cfg, vars.size());
      std::vector<int> state(vars.size());
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (evs[b].empty()) continue;
        std::fill(state.begin(), state.end(), 0);
        for (const Ev& e : evs[b]) {
          if (e.kind == Kind::kMove) state[e.var] = 1;
          if (e.kind == Kind::kKill) state[e.var] = -1;
        }
        for (std::size_t v = 0; v < vars.size(); ++v) {
          if (state[v] == 1) df.add_gen(static_cast<int>(b), v);
          if (state[v] == -1) df.add_kill(static_cast<int>(b), v);
        }
      }
      df.solve();

      // Report pass: walk each block's events with the solved in-state,
      // flagging reads while the var is (may-)moved.
      std::vector<std::string_view> names(vars.size());
      for (const auto& [n, v] : vars) names[v] = n;
      std::vector<std::pair<std::size_t, std::uint32_t>> reported;
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (evs[b].empty()) continue;
        std::vector<bool> moved(vars.size());
        std::vector<std::uint32_t> local_move(vars.size(), 0);
        std::vector<int> local_move_stmt(vars.size(), -1);
        for (std::size_t v = 0; v < vars.size(); ++v) {
          moved[v] = df.in(static_cast<int>(b), v);
        }
        for (const Ev& e : evs[b]) {
          if (e.kind == Kind::kMove) {
            moved[e.var] = true;
            local_move[e.var] = e.line;
            local_move_stmt[e.var] = e.stmt;
            continue;
          }
          if (e.kind == Kind::kKill) {
            moved[e.var] = false;
            local_move[e.var] = 0;
            local_move_stmt[e.var] = -1;
            continue;
          }
          if (!moved[e.var]) continue;
          // A read in the same statement as the move is almost always the
          // other arm of a conditional operator (`c ? std::move(p) :
          // concat(a, p)`), where only one arm runs; the statement-level
          // CFG cannot split those, so same-statement pairs stay silent by
          // design.
          if (local_move_stmt[e.var] == e.stmt) continue;
          if (std::find(reported.begin(), reported.end(),
                        std::make_pair(e.var, e.line)) != reported.end()) {
            continue;
          }
          reported.emplace_back(e.var, e.line);
          const std::string vn(names[e.var]);
          Finding fd{ctx.file.rel(), e.line, std::string(name()),
                     "'" + vn +
                         "' is read here but was moved from on some path "
                         "and not reassigned; reassign before reading or "
                         "restructure the branch",
                     {}};
          if (local_move[e.var] != 0) {
            fd.path.push_back(
                {local_move[e.var], "'" + vn + "' moved from here"});
          } else {
            const auto path = df.live_path(static_cast<int>(b), e.var);
            std::uint32_t mv = 0;
            if (!path.empty()) {
              const auto mit = move_line.find({path.front(), e.var});
              if (mit != move_line.end()) mv = mit->second;
            }
            fd.path.push_back(
                {mv == 0 ? e.line : mv, "'" + vn + "' moved from here"});
            if (!path.empty()) {
              append_interior(cfg, path, "'" + vn + "' still moved-from",
                              &fd.path);
            }
          }
          fd.path.push_back({e.line, "'" + vn + "' read while moved-from"});
          out->push_back(std::move(fd));
        }
      }
    }
  }

 private:
  static bool is_tracked_type(const Token& t) {
    return t.ident("Payload") || t.ident("Chunk");
  }
};

// ---------------------------------------------------------------------------
// unchecked-status-path

class UncheckedStatusPath final : public Rule {
 public:
  std::string_view name() const override { return "unchecked-status-path"; }
  std::string_view description() const override {
    return "PutStatus filled through an out-param but dropped on some path "
           "to function exit";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    // Same scope as unchecked-put, whose gap this closes: tests assert on
    // statuses anyway, and bench harnesses own their error budget.
    const std::string_view rel = ctx.file.rel();
    if (!path_starts_with(rel, "src/") && !path_starts_with(rel, "examples/")) {
      return;
    }
    const auto& toks = ctx.file.tokens();
    for (std::size_t fi = 0; fi < ctx.scopes.funcs.size(); ++fi) {
      const FuncScope& f = ctx.scopes.funcs[fi];
      if (f.body_end <= f.body_begin) continue;
      const auto nested = child_ranges(ctx.scopes, static_cast<int>(fi));

      std::map<std::string_view, std::size_t> vars;
      for (std::size_t i = f.body_begin + 1;
           i + 2 < toks.size() && i < f.body_end; ++i) {
        if (in_ranges(nested, i)) continue;
        if (!toks[i].ident("PutStatus")) continue;
        if (toks[i + 1].kind != Tok::kIdent) continue;
        if (!toks[i + 2].is(";") && !toks[i + 2].is("=") &&
            !toks[i + 2].is("{")) {
          continue;
        }
        vars.try_emplace(toks[i + 1].text, vars.size());
      }
      if (vars.empty()) continue;
      const Cfg& cfg = ctx.cfgs.get(static_cast<int>(fi));

      // Facts are fill sites: each `&st` hands the variable to a callee as
      // an out-param. Any plain use afterwards (comparison, pass-by-value,
      // assignment) counts as the check that consumes the pending value.
      struct Ev {
        bool fill;
        std::size_t var;
        std::size_t tok;
      };
      std::vector<std::vector<Ev>> evs(cfg.blocks.size());
      struct Site {
        std::size_t var;
        std::uint32_t line;
      };
      std::vector<Site> sites;
      std::map<std::size_t, std::size_t> fact_of_tok;
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const CfgBlock& blk = cfg.blocks[b];
        const std::size_t hi = std::min(blk.end, toks.size());
        for (std::size_t i = blk.begin; i < hi; ++i) {
          if (in_ranges(nested, i) || toks[i].kind != Tok::kIdent) continue;
          const auto vit = vars.find(toks[i].text);
          if (vit == vars.end()) continue;
          const std::size_t v = vit->second;
          if (i > 0 && toks[i - 1].ident("PutStatus")) {
            evs[b].push_back({false, v, i});  // declaration resets
            continue;
          }
          if (i > 0 && toks[i - 1].is("&")) {
            fact_of_tok[i] = sites.size();
            sites.push_back({v, toks[i].line});
            evs[b].push_back({true, v, i});
            continue;
          }
          if (!plain_use(toks, i)) continue;
          evs[b].push_back({false, v, i});  // checked / consumed
        }
      }
      if (sites.empty()) continue;

      ForwardMay df(cfg, sites.size());
      std::vector<int> state(sites.size());
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (evs[b].empty()) continue;
        std::fill(state.begin(), state.end(), 0);
        for (const Ev& e : evs[b]) {
          if (e.fill) {
            // A refill overwrites: earlier pending fills of the same var
            // die, this site goes live.
            for (std::size_t s = 0; s < sites.size(); ++s) {
              if (sites[s].var == e.var) state[s] = -1;
            }
            state[fact_of_tok[e.tok]] = 1;
          } else {
            for (std::size_t s = 0; s < sites.size(); ++s) {
              if (sites[s].var == e.var) state[s] = -1;
            }
          }
        }
        for (std::size_t s = 0; s < sites.size(); ++s) {
          if (state[s] == 1) df.add_gen(static_cast<int>(b), s);
          if (state[s] == -1) df.add_kill(static_cast<int>(b), s);
        }
      }
      df.solve();

      std::vector<std::string_view> names(vars.size());
      for (const auto& [n, v] : vars) names[v] = n;
      for (std::size_t s = 0; s < sites.size(); ++s) {
        if (!df.in(cfg.exit, s)) continue;
        const std::string vn(names[sites[s].var]);
        Finding fd{ctx.file.rel(), sites[s].line, std::string(name()),
                   "PutStatus '" + vn +
                       "' filled through '&" + vn +
                       "' here is never checked on some path to function "
                       "exit; a failed durable write would go unnoticed "
                       "(docs/DURABILITY.md)",
                   {}};
        const auto path = df.live_path(cfg.exit, s);
        fd.path.push_back(
            {sites[s].line, "'&" + vn + "' filled by this call"});
        append_interior(cfg, path, "'" + vn + "' still unchecked", &fd.path);
        const std::uint32_t exit_ln = cfg.block(cfg.exit).line;
        fd.path.push_back({exit_ln == 0 ? sites[s].line : exit_ln,
                           "function exit with '" + vn + "' unchecked"});
        out->push_back(std::move(fd));
      }
    }
  }
};

}  // namespace

const std::vector<ResourcePairEntry>& resource_pair_policy() {
  // The repo's known acquire/release verb pairs (docs/STATIC_ANALYSIS.md):
  //   * sim::Semaphore / RateServer / credit objects: acquire -> release
  //     (issue_credits_, alloc_mutex_, exec_slots_, window, RateServer)
  //   * rings: alloc -> free_oldest (read_ring->alloc pairs with
  //     read_ring->free_oldest on the retirement path)
  //   * the reorder buffer: rob_.alloc -> rob_.retire
  static const std::vector<ResourcePairEntry> kPolicy = {
      {"*", "acquire", "release"},
      {"*ring*", "alloc", "free_oldest"},
      {"rob_", "alloc", "retire"},
  };
  return kPolicy;
}

std::unique_ptr<Rule> make_resource_pairing() {
  return std::make_unique<ResourcePairing>();
}
std::unique_ptr<Rule> make_use_after_move() {
  return std::make_unique<UseAfterMove>();
}
std::unique_ptr<Rule> make_unchecked_status_path() {
  return std::make_unique<UncheckedStatusPath>();
}

}  // namespace lint
