// Path-sensitive rules over the CFG/dataflow layers (cfg.hpp,
// dataflow.hpp). Each rule turns a function body into per-block gen/kill
// events, lets ForwardMay push them around branches and loops, and reports
// with the offending path attached (Finding::path -> SARIF codeFlows):
//
//   resource-pairing      an acquire from the policy table can reach
//                         function exit without its release -- acquires
//                         made *inside a resolved callee* count too, via
//                         the summary layer's substituted events
//   use-after-move        a moved-from Payload/Chunk local is read on some
//                         path before reassignment
//   unchecked-status-path a PutStatus out-param is filled but dropped on
//                         some path (the flow upgrade of unchecked-put);
//                         with summaries, passing the status by reference
//                         to a writer helper is a fill and passing it to a
//                         checker helper is the check
//   summary-leak          a coroutine acquires through a callee and can
//                         then suspend at a point from which it never
//                         returns, with the resource still held
//
// All interprocedural extensions degrade gracefully: with
// `ctx.prog == nullptr` (--no-summaries) each rule reproduces its older
// intraprocedural behaviour exactly, and summary-leak stays silent.
#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lint/dataflow.hpp"
#include "lint/rules.hpp"
#include "lint/summary.hpp"

namespace lint {

namespace {

bool path_starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

/// Display name of a resolved callee (lambdas bound to a name carry it).
std::string callee_name(const ProgramInfo& prog, int def) {
  const std::string_view n = prog.graph.defs()[static_cast<std::size_t>(def)].name;
  return n.empty() ? std::string("<lambda>") : std::string(n);
}

/// Scan-root-relative path of a resolved callee's file.
const std::string& callee_file(const ProgramInfo& prog, int def) {
  return prog.file_rels[static_cast<std::size_t>(
      prog.graph.defs()[static_cast<std::size_t>(def)].file)];
}

/// Token ranges of `idx`'s direct child lambdas: a lambda body is its own
/// FuncScope with its own CFG, so the parent's event scan skips it.
std::vector<std::pair<std::size_t, std::size_t>> child_ranges(
    const ScopeInfo& scopes, int idx) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (const FuncScope& g : scopes.funcs) {
    if (g.parent == idx) out.emplace_back(g.body_begin, g.body_end);
  }
  return out;
}

bool in_ranges(const std::vector<std::pair<std::size_t, std::size_t>>& rs,
               std::size_t i) {
  for (const auto& [b, e] : rs) {
    if (i >= b && i <= e) return true;
  }
  return false;
}

/// Free-standing use: not a member access (`x.v`) or qualified name.
bool plain_use(const std::vector<Token>& toks, std::size_t i) {
  if (i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->") ||
                toks[i - 1].is("::"))) {
    return false;
  }
  if (i + 1 < toks.size() && toks[i + 1].is("::")) return false;
  return true;
}

/// Appends the interior of a block path (everything between the first and
/// last step, which the caller renders itself) as PathSteps, skipping
/// synthetic blocks and repeated lines so the rendered flow stays tight.
void append_interior(const Cfg& cfg, const std::vector<int>& path,
                     const std::string& note, std::vector<PathStep>* steps) {
  std::uint32_t last = steps->empty() ? 0 : steps->back().line;
  for (std::size_t k = 1; k + 1 < path.size(); ++k) {
    const std::uint32_t ln = cfg.block(path[k]).line;
    if (ln == 0 || ln == last) continue;
    steps->push_back({ln, note});
    last = ln;
  }
}

// ---------------------------------------------------------------------------
// resource-pairing

class ResourcePairing final : public Rule {
 public:
  std::string_view name() const override { return "resource-pairing"; }
  std::string_view description() const override {
    return "acquire from the resource policy table can reach function exit "
           "without its matching release on some path";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    const auto& policy = resource_pair_policy();
    for (std::size_t fi = 0; fi < ctx.scopes.funcs.size(); ++fi) {
      const FuncScope& f = ctx.scopes.funcs[fi];
      if (f.body_end <= f.body_begin) continue;
      const Cfg& cfg = ctx.cfgs.get(static_cast<int>(fi));

      // Acquire/release events per block, keyed by (policy row, receiver):
      // direct calls plus -- when the program layer is on -- effects of
      // resolved callees substituted at their call sites.
      const auto evs = resource_events(ctx.prog, ctx.file_index, ctx.file,
                                       ctx.scopes, cfg, static_cast<int>(fi));
      std::map<std::pair<std::size_t, std::string>, std::size_t> keys;
      struct KeyInfo {
        std::size_t policy_row;
        std::string recv;
        int acquires = 0;
        int releases = 0;
      };
      std::vector<KeyInfo> key_info;
      for (const auto& block_evs : evs) {
        for (const ResourceEventEx& e : block_evs) {
          const auto [it, fresh] =
              keys.try_emplace({e.row, e.recv}, key_info.size());
          if (fresh) key_info.push_back({e.row, e.recv});
          KeyInfo& ki = key_info[it->second];
          (e.acquire ? ki.acquires : ki.releases)++;
        }
      }

      // Gate: a key participates only when this function both acquires AND
      // releases it -- acquire-only (or release-only) functions are halves
      // of a deliberate cross-coroutine handoff and must stay silent.
      std::vector<bool> active(key_info.size());
      bool any = false;
      for (std::size_t k = 0; k < key_info.size(); ++k) {
        active[k] = key_info[k].acquires > 0 && key_info[k].releases > 0;
        any = any || active[k];
      }
      if (!any) continue;

      // Facts are individual acquire events of active keys.
      struct Site {
        std::size_t key;
        std::uint32_t line;
        int callee_def;
        std::uint32_t callee_line;
      };
      std::vector<Site> sites;
      std::vector<std::vector<std::size_t>> fact_of(evs.size());
      for (std::size_t b = 0; b < evs.size(); ++b) {
        fact_of[b].assign(evs[b].size(), SIZE_MAX);
        for (std::size_t j = 0; j < evs[b].size(); ++j) {
          const ResourceEventEx& e = evs[b][j];
          const std::size_t k = keys.at({e.row, e.recv});
          if (e.acquire && active[k]) {
            fact_of[b][j] = sites.size();
            sites.push_back({k, e.line, e.callee_def, e.callee_line});
          }
        }
      }
      if (sites.empty()) continue;

      ForwardMay df(cfg, sites.size());
      std::vector<int> state(sites.size());  // 0 untouched, 1 live, -1 dead
      for (std::size_t b = 0; b < evs.size(); ++b) {
        if (evs[b].empty()) continue;
        std::fill(state.begin(), state.end(), 0);
        for (std::size_t j = 0; j < evs[b].size(); ++j) {
          const ResourceEventEx& e = evs[b][j];
          const std::size_t k = keys.at({e.row, e.recv});
          if (!active[k]) continue;
          if (e.acquire) {
            state[fact_of[b][j]] = 1;
          } else {
            for (std::size_t s = 0; s < sites.size(); ++s) {
              if (sites[s].key == k) state[s] = -1;
            }
          }
        }
        for (std::size_t s = 0; s < sites.size(); ++s) {
          if (state[s] == 1) df.add_gen(static_cast<int>(b), s);
          if (state[s] == -1) df.add_kill(static_cast<int>(b), s);
        }
      }
      df.solve();

      for (std::size_t s = 0; s < sites.size(); ++s) {
        if (!df.in(cfg.exit, s)) continue;
        const KeyInfo& ki = key_info[sites[s].key];
        const ResourcePairEntry& pe = policy[ki.policy_row];
        const std::string recv = ki.recv;
        const std::string acq_call =
            "'" + recv + "." + std::string(pe.acquire) + "()'";
        std::string how = acq_call;
        if (sites[s].callee_def >= 0) {
          how = acq_call + " (acquired inside '" +
                callee_name(*ctx.prog, sites[s].callee_def) + "')";
        }
        Finding fd{ctx.file.rel(), sites[s].line, std::string(name()),
                   how + " can reach function exit without '" + recv + "." +
                       std::string(pe.release) +
                       "()' on some path (early return/continue?); release "
                       "on every path or split the handoff into its own "
                       "function",
                   {}};
        const auto path = df.live_path(cfg.exit, s);
        if (sites[s].callee_def >= 0) {
          fd.path.push_back({sites[s].line,
                             "call into '" +
                                 callee_name(*ctx.prog, sites[s].callee_def) +
                                 "' acquires " + acq_call});
          fd.path.push_back({sites[s].callee_line,
                             "acquired here inside '" +
                                 callee_name(*ctx.prog, sites[s].callee_def) +
                                 "'",
                             callee_file(*ctx.prog, sites[s].callee_def)});
        } else {
          fd.path.push_back({sites[s].line, acq_call + " acquired here"});
        }
        append_interior(cfg, path,
                        "path continues without '" + recv + "." +
                            std::string(pe.release) + "()'",
                        &fd.path);
        const std::uint32_t exit_ln = cfg.block(cfg.exit).line;
        fd.path.push_back({exit_ln == 0 ? sites[s].line : exit_ln,
                           "function exit with the resource still held"});
        out->push_back(std::move(fd));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// use-after-move

class UseAfterMove final : public Rule {
 public:
  std::string_view name() const override { return "use-after-move"; }
  std::string_view description() const override {
    return "moved-from Payload/Chunk local read on some path before "
           "reassignment";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    const auto& toks = ctx.file.tokens();
    for (std::size_t fi = 0; fi < ctx.scopes.funcs.size(); ++fi) {
      const FuncScope& f = ctx.scopes.funcs[fi];
      if (f.body_end <= f.body_begin) continue;
      const auto nested = child_ranges(ctx.scopes, static_cast<int>(fi));

      // Tracked locals: declared in this body with a bare payload-carrying
      // value type directly before the name (`Payload p = ...`). Pointers,
      // references, templates (`optional<Chunk>`) don't match and stay out.
      std::map<std::string_view, std::size_t> vars;
      for (std::size_t i = f.body_begin + 1;
           i + 2 < toks.size() && i < f.body_end; ++i) {
        if (in_ranges(nested, i)) continue;
        if (!is_tracked_type(toks[i])) continue;
        if (toks[i + 1].kind != Tok::kIdent) continue;
        if (!toks[i + 2].is(";") && !toks[i + 2].is("=") &&
            !toks[i + 2].is("{") && !toks[i + 2].is("(")) {
          continue;
        }
        vars.try_emplace(toks[i + 1].text, vars.size());
      }
      if (vars.empty()) continue;
      const Cfg& cfg = ctx.cfgs.get(static_cast<int>(fi));

      enum class Kind { kMove, kKill, kRead };
      struct Ev {
        Kind kind;
        std::size_t var;
        std::uint32_t line;
        int stmt;  // statement ordinal within the block (for ternary arms)
      };
      std::vector<std::vector<Ev>> evs(cfg.blocks.size());
      // Last move line of each var per block, for path reconstruction.
      std::map<std::pair<int, std::size_t>, std::uint32_t> move_line;
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const CfgBlock& blk = cfg.blocks[b];
        const std::size_t hi = std::min(blk.end, toks.size());
        int depth = 0;
        int stmt = 0;
        for (std::size_t i = blk.begin; i < hi; ++i) {
          if (in_ranges(nested, i)) continue;
          if (toks[i].kind == Tok::kPunct) {
            if (toks[i].is("(") || toks[i].is("[") || toks[i].is("{")) ++depth;
            else if (toks[i].is(")") || toks[i].is("]") || toks[i].is("}"))
              --depth;
            else if (toks[i].is(";") && depth <= 0) ++stmt;
            continue;
          }
          if (toks[i].kind != Tok::kIdent) continue;
          const auto vit = vars.find(toks[i].text);
          if (vit == vars.end()) continue;
          const std::size_t v = vit->second;
          if (i > 0 && is_tracked_type(toks[i - 1])) {
            evs[b].push_back(
                {Kind::kKill, v, toks[i].line, stmt});  // (re)declared
            continue;
          }
          const bool is_move = i >= 4 && i + 1 < toks.size() &&
                               toks[i - 1].is("(") &&
                               toks[i - 2].ident("move") &&
                               toks[i - 3].is("::") &&
                               toks[i - 4].ident("std") && toks[i + 1].is(")");
          if (is_move) {
            evs[b].push_back({Kind::kMove, v, toks[i].line, stmt});
            move_line[{static_cast<int>(b), v}] = toks[i].line;
            continue;
          }
          if (!plain_use(toks, i)) continue;
          if (i + 1 < toks.size() && toks[i + 1].is("=")) {
            evs[b].push_back({Kind::kKill, v, toks[i].line, stmt});  // reassign
          } else if (i > 0 && toks[i - 1].is("&")) {
            evs[b].push_back({Kind::kKill, v, toks[i].line, stmt});  // escapes
          } else {
            evs[b].push_back({Kind::kRead, v, toks[i].line, stmt});
          }
        }
      }

      ForwardMay df(cfg, vars.size());
      std::vector<int> state(vars.size());
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (evs[b].empty()) continue;
        std::fill(state.begin(), state.end(), 0);
        for (const Ev& e : evs[b]) {
          if (e.kind == Kind::kMove) state[e.var] = 1;
          if (e.kind == Kind::kKill) state[e.var] = -1;
        }
        for (std::size_t v = 0; v < vars.size(); ++v) {
          if (state[v] == 1) df.add_gen(static_cast<int>(b), v);
          if (state[v] == -1) df.add_kill(static_cast<int>(b), v);
        }
      }
      df.solve();

      // Report pass: walk each block's events with the solved in-state,
      // flagging reads while the var is (may-)moved.
      std::vector<std::string_view> names(vars.size());
      for (const auto& [n, v] : vars) names[v] = n;
      std::vector<std::pair<std::size_t, std::uint32_t>> reported;
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (evs[b].empty()) continue;
        std::vector<bool> moved(vars.size());
        std::vector<std::uint32_t> local_move(vars.size(), 0);
        std::vector<int> local_move_stmt(vars.size(), -1);
        for (std::size_t v = 0; v < vars.size(); ++v) {
          moved[v] = df.in(static_cast<int>(b), v);
        }
        for (const Ev& e : evs[b]) {
          if (e.kind == Kind::kMove) {
            moved[e.var] = true;
            local_move[e.var] = e.line;
            local_move_stmt[e.var] = e.stmt;
            continue;
          }
          if (e.kind == Kind::kKill) {
            moved[e.var] = false;
            local_move[e.var] = 0;
            local_move_stmt[e.var] = -1;
            continue;
          }
          if (!moved[e.var]) continue;
          // A read in the same statement as the move is almost always the
          // other arm of a conditional operator (`c ? std::move(p) :
          // concat(a, p)`), where only one arm runs; the statement-level
          // CFG cannot split those, so same-statement pairs stay silent by
          // design.
          if (local_move_stmt[e.var] == e.stmt) continue;
          if (std::find(reported.begin(), reported.end(),
                        std::make_pair(e.var, e.line)) != reported.end()) {
            continue;
          }
          reported.emplace_back(e.var, e.line);
          const std::string vn(names[e.var]);
          Finding fd{ctx.file.rel(), e.line, std::string(name()),
                     "'" + vn +
                         "' is read here but was moved from on some path "
                         "and not reassigned; reassign before reading or "
                         "restructure the branch",
                     {}};
          if (local_move[e.var] != 0) {
            fd.path.push_back(
                {local_move[e.var], "'" + vn + "' moved from here"});
          } else {
            const auto path = df.live_path(static_cast<int>(b), e.var);
            std::uint32_t mv = 0;
            if (!path.empty()) {
              const auto mit = move_line.find({path.front(), e.var});
              if (mit != move_line.end()) mv = mit->second;
            }
            fd.path.push_back(
                {mv == 0 ? e.line : mv, "'" + vn + "' moved from here"});
            if (!path.empty()) {
              append_interior(cfg, path, "'" + vn + "' still moved-from",
                              &fd.path);
            }
          }
          fd.path.push_back({e.line, "'" + vn + "' read while moved-from"});
          out->push_back(std::move(fd));
        }
      }
    }
  }

 private:
  static bool is_tracked_type(const Token& t) {
    return t.ident("Payload") || t.ident("Chunk");
  }
};

// ---------------------------------------------------------------------------
// unchecked-status-path

class UncheckedStatusPath final : public Rule {
 public:
  std::string_view name() const override { return "unchecked-status-path"; }
  std::string_view description() const override {
    return "PutStatus filled through an out-param but dropped on some path "
           "to function exit";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    // Same scope as unchecked-put, whose gap this closes: tests assert on
    // statuses anyway, and bench harnesses own their error budget.
    const std::string_view rel = ctx.file.rel();
    if (!path_starts_with(rel, "src/") && !path_starts_with(rel, "examples/")) {
      return;
    }
    const auto& toks = ctx.file.tokens();
    for (std::size_t fi = 0; fi < ctx.scopes.funcs.size(); ++fi) {
      const FuncScope& f = ctx.scopes.funcs[fi];
      if (f.body_end <= f.body_begin) continue;
      const auto nested = child_ranges(ctx.scopes, static_cast<int>(fi));

      std::map<std::string_view, std::size_t> vars;
      for (std::size_t i = f.body_begin + 1;
           i + 2 < toks.size() && i < f.body_end; ++i) {
        if (in_ranges(nested, i)) continue;
        if (!toks[i].ident("PutStatus")) continue;
        if (toks[i + 1].kind != Tok::kIdent) continue;
        if (!toks[i + 2].is(";") && !toks[i + 2].is("=") &&
            !toks[i + 2].is("{")) {
          continue;
        }
        vars.try_emplace(toks[i + 1].text, vars.size());
      }
      if (vars.empty()) continue;
      const Cfg& cfg = ctx.cfgs.get(static_cast<int>(fi));

      // Facts are fill sites: each `&st` hands the variable to a callee as
      // an out-param. Any plain use afterwards (comparison, pass-by-value,
      // assignment) counts as the check that consumes the pending value.
      // With the program layer on, a resolved callee's summary refines
      // both directions: passing the status (by `&st` or by reference) to
      // a helper that *writes* it is a fill, and to one that *checks* it
      // is the check -- even though no `&` appears at this call site.
      const int def_id =
          ctx.prog != nullptr
              ? ctx.prog->graph.def_of(ctx.file_index, static_cast<int>(fi))
              : -1;
      // Classification of one occurrence via the enclosing call argument:
      // 0 = no summary verdict (fall through to the local rules).
      enum { kLocal = 0, kFill = 1, kCheck = 2, kInert = 3 };
      struct Verdict {
        int cls = kLocal;
        int callee = -1;
        std::uint32_t callee_line = 0;
      };
      const auto summarize_arg = [&](std::size_t i,
                                     std::string_view vn) -> Verdict {
        if (ctx.prog == nullptr) return {};
        for (const CallSite& site : ctx.prog->graph.sites(ctx.file_index)) {
          if (site.caller != def_id) continue;
          for (std::size_t a = 0; a < site.args.size(); ++a) {
            const auto& [ab, ae] = site.args[a];
            if (i < ab || i >= ae) continue;
            if (root_ident(toks, {ab, ae}) != vn || site.callee < 0) {
              return {};
            }
            const auto c = static_cast<std::size_t>(site.callee);
            const FuncSummary& cs = ctx.prog->summaries[c];
            if (!ctx.prog->graph.defs()[c].params_reliable ||
                a >= cs.params.size() || !cs.params[a].is_status_out) {
              return {};
            }
            const ParamEffect& pe = cs.params[a];
            if (pe.status_checked) return {kCheck, site.callee, 0};
            if (pe.status_written) {
              return {kFill, site.callee, pe.write_line};
            }
            return {kInert, -1, 0};
          }
        }
        return {};
      };
      struct Ev {
        bool fill;
        std::size_t var;
        std::size_t tok;
      };
      std::vector<std::vector<Ev>> evs(cfg.blocks.size());
      struct Site {
        std::size_t var;
        std::uint32_t line;
        int callee_def = -1;
        std::uint32_t callee_line = 0;
      };
      std::vector<Site> sites;
      std::map<std::size_t, std::size_t> fact_of_tok;
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const CfgBlock& blk = cfg.blocks[b];
        const std::size_t hi = std::min(blk.end, toks.size());
        for (std::size_t i = blk.begin; i < hi; ++i) {
          if (in_ranges(nested, i) || toks[i].kind != Tok::kIdent) continue;
          const auto vit = vars.find(toks[i].text);
          if (vit == vars.end()) continue;
          const std::size_t v = vit->second;
          if (i > 0 && toks[i - 1].ident("PutStatus")) {
            evs[b].push_back({false, v, i});  // declaration resets
            continue;
          }
          const Verdict verdict = summarize_arg(i, toks[i].text);
          if (verdict.cls == kFill) {
            fact_of_tok[i] = sites.size();
            sites.push_back(
                {v, toks[i].line, verdict.callee, verdict.callee_line});
            evs[b].push_back({true, v, i});
            continue;
          }
          if (verdict.cls == kCheck) {
            evs[b].push_back({false, v, i});
            continue;
          }
          if (verdict.cls == kInert) continue;  // callee ignores it
          if (i > 0 && toks[i - 1].is("&")) {
            fact_of_tok[i] = sites.size();
            sites.push_back({v, toks[i].line});
            evs[b].push_back({true, v, i});
            continue;
          }
          if (!plain_use(toks, i)) continue;
          evs[b].push_back({false, v, i});  // checked / consumed
        }
      }
      if (sites.empty()) continue;

      ForwardMay df(cfg, sites.size());
      std::vector<int> state(sites.size());
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (evs[b].empty()) continue;
        std::fill(state.begin(), state.end(), 0);
        for (const Ev& e : evs[b]) {
          if (e.fill) {
            // A refill overwrites: earlier pending fills of the same var
            // die, this site goes live.
            for (std::size_t s = 0; s < sites.size(); ++s) {
              if (sites[s].var == e.var) state[s] = -1;
            }
            state[fact_of_tok[e.tok]] = 1;
          } else {
            for (std::size_t s = 0; s < sites.size(); ++s) {
              if (sites[s].var == e.var) state[s] = -1;
            }
          }
        }
        for (std::size_t s = 0; s < sites.size(); ++s) {
          if (state[s] == 1) df.add_gen(static_cast<int>(b), s);
          if (state[s] == -1) df.add_kill(static_cast<int>(b), s);
        }
      }
      df.solve();

      std::vector<std::string_view> names(vars.size());
      for (const auto& [n, v] : vars) names[v] = n;
      for (std::size_t s = 0; s < sites.size(); ++s) {
        if (!df.in(cfg.exit, s)) continue;
        const std::string vn(names[sites[s].var]);
        const bool via_callee = sites[s].callee_def >= 0;
        const std::string via =
            via_callee ? "by '" + callee_name(*ctx.prog, sites[s].callee_def) +
                             "' (which writes its status out-param)"
                       : "through '&" + vn + "'";
        Finding fd{ctx.file.rel(), sites[s].line, std::string(name()),
                   "PutStatus '" + vn + "' filled " + via +
                       " here is never checked on some path to function "
                       "exit; a failed durable write would go unnoticed "
                       "(docs/DURABILITY.md)",
                   {}};
        const auto path = df.live_path(cfg.exit, s);
        if (via_callee) {
          const std::string helper =
              callee_name(*ctx.prog, sites[s].callee_def);
          fd.path.push_back(
              {sites[s].line, "'" + vn + "' filled by this call to '" +
                                  helper + "'"});
          if (sites[s].callee_line != 0) {
            fd.path.push_back({sites[s].callee_line,
                               "written here inside '" + helper + "'",
                               callee_file(*ctx.prog, sites[s].callee_def)});
          }
        } else {
          fd.path.push_back(
              {sites[s].line, "'&" + vn + "' filled by this call"});
        }
        append_interior(cfg, path, "'" + vn + "' still unchecked", &fd.path);
        const std::uint32_t exit_ln = cfg.block(cfg.exit).line;
        fd.path.push_back({exit_ln == 0 ? sites[s].line : exit_ln,
                           "function exit with '" + vn + "' unchecked"});
        out->push_back(std::move(fd));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// summary-leak

class SummaryLeak final : public Rule {
 public:
  std::string_view name() const override { return "summary-leak"; }
  std::string_view description() const override {
    return "coroutine acquires a resource through a callee, then can "
           "suspend at a point from which it never returns with the "
           "resource still held";
  }

  void run(const RuleContext& ctx, std::vector<Finding>* out) const override {
    // Interprocedural by definition: without summaries there are no
    // callee-acquired resources to track, so the rule is silent (the
    // direct-acquire variant is resource-pairing's business).
    if (ctx.prog == nullptr) return;
    for (std::size_t fi = 0; fi < ctx.scopes.funcs.size(); ++fi) {
      const FuncScope& f = ctx.scopes.funcs[fi];
      if (!f.is_coroutine || f.body_end <= f.body_begin ||
          f.suspends.empty()) {
        continue;
      }
      const Cfg& cfg = ctx.cfgs.get(static_cast<int>(fi));
      const auto evs = resource_events(ctx.prog, ctx.file_index, ctx.file,
                                       ctx.scopes, cfg, static_cast<int>(fi));

      // Same pairing gate as resource-pairing: the coroutine must both
      // acquire and release the key somewhere, otherwise it is one half
      // of a deliberate cross-coroutine handoff.
      std::map<std::pair<std::size_t, std::string>, std::size_t> keys;
      struct KeyInfo {
        std::size_t policy_row;
        std::string recv;
        int acquires = 0;
        int releases = 0;
      };
      std::vector<KeyInfo> key_info;
      for (const auto& block_evs : evs) {
        for (const ResourceEventEx& e : block_evs) {
          const auto [it, fresh] =
              keys.try_emplace({e.row, e.recv}, key_info.size());
          if (fresh) key_info.push_back({e.row, e.recv});
          KeyInfo& ki = key_info[it->second];
          (e.acquire ? ki.acquires : ki.releases)++;
        }
      }
      std::vector<bool> active(key_info.size());
      bool any = false;
      for (std::size_t k = 0; k < key_info.size(); ++k) {
        active[k] = key_info[k].acquires > 0 && key_info[k].releases > 0;
        any = any || active[k];
      }
      if (!any) continue;

      // Facts: acquires substituted from a callee summary (callee_def set).
      struct Site {
        std::size_t key;
        std::uint32_t line;
        int callee_def;
        std::uint32_t callee_line;
      };
      std::vector<Site> sites;
      std::vector<std::vector<std::size_t>> fact_of(evs.size());
      for (std::size_t b = 0; b < evs.size(); ++b) {
        fact_of[b].assign(evs[b].size(), SIZE_MAX);
        for (std::size_t j = 0; j < evs[b].size(); ++j) {
          const ResourceEventEx& e = evs[b][j];
          const std::size_t k = keys.at({e.row, e.recv});
          if (e.acquire && e.callee_def >= 0 && active[k]) {
            fact_of[b][j] = sites.size();
            sites.push_back({k, e.line, e.callee_def, e.callee_line});
          }
        }
      }
      if (sites.empty()) continue;

      ForwardMay df(cfg, sites.size());
      std::vector<int> state(sites.size());
      for (std::size_t b = 0; b < evs.size(); ++b) {
        if (evs[b].empty()) continue;
        std::fill(state.begin(), state.end(), 0);
        for (std::size_t j = 0; j < evs[b].size(); ++j) {
          const ResourceEventEx& e = evs[b][j];
          const std::size_t k = keys.at({e.row, e.recv});
          if (!active[k]) continue;
          if (e.acquire) {
            if (fact_of[b][j] != SIZE_MAX) state[fact_of[b][j]] = 1;
          } else {
            for (std::size_t s = 0; s < sites.size(); ++s) {
              if (sites[s].key == k) state[s] = -1;
            }
          }
        }
        for (std::size_t s = 0; s < sites.size(); ++s) {
          if (state[s] == 1) df.add_gen(static_cast<int>(b), s);
          if (state[s] == -1) df.add_kill(static_cast<int>(b), s);
        }
      }
      df.solve();

      // Report an acquire still live *after* a suspension in a block from
      // which function exit is unreachable: the coroutine parks forever
      // and the paired release below the loop is dead code.
      const std::vector<bool> reach = blocks_reaching_exit(cfg);
      std::vector<bool> done(sites.size(), false);
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!cfg.blocks[b].suspends || reach[b]) continue;
        for (std::size_t s = 0; s < sites.size(); ++s) {
          if (done[s] || !df.out(static_cast<int>(b), s)) continue;
          done[s] = true;
          const KeyInfo& ki = key_info[sites[s].key];
          const ResourcePairEntry& pe =
              resource_pair_policy()[ki.policy_row];
          const std::string recv = ki.recv;
          const std::string helper =
              callee_name(*ctx.prog, sites[s].callee_def);
          const std::uint32_t susp_ln = cfg.blocks[b].line;
          Finding fd{
              ctx.file.rel(), sites[s].line, std::string(name()),
              "'" + recv + "." + std::string(pe.acquire) +
                  "()' acquired via '" + helper +
                  "' is still held at a suspension point this coroutine "
                  "can never return from; release before parking or "
                  "restructure the handoff",
              {}};
          fd.path.push_back({sites[s].line, "call into '" + helper +
                                                "' acquires '" + recv + "." +
                                                std::string(pe.acquire) +
                                                "()'"});
          fd.path.push_back({sites[s].callee_line,
                             "acquired here inside '" + helper + "'",
                             callee_file(*ctx.prog, sites[s].callee_def)});
          const auto path = df.live_path(static_cast<int>(b), s);
          append_interior(cfg, path,
                          "path continues without '" + recv + "." +
                              std::string(pe.release) + "()'",
                          &fd.path);
          fd.path.push_back(
              {susp_ln == 0 ? sites[s].line : susp_ln,
               "suspends here with no path back to function exit"});
          out->push_back(std::move(fd));
        }
      }
    }
  }
};

}  // namespace

const std::vector<ResourcePairEntry>& resource_pair_policy() {
  // The repo's known acquire/release verb pairs (docs/STATIC_ANALYSIS.md):
  //   * sim::Semaphore / RateServer / credit objects: acquire -> release
  //     (issue_credits_, alloc_mutex_, exec_slots_, window, RateServer)
  //   * rings: alloc -> free_oldest (read_ring->alloc pairs with
  //     read_ring->free_oldest on the retirement path)
  //   * the reorder buffer: rob_.alloc -> rob_.retire
  static const std::vector<ResourcePairEntry> kPolicy = {
      {"*", "acquire", "release"},
      {"*ring*", "alloc", "free_oldest"},
      {"rob_", "alloc", "retire"},
  };
  return kPolicy;
}

std::unique_ptr<Rule> make_resource_pairing() {
  return std::make_unique<ResourcePairing>();
}
std::unique_ptr<Rule> make_use_after_move() {
  return std::make_unique<UseAfterMove>();
}
std::unique_ptr<Rule> make_unchecked_status_path() {
  return std::make_unique<UncheckedStatusPath>();
}
std::unique_ptr<Rule> make_summary_leak() {
  return std::make_unique<SummaryLeak>();
}

}  // namespace lint
