#include "lint/source.hpp"

#include <fstream>
#include <sstream>

namespace lint {

namespace {

constexpr std::string_view kAllowMarker = "snacc-lint: allow(";

}  // namespace

std::unique_ptr<SourceFile> SourceFile::load(const std::string& path,
                                             std::string rel) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_text(std::move(rel), std::move(buf).str());
}

std::unique_ptr<SourceFile> SourceFile::from_text(std::string rel,
                                                  std::string text) {
  auto f = std::make_unique<SourceFile>();
  f->rel_ = std::move(rel);
  f->text_ = std::move(text);
  f->index();
  return f;
}

void SourceFile::index() {
  line_offsets_.clear();
  line_offsets_.push_back(0);
  for (std::size_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n') line_offsets_.push_back(i + 1);
  }
  line_count_ = static_cast<std::uint32_t>(line_offsets_.size());
  stream_ = tokenize(text_);

  // Suppressions live in comments only -- an allow() in a string literal or
  // live code is inert, unlike the old line-regex engine.
  suppressions_.clear();
  for (const Comment& c : stream_.comments) {
    std::size_t at = 0;
    while ((at = c.text.find(kAllowMarker, at)) != std::string_view::npos) {
      const std::size_t name_begin = at + kAllowMarker.size();
      const std::size_t close = c.text.find(')', name_begin);
      if (close == std::string_view::npos) break;
      // Attribute the marker to the line it physically sits on, even inside
      // a multi-line block comment.
      std::uint32_t line = c.line;
      for (std::size_t i = 0; i < at; ++i) {
        if (c.text[i] == '\n') ++line;
      }
      suppressions_.push_back(Suppression{
          line, std::string(c.text.substr(name_begin, close - name_begin)),
          false});
      at = close;
    }
  }
}

std::string_view SourceFile::line_text(std::uint32_t n) const {
  if (n == 0 || n > line_count_) return {};
  const std::size_t begin = line_offsets_[n - 1];
  std::size_t end = n < line_count_ ? line_offsets_[n] : text_.size();
  while (end > begin && (text_[end - 1] == '\n' || text_[end - 1] == '\r')) {
    --end;
  }
  return std::string_view(text_).substr(begin, end - begin);
}

bool SourceFile::suppress(std::string_view rule, std::uint32_t line) {
  bool hit = false;
  for (Suppression& s : suppressions_) {
    if (s.rule == rule && (s.line == line || s.line + 1 == line)) {
      s.used = true;
      hit = true;  // keep scanning: co-located duplicates all count as used
    }
  }
  return hit;
}

}  // namespace lint
