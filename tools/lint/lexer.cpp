#include "lint/token.hpp"

#include <array>
#include <cctype>

namespace lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators, longest first within each leading char.
constexpr std::array<std::string_view, 22> kPuncts = {
    "<=>", "->*", "...", "<<=", ">>=", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "++", "--"};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  TokenStream run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < text_.size()) {
        if (text_[pos_ + 1] == '/') {
          line_comment();
          continue;
        }
        if (text_[pos_ + 1] == '*') {
          block_comment();
          continue;
        }
      }
      if (c == '#' && at_line_start_) {
        preprocessor_line();
        continue;
      }
      at_line_start_ = false;
      if (ident_start(c)) {
        identifier_or_string_prefix();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  void emit(Tok kind, std::size_t begin, std::size_t end, std::uint32_t line) {
    out_.tokens.push_back(Token{kind, text_.substr(begin, end - begin), line});
  }

  void line_comment() {
    const std::size_t begin = pos_;
    const std::uint32_t line = line_;
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    out_.comments.push_back(Comment{line, text_.substr(begin, pos_ - begin)});
  }

  void block_comment() {
    const std::size_t begin = pos_;
    const std::uint32_t line = line_;
    pos_ += 2;
    while (pos_ + 1 < text_.size() &&
           !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    pos_ = pos_ + 1 < text_.size() ? pos_ + 2 : text_.size();
    out_.comments.push_back(Comment{line, text_.substr(begin, pos_ - begin)});
  }

  void preprocessor_line() {
    // Consume the whole directive, honoring backslash continuations and
    // skipping comments inside it (a // comment ends the directive's line
    // scan but is still recorded for suppressions).
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') {
        pos_ += 2;
        ++line_;
        continue;
      }
      if (c == '\n') break;  // the newline itself is handled by run()
      if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        line_comment();
        break;
      }
      if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        block_comment();
        continue;
      }
      ++pos_;
    }
  }

  void identifier_or_string_prefix() {
    const std::size_t begin = pos_;
    const std::uint32_t line = line_;
    while (pos_ < text_.size() && ident_char(text_[pos_])) ++pos_;
    const std::string_view word = text_.substr(begin, pos_ - begin);
    // Encoding prefixes glue onto a following quote: u8"..", LR"(..)", etc.
    if (pos_ < text_.size() && (text_[pos_] == '"' || text_[pos_] == '\'') &&
        (word == "u8" || word == "u" || word == "U" || word == "L" ||
         word == "R" || word == "u8R" || word == "uR" || word == "UR" ||
         word == "LR")) {
      const bool raw = word.size() > 0 && word.back() == 'R';
      if (text_[pos_] == '"') {
        if (raw) {
          raw_string(begin, line);
        } else {
          string_literal(begin);
        }
      } else {
        char_literal(begin);
      }
      return;
    }
    emit(Tok::kIdent, begin, pos_, line);
  }

  void number() {
    const std::size_t begin = pos_;
    const std::uint32_t line = line_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (ident_char(c) || c == '.') {
        ++pos_;
        continue;
      }
      if (c == '\'' && pos_ + 1 < text_.size() && ident_char(text_[pos_ + 1])) {
        pos_ += 2;  // digit separator
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin &&
          (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E' ||
           text_[pos_ - 1] == 'p' || text_[pos_ - 1] == 'P')) {
        ++pos_;  // exponent sign
        continue;
      }
      break;
    }
    emit(Tok::kNumber, begin, pos_, line);
  }

  void string_literal(std::size_t begin_override = SIZE_MAX) {
    const std::size_t begin = begin_override == SIZE_MAX ? pos_ : begin_override;
    const std::uint32_t line = line_;
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        if (text_[pos_ + 1] == '\n') ++line_;
        pos_ += 2;
        continue;
      }
      if (c == '\n') {  // unterminated; be lenient
        break;
      }
      ++pos_;
      if (c == '"') break;
    }
    emit(Tok::kString, begin, pos_, line);
  }

  void raw_string(std::size_t begin, std::uint32_t line) {
    // At pos_ sits the opening quote of R"delim( ... )delim".
    ++pos_;
    std::size_t d0 = pos_;
    while (pos_ < text_.size() && text_[pos_] != '(') ++pos_;
    const std::string closer =
        ")" + std::string(text_.substr(d0, pos_ - d0)) + "\"";
    while (pos_ < text_.size()) {
      if (text_[pos_] == '\n') ++line_;
      if (text_.compare(pos_, closer.size(), closer) == 0) {
        pos_ += closer.size();
        break;
      }
      ++pos_;
    }
    emit(Tok::kString, begin, pos_, line);
  }

  void char_literal(std::size_t begin_override = SIZE_MAX) {
    const std::size_t begin = begin_override == SIZE_MAX ? pos_ : begin_override;
    const std::uint32_t line = line_;
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == '\n') break;  // unterminated; be lenient
      ++pos_;
      if (c == '\'') break;
    }
    emit(Tok::kChar, begin, pos_, line);
  }

  void punct() {
    const std::uint32_t line = line_;
    for (std::string_view p : kPuncts) {
      if (text_.compare(pos_, p.size(), p) == 0) {
        emit(Tok::kPunct, pos_, pos_ + p.size(), line);
        pos_ += p.size();
        return;
      }
    }
    emit(Tok::kPunct, pos_, pos_ + 1, line);
    ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  bool at_line_start_ = true;
  TokenStream out_;
};

}  // namespace

TokenStream tokenize(std::string_view text) { return Lexer(text).run(); }

}  // namespace lint
