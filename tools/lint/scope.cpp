#include "lint/scope.hpp"

#include <algorithm>

namespace lint {

namespace {

bool is_open(std::string_view t) { return t == "(" || t == "[" || t == "{"; }
bool is_close(std::string_view t) { return t == ")" || t == "]" || t == "}"; }

/// Keywords that introduce a control-flow block when found before `(...) {`.
bool control_keyword(std::string_view t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "catch";
}

/// Tokens that may legally sit between a function header's `)` and its `{`.
bool header_trailer(const Token& t) {
  return t.ident("const") || t.ident("noexcept") || t.ident("override") ||
         t.ident("final") || t.ident("mutable") || t.ident("constexpr") ||
         t.ident("volatile") || t.ident("try") || t.is("&") || t.is("&&");
}

}  // namespace

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (is_open(toks[i].text)) ++depth;
    else if (is_close(toks[i].text) && --depth == 0) return i;
  }
  return toks.size();
}

std::size_t match_backward(const std::vector<Token>& toks, std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (is_close(toks[i].text)) ++depth;
    else if (is_open(toks[i].text) && --depth == 0) return i;
  }
  return SIZE_MAX;
}

int ScopeInfo::enclosing(std::size_t i) const {
  int best = -1;
  std::size_t best_span = SIZE_MAX;
  for (std::size_t f = 0; f < funcs.size(); ++f) {
    if (funcs[f].body_begin < i && i < funcs[f].body_end) {
      const std::size_t span = funcs[f].body_end - funcs[f].body_begin;
      if (span < best_span) {
        best_span = span;
        best = static_cast<int>(f);
      }
    }
  }
  return best;
}

namespace {

class Analyzer {
 public:
  explicit Analyzer(const std::vector<Token>& toks) : toks_(toks) {}

  ScopeInfo run() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind == Tok::kIdent) {
        if (t.text == "co_await" || t.text == "co_yield" ||
            t.text == "co_return") {
          if (!func_stack_.empty()) {
            FuncScope& f = info_.funcs[func_stack_.back()];
            f.is_coroutine = true;
            if (t.text != "co_return") f.suspends.push_back(i);
          }
          continue;
        }
        continue;
      }
      if (t.kind != Tok::kPunct) continue;
      if (t.text == "[") {
        if (std::size_t adv = try_lambda(i); adv != 0) {
          i = adv;  // positioned at the lambda's '{'; loop continues inside
          continue;
        }
        continue;
      }
      if (t.text == "{") {
        open_brace(i);
        continue;
      }
      if (t.text == "}") {
        if (!brace_stack_.empty()) {
          const int func_idx = brace_stack_.back();
          brace_stack_.pop_back();
          if (func_idx >= 0) {
            info_.funcs[func_idx].body_end = i;
            func_stack_.pop_back();
          }
        }
        continue;
      }
    }
    collect_async_decls();
    return std::move(info_);
  }

 private:
  // --- lambda recognition --------------------------------------------------

  /// If toks_[i] begins a lambda introducer whose body is a `{`, records the
  /// FuncScope, pushes it, and returns the index of the body '{'. Returns 0
  /// otherwise.
  std::size_t try_lambda(std::size_t i) {
    // `[` after an identifier / `)` / `]` is a subscript; `[[` is an
    // attribute. Anything else can start a capture list.
    if (i > 0) {
      const Token& p = toks_[i - 1];
      if (p.kind == Tok::kIdent || p.kind == Tok::kNumber ||
          p.is(")") || p.is("]")) {
        return 0;
      }
      if (p.is("[")) return 0;
    }
    if (i + 1 < toks_.size() && toks_[i + 1].is("[")) return 0;  // attribute
    const std::size_t close = match_forward(toks_, i);
    if (close >= toks_.size()) return 0;

    FuncScope f;
    f.is_lambda = true;
    f.header_line = toks_[i].line;
    f.name_tok = i;  // the '[' introducer: feeds lambda name-binding lookup
    if (!parse_captures(i + 1, close, &f.captures)) return 0;

    std::size_t j = close + 1;
    // Optional template parameter list: [..]<class T>(..)
    if (j < toks_.size() && toks_[j].is("<")) {
      int depth = 0;
      for (; j < toks_.size(); ++j) {
        if (toks_[j].is("<")) ++depth;
        else if (toks_[j].is(">") && --depth == 0) { ++j; break; }
      }
    }
    if (j < toks_.size() && toks_[j].is("(")) {
      const std::size_t pclose = match_forward(toks_, j);
      if (pclose >= toks_.size()) return 0;
      f.param_open = j;
      f.param_close = pclose;
      parse_params(j + 1, pclose, &f.params);
      j = pclose + 1;
    }
    // Skip specifiers and any trailing return type up to the body.
    while (j < toks_.size() && !toks_[j].is("{")) {
      if (toks_[j].is(";") || toks_[j].is(")") || toks_[j].is(",") ||
          toks_[j].is("]") || toks_[j].is("}") || toks_[j].is("=")) {
        return 0;  // e.g. `[expr]` in an array-ish context; not a lambda
      }
      if (toks_[j].is("(") || toks_[j].is("<")) {
        // noexcept(...) or a templated trailing return type.
        const std::size_t c = toks_[j].is("(")
                                  ? match_forward(toks_, j)
                                  : j;  // '<' handled tokenwise below
        if (toks_[j].is("(")) {
          if (c >= toks_.size()) return 0;
          j = c + 1;
          continue;
        }
      }
      ++j;
    }
    if (j >= toks_.size()) return 0;
    push_func(std::move(f), j);
    return j;
  }

  bool parse_captures(std::size_t begin, std::size_t end,
                      std::vector<Capture>* out) {
    std::size_t i = begin;
    while (i < end) {
      if (toks_[i].is(",")) { ++i; continue; }
      if (toks_[i].is("&")) {
        if (i + 1 < end && toks_[i + 1].kind == Tok::kIdent) {
          out->push_back(Capture{Capture::kByRef, toks_[i + 1].text});
          i += 2;
        } else {
          out->push_back(Capture{Capture::kDefaultRef, {}});
          ++i;
        }
        // Skip an init-capture's initializer.
        i = skip_initializer(i, end);
        continue;
      }
      if (toks_[i].is("=")) {
        out->push_back(Capture{Capture::kDefaultCopy, {}});
        ++i;
        continue;
      }
      if (toks_[i].is("*") && i + 1 < end && toks_[i + 1].ident("this")) {
        out->push_back(Capture{Capture::kByCopy, toks_[i + 1].text});
        i += 2;
        continue;
      }
      if (toks_[i].ident("this")) {
        out->push_back(Capture{Capture::kThis, toks_[i].text});
        ++i;
        continue;
      }
      if (toks_[i].kind == Tok::kIdent) {
        out->push_back(Capture{Capture::kByCopy, toks_[i].text});
        ++i;
        i = skip_initializer(i, end);
        continue;
      }
      // Ellipsis packs and anything else we don't model.
      if (toks_[i].is("...")) { ++i; continue; }
      return false;  // not a capture list after all (e.g. subscript-like)
    }
    return true;
  }

  std::size_t skip_initializer(std::size_t i, std::size_t end) {
    if (i < end && toks_[i].is("=")) {
      int depth = 0;
      for (; i < end; ++i) {
        if (is_open(toks_[i].text)) ++depth;
        else if (is_close(toks_[i].text)) --depth;
        else if (toks_[i].is(",") && depth == 0) break;
      }
    }
    return i;
  }

  void parse_params(std::size_t begin, std::size_t end,
                    std::vector<Param>* out) {
    std::size_t i = begin;
    while (i < end) {
      // One parameter: scan to the next top-level comma.
      std::size_t stop = i;
      int depth = 0;
      for (; stop < end; ++stop) {
        if (is_open(toks_[stop].text) || toks_[stop].is("<")) ++depth;
        else if (is_close(toks_[stop].text) || toks_[stop].is(">")) --depth;
        else if (toks_[stop].is(",") && depth <= 0) break;
      }
      Param p;
      // The name is the last identifier before a default-argument `=` (or
      // the end); `&` / `&&` anywhere at top level marks reference-ness.
      std::size_t name_end = stop;
      for (std::size_t j = i; j < stop; ++j) {
        if (toks_[j].is("=")) { name_end = j; break; }
      }
      for (std::size_t j = i; j < name_end; ++j) {
        if (toks_[j].is("&&")) p.is_rvalue_ref = true;
        else if (toks_[j].is("&")) p.is_lvalue_ref = true;
        else if (toks_[j].is("*")) p.is_pointer = true;
      }
      std::size_t name_idx = SIZE_MAX;
      for (std::size_t j = name_end; j-- > i;) {
        if (toks_[j].kind == Tok::kIdent && !toks_[j].ident("const") &&
            !toks_[j].ident("volatile")) {
          // Skip over a closing angle bracket's type name: the name must be
          // the final identifier, directly before `=`, `,` or the end.
          p.name = toks_[j].text;
          name_idx = j;
          break;
        }
        if (!toks_[j].is("]") && !toks_[j].is(")")) break;
      }
      // The type is the last identifier of the declarator before the name
      // (`sim::Task t` -> Task, `PutStatus* st` -> PutStatus).
      if (name_idx != SIZE_MAX) {
        for (std::size_t j = name_idx; j-- > i;) {
          if (toks_[j].kind == Tok::kIdent && !toks_[j].ident("const") &&
              !toks_[j].ident("volatile")) {
            p.type_name = toks_[j].text;
            break;
          }
        }
      }
      if (!p.name.empty()) out->push_back(p);
      i = stop + 1;
    }
  }

  // --- plain-brace classification -------------------------------------------

  void open_brace(std::size_t i) {
    if (i == 0) {
      brace_stack_.push_back(-1);
      return;
    }
    const Token& prev = toks_[i - 1];
    // `) {` -- function body, control block, or ctor with init list.
    if (prev.is(")") || header_trailer(prev) || prev.is(">")) {
      std::size_t j = i;
      // Walk back over header trailers / trailing return type to the `)`.
      while (j > 0) {
        const Token& t = toks_[j - 1];
        if (t.is(")")) break;
        if (header_trailer(t) || t.kind == Tok::kIdent || t.is("->") ||
            t.is("::") || t.is("<") || t.is(">") || t.is("*")) {
          --j;
          continue;
        }
        j = 0;
      }
      if (j > 0) {
        if (classify_paren_header(j - 1, i)) return;
      }
      brace_stack_.push_back(-1);
      return;
    }
    // `else {`, `do {`, `try {` and type/namespace/initializer braces all
    // merge into (or nest neutrally inside) the enclosing function.
    brace_stack_.push_back(-1);
  }

  /// `close` is the index of a `)` heading the brace at `body`. Decides
  /// function vs control block vs ctor-init-list; pushes a FuncScope and
  /// returns true when it is a function body.
  bool classify_paren_header(std::size_t close, std::size_t body) {
    const std::size_t open = match_backward(toks_, close);
    if (open == SIZE_MAX || open == 0) {
      brace_stack_.push_back(-1);
      return false;
    }
    const Token& before = toks_[open - 1];
    if (before.kind == Tok::kIdent) {
      if (control_keyword(before.text)) {
        brace_stack_.push_back(-1);
        return true;  // control block: classified, not a function
      }
      // Constructor init list: `Ctor(args) : member_(x), other_{y} {`.
      // Walk further back: if this `ident(...)` group is preceded by `,` or
      // `:`, keep unwinding to the real parameter list.
      std::size_t name_idx = open - 1;
      std::size_t param_open = open;
      std::size_t guard = 0;
      while (name_idx > 0 && guard++ < 64) {
        const Token& sep = toks_[name_idx - 1];
        if (sep.is(",") || sep.is(":")) {
          // Previous group: `ident ( ... )` or `ident { ... }`.
          if (sep.is(":") ) {
            // Before the `:` must sit the `)` of the parameter list (or a
            // header trailer like noexcept).
            std::size_t k = name_idx - 1;
            while (k > 0 && header_trailer(toks_[k - 1])) --k;
            if (k > 0 && toks_[k - 1].is(")")) {
              const std::size_t po = match_backward(toks_, k - 1);
              if (po != SIZE_MAX && po > 0 &&
                  toks_[po - 1].kind == Tok::kIdent &&
                  !control_keyword(toks_[po - 1].text)) {
                make_function(po - 1, po, k - 1, body);
                return true;
              }
            }
            brace_stack_.push_back(-1);
            return false;
          }
          // sep is `,`: skip back over the previous `ident (...)`/`{...}`.
          std::size_t k = name_idx - 2;  // token before the comma
          if (k == SIZE_MAX) break;
          if (toks_[k].is(")") || toks_[k].is("}")) {
            const std::size_t po = match_backward(toks_, k);
            if (po == SIZE_MAX || po == 0) break;
            name_idx = po - 1;           // the member identifier
            param_open = po;
            continue;
          }
          break;
        }
        // Plain function (possibly qualified / templated name).
        make_function(name_idx, param_open, close, body);
        return true;
      }
      brace_stack_.push_back(-1);
      return false;
    }
    // `(...)` not preceded by an identifier: if/while with casts... treat as
    // a neutral block.
    brace_stack_.push_back(-1);
    return false;
  }

  void make_function(std::size_t name_idx, std::size_t param_open,
                     std::size_t param_close, std::size_t body) {
    FuncScope f;
    f.is_lambda = false;
    f.name = toks_[name_idx].text;
    f.name_tok = name_idx;
    f.param_open = param_open;
    f.param_close = param_close;
    // `Cls::name(...)` out-of-class definition: the class feeds receiver-
    // type disambiguation in the call graph.
    if (name_idx >= 2 && toks_[name_idx - 1].is("::") &&
        toks_[name_idx - 2].kind == Tok::kIdent) {
      f.cls = toks_[name_idx - 2].text;
    }
    f.header_line = toks_[name_idx].line;
    parse_params(param_open + 1, param_close, &f.params);
    push_func(std::move(f), body);
  }

  void push_func(FuncScope f, std::size_t body) {
    f.body_begin = body;
    f.body_end = toks_.size();  // patched on close
    f.parent = func_stack_.empty() ? -1 : func_stack_.back();
    info_.funcs.push_back(std::move(f));
    const int idx = static_cast<int>(info_.funcs.size()) - 1;
    func_stack_.push_back(idx);
    brace_stack_.push_back(idx);
  }

  // --- async declaration harvest -------------------------------------------

  /// Records names of functions declared or defined with Task / Future in
  /// their return type (async) and names declared with any other return
  /// type or bound to a lambda (sync). Handles both `sim::Task name(...)`
  /// definitions and bodiless member declarations `sim::Future<T> name(...);`.
  void collect_async_decls() {
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (toks_[i].kind != Tok::kIdent) continue;
      // `name = [..]` binds a lambda (or other callable) to a variable:
      // calls through that name have whatever type the lambda has, which we
      // cannot see -- treat the name as sync so it never triggers
      // discarded-async.
      if (i + 2 < toks_.size() && toks_[i + 1].is("=") &&
          toks_[i + 2].is("[")) {
        info_.sync_fn_names.emplace_back(toks_[i].text);
        continue;
      }
      if (!toks_[i + 1].is("(")) continue;
      if (control_keyword(toks_[i].text) || toks_[i].ident("return")) {
        continue;
      }
      // The candidate name must be followed, after the parameter list, by
      // `{`, `;`, an init-list `:`, or header trailers leading to one.
      const std::size_t close = match_forward(toks_, i + 1);
      if (close >= toks_.size()) continue;
      std::size_t after = close + 1;
      while (after < toks_.size() && header_trailer(toks_[after])) ++after;
      if (after < toks_.size() && toks_[after].is("=")) {
        // `= 0;` pure virtual or `= delete;`
        after += 2;
      }
      if (after >= toks_.size() ||
          (!toks_[after].is("{") && !toks_[after].is(";") &&
           !toks_[after].is(":"))) {
        continue;
      }
      // Scan the return-type region backwards to the start of the
      // declaration; a call expression never has type tokens there.
      bool saw_async_type = false;
      bool saw_type_token = false;
      std::size_t j = i;
      // Skip a qualified name: Class::name
      while (j >= 2 && toks_[j - 1].is("::") &&
             toks_[j - 2].kind == Tok::kIdent) {
        j -= 2;
      }
      if (j == 0) continue;
      const Token& just_before = toks_[j - 1];
      if (just_before.is(".") || just_before.is("->") ||
          just_before.is("(") || just_before.is(",") ||
          just_before.is(")") ||  // cast: `(void)f();` is a call, not a decl
          just_before.is("=") || just_before.ident("return") ||
          just_before.ident("co_await") || just_before.ident("co_return")) {
        continue;  // a call, not a declaration
      }
      std::size_t k = j;
      std::size_t steps = 0;
      while (k-- > 0 && steps++ < 16) {
        const Token& t = toks_[k];
        if (t.is(";") || t.is("{") || t.is("}") || t.is(":") || t.is("(")) {
          break;
        }
        if (t.ident("Task") || t.ident("Future")) {
          saw_async_type = true;
        } else if (t.kind == Tok::kIdent) {
          saw_type_token = true;
        }
      }
      if (saw_async_type) {
        info_.async_fn_names.emplace_back(toks_[i].text);
      } else if (saw_type_token) {
        // `void name(...)`, `std::uint64_t name(...)`, ... -- a declaration
        // with a non-async return type.
        info_.sync_fn_names.emplace_back(toks_[i].text);
      }
    }
    auto dedup = [](std::vector<std::string>* v) {
      std::sort(v->begin(), v->end());
      v->erase(std::unique(v->begin(), v->end()), v->end());
    };
    dedup(&info_.async_fn_names);
    dedup(&info_.sync_fn_names);
  }

  const std::vector<Token>& toks_;
  ScopeInfo info_;
  std::vector<int> brace_stack_;  // FuncScope index or -1 per open '{'
  std::vector<int> func_stack_;   // innermost function indices
};

}  // namespace

ScopeInfo analyze_scopes(const std::vector<Token>& toks) {
  return Analyzer(toks).run();
}

}  // namespace lint
