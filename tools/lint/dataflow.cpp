#include "lint/dataflow.hpp"

#include <algorithm>
#include <deque>

namespace lint {

ForwardMay::ForwardMay(const Cfg& cfg, std::size_t num_facts)
    : cfg_(cfg), words_(num_facts / 64 + 1) {
  const std::size_t n = cfg.blocks.size();
  gen_.assign(n, Row(words_, 0));
  kill_.assign(n, Row(words_, 0));
  in_.assign(n, Row(words_, 0));
  out_.assign(n, Row(words_, 0));
}

void ForwardMay::add_gen(int block, std::size_t fact) {
  set(gen_[static_cast<std::size_t>(block)], fact);
}

void ForwardMay::add_kill(int block, std::size_t fact) {
  set(kill_[static_cast<std::size_t>(block)], fact);
}

void ForwardMay::solve() {
  // Round-robin to fixed point: block counts per function are tiny, so a
  // worklist's bookkeeping would cost more than the extra sweeps.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 0; b < cfg_.blocks.size(); ++b) {
      Row& ib = in_[b];
      for (const int p : cfg_.blocks[b].pred) {
        const Row& op = out_[static_cast<std::size_t>(p)];
        for (std::size_t w = 0; w < words_; ++w) ib[w] |= op[w];
      }
      for (std::size_t w = 0; w < words_; ++w) {
        const std::uint64_t o = gen_[b][w] | (ib[w] & ~kill_[b][w]);
        if (o != out_[b][w]) {
          out_[b][w] = o;
          changed = true;
        }
      }
    }
  }
}

bool ForwardMay::in(int block, std::size_t fact) const {
  return get(in_[static_cast<std::size_t>(block)], fact);
}

bool ForwardMay::out(int block, std::size_t fact) const {
  return get(out_[static_cast<std::size_t>(block)], fact);
}

bool ForwardMay::gen(int block, std::size_t fact) const {
  return get(gen_[static_cast<std::size_t>(block)], fact);
}

std::vector<int> ForwardMay::live_path(int to, std::size_t fact) const {
  const std::size_t n = cfg_.blocks.size();
  std::vector<int> parent(n, -2);  // -2 unvisited, -1 a BFS source
  std::deque<int> queue;
  for (std::size_t b = 0; b < n; ++b) {
    if (get(gen_[b], fact)) {
      parent[b] = -1;
      queue.push_back(static_cast<int>(b));
    }
  }
  const auto reconstruct = [&](int end) {
    std::vector<int> path{end};
    for (int b = parent[static_cast<std::size_t>(end)]; b >= 0;
         b = parent[static_cast<std::size_t>(b)]) {
      path.push_back(b);
    }
    std::reverse(path.begin(), path.end());
    return path;
  };
  if (parent[static_cast<std::size_t>(to)] == -1) return {to};
  while (!queue.empty()) {
    const int b = queue.front();
    queue.pop_front();
    // The fact must leave `b` alive to reach a successor.
    if (!get(out_[static_cast<std::size_t>(b)], fact)) continue;
    for (const int s : cfg_.blocks[static_cast<std::size_t>(b)].succ) {
      if (parent[static_cast<std::size_t>(s)] != -2) continue;
      parent[static_cast<std::size_t>(s)] = b;
      if (s == to) return reconstruct(s);
      queue.push_back(s);
    }
  }
  return {};
}

}  // namespace lint
