// liblint: the rule API.
//
// A rule sees one tokenized file at a time (tokens + scope analysis) plus
// the cross-file symbol table of async (Task/Future-returning) function
// names. Rules run over the *shared* token stream -- each file is read and
// tokenized exactly once no matter how many rules are enabled -- and append
// raw findings; suppression filtering, the baseline, and stale-suppression
// accounting happen in the engine afterwards.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/cfg.hpp"
#include "lint/scope.hpp"
#include "lint/source.hpp"

namespace lint {

struct ProgramInfo;  // callgraph + summaries, see summary.hpp

struct RuleContext {
  const SourceFile& file;
  const ScopeInfo& scopes;
  const std::set<std::string, std::less<>>& async_fns;
  /// Lazily-built per-function CFGs (see cfg.hpp); flow rules share one
  /// cache per file so the CFG parse runs at most once per function.
  const CfgCache& cfgs;
  /// Whole-program layer (call graph + function summaries). Null under
  /// `--no-summaries`; every rule must degrade to its intraprocedural
  /// behaviour when absent.
  const ProgramInfo* prog = nullptr;
  /// Index of `file` in the scanned file list; -1 when `prog` is null.
  int file_index = -1;
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view name() const = 0;
  /// One-line description, used in --help and the SARIF rule metadata.
  virtual std::string_view description() const = 0;
  virtual void run(const RuleContext& ctx, std::vector<Finding>* out) const = 0;
};

/// All built-in rules, in catalog order. The `stale-suppression` check is
/// not listed here: it is an engine-level pass over suppression usage.
const std::vector<std::unique_ptr<Rule>>& all_rules();

/// One row of the complete rule catalog: every registered rule *plus* the
/// engine-level `stale-suppression` check. This is the single source of
/// truth behind `--list-rules`, the SARIF driver rule table, and the docs
/// drift test -- none of them may hard-code a rule name.
struct RuleMeta {
  std::string_view name;
  std::string_view description;
};
const std::vector<RuleMeta>& rule_catalog();

/// Per-directory policy for the value-escape rule: path prefixes where
/// `.value()` is the sanctioned convention, with the reason documented in
/// docs/STATIC_ANALYSIS.md. Exposed for the docs self-test.
struct PolicyEntry {
  std::string_view prefix;
  std::string_view reason;
};
const std::vector<PolicyEntry>& value_escape_policy();

/// Policy table for the resource-pairing rule: known acquire/release verb
/// pairs keyed by a receiver glob ('*' wildcard). A function that both
/// acquires and releases a matching resource must release it on *every*
/// path to exit; acquire-only functions are deliberate handoffs (the
/// streamer's cross-coroutine credit protocol) and stay silent. Exposed
/// for the docs self-test.
struct ResourcePairEntry {
  std::string_view receiver_glob;  // matched against the receiver identifier
  std::string_view acquire;        // method name that acquires
  std::string_view release;        // method name that must pair with it
};
const std::vector<ResourcePairEntry>& resource_pair_policy();

}  // namespace lint
