// liblint: the rule API.
//
// A rule sees one tokenized file at a time (tokens + scope analysis) plus
// the cross-file symbol table of async (Task/Future-returning) function
// names. Rules run over the *shared* token stream -- each file is read and
// tokenized exactly once no matter how many rules are enabled -- and append
// raw findings; suppression filtering, the baseline, and stale-suppression
// accounting happen in the engine afterwards.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/scope.hpp"
#include "lint/source.hpp"

namespace lint {

struct RuleContext {
  const SourceFile& file;
  const ScopeInfo& scopes;
  const std::set<std::string, std::less<>>& async_fns;
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view name() const = 0;
  /// One-line description, used in --help and the SARIF rule metadata.
  virtual std::string_view description() const = 0;
  virtual void run(const RuleContext& ctx, std::vector<Finding>* out) const = 0;
};

/// All built-in rules, in catalog order. The `stale-suppression` check is
/// not listed here: it is an engine-level pass over suppression usage.
const std::vector<std::unique_ptr<Rule>>& all_rules();

/// Per-directory policy for the value-escape rule: path prefixes where
/// `.value()` is the sanctioned convention, with the reason documented in
/// docs/STATIC_ANALYSIS.md. Exposed for the docs self-test.
struct PolicyEntry {
  std::string_view prefix;
  std::string_view reason;
};
const std::vector<PolicyEntry>& value_escape_policy();

}  // namespace lint
