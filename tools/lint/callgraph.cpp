#include "lint/callgraph.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace lint {

bool glob_match(std::string_view glob, std::string_view s) {
  std::size_t g = 0, i = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (i < s.size()) {
    if (g < glob.size() && glob[g] == '*') {
      star = g++;
      mark = i;
    } else if (g < glob.size() && glob[g] == s[i]) {
      ++g;
      ++i;
    } else if (star != std::string_view::npos) {
      g = star + 1;
      i = ++mark;
    } else {
      return false;
    }
  }
  while (g < glob.size() && glob[g] == '*') ++g;
  return g == glob.size();
}

std::string_view root_ident(const std::vector<Token>& toks,
                            std::pair<std::size_t, std::size_t> range) {
  auto [b, e] = range;
  if (b < e && (toks[b].is("&") || toks[b].is("*"))) ++b;
  if (e - b == 1 && toks[b].kind == Tok::kIdent) return toks[b].text;
  return {};
}

namespace {

constexpr int kVariadicArity = 1 << 20;

bool keyword_not_callee(std::string_view t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "catch" || t == "return" || t == "sizeof" || t == "alignof" ||
         t == "decltype" || t == "new" || t == "delete" || t == "co_await" ||
         t == "co_return" || t == "co_yield" || t == "static_assert" ||
         t == "noexcept" || t == "assert" || t == "defined";
}

/// Keywords that may precede a call expression without making the name a
/// declaration (`return f();`, `co_await g();`, `else f();`).
bool keyword_before_call(std::string_view t) {
  return t == "return" || t == "co_await" || t == "co_return" ||
         t == "co_yield" || t == "else" || t == "do" || t == "case" ||
         t == "throw";
}

/// Walks the receiver chain (`a.b().c`, `ns::f`) back to the start of the
/// expression; true when the token before it ends a statement, i.e. the
/// call's result is discarded at statement position.
bool at_statement_start(const std::vector<Token>& toks, std::size_t i) {
  std::size_t j = i;
  while (true) {
    while (j >= 2 && toks[j - 1].is("::") && toks[j - 2].kind == Tok::kIdent) {
      j -= 2;
    }
    if (j == 0) return true;
    const Token& p = toks[j - 1];
    if (p.is(".") || p.is("->")) {
      if (j < 2) return false;
      const Token& recv = toks[j - 2];
      if (recv.kind == Tok::kIdent) {
        j -= 2;
        continue;
      }
      if (recv.is(")") || recv.is("]")) {
        const std::size_t open = match_backward(toks, j - 2);
        if (open == SIZE_MAX) return false;
        if (open >= 1 && toks[open - 1].kind == Tok::kIdent) {
          j = open - 1;
          continue;
        }
        j = open;
        continue;
      }
      return false;
    }
    return p.is(";") || p.is("{") || p.is("}");
  }
}

/// Arity range of a parameter list `( ... )` given by token indices. Counts
/// top-level commas; trailing `= default` parameters lower the minimum and
/// a top-level `...` opens the maximum.
void param_arity(const std::vector<Token>& toks, std::size_t open,
                 std::size_t close, int* lo, int* hi) {
  *lo = 0;
  *hi = 0;
  if (open == SIZE_MAX || close == SIZE_MAX || close <= open + 1) return;
  if (close == open + 2 && toks[open + 1].ident("void")) return;
  int depth = 0;
  int params = 1;
  int defaults = 0;
  bool variadic = false;
  for (std::size_t i = open + 1; i < close; ++i) {
    const Token& t = toks[i];
    if (t.is("(") || t.is("[") || t.is("{") || t.is("<")) {
      ++depth;
    } else if (t.is(")") || t.is("]") || t.is("}") || t.is(">")) {
      --depth;
    } else if (depth <= 0 && t.is(",")) {
      ++params;
    } else if (depth <= 0 && t.is("=")) {
      ++defaults;
    } else if (depth <= 0 && t.is("...")) {
      variadic = true;
    }
  }
  *lo = params - defaults;
  if (*lo < 0) *lo = 0;
  *hi = variadic ? kVariadicArity : params;
}

/// True when the token range [b, e) mentions Task or Future.
bool mentions_async_type(const std::vector<Token>& toks, std::size_t b,
                         std::size_t e) {
  for (std::size_t i = b; i < e && i < toks.size(); ++i) {
    if (toks[i].ident("Task") || toks[i].ident("Future")) return true;
  }
  return false;
}

/// Fills returns_async / returns_auto for a named function def by scanning
/// its leading return-type region (bounded backwards walk, the same shape
/// the scope tracker's async harvest uses) and the trailing-return region
/// between `)` and `{`.
void scan_return_type(const std::vector<Token>& toks, const FuncScope& f,
                      FuncDef* d) {
  if (f.param_close != SIZE_MAX && f.param_close < f.body_begin &&
      mentions_async_type(toks, f.param_close, f.body_begin)) {
    d->returns_async = true;
    return;
  }
  if (f.name_tok == SIZE_MAX) return;
  std::size_t j = f.name_tok;
  while (j >= 2 && toks[j - 1].is("::") && toks[j - 2].kind == Tok::kIdent) {
    j -= 2;
  }
  std::size_t steps = 0;
  bool saw_auto = false;
  while (j-- > 0 && steps++ < 16) {
    const Token& t = toks[j];
    if (t.is(";") || t.is("{") || t.is("}") || t.is(":") || t.is("(")) break;
    if (t.ident("Task") || t.ident("Future")) {
      d->returns_async = true;
      return;
    }
    if (t.ident("auto")) saw_auto = true;
  }
  d->returns_auto = saw_auto;
}

}  // namespace

CallGraph CallGraph::build(const std::vector<const SourceFile*>& files,
                           const std::vector<ScopeInfo>& scopes) {
  CallGraph g;
  g.sites_.resize(files.size());
  g.def_of_.resize(files.size());

  // Pass 1: one FuncDef per FuncScope, ids in (file, func) order so the
  // table is deterministic and cache-stable.
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const auto& toks = files[fi]->tokens();
    const ScopeInfo& sc = scopes[fi];
    g.def_of_[fi].assign(sc.funcs.size(), -1);
    for (std::size_t k = 0; k < sc.funcs.size(); ++k) {
      const FuncScope& f = sc.funcs[k];
      FuncDef d;
      d.file = static_cast<int>(fi);
      d.func = static_cast<int>(k);
      d.name = f.name;
      d.cls = f.cls;
      d.line = f.header_line;
      d.is_lambda = f.is_lambda;
      d.is_coroutine = f.is_coroutine;
      param_arity(toks, f.param_open, f.param_close, &d.arity_min,
                  &d.arity_max);
      d.params_reliable =
          static_cast<int>(f.params.size()) == d.arity_max ||
          (d.arity_max == kVariadicArity &&
           static_cast<int>(f.params.size()) >= d.arity_min);
      if (f.is_lambda) {
        d.returns_async =
            f.is_coroutine ||
            (f.param_close != SIZE_MAX && f.param_close < f.body_begin &&
             mentions_async_type(toks, f.param_close, f.body_begin));
      } else {
        scan_return_type(toks, f, &d);
      }
      g.def_of_[fi][k] = static_cast<int>(g.defs_.size());
      g.defs_.push_back(d);
    }
  }

  // Named-function index. A name carried by two or more defs stays in the
  // index; the resolver disambiguates by arity and receiver type and gives
  // up (conservatively) if more than one candidate survives.
  std::map<std::string_view, std::vector<int>> by_name;
  for (std::size_t d = 0; d < g.defs_.size(); ++d) {
    if (!g.defs_[d].is_lambda && !g.defs_[d].name.empty()) {
      by_name[g.defs_[d].name].push_back(static_cast<int>(d));
    }
  }

  // Lambda name bindings, per file: `name = [..] ...` directly before a
  // lambda introducer. A name bound twice in one file, or that also names a
  // function definition anywhere, is ambiguous and dropped.
  std::vector<std::map<std::string_view, int>> bindings(files.size());
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const auto& toks = files[fi]->tokens();
    for (std::size_t k = 0; k < scopes[fi].funcs.size(); ++k) {
      const FuncScope& f = scopes[fi].funcs[k];
      if (!f.is_lambda || f.name_tok == SIZE_MAX || f.name_tok < 2) continue;
      if (!toks[f.name_tok - 1].is("=") ||
          toks[f.name_tok - 2].kind != Tok::kIdent) {
        continue;
      }
      const std::string_view bound = toks[f.name_tok - 2].text;
      if (by_name.count(bound)) {
        // The local binding shadows the free function at call sites in this
        // file, but a token-level table cannot scope the shadow: pin the
        // name to "ambiguous" so neither candidate wins here.
        bindings[fi][bound] = -1;
        continue;
      }
      const int id = g.def_of_[fi][k];
      auto [it, fresh] = bindings[fi].emplace(bound, id);
      if (!fresh) it->second = -1;  // rebound in the same file: ambiguous
      g.defs_[static_cast<std::size_t>(id)].name = bound;
    }
  }

  // Pass 2: call sites + resolution.
  std::vector<std::set<int>> callee_sets(g.defs_.size());
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const auto& toks = files[fi]->tokens();
    const ScopeInfo& sc = scopes[fi];
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent || !toks[i + 1].is("(")) continue;
      if (keyword_not_callee(toks[i].text)) continue;
      // Reject declarations/definitions: a type token (plain identifier,
      // `>`, `*`, `&`) directly before the (possibly qualified) name means
      // `void name(`, `Type* name(`, ... -- not a call.
      std::size_t j = i;
      while (j >= 2 && toks[j - 1].is("::") &&
             toks[j - 2].kind == Tok::kIdent) {
        j -= 2;
      }
      if (j > 0) {
        const Token& p = toks[j - 1];
        if (p.kind == Tok::kIdent && !keyword_before_call(p.text)) continue;
        if (p.is(">") || p.is("*") || p.is("&") || p.is("&&") || p.is("~")) {
          continue;
        }
      }
      const std::size_t close = match_forward(toks, i + 1);
      if (close >= toks.size()) continue;

      CallSite site;
      site.name_tok = i;
      site.arg_open = i + 1;
      site.arg_close = close;
      site.line = toks[i].line;
      site.callee_name = toks[i].text;
      const int enc = sc.enclosing(i);
      site.caller = enc < 0 ? -1 : g.def_of_[fi][static_cast<std::size_t>(enc)];
      if (j >= 2 && (toks[j - 1].is(".") || toks[j - 1].is("->")) &&
          toks[j - 2].kind == Tok::kIdent) {
        site.recv = toks[j - 2].text;
      }
      site.stmt_pos = close + 1 < toks.size() && toks[close + 1].is(";") &&
                      at_statement_start(toks, i);
      // Top-level argument ranges.
      if (close > i + 2) {
        int depth = 0;
        std::size_t b = i + 2;
        for (std::size_t a = i + 2; a < close; ++a) {
          if (toks[a].is("(") || toks[a].is("[") || toks[a].is("{")) ++depth;
          else if (toks[a].is(")") || toks[a].is("]") || toks[a].is("}"))
            --depth;
          else if (depth == 0 && toks[a].is(",")) {
            site.args.emplace_back(b, a);
            b = a + 1;
          }
        }
        site.args.emplace_back(b, close);
      }
      const int argc = static_cast<int>(site.args.size());

      // Resolution. Lambda bindings come first: an entry (possibly the -1
      // "ambiguous" pin from a collision) decides the name for this file.
      int resolved = -1;
      const auto lb = bindings[fi].find(site.callee_name);
      if (lb != bindings[fi].end()) {
        if (lb->second >= 0) {
          const FuncDef& cand = g.defs_[static_cast<std::size_t>(lb->second)];
          if (argc >= cand.arity_min && argc <= cand.arity_max) {
            resolved = lb->second;
          }
        }
      } else if (const auto it = by_name.find(site.callee_name);
                 it != by_name.end()) {
        // Receiver type, when the receiver is a parameter of the enclosing
        // function, filters out candidates defined as `OtherCls::name`.
        std::string_view recv_type;
        if (!site.recv.empty() && enc >= 0) {
          for (const Param& p : sc.funcs[static_cast<std::size_t>(enc)].params) {
            if (p.name == site.recv) {
              recv_type = p.type_name;
              break;
            }
          }
        }
        int match = -1;
        int nmatch = 0;
        for (const int cand_id : it->second) {
          const FuncDef& cand = g.defs_[static_cast<std::size_t>(cand_id)];
          if (argc < cand.arity_min || argc > cand.arity_max) continue;
          if (!recv_type.empty() && !cand.cls.empty() &&
              cand.cls != recv_type) {
            continue;
          }
          match = cand_id;
          ++nmatch;
        }
        if (nmatch == 1) resolved = match;
      }
      site.callee = resolved;
      ++g.call_sites_;
      if (resolved >= 0) {
        ++g.resolved_;
        if (site.caller >= 0) {
          callee_sets[static_cast<std::size_t>(site.caller)].insert(resolved);
        }
      }
      g.sites_[fi].push_back(std::move(site));
    }
  }

  g.callees_.resize(g.defs_.size());
  for (std::size_t d = 0; d < g.defs_.size(); ++d) {
    g.callees_[d].assign(callee_sets[d].begin(), callee_sets[d].end());
  }
  return g;
}

}  // namespace lint
