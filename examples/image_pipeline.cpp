// The paper's case study (Sec. 6) as a runnable example: images arrive over
// 100 G Ethernet with 802.3x flow control, are classified on the FPGA, and
// image + classification land in an NVMe database -- all without host
// involvement after setup. With --verify the run uses real pixel data and
// validates every stored record against the reference classifier.
//
//   $ ./image_pipeline [image_count] [--variant=uram|dram|host|hbm] [--verify]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/case_study.hpp"

using namespace snacc;
using namespace snacc::apps;

int main(int argc, char** argv) {
  ImageStreamConfig cfg;
  cfg.count = 96;
  core::Variant variant = core::Variant::kHostDram;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--variant=", 10) == 0) {
      const char* v = argv[i] + 10;
      if (!std::strcmp(v, "uram")) variant = core::Variant::kUram;
      else if (!std::strcmp(v, "dram")) variant = core::Variant::kOnboardDram;
      else if (!std::strcmp(v, "host")) variant = core::Variant::kHostDram;
      else if (!std::strcmp(v, "hbm")) variant = core::Variant::kHbm;
    } else if (!std::strcmp(argv[i], "--verify")) {
      cfg.real_data = true;
      cfg.width = 896;
      cfg.height = 896;  // smaller images keep the pixel math quick
      cfg.count = 12;
    } else {
      cfg.count = static_cast<std::uint32_t>(std::atoi(argv[i]));
    }
  }

  std::printf("Streaming %u images (%.2f MB each, %.2f GB total) through the "
              "%s variant...\n",
              cfg.count, cfg.bytes_per_image() / 1e6, cfg.total_bytes() / 1e9,
              core::variant_name(variant));

  CaseStudyResult r = run_snacc_case_study(variant, cfg);
  if (!r.ok) {
    std::fprintf(stderr, "pipeline did not complete\n");
    return 1;
  }
  std::printf("\n  bandwidth        %.2f GB/s (%.0f frames/s)\n",
              r.bandwidth_gb_s(), r.fps());
  std::printf("  stored           %.2f GB (records incl. headers)\n",
              r.bytes_stored / 1e9);
  std::printf("  CPU load         %.0f%% (autonomous after init)\n",
              r.cpu_utilization * 100);
  std::printf("  flow control     %llu pause transitions\n",
              static_cast<unsigned long long>(r.pause_frames));
  std::printf("  PCIe traffic     %.2f GB (%.2fx the payload)\n",
              r.pcie_total_bytes / 1e9,
              static_cast<double>(r.pcie_total_bytes) / cfg.total_bytes());
  for (const auto& p : r.pcie_paths) {
    if (p.bytes < cfg.total_bytes() / 100) continue;
    std::printf("    %-30s %8.2f GB\n", p.path.c_str(), p.bytes / 1e9);
  }
  if (cfg.real_data) {
    std::printf("  database check   %s%s\n", r.db_verified ? "OK" : "FAILED: ",
                r.db_verified ? "" : r.db_error.c_str());
    return r.db_verified ? 0 : 1;
  }
  return 0;
}
