// A log-structured key-value store served directly from the FPGA's NVMe
// path -- the "network accessible database" use case from the paper's
// introduction. Demonstrates puts/gets of mixed sizes, overwrites, and crash
// recovery (index rebuild by scanning the on-device log).
//
//   $ ./kv_store
#include <cstdio>

#include "apps/kv_store.hpp"
#include "common/rng.hpp"
#include "host/snacc_device.hpp"
#include "host/system.hpp"

using namespace snacc;

int main() {
  host::System sys;
  host::SnaccDeviceConfig cfg;
  cfg.streamer.variant = core::Variant::kOnboardDram;
  host::SnaccDevice dev(sys, cfg);
  bool ready = false;
  // `boot` is a named local whose
  // closure outlives run_until(); the frame completes before it is destroyed.
  // snacc-lint: allow(dangling-capture): safe by construction, see above.
  auto boot = [&]() -> sim::Task {
    co_await dev.init();
    ready = true;
  };
  sys.sim().spawn(boot());
  sys.sim().run_until(seconds(1));
  if (!ready) return 1;

  apps::KvStore store(dev.streamer(), /*log_base=*/Bytes{},
                      /*log_capacity=*/Bytes{1 * GiB});
  bool done = false;
  // `workload` is a named local whose
  // closure outlives run_until(); the frame completes before it is destroyed.
  // snacc-lint: allow(dangling-capture): safe by construction, see above.
  auto workload = [&]() -> sim::Task {
    Xoshiro256 rng(2026);
    // Load phase: 200 keys with values from 100 B to 256 KiB.
    TimePs t0 = sys.sim().now();
    apps::PutStatus st = apps::PutStatus::kOk;
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t size = 100 + rng.below(256 * KiB);
      co_await store.put("user:" + std::to_string(i),
                         Payload::filled(size, static_cast<std::uint8_t>(i)),
                         &st);
      if (st != apps::PutStatus::kOk) {
        std::printf("put user:%d failed: %s\n", i, apps::put_status_name(st));
        // Bail out, but flush first: the keys already acknowledged would
        // otherwise sit volatile in the log and vanish on a crash.
        bool flushed = false;
        co_await store.commit(&flushed);
        co_return;
      }
    }
    // Group commit: one flush barrier makes the whole load phase durable.
    bool committed = false;
    co_await store.commit(&committed);
    std::printf("loaded %llu keys (%.1f MB of log) in %.2f ms, commit %s\n",
                static_cast<unsigned long long>(store.entries()),
                store.log_bytes_used().value() / 1e6,
                to_ms(sys.sim().now() - t0), committed ? "ok" : "FAILED");

    // Overwrite some keys: the log grows, the index keeps the latest.
    for (int i = 0; i < 50; ++i) {
      co_await store.put("user:" + std::to_string(i),
                         Payload::filled(2048, 0xFF), &st);
      if (st != apps::PutStatus::kOk) {
        std::printf("overwrite user:%d failed: %s\n", i,
                    apps::put_status_name(st));
        co_await store.commit(&committed);
        co_return;
      }
    }
    co_await store.commit(&committed);

    // Point lookups.
    t0 = sys.sim().now();
    int hits = 0;
    for (int i = 0; i < 100; ++i) {
      Payload value;
      bool found = false;
      co_await store.get("user:" + std::to_string(rng.below(200)), &value,
                         &found);
      hits += found ? 1 : 0;
    }
    std::printf("100 point lookups, %d hits, avg %.1f us each\n", hits,
                to_us(sys.sim().now() - t0) / 100);

    // Simulated restart: a new store instance rebuilds its index from the
    // on-device log.
    apps::KvStore recovered(dev.streamer(), Bytes{}, Bytes{1 * GiB});
    std::uint64_t records = 0;
    t0 = sys.sim().now();
    co_await recovered.recover(&records);
    std::printf("recovery scanned %llu records in %.2f ms -> %llu live keys\n",
                static_cast<unsigned long long>(records),
                to_ms(sys.sim().now() - t0),
                static_cast<unsigned long long>(recovered.entries()));

    Payload check;
    bool found = false;
    co_await recovered.get("user:7", &check, &found);
    std::printf("post-recovery read of user:7 -> %s (%llu bytes, %s)\n",
                found ? "found" : "missing",
                static_cast<unsigned long long>(check.size()),
                check.content_equals(Payload::filled(2048, 0xFF)) ? "latest version"
                                                                  : "STALE");
    done = true;
  };
  sys.sim().spawn(workload());
  sys.sim().run_until(sys.sim().now() + seconds(30));
  return done ? 0 : 1;
}
