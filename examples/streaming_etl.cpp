// Streaming ETL: the generic network-to-storage pattern from the paper's
// abstract ("often paired with pre-processing before storing results for
// later use"), without the DNN. Records arrive over 100 G Ethernet, a
// filter/transform PE drops invalid records and computes a running digest,
// and the survivors are packed into block-aligned segments written straight
// to NVMe -- no host on the data path.
//
//   $ ./streaming_etl [record_count]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/rng.hpp"
#include "eth/mac.hpp"
#include "host/snacc_device.hpp"
#include "host/system.hpp"
#include "snacc/pe_client.hpp"

using namespace snacc;

namespace {

// A fixed-size telemetry record; ~25% are marked invalid at the source and
// must be filtered out.
struct Record {
  static constexpr std::uint64_t kBytes = 512;
  static Payload make(std::uint64_t id, bool valid) {
    std::vector<std::byte> raw(kBytes, std::byte{0});
    const std::uint64_t magic = valid ? 0x45544C31 : 0xDEAD;
    std::memcpy(raw.data(), &magic, 8);
    std::memcpy(raw.data() + 8, &id, 8);
    std::uint64_t payload = id * 2654435761u;
    std::memcpy(raw.data() + 16, &payload, 8);
    return Payload::bytes(std::move(raw));
  }
  static bool valid(std::span<const std::byte> raw, std::uint64_t* id,
                    std::uint64_t* value) {
    std::uint64_t magic = 0;
    std::memcpy(&magic, raw.data(), 8);
    if (magic != 0x45544C31) return false;
    std::memcpy(id, raw.data() + 8, 8);
    std::memcpy(value, raw.data() + 16, 8);
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t record_count =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 200000;

  host::System sys;
  sys.ssd().nand().force_mode(true);
  host::SnaccDeviceConfig cfg;
  cfg.streamer.variant = core::Variant::kUram;
  host::SnaccDevice dev(sys, cfg);
  bool booted = false;
  // `boot` is a named local whose
  // closure outlives run_until(); the frame completes before it is destroyed.
  // snacc-lint: allow(dangling-capture): safe by construction, see above.
  auto boot = [&]() -> sim::Task {
    co_await dev.init();
    booted = true;
  };
  sys.sim().spawn(boot());
  sys.sim().run_until(seconds(1));
  if (!booted) return 1;

  const auto& eth_profile = sys.config().profile.eth;
  eth::Wire tx_wire(sys.sim(), eth_profile);
  eth::Wire rx_wire(sys.sim(), eth_profile);
  eth::Mac tx(sys.sim(), eth_profile, tx_wire, rx_wire, "source");
  eth::Mac rx(sys.sim(), eth_profile, rx_wire, tx_wire, "etl");
  tx.start();
  rx.start();

  core::PeClient pe(dev.streamer());
  std::uint64_t kept = 0;
  std::uint64_t dropped = 0;
  std::uint64_t digest = 0;
  std::uint64_t segments = 0;
  bool done = false;
  TimePs t0;
  TimePs t1;

  // Source: batches of records per Ethernet frame.
  // `source` is a named local whose
  // closure outlives run_until(); the frame completes before destruction.
  // snacc-lint: allow(dangling-capture): safe by construction, see above.
  auto source = [&]() -> sim::Task {
    Xoshiro256 rng(7);
    constexpr std::uint64_t kPerFrame = 8;
    std::vector<Payload> batch;
    for (std::uint64_t id = 0; id < record_count; ++id) {
      batch.push_back(Record::make(id, !rng.chance(0.25)));
      if (batch.size() == kPerFrame || id + 1 == record_count) {
        co_await tx.send(eth::Frame(Payload::gather(batch), 0, id, false));
        batch.clear();
      }
    }
    co_await tx.send(eth::Frame(Payload{}, 0, 0, true));  // end marker
  };

  // ETL PE: parse, filter, digest, pack into 1 MiB segments, store.
  // `etl` is a named local whose
  // closure outlives run_until(); the frame completes before destruction.
  // snacc-lint: allow(dangling-capture): safe by construction, see above.
  auto etl = [&]() -> sim::Task {
    t0 = sys.sim().now();
    std::vector<Payload> segment;
    std::uint64_t segment_bytes = 0;
    std::uint64_t cursor = 0;
    std::uint64_t writes_out = 0;
    bool eos = false;
    while (!eos) {
      std::optional<eth::Frame> frame;
      co_await rx.recv_accounted(&frame);
      if (!frame || frame->end_of_object) eos = true;
      if (frame && frame->payload.size() > 0) {
        auto raw = frame->payload.view();
        for (std::size_t off = 0; off + Record::kBytes <= raw.size();
             off += Record::kBytes) {
          std::uint64_t id = 0;
          std::uint64_t value = 0;
          if (Record::valid(raw.subspan(off, Record::kBytes), &id, &value)) {
            digest ^= value * (id | 1);
            segment.push_back(frame->payload.slice(off, Record::kBytes));
            segment_bytes += Record::kBytes;
            ++kept;
          } else {
            ++dropped;
          }
        }
      }
      if (segment_bytes >= 1 * MiB || (eos && segment_bytes > 0)) {
        co_await pe.start_write(Bytes{cursor}, Payload::gather(segment));
        segment.clear();
        cursor += (segment_bytes + kPageSize - 1) & ~(kPageSize - 1);
        segment_bytes = 0;
        ++segments;
        ++writes_out;
      }
    }
    for (std::uint64_t i = 0; i < writes_out; ++i) {
      co_await pe.wait_write_response();
    }
    t1 = sys.sim().now();
    done = true;
  };

  sys.sim().spawn(source());
  sys.sim().spawn(etl());
  sys.sim().run_until(sys.sim().now() + seconds(60));
  if (!done) {
    std::fprintf(stderr, "pipeline did not finish\n");
    return 1;
  }

  const std::uint64_t in_bytes = record_count * Record::kBytes;
  std::printf("ingested %llu records (%.1f MB) in %.2f ms -> %.2f GB/s\n",
              static_cast<unsigned long long>(record_count), in_bytes / 1e6,
              to_ms(t1 - t0), gb_per_s(in_bytes, t1 - t0));
  std::printf("kept %llu, dropped %llu (%.1f%%), digest %016llx\n",
              static_cast<unsigned long long>(kept),
              static_cast<unsigned long long>(dropped),
              100.0 * dropped / record_count,
              static_cast<unsigned long long>(digest));
  std::printf("stored %llu segments (%.1f MB) on the SSD, media pages %zu\n",
              static_cast<unsigned long long>(segments),
              kept * Record::kBytes / 1e6,
              sys.ssd().media().resident_pages());
  return 0;
}
