// Sec. 7 "Multi-SSD Support" as a runnable example: one FPGA drives several
// NVMe SSDs through per-SSD queue pairs, striping a single logical address
// space across them. Write bandwidth adds across devices until the FPGA's
// own PCIe link saturates.
//
//   $ ./multi_ssd [ssd_count]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "host/snacc_device.hpp"
#include "host/system.hpp"
#include "snacc/striped_client.hpp"

using namespace snacc;

int main(int argc, char** argv) {
  const std::uint32_t max_ssds =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 3;

  for (std::uint32_t n = 1; n <= max_ssds; ++n) {
    host::SystemConfig sys_cfg;
    sys_cfg.ssd_count = n;
    sys_cfg.host_memory_bytes = 4 * GiB;
    host::System sys(sys_cfg);

    std::vector<std::unique_ptr<host::SnaccDevice>> devices;
    pcie::PortId shared = pcie::kInvalidPort;
    for (std::uint32_t i = 0; i < n; ++i) {
      sys.ssd(i).nand().force_mode(true);
      host::SnaccDeviceConfig cfg;
      cfg.streamer.variant = core::Variant::kHostDram;
      cfg.ssd_index = i;
      cfg.instance = i;
      cfg.shared_fpga_port = shared;  // all streamers share one PCIe link
      devices.push_back(std::make_unique<host::SnaccDevice>(sys, cfg));
      shared = devices.back()->fpga_port();
    }
    int ready = 0;
    for (auto& dev : devices) {
      auto boot = [](host::SnaccDevice* d, int* c) -> sim::Task {
        co_await d->init();
        ++*c;
      };
      sys.sim().spawn(boot(dev.get(), &ready));
    }
    sys.sim().run_until(seconds(1));
    if (ready != static_cast<int>(n)) {
      std::fprintf(stderr, "init failed for n=%u\n", n);
      return 1;
    }

    std::vector<core::NvmeStreamer*> streamers;
    for (auto& dev : devices) streamers.push_back(&dev->streamer());
    core::StripedClient striped(streamers);

    const std::uint64_t total = 512 * MiB;
    bool done = false;
    TimePs t0;
    TimePs t_write;
    TimePs t_read;
    // `io` is a named local whose
    // closure outlives run_until(); the frame completes before destruction.
    // snacc-lint: allow(dangling-capture): safe by construction, see above.
    auto io = [&]() -> sim::Task {
      t0 = sys.sim().now();
      co_await striped.write(Bytes{}, Payload::phantom(total));
      t_write = sys.sim().now();
      co_await striped.read(Bytes{}, Bytes{total}, nullptr);
      t_read = sys.sim().now();
      done = true;
    };
    sys.sim().spawn(io());
    sys.sim().run_until(sys.sim().now() + seconds(30));
    if (!done) {
      std::fprintf(stderr, "run did not complete for n=%u\n", n);
      return 1;
    }
    std::printf("%u SSD%s: seq-write %5.2f GB/s   seq-read %5.2f GB/s\n", n,
                n == 1 ? " " : "s", gb_per_s(total, t_write - t0),
                gb_per_s(total, t_read - t_write));
  }
  std::printf(
      "\nWrite bandwidth adds per SSD (Sec. 7) until the FPGA's PCIe link\n"
      "(~13 GB/s Gen3 x16) becomes the new ceiling.\n");
  return 0;
}
