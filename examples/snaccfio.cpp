// snaccfio: a small fio-style workload runner for the simulated testbed --
// the tool you reach for to explore the design space without writing code.
//
//   $ ./snaccfio --engine=snacc --variant=host --rw=randread --bs=4k \
//                --size=256m --qd=64
//   $ ./snaccfio --engine=spdk --rw=write --bs=1m --size=1g
//
// Options:
//   --engine=snacc|spdk        data path (default snacc)
//   --variant=uram|dram|host|hbm   SNAcc buffer variant (default uram)
//   --rw=read|write|randread|randwrite (default read)
//   --bs=<n>[k|m]              I/O size per command (default 1m)
//   --size=<n>[k|m|g]          total bytes (default 256m)
//   --qd=<n>                   queue depth / streamer window (default 64)
//   --ooo                      out-of-order retirement (SNAcc only)
//   --mode=fast|slow           pin the SSD's program mode (default fast)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "host/snacc_device.hpp"
#include "host/system.hpp"
#include "snacc/pe_client.hpp"
#include "spdk/driver.hpp"

using namespace snacc;

namespace {

std::uint64_t parse_size(const char* s) {
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end != nullptr) {
    if (*end == 'k' || *end == 'K') v *= KiB;
    if (*end == 'm' || *end == 'M') v *= MiB;
    if (*end == 'g' || *end == 'G') v *= GiB;
  }
  return static_cast<std::uint64_t>(v);
}

struct Options {
  bool spdk = false;
  core::Variant variant = core::Variant::kUram;
  bool is_write = false;
  bool random = false;
  std::uint64_t bs = 1 * MiB;
  std::uint64_t size = 256 * MiB;
  std::uint16_t qd = 64;
  bool ooo = false;
  bool fast_mode = true;
};

bool parse(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strncmp(a, "--engine=", 9)) {
      opt->spdk = !std::strcmp(a + 9, "spdk");
    } else if (!std::strncmp(a, "--variant=", 10)) {
      const char* v = a + 10;
      if (!std::strcmp(v, "uram")) opt->variant = core::Variant::kUram;
      else if (!std::strcmp(v, "dram")) opt->variant = core::Variant::kOnboardDram;
      else if (!std::strcmp(v, "host")) opt->variant = core::Variant::kHostDram;
      else if (!std::strcmp(v, "hbm")) opt->variant = core::Variant::kHbm;
      else return false;
    } else if (!std::strncmp(a, "--rw=", 5)) {
      const char* v = a + 5;
      opt->is_write = std::strstr(v, "write") != nullptr;
      opt->random = std::strncmp(v, "rand", 4) == 0;
    } else if (!std::strncmp(a, "--bs=", 5)) {
      opt->bs = parse_size(a + 5);
    } else if (!std::strncmp(a, "--size=", 7)) {
      opt->size = parse_size(a + 7);
    } else if (!std::strncmp(a, "--qd=", 5)) {
      opt->qd = static_cast<std::uint16_t>(std::atoi(a + 5));
    } else if (!std::strcmp(a, "--ooo")) {
      opt->ooo = true;
    } else if (!std::strncmp(a, "--mode=", 7)) {
      opt->fast_mode = std::strcmp(a + 7, "slow") != 0;
    } else {
      return false;
    }
  }
  return opt->bs >= 4 * KiB && opt->size >= opt->bs;
}

struct RunStats {
  TimePs elapsed;
  std::uint64_t bytes = 0;
  LatencyStats latency;
};

void report(const Options& opt, RunStats& st) {
  std::printf("\n  %s %s, bs=%llu KiB, %.0f MiB total, qd=%u\n",
              opt.random ? "random" : "sequential",
              opt.is_write ? "write" : "read",
              static_cast<unsigned long long>(opt.bs / KiB),
              static_cast<double>(opt.size) / MiB, opt.qd);
  std::printf("  bandwidth : %.2f GB/s\n", gb_per_s(st.bytes, st.elapsed));
  std::printf("  IOPS      : %.0f\n",
              static_cast<double>(st.bytes / opt.bs) / to_s(st.elapsed));
  if (st.latency.count() > 0) {
    std::printf("  latency   : mean %.1f us, p50 %.1f us, p99 %.1f us, "
                "max %.1f us\n",
                st.latency.mean_us(), to_us(st.latency.percentile(50)),
                to_us(st.latency.percentile(99)), to_us(st.latency.max()));
  }
}

sim::Task snacc_run(host::System* sys, core::PeClient* pe, const Options* opt,
                    RunStats* st, bool* done) {
  const std::uint64_t commands = opt->size / opt->bs;
  const std::uint64_t region_blocks = (8ull * GiB) / nvme::kLbaSize;
  const TimePs t0 = sys->sim().now();

  struct Issuer {
    static sim::Task run(core::PeClient* pe, const Options* opt,
                         std::uint64_t commands, std::uint64_t region_blocks,
                         std::vector<TimePs>* issue_times) {
      Xoshiro256 rng(42);
      for (std::uint64_t i = 0; i < commands; ++i) {
        const std::uint64_t addr =
            opt->random
                ? rng.below(region_blocks - opt->bs / nvme::kLbaSize) *
                      nvme::kLbaSize
                : i * opt->bs;
        (*issue_times)[i] = pe->streamer().read_cmd_in().simulator().now();
        if (opt->is_write) {
          co_await pe->start_write(Bytes{addr}, Payload::phantom(opt->bs),
                                   Bytes{opt->bs});
        } else {
          co_await pe->start_read(Bytes{addr}, Bytes{opt->bs});
        }
      }
    }
  };
  std::vector<TimePs> issue_times(commands);
  sys->sim().spawn(Issuer::run(pe, opt, commands, region_blocks, &issue_times));
  for (std::uint64_t i = 0; i < commands; ++i) {
    if (opt->is_write) {
      co_await pe->wait_write_response();
    } else {
      co_await pe->collect_read(nullptr);
    }
    st->latency.add(sys->sim().now() - issue_times[i]);
    st->bytes += opt->bs;
  }
  st->elapsed = sys->sim().now() - t0;
  *done = true;
}

sim::Task spdk_run(host::System* sys, spdk::Driver* driver, const Options* opt,
                   RunStats* st, bool* done) {
  spdk::WorkloadResult res;
  const TimePs t0 = sys->sim().now();
  if (opt->random) {
    co_await driver->run_random(opt->is_write, Bytes{opt->size}, Bytes{opt->bs},
                                (8ull * GiB) / nvme::kLbaSize, 42, &res);
  } else {
    co_await driver->run_sequential(opt->is_write, Lba{}, Bytes{opt->size},
                                    Bytes{opt->bs}, &res);
  }
  st->elapsed = sys->sim().now() - t0;
  st->bytes = res.bytes;
  st->latency = std::move(res.latency);
  *done = true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) {
    std::fprintf(stderr, "bad arguments; see the header of this file\n");
    return 2;
  }

  host::SystemConfig sys_cfg;
  sys_cfg.host_memory_bytes = 2 * GiB;
  host::System sys(sys_cfg);
  sys.ssd().nand().force_mode(opt.fast_mode);

  RunStats st;
  bool done = false;
  std::unique_ptr<host::SnaccDevice> dev;
  std::unique_ptr<core::PeClient> pe;
  std::unique_ptr<spdk::Driver> driver;

  bool booted = false;
  if (opt.spdk) {
    spdk::DriverConfig cfg;
    cfg.queue_depth = opt.qd;
    driver = std::make_unique<spdk::Driver>(
        sys.sim(), sys.fabric(), sys.host_mem(), host::addr_map::kHostDramBase,
        sys.ssd(), sys.config().profile.host, cfg);
    // `boot` is a named local whose
    // closure outlives run_until(); the frame completes before destruction.
    // snacc-lint: allow(dangling-capture): safe by construction, see above.
    auto boot = [&]() -> sim::Task {
      co_await driver->init();
      booted = true;
    };
    sys.sim().spawn(boot());
  } else {
    host::SnaccDeviceConfig cfg;
    cfg.streamer.variant = opt.variant;
    cfg.streamer.queue_depth = opt.qd;
    cfg.streamer.out_of_order = opt.ooo;
    dev = std::make_unique<host::SnaccDevice>(sys, cfg);
    // `boot` is a named local whose
    // closure outlives run_until(); the frame completes before destruction.
    // snacc-lint: allow(dangling-capture): safe by construction, see above.
    auto boot = [&]() -> sim::Task {
      co_await dev->init();
      booted = true;
    };
    sys.sim().spawn(boot());
  }
  sys.sim().run_until(seconds(1));
  if (!booted) {
    std::fprintf(stderr, "initialization failed\n");
    return 1;
  }

  std::printf("engine=%s%s%s qd=%u ssd-mode=%s",
              opt.spdk ? "spdk" : "snacc",
              opt.spdk ? "" : " variant=",
              opt.spdk ? "" : core::variant_name(opt.variant), opt.qd,
              opt.fast_mode ? "fast" : "slow");
  if (opt.ooo) std::printf(" (out-of-order retirement)");
  std::printf("\n");

  if (opt.spdk) {
    sys.sim().spawn(spdk_run(&sys, driver.get(), &opt, &st, &done));
  } else {
    pe = std::make_unique<core::PeClient>(dev->streamer());
    sys.sim().spawn(snacc_run(&sys, pe.get(), &opt, &st, &done));
  }
  sys.sim().run_until(sys.sim().now() + seconds(600));
  if (!done) {
    std::fprintf(stderr, "workload did not finish\n");
    return 1;
  }
  report(opt, st);
  return 0;
}
