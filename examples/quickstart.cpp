// Quickstart: bring up the simulated testbed (host + PCIe + NVMe SSD +
// FPGA), initialize the SNAcc URAM streamer through the real admin path, and
// do a write/read round trip through the user-PE stream interface.
//
//   $ ./quickstart
#include <cstdio>

#include "host/snacc_device.hpp"
#include "host/system.hpp"
#include "snacc/pe_client.hpp"

using namespace snacc;

int main() {
  // 1. The testbed: EPYC-class host, one Samsung-990-PRO-class SSD and an
  //    Alveo-U280-class FPGA on a PCIe fabric. Defaults mirror the paper.
  host::System sys;

  // 2. Attach SNAcc with the URAM buffer variant (Sec. 4.3).
  host::SnaccDeviceConfig cfg;
  cfg.streamer.variant = core::Variant::kUram;
  host::SnaccDevice dev(sys, cfg);

  // 3. One-time host-side initialization (Sec. 4.6): NVMe admin bring-up,
  //    I/O queues pointing at the FPGA windows, IOMMU grants. Afterwards the
  //    data path needs no host interaction.
  bool ready = false;
  // `boot` is a named local whose
  // closure outlives run_until(); the frame completes before it is destroyed.
  // snacc-lint: allow(dangling-capture): safe by construction, see above.
  auto boot = [&]() -> sim::Task {
    co_await dev.init();
    ready = true;
  };
  sys.sim().spawn(boot());
  sys.sim().run_until(seconds(1));
  if (!ready) {
    std::fprintf(stderr, "initialization failed\n");
    return 1;
  }
  std::printf("SNAcc (%s) initialized; SSD ready: %s\n",
              core::variant_name(dev.variant()),
              sys.ssd().ready() ? "yes" : "no");

  // 4. Drive the four AXI4-Stream ports (Sec. 4.1) through the PE client.
  core::PeClient pe(dev.streamer());
  bool done = false;
  // `io` is a named local whose closure
  // outlives run_until(); the frame completes before it is destroyed.
  // snacc-lint: allow(dangling-capture): safe by construction, see above.
  auto io = [&]() -> sim::Task {
    Payload hello = Payload::filled(64 * KiB, 0xC5);
    TimePs t0 = sys.sim().now();
    co_await pe.write(Bytes{1 * MiB}, hello);
    std::printf("wrote 64 KiB at device offset 1 MiB in %.1f us\n",
                to_us(sys.sim().now() - t0));

    Payload back;
    t0 = sys.sim().now();
    co_await pe.read(Bytes{1 * MiB}, Bytes{64 * KiB}, &back);
    std::printf("read it back in %.1f us -- contents %s\n",
                to_us(sys.sim().now() - t0),
                back.content_equals(hello) ? "MATCH" : "MISMATCH");

    // A larger transfer: the streamer splits it into 1 MB NVMe commands and
    // computes the PRP lists on the fly (Sec. 4.4).
    t0 = sys.sim().now();
    co_await pe.write(Bytes{16 * MiB}, Payload::phantom(64 * MiB));
    const double gbs = gb_per_s(64 * MiB, sys.sim().now() - t0);
    std::printf("streamed 64 MiB sequentially at %.2f GB/s\n", gbs);
    done = true;
  };
  sys.sim().spawn(io());
  sys.sim().run_until(sys.sim().now() + seconds(5));
  if (!done) {
    std::fprintf(stderr, "I/O did not complete\n");
    return 1;
  }
  std::printf("done: %llu NVMe commands submitted, %llu retired, 0 host "
              "interactions after init\n",
              static_cast<unsigned long long>(dev.streamer().commands_submitted()),
              static_cast<unsigned long long>(dev.streamer().commands_retired()));
  return 0;
}
