// AXI4-Stream abstractions.
//
// The paper's user-PE interface is four AXI4-Stream ports (Sec. 4.1). We
// model streams at *chunk* granularity: a Chunk is a contiguous run of beats
// carrying a Payload plus the TLAST marker. Serialization time is charged by
// StreamLink / Stream::send at `ceil(bytes/width)` beats of the port clock,
// which preserves bandwidth and backpressure without simulating every beat.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/payload.hpp"
#include "common/units.hpp"
#include "sim/channel.hpp"
#include "sim/rate_server.hpp"
#include "sim/task.hpp"

namespace snacc::axis {

/// One stream transfer: a contiguous burst of beats. `last` maps to TLAST on
/// the final beat; `user` carries side-band data (TUSER), e.g. a command tag
/// or an address on the first beat of a write command stream.
///
/// Special members are user-provided on purpose: g++ 12 miscompiles moves of
/// multi-member aggregates with non-trivial members when they are
/// materialized inside a co_await expression (the object is duplicated
/// bitwise and the source destroyed, corrupting Payload ownership). See the
/// note in sim/channel.hpp and the Channel.SharedOwnership* regression
/// tests.
struct Chunk {
  Payload data;
  bool last = false;
  std::uint64_t user = 0;

  Chunk() = default;
  Chunk(Payload d, bool l = false, std::uint64_t u = 0)
      : data(std::move(d)), last(l), user(u) {}
  Chunk(Chunk&& o) noexcept
      : data(std::move(o.data)), last(o.last), user(o.user) {}
  Chunk& operator=(Chunk&& o) noexcept {
    data = std::move(o.data);
    last = o.last;
    user = o.user;
    return *this;
  }
  Chunk(const Chunk& o) : data(o.data), last(o.last), user(o.user) {}
  Chunk& operator=(const Chunk& o) {
    data = o.data;
    last = o.last;
    user = o.user;
    return *this;
  }
};

/// Physical characteristics of a stream port.
struct StreamConfig {
  std::uint32_t width_bytes = 64;   // TDATA width (512 bit default)
  TimePs clock_period = ps(3334);   // 300 MHz
  std::size_t fifo_chunks = 16;     // skid/FIFO depth in chunks
};

/// A timed AXI4-Stream port: bounded FIFO plus beat-rate serialization on
/// the sender side. `send` completes when the final beat has been accepted
/// (i.e. after serialization and FIFO admission); `recv` pops chunks.
class Stream {
 public:
  Stream(sim::Simulator& sim, StreamConfig cfg = {})
      : sim_(&sim),
        cfg_(cfg),
        fifo_(sim, cfg.fifo_chunks),
        wire_(sim, rate_gb_s(cfg)) {}

  static double rate_gb_s(const StreamConfig& cfg) {
    return static_cast<double>(cfg.width_bytes) / 1e9 /
           // snacc-lint: allow(value-escape): double-domain clock arithmetic
           (static_cast<double>(cfg.clock_period.value()) /
            static_cast<double>(kPsPerS));
  }

  /// Beats needed for `bytes` (minimum one: command-only transfers still
  /// occupy a beat).
  std::uint64_t beats(std::uint64_t bytes) const {
    return bytes == 0 ? 1 : (bytes + cfg_.width_bytes - 1) / cfg_.width_bytes;
  }

  sim::Task send(Chunk chunk) {
    const std::uint64_t wire_bytes = beats(chunk.data.size()) * cfg_.width_bytes;
    co_await wire_.acquire(wire_bytes);
    // A close() can race a producer parked on the full FIFO; the failed push
    // drops the chunk and must not count it as sent.
    if (!co_await fifo_.push(std::move(chunk))) co_return;
    bytes_sent_ += wire_bytes;
  }

  /// Sends without charging serialization (for zero-width token streams,
  /// e.g. the write-response stream).
  sim::Task send_token(std::uint64_t user) {
    co_await fifo_.push(Chunk{Payload{}, true, user});
  }

  auto recv() { return fifo_.pop(); }
  std::optional<Chunk> try_recv() { return fifo_.try_pop(); }

  void close() { fifo_.close(); }
  bool closed() const { return fifo_.closed(); }
  std::size_t pending() const { return fifo_.size(); }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  const StreamConfig& config() const { return cfg_; }
  sim::Simulator& simulator() const { return *sim_; }

 private:
  sim::Simulator* sim_;
  StreamConfig cfg_;
  sim::Channel<Chunk> fifo_;
  sim::RateServer wire_;
  std::uint64_t bytes_sent_ = 0;
};

/// Splits a payload into chunks of at most `max_bytes`, setting `last` on
/// the final piece when `final_last` is true.
inline sim::Task send_chunked(Stream& out, Payload payload, Bytes max_bytes,
                              bool final_last = true, std::uint64_t user = 0) {
  std::uint64_t off = 0;
  // snacc-lint: allow(value-escape): chunk arithmetic vs raw Payload sizes
  const std::uint64_t max = max_bytes.value();
  const std::uint64_t total = payload.size();
  do {
    const std::uint64_t n = std::min<std::uint64_t>(max, total - off);
    const bool is_last = final_last && (off + n == total);
    co_await out.send(Chunk{payload.slice(off, n), is_last, user});
    off += n;
  } while (off < total);
}

/// Round-robin N-to-1 arbiter: pumps chunks from inputs to the output,
/// switching inputs only on TLAST boundaries (packet-level arbitration, as
/// AXI4-Stream interconnects do).
class RoundRobinArbiter {
 public:
  RoundRobinArbiter(sim::Simulator& sim, std::vector<Stream*> inputs,
                    Stream& output)
      : sim_(&sim), inputs_(std::move(inputs)), output_(&output) {}

  void start() { sim_->spawn(pump()); }

 private:
  sim::Task pump() {
    std::size_t idx = 0;
    std::size_t idle_scans = 0;
    while (true) {
      Stream* in = inputs_[idx];
      if (auto chunk = in->try_recv()) {
        idle_scans = 0;
        const bool was_last = chunk->last;
        co_await output_->send(std::move(*chunk));
        if (!was_last) continue;  // keep draining this packet
      } else if (in->closed()) {
        if (++idle_scans >= inputs_.size()) {
          if (all_closed()) {
            output_->close();
            co_return;
          }
          idle_scans = 0;
          co_await sim_->delay(output_->config().clock_period);
        }
      } else {
        // Input momentarily empty: yield a cycle before rescanning.
        if (++idle_scans >= inputs_.size()) {
          idle_scans = 0;
          co_await sim_->delay(output_->config().clock_period);
        }
      }
      idx = (idx + 1) % inputs_.size();
    }
  }

  bool all_closed() const {
    for (const Stream* s : inputs_) {
      if (!s->closed() || s->pending() != 0) return false;
    }
    return true;
  }

  sim::Simulator* sim_;
  std::vector<Stream*> inputs_;
  Stream* output_;
};

}  // namespace snacc::axis
