// SPDK-style host polled-mode NVMe driver (the paper's baseline, Sec. 5.1).
//
// Faithful to SPDK's architecture: queues and pinned data buffers live in
// host DRAM, the driver runs in "user space" (no syscalls modeled), keeps the
// submission queue as full as the configured queue depth allows, harvests
// completions *out of order* by polling the CQ phase bit, and burns a CPU
// thread doing so. PRP lists are materialized in memory ("the naive
// implementation" the paper contrasts the streamer's on-the-fly scheme with).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/calibration.hpp"
#include "common/cpu_account.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "nvme/queues.hpp"
#include "nvme/spec.hpp"
#include "nvme/ssd.hpp"
#include "pcie/memory_target.hpp"
#include "sim/future.hpp"

namespace snacc::spdk {

struct DriverConfig {
  std::uint16_t queue_depth = 64;     // in-flight I/O commands
  TimePs poll_interval = ns(150);     // CQ poll loop period
  TimePs submit_overhead = ns(350);   // per-command software cost
  Bytes region_offset{};              // where in host memory the driver lives

  // Error recovery (docs/FAULTS.md). 0 retries = report the error status to
  // the caller, exactly the pre-recovery behaviour (bit-identical when no
  // faults fire: the retry branch is only reached on an error completion).
  std::uint32_t max_retries = 0;      // resubmissions per failed command
  TimePs retry_backoff = us(5);       // first backoff; doubles per attempt
};

struct WorkloadResult {
  TimePs elapsed;
  std::uint64_t bytes = 0;
  std::uint64_t commands = 0;
  LatencyStats latency;
  double bandwidth_gb_s() const { return gb_per_s(bytes, elapsed); }
};

class Driver {
 public:
  Driver(sim::Simulator& sim, pcie::Fabric& fabric, pcie::HostMemory& host_mem,
         pcie::Addr host_window_base, nvme::Ssd& ssd, const HostProfile& host,
         DriverConfig cfg = {});

  /// Full controller bring-up through real admin commands: register setup,
  /// CSTS poll, Identify, Create I/O CQ + SQ. Must complete before I/O.
  sim::Task init();
  bool initialized() const { return initialized_; }
  const nvme::IdentifyController& identify_data() const { return identify_; }

  /// Single blocking read/write (splits at the device MDTS). `out` receives
  /// the data when non-null.
  sim::Task read(Lba lba, Bytes bytes, Payload* out,
                 nvme::Status* status = nullptr);
  sim::Task write(Lba lba, Payload data, nvme::Status* status = nullptr);

  /// Pipelined sequential workload: `total_bytes` in `cmd_bytes` commands,
  /// queue depth kept full, completions harvested out of order.
  sim::Task run_sequential(bool is_write, Lba start_lba, Bytes total_bytes,
                           Bytes cmd_bytes, WorkloadResult* result);

  /// Pipelined random workload: uniformly random block addresses within
  /// `region_blocks`.
  sim::Task run_random(bool is_write, Bytes total_bytes, Bytes cmd_bytes,
                       std::uint64_t region_blocks, std::uint64_t seed,
                       WorkloadResult* result);

  CpuAccount& cpu() { return cpu_; }

  // Recovery statistics (zero unless faults fired).
  std::uint64_t io_errors() const { return io_errors_; }    // error completions
  std::uint64_t io_retries() const { return io_retries_; }  // resubmissions
  std::uint64_t io_failed() const { return io_failed_; }    // retries exhausted

 private:
  struct Slot {
    bool in_use = false;
    sim::Promise<nvme::Status>* completion = nullptr;  // owned by submitter
    TimePs submitted_at;
  };

  struct IoDesc {
    bool is_write = false;
    Lba lba;
    Bytes bytes;
  };

  /// One retry attempt: backoff, claim a fresh slot, optionally restage
  /// `stage` into the slot's pinned buffer (writes), resubmit and wait.
  sim::Task resubmit_one(IoDesc io, std::uint32_t attempt, Payload stage,
                         nvme::Status* status, std::uint16_t* slot_out);

  // Region layout (local offsets inside the driver's host-memory region).
  Bytes local(Bytes off) const { return cfg_.region_offset + off; }
  pcie::Addr global(Bytes off) const { return host_window_base_ + local(off); }
  Bytes admin_sq_off() const { return Bytes{}; }
  Bytes admin_cq_off() const { return Bytes{4 * KiB}; }
  Bytes identify_off() const { return Bytes{8 * KiB}; }
  // The I/O rings scale with the configured queue depth (qd+1 entries).
  Bytes io_sq_off() const { return Bytes{12 * KiB}; }
  Bytes io_cq_off() const {
    return io_sq_off() +
           page_align_up(Bytes{(cfg_.queue_depth + 1ull) * nvme::kSqeSize});
  }
  Bytes prp_list_off(std::uint16_t slot) const {
    return io_cq_off() +
           page_align_up(Bytes{(cfg_.queue_depth + 1ull) * nvme::kCqeSize}) +
           Bytes{static_cast<std::uint64_t>(slot) * kPageSize};
  }
  Bytes buffer_off(std::uint16_t slot) const {
    return prp_list_off(cfg_.queue_depth) +
           max_transfer_ * static_cast<std::uint64_t>(slot);
  }

  sim::Task admin_cmd(nvme::SubmissionEntry sqe, nvme::Status* status,
                      std::uint32_t* dw0 = nullptr);
  sim::Task ring_sq_doorbell(std::uint16_t qid, std::uint16_t tail);
  sim::Task ring_cq_doorbell(std::uint16_t qid, std::uint16_t head);

  /// Writes the SQE + PRP list into host memory and rings the doorbell.
  /// The slot must already be claimed.
  sim::Task submit_io(const IoDesc& io, std::uint16_t slot,
                      sim::Promise<nvme::Status>* completion);

  /// Polls the I/O CQ until `pending_` drains to zero and `draining_` is set.
  sim::Task poller();

  /// Shared engine for run_sequential / run_random.
  sim::Task run_workload(const std::vector<IoDesc>& ios, WorkloadResult* result);

  sim::Simulator& sim_;
  pcie::Fabric& fabric_;
  pcie::HostMemory& host_mem_;
  pcie::Addr host_window_base_;
  nvme::Ssd& ssd_;
  HostProfile host_;
  DriverConfig cfg_;
  Bytes max_transfer_{1 * MiB};

  nvme::IdentifyController identify_;
  bool initialized_ = false;

  nvme::SqRing admin_sq_;
  nvme::CqRing admin_cq_;
  nvme::SqRing io_sq_;
  nvme::CqRing io_cq_;

  std::vector<Slot> slots_;
  std::unique_ptr<sim::Semaphore> slot_sem_;
  int pending_ = 0;
  bool poller_running_ = false;

  CpuAccount cpu_{"spdk-thread"};
  std::uint16_t next_cid_ = 0;

  std::uint64_t io_errors_ = 0;
  std::uint64_t io_retries_ = 0;
  std::uint64_t io_failed_ = 0;
};

}  // namespace snacc::spdk
