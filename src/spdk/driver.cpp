#include "spdk/driver.hpp"

#include <cassert>
#include <cstring>
#include <memory>

namespace snacc::spdk {

namespace {

Payload u32_payload(std::uint32_t v) {
  std::vector<std::byte> raw(4);
  std::memcpy(raw.data(), &v, 4);
  return Payload::bytes(std::move(raw));
}

Payload u64_payload(std::uint64_t v) {
  std::vector<std::byte> raw(8);
  std::memcpy(raw.data(), &v, 8);
  return Payload::bytes(std::move(raw));
}

constexpr std::uint16_t kAdminEntries = 16;
constexpr std::uint16_t kIoQid = 1;

}  // namespace

Driver::Driver(sim::Simulator& sim, pcie::Fabric& fabric,
               pcie::HostMemory& host_mem, pcie::Addr host_window_base,
               nvme::Ssd& ssd, const HostProfile& host, DriverConfig cfg)
    : sim_(sim),
      fabric_(fabric),
      host_mem_(host_mem),
      host_window_base_(host_window_base),
      ssd_(ssd),
      host_(host),
      cfg_(cfg),
      admin_sq_(nvme::QueueConfig{0, pcie::Addr{}, kAdminEntries}),
      admin_cq_(nvme::QueueConfig{0, pcie::Addr{}, kAdminEntries}),
      io_sq_(nvme::QueueConfig{kIoQid, pcie::Addr{},
                               static_cast<std::uint16_t>(cfg.queue_depth + 1)}),
      io_cq_(nvme::QueueConfig{kIoQid, pcie::Addr{},
                               static_cast<std::uint16_t>(cfg.queue_depth + 1)}) {
  admin_sq_ = nvme::SqRing(nvme::QueueConfig{0, global(admin_sq_off()), kAdminEntries});
  admin_cq_ = nvme::CqRing(nvme::QueueConfig{0, global(admin_cq_off()), kAdminEntries});
  io_sq_ = nvme::SqRing(nvme::QueueConfig{
      kIoQid, global(io_sq_off()), static_cast<std::uint16_t>(cfg.queue_depth + 1)});
  io_cq_ = nvme::CqRing(nvme::QueueConfig{
      kIoQid, global(io_cq_off()), static_cast<std::uint16_t>(cfg.queue_depth + 1)});
  slots_.resize(cfg.queue_depth);
  slot_sem_ = std::make_unique<sim::Semaphore>(sim_, cfg.queue_depth);
}

// ---------------------------------------------------------------------------
// Bring-up

sim::Task Driver::init() {
  const pcie::PortId root = fabric_.root_port();
  const pcie::Addr bar = ssd_.bar_base();

  // Admin queue registers, then enable.
  co_await fabric_.write(root, bar + nvme::reg::kAsq, u64_payload(admin_sq_.config().base.value()));
  co_await fabric_.write(root, bar + nvme::reg::kAcq, u64_payload(admin_cq_.config().base.value()));
  const std::uint32_t aqa = (kAdminEntries - 1) | ((kAdminEntries - 1u) << 16);
  co_await fabric_.write(root, bar + nvme::reg::kAqa, u32_payload(aqa));
  co_await fabric_.write(root, bar + nvme::reg::kCc, u32_payload(1));
  cpu_.charge(4 * host_.doorbell_write);

  // Poll CSTS.RDY.
  while (true) {
    auto rr = co_await fabric_.read(root, bar + nvme::reg::kCsts, Bytes{4});
    std::uint32_t csts = 0;
    if (rr.data.has_data()) std::memcpy(&csts, rr.data.view().data(), 4);
    if (csts & 1) break;
    co_await sim_.delay(us(10));
    cpu_.charge(us(10));  // init-time spin; not part of any measurement
  }

  // Identify controller.
  nvme::SubmissionEntry identify;
  identify.opcode = static_cast<std::uint8_t>(nvme::AdminOpcode::kIdentify);
  identify.prp1 = global(identify_off());
  identify.cdw10 = 1;  // CNS=controller
  nvme::Status st = nvme::Status::kSuccess;
  co_await admin_cmd(identify, &st);
  assert(st == nvme::Status::kSuccess);
  identify_ = nvme::IdentifyController::decode(
      host_mem_.store().read(local(identify_off()).value(), kPageSize));
  if (identify_.max_transfer_bytes != 0) {
    max_transfer_ = Bytes{identify_.max_transfer_bytes};
  }

  // Create the I/O completion queue, then the submission queue bound to it.
  nvme::SubmissionEntry create_cq;
  create_cq.opcode = static_cast<std::uint8_t>(nvme::AdminOpcode::kCreateIoCq);
  create_cq.prp1 = io_cq_.config().base;
  create_cq.cdw10 = kIoQid | (static_cast<std::uint32_t>(io_cq_.config().entries - 1) << 16);
  create_cq.cdw11 = 1;  // physically contiguous
  co_await admin_cmd(create_cq, &st);
  assert(st == nvme::Status::kSuccess);

  nvme::SubmissionEntry create_sq;
  create_sq.opcode = static_cast<std::uint8_t>(nvme::AdminOpcode::kCreateIoSq);
  create_sq.prp1 = io_sq_.config().base;
  create_sq.cdw10 = kIoQid | (static_cast<std::uint32_t>(io_sq_.config().entries - 1) << 16);
  create_sq.cdw11 = (static_cast<std::uint32_t>(kIoQid) << 16) | 1;
  co_await admin_cmd(create_sq, &st);
  assert(st == nvme::Status::kSuccess);

  initialized_ = true;
}

sim::Task Driver::ring_sq_doorbell(std::uint16_t qid, std::uint16_t tail) {
  // MMIO doorbells are posted writes: the CPU pays the store cost but does
  // not wait for delivery (SQE bytes are already globally visible).
  cpu_.charge(host_.doorbell_write);
  co_await sim_.delay(host_.doorbell_write);
  (void)fabric_.write(fabric_.root_port(),
                      ssd_.bar_base() + nvme::reg::sq_tail_doorbell(qid),
                      u32_payload(tail));
}

sim::Task Driver::ring_cq_doorbell(std::uint16_t qid, std::uint16_t head) {
  cpu_.charge(host_.doorbell_write);
  co_await sim_.delay(host_.doorbell_write);
  (void)fabric_.write(fabric_.root_port(),
                      ssd_.bar_base() + nvme::reg::cq_head_doorbell(qid),
                      u32_payload(head));
}

sim::Task Driver::admin_cmd(nvme::SubmissionEntry sqe, nvme::Status* status,
                            std::uint32_t* dw0) {
  sqe.cid = Cid{next_cid_++};
  auto raw = sqe.encode();
  const Bytes sq_off =
      (admin_sq_.config().base - host_window_base_) +
      Bytes{static_cast<std::uint64_t>(admin_sq_.tail()) * nvme::kSqeSize};
  host_mem_.store().write(sq_off.value(),
                          Payload::bytes({raw.begin(), raw.end()}));
  const std::uint16_t tail = admin_sq_.advance_tail();
  co_await ring_sq_doorbell(0, tail);

  // Poll the admin CQ.
  while (true) {
    Payload cqe_raw = host_mem_.store().read(
        (admin_cq_.head_addr() - host_window_base_).value(), nvme::kCqeSize);
    if (cqe_raw.has_data()) {
      auto cqe = nvme::CompletionEntry::decode(cqe_raw.view());
      if (admin_cq_.is_new(cqe) && cqe.cid == sqe.cid) {
        admin_sq_.update_head(cqe.sq_head);
        if (status != nullptr) *status = cqe.status;
        if (dw0 != nullptr) *dw0 = cqe.dw0;
        const std::uint16_t head = admin_cq_.advance();
        co_await ring_cq_doorbell(0, head);
        co_return;
      }
    }
    co_await sim_.delay(cfg_.poll_interval);
    cpu_.charge(cfg_.poll_interval);
  }
}

// ---------------------------------------------------------------------------
// I/O path

sim::Task Driver::submit_io(const IoDesc& io, std::uint16_t slot,
                            sim::Promise<nvme::Status>* completion) {
  assert(initialized_);
  assert(io.bytes <= max_transfer_);
  assert(!io_sq_.full());

  Slot& s = slots_[slot];
  s.in_use = true;
  s.completion = completion;
  s.submitted_at = sim_.now();

  const pcie::Addr buf = global(buffer_off(slot));
  nvme::SubmissionEntry sqe;
  sqe.opcode = static_cast<std::uint8_t>(io.is_write ? nvme::IoOpcode::kWrite
                                                     : nvme::IoOpcode::kRead);
  sqe.cid = Cid{slot};
  sqe.slba = io.lba;
  sqe.nlb = static_cast<std::uint16_t>(
      (io.bytes.value() + nvme::kLbaSize - 1) / nvme::kLbaSize - 1);
  sqe.prp1 = buf;
  const std::uint64_t pages = nvme::prp_page_count(io.bytes);
  if (pages == 2) {
    sqe.prp2 = buf + Bytes{kPageSize};
  } else if (pages > 2) {
    // Materialize the PRP list in host memory -- the "naive" scheme.
    sqe.prp2 = global(prp_list_off(slot));
    auto lists = nvme::build_prp_lists(buf, io.bytes, sqe.prp2);
    std::uint64_t page_addr = local(prp_list_off(slot)).value();
    for (const auto& list : lists) {
      std::vector<std::byte> raw(list.size() * 8);
      std::memcpy(raw.data(), list.data(), raw.size());
      host_mem_.store().write(page_addr, Payload::bytes(std::move(raw)));
      page_addr += kPageSize;
    }
    // Our buffers are contiguous, so chained lists never exceed one page for
    // MDTS=1 MiB; keep the assert to catch config drift.
    assert(lists.size() <= 1);
  }

  auto raw = sqe.encode();
  host_mem_.store().write((io_sq_.next_slot_addr() - host_window_base_).value(),
                          Payload::bytes({raw.begin(), raw.end()}));
  const std::uint16_t tail = io_sq_.advance_tail();
  cpu_.charge(cfg_.submit_overhead);
  co_await sim_.delay(cfg_.submit_overhead);
  co_await ring_sq_doorbell(kIoQid, tail);

  ++pending_;
  if (!poller_running_) {
    poller_running_ = true;
    sim_.spawn(poller());
  }
}

sim::Task Driver::poller() {
  while (pending_ > 0) {
    Payload cqe_raw = host_mem_.store().read(
        (io_cq_.head_addr() - host_window_base_).value(), nvme::kCqeSize);
    bool found = false;
    if (cqe_raw.has_data()) {
      auto cqe = nvme::CompletionEntry::decode(cqe_raw.view());
      if (io_cq_.is_new(cqe)) {
        found = true;
        io_sq_.update_head(cqe.sq_head);
        const std::uint16_t head = io_cq_.advance();
        Slot& s = slots_.at(cqe.cid.value());
        assert(s.in_use);
        s.in_use = false;
        --pending_;
        cpu_.charge(ns(80));  // per-completion bookkeeping
        if (s.completion != nullptr) {
          auto* promise = s.completion;
          s.completion = nullptr;
          promise->set(cqe.status);
        }
        slot_sem_->release();
        co_await ring_cq_doorbell(kIoQid, head);
      }
    }
    if (!found) {
      cpu_.charge(cfg_.poll_interval);
      co_await sim_.delay(cfg_.poll_interval);
    }
  }
  poller_running_ = false;
}

sim::Task Driver::resubmit_one(IoDesc io, std::uint32_t attempt, Payload stage,
                               nvme::Status* status, std::uint16_t* slot_out) {
  ++io_retries_;
  co_await sim_.delay(cfg_.retry_backoff * (1ull << (attempt - 1)));
  co_await slot_sem_->acquire();
  std::uint16_t slot = 0;
  while (slots_[slot].in_use) ++slot;
  if (slot_out != nullptr) *slot_out = slot;
  if (stage.size() > 0) {
    host_mem_.store().write(local(buffer_off(slot)).value(), std::move(stage));
  }
  sim::Promise<nvme::Status> promise(sim_);
  auto fut = promise.future();
  co_await submit_io(io, slot, &promise);
  const nvme::Status st = co_await fut;
  if (st != nvme::Status::kSuccess) ++io_errors_;
  *status = st;
}

sim::Task Driver::read(Lba lba, Bytes bytes, Payload* out,
                       nvme::Status* status) {
  nvme::Status final_status = nvme::Status::kSuccess;
  Payload assembled;
  Bytes done_bytes;
  while (done_bytes < bytes) {
    const Bytes n = std::min(bytes - done_bytes, max_transfer_);
    co_await slot_sem_->acquire();
    std::uint16_t slot = 0;
    while (slots_[slot].in_use) ++slot;
    sim::Promise<nvme::Status> promise(sim_);
    auto fut = promise.future();
    co_await submit_io(
        IoDesc{false, lba + done_bytes.value() / nvme::kLbaSize, n}, slot,
        &promise);
    nvme::Status st = co_await fut;
    if (st != nvme::Status::kSuccess) {
      ++io_errors_;
      for (std::uint32_t attempt = 1;
           st != nvme::Status::kSuccess && attempt <= cfg_.max_retries;
           ++attempt) {
        // The retry claims a fresh slot; `slot` tracks it so the buffer
        // read-back below picks up the retried command's data.
        co_await resubmit_one(
            IoDesc{false, lba + done_bytes.value() / nvme::kLbaSize, n},
            attempt, Payload{}, &st, &slot);
      }
      if (st != nvme::Status::kSuccess) {
        ++io_failed_;
        final_status = st;
      }
    }
    // Completion-path software cost (poll pickup, buffer handoff). This is
    // the calibrated host-stack term of Fig. 4c.
    co_await sim_.delay(host_.spdk_read_stack);
    if (out != nullptr) {
      Payload part =
          host_mem_.store().read(local(buffer_off(slot)).value(), n.value());
      assembled = assembled.empty() ? std::move(part)
                                    : Payload::concat(assembled, part);
    }
    done_bytes += n;
  }
  if (out != nullptr) *out = std::move(assembled);
  if (status != nullptr) *status = final_status;
}

sim::Task Driver::write(Lba lba, Payload data, nvme::Status* status) {
  nvme::Status final_status = nvme::Status::kSuccess;
  Bytes done_bytes;
  const Bytes bytes{data.size()};
  while (done_bytes < bytes) {
    const Bytes n = std::min(bytes - done_bytes, max_transfer_);
    co_await slot_sem_->acquire();
    std::uint16_t slot = 0;
    while (slots_[slot].in_use) ++slot;
    // Zero-copy model: the application produced the data in the pinned
    // buffer; make it visible to the device.
    host_mem_.store().write(local(buffer_off(slot)).value(),
                            data.slice(done_bytes.value(), n.value()));
    sim::Promise<nvme::Status> promise(sim_);
    auto fut = promise.future();
    co_await submit_io(
        IoDesc{true, lba + done_bytes.value() / nvme::kLbaSize, n}, slot,
        &promise);
    nvme::Status st = co_await fut;
    if (st != nvme::Status::kSuccess) {
      ++io_errors_;
      for (std::uint32_t attempt = 1;
           st != nvme::Status::kSuccess && attempt <= cfg_.max_retries;
           ++attempt) {
        // Restage the chunk: the failed attempt's buffer slot was recycled.
        co_await resubmit_one(
            IoDesc{true, lba + done_bytes.value() / nvme::kLbaSize, n}, attempt,
            data.slice(done_bytes.value(), n.value()), &st, nullptr);
      }
      if (st != nvme::Status::kSuccess) {
        ++io_failed_;
        final_status = st;
      }
    }
    co_await sim_.delay(host_.spdk_write_stack);
    done_bytes += n;
  }
  if (status != nullptr) *status = final_status;
}

// ---------------------------------------------------------------------------
// Pipelined workloads

sim::Task Driver::run_workload(const std::vector<IoDesc>& ios,
                               WorkloadResult* result) {
  const TimePs t0 = sim_.now();
  sim::WaitGroup wg(sim_);
  wg.add(static_cast<int>(ios.size()));

  // Completion promises live here so the poller can fulfill them while we
  // keep submitting; a helper task per command records latency and joins.
  struct Tracker {
    sim::Promise<nvme::Status> promise;
    TimePs submitted;
    IoDesc io;
  };
  std::vector<std::unique_ptr<Tracker>> trackers;
  trackers.reserve(ios.size());

  auto finisher = [](Driver* self, Tracker* t, WorkloadResult* res,
                     sim::WaitGroup* group) -> sim::Task {
    auto fut = t->promise.future();
    nvme::Status st = co_await fut;
    if (st != nvme::Status::kSuccess) {
      ++self->io_errors_;
      for (std::uint32_t attempt = 1;
           st != nvme::Status::kSuccess && attempt <= self->cfg_.max_retries;
           ++attempt) {
        co_await self->resubmit_one(t->io, attempt, Payload{}, &st, nullptr);
      }
      if (st != nvme::Status::kSuccess) ++self->io_failed_;
    }
    const TimePs stack = t->io.is_write ? self->host_.spdk_write_stack
                                        : self->host_.spdk_read_stack;
    // Latency includes any retries: it is the delivered completion time.
    res->latency.add(self->sim_.now() - t->submitted + stack);
    group->done();
  };

  for (const IoDesc& io : ios) {
    co_await slot_sem_->acquire();
    std::uint16_t slot = 0;
    while (slots_[slot].in_use) ++slot;
    auto tracker = std::make_unique<Tracker>(
        Tracker{sim::Promise<nvme::Status>(sim_), sim_.now(), io});
    sim_.spawn(finisher(this, tracker.get(), result, &wg));
    co_await submit_io(io, slot, &tracker->promise);
    trackers.push_back(std::move(tracker));
    result->bytes += io.bytes.value();
    ++result->commands;
  }
  co_await wg.wait();
  result->elapsed = sim_.now() - t0;
}

sim::Task Driver::run_sequential(bool is_write, Lba start_lba,
                                 Bytes total_bytes, Bytes cmd_bytes,
                                 WorkloadResult* result) {
  std::vector<IoDesc> ios;
  Lba lba = start_lba;
  for (Bytes off; off < total_bytes; off += cmd_bytes) {
    const Bytes n = std::min(cmd_bytes, total_bytes - off);
    ios.push_back(IoDesc{is_write, lba, n});
    lba = lba + n.value() / nvme::kLbaSize;
  }
  co_await run_workload(ios, result);
}

sim::Task Driver::run_random(bool is_write, Bytes total_bytes, Bytes cmd_bytes,
                             std::uint64_t region_blocks, std::uint64_t seed,
                             WorkloadResult* result) {
  Xoshiro256 rng(seed);
  const std::uint64_t blocks_per_cmd = cmd_bytes.value() / nvme::kLbaSize;
  std::vector<IoDesc> ios;
  for (Bytes off; off < total_bytes; off += cmd_bytes) {
    const Lba lba{rng.below(region_blocks - blocks_per_cmd)};
    ios.push_back(IoDesc{is_write, lba, cmd_bytes});
  }
  co_await run_workload(ios, result);
}

}  // namespace snacc::spdk
