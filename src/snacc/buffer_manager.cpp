#include "snacc/buffer_manager.hpp"

namespace snacc::core {

bool BufferRing::fits(Bytes rounded, Bytes* pad) const {
  *pad = Bytes{};
  const Bytes free_bytes = capacity_ - used_;
  const Bytes to_end = capacity_ - tail_;
  if (rounded <= to_end) return rounded <= free_bytes;
  // Must skip the ring tail remainder: charge it as padding.
  *pad = to_end;
  return rounded + to_end <= free_bytes;
}

sim::Task BufferRing::alloc(Bytes bytes, Bytes* offset_out) {
  assert(!bytes.is_zero());
  const Bytes rounded = page_align_up(bytes);
  assert(rounded <= capacity_);
  Bytes pad;
  while (!fits(rounded, &pad)) {
    space_.close();
    co_await space_.opened();
  }
  Bytes offset = tail_;
  if (!pad.is_zero()) offset = Bytes{};  // wrapped
  allocs_.push_back(Alloc{offset, rounded, pad});
  used_ += rounded + pad;
  tail_ = (offset + rounded) % capacity_;
  *offset_out = offset;
}

void BufferRing::free_oldest() {
  assert(!allocs_.empty());
  const Alloc a = allocs_.front();
  allocs_.pop_front();
  used_ -= a.bytes + a.padding;
  head_ = (a.offset + a.bytes) % capacity_;
  space_.open();
}

}  // namespace snacc::core
