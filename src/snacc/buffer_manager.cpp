#include "snacc/buffer_manager.hpp"

namespace snacc::core {

bool BufferRing::fits(std::uint64_t rounded, std::uint64_t* pad) const {
  *pad = 0;
  const std::uint64_t free_bytes = capacity_ - used_;
  const std::uint64_t to_end = capacity_ - tail_;
  if (rounded <= to_end) return rounded <= free_bytes;
  // Must skip the ring tail remainder: charge it as padding.
  *pad = to_end;
  return rounded + to_end <= free_bytes;
}

sim::Task BufferRing::alloc(std::uint64_t bytes, std::uint64_t* offset_out) {
  assert(bytes > 0);
  const std::uint64_t rounded = (bytes + kPageSize - 1) & ~(kPageSize - 1);
  assert(rounded <= capacity_);
  std::uint64_t pad = 0;
  while (!fits(rounded, &pad)) {
    space_.close();
    co_await space_.opened();
  }
  std::uint64_t offset = tail_;
  if (pad != 0) offset = 0;  // wrapped
  allocs_.push_back(Alloc{offset, rounded, pad});
  used_ += rounded + pad;
  tail_ = (offset + rounded) % capacity_;
  *offset_out = offset;
}

void BufferRing::free_oldest() {
  assert(!allocs_.empty());
  const Alloc a = allocs_.front();
  allocs_.pop_front();
  used_ -= a.bytes + a.padding;
  head_ = (a.offset + a.bytes) % capacity_;
  space_.open();
}

}  // namespace snacc::core
