#include "snacc/reorder_buffer.hpp"

namespace snacc::core {

sim::Task ReorderBuffer::alloc(RobEntry entry, SlotIdx* slot_out) {
  while (count_ == entries_.size()) {
    slot_free_.close();
    co_await slot_free_.opened();
  }
  const std::uint16_t slot = tail_;
  entry.completed = false;
  entry.fetch_started = false;
  entry.fetched = false;
  entries_[slot] = std::move(entry);
  tail_ = static_cast<std::uint16_t>((tail_ + 1) % entries_.size());
  ++count_;
  refresh_head_gate();
  *slot_out = SlotIdx{slot};
}

bool ReorderBuffer::complete(SlotIdx slot, nvme::Status status) {
  // snacc-lint: allow(value-escape): SlotIdx's raw index is the ROB subscript
  assert(slot.value() < entries_.size());
  // A completion for a slot that is not in the current window, or that is
  // already completed, is stale: the watchdog declared the original command
  // lost and a retry (or retirement) has since moved on. Absorb it.
  const std::uint16_t offset = static_cast<std::uint16_t>(
      // snacc-lint: allow(value-escape): SlotIdx's raw index is the ROB subscript
      (slot.value() + entries_.size() - head_) % entries_.size());
  // snacc-lint: allow(value-escape): SlotIdx's raw index is the ROB subscript
  RobEntry& e = entries_[slot.value()];
  if (count_ == 0 || offset >= count_ || e.completed) {
    ++stale_completions_;
    return false;
  }
  e.completed = true;
  e.status = status;
  refresh_head_gate();
  return true;
}

RobEntry ReorderBuffer::retire() {
  assert(head_ready());
  RobEntry e = entries_[head_];
  head_ = static_cast<std::uint16_t>((head_ + 1) % entries_.size());
  --count_;
  slot_free_.open();
  refresh_head_gate();
  return e;
}

void ReorderBuffer::refresh_head_gate() {
  if (head_ready()) {
    head_complete_.open();
  } else {
    head_complete_.close();
  }
}

}  // namespace snacc::core
