// Completion reorder buffer (Sec. 4.2): "the completion queue is implemented
// as a reorder buffer containing the necessary information to finalize
// processing for each command, along with one bit indicating its completion
// status. While the completion bits may be set out-of-order, the NVMe
// Streamer processes them in-order."
//
// A slot is allocated at submission (its index doubles as the NVMe CID),
// marked complete when the controller's CQE lands in the CQ window, and
// released when the retirement engine has processed it -- strictly head
// first. Slot allocation backpressures at the configured window size, which
// is exactly the paper's "up to 64 in-flight commands, new commands only
// after the first previous command is completed" behaviour.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "nvme/spec.hpp"
#include "sim/future.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "snacc/splitter.hpp"

namespace snacc::core {

struct RobEntry {
  bool is_write = false;
  SubCommand sub;              // device-side shape of this command
  Bytes buffer_offset;         // where its data lives in the buffer ring
  std::uint64_t user_tag = 0;  // ties sub-commands back to the user command
  bool completed = false;
  bool fetch_started = false;  // read-out prefetch issued
  bool fetched = false;        // read-out prefetch done (read commands)
  Payload data;                // prefetched read data awaiting stream-out
  nvme::Status status = nvme::Status::kSuccess;
  std::uint8_t retries = 0;    // resubmissions of this slot (recovery path)
  TimePs submitted_at;         // last SQE submission time; 0 = not yet sent

  // User-provided special members: entries travel through coroutine
  // parameters; see the g++ 12 aggregate-move note in sim/channel.hpp.
  RobEntry() = default;
  RobEntry(RobEntry&& o) noexcept = default;
  RobEntry& operator=(RobEntry&& o) noexcept = default;
  RobEntry(const RobEntry&) = default;
  RobEntry& operator=(const RobEntry&) = default;
};

class ReorderBuffer {
 public:
  ReorderBuffer(sim::Simulator& sim, std::uint16_t slots)
      : sim_(&sim),
        entries_(slots),
        slot_free_(sim, /*open=*/true),
        head_complete_(sim, /*open=*/false) {}

  std::uint16_t capacity() const {
    return static_cast<std::uint16_t>(entries_.size());
  }
  std::uint16_t in_flight() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Claims the next slot in order; suspends while the window is full.
  /// Returns the slot index (its CID is `cid_of(slot)`).
  sim::Task alloc(RobEntry entry, SlotIdx* slot_out);

  /// Marks `slot` complete (called when the controller's CQE arrives).
  /// Returns false for a *stale* completion -- a slot not in flight or
  /// already completed, which only happens when the recovery path timed the
  /// original command out and resubmitted it; stale CQEs are absorbed here
  /// instead of corrupting the retried command's state.
  bool complete(SlotIdx slot, nvme::Status status);

  /// True when the head (oldest) entry exists and is complete.
  bool head_ready() const {
    return count_ > 0 && entries_[head_].completed;
  }

  /// Suspends until the head entry is complete.
  auto wait_head() { return head_complete_.opened(); }

  RobEntry& head() {
    assert(count_ > 0);
    return entries_[head_];
  }

  /// Slot index of the head entry (a retry must reuse `cid_of` it).
  SlotIdx head_slot() const {
    assert(count_ > 0);
    return SlotIdx{head_};
  }

  /// Direct slot access (the streamer stamps submission times).
  // snacc-lint: allow(value-escape): SlotIdx's raw index is the ROB subscript
  RobEntry& at(SlotIdx slot) { return entries_.at(slot.value()); }

  /// Marks the head entry completed with `status` without a CQE -- the
  /// watchdog path for a lost completion.
  void fail_head(nvme::Status status) {
    assert(count_ > 0 && !entries_[head_].completed);
    entries_[head_].completed = true;
    entries_[head_].status = status;
    refresh_head_gate();
  }

  /// Re-opens the head entry for a retry: clears completion and fetch state
  /// so the resubmitted command's CQE completes it afresh.
  void reopen_head() {
    assert(head_ready());
    RobEntry& e = entries_[head_];
    e.completed = false;
    e.status = nvme::Status::kSuccess;
    e.fetch_started = false;
    e.fetched = false;
    e.data = Payload{};
    refresh_head_gate();
  }

  std::uint64_t stale_completions() const { return stale_completions_; }

  /// Entry `n` positions after the head (for the read-out prefetcher);
  /// nullptr when fewer than n+1 entries are in flight.
  RobEntry* peek(std::uint16_t n) {
    if (n >= count_) return nullptr;
    return &entries_[(head_ + n) % entries_.size()];
  }

  /// Retires the head entry, freeing its slot.
  RobEntry retire();

 private:
  void refresh_head_gate();

  sim::Simulator* sim_;
  std::vector<RobEntry> entries_;
  std::uint16_t head_ = 0;
  std::uint16_t tail_ = 0;
  std::uint16_t count_ = 0;
  sim::Gate slot_free_;
  sim::Gate head_complete_;
  std::uint64_t stale_completions_ = 0;
};

}  // namespace snacc::core
