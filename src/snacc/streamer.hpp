// The SNAcc NVMe Streamer (Sec. 4.2) -- the paper's core contribution.
//
// User-PE interface (Sec. 4.1): four AXI4-Stream ports.
//   read_cmd_in  : one 16-byte beat per read command (device address, length)
//   read_data_out: the read payload, TLAST on the user command's final beat
//   write_in     : an 8-byte address beat, then data beats, TLAST terminates
//   write_resp_out: one token per completed user write command
//
// Pipeline: commands are split at 1 MB boundaries, buffer space is allocated
// from a 4 kB-aligned ring, SQEs are placed in the FPGA-resident submission
// FIFO (the NVMe controller fetches them over PCIe P2P), PRP list reads are
// answered on the fly by the PRP engine, completions land in the reorder
// buffer out of order, and the retirement engine processes them strictly in
// order -- streaming read data back to the PE and freeing buffer space.
//
// The Sec. 7 out-of-order extension is available via
// StreamerConfig::out_of_order: issue credits are returned at completion
// instead of retirement and the retirement engine is pipelined.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "axis/stream.hpp"
#include "common/calibration.hpp"
#include "nvme/queues.hpp"
#include "nvme/spec.hpp"
#include "pcie/fabric.hpp"
#include "snacc/buffer_backend.hpp"
#include "snacc/buffer_manager.hpp"
#include "snacc/prp_engine.hpp"
#include "snacc/reorder_buffer.hpp"
#include "snacc/splitter.hpp"

namespace snacc::core {

/// Buffer placement. kHbm is the Sec. 7 "HBM" extension: multi-bank
/// on-card memory that removes the single-DRAM-controller bottleneck.
enum class Variant { kUram, kOnboardDram, kHostDram, kHbm };

const char* variant_name(Variant v);

struct StreamerConfig {
  Variant variant = Variant::kUram;
  std::uint16_t queue_depth = 64;
  std::uint16_t nvme_qid = 1;
  bool out_of_order = false;           // Sec. 7 extension
  TimePs ooo_retire_gap = ns(500);     // pipelined retirement engine

  // --- Error recovery (docs/FAULTS.md) -------------------------------------
  // Off by default and zero-cost when off: no watchdog process is spawned
  // and the retirement engine's recovery branch is never taken, so runs
  // without fault injection are bit-identical to a recovery-less build.
  bool recovery = false;
  /// Resubmissions of a failed sub-command before its ROB slot is
  /// quarantined (error reported to the PE, window keeps moving).
  std::uint8_t max_retries = 3;
  /// Backoff before the first retry; doubles per attempt.
  TimePs retry_backoff = us(5);
  /// Watchdog deadline for the head (oldest) command, measured from its SQE
  /// submission; expiry synthesizes Status::kWatchdogTimeout. Must exceed
  /// the worst-case legitimate head-completion latency (ms-scale covers a
  /// full 64 x 1 MB window with margin). 0 disables the watchdog even with
  /// recovery on.
  TimePs cmd_timeout = ms(5);
  /// Watchdog scan period.
  TimePs watchdog_period = us(250);
};

/// TUSER tag carried on every read_data_out beat of a quarantined (failed)
/// read sub-command; the payload beats are phantom filler so stream framing
/// (and TLAST) stays intact for the PE.
inline constexpr std::uint64_t kReadErrorUser = 1;

/// Set on a write_resp_out token's user word when any sub-command of the
/// user write was quarantined (data loss).
inline constexpr std::uint64_t kWriteRespErrorBit = 1ull << 63;

/// Flag bit on a write_in address beat marking a *flush barrier* instead of
/// a write: the beat carries TLAST (no data beats follow) and the streamer
/// issues an NVMe Flush on the device, acknowledged through write_resp_out
/// like any write. Device byte addresses never reach bit 63.
inline constexpr std::uint64_t kFlushAddrBit = 1ull << 63;

/// Stream-protocol helpers for the user PE side. Addresses and lengths are
/// device byte offsets / counts, so they travel as `Bytes`.
Payload encode_read_command(Bytes addr, Bytes len);
bool decode_read_command(const Payload& p, Bytes* addr, Bytes* len);
Payload encode_write_address(Bytes addr);
Bytes decode_write_address(const Payload& p);
/// The flush-barrier address beat (kFlushAddrBit set, sent with TLAST).
Payload encode_flush_command();

class NvmeStreamer {
 public:
  /// Buffer/PRP plumbing assembled per variant by host::SnaccDevice.
  struct Resources {
    BufferBackend* read_backend = nullptr;
    BufferBackend* write_backend = nullptr;
    BufferRing* read_ring = nullptr;
    BufferRing* write_ring = nullptr;  // == read_ring for the shared URAM ring
    Bytes read_region_base;   // logical offset of the read region
    Bytes write_region_base;  // logical offset of the write region
    UramPrpEngine* uram_prp = nullptr;       // exactly one engine is set
    RegfilePrpEngine* regfile_prp = nullptr;
  };

  NvmeStreamer(sim::Simulator& sim, pcie::Fabric& fabric, pcie::PortId fpga_port,
               const FpgaProfile& fpga, pcie::Addr ssd_bar, StreamerConfig cfg,
               Resources res);

  /// Spawns the command, retirement and prefetch processes.
  void start();

  // User-PE streams.
  axis::Stream& read_cmd_in() { return read_cmd_in_; }
  axis::Stream& read_data_out() { return read_data_out_; }
  axis::Stream& write_in() { return write_in_; }
  axis::Stream& write_resp_out() { return write_resp_out_; }

  // FPGA BAR hooks (wired up by the device's Target adapters).
  Payload serve_sq_read(Bytes local, Bytes len) const;
  void on_cqe_write(Bytes local, const Payload& data);
  Payload serve_prp_read(Bytes local, Bytes len) const;

  const StreamerConfig& config() const { return cfg_; }
  std::uint16_t sq_entries() const { return sq_entries_; }
  Bytes sq_window_bytes() const {
    return Bytes{static_cast<std::uint64_t>(sq_entries_) * nvme::kSqeSize};
  }
  Bytes cq_window_bytes() const {
    return Bytes{static_cast<std::uint64_t>(sq_entries_) * nvme::kCqeSize};
  }

  // Statistics.
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t commands_submitted() const { return commands_submitted_; }
  std::uint64_t commands_retired() const { return commands_retired_; }
  std::uint64_t errors() const { return errors_; }

  // Recovery statistics (all zero unless cfg.recovery and faults fired).
  std::uint64_t retries() const { return retries_; }
  std::uint64_t recovered() const { return recovered_; }
  std::uint64_t quarantined() const { return quarantined_; }
  std::uint64_t watchdog_timeouts() const { return watchdog_timeouts_; }
  std::uint64_t stale_completions() const { return rob_.stale_completions(); }

 private:
  /// A write sub-command whose buffer fill is in flight; the committer
  /// submits strictly in this order once the fill completes, so a doorbell
  /// never exposes an SQE whose payload is not yet buffered.
  struct PendingSubmit {
    SubCommand sub;
    SlotIdx slot;
    Bytes absolute_offset;
    sim::Future<sim::Done> fill_done;

    PendingSubmit() = default;
    PendingSubmit(SubCommand s, SlotIdx sl, Bytes off,
                  sim::Future<sim::Done> f)
        : sub(s), slot(sl), absolute_offset(off), fill_done(std::move(f)) {}
    PendingSubmit(PendingSubmit&&) noexcept = default;
    PendingSubmit& operator=(PendingSubmit&&) noexcept = default;
  };

  sim::Task read_cmd_loop();
  sim::Task write_cmd_loop();
  sim::Task submit_committer();
  sim::Task run_fill(BufferBackend* backend, Bytes off, Payload data,
                     sim::Promise<sim::Done> done);
  sim::Task retire_loop();
  sim::Task prefetch_loop();
  sim::Task fetch_entry(RobEntry* entry);
  /// Recovery only: periodically checks the head (oldest in-flight) command
  /// against cmd_timeout and synthesizes a kWatchdogTimeout completion for a
  /// lost one so the retirement engine can retry or quarantine it.
  sim::Task watchdog_loop();

  /// Places the SQE in the FIFO, rings the SSD's SQ tail doorbell.
  sim::Task submit(const SubCommand& sub, bool is_write, SlotIdx slot,
                   Bytes absolute_buffer_offset);
  PrpPair make_prps(SlotIdx slot, Bytes absolute_offset, Bytes len);
  sim::Task ring_cq_doorbell();
  TimePs clock_cycles(std::uint32_t n) const { return fpga_.clock_period * n; }

  sim::Simulator& sim_;
  pcie::Fabric& fabric_;
  pcie::PortId fpga_port_;
  FpgaProfile fpga_;
  pcie::Addr ssd_bar_;
  StreamerConfig cfg_;
  Resources res_;

  axis::Stream read_cmd_in_;
  axis::Stream read_data_out_;
  axis::Stream write_in_;
  axis::Stream write_resp_out_;

  std::uint16_t sq_entries_;  // queue_depth + 1
  std::vector<std::array<std::byte, nvme::kSqeSize>> sq_slots_;
  std::uint16_t sq_tail_ = 0;
  std::uint16_t cq_head_ = 0;

  ReorderBuffer rob_;
  std::unique_ptr<sim::Channel<PendingSubmit>> submit_queue_;
  std::unique_ptr<sim::Semaphore> issue_credits_;
  std::unique_ptr<sim::Semaphore> alloc_mutex_;  // keeps ring/ROB orders equal
  std::unique_ptr<sim::Gate> prefetch_kick_;
  sim::Gate fetch_progress_;
  std::uint64_t next_user_tag_ = 1;

  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t commands_submitted_ = 0;
  std::uint64_t commands_retired_ = 0;
  std::uint64_t errors_ = 0;

  // Recovery state. A mid-command sub failure must surface on the *last*
  // sub's response token, so quarantined write tags are remembered until
  // their user command's final sub retires.
  std::unordered_set<std::uint64_t> failed_write_tags_;
  std::uint64_t retries_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t watchdog_timeouts_ = 0;
};

}  // namespace snacc::core
