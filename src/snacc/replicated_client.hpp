// ReplicatedClient: N-way mirroring over independent StorageClients, one per
// SSD on the multi-device fabric (docs/DURABILITY.md).
//
// Writes fan out to every live replica concurrently (spawned in replica index
// order, so fault-free runs are bit-identical) and acknowledge once the
// results are in: success requires `quorum` replica acks. A replica whose
// write keeps failing after bounded-backoff resubmission is quarantined --
// dropped from every later fan-out -- mirroring the streamer's own slot
// quarantine one level up. Reads take the first live replica and fail over
// down the index order; a read served by a later replica after an earlier
// one returned quarantined data triggers read-repair (the good bytes are
// rewritten to the lagging replica) when the range is block-aligned.
#pragma once

#include <cstdint>
#include <vector>

#include "common/calibration.hpp"
#include "sim/future.hpp"
#include "sim/simulator.hpp"
#include "snacc/storage_client.hpp"

namespace snacc::core {

class ReplicatedClient final : public StorageClient {
 public:
  struct Config {
    /// Replica acks required to acknowledge a write/flush. 0 = majority
    /// (n/2 + 1), the usual replicated-log setting.
    std::size_t quorum = 0;
    /// Resubmissions per replica per operation before it is quarantined.
    std::uint8_t max_retries = 3;
    /// Backoff before the first resubmission; doubles per attempt.
    TimePs retry_backoff = us(50);
  };

  ReplicatedClient(sim::Simulator& sim, std::vector<StorageClient*> replicas,
                   Config cfg);
  ReplicatedClient(sim::Simulator& sim, std::vector<StorageClient*> replicas)
      : ReplicatedClient(sim, std::move(replicas), Config()) {}

  sim::Task read(Bytes addr, Bytes len, Payload* out,
                 bool* error = nullptr) override;
  sim::Task write(Bytes addr, Payload data, bool* error) override;
  sim::Task flush(bool* error = nullptr) override;

  std::size_t replica_count() const { return replicas_.size(); }
  std::size_t quorum() const { return quorum_; }
  bool replica_quarantined(std::size_t i) const { return quarantined_[i]; }
  std::size_t live_replicas() const;

  // Statistics (all zero on a fault-free run except writes/flushes).
  std::uint64_t writes() const { return writes_; }
  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t resubmissions() const { return resubmissions_; }
  std::uint64_t replicas_lost() const { return replicas_lost_; }
  std::uint64_t quorum_failures() const { return quorum_failures_; }
  std::uint64_t read_failovers() const { return read_failovers_; }
  std::uint64_t read_repairs() const { return read_repairs_; }

 private:
  /// One replica's slice of a fan-out: retry with bounded backoff, then
  /// quarantine. Bumps `*acked` on success; always signals `wg`.
  sim::Task replica_write(std::size_t i, Bytes addr, Payload data,
                          sim::WaitGroup& wg, std::size_t* acked);
  sim::Task replica_flush(std::size_t i, sim::WaitGroup& wg,
                          std::size_t* acked);

  sim::Simulator& sim_;
  std::vector<StorageClient*> replicas_;
  Config cfg_;
  std::size_t quorum_;
  std::vector<bool> quarantined_;

  std::uint64_t writes_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t resubmissions_ = 0;
  std::uint64_t replicas_lost_ = 0;
  std::uint64_t quorum_failures_ = 0;
  std::uint64_t read_failovers_ = 0;
  std::uint64_t read_repairs_ = 0;
};

}  // namespace snacc::core
