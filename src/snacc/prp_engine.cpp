#include "snacc/prp_engine.hpp"

#include <cassert>
#include <cstring>

namespace snacc::core {

namespace {

/// Synthesizes `len` bytes of PRP-list contents where the entry at 8-byte
/// index n has value `entry_of(n)`.
template <class EntryFn>
Payload synthesize(std::uint64_t first_index, std::uint64_t len, EntryFn entry_of) {
  const std::uint64_t count = (len + 7) / 8;
  std::vector<std::byte> raw(count * 8);
  for (std::uint64_t n = 0; n < count; ++n) {
    const std::uint64_t v = entry_of(first_index + n);
    std::memcpy(raw.data() + n * 8, &v, 8);
  }
  raw.resize(len);
  return Payload::bytes(std::move(raw));
}

}  // namespace

// ---------------------------------------------------------------------------
// UramPrpEngine

UramPrpEngine::UramPrpEngine(pcie::Addr window_base, Bytes buffer_bytes)
    : window_base_(window_base),
      buffer_bytes_(buffer_bytes),
      select_bit_(buffer_bytes.value()) {
  assert((select_bit_ & (select_bit_ - 1)) == 0 && "buffer must be 2^k");
  assert(window_base.value() % (2 * select_bit_) == 0 &&
         "window must be naturally aligned so the select bit is clean");
}

PrpPair UramPrpEngine::make(Bytes buffer_offset, Bytes len) const {
  assert(buffer_offset.value() % kPageSize == 0);
  assert(buffer_offset + len <= buffer_bytes_);
  PrpPair p;
  p.prp1 = window_base_ + buffer_offset;
  const std::uint64_t pages = (len.value() + kPageSize - 1) / kPageSize;
  if (pages <= 1) return p;
  const Bytes second = buffer_offset + Bytes{kPageSize};
  if (pages == 2) {
    p.prp2 = window_base_ + second;
  } else {
    // Bit `select_bit_` redirects the controller's list read to the upper
    // half of the window, where this engine synthesizes entries.
    p.prp2 = window_base_ + Bytes{second.value() | select_bit_};
  }
  return p;
}

Payload UramPrpEngine::serve(Bytes local, Bytes len) const {
  assert(is_prp_read(local));
  const std::uint64_t byte_off = local.value() & (select_bit_ - 1);
  const std::uint64_t second_page = byte_off & ~(kPageSize - 1);
  const std::uint64_t first_index = (byte_off & (kPageSize - 1)) / 8;
  return synthesize(first_index, len.value(), [&](std::uint64_t n) {
    // n-th list entry = (n+2)-th buffer page = second_page + n*4096,
    // expressed as a global PCIe address into the data (lower) half.
    return (window_base_ + Bytes{second_page + n * kPageSize}).value();
  });
}

// ---------------------------------------------------------------------------
// RegfilePrpEngine

RegfilePrpEngine::RegfilePrpEngine(pcie::Addr prp_window_base,
                                   const AddressTranslator& xlat,
                                   std::uint16_t slots)
    : prp_window_base_(prp_window_base), xlat_(xlat), regfile_(slots) {}

PrpPair RegfilePrpEngine::make(SlotIdx slot, Bytes buffer_offset, Bytes len) {
  assert(slot.value() < regfile_.size());
  assert(buffer_offset.value() % kPageSize == 0);
  PrpPair p;
  p.prp1 = xlat_.translate(buffer_offset);
  const std::uint64_t pages = (len.value() + kPageSize - 1) / kPageSize;
  if (pages <= 1) return p;
  const Bytes second = buffer_offset + Bytes{kPageSize};
  if (pages == 2) {
    p.prp2 = xlat_.translate(second);
  } else {
    regfile_[slot.value()] = second;  // logical offset; translated per entry
    p.prp2 = prp_window_base_ +
             Bytes{static_cast<std::uint64_t>(slot.value()) * kPageSize};
  }
  return p;
}

Payload RegfilePrpEngine::serve(Bytes local, Bytes len) const {
  const std::uint64_t slot = local.value() / kPageSize;
  assert(slot < regfile_.size());
  const Bytes second = regfile_[slot];
  const std::uint64_t first_index = (local.value() & (kPageSize - 1)) / 8;
  return synthesize(first_index, len.value(), [&](std::uint64_t n) {
    // Each page is translated individually: host-DRAM buffers may cross
    // 4 MB chunk boundaries mid-command. The controller reads whole list
    // pages, so entries past the command's buffer are synthesized but never
    // used; clamp them instead of translating past the chunk table.
    const Bytes logical = second + Bytes{n * kPageSize};
    if (logical >= xlat_.capacity()) return std::uint64_t{0};
    return xlat_.translate(logical).value();
  });
}

}  // namespace snacc::core
