// PeClient: convenience wrapper a user Processing Element (or a test/bench)
// uses to drive the streamer's four AXI4-Stream ports (Sec. 4.1).
//
// Reads: send a 16-byte command beat, then collect data chunks until TLAST.
// Writes: send the address beat, the data beats (TLAST on the final one),
// then wait for the response token. Commands may be pipelined with
// `start_read`/`collect_read` style usage by issuing from separate tasks; the
// streamer retires strictly in issue order, so responses never interleave.
#pragma once

#include <cstdint>

#include "axis/stream.hpp"
#include "snacc/storage_client.hpp"
#include "snacc/streamer.hpp"

namespace snacc::core {

class PeClient : public StorageClient {
 public:
  explicit PeClient(NvmeStreamer& streamer) : s_(streamer) {}

  NvmeStreamer& streamer() { return s_; }

  /// Reads [addr, addr+len) device bytes into `*out` (nullptr: discard).
  /// With recovery enabled, `*error` (if non-null) reports whether any beat
  /// carried the quarantine TUSER tag -- the data is then placeholder bytes.
  sim::Task read(Bytes addr, Bytes len, Payload* out,
                 bool* error = nullptr) override {
    co_await s_.read_cmd_in().send(
        axis::Chunk{encode_read_command(addr, len), true, 0});
    co_await collect_read(out, error);
  }

  /// Issues a read command without waiting for data.
  sim::Task start_read(Bytes addr, Bytes len) {
    co_await s_.read_cmd_in().send(
        axis::Chunk{encode_read_command(addr, len), true, 0});
  }

  /// Collects one read response (until TLAST).
  sim::Task collect_read(Payload* out, bool* error = nullptr) {
    std::vector<Payload> parts;
    bool saw_error = false;
    while (true) {
      auto chunk = co_await s_.read_data_out().recv();
      if (!chunk) break;  // stream closed
      saw_error = saw_error || (chunk->user & kReadErrorUser) != 0;
      parts.push_back(std::move(chunk->data));
      if (chunk->last) break;
    }
    if (out != nullptr) *out = Payload::gather(parts);
    if (error != nullptr) *error = saw_error;
  }

  /// Writes `data` to device byte address `addr` (must be block-aligned)
  /// and waits for the response token. `*error` (if non-null) reports the
  /// response token's data-loss bit (recovery quarantine).
  sim::Task write(Bytes addr, Payload data, Bytes chunk_bytes = Bytes{16 * KiB},
                  bool* error = nullptr) {
    co_await start_write(addr, std::move(data), chunk_bytes);
    co_await wait_write_response(error);
  }

  /// StorageClient surface (default 16 kB stream chunking).
  sim::Task write(Bytes addr, Payload data, bool* error) override {
    co_await write(addr, std::move(data), Bytes{16 * KiB}, error);
  }

  /// Durability barrier: an NVMe Flush through the streamer's write path.
  /// Ordered behind every earlier write submission; the device destages its
  /// volatile cache for all *completed* commands, so callers needing a hard
  /// guarantee wait for their write responses first (KvStore::commit does).
  sim::Task flush(bool* error = nullptr) override {
    co_await s_.write_in().send(axis::Chunk{encode_flush_command(), true, 0});
    co_await wait_write_response(error);
  }

  /// Streams the write without waiting for the token.
  sim::Task start_write(Bytes addr, Payload data,
                        Bytes chunk_bytes = Bytes{16 * KiB}) {
    co_await s_.write_in().send(
        axis::Chunk{encode_write_address(addr), false, 0});
    co_await axis::send_chunked(s_.write_in(), std::move(data), chunk_bytes,
                                /*final_last=*/true);
  }

  sim::Task wait_write_response(bool* error = nullptr) {
    auto token = co_await s_.write_resp_out().recv();
    if (error != nullptr) {
      *error = token && (token->user & kWriteRespErrorBit) != 0;
    }
  }

 private:
  NvmeStreamer& s_;
};

}  // namespace snacc::core
