#include "snacc/streamer.hpp"

#include <cassert>
#include <cstring>

namespace snacc::core {

namespace {

/// Chunk size for streaming read data back to the PE.
constexpr Bytes kStreamChunk{16 * KiB};

std::uint64_t read_u64(const Payload& p, std::size_t off) {
  std::uint64_t v = 0;
  if (p.has_data() && p.size() >= off + 8) {
    std::memcpy(&v, p.view().data() + off, 8);
  }
  return v;
}

Payload u32_payload(std::uint32_t v) {
  std::vector<std::byte> raw(4);
  std::memcpy(raw.data(), &v, 4);
  return Payload::bytes(std::move(raw));
}

}  // namespace

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kUram:
      return "URAM";
    case Variant::kOnboardDram:
      return "On-board DRAM";
    case Variant::kHostDram:
      return "Host DRAM";
    case Variant::kHbm:
      return "HBM";
  }
  return "?";
}

Payload encode_read_command(Bytes addr, Bytes len) {
  std::vector<std::byte> raw(16);
  // snacc-lint: allow(value-escape): command wire encoding (memcpy image)
  const std::uint64_t a = addr.value();
  // snacc-lint: allow(value-escape): command wire encoding (memcpy image)
  const std::uint64_t l = len.value();
  std::memcpy(raw.data(), &a, 8);
  std::memcpy(raw.data() + 8, &l, 8);
  return Payload::bytes(std::move(raw));
}

bool decode_read_command(const Payload& p, Bytes* addr, Bytes* len) {
  if (!p.has_data() || p.size() < 16) return false;
  *addr = Bytes{read_u64(p, 0)};
  *len = Bytes{read_u64(p, 8)};
  return true;
}

Payload encode_write_address(Bytes addr) {
  std::vector<std::byte> raw(8);
  // snacc-lint: allow(value-escape): command wire encoding (memcpy image)
  const std::uint64_t a = addr.value();
  std::memcpy(raw.data(), &a, 8);
  return Payload::bytes(std::move(raw));
}

Bytes decode_write_address(const Payload& p) { return Bytes{read_u64(p, 0)}; }

Payload encode_flush_command() {
  std::vector<std::byte> raw(8);
  constexpr std::uint64_t a = kFlushAddrBit;
  std::memcpy(raw.data(), &a, 8);
  return Payload::bytes(std::move(raw));
}

// ---------------------------------------------------------------------------

NvmeStreamer::NvmeStreamer(sim::Simulator& sim, pcie::Fabric& fabric,
                           pcie::PortId fpga_port, const FpgaProfile& fpga,
                           pcie::Addr ssd_bar, StreamerConfig cfg, Resources res)
    : sim_(sim),
      fabric_(fabric),
      fpga_port_(fpga_port),
      fpga_(fpga),
      ssd_bar_(ssd_bar),
      cfg_(cfg),
      res_(res),
      read_cmd_in_(sim, {fpga.stream_bytes_per_beat, fpga.clock_period, 16}),
      read_data_out_(sim, {fpga.stream_bytes_per_beat, fpga.clock_period, 16}),
      write_in_(sim, {fpga.stream_bytes_per_beat, fpga.clock_period, 16}),
      write_resp_out_(sim, {fpga.stream_bytes_per_beat, fpga.clock_period, 16}),
      sq_entries_(static_cast<std::uint16_t>(cfg.queue_depth + 1)),
      sq_slots_(sq_entries_),
      rob_(sim, cfg.out_of_order
                    ? static_cast<std::uint16_t>(cfg.queue_depth * 4)
                    : cfg.queue_depth),
      fetch_progress_(sim, false) {
  submit_queue_ = std::make_unique<sim::Channel<PendingSubmit>>(
      sim_, cfg.queue_depth);
  issue_credits_ = std::make_unique<sim::Semaphore>(sim_, cfg.queue_depth);
  alloc_mutex_ = std::make_unique<sim::Semaphore>(sim_, 1);
  prefetch_kick_ = std::make_unique<sim::Gate>(sim_, false);
  assert((res_.uram_prp != nullptr) != (res_.regfile_prp != nullptr) &&
         "exactly one PRP engine must be provided");
}

void NvmeStreamer::start() {
  sim_.spawn(read_cmd_loop());
  sim_.spawn(write_cmd_loop());
  sim_.spawn(submit_committer());
  sim_.spawn(retire_loop());
  sim_.spawn(prefetch_loop());
  // The watchdog is a periodic process; spawning it unconditionally would
  // keep the event queue non-empty forever (breaking sim.run()-to-quiescence
  // callers) and perturb event ordering of fault-free runs. Recovery only.
  if (cfg_.recovery && !cfg_.cmd_timeout.is_zero()) {
    sim_.spawn(watchdog_loop());
  }
}

// ---------------------------------------------------------------------------
// FPGA BAR hooks

Payload NvmeStreamer::serve_sq_read(Bytes local, Bytes len) const {
  // snacc-lint: allow(value-escape): BAR window serves raw SQE image bytes
  std::vector<std::byte> raw(len.value(), std::byte{0});
  // snacc-lint: allow(value-escape): BAR window serves raw SQE image bytes
  for (std::uint64_t i = 0; i < len.value(); ++i) {
    // snacc-lint: allow(value-escape): BAR window serves raw SQE image bytes
    const std::uint64_t a = local.value() + i;
    const std::uint64_t slot = a / nvme::kSqeSize;
    if (slot >= sq_slots_.size()) break;
    raw[i] = sq_slots_[slot][a % nvme::kSqeSize];
  }
  return Payload::bytes(std::move(raw));
}

void NvmeStreamer::on_cqe_write(Bytes local, const Payload& data) {
  assert(data.has_data() && data.size() >= nvme::kCqeSize);
  const auto cqe = nvme::CompletionEntry::decode(data.view());
  cq_head_ = static_cast<std::uint16_t>(
      // snacc-lint: allow(value-escape): CQE slot index from raw BAR offset
      (local.value() / nvme::kCqeSize + 1) % sq_entries_);
  if (cqe.status != nvme::Status::kSuccess) ++errors_;
  // A stale CQE (for a command the watchdog already declared lost and the
  // retirement engine resubmitted) is absorbed by the ROB and must not
  // release an issue credit it never held.
  const bool accepted = rob_.complete(slot_of(cqe.cid), cqe.status);
  if (cfg_.out_of_order && accepted) issue_credits_->release();
  prefetch_kick_->open();
}

Payload NvmeStreamer::serve_prp_read(Bytes local, Bytes len) const {
  if (res_.uram_prp != nullptr) return res_.uram_prp->serve(local, len);
  return res_.regfile_prp->serve(local, len);
}

PrpPair NvmeStreamer::make_prps(SlotIdx slot, Bytes absolute_offset,
                                Bytes len) {
  if (res_.uram_prp != nullptr) return res_.uram_prp->make(absolute_offset, len);
  return res_.regfile_prp->make(slot, absolute_offset, len);
}

// ---------------------------------------------------------------------------
// Submission

sim::Task NvmeStreamer::submit(const SubCommand& sub, bool is_write,
                               SlotIdx slot, Bytes absolute_buffer_offset) {
  nvme::SubmissionEntry sqe;
  sqe.cid = cid_of(slot);
  if (sub.flush) {
    // Flush barrier: no payload, no PRPs -- just the opcode and CID.
    sqe.opcode = static_cast<std::uint8_t>(nvme::IoOpcode::kFlush);
  } else {
    const PrpPair prps =
        make_prps(slot, absolute_buffer_offset, sub.buffer_bytes());
    sqe.opcode = static_cast<std::uint8_t>(is_write ? nvme::IoOpcode::kWrite
                                                    : nvme::IoOpcode::kRead);
    sqe.slba = sub.slba;
    sqe.nlb = static_cast<std::uint16_t>(sub.blocks - 1);
    sqe.prp1 = prps.prp1;
    sqe.prp2 = prps.prp2;
  }
  sq_slots_[sq_tail_] = sqe.encode();
  sq_tail_ = static_cast<std::uint16_t>((sq_tail_ + 1) % sq_entries_);
  ++commands_submitted_;
  rob_.at(slot).submitted_at = sim_.now();
  sim_.trace(sim::TraceCat::kStreamerCmd,
             is_write ? "submit-write" : "submit-read", slot, sub.slba);
  // Posted doorbell: the SQE is already visible in the FIFO window.
  (void)fabric_.write(fpga_port_,
                      ssd_bar_ + nvme::reg::sq_tail_doorbell(cfg_.nvme_qid),
                      u32_payload(sq_tail_));
  co_return;
}

sim::Task NvmeStreamer::ring_cq_doorbell() {
  (void)fabric_.write(fpga_port_,
                      ssd_bar_ + nvme::reg::cq_head_doorbell(cfg_.nvme_qid),
                      u32_payload(cq_head_));
  co_return;
}

// ---------------------------------------------------------------------------
// Read command path

sim::Task NvmeStreamer::read_cmd_loop() {
  while (true) {
    auto chunk = co_await read_cmd_in_.recv();
    if (!chunk) co_return;
    Bytes addr;
    Bytes len;
    if (!decode_read_command(chunk->data, &addr, &len) || len.is_zero()) {
      ++errors_;
      continue;
    }
    const std::uint64_t tag = next_user_tag_++;
    const auto subs = split_read(addr, len, SplitLimits{});
    for (const SubCommand& sub : subs) {
      co_await issue_credits_->acquire();
      co_await alloc_mutex_->acquire();
      Bytes off;
      co_await res_.read_ring->alloc(sub.buffer_bytes(), &off);
      RobEntry entry;
      entry.is_write = false;
      entry.sub = sub;
      entry.buffer_offset = off;
      entry.user_tag = tag;
      SlotIdx slot;
      co_await rob_.alloc(std::move(entry), &slot);
      alloc_mutex_->release();
      co_await sim_.delay(clock_cycles(fpga_.read_submit_cycles));
      co_await submit(sub, /*is_write=*/false, slot,
                      res_.read_region_base + off);
    }
  }
}

// ---------------------------------------------------------------------------
// Write command path

sim::Task NvmeStreamer::write_cmd_loop() {
  std::optional<axis::Chunk> spill;
  while (true) {
    auto first = co_await write_in_.recv();
    if (!first) co_return;
    const Bytes raw_addr = decode_write_address(first->data);
    // snacc-lint: allow(value-escape): wire-level flag bit test on the beat
    if ((raw_addr.value() & kFlushAddrBit) != 0) {
      // Flush barrier (docs/DURABILITY.md): a single TLAST beat, no data.
      // Rides the ordinary write pipeline -- credit, ROB slot, in-order
      // submission behind every earlier write -- but allocates no ring
      // space and carries no PRPs.
      if (!first->last) {
        ++errors_;
        continue;  // malformed: a flush beat must terminate its packet
      }
      SubCommand sub;
      sub.last = true;
      sub.flush = true;
      co_await issue_credits_->acquire();
      co_await alloc_mutex_->acquire();
      RobEntry entry;
      entry.is_write = true;
      entry.sub = sub;
      entry.user_tag = next_user_tag_++;
      SlotIdx slot;
      co_await rob_.alloc(std::move(entry), &slot);
      alloc_mutex_->release();
      co_await sim_.delay(clock_cycles(fpga_.write_submit_cycles));
      sim::Promise<sim::Done> fill_done(sim_);
      auto fill_fut = fill_done.future();
      fill_done.set(sim::Done{});  // nothing to buffer
      co_await submit_queue_->push(
          PendingSubmit(sub, slot, Bytes{}, std::move(fill_fut)));
      continue;
    }
    const Bytes addr = raw_addr;
    if (!aligned(addr, nvme::kLbaSize) || first->last) {
      ++errors_;
      continue;  // malformed packet: misaligned or missing data beats
    }
    const std::uint64_t tag = next_user_tag_++;
    Bytes dev_cursor = addr;
    bool last_seen = false;

    while (!last_seen) {
      const Bytes boundary =
          SplitLimits{}.max_transfer - dev_cursor % SplitLimits{}.max_transfer;
      std::vector<Payload> parts;
      std::uint64_t acc = 0;
      // snacc-lint: allow(value-escape): byte accounting vs raw Payload sizes
      while (acc < boundary.value() && !last_seen) {
        axis::Chunk piece;
        if (spill) {
          piece = std::move(*spill);
          spill.reset();
        } else {
          auto c = co_await write_in_.recv();
          if (!c) co_return;  // stream closed mid-packet
          piece = std::move(*c);
        }
        // snacc-lint: allow(value-escape): byte accounting vs raw Payload sizes
        const std::uint64_t room = boundary.value() - acc;
        if (piece.data.size() > room) {
          // Split the chunk at the 1 MB boundary; remainder spills over.
          axis::Chunk rest;
          rest.data = piece.data.slice(room, piece.data.size() - room);
          rest.last = piece.last;
          spill = std::move(rest);
          parts.push_back(piece.data.slice(0, room));
          acc += room;
        } else {
          acc += piece.data.size();
          last_seen = piece.last;
          parts.push_back(std::move(piece.data));
        }
      }
      // Pad the tail to a whole block (devices write whole LBAs). Real
      // payloads get real zero padding -- phantom padding would degrade the
      // whole gathered buffer and corrupt stored contents.
      const std::uint64_t padded =
          (acc + nvme::kLbaSize - 1) & ~(nvme::kLbaSize - 1);
      if (padded != acc) {
        bool all_real = true;
        for (const Payload& p : parts) all_real = all_real && p.has_data();
        parts.push_back(all_real ? Payload::filled(padded - acc, 0)
                                 : Payload::phantom(padded - acc));
      }

      SubCommand sub;
      sub.slba = lba_of(dev_cursor, nvme::kLbaSize);
      sub.blocks = static_cast<std::uint32_t>(padded / nvme::kLbaSize);
      sub.payload_bytes = Bytes{acc};
      sub.last = last_seen;

      co_await issue_credits_->acquire();
      co_await alloc_mutex_->acquire();
      Bytes off;
      co_await res_.write_ring->alloc(Bytes{padded}, &off);
      RobEntry entry;
      entry.is_write = true;
      entry.sub = sub;
      entry.buffer_offset = off;
      entry.user_tag = tag;
      SlotIdx slot;
      co_await rob_.alloc(std::move(entry), &slot);
      alloc_mutex_->release();
      co_await sim_.delay(clock_cycles(fpga_.write_submit_cycles));
      // "Write commands are forwarded to the NVMe device as soon as all
      // data from the user PE has been received and buffered" (Sec. 4.2).
      // The buffer fill overlaps with accepting the next command; the
      // committer submits strictly in order once the fill lands.
      sim::Promise<sim::Done> fill_done(sim_);
      auto fill_fut = fill_done.future();
      sim_.spawn(run_fill(res_.write_backend, off, Payload::gather(parts),
                          std::move(fill_done)));
      co_await submit_queue_->push(PendingSubmit(
          sub, slot, res_.write_region_base + off, std::move(fill_fut)));

      bytes_written_ += acc;
      dev_cursor += Bytes{padded};
    }
  }
}

sim::Task NvmeStreamer::run_fill(BufferBackend* backend, Bytes off,
                                 Payload data, sim::Promise<sim::Done> done) {
  co_await backend->fill(off, std::move(data));
  done.set(sim::Done{});
}

sim::Task NvmeStreamer::submit_committer() {
  while (true) {
    auto pending = co_await submit_queue_->pop();
    if (!pending) co_return;
    co_await pending->fill_done;
    co_await submit(pending->sub, /*is_write=*/true, pending->slot,
                    pending->absolute_offset);
  }
}

// ---------------------------------------------------------------------------
// Retirement (strictly in order) and read-out prefetch

sim::Task NvmeStreamer::retire_loop() {
  while (true) {
    co_await rob_.wait_head();
    RobEntry& head = rob_.head();
    bool failed = false;
    if (cfg_.recovery && head.status != nvme::Status::kSuccess) {
      if (head.retries < cfg_.max_retries) {
        // Bounded retry: a fresh SQE reuses the same ROB slot (CID) and the
        // same buffer range, with exponential backoff between attempts.
        const SlotIdx slot = rob_.head_slot();
        const bool is_write = head.is_write;
        const SubCommand sub = head.sub;
        const Bytes abs_off =
            (is_write ? res_.write_region_base : res_.read_region_base) +
            head.buffer_offset;
        // An error CQE released this command's OOO issue credit on arrival;
        // re-acquire it so the window stays bounded. A watchdog timeout had
        // no CQE -- the command still holds its credit, so acquiring again
        // would leak one per timeout.
        const bool had_cqe = head.status != nvme::Status::kWatchdogTimeout;
        const std::uint8_t attempt = ++head.retries;
        ++retries_;
        sim_.trace(sim::TraceCat::kStreamerRetire, "retry", slot, attempt);
        rob_.reopen_head();
        // The pairing release happened cross-coroutine: handle_cqe() gave
        // this command's credit back when the error CQE arrived, so this
        // acquire re-pairs with that release, not with the original issue.
        // snacc-lint: allow(ts-credit): cross-coroutine handoff, see above.
        if (cfg_.out_of_order && had_cqe) co_await issue_credits_->acquire();
        co_await sim_.delay(cfg_.retry_backoff * (1ull << (attempt - 1)));
        co_await submit(sub, is_write, slot, abs_off);
        continue;
      }
      // Retries exhausted: quarantine the poisoned entry. It retires like a
      // successful one -- keeping delivery strictly in order and the window
      // moving -- but its data is replaced by an error-tagged placeholder.
      failed = true;
      ++quarantined_;
      if (cfg_.out_of_order &&
          head.status == nvme::Status::kWatchdogTimeout) {
        // The lost command's CQE never arrived to release its OOO credit.
        issue_credits_->release();
      }
      sim_.trace(sim::TraceCat::kStreamerRetire, "quarantine",
                 rob_.head_slot(), head.user_tag);
    }
    if (cfg_.recovery && !failed && head.retries > 0) ++recovered_;
    if (!head.is_write) {
      while (!failed && !head.fetched) {
        fetch_progress_.close();
        co_await fetch_progress_.opened();
      }
      const TimePs gap =
          cfg_.out_of_order ? cfg_.ooo_retire_gap : fpga_.retire_gap_read;
      co_await sim_.delay(gap);
      Payload out = failed
                        ? Payload::phantom(head.sub.payload_bytes)
                        : head.data.slice(Bytes{head.sub.trim_head},
                                          head.sub.payload_bytes);
      const bool last = head.sub.last;
      bytes_read_ += out.size();
      sim_.trace(sim::TraceCat::kStreamerRetire, "retire-read", head.user_tag,
                 out.size());
      res_.read_ring->free_oldest();
      rob_.retire();
      ++commands_retired_;
      if (!cfg_.out_of_order) issue_credits_->release();
      co_await ring_cq_doorbell();
      prefetch_kick_->open();
      // Stream to the PE; TLAST closes the user command. Quarantined data
      // carries the error TUSER tag on every beat so the PE can discard it.
      co_await axis::send_chunked(read_data_out_, std::move(out), kStreamChunk,
                                  last, failed ? kReadErrorUser : 0);
    } else {
      const TimePs gap =
          cfg_.out_of_order ? cfg_.ooo_retire_gap : fpga_.retire_gap_write;
      co_await sim_.delay(gap);
      const bool last = head.sub.last;
      const std::uint64_t tag = head.user_tag;
      sim_.trace(sim::TraceCat::kStreamerRetire, "retire-write", tag,
                 head.sub.payload_bytes);
      if (failed) failed_write_tags_.insert(tag);
      if (!head.sub.flush) res_.write_ring->free_oldest();
      rob_.retire();
      ++commands_retired_;
      if (!cfg_.out_of_order) issue_credits_->release();
      co_await ring_cq_doorbell();
      prefetch_kick_->open();
      if (last) {
        // Any quarantined sub of this user command poisons its response.
        const bool resp_error =
            cfg_.recovery && failed_write_tags_.erase(tag) > 0;
        co_await write_resp_out_.send_token(
            resp_error ? (tag | kWriteRespErrorBit) : tag);
      }
    }
  }
}

sim::Task NvmeStreamer::watchdog_loop() {
  while (true) {
    co_await sim_.delay(cfg_.watchdog_period);
    if (rob_.empty()) continue;
    // Only the head is checked: in-order retirement means a lost completion
    // anywhere in the window eventually becomes the head blocker, and its
    // submitted_at keeps accumulating age while it waits.
    RobEntry& head = rob_.head();
    if (head.completed || head.submitted_at.is_zero()) continue;
    if (sim_.now() - head.submitted_at < cfg_.cmd_timeout) continue;
    ++watchdog_timeouts_;
    ++errors_;
    sim_.trace(sim::TraceCat::kStreamerRetire, "watchdog-timeout",
               rob_.head_slot(), head.user_tag);
    rob_.fail_head(nvme::Status::kWatchdogTimeout);
  }
}

sim::Task NvmeStreamer::fetch_entry(RobEntry* entry) {
  Payload out;
  co_await res_.read_backend->drain(entry->buffer_offset,
                                    entry->sub.buffer_bytes(), &out);
  entry->data = std::move(out);
  entry->fetched = true;
  fetch_progress_.open();
}

sim::Task NvmeStreamer::prefetch_loop() {
  while (true) {
    prefetch_kick_->close();
    // Scan the retirement window and start read-outs for completed reads.
    const std::uint16_t window =
        static_cast<std::uint16_t>(fpga_.readout_prefetch);
    for (std::uint16_t i = 0; i < window; ++i) {
      RobEntry* e = rob_.peek(i);
      if (e == nullptr) break;
      // With recovery on, an error-completed read has no valid buffer
      // contents and is about to be reopened for retry (or quarantined);
      // fetching it would race with the retirement engine's reopen.
      if (!e->is_write && e->completed && !e->fetch_started &&
          !(cfg_.recovery && e->status != nvme::Status::kSuccess)) {
        e->fetch_started = true;
        sim_.spawn(fetch_entry(e));
      }
    }
    co_await prefetch_kick_->opened();
  }
}

}  // namespace snacc::core
