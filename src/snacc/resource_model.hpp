// FPGA resource model for Table 1.
//
// No synthesis tool is available offline, so resource utilization is
// computed analytically from the streamer's structural parameters -- stream
// interfaces, AXI masters, FIFOs/ROBs, PRP logic, burst engines -- with
// per-feature costs calibrated to the paper's reported totals (Sec. 5.4).
// The *relative* structure is what matters and is preserved: the URAM
// variant is cheapest in LUT/FF but spends 13.3 % of the device's URAM; the
// DRAM variants need 2-3x the LUT/FF (extra AXI masters, burst logic, the
// PRP register file) and a few BRAM for burst FIFOs; the on-board variant
// additionally reserves 128 MB of card DRAM, the host variant 128 MB of
// pinned host memory.
#pragma once

#include <cstdint>
#include <string>

#include "snacc/streamer.hpp"

namespace snacc::core {

struct ResourceUsage {
  std::uint32_t lut = 0;
  std::uint32_t ff = 0;
  double bram_36k = 0.0;  // 36 kb blocks (halves possible)
  std::uint64_t uram_bytes = 0;
  std::uint64_t dram_bytes = 0;
  bool dram_is_host_pinned = false;

  /// Utilization against the Alveo U280 (XCU280) totals.
  double lut_pct() const;
  double ff_pct() const;
  double bram_pct() const;
  double uram_pct() const;
};

/// Alveo U280 device totals.
struct U280 {
  static constexpr std::uint32_t kLut = 1'303'680;
  static constexpr std::uint32_t kFf = 2'607'360;
  static constexpr std::uint32_t kBram36 = 2'016;
  static constexpr std::uint64_t kUramBytes = 960ull * 36 * KiB / 8 * 8;  // 960 blocks x 288 kb
};

/// Computes the NVMe Streamer's resource usage for a variant/configuration.
ResourceUsage estimate_resources(const StreamerConfig& cfg,
                                 Bytes uram_buffer_bytes = Bytes{4 * MiB},
                                 Bytes dram_buffer_bytes = Bytes{64 * MiB});

std::string format_table1_row(Variant v, const ResourceUsage& u);

}  // namespace snacc::core
