#include "snacc/replicated_client.hpp"

#include <cassert>

#include "nvme/spec.hpp"
#include "sim/future.hpp"

namespace snacc::core {

ReplicatedClient::ReplicatedClient(sim::Simulator& sim,
                                   std::vector<StorageClient*> replicas,
                                   Config cfg)
    : sim_(sim),
      replicas_(std::move(replicas)),
      cfg_(cfg),
      quorum_(cfg.quorum != 0 ? cfg.quorum : replicas_.size() / 2 + 1),
      quarantined_(replicas_.size(), false) {
  assert(!replicas_.empty());
  assert(quorum_ <= replicas_.size());
}

std::size_t ReplicatedClient::live_replicas() const {
  std::size_t n = 0;
  for (const bool q : quarantined_) n += q ? 0 : 1;
  return n;
}

sim::Task ReplicatedClient::replica_write(std::size_t i, Bytes addr,
                                          Payload data, sim::WaitGroup& wg,
                                          std::size_t* acked) {
  for (std::uint8_t attempt = 0;; ++attempt) {
    bool err = false;
    co_await replicas_[i]->write(addr, data, &err);
    if (!err) {
      ++*acked;
      break;
    }
    if (attempt >= cfg_.max_retries) {
      quarantined_[i] = true;
      ++replicas_lost_;
      break;
    }
    ++resubmissions_;
    co_await sim_.delay(cfg_.retry_backoff * (1ull << attempt));
  }
  wg.done();
}

sim::Task ReplicatedClient::replica_flush(std::size_t i, sim::WaitGroup& wg,
                                          std::size_t* acked) {
  for (std::uint8_t attempt = 0;; ++attempt) {
    bool err = false;
    co_await replicas_[i]->flush(&err);
    if (!err) {
      ++*acked;
      break;
    }
    if (attempt >= cfg_.max_retries) {
      quarantined_[i] = true;
      ++replicas_lost_;
      break;
    }
    ++resubmissions_;
    co_await sim_.delay(cfg_.retry_backoff * (1ull << attempt));
  }
  wg.done();
}

sim::Task ReplicatedClient::write(Bytes addr, Payload data, bool* error) {
  ++writes_;
  sim::WaitGroup wg(sim_);
  std::size_t acked = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (quarantined_[i]) continue;
    wg.add();
    sim_.spawn(replica_write(i, addr, data, wg, &acked));
  }
  co_await wg.wait();
  const bool ok = acked >= quorum_;
  if (!ok) ++quorum_failures_;
  if (error != nullptr) *error = !ok;
}

sim::Task ReplicatedClient::flush(bool* error) {
  ++flushes_;
  sim::WaitGroup wg(sim_);
  std::size_t acked = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (quarantined_[i]) continue;
    wg.add();
    sim_.spawn(replica_flush(i, wg, &acked));
  }
  co_await wg.wait();
  const bool ok = acked >= quorum_;
  if (!ok) ++quorum_failures_;
  if (error != nullptr) *error = !ok;
}

sim::Task ReplicatedClient::read(Bytes addr, Bytes len, Payload* out,
                                 bool* error) {
  // First live replica serves; later ones are failover. Replicas that
  // returned quarantined (placeholder) data are remembered for repair.
  std::vector<std::size_t> failed;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (quarantined_[i]) continue;
    Payload got;
    bool err = false;
    co_await replicas_[i]->read(addr, len, &got, &err);
    if (err) {
      ++read_failovers_;
      failed.push_back(i);
      continue;
    }
    // Read-repair: push the good bytes back to every replica that failed
    // this range (whole-block ranges only -- the device path writes LBAs).
    if (!failed.empty() && aligned(addr, nvme::kLbaSize) &&
        aligned(len, nvme::kLbaSize)) {
      for (const std::size_t j : failed) {
        if (quarantined_[j]) continue;
        bool repair_err = false;
        co_await replicas_[j]->write(addr, got, &repair_err);
        if (!repair_err) ++read_repairs_;
      }
    }
    if (out != nullptr) *out = std::move(got);
    if (error != nullptr) *error = false;
    co_return;
  }
  if (out != nullptr) *out = Payload::phantom(len);
  if (error != nullptr) *error = true;
}

}  // namespace snacc::core
