// StripedClient: the Sec. 7 multi-SSD extension's "single address space"
// flavour -- one logical device striped across N NVMe streamers (one queue
// pair per SSD), stripe size = the 1 MB command granularity so every SSD
// receives maximal commands.
//
// Each device's command stream is strictly ordered (the streamer retires in
// order), so per device one issuer pipelines the stripe commands and one
// collector drains the responses in the same order; across devices
// everything runs concurrently. Bandwidth adds across SSDs until the FPGA's
// own PCIe link saturates.
#pragma once

#include <cstdint>
#include <vector>

#include "snacc/pe_client.hpp"

namespace snacc::core {

class StripedClient {
 public:
  explicit StripedClient(std::vector<NvmeStreamer*> streamers,
                         Bytes stripe_bytes = Bytes{1 * MiB})
      : stripe_(stripe_bytes) {
    for (NvmeStreamer* s : streamers) clients_.emplace_back(*s);
  }

  std::size_t device_count() const { return clients_.size(); }
  Bytes stripe_bytes() const { return stripe_; }

  /// Logical address -> (device, device-local address).
  struct Location {
    std::size_t device;
    Bytes addr;
  };
  Location locate(Bytes logical) const {
    const std::uint64_t stripe_index = logical / stripe_;
    return Location{static_cast<std::size_t>(stripe_index % clients_.size()),
                    stripe_ * (stripe_index / clients_.size()) +
                        logical % stripe_};
  }

  /// Writes `data` at logical byte address `addr` (block-aligned).
  sim::Task write(Bytes addr, Payload data) {
    auto plan = make_plan(addr, Bytes{data.size()});
    sim::Simulator& sim = simulator();
    sim::WaitGroup wg(sim);
    wg.add(static_cast<int>(clients_.size()));
    for (std::size_t d = 0; d < clients_.size(); ++d) {
      sim.spawn(device_writer(&sim, &clients_[d], plan[d], data, &wg));
    }
    co_await wg.wait();
  }

  /// Reads [addr, addr+len) into `*out` (nullptr: discard). Stripes land in
  /// logical order in the output regardless of completion order.
  sim::Task read(Bytes addr, Bytes len, Payload* out) {
    auto plan = make_plan(addr, len);
    std::size_t total_stripes = 0;
    for (const auto& d : plan) total_stripes += d.size();
    std::vector<Payload> parts(total_stripes);
    sim::Simulator& sim = simulator();
    sim::WaitGroup wg(sim);
    wg.add(static_cast<int>(clients_.size()));
    for (std::size_t d = 0; d < clients_.size(); ++d) {
      sim.spawn(device_reader(&sim, &clients_[d], plan[d], &parts, &wg));
    }
    co_await wg.wait();
    if (out != nullptr) *out = Payload::gather(parts);
  }

 private:
  struct Stripe {
    Bytes device_addr;
    Bytes logical_off;  // offset within the caller's buffer
    Bytes len;
    std::size_t part_index;  // logical-order slot in the gather vector
  };

  /// Splits [addr, addr+len) into per-device ordered stripe lists.
  std::vector<std::vector<Stripe>> make_plan(Bytes addr, Bytes len) const {
    std::vector<std::vector<Stripe>> plan(clients_.size());
    Bytes off;
    std::size_t idx = 0;
    while (off < len) {
      const Bytes n = std::min(len - off, stripe_ - (addr + off) % stripe_);
      const Location loc = locate(addr + off);
      plan[loc.device].push_back(Stripe{loc.addr, off, n, idx});
      off += n;
      ++idx;
    }
    return plan;
  }

  sim::Simulator& simulator() {
    return clients_.front().streamer().read_cmd_in().simulator();
  }

  static sim::Task device_writer(sim::Simulator* sim, PeClient* client,
                                 std::vector<Stripe> stripes, Payload data,
                                 sim::WaitGroup* wg) {
    // The response tokens must be drained *while* stripes stream in: the
    // token FIFO is shallow and a full FIFO backpressures retirement.
    struct Issuer {
      static sim::Task run(PeClient* client, const std::vector<Stripe>* list,
                           const Payload* data) {
        for (const Stripe& s : *list) {
          co_await client->start_write(
              s.device_addr, data->slice(s.logical_off, s.len));
        }
      }
    };
    sim->spawn(Issuer::run(client, &stripes, &data));
    for (std::size_t i = 0; i < stripes.size(); ++i) {
      co_await client->wait_write_response();
    }
    wg->done();
  }

  static sim::Task device_reader(sim::Simulator* sim, PeClient* client,
                                 std::vector<Stripe> stripes,
                                 std::vector<Payload>* parts,
                                 sim::WaitGroup* wg) {
    struct Issuer {
      static sim::Task run(PeClient* client, const std::vector<Stripe>* list) {
        for (const Stripe& s : *list) {
          co_await client->start_read(s.device_addr, s.len);
        }
      }
    };
    sim->spawn(Issuer::run(client, &stripes));
    // Responses arrive in issue order (in-order retirement).
    for (const Stripe& s : stripes) {
      co_await client->collect_read(&(*parts)[s.part_index]);
    }
    wg->done();
  }

  std::vector<PeClient> clients_;
  Bytes stripe_;
};

}  // namespace snacc::core
