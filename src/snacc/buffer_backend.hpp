// Buffer backends: where the streamer's payload buffers physically live
// (Sec. 4.3) and how the FPGA-side data movers reach them.
//
//  * UramBackend        -- 4 MB on-die, dual-ported, lowest latency.
//  * OnboardDramBackend -- 64+64 MB in the card's DRAM behind BAR2; shares
//                          the single DRAM controller with the NVMe
//                          controller's burst accesses.
//  * HostDramBackend    -- pinned host memory reached over PCIe in 4 MB
//                          chunks; readout issues MPS-sized read requests.
//
// The read-out engine ("drain") models the paper's observed asymmetry: a
// single small drain is latency-bound (shallow request pipeline -- the
// +7/+9 us read-latency deltas of Fig. 4c), while bulk drains ramp the
// outstanding-request window and run at full bandwidth.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/calibration.hpp"
#include "common/payload.hpp"
#include "mem/dram.hpp"
#include "pcie/fabric.hpp"
#include "snacc/prp_engine.hpp"

namespace snacc::core {

class BufferBackend {
 public:
  virtual ~BufferBackend() = default;

  /// Stream-in: stores `data` at buffer offset `off` (PE -> buffer).
  virtual sim::Task fill(Bytes off, Payload data) = 0;

  /// Read-out: loads [off, off+len) into `*out` (buffer -> PE).
  virtual sim::Task drain(Bytes off, Bytes len, Payload* out) = 0;

  /// Translator for PRP generation.
  virtual const AddressTranslator& translator() const = 0;
};

class UramBackend final : public BufferBackend {
 public:
  UramBackend(mem::Uram& uram, pcie::Addr window_base)
      : uram_(uram), xlat_(window_base) {}

  sim::Task fill(Bytes off, Payload data) override {
    auto fut = uram_.write(off.value(), std::move(data));
    co_await fut;
  }
  sim::Task drain(Bytes off, Bytes len, Payload* out) override {
    auto fut = uram_.read(off.value(), len.value());
    *out = co_await fut;
  }
  const AddressTranslator& translator() const override { return xlat_; }

 private:
  mem::Uram& uram_;
  LinearTranslator xlat_;
};

class OnboardDramBackend final : public BufferBackend {
 public:
  /// `region_base` is the byte offset of this buffer's region within the
  /// DRAM (read and write buffers are distinct regions, Sec. 4.3).
  OnboardDramBackend(sim::Simulator& sim, mem::Dram& dram, Bytes region_base,
                     pcie::Addr bar2_base, const FpgaProfile& fpga)
      : sim_(sim),
        dram_(dram),
        region_base_(region_base),
        xlat_(bar2_base + region_base),
        fpga_(fpga) {}

  sim::Task fill(Bytes off, Payload data) override;
  sim::Task drain(Bytes off, Bytes len, Payload* out) override;
  const AddressTranslator& translator() const override { return xlat_; }

 private:
  sim::Simulator& sim_;
  mem::Dram& dram_;
  Bytes region_base_;
  LinearTranslator xlat_;
  FpgaProfile fpga_;
};

/// Sec. 7 HBM extension: buffers interleaved across independent HBM
/// pseudo-channels. Fills and drains run at aggregate channel bandwidth and
/// never share a controller with the NVMe controller's burst reads.
class HbmBackend final : public BufferBackend {
 public:
  HbmBackend(sim::Simulator& sim, mem::Hbm& hbm, Bytes region_base,
             pcie::Addr bar2_base, const FpgaProfile& fpga)
      : sim_(sim),
        hbm_(hbm),
        region_base_(region_base),
        xlat_(bar2_base + region_base),
        fpga_(fpga) {}

  sim::Task fill(Bytes off, Payload data) override;
  sim::Task drain(Bytes off, Bytes len, Payload* out) override;
  const AddressTranslator& translator() const override { return xlat_; }

 private:
  sim::Simulator& sim_;
  mem::Hbm& hbm_;
  Bytes region_base_;
  LinearTranslator xlat_;
  FpgaProfile fpga_;
};

class HostDramBackend final : public BufferBackend {
 public:
  /// `chunks`: global addresses of the pinned 4 MB host-memory chunks.
  HostDramBackend(sim::Simulator& sim, pcie::Fabric& fabric,
                  pcie::PortId fpga_port, std::vector<pcie::Addr> chunks,
                  Bytes chunk_size, const FpgaProfile& fpga)
      : sim_(sim),
        fabric_(fabric),
        fpga_port_(fpga_port),
        xlat_(std::move(chunks), chunk_size),
        fpga_(fpga) {}

  sim::Task fill(Bytes off, Payload data) override;
  sim::Task drain(Bytes off, Bytes len, Payload* out) override;
  const AddressTranslator& translator() const override { return xlat_; }

 private:
  sim::Simulator& sim_;
  pcie::Fabric& fabric_;
  pcie::PortId fpga_port_;
  ChunkedTranslator xlat_;
  FpgaProfile fpga_;
};

}  // namespace snacc::core
