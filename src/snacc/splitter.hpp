// Command splitting (Sec. 4.2): user commands of arbitrary byte address and
// length are split into NVMe commands of at most the maximum transfer size
// (1 MB), each buffered in 4 kB-aligned buffer space. Reads additionally
// handle sub-LBA offsets by reading the covering blocks and trimming on
// stream-out; writes require LBA alignment (the database controller always
// produces block-aligned records).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "nvme/spec.hpp"

namespace snacc::core {

struct SubCommand {
  Lba slba;                      // starting logical block on the device
  std::uint32_t blocks = 0;      // whole blocks covered
  std::uint32_t trim_head = 0;   // bytes to drop from the first block
  Bytes payload_bytes;           // user-visible bytes of this piece
  bool last = false;             // final piece of the user command
  /// NVMe Flush barrier (durability tier): no payload, no buffer space; the
  /// device destages its volatile write cache before completing.
  bool flush = false;

  Bytes buffer_bytes() const {
    return Bytes{static_cast<std::uint64_t>(blocks) * nvme::kLbaSize};
  }
};

struct SplitLimits {
  Bytes max_transfer{1 * MiB};  // device MDTS
};

/// Splits a read of [addr, addr+len) device bytes. Pieces after the first
/// are MDTS-aligned on the device so the middle of a long transfer always
/// issues full-size commands (the paper's "split at each 1 MB boundary").
std::vector<SubCommand> split_read(Bytes addr, Bytes len,
                                   const SplitLimits& limits);

/// Splits a write of `len` bytes to device byte address `addr`. Both must be
/// block-aligned (checked); returns an empty vector on violation.
std::vector<SubCommand> split_write(Bytes addr, Bytes len,
                                    const SplitLimits& limits);

}  // namespace snacc::core
