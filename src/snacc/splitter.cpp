#include "snacc/splitter.hpp"

#include <algorithm>

namespace snacc::core {

namespace {
constexpr std::uint64_t kLba = nvme::kLbaSize;
}

std::vector<SubCommand> split_read(std::uint64_t addr, std::uint64_t len,
                                   const SplitLimits& limits) {
  std::vector<SubCommand> out;
  if (len == 0) return out;
  std::uint64_t remaining = len;
  std::uint64_t cur = addr;
  while (remaining > 0) {
    // Align subsequent pieces to MDTS boundaries on the device so steady
    // state issues maximal commands regardless of the starting offset.
    const std::uint64_t to_boundary =
        limits.max_transfer - (cur % limits.max_transfer);
    const std::uint64_t piece = std::min(remaining, to_boundary);

    SubCommand sc;
    sc.slba = cur / kLba;
    sc.trim_head = static_cast<std::uint32_t>(cur % kLba);
    const std::uint64_t span = sc.trim_head + piece;  // device bytes covered
    sc.blocks = static_cast<std::uint32_t>((span + kLba - 1) / kLba);
    sc.payload_bytes = piece;
    sc.last = piece == remaining;
    out.push_back(sc);

    cur += piece;
    remaining -= piece;
  }
  return out;
}

std::vector<SubCommand> split_write(std::uint64_t addr, std::uint64_t len,
                                    const SplitLimits& limits) {
  std::vector<SubCommand> out;
  if (len == 0) return out;
  if (addr % kLba != 0 || len % kLba != 0) return out;  // caller checks
  std::uint64_t remaining = len;
  std::uint64_t cur = addr;
  while (remaining > 0) {
    const std::uint64_t to_boundary =
        limits.max_transfer - (cur % limits.max_transfer);
    const std::uint64_t piece = std::min(remaining, to_boundary);
    SubCommand sc;
    sc.slba = cur / kLba;
    sc.trim_head = 0;
    sc.blocks = static_cast<std::uint32_t>(piece / kLba);
    sc.payload_bytes = piece;
    sc.last = piece == remaining;
    out.push_back(sc);
    cur += piece;
    remaining -= piece;
  }
  return out;
}

}  // namespace snacc::core
