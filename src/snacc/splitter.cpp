#include "snacc/splitter.hpp"

#include <algorithm>

namespace snacc::core {

namespace {
constexpr std::uint64_t kLba = nvme::kLbaSize;
}

std::vector<SubCommand> split_read(Bytes addr, Bytes len,
                                   const SplitLimits& limits) {
  std::vector<SubCommand> out;
  if (len.is_zero()) return out;
  Bytes remaining = len;
  Bytes cur = addr;
  while (!remaining.is_zero()) {
    // Align subsequent pieces to MDTS boundaries on the device so steady
    // state issues maximal commands regardless of the starting offset.
    const Bytes to_boundary = limits.max_transfer - cur % limits.max_transfer;
    const Bytes piece = std::min(remaining, to_boundary);

    SubCommand sc;
    sc.slba = lba_of(cur, kLba);
    sc.trim_head = static_cast<std::uint32_t>(block_offset(cur, kLba));
    // Device bytes covered: the head trim plus the payload piece.
    const Bytes span = Bytes{sc.trim_head} + piece;
    sc.blocks =
        static_cast<std::uint32_t>(blocks_of(span + Bytes{kLba - 1}, kLba));
    sc.payload_bytes = piece;
    sc.last = piece == remaining;
    out.push_back(sc);

    cur += piece;
    remaining -= piece;
  }
  return out;
}

std::vector<SubCommand> split_write(Bytes addr, Bytes len,
                                    const SplitLimits& limits) {
  std::vector<SubCommand> out;
  if (len.is_zero()) return out;
  if (!aligned(addr, kLba) || !aligned(len, kLba))
    return out;  // caller checks
  Bytes remaining = len;
  Bytes cur = addr;
  while (!remaining.is_zero()) {
    const Bytes to_boundary = limits.max_transfer - cur % limits.max_transfer;
    const Bytes piece = std::min(remaining, to_boundary);
    SubCommand sc;
    sc.slba = lba_of(cur, kLba);
    sc.trim_head = 0;
    sc.blocks = static_cast<std::uint32_t>(blocks_of(piece, kLba));
    sc.payload_bytes = piece;
    sc.last = piece == remaining;
    out.push_back(sc);
    cur += piece;
    remaining -= piece;
  }
  return out;
}

}  // namespace snacc::core
