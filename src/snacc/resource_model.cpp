#include "snacc/resource_model.hpp"

#include <cmath>
#include <cstdio>

namespace snacc::core {

namespace {

/// Per-feature cost table. The decomposition is structural (which blocks a
/// variant instantiates); the absolute LUT/FF numbers are calibrated so the
/// per-variant sums reproduce Table 1 of the paper.
struct Cost {
  std::uint32_t lut;
  std::uint32_t ff;
  double bram;
};

// Common core: command FSMs, splitter, ROB control, four AXI4-Stream
// endpoints, SQ FIFO, doorbell master.
constexpr Cost kBase{5600, 6500, 0.0};
// URAM buffer ports + the bit-select on-the-fly PRP logic (Fig. 2).
constexpr Cost kUramInterface{1660, 1888, 0.0};
// PRP register file + per-entry address adder (Fig. 3).
constexpr Cost kRegfilePrp{1200, 900, 0.0};
// Full AXI master to the on-board memory controller, 4 kB burst-combining
// logic for the NVMe controller's accesses, and read/write reorder FIFOs.
constexpr Cost kDramAxiMaster{7263, 9987 - 900, 24.0};
// PCIe DMA master + 4 MB chunk table address calculation (Sec. 4.3).
constexpr Cost kHostDmaMaster{5428, 6873 - 900, 17.5};

std::uint64_t uram_blocks_for(std::uint64_t bytes) {
  // 512-bit datapath = a group of 8 URAM288 blocks (72 bit x 4096 deep),
  // i.e. 256 KiB per group.
  const std::uint64_t group_bytes = 4096ull * 64;
  const std::uint64_t groups = (bytes + group_bytes - 1) / group_bytes;
  return groups * 8;
}

}  // namespace

double ResourceUsage::lut_pct() const {
  return 100.0 * lut / U280::kLut;
}
double ResourceUsage::ff_pct() const { return 100.0 * ff / U280::kFf; }
double ResourceUsage::bram_pct() const {
  return 100.0 * bram_36k / U280::kBram36;
}
double ResourceUsage::uram_pct() const {
  if (uram_bytes == 0) return 0.0;
  return 100.0 * static_cast<double>(uram_blocks_for(uram_bytes)) / 960.0;
}

ResourceUsage estimate_resources(const StreamerConfig& cfg,
                                 Bytes uram_buffer_bytes,
                                 Bytes dram_buffer_bytes) {
  ResourceUsage u;
  auto add = [&u](const Cost& c) {
    u.lut += c.lut;
    u.ff += c.ff;
    u.bram_36k += c.bram;
  };
  add(kBase);
  switch (cfg.variant) {
    case Variant::kUram:
      add(kUramInterface);
      // snacc-lint: allow(value-escape): resource table reports raw byte totals
      u.uram_bytes = uram_buffer_bytes.value();
      break;
    case Variant::kOnboardDram:
      add(kRegfilePrp);
      add(kDramAxiMaster);
      // snacc-lint: allow(value-escape): resource table reports raw byte totals
      u.dram_bytes = 2 * dram_buffer_bytes.value();
      break;
    case Variant::kHostDram:
      add(kRegfilePrp);
      add(kHostDmaMaster);
      // snacc-lint: allow(value-escape): resource table reports raw byte totals
      u.dram_bytes = 2 * dram_buffer_bytes.value();
      u.dram_is_host_pinned = true;
      break;
    case Variant::kHbm:
      // Sec. 7 estimate: on-board structure plus per-channel AXI ports.
      add(kRegfilePrp);
      add(kDramAxiMaster);
      u.lut += 3200;
      u.ff += 4100;
      u.bram_36k += 8.0;
      // snacc-lint: allow(value-escape): resource table reports raw byte totals
      u.dram_bytes = 2 * dram_buffer_bytes.value();
      break;
  }
  if (cfg.out_of_order) {
    // Sec. 7: the OOO retirement engine needs a larger ROB, per-slot state
    // and a free-slot CAM.
    u.lut += 2100;
    u.ff += 3900;
    u.bram_36k += 4.0;
  }
  return u;
}

std::string format_table1_row(Variant v, const ResourceUsage& u) {
  char buf[256];
  char bram[32] = "-";
  char uram[48] = "-";
  char dram[48] = "-";
  if (u.bram_36k > 0) std::snprintf(bram, sizeof(bram), "%.1f (%.1f%%)", u.bram_36k, u.bram_pct());
  if (u.uram_bytes > 0) {
    std::snprintf(uram, sizeof(uram), "%llu MB (%.1f%%)",
                  static_cast<unsigned long long>(u.uram_bytes / MiB), u.uram_pct());
  }
  if (u.dram_bytes > 0) {
    std::snprintf(dram, sizeof(dram), "%llu MB%s",
                  static_cast<unsigned long long>(u.dram_bytes / MiB),
                  u.dram_is_host_pinned ? "*" : "");
  }
  std::snprintf(buf, sizeof(buf),
                "%-14s LUT %6u (%.1f%%)  FF %6u (%.1f%%)  BRAM %-14s URAM %-16s DRAM %s",
                variant_name(v), u.lut, u.lut_pct(), u.ff, u.ff_pct(), bram,
                uram, dram);
  return buf;
}

}  // namespace snacc::core
