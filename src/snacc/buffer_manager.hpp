// Ring allocator for the streamer's data buffer (Sec. 4.3).
//
// Allocations are 4 kB-aligned ("each new read and write command starts at a
// 4 kB boundary"). Because the streamer retires commands strictly in the
// order they were issued, frees arrive in allocation order and the buffer is
// managed as a ring: allocate at the tail, free from the head. When the
// contiguous space at the end of the ring is too small for a request the
// remainder is skipped (padding), mirroring what a hardware ring pointer
// does. `alloc` backpressures (suspends) until space frees -- this is what
// bounds the number of in-flight large commands to the buffer capacity.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>

#include "common/units.hpp"
#include "sim/future.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace snacc::core {

class BufferRing {
 public:
  BufferRing(sim::Simulator& sim, Bytes capacity)
      : sim_(&sim), capacity_(capacity), space_(sim, /*open=*/true) {
    assert(aligned(capacity, kPageSize));
  }

  Bytes capacity() const { return capacity_; }
  Bytes in_use() const { return used_; }

  /// Allocates `bytes` (rounded up to 4 kB) of contiguous buffer space;
  /// suspends while the ring is too full. Returns the byte offset.
  sim::Task alloc(Bytes bytes, Bytes* offset_out);

  /// Frees the oldest allocation; must match alloc order (in-order retire).
  void free_oldest();

  /// Number of outstanding allocations.
  std::size_t outstanding() const { return allocs_.size(); }

 private:
  struct Alloc {
    Bytes offset;
    Bytes bytes;    // rounded size actually reserved
    Bytes padding;  // skipped tail-of-ring bytes charged to this alloc
  };

  bool fits(Bytes rounded, Bytes* pad) const;

  sim::Simulator* sim_;
  Bytes capacity_;
  Bytes head_;  // oldest live byte
  Bytes tail_;  // next free byte
  Bytes used_;  // bytes reserved including padding
  std::deque<Alloc> allocs_;
  sim::Gate space_;
};

}  // namespace snacc::core
