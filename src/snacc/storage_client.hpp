// StorageClient: the narrow device-access surface the durability tier is
// written against (docs/DURABILITY.md). PeClient implements it over one
// streamer; ReplicatedClient implements it over N replicas. KvStore and the
// benches only ever see this interface, so a single-device store and a
// 3-way replicated store are the same code path.
#pragma once

#include "common/payload.hpp"
#include "common/units.hpp"
#include "sim/task.hpp"

namespace snacc::core {

class StorageClient {
 public:
  virtual ~StorageClient() = default;

  /// Reads [addr, addr+len) device bytes into `*out` (nullptr: discard).
  /// `*error` (if non-null) reports unrecoverable data loss.
  virtual sim::Task read(Bytes addr, Bytes len, Payload* out,
                         bool* error = nullptr) = 0;

  /// Writes `data` to block-aligned device byte address `addr` and waits
  /// for acknowledgment. Acknowledged data may still sit in a volatile
  /// device cache -- it is durable only once a later flush() succeeds.
  virtual sim::Task write(Bytes addr, Payload data, bool* error) = 0;

  /// Durability barrier: destages every previously acknowledged write.
  virtual sim::Task flush(bool* error = nullptr) = 0;
};

}  // namespace snacc::core
