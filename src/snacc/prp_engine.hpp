// On-the-fly PRP computation (Sec. 4.4, Figs. 2 and 3).
//
// The streamer's buffers are contiguous and stream in order, so the n-th PRP
// entry is always `first_list_page + n * 4096`: instead of materializing PRP
// lists in memory, the FPGA synthesizes list *reads* arithmetically.
//
//  * URAM variant (Fig. 2): the 4 MB buffer window is doubled to 8 MB; bit 22
//    of the second PRP entry selects the upper half. A list read at
//    (second_page | bit22) + 8n returns second_page + n*4096.
//  * DRAM variants (Fig. 3): a register file indexed by the low bits of the
//    command ID holds each active command's second-page offset; PRP2 points
//    into a small separate window at slot*4096. This avoids doubling the
//    128 MB DRAM address space and, for the host-DRAM variant, lets every
//    page be translated through the 4 MB-chunk table ("overhead in address
//    calculations", Sec. 4.3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/payload.hpp"
#include "common/units.hpp"
#include "pcie/iommu.hpp"

namespace snacc::core {

/// Maps a logical buffer offset to a global PCIe address.
class AddressTranslator {
 public:
  virtual ~AddressTranslator() = default;
  virtual pcie::Addr translate(Bytes logical_offset) const = 0;
  /// One past the largest translatable offset (used to clamp synthesized
  /// PRP-list entries past the end of a command's buffer).
  virtual Bytes capacity() const = 0;
};

/// Contiguous window (URAM window, on-board DRAM BAR).
class LinearTranslator final : public AddressTranslator {
 public:
  explicit LinearTranslator(pcie::Addr base,
                            Bytes capacity = Bytes{~std::uint64_t{0}})
      : base_(base), capacity_(capacity) {}
  pcie::Addr translate(Bytes off) const override { return base_ + off; }
  Bytes capacity() const override { return capacity_; }

 private:
  pcie::Addr base_;
  Bytes capacity_;
};

/// Host-DRAM variant: the kernel driver can only allocate 4 MB-contiguous
/// pinned buffers (Sec. 4.3), so a 64 MB logical buffer is a table of chunks.
class ChunkedTranslator final : public AddressTranslator {
 public:
  ChunkedTranslator(std::vector<pcie::Addr> chunk_bases, Bytes chunk_size)
      : chunks_(std::move(chunk_bases)), chunk_size_(chunk_size) {}

  pcie::Addr translate(Bytes off) const override {
    return chunks_.at(off / chunk_size_) + off % chunk_size_;
  }
  Bytes capacity() const override { return chunk_size_ * chunks_.size(); }

 private:
  std::vector<pcie::Addr> chunks_;
  Bytes chunk_size_;
};

struct PrpPair {
  BusAddr prp1;
  BusAddr prp2;
};

/// Fig. 2: bit-select scheme over a doubled URAM window.
class UramPrpEngine {
 public:
  /// `window_base`: global address of the 2*buffer_bytes URAM window.
  /// `buffer_bytes` must be a power of two (4 MB in the paper).
  UramPrpEngine(pcie::Addr window_base, Bytes buffer_bytes);

  /// PRP entries for a command whose data sits at `buffer_offset`.
  PrpPair make(Bytes buffer_offset, Bytes len) const;

  /// True if a window-local address falls in the PRP (upper) half.
  bool is_prp_read(Bytes local) const {
    return (local.value() & select_bit_) != 0;
  }

  /// Synthesizes list bytes for a read of [local, local+len) in the window.
  Payload serve(Bytes local, Bytes len) const;

 private:
  pcie::Addr window_base_;
  Bytes buffer_bytes_;
  std::uint64_t select_bit_;
};

/// Fig. 3: register-file scheme with a small separate PRP window.
class RegfilePrpEngine {
 public:
  /// `prp_window_base`: global address of the slots*4096 PRP window.
  RegfilePrpEngine(pcie::Addr prp_window_base, const AddressTranslator& xlat,
                   std::uint16_t slots);

  /// Registers the command in `slot` and returns its PRP entries.
  PrpPair make(SlotIdx slot, Bytes buffer_offset, Bytes len);

  /// Synthesizes list bytes for a read at window-local `local`.
  Payload serve(Bytes local, Bytes len) const;

  std::uint16_t slots() const {
    return static_cast<std::uint16_t>(regfile_.size());
  }

 private:
  pcie::Addr prp_window_base_;
  const AddressTranslator& xlat_;
  std::vector<Bytes> regfile_;  // second-page logical offset per slot
};

}  // namespace snacc::core
