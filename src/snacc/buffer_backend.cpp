#include "snacc/buffer_backend.hpp"

#include <algorithm>

namespace snacc::core {

namespace {

/// The AXI data-mover interconnect round-trip seen by the read-out engine
/// for one request to on-board DRAM (interconnect + controller scheduling).
constexpr TimePs kAxiReadoutRoundTrip = ns(250);

/// Outstanding-request window of the read-out engine for bulk drains; small
/// drains run at depth 1 (latency-bound, Fig. 4c).
constexpr std::uint32_t kBulkDrainDepth = 32;

constexpr bool is_bulk(Bytes len) { return len.value() > kPageSize; }

}  // namespace

// ---------------------------------------------------------------------------
// OnboardDramBackend

sim::Task OnboardDramBackend::fill(Bytes off, Payload data) {
  // Stream-in uses long bursts; the Dram model charges bus time and
  // read/write turnaround against the NVMe controller's concurrent reads.
  auto fut = dram_.write((region_base_ + off).value(), std::move(data));
  co_await fut;
}

sim::Task OnboardDramBackend::drain(Bytes off, Bytes len, Payload* out) {
  const std::uint32_t req = fpga_.readout_req_bytes / 2;  // 256 B DRAM reads
  if (!is_bulk(len)) {
    // Latency-bound small drain: sequential requests, one round trip each.
    Payload acc;
    std::uint64_t done = 0;
    while (done < len.value()) {
      const std::uint64_t n = std::min<std::uint64_t>(req, len.value() - done);
      auto fut = dram_.read((region_base_ + off).value() + done, n);
      Payload part = co_await fut;
      co_await sim_.delay(kAxiReadoutRoundTrip);
      acc = done == 0 ? std::move(part) : Payload::concat(acc, part);
      done += n;
    }
    *out = std::move(acc);
    co_return;
  }
  // Bulk drain: the mover ramps its request window; model as one pipelined
  // burst read plus a single ramp-up round trip.
  co_await sim_.delay(kAxiReadoutRoundTrip);
  auto fut = dram_.read((region_base_ + off).value(), len.value());
  *out = co_await fut;
}

// ---------------------------------------------------------------------------
// HbmBackend

sim::Task HbmBackend::fill(Bytes off, Payload data) {
  auto fut = hbm_.write((region_base_ + off).value(), std::move(data));
  co_await fut;
}

sim::Task HbmBackend::drain(Bytes off, Bytes len, Payload* out) {
  // HBM channels pipeline independently; one ramp round trip, then a
  // channel-parallel burst read.
  co_await sim_.delay(kAxiReadoutRoundTrip);
  auto fut = hbm_.read((region_base_ + off).value(), len.value());
  *out = co_await fut;
}

// ---------------------------------------------------------------------------
// HostDramBackend

sim::Task HostDramBackend::fill(Bytes off, Payload data) {
  // PCIe writes to pinned host memory; split at chunk boundaries since the
  // pinned chunks need not be contiguous in the global address space.
  std::uint64_t done = 0;
  const std::uint64_t len = data.size();
  while (done < len) {
    const Bytes logical = off + Bytes{done};
    const std::uint64_t chunk_rem = (4 * MiB) - (logical.value() % (4 * MiB));
    const std::uint64_t n = std::min(len - done, chunk_rem);
    auto fut = fabric_.write(fpga_port_, xlat_.translate(logical),
                             data.slice(done, n));
    co_await fut;
    done += n;
  }
}

sim::Task HostDramBackend::drain(Bytes off, Bytes len, Payload* out) {
  const std::uint32_t req = fpga_.readout_req_bytes;  // 512 B TLP reads
  if (!is_bulk(len)) {
    // Depth-1 small drain: each 512 B read pays the host round trip --
    // the +9 us delta of Fig. 4c for a 4 kB command.
    Payload acc;
    std::uint64_t done = 0;
    while (done < len.value()) {
      const std::uint64_t n = std::min<std::uint64_t>(req, len.value() - done);
      auto fut = fabric_.read(fpga_port_, xlat_.translate(off + Bytes{done}),
                              Bytes{n});
      auto rr = co_await fut;
      acc = done == 0 ? std::move(rr.data) : Payload::concat(acc, rr.data);
      done += n;
    }
    *out = std::move(acc);
    co_return;
  }
  // Bulk drain: the mover raises its read-request size to a full page (the
  // completions still arrive as max-payload TLPs and are charged on the
  // links) and keeps kBulkDrainDepth requests outstanding.
  const std::uint32_t bulk_req = static_cast<std::uint32_t>(kPageSize);
  sim::WaitGroup wg(sim_);
  std::vector<Payload> parts((len.value() + bulk_req - 1) / bulk_req);
  std::unique_ptr<sim::Semaphore> window =
      std::make_unique<sim::Semaphore>(sim_, static_cast<int>(kBulkDrainDepth));
  auto issue = [](HostDramBackend* self, pcie::Addr addr, std::uint64_t n,
                  Payload* slot, sim::WaitGroup* group,
                  sim::Semaphore* win) -> sim::Task {
    auto fut = self->fabric_.read(self->fpga_port_, addr, Bytes{n});
    auto rr = co_await fut;
    *slot = std::move(rr.data);
    win->release();
    group->done();
  };
  std::uint64_t done = 0;
  std::size_t idx = 0;
  while (done < len.value()) {
    const std::uint64_t n = std::min<std::uint64_t>(bulk_req, len.value() - done);
    co_await window->acquire();
    wg.add(1);
    sim_.spawn(issue(this, xlat_.translate(off + Bytes{done}), n, &parts[idx],
                     &wg, window.get()));
    done += n;
    ++idx;
  }
  co_await wg.wait();
  parts.resize(idx);
  *out = Payload::gather(parts);
}

}  // namespace snacc::core
