// Host-side NVMe admin bring-up used by the SNAcc host driver (Sec. 4.6):
// "our implementation uses the TaPaSCo driver and a custom host side PCIe
// driver for initialization of the NVMe Streamer IP and NVMe controller...
// This includes setting up the NVMe admin queue and using it to create
// command submission and completion queues."
//
// Unlike the SPDK baseline, only *initialization* runs on the host; the
// created I/O queues live in FPGA windows and are never touched by the CPU
// again.
#pragma once

#include <cstdint>

#include "common/calibration.hpp"
#include "nvme/queues.hpp"
#include "nvme/spec.hpp"
#include "nvme/ssd.hpp"
#include "pcie/memory_target.hpp"
#include "sim/task.hpp"

namespace snacc::host {

class NvmeAdmin {
 public:
  /// `region_local`: offset in host memory for the admin SQ/CQ + identify
  /// buffer (three pages).
  NvmeAdmin(sim::Simulator& sim, pcie::Fabric& fabric,
            pcie::HostMemory& host_mem, pcie::Addr host_window_base,
            nvme::Ssd& ssd, Bytes region_local);

  /// Writes AQA/ASQ/ACQ, enables the controller and polls CSTS.RDY.
  sim::Task bring_up();

  /// Identify-controller; fills `out`.
  sim::Task identify(nvme::IdentifyController* out);

  /// Creates an I/O CQ + SQ pair (CQ first, as the spec requires). The base
  /// addresses may point anywhere in the fabric -- host DRAM for SPDK-style
  /// drivers, FPGA BAR windows for SNAcc.
  sim::Task create_io_queues(std::uint16_t qid, pcie::Addr sq_base,
                             pcie::Addr cq_base, std::uint16_t entries,
                             nvme::Status* status);

  /// Submits a raw admin command and waits for its completion -- the escape
  /// hatch for commands without a dedicated wrapper (and for protocol-error
  /// tests).
  sim::Task command(nvme::SubmissionEntry sqe, nvme::Status* status,
                    std::uint32_t* dw0 = nullptr);

 private:
  sim::Task submit_and_wait(nvme::SubmissionEntry sqe, nvme::Status* status);

  sim::Simulator& sim_;
  pcie::Fabric& fabric_;
  pcie::HostMemory& host_mem_;
  pcie::Addr host_window_base_;
  nvme::Ssd& ssd_;
  Bytes region_;
  nvme::SqRing sq_;
  nvme::CqRing cq_;
  std::uint16_t next_cid_ = 0;
};

}  // namespace snacc::host
