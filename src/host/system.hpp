// System: the simulated testbed of the paper (Sec. 5): host CPU + DRAM, an
// NVMe SSD, and (optionally, added by the SNAcc device setup) an FPGA, all on
// one PCIe fabric. Owns the event domain (or borrows one from a SimCluster
// for parallel multi-node runs) and the global address map.
#pragma once

#include <memory>
#include <vector>

#include "common/calibration.hpp"
#include "nvme/ssd.hpp"
#include "pcie/fabric.hpp"
#include "pcie/memory_target.hpp"
#include "sim/simulator.hpp"

namespace snacc::host {

/// Global PCIe address map.
namespace addr_map {
inline constexpr pcie::Addr kHostDramBase{0x0000'0000'0000ull};
inline constexpr pcie::Addr kSsdBar{0x0040'0000'0000ull};
inline constexpr pcie::Addr kFpgaBar0{0x0050'0000'0000ull};  // regs + URAM
inline constexpr pcie::Addr kFpgaBar2{0x0051'0000'0000ull};  // on-board DRAM
}  // namespace addr_map

struct SystemConfig {
  CalibrationProfile profile{};
  std::uint64_t host_memory_bytes = 512 * MiB;
  std::uint64_t ssd_capacity_bytes = 2'000'000'000'000ull;
  /// Number of NVMe SSDs on the fabric (Sec. 7 multi-SSD scaling).
  std::uint32_t ssd_count = 1;
  bool iommu_enabled = true;
  std::uint64_t seed = 0x5aacc;
};

class System {
 public:
  explicit System(SystemConfig cfg = {}) : System(nullptr, cfg) {}

  /// Testbed on an external event domain -- for cluster runs where this
  /// node (host + fabric + SSDs + card) is one sim::Domain among several.
  /// Everything on one PCIe fabric shares one domain (fabric transactions
  /// are synchronous memory calls); cross-node Ethernet wires are the
  /// domain boundaries. `domain` must outlive the System.
  System(sim::Domain& domain, SystemConfig cfg = {}) : System(&domain, cfg) {}

  static constexpr Bytes kSsdBarStride{0x10'0000};  // 1 MB apart

  sim::Simulator& sim() { return sim_; }
  /// True when this System runs on a caller-provided (cluster) domain.
  bool external_domain() const { return owned_sim_ == nullptr; }
  pcie::Fabric& fabric() { return fabric_; }
  pcie::HostMemory& host_mem() { return host_mem_; }
  nvme::Ssd& ssd(std::size_t i = 0) { return *ssds_.at(i); }
  std::size_t ssd_count() const { return ssds_.size(); }
  pcie::PortId root_port() const { return root_port_; }
  const SystemConfig& config() const { return config_; }

 private:
  System(sim::Domain* domain, SystemConfig cfg)
      : config_(cfg),
        owned_sim_(domain ? nullptr : std::make_unique<sim::Domain>()),
        sim_(domain ? *domain : *owned_sim_),
        fabric_(sim_, cfg.profile.pcie),
        host_mem_(sim_, cfg.host_memory_bytes) {
    root_port_ = fabric_.add_port("host-root", 64.0);
    fabric_.set_root_port(root_port_);
    fabric_.iommu().set_enabled(cfg.iommu_enabled);
    fabric_.map(addr_map::kHostDramBase, Bytes{cfg.host_memory_bytes},
                &host_mem_, root_port_, pcie::MemKind::kHostDram);

    for (std::uint32_t i = 0; i < cfg.ssd_count; ++i) {
      auto ssd = std::make_unique<nvme::Ssd>(sim_, fabric_, cfg.profile.ssd,
                                             cfg.ssd_capacity_bytes,
                                             cfg.seed + i * 0x101);
      ssd->attach(addr_map::kSsdBar + kSsdBarStride * i,
                  cfg.profile.ssd.link_gb_s);
      // The kernel grants each SSD DMA access to host memory (queues +
      // pinned buffers); SPDK relies on this mapping existing.
      fabric_.iommu().grant(pcie::IommuGrant{
          ssd->port(), addr_map::kHostDramBase, Bytes{cfg.host_memory_bytes},
          true, true});
      ssds_.push_back(std::move(ssd));
    }
  }

  SystemConfig config_;
  std::unique_ptr<sim::Domain> owned_sim_;  // null when on an external domain
  sim::Domain& sim_;
  pcie::Fabric fabric_;
  pcie::HostMemory host_mem_;
  std::vector<std::unique_ptr<nvme::Ssd>> ssds_;
  pcie::PortId root_port_ = pcie::kInvalidPort;
};

}  // namespace snacc::host
