#include "host/nvme_admin.hpp"

#include <cassert>
#include <cstring>

namespace snacc::host {

namespace {

constexpr std::uint16_t kEntries = 16;

Payload u32_payload(std::uint32_t v) {
  std::vector<std::byte> raw(4);
  std::memcpy(raw.data(), &v, 4);
  return Payload::bytes(std::move(raw));
}

Payload u64_payload(std::uint64_t v) {
  std::vector<std::byte> raw(8);
  std::memcpy(raw.data(), &v, 8);
  return Payload::bytes(std::move(raw));
}

}  // namespace

NvmeAdmin::NvmeAdmin(sim::Simulator& sim, pcie::Fabric& fabric,
                     pcie::HostMemory& host_mem, pcie::Addr host_window_base,
                     nvme::Ssd& ssd, Bytes region_local)
    : sim_(sim),
      fabric_(fabric),
      host_mem_(host_mem),
      host_window_base_(host_window_base),
      ssd_(ssd),
      region_(region_local),
      sq_(nvme::QueueConfig{0, host_window_base + region_local, kEntries}),
      cq_(nvme::QueueConfig{
          0, host_window_base + region_local + Bytes{kPageSize}, kEntries}) {}

sim::Task NvmeAdmin::bring_up() {
  const pcie::PortId root = fabric_.root_port();
  const pcie::Addr bar = ssd_.bar_base();
  co_await fabric_.write(root, bar + nvme::reg::kAsq,
                         u64_payload(sq_.config().base.value()));
  co_await fabric_.write(root, bar + nvme::reg::kAcq,
                         u64_payload(cq_.config().base.value()));
  const std::uint32_t aqa = (kEntries - 1) | ((kEntries - 1u) << 16);
  co_await fabric_.write(root, bar + nvme::reg::kAqa, u32_payload(aqa));
  co_await fabric_.write(root, bar + nvme::reg::kCc, u32_payload(1));
  while (true) {
    auto rr = co_await fabric_.read(root, bar + nvme::reg::kCsts, Bytes{4});
    std::uint32_t csts = 0;
    if (rr.data.has_data()) std::memcpy(&csts, rr.data.view().data(), 4);
    if (csts & 1) co_return;
    co_await sim_.delay(us(10));
  }
}

sim::Task NvmeAdmin::identify(nvme::IdentifyController* out) {
  nvme::SubmissionEntry sqe;
  sqe.opcode = static_cast<std::uint8_t>(nvme::AdminOpcode::kIdentify);
  sqe.prp1 = host_window_base_ + region_ + Bytes{2 * kPageSize};
  sqe.cdw10 = 1;
  nvme::Status st = nvme::Status::kSuccess;
  co_await submit_and_wait(sqe, &st);
  assert(st == nvme::Status::kSuccess);
  *out = nvme::IdentifyController::decode(
      host_mem_.store().read(region_.value() + 2 * kPageSize, kPageSize));
}

sim::Task NvmeAdmin::create_io_queues(std::uint16_t qid, pcie::Addr sq_base,
                                      pcie::Addr cq_base, std::uint16_t entries,
                                      nvme::Status* status) {
  nvme::SubmissionEntry create_cq;
  create_cq.opcode = static_cast<std::uint8_t>(nvme::AdminOpcode::kCreateIoCq);
  create_cq.prp1 = cq_base;
  create_cq.cdw10 = qid | (static_cast<std::uint32_t>(entries - 1) << 16);
  create_cq.cdw11 = 1;
  co_await submit_and_wait(create_cq, status);
  if (status != nullptr && *status != nvme::Status::kSuccess) co_return;

  nvme::SubmissionEntry create_sq;
  create_sq.opcode = static_cast<std::uint8_t>(nvme::AdminOpcode::kCreateIoSq);
  create_sq.prp1 = sq_base;
  create_sq.cdw10 = qid | (static_cast<std::uint32_t>(entries - 1) << 16);
  create_sq.cdw11 = (static_cast<std::uint32_t>(qid) << 16) | 1;
  co_await submit_and_wait(create_sq, status);
}

sim::Task NvmeAdmin::command(nvme::SubmissionEntry sqe, nvme::Status* status,
                             std::uint32_t* dw0) {
  (void)dw0;  // DW0 plumbed on demand; current callers need only status
  co_await submit_and_wait(sqe, status);
}

sim::Task NvmeAdmin::submit_and_wait(nvme::SubmissionEntry sqe,
                                     nvme::Status* status) {
  sqe.cid = Cid{next_cid_++};
  auto raw = sqe.encode();
  host_mem_.store().write((sq_.next_slot_addr() - host_window_base_).value(),
                          Payload::bytes({raw.begin(), raw.end()}));
  const std::uint16_t tail = sq_.advance_tail();
  co_await fabric_.write(fabric_.root_port(),
                         ssd_.bar_base() + nvme::reg::sq_tail_doorbell(0),
                         u32_payload(tail));
  while (true) {
    Payload raw_cqe = host_mem_.store().read(
        (cq_.head_addr() - host_window_base_).value(), nvme::kCqeSize);
    if (raw_cqe.has_data()) {
      auto cqe = nvme::CompletionEntry::decode(raw_cqe.view());
      if (cq_.is_new(cqe) && cqe.cid == sqe.cid) {
        sq_.update_head(cqe.sq_head);
        if (status != nullptr) *status = cqe.status;
        const std::uint16_t head = cq_.advance();
        co_await fabric_.write(fabric_.root_port(),
                               ssd_.bar_base() + nvme::reg::cq_head_doorbell(0),
                               u32_payload(head));
        co_return;
      }
    }
    co_await sim_.delay(us(1));
  }
}

}  // namespace snacc::host
