#include "host/snacc_device.hpp"

#include <cassert>

namespace snacc::host {


// ---------------------------------------------------------------------------
// BAR target adapters

/// Submission FIFO window: the controller batch-reads SQEs from here.
class SnaccDevice::SqTarget final : public pcie::Target {
 public:
  explicit SqTarget(SnaccDevice& dev) : dev_(dev) {}
  sim::Future<Payload> mem_read(Bytes local, Bytes len) override {
    sim::Promise<Payload> p(dev_.sys_.sim());
    p.set(dev_.streamer_->serve_sq_read(local, len));
    return p.future();
  }
  sim::Future<sim::Done> mem_write(Bytes, Payload) override {
    sim::Promise<sim::Done> p(dev_.sys_.sim());
    p.set(sim::Done{});  // writes to the SQ window are ignored
    return p.future();
  }

 private:
  SnaccDevice& dev_;
};

/// CQ / reorder-buffer window: the controller posts CQEs here.
class SnaccDevice::CqTarget final : public pcie::Target {
 public:
  explicit CqTarget(SnaccDevice& dev) : dev_(dev) {}
  sim::Future<Payload> mem_read(Bytes, Bytes len) override {
    sim::Promise<Payload> p(dev_.sys_.sim());
    p.set(Payload::phantom(len.value()));
    return p.future();
  }
  sim::Future<sim::Done> mem_write(Bytes local, Payload data) override {
    dev_.streamer_->on_cqe_write(local, data);
    sim::Promise<sim::Done> p(dev_.sys_.sim());
    p.set(sim::Done{});
    return p.future();
  }

 private:
  SnaccDevice& dev_;
};

/// Register-file PRP window (DRAM variants, Fig. 3).
class SnaccDevice::PrpTarget final : public pcie::Target {
 public:
  explicit PrpTarget(SnaccDevice& dev) : dev_(dev) {}
  sim::Future<Payload> mem_read(Bytes local, Bytes len) override {
    sim::Promise<Payload> p(dev_.sys_.sim());
    p.set(dev_.streamer_->serve_prp_read(local, len));
    return p.future();
  }
  sim::Future<sim::Done> mem_write(Bytes, Payload) override {
    sim::Promise<sim::Done> p(dev_.sys_.sim());
    p.set(sim::Done{});
    return p.future();
  }

 private:
  SnaccDevice& dev_;
};

/// URAM window (URAM variant, Fig. 2): lower half is the data buffer, upper
/// half synthesizes PRP-list reads on the fly.
class SnaccDevice::UramWindowTarget final : public pcie::Target {
 public:
  explicit UramWindowTarget(SnaccDevice& dev) : dev_(dev) {}
  sim::Future<Payload> mem_read(Bytes local, Bytes len) override {
    if (dev_.uram_prp_->is_prp_read(local)) {
      sim::Promise<Payload> p(dev_.sys_.sim());
      p.set(dev_.streamer_->serve_prp_read(local, len));
      return p.future();
    }
    return dev_.uram_->read(local.value(), len.value());
  }
  sim::Future<sim::Done> mem_write(Bytes local, Payload data) override {
    assert(!dev_.uram_prp_->is_prp_read(local));
    return dev_.uram_->write(local.value(), std::move(data));
  }

 private:
  SnaccDevice& dev_;
};

// ---------------------------------------------------------------------------

SnaccDevice::SnaccDevice(System& sys, SnaccDeviceConfig cfg)
    : sys_(sys), cfg_(cfg) {
  const auto& profile = sys_.config().profile;
  if (cfg_.shared_fpga_port != pcie::kInvalidPort) {
    fpga_port_ = cfg_.shared_fpga_port;
  } else {
    fpga_port_ = sys_.fabric().add_port("fpga", profile.pcie.host_fpga_gb_s);
  }

  switch (cfg_.streamer.variant) {
    case core::Variant::kUram:
      build_uram_variant();
      break;
    case core::Variant::kOnboardDram:
      build_onboard_dram_variant();
      break;
    case core::Variant::kHostDram:
      build_host_dram_variant();
      break;
    case core::Variant::kHbm:
      build_hbm_variant();
      break;
  }

  core::NvmeStreamer::Resources res;
  res.read_backend = read_backend_.get();
  // The URAM variant shares one buffer (and backend) between reads and
  // writes (Sec. 4.3); the DRAM variants separate them.
  res.write_backend = write_backend_ ? write_backend_.get() : read_backend_.get();
  res.read_ring = read_ring_.get();
  res.write_ring = write_ring_ ? write_ring_.get() : read_ring_.get();
  res.read_region_base = read_region_base_;
  res.write_region_base = write_region_base_;
  res.uram_prp = uram_prp_.get();
  res.regfile_prp = regfile_prp_.get();
  streamer_ = std::make_unique<core::NvmeStreamer>(
      sys_.sim(), sys_.fabric(), fpga_port_, profile.fpga,
      ssd().bar_base(), cfg_.streamer, res);

  // Control windows common to all variants.
  sq_target_ = std::make_unique<SqTarget>(*this);
  cq_target_ = std::make_unique<CqTarget>(*this);
  sys_.fabric().map(bar0() + kSqWindow, streamer_->sq_window_bytes(),
                    sq_target_.get(), fpga_port_);
  sys_.fabric().map(bar0() + kCqWindow, streamer_->cq_window_bytes(),
                    cq_target_.get(), fpga_port_);
  if (regfile_prp_ != nullptr) {
    prp_target_ = std::make_unique<PrpTarget>(*this);
    sys_.fabric().map(bar0() + kPrpWindow, kPrpWindowSize, prp_target_.get(),
                      fpga_port_);
  }
}

SnaccDevice::~SnaccDevice() = default;

void SnaccDevice::build_uram_variant() {
  const auto& fpga = sys_.config().profile.fpga;
  uram_ = std::make_unique<mem::Uram>(sys_.sim(), cfg_.uram_bytes.value(), fpga);
  uram_target_ = std::make_unique<UramWindowTarget>(*this);
  // The 8 MB window (4 MB data + 4 MB PRP half) sits 8 MB-aligned in BAR0.
  sys_.fabric().map(bar0() + kUramWindow, cfg_.uram_bytes * 2,
                    uram_target_.get(), fpga_port_, pcie::MemKind::kFpgaUram);
  uram_prp_ =
      std::make_unique<core::UramPrpEngine>(bar0() + kUramWindow, cfg_.uram_bytes);
  read_backend_ =
      std::make_unique<core::UramBackend>(*uram_, bar0() + kUramWindow);
  write_backend_.reset();  // shared backend: use the read one
  read_ring_ = std::make_unique<core::BufferRing>(sys_.sim(), cfg_.uram_bytes);
  write_ring_.reset();  // shared ring (Sec. 4.3: URAM shared between rd/wr)
  read_region_base_ = Bytes{};
  write_region_base_ = Bytes{};
}

void SnaccDevice::build_onboard_dram_variant() {
  const auto& fpga = sys_.config().profile.fpga;
  const Bytes total = cfg_.dram_buffer_bytes * 2;
  dram_ = std::make_unique<mem::Dram>(sys_.sim(), total.value(), fpga);
  dram_target_ = std::make_unique<pcie::MemoryPortTarget>(*dram_);
  sys_.fabric().map(bar2(), total, dram_target_.get(), fpga_port_,
                    pcie::MemKind::kFpgaDram);
  combined_xlat_ = std::make_unique<core::LinearTranslator>(bar2());
  const std::uint16_t prp_slots = streamer_rob_capacity();
  regfile_prp_ = std::make_unique<core::RegfilePrpEngine>(
      bar0() + kPrpWindow, *combined_xlat_, prp_slots);
  read_backend_ = std::make_unique<core::OnboardDramBackend>(
      sys_.sim(), *dram_, /*region_base=*/Bytes{}, bar2(), fpga);
  write_backend_ = std::make_unique<core::OnboardDramBackend>(
      sys_.sim(), *dram_, /*region_base=*/cfg_.dram_buffer_bytes, bar2(), fpga);
  read_ring_ = std::make_unique<core::BufferRing>(sys_.sim(), cfg_.dram_buffer_bytes);
  write_ring_ = std::make_unique<core::BufferRing>(sys_.sim(), cfg_.dram_buffer_bytes);
  read_region_base_ = Bytes{};
  write_region_base_ = cfg_.dram_buffer_bytes;
}

void SnaccDevice::build_hbm_variant() {
  // Sec. 7 extension: like the on-board DRAM variant but with the buffers
  // interleaved across independent HBM pseudo-channels; the concurrent
  // fill/fetch streams no longer share one controller.
  const auto& fpga = sys_.config().profile.fpga;
  const Bytes total = cfg_.dram_buffer_bytes * 2;
  hbm_ = std::make_unique<mem::Hbm>(sys_.sim(), total.value(), fpga,
                                    /*channels=*/8);
  dram_target_ = std::make_unique<pcie::MemoryPortTarget>(*hbm_);
  sys_.fabric().map(bar2(), total, dram_target_.get(), fpga_port_,
                    pcie::MemKind::kFpgaHbm);
  combined_xlat_ = std::make_unique<core::LinearTranslator>(bar2());
  const std::uint16_t prp_slots = streamer_rob_capacity();
  regfile_prp_ = std::make_unique<core::RegfilePrpEngine>(
      bar0() + kPrpWindow, *combined_xlat_, prp_slots);
  read_backend_ = std::make_unique<core::HbmBackend>(
      sys_.sim(), *hbm_, /*region_base=*/Bytes{}, bar2(), fpga);
  write_backend_ = std::make_unique<core::HbmBackend>(
      sys_.sim(), *hbm_, /*region_base=*/cfg_.dram_buffer_bytes, bar2(), fpga);
  read_ring_ = std::make_unique<core::BufferRing>(sys_.sim(), cfg_.dram_buffer_bytes);
  write_ring_ = std::make_unique<core::BufferRing>(sys_.sim(), cfg_.dram_buffer_bytes);
  read_region_base_ = Bytes{};
  write_region_base_ = cfg_.dram_buffer_bytes;
}

void SnaccDevice::build_host_dram_variant() {
  const auto& profile = sys_.config().profile;
  const Bytes chunk{profile.host.dma_chunk};
  const Bytes total = cfg_.dram_buffer_bytes * 2;
  const std::size_t n_chunks = static_cast<std::size_t>(total / chunk);
  assert((cfg_.effective_pinned_base() + total).value() <=
         sys_.config().host_memory_bytes);
  // The kernel driver allocates DMA-capable 4 MB chunks (Sec. 4.6). In a
  // real system these land at scattered physical addresses; we shuffle them
  // deterministically to keep the chunk-table translation honest.
  pinned_chunks_.resize(n_chunks);
  for (std::size_t i = 0; i < n_chunks; ++i) {
    const std::size_t shuffled = (i * 7 + 3) % n_chunks;
    pinned_chunks_[i] =
        addr_map::kHostDramBase + cfg_.effective_pinned_base() + chunk * shuffled;
  }
  combined_xlat_ =
      std::make_unique<core::ChunkedTranslator>(pinned_chunks_, chunk);
  const std::uint16_t prp_slots = streamer_rob_capacity();
  regfile_prp_ = std::make_unique<core::RegfilePrpEngine>(
      bar0() + kPrpWindow, *combined_xlat_, prp_slots);

  std::vector<pcie::Addr> read_chunks(pinned_chunks_.begin(),
                                      pinned_chunks_.begin() + n_chunks / 2);
  std::vector<pcie::Addr> write_chunks(pinned_chunks_.begin() + n_chunks / 2,
                                       pinned_chunks_.end());
  read_backend_ = std::make_unique<core::HostDramBackend>(
      sys_.sim(), sys_.fabric(), fpga_port_, std::move(read_chunks), chunk,
      profile.fpga);
  write_backend_ = std::make_unique<core::HostDramBackend>(
      sys_.sim(), sys_.fabric(), fpga_port_, std::move(write_chunks), chunk,
      profile.fpga);
  read_ring_ = std::make_unique<core::BufferRing>(sys_.sim(), cfg_.dram_buffer_bytes);
  write_ring_ = std::make_unique<core::BufferRing>(sys_.sim(), cfg_.dram_buffer_bytes);
  read_region_base_ = Bytes{};
  write_region_base_ = cfg_.dram_buffer_bytes;
}

std::uint16_t SnaccDevice::streamer_rob_capacity() const {
  return cfg_.streamer.out_of_order
             ? static_cast<std::uint16_t>(cfg_.streamer.queue_depth * 4)
             : cfg_.streamer.queue_depth;
}

void SnaccDevice::grant_iommu() {
  auto& iommu = sys_.fabric().iommu();
  const pcie::PortId ssd_port = ssd().port();
  // SSD -> FPGA control windows (SQE fetch, CQE post, PRP-list reads).
  iommu.grant({ssd_port, bar0() + kSqWindow, streamer_->sq_window_bytes(), true, false});
  iommu.grant({ssd_port, bar0() + kCqWindow, streamer_->cq_window_bytes(), false, true});
  iommu.grant({ssd_port, bar0() + kPrpWindow, kPrpWindowSize, true, false});
  // SSD -> data buffers.
  switch (cfg_.streamer.variant) {
    case core::Variant::kUram:
      iommu.grant({ssd_port, bar0() + kUramWindow, cfg_.uram_bytes * 2, true, true});
      break;
    case core::Variant::kOnboardDram:
    case core::Variant::kHbm:
      iommu.grant({ssd_port, bar2(), cfg_.dram_buffer_bytes * 2, true, true});
      break;
    case core::Variant::kHostDram:
      for (pcie::Addr base : pinned_chunks_) {
        iommu.grant({ssd_port, base, Bytes{sys_.config().profile.host.dma_chunk},
                     true, true});
      }
      break;
  }
  // FPGA -> SSD doorbells.
  iommu.grant({fpga_port_, ssd().bar_base(), nvme::Ssd::kBarSize, true, true});
  // FPGA -> pinned host buffers (host-DRAM variant fill/drain).
  if (cfg_.streamer.variant == core::Variant::kHostDram) {
    for (pcie::Addr base : pinned_chunks_) {
      iommu.grant({fpga_port_, base,
                   Bytes{sys_.config().profile.host.dma_chunk}, true, true});
    }
  }
}

sim::Task SnaccDevice::init() {
  grant_iommu();
  admin_ = std::make_unique<NvmeAdmin>(sys_.sim(), sys_.fabric(), sys_.host_mem(),
                                       addr_map::kHostDramBase, ssd(),
                                       cfg_.effective_admin_region());
  co_await admin_->bring_up();
  nvme::IdentifyController id;
  co_await admin_->identify(&id);
  assert(id.max_transfer_bytes >= 1 * MiB);
  nvme::Status st = nvme::Status::kSuccess;
  co_await admin_->create_io_queues(cfg_.streamer.nvme_qid,
                                    bar0() + kSqWindow, bar0() + kCqWindow,
                                    streamer_->sq_entries(), &st);
  assert(st == nvme::Status::kSuccess);
  streamer_->start();
  initialized_ = true;
}

FaultStats SnaccDevice::fault_stats() const {
  FaultStats fs;
  nvme::Ssd& ssd = sys_.ssd(cfg_.ssd_index);
  fs.nand_read_faults = ssd.nand().read_faults_injected();
  fs.nand_program_faults = ssd.nand().program_faults_injected();
  fs.ssd_internal_faults = ssd.internal_faults_injected();
  fs.ssd_crash_faults = ssd.crash_faults_injected();
  fs.iommu_injected_faults = sys_.fabric().iommu().injected_faults();
  fs.fabric_injected_timeouts = sys_.fabric().injected_timeouts();
  fs.ssd_error_cqes = ssd.error_cqes();
  fs.ssd_power_cycles = ssd.power_cycles();
  fs.ssd_lost_cache_blocks = ssd.lost_cache_blocks();
  fs.ssd_suppressed_cqes = ssd.suppressed_cqes();
  fs.streamer_errors = streamer_->errors();
  fs.retries = streamer_->retries();
  fs.recovered = streamer_->recovered();
  fs.quarantined = streamer_->quarantined();
  fs.watchdog_timeouts = streamer_->watchdog_timeouts();
  fs.stale_completions = streamer_->stale_completions();
  return fs;
}

}  // namespace snacc::host
