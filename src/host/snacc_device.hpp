// SnaccDevice: assembles the FPGA side of SNAcc for one of the three buffer
// variants (Sec. 4.3/4.5) and performs the one-time host-side initialization
// (Sec. 4.6): admin bring-up, I/O queue creation pointing at the FPGA's SQ
// FIFO / CQ reorder-buffer windows, DMA-chunk allocation for the host-DRAM
// variant, and the IOMMU grants required for P2P.
//
// After init() completes, the whole data path runs without host interaction.
#pragma once

#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "host/nvme_admin.hpp"
#include "host/system.hpp"
#include "mem/dram.hpp"
#include "snacc/buffer_backend.hpp"
#include "snacc/buffer_manager.hpp"
#include "snacc/streamer.hpp"

namespace snacc::host {

struct SnaccDeviceConfig {
  core::StreamerConfig streamer{};
  /// Which SSD this streamer drives (Sec. 7 multi-SSD: one queue pair and
  /// one streamer instance per SSD).
  std::uint32_t ssd_index = 0;
  /// Instance number: shifts all FPGA windows so several streamers coexist
  /// in one FPGA's address space.
  std::uint32_t instance = 0;
  /// Reuse an existing FPGA port (multi-SSD designs share one PCIe link);
  /// kInvalidPort creates a fresh one.
  pcie::PortId shared_fpga_port = pcie::kInvalidPort;
  Bytes uram_bytes{4 * MiB};          // URAM variant buffer
  Bytes dram_buffer_bytes{64 * MiB};  // per direction (DRAM variants)
  /// Host-memory offsets used by this driver (pinned buffers + admin region).
  Bytes pinned_base{256 * MiB};
  Bytes admin_region{192 * MiB};

  /// Effective offsets for this instance.
  Bytes effective_pinned_base() const {
    return pinned_base + Bytes{instance * 256ull * MiB};
  }
  Bytes effective_admin_region() const {
    return admin_region + Bytes{instance * 16ull * MiB};
  }
};

class SnaccDevice {
 public:
  /// BAR0 window layout (local offsets).
  static constexpr Bytes kSqWindow{0x0001'0000};
  static constexpr Bytes kCqWindow{0x0002'0000};
  static constexpr Bytes kPrpWindow{0x0010'0000};
  static constexpr Bytes kPrpWindowSize{1 * MiB};
  static constexpr Bytes kUramWindow{0x0080'0000};  // 8 MB aligned

  SnaccDevice(System& sys, SnaccDeviceConfig cfg = {});
  ~SnaccDevice();

  /// Base addresses of this instance's BAR windows.
  pcie::Addr bar0() const {
    return addr_map::kFpgaBar0 + Bytes{cfg_.instance * 0x0100'0000ull};
  }
  pcie::Addr bar2() const {
    return addr_map::kFpgaBar2 + Bytes{cfg_.instance * 0x1000'0000ull};
  }
  nvme::Ssd& ssd() { return sys_.ssd(cfg_.ssd_index); }

  /// Host-side one-time setup. Blocks (in simulated time) until the NVMe
  /// controller is ready and the I/O queues exist; then starts the streamer.
  sim::Task init();
  bool initialized() const { return initialized_; }

  core::NvmeStreamer& streamer() { return *streamer_; }
  pcie::PortId fpga_port() const { return fpga_port_; }
  core::Variant variant() const { return cfg_.streamer.variant; }
  mem::Dram* onboard_dram() { return dram_.get(); }

  /// Snapshot of fault-injection and recovery counters across every layer
  /// this device touches (NAND, SSD controller, fabric, IOMMU, streamer).
  FaultStats fault_stats() const;

 private:
  // BAR target adapters: thin routers into the streamer / memories.
  class SqTarget;
  class CqTarget;
  class PrpTarget;
  class UramWindowTarget;

  void build_uram_variant();
  void build_onboard_dram_variant();
  void build_host_dram_variant();
  void build_hbm_variant();
  void grant_iommu();
  std::uint16_t streamer_rob_capacity() const;

  System& sys_;
  SnaccDeviceConfig cfg_;
  pcie::PortId fpga_port_ = pcie::kInvalidPort;

  std::unique_ptr<mem::Uram> uram_;
  std::unique_ptr<mem::Dram> dram_;
  std::unique_ptr<mem::Hbm> hbm_;
  std::unique_ptr<core::BufferBackend> read_backend_;
  std::unique_ptr<core::BufferBackend> write_backend_;
  std::unique_ptr<core::BufferRing> read_ring_;
  std::unique_ptr<core::BufferRing> write_ring_;
  std::unique_ptr<core::UramPrpEngine> uram_prp_;
  std::unique_ptr<core::RegfilePrpEngine> regfile_prp_;
  std::unique_ptr<core::AddressTranslator> combined_xlat_;
  std::vector<pcie::Addr> pinned_chunks_;  // host-DRAM variant

  std::unique_ptr<SqTarget> sq_target_;
  std::unique_ptr<CqTarget> cq_target_;
  std::unique_ptr<PrpTarget> prp_target_;
  std::unique_ptr<UramWindowTarget> uram_target_;
  std::unique_ptr<pcie::MemoryPortTarget> dram_target_;

  std::unique_ptr<core::NvmeStreamer> streamer_;
  std::unique_ptr<NvmeAdmin> admin_;
  Bytes read_region_base_;
  Bytes write_region_base_;
  bool initialized_ = false;
};

}  // namespace snacc::host
