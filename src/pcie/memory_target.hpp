// Ready-made fabric targets: a host-DRAM window and an adapter exposing any
// mem::MemoryPort (URAM / on-board DRAM) as a BAR target.
#pragma once

#include <memory>
#include <utility>

#include "mem/memory_port.hpp"
#include "mem/sparse_memory.hpp"
#include "pcie/fabric.hpp"

namespace snacc::pcie {

/// Host DRAM as seen from the PCIe fabric (DMA to/from pinned buffers).
/// Service time: DDR4 channel bandwidth plus a fixed access latency; the
/// root-complex traversal is already charged by the fabric.
class HostMemory final : public Target {
 public:
  // Backing-store capacities stay raw by convention: the mem layer is below
  // the typed domain boundary.  snacc-lint: allow(bare-uint-signature)
  HostMemory(sim::Simulator& sim, std::uint64_t size, double dram_gb_s = 38.0,
             TimePs access_latency = ns(95))
      : sim_(sim), store_(size), bus_(sim, dram_gb_s), latency_(access_latency) {}

  sim::Future<Payload> mem_read(Bytes local, Bytes len) override {
    sim::Promise<Payload> done(sim_);
    auto fut = done.future();
    sim_.spawn(serve_read(local, len, std::move(done)));
    return fut;
  }

  sim::Future<sim::Done> mem_write(Bytes local, Payload data) override {
    sim::Promise<sim::Done> done(sim_);
    auto fut = done.future();
    sim_.spawn(serve_write(local, std::move(data), std::move(done)));
    return fut;
  }

  mem::SparseMemory& store() { return store_; }

 private:
  sim::Task serve_read(Bytes local, Bytes len, sim::Promise<Payload> done) {
    // Access latency pipelines with other requests; only the data transfer
    // occupies the channel.
    co_await bus_.acquire(len.value());
    co_await sim_.delay(latency_);
    done.set(store_.read(local.value(), len.value()));
  }
  sim::Task serve_write(Bytes local, Payload data, sim::Promise<sim::Done> done) {
    co_await bus_.acquire(data.size());
    co_await sim_.delay(latency_);
    store_.write(local.value(), data);
    done.set(sim::Done{});
  }

  sim::Simulator& sim_;
  mem::SparseMemory store_;
  sim::RateServer bus_;
  TimePs latency_;
};

/// Adapts a mem::MemoryPort into a fabric Target (e.g. the FPGA's on-board
/// DRAM window in BAR2, Sec. 4.5).
class MemoryPortTarget final : public Target {
 public:
  explicit MemoryPortTarget(mem::MemoryPort& port) : port_(port) {}

  sim::Future<Payload> mem_read(Bytes local, Bytes len) override {
    return port_.read(local.value(), len.value());
  }
  sim::Future<sim::Done> mem_write(Bytes local, Payload data) override {
    return port_.write(local.value(), std::move(data));
  }

 private:
  mem::MemoryPort& port_;
};

}  // namespace snacc::pcie
