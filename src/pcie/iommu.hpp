// IOMMU model: device-initiated transactions are validated against a grant
// table (Sec. 4: "For Direct Peer-to-Peer accesses to function properly,
// permissions must be granted by the IOMMU"). Host-CPU-initiated traffic is
// never checked. Faults are counted globally and per initiator and fail the
// transaction; the paper's observation that disabling the IOMMU has no
// bandwidth effect holds here by construction (lookup is modeled as free)
// and is demonstrated by bench/ablation_iommu.
//
// Fault injection: an armed fault plan flips otherwise-allowed checks to
// denials, optionally restricted to an address window (e.g. only the
// streamer's CQ window, to model a dropped completion). Injected denials are
// counted separately so tests can distinguish them from real policy faults.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"

namespace snacc::pcie {

using Addr = std::uint64_t;

/// Identifies an endpoint port on the fabric.
enum class PortId : std::uint16_t {};

inline constexpr PortId kInvalidPort{0xFFFF};

struct IommuGrant {
  PortId initiator;
  Addr base = 0;
  std::uint64_t size = 0;
  bool allow_read = true;
  bool allow_write = true;
};

class Iommu {
 public:
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void grant(IommuGrant g) { grants_.push_back(g); }
  void revoke_all(PortId initiator);

  /// Arms injected permission flips: checks that would be allowed are denied
  /// when the plan fires. With `window_size` nonzero only checks entirely
  /// inside [window_base, window_base+window_size) consume plan events.
  void set_fault_plan(const fault::FaultPlan& plan, Addr window_base = 0,
                      std::uint64_t window_size = 0);

  /// True if `initiator` may access [addr, addr+len). Always true when the
  /// IOMMU is disabled (passthrough) or for host-originated traffic (the
  /// caller skips the check for the root port).
  bool allowed(PortId initiator, Addr addr, std::uint64_t len, bool write) const;

  /// Like allowed(), but counts a fault on denial and applies the injected
  /// permission flips.
  bool check(PortId initiator, Addr addr, std::uint64_t len, bool write);

  std::uint64_t faults() const { return faults_; }
  std::uint64_t faults_for(PortId initiator) const;
  std::uint64_t injected_faults() const { return injected_faults_; }
  std::size_t grant_count() const { return grants_.size(); }

 private:
  bool enabled_ = true;
  std::vector<IommuGrant> grants_;
  std::uint64_t faults_ = 0;
  std::uint64_t injected_faults_ = 0;
  std::unordered_map<std::uint16_t, std::uint64_t> faults_by_initiator_;
  fault::Injector flip_;
  Addr flip_base_ = 0;
  std::uint64_t flip_size_ = 0;
};

}  // namespace snacc::pcie
