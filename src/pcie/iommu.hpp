// IOMMU model: device-initiated transactions are validated against a grant
// table (Sec. 4: "For Direct Peer-to-Peer accesses to function properly,
// permissions must be granted by the IOMMU"). Host-CPU-initiated traffic is
// never checked. Faults are counted and fail the transaction; the paper's
// observation that disabling the IOMMU has no bandwidth effect holds here by
// construction (lookup is modeled as free) and is demonstrated by
// bench/ablation_iommu.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace snacc::pcie {

using Addr = std::uint64_t;

/// Identifies an endpoint port on the fabric.
enum class PortId : std::uint16_t {};

inline constexpr PortId kInvalidPort{0xFFFF};

struct IommuGrant {
  PortId initiator;
  Addr base = 0;
  std::uint64_t size = 0;
  bool allow_read = true;
  bool allow_write = true;
};

class Iommu {
 public:
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void grant(IommuGrant g) { grants_.push_back(g); }
  void revoke_all(PortId initiator);

  /// True if `initiator` may access [addr, addr+len). Always true when the
  /// IOMMU is disabled (passthrough) or for host-originated traffic (the
  /// caller skips the check for the root port).
  bool allowed(PortId initiator, Addr addr, std::uint64_t len, bool write) const;

  /// Like allowed(), but counts a fault on denial.
  bool check(PortId initiator, Addr addr, std::uint64_t len, bool write);

  std::uint64_t faults() const { return faults_; }
  std::size_t grant_count() const { return grants_.size(); }

 private:
  bool enabled_ = true;
  std::vector<IommuGrant> grants_;
  std::uint64_t faults_ = 0;
};

}  // namespace snacc::pcie
