// IOMMU model: device-initiated transactions are validated against a grant
// table (Sec. 4: "For Direct Peer-to-Peer accesses to function properly,
// permissions must be granted by the IOMMU"). Host-CPU-initiated traffic is
// never checked. Faults are counted globally and per initiator and fail the
// transaction; the paper's observation that disabling the IOMMU has no
// bandwidth effect holds here by construction (lookup is modeled as free)
// and is demonstrated by bench/ablation_iommu.
//
// Fault injection: an armed fault plan flips otherwise-allowed checks to
// denials, optionally restricted to an address window (e.g. only the
// streamer's CQ window, to model a dropped completion). Injected denials are
// counted separately so tests can distinguish them from real policy faults.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "fault/fault.hpp"

namespace snacc::pcie {

/// Global PCIe bus address (see common/units.hpp for the domain rules).
using Addr = BusAddr;

/// Identifies an endpoint port on the fabric.
enum class PortId : std::uint16_t {};

inline constexpr PortId kInvalidPort{0xFFFF};

struct IommuGrant {
  PortId initiator;
  Addr base;
  Bytes size;
  bool allow_read = true;
  bool allow_write = true;
};

class Iommu {
 public:
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void grant(IommuGrant g) { grants_.push_back(g); }
  void revoke_all(PortId initiator);

  /// Arms injected permission flips: checks that would be allowed are denied
  /// when the plan fires. With `window_size` nonzero only checks entirely
  /// inside [window_base, window_base+window_size) consume plan events.
  void set_fault_plan(const fault::FaultPlan& plan, Addr window_base = Addr{},
                      Bytes window_size = Bytes{});

  /// True if `initiator` may access [addr, addr+len). Always true when the
  /// IOMMU is disabled (passthrough) or for host-originated traffic (the
  /// caller skips the check for the root port).
  bool allowed(PortId initiator, Addr addr, Bytes len, bool write) const;

  /// Like allowed(), but counts a fault on denial and applies the injected
  /// permission flips.
  bool check(PortId initiator, Addr addr, Bytes len, bool write);

  std::uint64_t faults() const { return faults_; }
  std::uint64_t faults_for(PortId initiator) const;

  /// Per-initiator fault counts with keys sorted ascending, so dumps and
  /// bench reports are deterministic regardless of hash-map iteration order.
  std::vector<std::pair<std::uint16_t, std::uint64_t>> faults_by_initiator()
      const;
  std::uint64_t injected_faults() const { return injected_faults_; }
  std::size_t grant_count() const { return grants_.size(); }

 private:
  bool enabled_ = true;
  std::vector<IommuGrant> grants_;
  std::uint64_t faults_ = 0;
  std::uint64_t injected_faults_ = 0;
  // Keyed lookups only; any dump must go through faults_by_initiator(),
  // which sorts, so unordered iteration order never reaches output.
  std::unordered_map<std::uint16_t, std::uint64_t> faults_by_initiator_;
  fault::Injector flip_;
  Addr flip_base_;
  Bytes flip_size_;
};

}  // namespace snacc::pcie
