#include "pcie/fabric.hpp"

#include <cassert>
#include <utility>

namespace snacc::pcie {

Fabric::Fabric(sim::Simulator& sim, const PcieProfile& profile)
    : sim_(sim), profile_(profile) {}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kUnmappedRead:
      return "unmapped-read";
    case FaultKind::kUnmappedWrite:
      return "unmapped-write";
    case FaultKind::kIommuRead:
      return "iommu-read";
    case FaultKind::kIommuWriteDrop:
      return "iommu-write-drop";
    case FaultKind::kCompletionTimeout:
      return "completion-timeout";
  }
  return "?";
}

PortId Fabric::add_port(std::string name, double link_gb_s) {
  auto port = std::make_unique<Port>(Port{
      std::move(name),
      sim::RateServer(sim_, link_gb_s),
      sim::RateServer(sim_, link_gb_s),
      link_gb_s,
  });
  ports_.push_back(std::move(port));
  port_faults_.emplace_back();
  return PortId{static_cast<std::uint16_t>(ports_.size() - 1)};
}

const PortFaultStats& Fabric::port_faults(PortId p) const {
  return port_faults_.at(static_cast<std::size_t>(p));
}

void Fabric::record_fault(FaultKind kind, PortId initiator, Addr addr,
                          Bytes len) {
  last_fault_ = FaultRecord{kind, initiator, addr, len, sim_.now()};
  PortFaultStats& pf = port_faults_.at(static_cast<std::size_t>(initiator));
  switch (kind) {
    case FaultKind::kUnmappedRead:
    case FaultKind::kUnmappedWrite:
      ++pf.unmapped;
      break;
    case FaultKind::kIommuRead:
      ++pf.iommu_read_faults;
      break;
    case FaultKind::kIommuWriteDrop:
      ++pf.iommu_write_drops;
      break;
    case FaultKind::kCompletionTimeout:
      ++pf.completion_timeouts;
      break;
  }
}

void Fabric::degrade_link(PortId p, double factor, TimePs duration) {
  Port& port = *ports_.at(static_cast<std::size_t>(p));
  port.tx.set_rate(port.base_gb_s * factor);
  port.rx.set_rate(port.base_gb_s * factor);
  sim_.spawn(restore_link(p, sim_.now() + duration));
}

sim::Task Fabric::restore_link(PortId p, TimePs at) {
  co_await sim_.delay_until(at);
  Port& port = *ports_.at(static_cast<std::size_t>(p));
  port.tx.set_rate(port.base_gb_s);
  port.rx.set_rate(port.base_gb_s);
}

void Fabric::map(Addr base, Bytes size, Target* target, PortId owner,
                 MemKind kind) {
  assert(target != nullptr);
  // Reject overlapping windows: they would make routing ambiguous.
  auto next = windows_.upper_bound(base);
  if (next != windows_.end()) assert(base + size <= next->second.base);
  if (next != windows_.begin()) {
    auto prev = std::prev(next);
    assert(prev->second.base + prev->second.size <= base);
  }
  windows_.emplace(base, Window{base, size, target, owner, kind});
}

MemKind Fabric::kind_at(Addr addr) const {
  const Window* w = route(addr, Bytes{1});
  return w ? w->kind : MemKind::kDevice;
}

PortId Fabric::owner_at(Addr addr) const {
  const Window* w = route(addr, Bytes{1});
  return w ? w->owner : kInvalidPort;
}

void Fabric::unmap(Addr base) { windows_.erase(base); }

const Fabric::Window* Fabric::route(Addr addr, Bytes len) const {
  auto it = windows_.upper_bound(addr);
  if (it == windows_.begin()) return nullptr;
  --it;
  const Window& w = it->second;
  if (addr < w.base || addr + len > w.base + w.size) return nullptr;
  return &w;
}

Bytes Fabric::wire_bytes(Bytes payload) const {
  const std::uint64_t tlps =
      payload.is_zero()
          ? 1
          : (payload + Bytes{profile_.max_payload - 1}) /
                Bytes{profile_.max_payload};
  return payload + Bytes{tlps * profile_.tlp_header_bytes};
}

TimePs Fabric::read_rtt(PortId src, PortId dst) const {
  const bool host_path = (src == root_) || (dst == root_);
  return host_path ? profile_.host_read_rtt : profile_.p2p_read_rtt;
}

const PathStats& Fabric::path(PortId src, PortId dst) const {
  static const PathStats kEmpty{};
  auto it = paths_.find({static_cast<std::uint16_t>(src),
                         static_cast<std::uint16_t>(dst)});
  return it == paths_.end() ? kEmpty : it->second;
}

PathStats& Fabric::path_mut(PortId src, PortId dst) {
  return paths_[{static_cast<std::uint16_t>(src),
                 static_cast<std::uint16_t>(dst)}];
}

std::uint64_t Fabric::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& [key, stats] : paths_) sum += stats.bytes();
  return sum;
}

const std::string& Fabric::port_name(PortId p) const {
  return ports_.at(static_cast<std::size_t>(p))->name;
}

sim::Future<ReadResult> Fabric::read(PortId src, Addr addr, Bytes len,
                                     bool control) {
  sim::Promise<ReadResult> done(sim_);
  auto fut = done.future();
  sim_.spawn(do_read(src, addr, len, control, std::move(done)));
  return fut;
}

sim::Future<sim::Done> Fabric::write(PortId src, Addr addr, Payload data) {
  sim::Promise<sim::Done> done(sim_);
  auto fut = done.future();
  sim_.spawn(do_write(src, addr, std::move(data), std::move(done)));
  return fut;
}

namespace {
/// TLPs up to one max-payload packet interleave with queued bulk traffic on
/// a real link (transaction-level fairness); modelling them through the
/// same FIFO server would make doorbells and completions queue behind
/// megabytes of data. Small transactions therefore bypass the server and
/// only pay their own wire time.
constexpr Bytes kInterleaveBypassBytes{512};
}  // namespace

sim::Task Fabric::do_read(PortId src, Addr addr, Bytes len, bool control,
                          sim::Promise<ReadResult> done) {
  const Window* w = route(addr, len);
  if (w == nullptr) {
    ++unmapped_errors_;
    record_fault(FaultKind::kUnmappedRead, src, addr, len);
    co_await sim_.delay(profile_.host_read_rtt);
    done.set(ReadResult{Payload::phantom(len), false});
    co_return;
  }
  if (src != root_ && !iommu_.check(src, addr, len, /*write=*/false)) {
    record_fault(FaultKind::kIommuRead, src, addr, len);
    co_await sim_.delay(profile_.host_read_rtt);
    done.set(ReadResult{Payload::phantom(len), false});
    co_return;
  }
  if (read_loss_.armed() && read_loss_.fire()) {
    // Lost non-posted TLP: no completion ever arrives; the initiator's
    // completion timer expires and the transaction fails like a UR/CA.
    record_fault(FaultKind::kCompletionTimeout, src, addr, len);
    co_await sim_.delay(profile_.completion_timeout);
    done.set(ReadResult{Payload::phantom(len), false});
    co_return;
  }

  Port& sp = *ports_.at(static_cast<std::size_t>(src));
  Port& dp = *ports_.at(static_cast<std::size_t>(w->owner));
  const TimePs rtt = read_rtt(src, w->owner);

  // Request TLP: header-only, interleaves with bulk traffic.
  co_await sim_.delay(transfer_time(profile_.tlp_header_bytes, sp.tx.rate()));
  co_await sim_.delay(rtt / 2);

  auto served = w->target->mem_read(addr - w->base, len);
  Payload data = co_await served;

  // Completion(s) with data serialize on the target's TX link, then travel
  // back. (A same-port read -- e.g. SSD reading its own BAR -- never happens.)
  if (control || len <= kInterleaveBypassBytes) {
    co_await sim_.delay(transfer_time(wire_bytes(len), dp.tx.rate()));
  } else {
    co_await dp.tx.acquire(wire_bytes(len));
    // The completion also lands on the initiator's RX lane -- this is what
    // caps aggregate inbound bandwidth when one port reads many sources.
    co_await sp.rx.acquire(wire_bytes(len));
  }
  co_await sim_.delay(rtt / 2);

  PathStats& ps = path_mut(src, w->owner);
  // snacc-lint: allow(value-escape): aggregate traffic counters are raw totals
  ps.read_bytes += len.value();
  ps.reads += 1;
  done.set(ReadResult{std::move(data), true});
}

sim::Task Fabric::do_write(PortId src, Addr addr, Payload data,
                           sim::Promise<sim::Done> done) {
  const Bytes len{data.size()};
  const Window* w = route(addr, len);
  if (w == nullptr) {
    ++unmapped_errors_;
    record_fault(FaultKind::kUnmappedWrite, src, addr, len);
    done.set(sim::Done{});
    co_return;
  }
  if (src != root_ && !iommu_.check(src, addr, len, /*write=*/true)) {
    // Posted writes have no completion to fail: the TLP vanishes at the
    // IOMMU exactly as on hardware. The drop is *observable* though --
    // counted per initiator and exposed via last_fault() -- so watchdogs
    // and tests can see what the wire never reports.
    record_fault(FaultKind::kIommuWriteDrop, src, addr, len);
    done.set(sim::Done{});
    co_return;
  }

  Port& sp = *ports_.at(static_cast<std::size_t>(src));
  Port& dp = *ports_.at(static_cast<std::size_t>(w->owner));

  if (len <= kInterleaveBypassBytes) {
    // Doorbells and small control writes interleave with bulk traffic.
    co_await sim_.delay(transfer_time(wire_bytes(len), sp.tx.rate()));
    co_await sim_.delay(profile_.posted_write_latency);
  } else {
    co_await sp.tx.acquire(wire_bytes(len));
    co_await sim_.delay(profile_.posted_write_latency);
    co_await dp.rx.acquire(wire_bytes(len));
  }

  PathStats& ps = path_mut(src, w->owner);
  // snacc-lint: allow(value-escape): aggregate traffic counters are raw totals
  ps.write_bytes += len.value();
  ps.writes += 1;

  co_await w->target->mem_write(addr - w->base, std::move(data));
  done.set(sim::Done{});
}

}  // namespace snacc::pcie
