// Transaction-level PCIe fabric.
//
// Topology: endpoints (host root complex, FPGA, one or more NVMe SSDs) hang
// off a switch/root-complex that routes by address through a global memory
// map of windows (host DRAM ranges and device BARs). Each endpoint port has
// independent TX/RX bandwidth servers (full duplex); transactions are charged
// TLP header overhead per max-payload-size packet.
//
// Reads are split transactions (request -> target service -> completion with
// data); writes are posted. Device-initiated transactions pass the IOMMU.
// Every byte is accounted per (initiator, target-port) path -- the raw data
// for Figure 7.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/calibration.hpp"
#include "common/payload.hpp"
#include "pcie/iommu.hpp"
#include "sim/future.hpp"
#include "sim/rate_server.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace snacc::pcie {

/// A device-side handler for memory transactions hitting one of its windows.
/// Addresses passed in are *local* to the window base. Implementations model
/// their own internal service time.
class Target {
 public:
  virtual ~Target() = default;
  virtual sim::Future<Payload> mem_read(Addr local_addr, std::uint64_t len) = 0;
  virtual sim::Future<sim::Done> mem_write(Addr local_addr, Payload data) = 0;
};

/// What backs a mapped window -- used by the NVMe controller model to select
/// the fetch-path overhead term (host vs. peer URAM vs. peer DRAM).
enum class MemKind { kHostDram, kFpgaUram, kFpgaDram, kFpgaHbm, kDevice };

/// Result of a fabric read; `ok` is false on an IOMMU fault or unmapped
/// address (returned as all-phantom data, matching a real UR/CA completion).
/// Special members are user-declared to dodge the g++ 12 aggregate-move
/// miscompilation described in sim/channel.hpp.
struct ReadResult {
  Payload data;
  bool ok = true;

  ReadResult() = default;
  ReadResult(Payload d, bool o) : data(std::move(d)), ok(o) {}
  ReadResult(ReadResult&&) noexcept = default;
  ReadResult& operator=(ReadResult&&) noexcept = default;
  ReadResult(const ReadResult&) = default;
  ReadResult& operator=(const ReadResult&) = default;
};

struct PathStats {
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes() const { return read_bytes + write_bytes; }
};

class Fabric {
 public:
  Fabric(sim::Simulator& sim, const PcieProfile& profile);

  /// Adds an endpoint with the given full-duplex link rate. The first port
  /// added is conventionally the host root complex; mark it with
  /// `set_root_port` (root-initiated traffic bypasses the IOMMU and sees
  /// root-complex latency).
  PortId add_port(std::string name, double link_gb_s);
  void set_root_port(PortId p) { root_ = p; }
  PortId root_port() const { return root_; }

  /// Maps [base, base+size) in the global address space onto `target`,
  /// owned by endpoint `owner` (whose RX link serializes inbound traffic).
  void map(Addr base, std::uint64_t size, Target* target, PortId owner,
           MemKind kind = MemKind::kDevice);
  void unmap(Addr base);

  /// Kind of the window containing `addr` (kDevice if unmapped).
  MemKind kind_at(Addr addr) const;
  /// Owner port of the window containing `addr` (kInvalidPort if unmapped).
  PortId owner_at(Addr addr) const;

  /// Initiates a memory read of `len` bytes at global address `addr`.
  /// `control` marks protocol traffic (SQE fetches, PRP-list reads,
  /// doorbell-adjacent reads): it interleaves with queued bulk data at TLP
  /// granularity instead of waiting behind it, paying only its own wire
  /// time. Data-path reads must leave it false so link bandwidth is
  /// conserved.
  sim::Future<ReadResult> read(PortId src, Addr addr, std::uint64_t len,
                               bool control = false);

  /// Initiates a posted memory write. The returned future completes when the
  /// target has accepted the data (awaiting it is optional).
  sim::Future<sim::Done> write(PortId src, Addr addr, Payload data);

  Iommu& iommu() { return iommu_; }
  const PcieProfile& profile() const { return profile_; }
  sim::Simulator& simulator() { return sim_; }

  const PathStats& path(PortId src, PortId dst) const;
  std::uint64_t total_bytes() const;
  std::uint64_t unmapped_errors() const { return unmapped_errors_; }
  const std::string& port_name(PortId p) const;
  std::size_t port_count() const { return ports_.size(); }

  /// Round-trip read latency from `src` to the port owning `addr`
  /// (host-path vs peer-to-peer).
  TimePs read_rtt(PortId src, PortId dst) const;

 private:
  struct Port {
    std::string name;
    sim::RateServer tx;
    sim::RateServer rx;
  };
  struct Window {
    Addr base;
    std::uint64_t size;
    Target* target;
    PortId owner;
    MemKind kind;
  };

  const Window* route(Addr addr, std::uint64_t len) const;
  std::uint64_t wire_bytes(std::uint64_t payload_bytes) const;
  sim::Task do_read(PortId src, Addr addr, std::uint64_t len, bool control,
                    sim::Promise<ReadResult> done);
  sim::Task do_write(PortId src, Addr addr, Payload data,
                     sim::Promise<sim::Done> done);
  PathStats& path_mut(PortId src, PortId dst);

  sim::Simulator& sim_;
  PcieProfile profile_;
  Iommu iommu_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::map<Addr, Window> windows_;  // keyed by base, ordered for routing
  std::map<std::pair<std::uint16_t, std::uint16_t>, PathStats> paths_;
  PortId root_ = kInvalidPort;
  std::uint64_t unmapped_errors_ = 0;
};

}  // namespace snacc::pcie
