// Transaction-level PCIe fabric.
//
// Topology: endpoints (host root complex, FPGA, one or more NVMe SSDs) hang
// off a switch/root-complex that routes by address through a global memory
// map of windows (host DRAM ranges and device BARs). Each endpoint port has
// independent TX/RX bandwidth servers (full duplex); transactions are charged
// TLP header overhead per max-payload-size packet.
//
// Reads are split transactions (request -> target service -> completion with
// data); writes are posted. Device-initiated transactions pass the IOMMU.
// Every byte is accounted per (initiator, target-port) path -- the raw data
// for Figure 7.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "common/calibration.hpp"
#include "common/payload.hpp"
#include "fault/fault.hpp"
#include "pcie/iommu.hpp"
#include "sim/future.hpp"
#include "sim/rate_server.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace snacc::pcie {

/// A device-side handler for memory transactions hitting one of its windows.
/// Addresses passed in are *local* to the window base. Implementations model
/// their own internal service time.
class Target {
 public:
  virtual ~Target() = default;
  virtual sim::Future<Payload> mem_read(Bytes local_off, Bytes len) = 0;
  virtual sim::Future<sim::Done> mem_write(Bytes local_off, Payload data) = 0;
};

/// What backs a mapped window -- used by the NVMe controller model to select
/// the fetch-path overhead term (host vs. peer URAM vs. peer DRAM).
enum class MemKind { kHostDram, kFpgaUram, kFpgaDram, kFpgaHbm, kDevice };

/// Result of a fabric read; `ok` is false on an IOMMU fault or unmapped
/// address (returned as all-phantom data, matching a real UR/CA completion).
/// Special members are user-declared to dodge the g++ 12 aggregate-move
/// miscompilation described in sim/channel.hpp.
struct ReadResult {
  Payload data;
  bool ok = true;

  ReadResult() = default;
  ReadResult(Payload d, bool o) : data(std::move(d)), ok(o) {}
  ReadResult(ReadResult&&) noexcept = default;
  ReadResult& operator=(ReadResult&&) noexcept = default;
  ReadResult(const ReadResult&) = default;
  ReadResult& operator=(const ReadResult&) = default;
};

struct PathStats {
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes() const { return read_bytes + write_bytes; }
};

/// What went wrong with a transaction the fabric had to fail or drop.
enum class FaultKind {
  kUnmappedRead,
  kUnmappedWrite,
  kIommuRead,        // non-posted: the initiator sees !ok
  kIommuWriteDrop,   // posted write silently dropped on the wire
  kCompletionTimeout // injected lost non-posted TLP
};

const char* fault_kind_name(FaultKind kind);

/// Record of the most recent fabric-level fault, for tests and watchdogs
/// that need to observe what a real system would log in AER/IOMMU registers.
struct FaultRecord {
  FaultKind kind = FaultKind::kUnmappedRead;
  PortId initiator = kInvalidPort;
  Addr addr;
  Bytes len;
  TimePs time;
};

/// Per-initiator fault accounting (one entry per port).
struct PortFaultStats {
  std::uint64_t iommu_write_drops = 0;
  std::uint64_t iommu_read_faults = 0;
  std::uint64_t unmapped = 0;
  std::uint64_t completion_timeouts = 0;
  std::uint64_t total() const {
    return iommu_write_drops + iommu_read_faults + unmapped +
           completion_timeouts;
  }
};

class Fabric {
 public:
  Fabric(sim::Simulator& sim, const PcieProfile& profile);

  /// Adds an endpoint with the given full-duplex link rate. The first port
  /// added is conventionally the host root complex; mark it with
  /// `set_root_port` (root-initiated traffic bypasses the IOMMU and sees
  /// root-complex latency).
  PortId add_port(std::string name, double link_gb_s);
  void set_root_port(PortId p) { root_ = p; }
  PortId root_port() const { return root_; }

  /// Maps [base, base+size) in the global address space onto `target`,
  /// owned by endpoint `owner` (whose RX link serializes inbound traffic).
  void map(Addr base, Bytes size, Target* target, PortId owner,
           MemKind kind = MemKind::kDevice);
  void unmap(Addr base);

  /// Kind of the window containing `addr` (kDevice if unmapped).
  MemKind kind_at(Addr addr) const;
  /// Owner port of the window containing `addr` (kInvalidPort if unmapped).
  PortId owner_at(Addr addr) const;

  /// Initiates a memory read of `len` bytes at global address `addr`.
  /// `control` marks protocol traffic (SQE fetches, PRP-list reads,
  /// doorbell-adjacent reads): it interleaves with queued bulk data at TLP
  /// granularity instead of waiting behind it, paying only its own wire
  /// time. Data-path reads must leave it false so link bandwidth is
  /// conserved.
  sim::Future<ReadResult> read(PortId src, Addr addr, Bytes len,
                               bool control = false);

  /// Initiates a posted memory write. The returned future completes when the
  /// target has accepted the data (awaiting it is optional).
  sim::Future<sim::Done> write(PortId src, Addr addr, Payload data);

  Iommu& iommu() { return iommu_; }
  const PcieProfile& profile() const { return profile_; }
  sim::Simulator& simulator() { return sim_; }

  /// Smallest latency any transaction pays to cross the fabric -- what this
  /// link would contribute as conservative lookahead if it were a domain
  /// boundary. It is NOT one today: fabric transactions touch target memory
  /// through synchronous calls (an SSD DMA writes host DRAM directly), so
  /// everything on one fabric must share one event domain and clusters cut
  /// at the Ethernet wires instead (see docs/MODEL.md, "Domains &
  /// conservative sync").
  TimePs lookahead() const { return profile_.posted_write_latency; }

  const PathStats& path(PortId src, PortId dst) const;
  std::uint64_t total_bytes() const;
  std::uint64_t unmapped_errors() const { return unmapped_errors_; }
  const std::string& port_name(PortId p) const;
  std::size_t port_count() const { return ports_.size(); }

  // --- fault observation & injection ---------------------------------------
  /// Most recent fabric-level fault (IOMMU drop, unmapped access, injected
  /// timeout); nullopt while the fabric has been fault-free.
  const std::optional<FaultRecord>& last_fault() const { return last_fault_; }
  /// Fault counts for transactions initiated by `p`.
  const PortFaultStats& port_faults(PortId p) const;

  /// Arms lost-TLP injection on non-posted requests (reads): a fired event
  /// makes the read miss its completion -- the initiator stalls for
  /// `profile().completion_timeout` and then sees !ok, like a real
  /// completion-timeout AER event.
  void set_read_loss_plan(const fault::FaultPlan& plan) {
    read_loss_ = fault::Injector(plan);
  }
  std::uint64_t injected_timeouts() const { return read_loss_.fired(); }

  /// Opens a link-degradation window: both directions of `p` run at
  /// `factor` of nominal rate for `duration`, then recover. Overlapping
  /// windows simply extend/override each other (last restore wins).
  void degrade_link(PortId p, double factor, TimePs duration);

  /// Round-trip read latency from `src` to the port owning `addr`
  /// (host-path vs peer-to-peer).
  TimePs read_rtt(PortId src, PortId dst) const;

 private:
  struct Port {
    std::string name;
    sim::RateServer tx;
    sim::RateServer rx;
    double base_gb_s = 0.0;  // nominal rate, restored after degradation
  };
  struct Window {
    Addr base;
    Bytes size;
    Target* target;
    PortId owner;
    MemKind kind;
  };

  const Window* route(Addr addr, Bytes len) const;
  Bytes wire_bytes(Bytes payload) const;
  sim::Task do_read(PortId src, Addr addr, Bytes len, bool control,
                    sim::Promise<ReadResult> done);
  sim::Task do_write(PortId src, Addr addr, Payload data,
                     sim::Promise<sim::Done> done);
  sim::Task restore_link(PortId p, TimePs at);
  PathStats& path_mut(PortId src, PortId dst);
  void record_fault(FaultKind kind, PortId initiator, Addr addr, Bytes len);

  sim::Simulator& sim_;
  PcieProfile profile_;
  Iommu iommu_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::map<Addr, Window> windows_;  // keyed by base, ordered for routing
  std::map<std::pair<std::uint16_t, std::uint16_t>, PathStats> paths_;
  PortId root_ = kInvalidPort;
  std::uint64_t unmapped_errors_ = 0;
  std::optional<FaultRecord> last_fault_;
  std::vector<PortFaultStats> port_faults_;
  fault::Injector read_loss_;
};

}  // namespace snacc::pcie
