#include "pcie/iommu.hpp"

#include <algorithm>

namespace snacc::pcie {

void Iommu::revoke_all(PortId initiator) {
  std::erase_if(grants_,
                [initiator](const IommuGrant& g) { return g.initiator == initiator; });
}

bool Iommu::allowed(PortId initiator, Addr addr, std::uint64_t len,
                    bool write) const {
  if (!enabled_) return true;
  // A single grant must cover the whole range (grants are whole windows:
  // BARs or pinned buffers, so partial coverage would be a setup bug).
  for (const IommuGrant& g : grants_) {
    if (g.initiator != initiator) continue;
    if (addr < g.base || addr + len > g.base + g.size) continue;
    if (write ? g.allow_write : g.allow_read) return true;
  }
  return false;
}

bool Iommu::check(PortId initiator, Addr addr, std::uint64_t len, bool write) {
  if (allowed(initiator, addr, len, write)) return true;
  ++faults_;
  return false;
}

}  // namespace snacc::pcie
