#include "pcie/iommu.hpp"

#include <algorithm>

namespace snacc::pcie {

void Iommu::revoke_all(PortId initiator) {
  std::erase_if(grants_,
                [initiator](const IommuGrant& g) { return g.initiator == initiator; });
}

void Iommu::set_fault_plan(const fault::FaultPlan& plan, Addr window_base,
                           Bytes window_size) {
  flip_ = fault::Injector(plan);
  flip_base_ = window_base;
  flip_size_ = window_size;
}

bool Iommu::allowed(PortId initiator, Addr addr, Bytes len, bool write) const {
  if (!enabled_) return true;
  // A single grant must cover the whole range (grants are whole windows:
  // BARs or pinned buffers, so partial coverage would be a setup bug).
  for (const IommuGrant& g : grants_) {
    if (g.initiator != initiator) continue;
    if (addr < g.base || addr + len > g.base + g.size) continue;
    if (write ? g.allow_write : g.allow_read) return true;
  }
  return false;
}

std::uint64_t Iommu::faults_for(PortId initiator) const {
  auto it = faults_by_initiator_.find(static_cast<std::uint16_t>(initiator));
  return it == faults_by_initiator_.end() ? 0 : it->second;
}

std::vector<std::pair<std::uint16_t, std::uint64_t>>
Iommu::faults_by_initiator() const {
  std::vector<std::pair<std::uint16_t, std::uint64_t>> out(
      faults_by_initiator_.begin(), faults_by_initiator_.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool Iommu::check(PortId initiator, Addr addr, Bytes len, bool write) {
  bool ok = allowed(initiator, addr, len, write);
  if (ok && flip_.armed()) {
    const bool in_window =
        flip_size_.is_zero() ||
        (addr >= flip_base_ && addr + len <= flip_base_ + flip_size_);
    if (in_window && flip_.fire()) {
      ok = false;
      ++injected_faults_;
    }
  }
  if (ok) return true;
  ++faults_;
  ++faults_by_initiator_[static_cast<std::uint16_t>(initiator)];
  return false;
}

}  // namespace snacc::pcie
