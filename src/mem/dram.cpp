#include "mem/dram.hpp"

#include <utility>

#include "sim/future.hpp"

namespace snacc::mem {

// ---------------------------------------------------------------------------
// Uram

Uram::Uram(sim::Simulator& sim, std::uint64_t size, const FpgaProfile& fpga)
    : sim_(sim),
      store_(size),
      latency_(fpga.uram_latency),
      // One 64 B word per cycle per port.
      read_port_(sim,
                 static_cast<double>(fpga.stream_bytes_per_beat) /
                     (static_cast<double>(fpga.clock_period.value()) /
                      static_cast<double>(kPsPerS)) /
                     1e9),
      write_port_(sim, read_port_.rate()) {}

sim::Future<Payload> Uram::read(std::uint64_t addr, std::uint64_t len) {
  sim::Promise<Payload> done(sim_);
  auto fut = done.future();
  sim_.spawn(do_read(addr, len, std::move(done)));
  return fut;
}

sim::Future<sim::Done> Uram::write(std::uint64_t addr, Payload data) {
  sim::Promise<sim::Done> done(sim_);
  auto fut = done.future();
  sim_.spawn(do_write(addr, std::move(data), std::move(done)));
  return fut;
}

sim::Task Uram::do_read(std::uint64_t addr, std::uint64_t len,
                        sim::Promise<Payload> done) {
  co_await read_port_.acquire(len, latency_);
  done.set(store_.read(addr, len));
}

sim::Task Uram::do_write(std::uint64_t addr, Payload data,
                         sim::Promise<sim::Done> done) {
  co_await write_port_.acquire(data.size(), latency_);
  store_.write(addr, data);
  done.set(sim::Done{});
}

// ---------------------------------------------------------------------------
// Dram

Dram::Dram(sim::Simulator& sim, std::uint64_t size, const FpgaProfile& fpga)
    : sim_(sim), store_(size), fpga_(fpga), bus_(sim, fpga.dram_gb_s) {}

sim::Future<Payload> Dram::read(std::uint64_t addr, std::uint64_t len) {
  sim::Promise<Payload> done(sim_);
  auto fut = done.future();
  sim_.spawn(do_read(addr, len, std::move(done)));
  return fut;
}

sim::Future<sim::Done> Dram::write(std::uint64_t addr, Payload data) {
  sim::Promise<sim::Done> done(sim_);
  auto fut = done.future();
  sim_.spawn(do_write(addr, std::move(data), std::move(done)));
  return fut;
}

TimePs Dram::occupy(Dir dir, std::uint64_t /*bytes*/) {
  // Only a direction switch serializes extra bus time (tRTW/tWTR); the
  // closed-row access latency pipelines with subsequent bursts and is added
  // to the requester-visible completion below.
  TimePs extra;
  if (last_dir_ != dir && last_dir_ != Dir::kIdle) {
    extra = fpga_.dram_turnaround;
    ++turnarounds_;
  }
  last_dir_ = dir;
  return extra;
}

sim::Task Dram::do_read(std::uint64_t addr, std::uint64_t len,
                        sim::Promise<Payload> done) {
  const TimePs extra = occupy(Dir::kRead, len);
  co_await bus_.acquire(len, extra);
  co_await sim_.delay(fpga_.dram_access_latency);
  done.set(store_.read(addr, len));
}

sim::Task Dram::do_write(std::uint64_t addr, Payload data,
                         sim::Promise<sim::Done> done) {
  const TimePs extra = occupy(Dir::kWrite, data.size());
  co_await bus_.acquire(data.size(), extra);
  store_.write(addr, data);
  done.set(sim::Done{});
}

// ---------------------------------------------------------------------------
// Hbm

Hbm::Hbm(sim::Simulator& sim, std::uint64_t size, const FpgaProfile& fpga,
         std::uint32_t channels)
    : sim_(sim), size_(size), store_(size) {
  // Each pseudo-channel gets its own controller/bus timing; data lives in
  // one shared backing store (timing and contents are orthogonal here).
  for (std::uint32_t i = 0; i < channels; ++i) {
    banks_.push_back(std::make_unique<Dram>(sim, size, fpga));
  }
}

sim::Future<Payload> Hbm::read(std::uint64_t addr, std::uint64_t len) {
  sim::Promise<Payload> done(sim_);
  auto fut = done.future();
  sim_.spawn(do_read(addr, len, std::move(done)));
  return fut;
}

sim::Future<sim::Done> Hbm::write(std::uint64_t addr, Payload data) {
  sim::Promise<sim::Done> done(sim_);
  auto fut = done.future();
  sim_.spawn(do_write(addr, std::move(data), std::move(done)));
  return fut;
}

sim::Task Hbm::do_read(std::uint64_t addr, std::uint64_t len,
                       sim::Promise<Payload> done) {
  // Spread the access across channels page by page; complete when the
  // slowest page is out.
  sim::WaitGroup wg(sim_);
  std::uint64_t off = 0;
  while (off < len) {
    const std::uint64_t n =
        std::min<std::uint64_t>(kPageSize - (addr + off) % kPageSize, len - off);
    wg.add(1);
    auto page = [](Dram* bank, std::uint64_t a, std::uint64_t l,
                   sim::WaitGroup* g) -> sim::Task {
      auto f = bank->read(a, l);
      co_await f;
      g->done();
    };
    sim_.spawn(page(&bank_for(addr + off), addr + off, n, &wg));
    off += n;
  }
  co_await wg.wait();
  done.set(store_.read(addr, len));
}

sim::Task Hbm::do_write(std::uint64_t addr, Payload data,
                        sim::Promise<sim::Done> done) {
  sim::WaitGroup wg(sim_);
  const std::uint64_t len = data.size();
  std::uint64_t off = 0;
  while (off < len) {
    const std::uint64_t n =
        std::min<std::uint64_t>(kPageSize - (addr + off) % kPageSize, len - off);
    wg.add(1);
    auto page = [](Dram* bank, std::uint64_t a, std::uint64_t l,
                   sim::WaitGroup* g) -> sim::Task {
      auto f = bank->write(a, Payload::phantom(l));
      co_await f;
      g->done();
    };
    sim_.spawn(page(&bank_for(addr + off), addr + off, n, &wg));
    off += n;
  }
  co_await wg.wait();
  store_.write(addr, data);
  done.set(sim::Done{});
}

}  // namespace snacc::mem
