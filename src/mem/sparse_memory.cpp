#include "mem/sparse_memory.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace snacc::mem {

SparseMemory::Page& SparseMemory::page_for(std::uint64_t page_index) {
  auto [it, inserted] = pages_.try_emplace(page_index);
  if (inserted) it->second.assign(kPageSize, std::byte{0});
  return it->second;
}

void SparseMemory::write(std::uint64_t addr, const Payload& p) {
  assert(addr + p.size() <= size_ && "write out of memory bounds");
  bytes_written_ += p.size();
  if (!p.has_data()) {
    // Phantom write: drop any stale real contents in range so a later read
    // cannot return bytes that were never actually preserved.
    if (p.size() == 0) return;
    const std::uint64_t first = addr / kPageSize;
    const std::uint64_t last = (addr + p.size() - 1) / kPageSize;
    for (std::uint64_t pg = first; pg <= last && !pages_.empty(); ++pg) {
      pages_.erase(pg);
    }
    return;
  }
  auto bytes = p.view();
  std::uint64_t off = 0;
  while (off < bytes.size()) {
    const std::uint64_t a = addr + off;
    const std::uint64_t pg = a / kPageSize;
    const std::uint64_t in_page = a % kPageSize;
    const std::uint64_t n =
        std::min<std::uint64_t>(kPageSize - in_page, bytes.size() - off);
    Page& page = page_for(pg);
    std::memcpy(page.data() + in_page, bytes.data() + off, n);
    off += n;
  }
}

Payload SparseMemory::read(std::uint64_t addr, std::uint64_t len) const {
  assert(addr + len <= size_ && "read out of memory bounds");
  bytes_read_ += len;
  if (len == 0) return Payload{};
  const std::uint64_t first = addr / kPageSize;
  const std::uint64_t last = (addr + len - 1) / kPageSize;
  for (std::uint64_t pg = first; pg <= last; ++pg) {
    if (!pages_.contains(pg)) return Payload::phantom(len);
  }
  std::vector<std::byte> out(len);
  std::uint64_t off = 0;
  while (off < len) {
    const std::uint64_t a = addr + off;
    const std::uint64_t pg = a / kPageSize;
    const std::uint64_t in_page = a % kPageSize;
    const std::uint64_t n = std::min<std::uint64_t>(kPageSize - in_page, len - off);
    const Page& page = pages_.at(pg);
    std::memcpy(out.data() + off, page.data() + in_page, n);
    off += n;
  }
  return Payload::bytes(std::move(out));
}

void SparseMemory::fill(std::uint64_t addr, std::uint64_t len, std::uint8_t value) {
  write(addr, Payload::filled(len, value));
}

}  // namespace snacc::mem
