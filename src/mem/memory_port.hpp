// MemoryPort: the asynchronous memory interface shared by URAM, on-board
// DRAM and PCIe-mapped host memory. Implementations charge their own access
// timing; callers simply `co_await port.read(...)` / `port.write(...)`.
#pragma once

#include <cstdint>

#include "common/payload.hpp"
#include "sim/future.hpp"

namespace snacc::mem {

class MemoryPort {
 public:
  virtual ~MemoryPort() = default;

  /// Completes when the data is available to the requester.
  virtual sim::Future<Payload> read(std::uint64_t addr, std::uint64_t len) = 0;

  /// Completes when the write has been accepted (write response).
  virtual sim::Future<sim::Done> write(std::uint64_t addr, Payload data) = 0;

  virtual std::uint64_t size() const = 0;
};

}  // namespace snacc::mem
