// Memory timing models.
//
// Uram: on-die UltraRAM -- fixed pipelined latency, full fabric bandwidth,
// dual-ported (no read/write contention). The URAM streamer variant's 4 MB
// buffer (Sec. 4.3) lives here.
//
// Dram: one off-chip DRAM controller channel, as on the Alveo U280 used by
// TaPaSCo (Sec. 5.2 notes the design is limited to a single controller).
// Models sustained channel bandwidth, closed-row access latency, and the
// read<->write bus-turnaround penalty that the paper identifies as the
// on-board-DRAM write-bandwidth limiter. Burst combining (Sec. 4.3: the
// streamer merges the NVMe controller's smaller accesses into 4 kB bursts)
// is expressed by callers issuing fewer, larger accesses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/calibration.hpp"
#include "mem/memory_port.hpp"
#include "mem/sparse_memory.hpp"
#include "sim/rate_server.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace snacc::mem {

class Uram final : public MemoryPort {
 public:
  Uram(sim::Simulator& sim, std::uint64_t size, const FpgaProfile& fpga);

  sim::Future<Payload> read(std::uint64_t addr, std::uint64_t len) override;
  sim::Future<sim::Done> write(std::uint64_t addr, Payload data) override;
  std::uint64_t size() const override { return store_.size(); }

  SparseMemory& store() { return store_; }

 private:
  sim::Task do_read(std::uint64_t addr, std::uint64_t len,
                    sim::Promise<Payload> done);
  sim::Task do_write(std::uint64_t addr, Payload data,
                     sim::Promise<sim::Done> done);

  sim::Simulator& sim_;
  SparseMemory store_;
  TimePs latency_;
  // Separate read/write servers: URAM blocks are dual-ported.
  sim::RateServer read_port_;
  sim::RateServer write_port_;
};

class Dram final : public MemoryPort {
 public:
  Dram(sim::Simulator& sim, std::uint64_t size, const FpgaProfile& fpga);

  sim::Future<Payload> read(std::uint64_t addr, std::uint64_t len) override;
  sim::Future<sim::Done> write(std::uint64_t addr, Payload data) override;
  std::uint64_t size() const override { return store_.size(); }

  SparseMemory& store() { return store_; }
  std::uint64_t turnarounds() const { return turnarounds_; }

 private:
  enum class Dir { kIdle, kRead, kWrite };

  /// Shared-bus occupation for one access, including turnaround if the
  /// direction changed. Returns the completion time awaitable.
  TimePs occupy(Dir dir, std::uint64_t bytes);

  sim::Task do_read(std::uint64_t addr, std::uint64_t len,
                    sim::Promise<Payload> done);
  sim::Task do_write(std::uint64_t addr, Payload data,
                     sim::Promise<sim::Done> done);

  sim::Simulator& sim_;
  SparseMemory store_;
  FpgaProfile fpga_;
  sim::RateServer bus_;
  Dir last_dir_ = Dir::kIdle;
  std::uint64_t turnarounds_ = 0;
};

/// HBM: independent pseudo-channel controllers interleaved at 4 kB
/// granularity (Sec. 7: "leverage HBM and distribute data buffers across
/// different HBM controllers to maximize parallelism and bandwidth").
/// Concurrent read/write streams land on different channels most of the
/// time, removing the single-controller turnaround bottleneck.
class Hbm final : public MemoryPort {
 public:
  Hbm(sim::Simulator& sim, std::uint64_t size, const FpgaProfile& fpga,
      std::uint32_t channels = 8);

  sim::Future<Payload> read(std::uint64_t addr, std::uint64_t len) override;
  sim::Future<sim::Done> write(std::uint64_t addr, Payload data) override;
  std::uint64_t size() const override { return size_; }

  std::uint32_t channels() const {
    return static_cast<std::uint32_t>(banks_.size());
  }

 private:
  /// Channel selection: 4 kB interleave.
  Dram& bank_for(std::uint64_t addr) {
    return *banks_[(addr / kPageSize) % banks_.size()];
  }
  sim::Task do_read(std::uint64_t addr, std::uint64_t len,
                    sim::Promise<Payload> done);
  sim::Task do_write(std::uint64_t addr, Payload data,
                     sim::Promise<sim::Done> done);

  sim::Simulator& sim_;
  std::uint64_t size_;
  mem::SparseMemory store_;
  std::vector<std::unique_ptr<Dram>> banks_;  // timing only; data in store_

 public:
  SparseMemory& store() { return store_; }
};


}  // namespace snacc::mem
