// SparseMemory: page-granular byte store backing every memory in the system
// (host DRAM, FPGA URAM/DRAM buffers, SSD media).
//
// Pages materialize on first *real* write; phantom writes only mark the range
// as phantom-touched. Reads return real bytes when every covered page is
// materialized, otherwise a phantom payload of the right size -- so integrity
// tests see exact data while bandwidth runs never allocate.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/payload.hpp"
#include "common/units.hpp"

namespace snacc::mem {

class SparseMemory {
 public:
  explicit SparseMemory(std::uint64_t size) : size_(size) {}

  std::uint64_t size() const { return size_; }

  /// Writes `p` at `addr`. Real bytes materialize pages; a phantom payload
  /// invalidates any previously-real bytes in range (the contents are now
  /// unknown).
  void write(std::uint64_t addr, const Payload& p);

  /// Reads `len` bytes; returns a real payload iff the whole range is
  /// materialized.
  Payload read(std::uint64_t addr, std::uint64_t len) const;

  /// Fills a range with a byte value (materializes pages).
  void fill(std::uint64_t addr, std::uint64_t len, std::uint8_t value);

  std::size_t resident_pages() const { return pages_.size(); }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t bytes_read() const { return bytes_read_; }

 private:
  using Page = std::vector<std::byte>;
  Page& page_for(std::uint64_t page_index);

  std::uint64_t size_;
  // Accessed by page index only (never iterated), so unordered iteration
  // order cannot leak into simulated behaviour or output.
  std::unordered_map<std::uint64_t, Page> pages_;
  std::uint64_t bytes_written_ = 0;
  mutable std::uint64_t bytes_read_ = 0;
};

}  // namespace snacc::mem
