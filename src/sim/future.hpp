// One-shot Future/Promise for RPC-style completion (e.g. a PCIe read that
// returns data, an NVMe command completion). Multiple coroutines may await
// the same Future; all are resumed through the event queue when the value is
// set, preserving determinism and avoiding reentrancy.
//
// Memory model: the shared one-shot State is an intrusively-refcounted block
// from the Simulator's recycling pool -- no shared_ptr, no control block, no
// atomics, and in steady state no allocation at all (a completed RPC's state
// is reused by the next one). Waiters are an intrusive FIFO list whose links
// live inside the awaiter objects (i.e. in the awaiting coroutine's frame),
// so the single-waiter fast path -- and every other path -- is inline and
// allocation-free. The same WaitLink machinery backs WaitGroup, Gate and
// Semaphore below. Handles must not outlive the Simulator (pool memory
// returns to the OS at ~Simulator).
#pragma once

#include <cassert>
#include <coroutine>
#include <new>
#include <utility>

#include "sim/simulator.hpp"

namespace snacc::sim {

namespace detail {

/// Intrusive waiter link; lives in an awaiter object. The EventNode carries
/// the wakeup; `next` chains the FIFO.
struct WaitLink {
  EventNode ev{};
  WaitLink* next = nullptr;
};

/// FIFO of WaitLinks with O(1) append/pop. Wake order == await order, which
/// keeps equal-timestamp scheduling identical to the pre-intrusive kernel.
struct WaitList {
  WaitLink* head = nullptr;
  WaitLink* tail = nullptr;
  bool empty() const { return head == nullptr; }
  void append(WaitLink* w) {
    w->next = nullptr;
    if (tail) tail->next = w;
    else head = w;
    tail = w;
  }
  WaitLink* pop_front() {
    WaitLink* w = head;
    if (w) {
      head = w->next;
      if (!head) tail = nullptr;
    }
    return w;
  }
};

}  // namespace detail

template <class T>
class Future;

template <class T>
class Promise {
 public:
  explicit Promise(Simulator& sim)
      : state_(::new (sim.pool_alloc(sizeof(State))) State(&sim)) {}
  Promise() = default;
  Promise(const Promise& o) : state_(o.state_) { ref(state_); }
  Promise(Promise&& o) noexcept : state_(std::exchange(o.state_, nullptr)) {}
  Promise& operator=(const Promise& o) {
    ref(o.state_);
    unref(state_);
    state_ = o.state_;
    return *this;
  }
  Promise& operator=(Promise&& o) noexcept {
    if (this != &o) {
      unref(state_);
      state_ = std::exchange(o.state_, nullptr);
    }
    return *this;
  }
  ~Promise() { unref(state_); }

  [[nodiscard]] Future<T> future() const { return Future<T>{state_}; }

  void set(T value) {
    assert(state_ && !state_->has_value && "Promise set twice");
    ::new (static_cast<void*>(state_->slot)) T(std::move(value));
    state_->has_value = true;
    while (detail::WaitLink* w = state_->waiters.pop_front()) {
      state_->sim->wake(w->ev);
    }
  }

  bool ready() const { return state_ && state_->has_value; }

 private:
  friend class Future<T>;
  struct State {
    explicit State(Simulator* s) : sim(s) {}
    Simulator* sim;
    int refs = 1;
    bool has_value = false;
    detail::WaitList waiters;
    alignas(T) unsigned char slot[sizeof(T)];
    T* value() { return std::launder(reinterpret_cast<T*>(slot)); }
  };
  static void ref(State* s) {
    if (s) ++s->refs;
  }
  static void unref(State* s) {
    if (!s || --s->refs > 0) return;
    Simulator* sim = s->sim;
    if (s->has_value) s->value()->~T();
    s->~State();
    sim->pool_free(s, sizeof(State));
  }

  State* state_ = nullptr;
};

template <class T>
class [[nodiscard]] Future {
 public:
  Future() = default;
  Future(const Future& o) : state_(o.state_) { Promise<T>::ref(state_); }
  Future(Future&& o) noexcept : state_(std::exchange(o.state_, nullptr)) {}
  Future& operator=(const Future& o) {
    Promise<T>::ref(o.state_);
    Promise<T>::unref(state_);
    state_ = o.state_;
    return *this;
  }
  Future& operator=(Future&& o) noexcept {
    if (this != &o) {
      Promise<T>::unref(state_);
      state_ = std::exchange(o.state_, nullptr);
    }
    return *this;
  }
  ~Future() { Promise<T>::unref(state_); }

  bool ready() const { return state_ && state_->has_value; }

  /// Awaiting is inline and allocation-free: the waiter link lives in the
  /// awaiter object inside the awaiting coroutine's frame. The Future
  /// handle itself keeps the state alive across the suspension.
  auto operator co_await() const noexcept {
    struct Awaiter {
      State* st;
      detail::WaitLink link;
      bool await_ready() const noexcept { return st->has_value; }
      void await_suspend(std::coroutine_handle<> h) {
        link.ev.h = h;
        st->waiters.append(&link);
      }
      T await_resume() {
        assert(st && st->has_value);
        // Copy, not move: several awaiters may share this future.
        return *st->value();
      }
    };
    return Awaiter{state_, {}};
  }

  /// Non-awaiting peek (for polled consumers).
  const T* peek() const {
    return state_ && state_->has_value ? state_->value() : nullptr;
  }

 private:
  friend class Promise<T>;
  using State = typename Promise<T>::State;
  explicit Future(State* s) : state_(s) { Promise<T>::ref(state_); }
  State* state_ = nullptr;
};

/// Unit type for Future<void>-style signalling.
struct Done {};

/// Counts down to zero; used to join a group of spawned tasks.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& sim) : sim_(&sim) {}

  void add(int n = 1) { count_ += n; }
  void done() {
    assert(count_ > 0);
    if (--count_ == 0) {
      while (detail::WaitLink* w = waiters_.pop_front()) sim_->wake(w->ev);
    }
  }

  auto wait() {
    struct Awaiter {
      WaitGroup* wg;
      detail::WaitLink link;
      bool await_ready() const noexcept { return wg->count_ == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        link.ev.h = h;
        wg->waiters_.append(&link);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, {}};
  }

  int pending() const { return count_; }

 private:
  Simulator* sim_;
  int count_ = 0;
  detail::WaitList waiters_;
};

/// Level-triggered gate (e.g. Ethernet pause): tasks await `opened()`;
/// close() blocks subsequent awaits until open() releases them.
class Gate {
 public:
  explicit Gate(Simulator& sim, bool open = true) : sim_(&sim), open_(open) {}

  void open() {
    if (open_) return;
    open_ = true;
    while (detail::WaitLink* w = waiters_.pop_front()) sim_->wake(w->ev);
  }
  void close() { open_ = false; }
  bool is_open() const { return open_; }

  auto opened() {
    struct Awaiter {
      Gate* g;
      detail::WaitLink link;
      bool await_ready() const noexcept { return g->open_; }
      void await_suspend(std::coroutine_handle<> h) {
        link.ev.h = h;
        g->waiters_.append(&link);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, {}};
  }

 private:
  Simulator* sim_;
  bool open_;
  detail::WaitList waiters_;
};

/// Counting semaphore for bounded resources (DMA tags, queue slots).
/// A permit is reserved at grant time -- either synchronously in
/// await_ready or by release() before waking a waiter -- so a freshly
/// released permit can never be stolen from a woken waiter.
class Semaphore {
 public:
  Semaphore(Simulator& sim, int permits) : sim_(&sim), permits_(permits) {}

  auto acquire() {
    struct Awaiter {
      Semaphore* s;
      detail::WaitLink link;
      bool await_ready() const noexcept { return s->permits_ > 0; }
      void await_suspend(std::coroutine_handle<> h) {
        link.ev.h = h;
        s->waiters_.append(&link);
      }
      void await_resume() const {
        // Either taken here (fast path) or pre-reserved by release().
        if (!s->reserved_) {
          assert(s->permits_ > 0);
          --s->permits_;
        } else {
          --s->reserved_;
        }
      }
    };
    return Awaiter{this, {}};
  }

  void release(int n = 1) {
    permits_ += n;
    while (!waiters_.empty() && permits_ > 0) {
      detail::WaitLink* w = waiters_.pop_front();
      --permits_;
      ++reserved_;
      sim_->wake(w->ev);
    }
  }

  int available() const { return permits_; }

 private:
  Simulator* sim_;
  int permits_;
  int reserved_ = 0;  // permits handed to not-yet-resumed waiters
  detail::WaitList waiters_;
};

}  // namespace snacc::sim
