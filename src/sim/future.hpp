// One-shot Future/Promise for RPC-style completion (e.g. a PCIe read that
// returns data, an NVMe command completion). Multiple coroutines may await
// the same Future; all are resumed through the event queue when the value is
// set, preserving determinism and avoiding reentrancy.
#pragma once

#include <cassert>
#include <coroutine>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace snacc::sim {

template <class T>
class Future;

template <class T>
class Promise {
 public:
  explicit Promise(Simulator& sim) : state_(std::make_shared<State>(&sim)) {}

  Future<T> future() const { return Future<T>{state_}; }

  void set(T value) {
    assert(!state_->value.has_value() && "Promise set twice");
    state_->value.emplace(std::move(value));
    for (auto h : state_->waiters) state_->sim->after(TimePs{}, [h] { h.resume(); });
    state_->waiters.clear();
  }

  bool ready() const { return state_->value.has_value(); }

 private:
  friend class Future<T>;
  struct State {
    explicit State(Simulator* s) : sim(s) {}
    Simulator* sim;
    std::optional<T> value;
    std::vector<std::coroutine_handle<>> waiters;
  };
  std::shared_ptr<State> state_;
};

template <class T>
class Future {
 public:
  Future() = default;

  bool ready() const { return state_ && state_->value.has_value(); }

  bool await_ready() const noexcept { return ready(); }
  void await_suspend(std::coroutine_handle<> h) { state_->waiters.push_back(h); }
  T await_resume() {
    assert(state_ && state_->value.has_value());
    // Copy, not move: several awaiters may share this future.
    return *state_->value;
  }

  /// Non-awaiting peek (for polled consumers).
  const T* peek() const {
    return state_ && state_->value ? &*state_->value : nullptr;
  }

 private:
  friend class Promise<T>;
  using State = typename Promise<T>::State;
  explicit Future(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// Unit type for Future<void>-style signalling.
struct Done {};

/// Counts down to zero; used to join a group of spawned tasks.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& sim) : sim_(&sim) {}

  void add(int n = 1) { count_ += n; }
  void done() {
    assert(count_ > 0);
    if (--count_ == 0) {
      for (auto h : waiters_) sim_->after(TimePs{}, [h] { h.resume(); });
      waiters_.clear();
    }
  }

  auto wait() {
    struct Awaiter {
      WaitGroup* wg;
      bool await_ready() const noexcept { return wg->count_ == 0; }
      void await_suspend(std::coroutine_handle<> h) { wg->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  int pending() const { return count_; }

 private:
  Simulator* sim_;
  int count_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Level-triggered gate (e.g. Ethernet pause): tasks await `opened()`;
/// close() blocks subsequent awaits until open() releases them.
class Gate {
 public:
  explicit Gate(Simulator& sim, bool open = true) : sim_(&sim), open_(open) {}

  void open() {
    if (open_) return;
    open_ = true;
    for (auto h : waiters_) sim_->after(TimePs{}, [h] { h.resume(); });
    waiters_.clear();
  }
  void close() { open_ = false; }
  bool is_open() const { return open_; }

  auto opened() {
    struct Awaiter {
      Gate* g;
      bool await_ready() const noexcept { return g->open_; }
      void await_suspend(std::coroutine_handle<> h) { g->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  bool open_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore for bounded resources (DMA tags, queue slots).
/// A permit is reserved at grant time -- either synchronously in
/// await_ready or by release() before waking a waiter -- so a freshly
/// released permit can never be stolen from a woken waiter.
class Semaphore {
 public:
  Semaphore(Simulator& sim, int permits) : sim_(&sim), permits_(permits) {}

  auto acquire() {
    struct Awaiter {
      Semaphore* s;
      bool await_ready() const noexcept { return s->permits_ > 0; }
      void await_suspend(std::coroutine_handle<> h) { s->waiters_.push_back(h); }
      void await_resume() const {
        // Either taken here (fast path) or pre-reserved by release().
        if (!s->reserved_) {
          assert(s->permits_ > 0);
          --s->permits_;
        } else {
          --s->reserved_;
        }
      }
    };
    return Awaiter{this};
  }

  void release(int n = 1) {
    permits_ += n;
    while (!waiters_.empty() && permits_ > 0) {
      auto h = waiters_.front();
      waiters_.erase(waiters_.begin());
      --permits_;
      ++reserved_;
      sim_->after(TimePs{}, [h] { h.resume(); });
    }
  }

  int available() const { return permits_; }

 private:
  Simulator* sim_;
  int permits_;
  int reserved_ = 0;  // permits handed to not-yet-resumed waiters
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace snacc::sim
