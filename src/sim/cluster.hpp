// SimCluster: conservative parallel execution of event Domains.
//
// A cluster owns N Domains (sim/simulator.hpp) and advances them on worker
// threads in lookahead windows. Every cross-domain edge is a sim::Mailbox
// (sim/mailbox.hpp) with a declared, nonzero link latency; that latency is
// the lookahead that makes null-message-free conservative sync possible: a
// message sent at producer time `t` arrives no earlier than `t + latency`,
// so a domain may safely run every event earlier than
//
//     min over inbound edges ( earliest_activity(producer) + latency )
//
// where earliest_activity is the fixed point of "my next local event, or
// the earliest thing a neighbour could make me do" over the edge graph
// (computed by relaxation at every barrier -- latencies are positive, so
// the relaxation terminates and the bound is exact, not just safe).
//
// Execution alternates two phases separated by barriers:
//
//   merge   each domain drains its inbound mailboxes and schedules the
//           timestamped records into its own heap, sorted by the fixed
//           (t, peer_domain_id, mailbox_index, seq) tie-break -- the
//           "seeded-merge" rule that makes a run bit-identical for a given
//           topology + seed REGARDLESS of worker thread count;
//   window  each domain runs events strictly before its window bound.
//
// During `window`, a mailbox's outbound staging vectors are written only by
// the producing domain's thread; during `merge` they are read only by the
// receiving domain's thread. The barrier between the phases provides the
// happens-before edge, so the hot path needs no locks and no atomics -- and
// a single-threaded cluster executes the exact same schedule, which is the
// determinism story (and what the TSan CI job checks the parallel one
// against).
#pragma once

#include <algorithm>
#include <barrier>
#include <cassert>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace snacc::sim {

class SimCluster;

/// Type-erased cross-domain edge. The typed transport lives in
/// sim::Mailbox<T>; the cluster sees only timestamps, tie-break keys and
/// the per-phase staging hooks. Constructing one registers it as an edge of
/// its domains' cluster; the latency is the edge's lookahead and must be
/// nonzero (a zero-latency edge would collapse the window to nothing --
/// links are the only legal domain boundaries precisely because links have
/// physical delay).
class MailboxBase {
 public:
  MailboxBase(const MailboxBase&) = delete;
  MailboxBase& operator=(const MailboxBase&) = delete;
  virtual ~MailboxBase();

  TimePs lookahead() const { return latency_; }
  Domain& producer_domain() const { return *prod_; }
  Domain& consumer_domain() const { return *cons_; }

 protected:
  MailboxBase(Domain& producer, Domain& consumer, TimePs latency);

  friend class SimCluster;

  /// One undelivered cross-domain record, as the merge sorter sees it.
  /// `peer_domain` is the id of the sending side (producer for data,
  /// consumer for credit feedback); `mb_index` is the mailbox registration
  /// number; together with `seq` (per-mailbox monotone) they make the sort
  /// key a total order, so the merge is deterministic.
  struct StagedRef {
    TimePs t;
    std::uint32_t peer_domain;
    std::uint32_t mb_index;
    std::uint64_t seq;
    MailboxBase* mb;
    std::uint32_t idx;
  };
  static bool staged_before(const StagedRef& a, const StagedRef& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.peer_domain != b.peer_domain) return a.peer_domain < b.peer_domain;
    if (a.mb_index != b.mb_index) return a.mb_index < b.mb_index;
    return a.seq < b.seq;
  }

  // Consumer-thread half of a merge: enumerate undelivered inbound records,
  // schedule each (in cluster-sorted order), then discard the drained batch.
  virtual void stage_inbound(std::vector<StagedRef>* out) = 0;
  virtual void deliver_staged(std::uint32_t idx) = 0;
  virtual void finish_inbound() = 0;
  // Producer-thread half: credit / consumer-close feedback records.
  virtual void stage_feedback(std::vector<StagedRef>* out) = 0;
  virtual void apply_feedback_staged(std::uint32_t idx) = 0;
  virtual void finish_feedback() = 0;

  Domain* prod_;
  Domain* cons_;
  TimePs latency_;
  SimCluster* cluster_ = nullptr;
  std::uint32_t mb_index_ = 0;
};

class SimCluster {
 public:
  /// `domain_count` >= 1. `threads` caps the worker pool (0 = hardware
  /// concurrency); the effective pool is additionally capped at the domain
  /// count, and a pool of 1 runs everything inline on the calling thread.
  /// Results are identical for every thread count by construction.
  explicit SimCluster(std::uint32_t domain_count, unsigned threads = 0)
      : threads_(threads) {
    assert(domain_count >= 1);
    domains_.reserve(domain_count);
    for (std::uint32_t i = 0; i < domain_count; ++i) {
      auto d = std::make_unique<Domain>();
      d->cluster_ = this;
      d->id_ = i;
      domains_.push_back(std::move(d));
    }
  }
  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  Domain& domain(std::uint32_t i) { return *domains_.at(i); }
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(domains_.size());
  }

  /// Worker threads a run will actually use.
  unsigned effective_threads() const {
    unsigned t = threads_ == 0 ? std::thread::hardware_concurrency() : threads_;
    if (t == 0) t = 1;
    return std::min<unsigned>(t, size());
  }

  /// Runs until every domain drains and no cross-domain record is in
  /// flight.
  void run() { run_loop(Domain::kNever, /*bounded=*/false); }

  /// Runs until simulated time would exceed `t` in every domain (events at
  /// exactly `t` run); all domain clocks end at >= t. Returns `t`.
  TimePs run_until(TimePs t) {
    run_loop(t, /*bounded=*/true);
    return t;
  }

  /// Sum of events processed across all domains.
  std::uint64_t events_processed() const {
    std::uint64_t total = 0;
    for (const auto& d : domains_) total += d->events_processed();
    return total;
  }

  bool idle() const {
    for (const auto& d : domains_) {
      if (!d->idle()) return false;
    }
    return true;
  }

  /// Smallest edge lookahead (kNever when no mailbox is registered -- the
  /// domains are then fully independent and windows are unbounded).
  TimePs min_lookahead() const {
    TimePs min = Domain::kNever;
    for (const MailboxBase* mb : mailboxes_) {
      min = std::min(min, mb->lookahead());
    }
    return min;
  }

 private:
  friend class MailboxBase;

  static TimePs sat_add(TimePs a, TimePs b) {
    if (a == Domain::kNever) return Domain::kNever;
    const std::uint64_t s = a.value() + b.value();
    return s < a.value() ? Domain::kNever : TimePs{s};
  }

  void register_mailbox(MailboxBase* mb) {
    mb->mb_index_ = next_mb_index_++;
    mailboxes_.push_back(mb);
  }
  void unregister_mailbox(MailboxBase* mb) {
    mailboxes_.erase(std::find(mailboxes_.begin(), mailboxes_.end(), mb));
  }

  /// Barrier merge for domain `d` (runs on the thread that owns `d`):
  /// drain inbound mailboxes sorted by the fixed tie-break, then outbound
  /// feedback the same way.
  void merge_domain(std::uint32_t d,
                    std::vector<MailboxBase::StagedRef>* scratch) {
    scratch->clear();
    for (MailboxBase* mb : mailboxes_) {
      if (mb->cons_->id() == d) mb->stage_inbound(scratch);
    }
    std::sort(scratch->begin(), scratch->end(), MailboxBase::staged_before);
    for (const auto& r : *scratch) r.mb->deliver_staged(r.idx);
    for (MailboxBase* mb : mailboxes_) {
      if (mb->cons_->id() == d) mb->finish_inbound();
    }

    scratch->clear();
    for (MailboxBase* mb : mailboxes_) {
      if (mb->prod_->id() == d) mb->stage_feedback(scratch);
    }
    std::sort(scratch->begin(), scratch->end(), MailboxBase::staged_before);
    for (const auto& r : *scratch) r.mb->apply_feedback_staged(r.idx);
    for (MailboxBase* mb : mailboxes_) {
      if (mb->prod_->id() == d) mb->finish_feedback();
    }
  }

  /// Computes every domain's next window bound from post-merge state.
  /// Returns false when the cluster is quiescent (or past the horizon) and
  /// the run should stop. Single-writer: only the planning thread calls
  /// this, between barriers.
  bool plan_windows(TimePs horizon, bool bounded) {
    const std::uint32_t n = size();
    ea_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      ea_[i] = domains_[i]->next_event_time();
    }
    // Earliest-activity fixed point over the edge graph. A mailbox is TWO
    // directed edges: data flows producer->consumer, but credit/close
    // feedback flows consumer->producer with the same link latency, so the
    // reverse direction constrains the producer's window just as much (a
    // producer running unboundedly ahead would otherwise receive credits
    // stamped in its past). Values only ever decrease and every relaxation
    // adds a positive latency, so this terminates; in practice it converges
    // in one or two passes.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const MailboxBase* mb : mailboxes_) {
        const std::uint32_t p = mb->prod_->id();
        const std::uint32_t c = mb->cons_->id();
        const TimePs to_cons = sat_add(ea_[p], mb->latency_);
        if (to_cons < ea_[c]) {
          ea_[c] = to_cons;
          changed = true;
        }
        const TimePs to_prod = sat_add(ea_[c], mb->latency_);
        if (to_prod < ea_[p]) {
          ea_[p] = to_prod;
          changed = true;
        }
      }
    }
    TimePs t_min = Domain::kNever;
    for (const TimePs t : ea_) t_min = std::min(t_min, t);
    if (t_min == Domain::kNever) return false;
    if (bounded && t_min > horizon) return false;

    window_.assign(n, Domain::kNever);
    for (const MailboxBase* mb : mailboxes_) {
      const std::uint32_t p = mb->prod_->id();
      const std::uint32_t c = mb->cons_->id();
      window_[c] = std::min(window_[c], sat_add(ea_[p], mb->latency_));
      window_[p] = std::min(window_[p], sat_add(ea_[c], mb->latency_));
    }
    if (bounded) {
      // Events at exactly the horizon run: bound is exclusive.
      const TimePs edge = sat_add(horizon, TimePs{1});
      for (TimePs& w : window_) w = std::min(w, edge);
    }
    return true;
  }

  void run_loop(TimePs horizon, bool bounded) {
    const std::uint32_t n = size();
    const unsigned workers = effective_threads();
    if (workers <= 1) {
      std::vector<MailboxBase::StagedRef> scratch;
      for (;;) {
        for (std::uint32_t d = 0; d < n; ++d) merge_domain(d, &scratch);
        if (!plan_windows(horizon, bounded)) break;
        for (std::uint32_t d = 0; d < n; ++d) {
          domains_[d]->run_window(window_[d]);
        }
      }
    } else {
      // Same loop, strided over a worker pool. Three barriers per window:
      // after merge, after planning (worker 0 plans alone), after the
      // window itself. std::barrier::arrive_and_wait provides the
      // happens-before edges that make the phase-partitioned mailbox
      // accesses race-free.
      std::barrier<> bar(workers);
      bool stop = false;  // written by worker 0 between barriers only
      auto work = [&](unsigned w) {
        std::vector<MailboxBase::StagedRef> scratch;
        for (;;) {
          for (std::uint32_t d = w; d < n; d += workers) {
            merge_domain(d, &scratch);
          }
          bar.arrive_and_wait();
          if (w == 0) stop = !plan_windows(horizon, bounded);
          bar.arrive_and_wait();
          if (stop) break;
          for (std::uint32_t d = w; d < n; d += workers) {
            domains_[d]->run_window(window_[d]);
          }
          bar.arrive_and_wait();
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(workers - 1);
      for (unsigned w = 1; w < workers; ++w) pool.emplace_back(work, w);
      work(0);
      for (std::thread& t : pool) t.join();
    }
    if (bounded) {
      for (auto& d : domains_) d->advance_clock_to(horizon);
    }
  }

  std::vector<std::unique_ptr<Domain>> domains_;
  std::vector<MailboxBase*> mailboxes_;
  std::vector<TimePs> ea_;      // planning scratch: earliest activity
  std::vector<TimePs> window_;  // per-domain exclusive window bound
  unsigned threads_;
  std::uint32_t next_mb_index_ = 0;
};

inline MailboxBase::MailboxBase(Domain& producer, Domain& consumer,
                                TimePs latency)
    : prod_(&producer), cons_(&consumer), latency_(latency) {
  assert(!latency.is_zero() &&
         "a cross-domain edge needs nonzero link latency for lookahead");
  assert(&producer != &consumer && "mailboxes only cross domain boundaries");
  assert(producer.cluster() != nullptr &&
         producer.cluster() == consumer.cluster() &&
         "both endpoints must belong to the same SimCluster");
  cluster_ = producer.cluster();
  cluster_->register_mailbox(this);
}

inline MailboxBase::~MailboxBase() {
  if (cluster_ != nullptr) cluster_->unregister_mailbox(this);
}

}  // namespace snacc::sim
