// RateServer: fluid-model FIFO bandwidth server.
//
// Models a shared serial resource (a PCIe link direction, a DRAM channel,
// an Ethernet wire, a NAND program pipe): each acquisition occupies the
// server for `per_op + bytes/rate`, requests are served in call order, and
// the awaiting coroutine resumes when its occupation ends. This collapses
// per-beat cycle simulation into O(1) events per transaction while
// preserving aggregate bandwidth and queueing delay.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace snacc::sim {

class RateServer {
 public:
  /// `gb_s` is decimal GB/s; `per_op` a fixed per-acquisition overhead.
  RateServer(Simulator& sim, double gb_s, TimePs per_op = TimePs{})
      : sim_(&sim), gb_s_(gb_s), per_op_(per_op) {}

  void set_rate(double gb_s) { gb_s_ = gb_s; }
  double rate() const { return gb_s_; }

  /// Awaitable: completes when the server has finished serializing `bytes`.
  /// The occupation window is computed eagerly (FIFO order is the *call*
  /// order) and the awaiter links its own timer node into the scheduler --
  /// one intrusive event per acquisition, no allocation. A zero-byte
  /// acquire still occupies `per_op` (+ `extra`): command-only traffic
  /// serializes like everything else. set_rate() applies to subsequent
  /// acquisitions only; in-flight occupations keep their computed windows.
  [[nodiscard]] auto acquire(std::uint64_t bytes, TimePs extra = TimePs{}) {
    const TimePs start = std::max(sim_->now(), next_free_);
    const TimePs occupy = per_op_ + transfer_time(bytes, gb_s_) + extra;
    next_free_ = start + occupy;
    total_bytes_ += bytes;
    ++total_ops_;
    busy_time_ += occupy;
    return sim_->delay_until(next_free_);
  }
  [[nodiscard]] auto acquire(Bytes bytes, TimePs extra = TimePs{}) {
    return acquire(bytes.value(), extra);
  }

  /// Time at which the server becomes idle (for utilization probes).
  TimePs busy_until() const { return next_free_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t total_ops() const { return total_ops_; }
  TimePs busy_time() const { return busy_time_; }

  /// Fraction of `elapsed` the server spent occupied (clamped to 1.0 --
  /// busy_time can exceed wall time transiently because occupations are
  /// charged eagerly at acquire()).
  double utilization(TimePs elapsed) const {
    if (elapsed.value() == 0) return 0.0;
    const double u = static_cast<double>(busy_time_.value()) /
                     static_cast<double>(elapsed.value());
    return u < 1.0 ? u : 1.0;
  }

 private:
  Simulator* sim_;
  double gb_s_;
  TimePs per_op_;
  TimePs next_free_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_ops_ = 0;
  TimePs busy_time_;
};

}  // namespace snacc::sim
