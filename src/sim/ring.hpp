// Growable FIFO ring buffer over raw storage -- the value store behind
// Channel<T> (items in flight, claimed hand-offs, parked producer values).
//
// Properties the channel relies on:
//   * amortized allocation-free: capacity only ever grows (power of two),
//     so a steady-state producer/consumer pair never allocates;
//   * T needs only a move constructor (no default construction, no
//     copy): slots are raw storage with manual lifetime;
//   * destruction of a non-empty ring destroys the remaining values --
//     values parked in a channel are channel-owned and cannot leak when a
//     suspended coroutine frame is torn down at simulation end.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace snacc::sim {

template <class T>
class RingBuf {
 public:
  RingBuf() = default;
  RingBuf(const RingBuf&) = delete;
  RingBuf& operator=(const RingBuf&) = delete;

  ~RingBuf() {
    clear();
    if (data_) std::allocator<T>().deallocate(data_, cap_);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void push_back(T&& v) {
    if (size_ == cap_) grow();
    ::new (static_cast<void*>(slot(head_ + size_))) T(std::move(v));
    ++size_;
  }

  T& front() {
    assert(size_ > 0);
    return *std::launder(slot(head_));
  }

  T pop_front() {
    assert(size_ > 0);
    T* p = std::launder(slot(head_));
    T v(std::move(*p));
    p->~T();
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
    return v;
  }

  void clear() {
    while (size_ > 0) {
      std::launder(slot(head_))->~T();
      head_ = (head_ + 1) & (cap_ - 1);
      --size_;
    }
    head_ = 0;
  }

 private:
  T* slot(std::size_t i) { return data_ + (i & (cap_ - 1)); }

  void grow() {
    const std::size_t new_cap = cap_ == 0 ? 8 : cap_ * 2;
    T* new_data = std::allocator<T>().allocate(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      T* p = std::launder(slot(head_ + i));
      ::new (static_cast<void*>(new_data + i)) T(std::move(*p));
      p->~T();
    }
    if (data_) std::allocator<T>().deallocate(data_, cap_);
    data_ = new_data;
    cap_ = new_cap;
    head_ = 0;
  }

  T* data_ = nullptr;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace snacc::sim
