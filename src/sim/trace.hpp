// Tracer: lightweight event tracing for debugging and analysis.
//
// Components record typed events (category + label + two operands) into a
// bounded ring owned by the Simulator. Tracing is off by default and costs
// one branch per call site when disabled; enabled categories are selected by
// bitmask. Dumps are deterministic and diff-friendly, so traces double as
// golden files in tests.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>

#include "common/units.hpp"

namespace snacc::sim {

enum class TraceCat : std::uint32_t {
  kNvmeSubmit = 1u << 0,     // SQE visible to the controller
  kNvmeComplete = 1u << 1,   // CQE posted
  kStreamerCmd = 1u << 2,    // user command accepted / split
  kStreamerRetire = 1u << 3, // in-order retirement
  kPcie = 1u << 4,           // fabric transactions (very chatty)
  kEth = 1u << 5,            // pause transitions
  kUser = 1u << 6,           // application-level markers
  kAll = 0xFFFFFFFF,
};

constexpr std::uint32_t operator|(TraceCat a, TraceCat b) {
  return static_cast<std::uint32_t>(a) | static_cast<std::uint32_t>(b);
}
constexpr std::uint32_t operator|(std::uint32_t a, TraceCat b) {
  return a | static_cast<std::uint32_t>(b);
}

struct TraceEvent {
  TimePs t;
  TraceCat cat = TraceCat::kUser;
  const char* label = "";  // must be a string literal / static string
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class Tracer {
 public:
  /// Enables the given category bitmask (0 disables).
  void enable(std::uint32_t categories, std::size_t capacity = 1u << 16) {
    mask_ = categories;
    capacity_ = capacity;
  }
  void disable() { mask_ = 0; }
  bool enabled(TraceCat cat) const {
    return (mask_ & static_cast<std::uint32_t>(cat)) != 0;
  }

  void record(TimePs now, TraceCat cat, const char* label, std::uint64_t a = 0,
              std::uint64_t b = 0) {
    if (!enabled(cat)) return;
    if (events_.size() == capacity_) {
      events_.pop_front();
      ++dropped_;
    }
    events_.push_back(TraceEvent{now, cat, label, a, b});
  }

  const std::deque<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Counts recorded events of one category.
  std::size_t count(TraceCat cat) const {
    std::size_t n = 0;
    for (const TraceEvent& e : events_) n += e.cat == cat ? 1 : 0;
    return n;
  }

  /// Writes a tab-separated dump (time_us, category, label, a, b).
  void dump(std::FILE* out) const {
    for (const TraceEvent& e : events_) {
      std::fprintf(out, "%.3f\t%s\t%s\t%llu\t%llu\n", to_us(e.t),
                   cat_name(e.cat), e.label,
                   static_cast<unsigned long long>(e.a),
                   static_cast<unsigned long long>(e.b));
    }
  }

  static const char* cat_name(TraceCat cat) {
    switch (cat) {
      case TraceCat::kNvmeSubmit: return "nvme-submit";
      case TraceCat::kNvmeComplete: return "nvme-complete";
      case TraceCat::kStreamerCmd: return "streamer-cmd";
      case TraceCat::kStreamerRetire: return "streamer-retire";
      case TraceCat::kPcie: return "pcie";
      case TraceCat::kEth: return "eth";
      case TraceCat::kUser: return "user";
      case TraceCat::kAll: break;
    }
    return "?";
  }

 private:
  std::uint32_t mask_ = 0;
  std::size_t capacity_ = 1u << 16;
  std::deque<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace snacc::sim
