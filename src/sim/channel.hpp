// Bounded FIFO channel with coroutine push/pop -- the backbone of all
// stream plumbing (AXI4-Stream links, queue hand-off, pipeline stages).
//
// Backpressure: push suspends while the channel is full, pop suspends while
// it is empty. Hand-offs between a waiting producer and consumer go through
// the event queue (zero-delay events), never by direct reentrant resumption,
// which keeps causality and stack depth bounded.
//
// IMPLEMENTATION NOTE (allocation-free awaiters and the g++ 12 caveat):
// waiters are an intrusive singly-linked FIFO list whose nodes live inside
// the awaiter objects (i.e. in the suspended coroutine's frame); values in
// flight live in channel-owned rings (sim/ring.hpp):
//
//   items_          values queued and not yet spoken for;
//   claimed_        values handed to a woken-but-not-yet-resumed consumer
//                   (the consumer pops its claim in await_resume);
//   pending_pushes_ values of producers parked on a full channel, FIFO-
//                   aligned with the producer waiter list.
//
// Keeping every value channel-owned has two payoffs. First, teardown
// safety: if the simulation ends while a producer/consumer is parked,
// ~Simulator destroys the frame -- the value is in a ring, not the frame,
// so nothing leaks. Second, awaiters carry only trivially-destructible
// state (an EventNode, a link pointer, flags). That sidesteps a g++ 12 bug
// where an awaiter returned by value from `f()` in `co_await f()` is
// duplicated bitwise and destroyed twice, corrupting any non-trivial member
// (see tests/sim_test.cpp:SharedOwnershipSurvivesHandoff); with trivially-
// destructible awaiters the spurious destroy is a no-op, and all address
// registration happens in await_suspend, after the object has reached its
// final frame slot.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <limits>
#include <optional>
#include <utility>

#include "sim/ring.hpp"
#include "sim/simulator.hpp"

namespace snacc::sim {

template <class T>
class Channel {
 public:
  Channel(Simulator& sim, std::size_t capacity)
      : sim_(&sim), capacity_(capacity == 0 ? 1 : capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();

  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= capacity_; }
  bool closed() const { return closed_; }

  /// Closes the channel: further pushes are forbidden; pops drain remaining
  /// items and then return std::nullopt. Waiting consumers wake up, and
  /// producers parked in a full-channel push() wake up with a failed-push
  /// result (their undelivered values are dropped).
  void close() {
    closed_ = true;
    while (PopWaiter* w = pop_waiters_.pop_front()) sim_->wake(w->ev);
    while (PushWaiter* w = push_waiters_.pop_front()) {
      w->closed_wake = true;
      sim_->wake(w->ev);
    }
    pending_pushes_.clear();
  }

  /// Non-blocking push; returns false when no room (or closed). The value
  /// is consumed only on success (callers may retry with the same object).
  [[nodiscard]] bool try_push(T& value) {
    assert(!closed_);
    if (closed_) return false;
    if (PopWaiter* w = pop_waiters_.pop_front()) {
      // Direct hand-off: the value parks in the claimed ring and the woken
      // consumer pops it in await_resume -- a later pop() cannot steal it.
      claimed_.push_back(std::move(value));
      w->delivered = true;
      sim_->wake(w->ev);
      return true;
    }
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    return true;
  }
  [[nodiscard]] bool try_push(T&& value) { return try_push(value); }

  [[nodiscard]] std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    std::optional<T> v(items_.pop_front());
    admit_pushers();
    return v;
  }

  /// co_await ch.push(v) -- true when the value was accepted; false when
  /// the channel was (or became) closed. Pushing on a closed channel is a
  /// programming error (asserts in debug builds) but is surfaced rather
  /// than parking the producer forever in release builds.
  auto push(T value) {
    struct Awaiter {
      Channel* ch;
      PushWaiter node;
      bool done;  // resolved synchronously; `ok` holds the result
      bool ok;
      bool await_ready() const noexcept { return done; }
      void await_suspend(std::coroutine_handle<> h) {
        node.ev.h = h;
        ch->push_waiters_.push_back(&node);
      }
      bool await_resume() const noexcept { return done ? ok : node.admitted; }
    };
    assert(!closed_);
    if (closed_) return Awaiter{this, {}, true, false};
    if (try_push(value)) return Awaiter{this, {}, true, true};
    // Park: the value joins the channel-owned pending ring, FIFO-aligned
    // with this producer's waiter node (linked in await_suspend; nothing
    // can run in between inside the same co_await expression).
    pending_pushes_.push_back(std::move(value));
    return Awaiter{this, {}, false, false};
  }

  /// co_await ch.pop() -- returns std::nullopt only if closed and drained.
  auto pop() {
    struct Awaiter {
      Channel* ch;
      PopWaiter node;
      bool await_ready() const noexcept {
        return !ch->items_.empty() || ch->closed_;
      }
      void await_suspend(std::coroutine_handle<> h) {
        node.ev.h = h;
        ch->pop_waiters_.push_back(&node);
      }
      std::optional<T> await_resume() {
        if (node.delivered) return std::optional<T>(ch->claimed_.pop_front());
        // Ready fast path, or woken by close: drain leftovers first.
        // Not a poll loop -- runs once per wakeup inside the primitive.
        return ch->try_pop();  // snacc-lint: allow(unbounded-poll)
      }
    };
    return Awaiter{this, {}};
  }

 private:
  struct PopWaiter {
    EventNode ev{};
    PopWaiter* next = nullptr;
    bool delivered = false;
  };
  struct PushWaiter {
    EventNode ev{};
    PushWaiter* next = nullptr;
    bool admitted = false;
    bool closed_wake = false;
  };

  // Intrusive FIFO of waiter nodes; nodes are owned by awaiter objects and
  // are unlinked exactly once -- when delivered/admitted/closed.
  template <class W>
  struct WaiterList {
    W* head = nullptr;
    W* tail = nullptr;
    bool empty() const { return head == nullptr; }
    void push_back(W* w) {
      w->next = nullptr;
      if (tail) tail->next = w;
      else head = w;
      tail = w;
    }
    W* pop_front() {
      W* w = head;
      if (w) {
        head = w->next;
        if (!head) tail = nullptr;
      }
      return w;
    }
  };

  void admit_pushers() {
    // Move pending producers' values into freed ring space, FIFO; each
    // admitted producer wakes through the event queue.
    while (!push_waiters_.empty() && items_.size() < capacity_) {
      items_.push_back(pending_pushes_.pop_front());
      PushWaiter* w = push_waiters_.pop_front();
      w->admitted = true;
      sim_->wake(w->ev);
    }
  }

  Simulator* sim_;
  std::size_t capacity_;
  RingBuf<T> items_;
  RingBuf<T> claimed_;
  RingBuf<T> pending_pushes_;
  WaiterList<PopWaiter> pop_waiters_;
  WaiterList<PushWaiter> push_waiters_;
  bool closed_ = false;
};

}  // namespace snacc::sim
