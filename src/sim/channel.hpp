// Bounded FIFO channel with coroutine push/pop -- the backbone of all
// stream plumbing (AXI4-Stream links, queue hand-off, pipeline stages).
//
// Backpressure: push suspends while the channel is full, pop suspends while
// it is empty. Hand-offs between a waiting producer and consumer go through
// the event queue (zero-delay events), never by direct reentrant resumption,
// which keeps causality and stack depth bounded.
//
// IMPLEMENTATION NOTE: awaiter objects hold only trivially-copyable state
// (a channel pointer and a std::list iterator); all values in flight live in
// channel-owned nodes. GCC 12 miscompiles `co_await f()` when f returns an
// awaiter carrying non-trivial members by value (the awaiter is duplicated
// bitwise and destroyed twice, corrupting e.g. shared_ptr ownership); see
// tests/sim_test.cpp:SharedOwnershipSurvivesHandoff for the regression test.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <limits>
#include <list>
#include <optional>
#include <utility>

#include "sim/simulator.hpp"

namespace snacc::sim {

template <class T>
class Channel {
 public:
  Channel(Simulator& sim, std::size_t capacity)
      : sim_(&sim), capacity_(capacity == 0 ? 1 : capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();

  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= capacity_; }
  bool closed() const { return closed_; }

  /// Closes the channel: further pushes are forbidden; pops drain remaining
  /// items and then return std::nullopt. Waiting consumers wake up.
  void close() {
    closed_ = true;
    for (PopNode& node : pop_nodes_) {
      if (!node.delivered && node.handle) schedule(node.handle);
    }
  }

  /// Non-blocking push; returns false when no room. The value is consumed
  /// only on success (callers may retry with the same object).
  bool try_push(T& value) {
    assert(!closed_);
    if (PopNode* consumer = first_hungry_consumer()) {
      deliver(*consumer, std::move(value));
      return true;
    }
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    return true;
  }
  bool try_push(T&& value) { return try_push(value); }

  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    admit_pushers();
    return v;
  }

  /// co_await ch.push(v) -- completes when the value is accepted.
  auto push(T value) {
    struct Awaiter {
      Channel* ch;
      typename std::list<PushNode>::iterator node;
      bool ready;
      bool await_ready() const noexcept { return ready; }
      void await_suspend(std::coroutine_handle<> h) { node->handle = h; }
      void await_resume() {
        if (!ready) ch->push_nodes_.erase(node);
      }
    };
    assert(!closed_);
    if (try_push(value)) {
      return Awaiter{this, {}, true};
    }
    push_nodes_.push_back(PushNode(std::move(value)));
    return Awaiter{this, std::prev(push_nodes_.end()), false};
  }

  /// co_await ch.pop() -- returns std::nullopt only if closed and drained.
  auto pop() {
    struct Awaiter {
      Channel* ch;
      typename std::list<PopNode>::iterator node;
      bool await_ready() const noexcept {
        return node->delivered || ch->closed_;
      }
      void await_suspend(std::coroutine_handle<> h) { node->handle = h; }
      std::optional<T> await_resume() {
        std::optional<T> result;
        if (node->delivered) {
          result = std::move(node->value);
        } else {
          // Woken by close (or ready-on-closed): drain leftovers first.
          // Not a poll loop -- runs once per wakeup inside the primitive.
          result = ch->try_pop();  // snacc-lint: allow(unbounded-poll)
        }
        ch->pop_nodes_.erase(node);
        return result;
      }
    };
    pop_nodes_.push_back(PopNode());
    auto it = std::prev(pop_nodes_.end());
    if (auto v = try_pop()) {
      it->value = std::move(v);
      it->delivered = true;
    }
    return Awaiter{this, it};
  }

 private:
  // Non-aggregates by design: both nodes hold T and are constructed inside
  // co_await full expressions (see the g++ 12 note above).
  struct PopNode {
    std::coroutine_handle<> handle{};
    std::optional<T> value;
    bool delivered = false;

    PopNode() = default;
    PopNode(PopNode&&) noexcept = default;
    PopNode& operator=(PopNode&&) noexcept = default;
  };
  struct PushNode {
    std::coroutine_handle<> handle{};
    T value;
    bool admitted = false;

    explicit PushNode(T v) : value(std::move(v)) {}
    PushNode(PushNode&&) noexcept = default;
    PushNode& operator=(PushNode&&) noexcept = default;
  };

  void schedule(std::coroutine_handle<> h) {
    sim_->after(TimePs{}, [h] { h.resume(); });
  }

  PopNode* first_hungry_consumer() {
    for (PopNode& node : pop_nodes_) {
      if (!node.delivered) return &node;
    }
    return nullptr;
  }

  void deliver(PopNode& node, T&& value) {
    node.value.emplace(std::move(value));
    node.delivered = true;
    // The handle is always set by the time a push can run: an undelivered
    // node without a handle exists only synchronously inside pop().
    if (node.handle) schedule(node.handle);
  }

  void admit_pushers() {
    // Move pending producers' values into freed ring space, FIFO. Each node
    // is erased by its own awaiter's await_resume after the wake-up.
    for (PushNode& node : push_nodes_) {
      if (items_.size() >= capacity_) break;
      if (node.admitted) continue;
      items_.push_back(std::move(node.value));
      node.admitted = true;
      if (node.handle) schedule(node.handle);
    }
  }

  Simulator* sim_;
  std::size_t capacity_;
  std::deque<T> items_;
  std::list<PopNode> pop_nodes_;
  std::list<PushNode> push_nodes_;
  bool closed_ = false;
};

}  // namespace snacc::sim
