// sim::Task -- the coroutine type all device/model processes are written in.
//
// Two usage modes:
//   * `co_await some_task()`     -- structured: the caller suspends until the
//                                   child finishes; the child frame is freed
//                                   by the temporary Task's destructor.
//   * `sim.spawn(some_task())`   -- detached: the frame frees itself when the
//                                   coroutine runs to completion.
// Tasks are lazy: nothing runs until awaited or spawned. Exceptions escaping
// a model process are programming errors and terminate the simulation.
#pragma once

#include <coroutine>
#include <cstdio>
#include <exception>
#include <utility>

#include "sim/simulator.hpp"

namespace snacc::sim {

class [[nodiscard]] Task {
 public:
  struct promise_type {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        promise_type& p = h.promise();
        std::coroutine_handle<> next =
            p.continuation ? p.continuation : std::noop_coroutine();
        if (p.detached) {
          // Frame owns itself in detached mode; deregister from the
          // simulator's end-of-life registry before freeing.
          p.sim->drop_detached(&p.node);
          h.destroy();
        }
        return next;
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      std::fputs("snacc::sim: exception escaped a Task; aborting\n", stderr);
      std::terminate();
    }

    std::coroutine_handle<> continuation;
    Simulator* sim = nullptr;          // set by spawn(), with node
    Simulator::DetachedNode node;
    EventNode start_ev;                // schedules the detached start
    bool detached = false;
  };

  Task() = default;
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }

  /// Awaiting a Task starts it (lazy) with symmetric transfer and resumes
  /// the awaiter when it completes.
  bool await_ready() const noexcept { return !h_ || h_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  void await_resume() const noexcept {}

 private:
  friend class Domain;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}

  std::coroutine_handle<promise_type> release() { return std::exchange(h_, {}); }
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  std::coroutine_handle<promise_type> h_;
};

inline void Simulator::spawn(Task task) {
  auto h = task.release();
  if (!h) return;
  auto& p = h.promise();
  p.detached = true;
  p.sim = this;
  p.node.frame = h;
  adopt_detached(&p.node);
  // Start through the event queue so spawn() never reenters model code. The
  // start event's node lives in the promise -- no allocation.
  schedule_resume(p.start_ev, h, now());
}

}  // namespace snacc::sim
