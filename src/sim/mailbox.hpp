// Mailbox<T>: the cross-domain variant of sim::Channel -- a bounded SPSC
// FIFO whose two ends live in DIFFERENT event domains, with a timestamped
// handoff through the owning SimCluster's barrier merge.
//
// Semantics mirror Channel<T> as closely as the domain boundary allows:
//
//   * push() suspends while the mailbox is out of credits (capacity bounds
//     the number of values accepted but not yet popped) and resolves to
//     `false` when the mailbox was closed from either end -- the same
//     failed-push result a parked Channel producer gets from close();
//   * pop() suspends while nothing has arrived and resolves to nullopt once
//     the producer's close() marker has arrived AND every earlier value has
//     been drained (drain-at-shutdown ordering: a value pushed before
//     close() is never lost);
//   * close() is the producer-side shutdown; close_rx() is the consumer
//     hanging up, which fails subsequent/parked pushes after one link
//     latency.
//
// Timing model: a value pushed at producer time `t` becomes poppable at
// consumer time `t + latency`; a pop at consumer time `u` returns the
// credit at producer time `u + latency`. The latency is the edge's
// conservative lookahead (see sim/cluster.hpp), which is why it must be
// nonzero.
//
// Implementation notes. Values in flight always live in mailbox-owned
// storage (staging vectors, delivery slots, arrival ring) and awaiters hold
// only trivially-destructible members, for exactly the reasons documented
// at length in sim/channel.hpp (teardown safety when ~Domain destroys
// parked frames, and the g++ 12 by-value-awaiter bug). Each side's state is
// touched only by its own domain's thread during window execution; the
// cross-thread staging vectors are handed over at the cluster barrier, so
// there are no locks and no atomics anywhere on the path.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/ring.hpp"
#include "sim/simulator.hpp"

namespace snacc::sim {

template <class T>
class Mailbox final : public MailboxBase {
 public:
  /// `capacity` values may be accepted-but-not-yet-popped before push()
  /// parks (>= 1). `latency` is the link delay and conservative lookahead.
  Mailbox(Domain& producer, Domain& consumer, std::size_t capacity,
          TimePs latency)
      : MailboxBase(producer, consumer, latency),
        credits_(capacity == 0 ? 1 : capacity) {}

  ~Mailbox() override {
    // Withdraw any still-linked slot nodes from the domain heaps: the nodes
    // die with this object, and ~Domain must not walk freed memory.
    for (auto& s : delivery_slots_) {
      if (s->linked) cons_->cancel(*s);
    }
    for (auto& s : feedback_slots_) {
      if (s->linked) prod_->cancel(*s);
    }
  }

  // -- Producer side (producer domain only) --------------------------------

  /// co_await mb.push(v) -- true when the value was accepted; false when
  /// the mailbox was (or became) closed from either end. Mirrors
  /// Channel::push, including the programming-error assert on pushing
  /// after our own close().
  auto push(T value) {
    struct Awaiter {
      Mailbox* mb;
      PushWaiter node;
      bool done;  // resolved synchronously; `ok` holds the result
      bool ok;
      bool await_ready() const noexcept { return done; }
      void await_suspend(std::coroutine_handle<> h) {
        node.ev.h = h;
        mb->push_waiters_.push_back(&node);
      }
      bool await_resume() const noexcept { return done ? ok : node.admitted; }
    };
    assert(!closed_tx_);
    if (closed_tx_ || peer_closed_) return Awaiter{this, {}, true, false};
    if (credits_ > 0) {
      --credits_;
      stage_out(Kind::kData, std::move(value));
      return Awaiter{this, {}, true, true};
    }
    // Park: the value waits in mailbox-owned storage, FIFO-aligned with
    // this producer's waiter node (linked in await_suspend; nothing can run
    // in between inside the same co_await expression).
    pending_.push_back(std::move(value));
    return Awaiter{this, {}, false, false};
  }

  /// Producer-side shutdown: the close marker crosses the link after every
  /// already-staged value (same timestamp ordering, later seq), parked
  /// producers wake with a failed-push result, their values are dropped.
  void close() {
    if (closed_tx_) return;
    closed_tx_ = true;
    stage_out(Kind::kClose, std::nullopt);
    pending_.clear();
    while (PushWaiter* w = push_waiters_.pop_front()) {
      w->admitted = false;
      prod_->wake(w->ev);
    }
  }

  bool closed() const { return closed_tx_; }
  /// True once the consumer's close_rx() has propagated across the link.
  bool peer_closed() const { return peer_closed_; }

  // -- Consumer side (consumer domain only) --------------------------------

  /// co_await mb.pop() -- nullopt only after the producer's close marker
  /// arrived and all earlier values were drained (or after close_rx()).
  auto pop() {
    struct Awaiter {
      Mailbox* mb;
      PopWaiter node;
      bool await_ready() const noexcept {
        return !mb->arrivals_.empty() || mb->rx_closed_;
      }
      void await_suspend(std::coroutine_handle<> h) {
        node.ev.h = h;
        mb->pop_waiters_.push_back(&node);
      }
      std::optional<T> await_resume() {
        if (node.delivered) return mb->take(&mb->claimed_);
        if (!mb->arrivals_.empty()) return mb->take(&mb->arrivals_);
        return std::nullopt;  // closed and drained
      }
    };
    return Awaiter{this, {}};
  }

  /// Consumer-side hang-up: parked pops wake with nullopt now; the
  /// producer sees failed pushes after one link latency; values still in
  /// flight are discarded on arrival.
  void close_rx() {
    if (rx_closed_) return;
    rx_closed_ = true;
    stage_fb(/*credit=*/0, /*hangup=*/true);
    arrivals_.clear();
    while (PopWaiter* w = pop_waiters_.pop_front()) cons_->wake(w->ev);
  }

  std::size_t backlog() const { return arrivals_.size(); }
  /// True once the producer's close marker has fired (pops may still drain
  /// earlier arrivals).
  bool rx_closed() const { return rx_closed_; }

 private:
  enum class Kind : std::uint8_t { kData, kClose };

  struct OutRec {
    TimePs t;
    std::uint64_t seq;
    Kind kind;
    std::optional<T> v;
  };
  struct FbRec {
    TimePs t;
    std::uint64_t seq;
    std::uint8_t credit;
    bool hangup;
  };

  struct PushWaiter {
    EventNode ev{};
    PushWaiter* next = nullptr;
    bool admitted = false;
  };
  struct PopWaiter {
    EventNode ev{};
    PopWaiter* next = nullptr;
    bool delivered = false;
  };
  template <class W>
  struct WaiterList {
    W* head = nullptr;
    W* tail = nullptr;
    bool empty() const { return head == nullptr; }
    void push_back(W* w) {
      w->next = nullptr;
      if (tail) tail->next = w;
      else head = w;
      tail = w;
    }
    W* pop_front() {
      W* w = head;
      if (w) {
        head = w->next;
        if (!head) tail = nullptr;
      }
      return w;
    }
  };

  /// A value (or close marker) crossing into the consumer domain: the
  /// cluster merge schedules the embedded node at the record's arrival
  /// time; firing it publishes the value inside the consumer's own event
  /// order. Slots are pooled and bounded by capacity + 1 (credits bound the
  /// data in flight; close adds one marker).
  struct DeliverySlot : EventNode {
    Mailbox* mb = nullptr;
    Kind kind = Kind::kData;
    std::optional<T> v;
  };
  struct FeedbackSlot : EventNode {
    Mailbox* mb = nullptr;
    std::uint8_t credit = 0;
    bool hangup = false;
  };

  void stage_out(Kind kind, std::optional<T> v) {
    outbox_.push_back(
        OutRec{prod_->now() + latency_, out_seq_++, kind, std::move(v)});
  }
  void stage_fb(std::uint8_t credit, bool hangup) {
    feedback_.push_back(
        FbRec{cons_->now() + latency_, fb_seq_++, credit, hangup});
  }

  std::optional<T> take(RingBuf<T>* ring) {
    std::optional<T> v(ring->pop_front());
    if (!rx_closed_) stage_fb(/*credit=*/1, /*hangup=*/false);
    return v;
  }

  static void on_deliver(EventNode& e) {
    auto* s = static_cast<DeliverySlot*>(&e);
    Mailbox* mb = s->mb;
    if (s->kind == Kind::kClose) {
      mb->rx_closed_ = true;
      while (PopWaiter* w = mb->pop_waiters_.pop_front()) {
        mb->cons_->wake(w->ev);
      }
    } else if (mb->rx_closed_) {
      // Consumer hung up while this value was on the wire: discard. No
      // credit either -- the producer is being failed via the hangup
      // record, not revived.
      s->v.reset();
    } else if (PopWaiter* w = mb->pop_waiters_.pop_front()) {
      // Direct hand-off: park the value in the claimed ring so a later
      // pop() cannot steal it from the woken consumer.
      mb->claimed_.push_back(std::move(*s->v));
      s->v.reset();
      w->delivered = true;
      mb->cons_->wake(w->ev);
    } else {
      mb->arrivals_.push_back(std::move(*s->v));
      s->v.reset();
    }
    mb->free_delivery_.push_back(s);
  }

  static void on_feedback(EventNode& e) {
    auto* s = static_cast<FeedbackSlot*>(&e);
    Mailbox* mb = s->mb;
    if (s->hangup) {
      mb->peer_closed_ = true;
      mb->pending_.clear();
      while (PushWaiter* w = mb->push_waiters_.pop_front()) {
        w->admitted = false;
        mb->prod_->wake(w->ev);
      }
    } else {
      mb->credits_ += s->credit;
      // Admit parked producers FIFO into the regained credits; each
      // admitted value is stamped at the credit's arrival time.
      while (mb->credits_ > 0 && !mb->push_waiters_.empty()) {
        --mb->credits_;
        mb->stage_out(Kind::kData, mb->pending_.pop_front());
        PushWaiter* w = mb->push_waiters_.pop_front();
        w->admitted = true;
        mb->prod_->wake(w->ev);
      }
    }
    mb->free_feedback_.push_back(s);
  }

  // -- MailboxBase merge hooks (see cluster.hpp for the threading rules) ---

  void stage_inbound(std::vector<StagedRef>* out) override {
    for (std::uint32_t i = 0; i < outbox_.size(); ++i) {
      out->push_back(StagedRef{outbox_[i].t, prod_->id(), mb_index_,
                               outbox_[i].seq, this, i});
    }
  }
  void deliver_staged(std::uint32_t idx) override {
    OutRec& r = outbox_[idx];
    DeliverySlot* s = take_delivery_slot();
    s->kind = r.kind;
    s->v = std::move(r.v);
    cons_->schedule(*s, r.t);
  }
  void finish_inbound() override { outbox_.clear(); }

  void stage_feedback(std::vector<StagedRef>* out) override {
    for (std::uint32_t i = 0; i < feedback_.size(); ++i) {
      out->push_back(StagedRef{feedback_[i].t, cons_->id(), mb_index_,
                               feedback_[i].seq, this, i});
    }
  }
  void apply_feedback_staged(std::uint32_t idx) override {
    const FbRec& r = feedback_[idx];
    FeedbackSlot* s = take_feedback_slot();
    s->credit = r.credit;
    s->hangup = r.hangup;
    prod_->schedule(*s, r.t);
  }
  void finish_feedback() override { feedback_.clear(); }

  DeliverySlot* take_delivery_slot() {
    if (!free_delivery_.empty()) {
      DeliverySlot* s = free_delivery_.back();
      free_delivery_.pop_back();
      return s;
    }
    delivery_slots_.push_back(std::make_unique<DeliverySlot>());
    DeliverySlot* s = delivery_slots_.back().get();
    s->fire = &Mailbox::on_deliver;
    s->mb = this;
    return s;
  }
  FeedbackSlot* take_feedback_slot() {
    if (!free_feedback_.empty()) {
      FeedbackSlot* s = free_feedback_.back();
      free_feedback_.pop_back();
      return s;
    }
    feedback_slots_.push_back(std::make_unique<FeedbackSlot>());
    FeedbackSlot* s = feedback_slots_.back().get();
    s->fire = &Mailbox::on_feedback;
    s->mb = this;
    return s;
  }

  // Producer-side state (producer domain's thread only).
  std::size_t credits_;
  std::uint64_t out_seq_ = 0;
  bool closed_tx_ = false;
  bool peer_closed_ = false;
  RingBuf<T> pending_;  // values of parked producers, FIFO with waiters
  WaiterList<PushWaiter> push_waiters_;
  std::vector<OutRec> outbox_;  // staged toward the consumer
  std::vector<std::unique_ptr<FeedbackSlot>> feedback_slots_;
  std::vector<FeedbackSlot*> free_feedback_;

  // Consumer-side state (consumer domain's thread only).
  std::uint64_t fb_seq_ = 0;
  bool rx_closed_ = false;
  RingBuf<T> arrivals_;  // delivered, time-due values
  RingBuf<T> claimed_;   // handed to a woken-but-not-resumed pop
  WaiterList<PopWaiter> pop_waiters_;
  std::vector<FbRec> feedback_;  // staged toward the producer
  std::vector<std::unique_ptr<DeliverySlot>> delivery_slots_;
  std::vector<DeliverySlot*> free_delivery_;
};

}  // namespace snacc::sim
