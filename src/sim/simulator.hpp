// Discrete-event simulation kernel.
//
// A Domain owns a time-ordered event queue; model code is written as
// C++20 coroutines (sim::Task) that `co_await` delays, channels, futures and
// rate servers. Events at equal timestamps run in schedule order (stable
// sequence numbers), which makes runs fully deterministic.
//
// A Domain is the unit of parallelism: it has its own clock, its own event
// heap, and its own slab pools, so distinct domains share no mutable state
// and can run on different threads. A standalone Domain (the historical
// `Simulator` -- that name remains as an alias) is the whole simulation;
// several domains grouped under a sim::SimCluster (sim/cluster.hpp) run
// concurrently with conservative lookahead synchronization, exchanging
// traffic only through sim::Mailbox (sim/mailbox.hpp) boundaries.
//
// The queue is *intrusive and allocation-free on the hot path*: every
// suspension primitive (delay, channel hand-off, future completion, rate
// server, spawn) embeds an EventNode in its awaiter or promise object --
// which lives in the suspended coroutine's frame -- and links that node into
// the scheduler directly. The heap itself stores (time, seq, node*) entries
// by value in a flat vector, so scheduling N simultaneous events costs zero
// heap allocations in steady state and comparisons never chase pointers.
// The legacy `at(t, fn)` closure API remains for tests and cold setup code
// (it heap-allocates a self-owning node); tools/snacc-lint's `lambda-event`
// rule keeps it out of src/ hot paths. docs/MODEL.md ("Scheduler
// internals") documents the design and the ordering guarantee.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <concepts>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sim/trace.hpp"

namespace snacc::sim {

class Task;
class SimCluster;

/// A strong unit wrapper (Bytes, Lba, SlotIdx, TimePs, ...): anything whose
/// raw value is reachable via `.value()`.
template <typename T>
concept UnitLike = requires(const T& t) {
  { t.value() } -> std::convertible_to<std::uint64_t>;
};

template <UnitLike T>
constexpr std::uint64_t raw_trace_arg(const T& t) {
  return t.value();
}
template <typename T>
  requires std::convertible_to<T, std::uint64_t>
constexpr std::uint64_t raw_trace_arg(const T& t) {
  return static_cast<std::uint64_t>(t);
}

/// Intrusive schedulable unit. The node is owned by its embedding object
/// (awaiter, coroutine promise, or a test's stack frame) and must stay alive
/// until it fires; it is linked into the queue at most once at a time and is
/// reusable after firing.
///
/// Dispatch: a null `fire` means "resume `h`" -- the dominant case, one
/// indirect call with no type erasure. A non-null `fire` receives the node
/// and owns its lifetime (the closure path deletes itself).
struct EventNode {
  void (*fire)(EventNode&) = nullptr;
  std::coroutine_handle<> h{};
  bool linked = false;
#ifndef NDEBUG
  /// Debug builds pin each node to the first domain that schedules it: a
  /// node (and therefore the coroutine frame embedding it) resumed on a
  /// different domain would race that domain's heap and slab pools, so it
  /// fails fast here instead of corrupting a pool.
  class Domain* debug_owner = nullptr;
#endif
};

class Domain {
 public:
  /// Intrusive registry node for detached (spawned) coroutine frames; lives
  /// inside the frame's promise. A task that runs to completion unlinks
  /// itself in Task's FinalAwaiter; anything still linked when the Simulator
  /// dies is a suspended process (server loop blocked on a channel, worker
  /// parked on a semaphore) whose frame would otherwise leak.
  struct DetachedNode {
    DetachedNode* prev = nullptr;
    DetachedNode* next = nullptr;
    std::coroutine_handle<> frame;
  };

  Domain() { heap_.reserve(1024); }
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Cluster identity: 0 / nullptr for a standalone domain. Set once by
  /// SimCluster at construction; the id is the tie-break key for
  /// cross-domain merges, so it never changes over a domain's life.
  std::uint32_t id() const { return id_; }
  SimCluster* cluster() const { return cluster_; }

  ~Domain() {
    // Discard pending events without running them. Closure nodes own
    // themselves and must be freed; intrusive nodes are owned by frames or
    // stack objects that are still alive at this point (detached frames are
    // only destroyed below, after this sweep, so no node is read after its
    // owner died).
    for (const HeapEntry& e : heap_) {
      e.node->linked = false;
      if (e.node->fire == &ClosureNode::invoke) {
        delete static_cast<ClosureNode*>(e.node);
      }
    }
    heap_.clear();
    // Destroy still-suspended spawned frames, newest first. Unlink before
    // destroy: the node lives inside the frame being freed.
    while (detached_) {
      DetachedNode* n = detached_;
      detached_ = n->next;
      if (detached_) detached_->prev = nullptr;
      n->frame.destroy();
    }
    // Pool slabs release with the members; anything a frame destructor
    // returned to the pool above only touched slab memory, which is freed
    // last.
  }

  TimePs now() const { return now_; }

  // -- Intrusive scheduling (the hot path) ---------------------------------

  /// Links `n` to fire at absolute time `t` (must be >= now()). The caller
  /// keeps ownership; `n` must outlive the firing. Equal-timestamp events
  /// fire in schedule-call order (a per-simulator sequence number breaks
  /// ties), which is the determinism guarantee every model relies on.
  void schedule(EventNode& n, TimePs t) {
    assert(t >= now_);
    assert(!n.linked);
#ifndef NDEBUG
    assert((n.debug_owner == nullptr || n.debug_owner == this) &&
           "EventNode scheduled on a domain other than its owner (a frame "
           "crossed a domain boundary without a Mailbox)");
    n.debug_owner = this;
#endif
    n.linked = true;
    heap_push(HeapEntry{t, seq_++, &n});
  }

  /// Links `n` to resume coroutine `h` at absolute time `t`.
  void schedule_resume(EventNode& n, std::coroutine_handle<> h, TimePs t) {
    n.fire = nullptr;
    n.h = h;
    schedule(n, t);
  }

  /// Zero-delay wakeup at the current time: the scheduled-order equivalent
  /// of the old `after(0, [h]{ h.resume(); })` hand-off. `n.h` (and `n.fire`
  /// if used) must already be set -- typically by an awaiter's
  /// await_suspend.
  void wake(EventNode& n) { schedule(n, now_); }

  // -- Legacy closure scheduling (cold paths: tests, setup) ----------------

  /// Schedules `fn` at absolute time `t` (must be >= now()). Type-erased and
  /// heap-allocating -- fine for tests and cold setup, but hot paths must
  /// use the intrusive API above (tools/snacc-lint's `lambda-event` rule
  /// enforces this under src/).
  void at(TimePs t, std::function<void()> fn) {
    auto* n = new ClosureNode(std::move(fn));
    n->fire = &ClosureNode::invoke;
    schedule(*n, t);
  }

  /// Schedules `fn` after a relative delay.
  void after(TimePs delay, std::function<void()> fn) {
    at(now_ + delay, std::move(fn));
  }

  /// Schedules a coroutine resumption at absolute time `t` without an
  /// intrusive node to link (allocates; prefer schedule_resume).
  void resume_at(TimePs t, std::coroutine_handle<> h) {
    at(t, [h] { h.resume(); });
  }

  /// Starts a coroutine task detached; the frame frees itself on completion
  /// and is registered here so a frame suspended at simulation end is freed
  /// by ~Simulator. Defined in task.hpp (needs the full Task type).
  void spawn(Task task);

  void adopt_detached(DetachedNode* n) {
    n->prev = nullptr;
    n->next = detached_;
    if (detached_) detached_->prev = n;
    detached_ = n;
  }
  void drop_detached(DetachedNode* n) {
    if (n->prev) n->prev->next = n->next;
    else detached_ = n->next;
    if (n->next) n->next->prev = n->prev;
  }

  /// Runs a single event. Returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    const HeapEntry e = heap_pop();
    assert(e.t >= now_);
    now_ = e.t;
    ++events_processed_;
    // Hide the frame pulls of upcoming events behind this dispatch: a node
    // lives inside its owning awaiter/promise (i.e. in the suspended frame),
    // and the frame header sits at lower addresses on the same or a
    // neighbouring line, so for the next event both node and node-64 are
    // warmed (wakeup fields plus resume pointer). Beyond the new front, the
    // root's children are the only candidates for the pop after next --
    // their node line alone gives each frame ~2 dispatches of pull latency
    // (the second line measured as not worth the extra prefetch slots).
    const std::size_t live = heap_.size();
    if (live > 0) {
      const char* nx = reinterpret_cast<const char*>(heap_.front().node);
      __builtin_prefetch(nx);
      __builtin_prefetch(nx - 64);
      const std::size_t lookahead = std::min<std::size_t>(live, 1 + kArity);
      for (std::size_t i = 1; i < lookahead; ++i) {
        __builtin_prefetch(heap_[i].node);
      }
    }
    EventNode& n = *e.node;
    n.linked = false;
    // Resume is the overwhelmingly common dispatch; keeping it on the
    // fall-through path is worth ~8% event throughput on GCC 12.
    if (n.fire == nullptr) [[likely]] n.h.resume();
    else n.fire(n);
    return true;
  }

  /// Runs until the queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Runs until simulated time would exceed `t` (events at exactly `t` run).
  /// Returns the new current time.
  TimePs run_until(TimePs t) {
    while (!heap_.empty() && heap_.front().t <= t) step();
    now_ = std::max(now_, t);
    return now_;
  }

  /// Runs until `pred()` becomes true or the queue drains.
  template <class Pred>
  bool run_while(Pred&& pred) {
    while (pred()) {
      if (!step()) return false;
    }
    return true;
  }

  // -- Cluster machinery (sim/cluster.hpp; harmless standalone) ------------

  /// Sentinel for "no pending event" -- beyond any reachable simulated time.
  static constexpr TimePs kNever{~0ull};

  /// Timestamp of the earliest pending event, or kNever when idle. The
  /// cluster's lookahead computation reads this at every synchronization
  /// barrier; it never dereferences the node.
  TimePs next_event_time() const {
    return heap_.empty() ? kNever : heap_.front().t;
  }

  /// Runs every event strictly before `before` and stops -- one conservative
  /// window. Unlike run_until, the clock is left at the last processed
  /// event, not advanced to the window edge (the next window's lower bound
  /// is computed from next_event_time, which must stay exact).
  void run_window(TimePs before) {
    while (!heap_.empty() && heap_.front().t < before) step();
  }

  /// Unlinks a scheduled node without firing it (no-op when not linked).
  /// O(pending) -- teardown-only, used by ~Mailbox to withdraw delivery
  /// nodes whose storage dies before this domain does.
  void cancel(EventNode& n) {
    if (!n.linked) return;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (heap_[i].node != &n) continue;
      heap_erase(i);
      n.linked = false;
      return;
    }
    assert(false && "linked EventNode missing from its domain's heap");
  }

  std::uint64_t events_processed() const { return events_processed_; }
  bool idle() const { return heap_.empty(); }

  /// Event tracing (off by default); see sim/trace.hpp.
  Tracer& tracer() { return tracer_; }
  void trace(TraceCat cat, const char* label, std::uint64_t a = 0,
             std::uint64_t b = 0) {
    tracer_.record(now_, cat, label, a, b);
  }
  /// Typed overload: accepts the strong unit wrappers (Bytes, Lba, SlotIdx,
  /// ...) directly, so model code never unwraps a domain value just to
  /// trace it. Enabled whenever at least one argument is unit-like.
  template <typename A, typename B = std::uint64_t>
    requires(UnitLike<A> || UnitLike<B>)
  void trace(TraceCat cat, const char* label, const A& a, const B& b = 0) {
    trace(cat, label, raw_trace_arg(a), raw_trace_arg(b));
  }

  /// Awaitable: suspends the current coroutine for `delay`. The timer node
  /// lives in the awaiter itself -- no allocation, no type erasure.
  auto delay(TimePs d) { return DelayAwaiter{this, now_ + d}; }
  /// Awaitable: suspends until absolute time `t` (no-op if in the past).
  auto delay_until(TimePs t) { return DelayAwaiter{this, std::max(t, now_)}; }

  // -- Micro-object pool ---------------------------------------------------

  /// Size-class recycling allocator for simulation-lifetime micro-objects
  /// (one-shot future states). Freed blocks go on a per-class freelist and
  /// are reused by the next allocation; memory returns to the OS only at
  /// ~Simulator. Blocks above the largest class fall back to operator new.
  void* pool_alloc(std::size_t bytes) {
    const std::size_t cls = (bytes + kPoolStep - 1) / kPoolStep;
    if (cls == 0 || cls > kPoolClasses) return ::operator new(bytes);
    void*& head = pool_free_[cls - 1];
    if (head != nullptr) {
      void* p = head;
      head = *static_cast<void**>(p);
      return p;
    }
    const std::size_t sz = cls * kPoolStep;
    if (slabs_.empty() || slab_used_ + sz > kSlabBytes) {
      slabs_.push_back(std::make_unique<std::byte[]>(kSlabBytes));
      slab_used_ = 0;
    }
    void* p = slabs_.back().get() + slab_used_;
    slab_used_ += sz;
    return p;
  }
  void pool_free(void* p, std::size_t bytes) noexcept {
    const std::size_t cls = (bytes + kPoolStep - 1) / kPoolStep;
    if (cls == 0 || cls > kPoolClasses) {
      ::operator delete(p);
      return;
    }
    *static_cast<void**>(p) = pool_free_[cls - 1];
    pool_free_[cls - 1] = p;
  }

 private:
  // Heap entries carry the ordering key by value: sift operations compare
  // and move 24-byte PODs and never dereference the node, so a cold frame
  // cannot cost a cache miss per comparison.
  struct HeapEntry {
    TimePs t;
    std::uint64_t seq;
    EventNode* node;
  };
  static bool later(const HeapEntry& a, const HeapEntry& b) {
    return a.t != b.t ? a.t > b.t : a.seq > b.seq;
  }

  // 4-ary min-heap with hole percolation (one placement per operation
  // instead of a swap chain). Arity 4 halves the depth of the sift-down
  // that dominates pop cost; the extra sibling comparisons stay within one
  // cache line of entries.
  static constexpr std::size_t kArity = 4;

  void heap_push(HeapEntry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);  // reserve the slot; value is placed below
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!later(heap_[parent], e)) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  HeapEntry heap_pop() {
    const HeapEntry top = heap_.front();
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = i * kArity + 1;
        if (first >= n) break;
        std::size_t min_child = first;
        const std::size_t end = std::min(first + kArity, n);
        for (std::size_t c = first + 1; c < end; ++c) {
          if (later(heap_[min_child], heap_[c])) min_child = c;
        }
        if (!later(last, heap_[min_child])) break;
        heap_[i] = heap_[min_child];
        i = min_child;
      }
      heap_[i] = last;
    }
    return top;
  }

  /// Removes the entry at heap index `i` (for cancel; cold path). The
  /// displaced tail entry is sifted up or down as its key demands.
  void heap_erase(std::size_t i) {
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (i >= n) return;  // the erased entry was the tail
    std::size_t j = i;
    while (j > 0) {
      const std::size_t parent = (j - 1) / kArity;
      if (!later(heap_[parent], last)) break;
      heap_[j] = heap_[parent];
      j = parent;
    }
    if (j != i) {
      heap_[j] = last;
      return;
    }
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t min_child = first;
      const std::size_t end = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (later(heap_[min_child], heap_[c])) min_child = c;
      }
      if (!later(last, heap_[min_child])) break;
      heap_[i] = heap_[min_child];
      i = min_child;
    }
    heap_[i] = last;
  }

  struct ClosureNode : EventNode {
    explicit ClosureNode(std::function<void()> f) : body(std::move(f)) {}
    std::function<void()> body;
    static void invoke(EventNode& e) {
      auto* c = static_cast<ClosureNode*>(&e);
      std::function<void()> fn = std::move(c->body);
      delete c;
      fn();
    }
  };

  struct DelayAwaiter {
    Domain* sim;
    TimePs wake;
    EventNode node{};
    bool await_ready() const noexcept { return wake <= sim->now_; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->schedule_resume(node, h, wake);
    }
    void await_resume() const noexcept {}
  };

  static constexpr std::size_t kPoolStep = 16;
  static constexpr std::size_t kPoolClasses = 32;  // up to 512-byte blocks
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  friend class SimCluster;

  /// Bounded-run epilogue (cluster run_until): the clock advances to the
  /// horizon exactly like Simulator::run_until does after its last event.
  void advance_clock_to(TimePs t) { now_ = std::max(now_, t); }

  std::vector<HeapEntry> heap_;
  DetachedNode* detached_ = nullptr;  // spawned frames still in flight
  Tracer tracer_;
  TimePs now_;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  SimCluster* cluster_ = nullptr;  // set once by SimCluster
  std::uint32_t id_ = 0;
  std::array<void*, kPoolClasses> pool_free_{};
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::size_t slab_used_ = 0;
};

/// The historical name: a standalone Domain is exactly the old
/// single-threaded Simulator, and every single-domain code path is
/// unchanged. New code that is explicit about partitioning should say
/// Domain; `Simulator` remains correct everywhere else.
using Simulator = Domain;

}  // namespace snacc::sim
