// Discrete-event simulation kernel.
//
// A Simulator owns a time-ordered event queue; model code is written as
// C++20 coroutines (sim::Task) that `co_await` delays, channels, futures and
// rate servers. Events at equal timestamps run in schedule order (stable
// sequence numbers), which makes runs fully deterministic.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sim/trace.hpp"

namespace snacc::sim {

class Task;

class Simulator {
 public:
  /// Intrusive registry node for detached (spawned) coroutine frames; lives
  /// inside the frame's promise. A task that runs to completion unlinks
  /// itself in Task's FinalAwaiter; anything still linked when the Simulator
  /// dies is a suspended process (server loop blocked on a channel, worker
  /// parked on a semaphore) whose frame would otherwise leak.
  struct DetachedNode {
    DetachedNode* prev = nullptr;
    DetachedNode* next = nullptr;
    std::coroutine_handle<> frame;
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  ~Simulator() {
    // Destroy still-suspended spawned frames, newest first. Unlink before
    // destroy: the node lives inside the frame being freed. Pending queue_
    // events that capture handles are discarded without running, so nothing
    // resumes into a freed frame.
    while (detached_) {
      DetachedNode* n = detached_;
      detached_ = n->next;
      if (detached_) detached_->prev = nullptr;
      n->frame.destroy();
    }
  }

  TimePs now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  void at(TimePs t, std::function<void()> fn) {
    assert(t >= now_);
    queue_.push(Event{t, seq_++, std::move(fn)});
  }

  /// Schedules `fn` after a relative delay.
  void after(TimePs delay, std::function<void()> fn) {
    at(now_ + delay, std::move(fn));
  }

  /// Schedules a coroutine resumption at absolute time `t`.
  void resume_at(TimePs t, std::coroutine_handle<> h) {
    at(t, [h] { h.resume(); });
  }

  /// Starts a coroutine task detached; the frame frees itself on completion
  /// and is registered here so a frame suspended at simulation end is freed
  /// by ~Simulator. Defined in task.hpp (needs the full Task type).
  void spawn(Task task);

  void adopt_detached(DetachedNode* n) {
    n->prev = nullptr;
    n->next = detached_;
    if (detached_) detached_->prev = n;
    detached_ = n;
  }
  void drop_detached(DetachedNode* n) {
    if (n->prev) n->prev->next = n->next;
    else detached_ = n->next;
    if (n->next) n->next->prev = n->prev;
  }

  /// Runs a single event. Returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    assert(ev.t >= now_);
    now_ = ev.t;
    ++events_processed_;
    ev.fn();
    return true;
  }

  /// Runs until the queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Runs until simulated time would exceed `t` (events at exactly `t` run).
  /// Returns the new current time.
  TimePs run_until(TimePs t) {
    while (!queue_.empty() && queue_.top().t <= t) step();
    now_ = std::max(now_, t);
    return now_;
  }

  /// Runs until `pred()` becomes true or the queue drains.
  template <class Pred>
  bool run_while(Pred&& pred) {
    while (pred()) {
      if (!step()) return false;
    }
    return true;
  }

  std::uint64_t events_processed() const { return events_processed_; }
  bool idle() const { return queue_.empty(); }

  /// Event tracing (off by default); see sim/trace.hpp.
  Tracer& tracer() { return tracer_; }
  void trace(TraceCat cat, const char* label, std::uint64_t a = 0,
             std::uint64_t b = 0) {
    tracer_.record(now_, cat, label, a, b);
  }

  /// Awaitable: suspends the current coroutine for `delay`.
  auto delay(TimePs d) { return DelayAwaiter{this, now_ + d}; }
  /// Awaitable: suspends until absolute time `t` (no-op if in the past).
  auto delay_until(TimePs t) { return DelayAwaiter{this, std::max(t, now_)}; }

 private:
  struct Event {
    TimePs t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  struct DelayAwaiter {
    Simulator* sim;
    TimePs wake;
    bool await_ready() const noexcept { return wake <= sim->now(); }
    void await_suspend(std::coroutine_handle<> h) const { sim->resume_at(wake, h); }
    void await_resume() const noexcept {}
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  DetachedNode* detached_ = nullptr;  // spawned frames still in flight
  Tracer tracer_;
  TimePs now_;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
};

}  // namespace snacc::sim
