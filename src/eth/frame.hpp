// Ethernet frames for the 100 G ingest path (Sec. 4.7).
//
// Data frames carry a payload plus an application header (stream id +
// offset) used by the receiver to reassemble images. Pause frames implement
// IEEE 802.3x flow control: quanta > 0 pauses the peer's transmitter,
// quanta == 0 releases it ("pause off").
#pragma once

#include <cstdint>
#include <utility>

#include "common/payload.hpp"

namespace snacc::eth {

inline constexpr std::uint32_t kMacOverheadBytes = 38;  // preamble+FCS+IFG
inline constexpr std::uint32_t kPauseFrameBytes = 64;

struct Frame {
  Payload payload;
  std::uint64_t stream_id = 0;
  std::uint64_t offset = 0;   // byte offset within the stream object
  bool end_of_object = false;  // last frame of an image/object
  bool is_pause = false;
  std::uint16_t pause_quanta = 0;

  Frame() = default;
  Frame(Payload p, std::uint64_t id, std::uint64_t off, bool eoo)
      : payload(std::move(p)), stream_id(id), offset(off), end_of_object(eoo) {}
  static Frame pause(std::uint16_t quanta) {
    Frame f;
    f.is_pause = true;
    f.pause_quanta = quanta;
    return f;
  }

  // User-provided special members (g++ 12 aggregate-move workaround; see
  // sim/channel.hpp).
  Frame(Frame&& o) noexcept = default;
  Frame& operator=(Frame&& o) noexcept = default;
  Frame(const Frame&) = default;
  Frame& operator=(const Frame&) = default;

  std::uint64_t wire_bytes() const {
    if (is_pause) return kPauseFrameBytes + kMacOverheadBytes;
    return payload.size() + 30 /*hdr*/ + kMacOverheadBytes;
  }
};

}  // namespace snacc::eth
