// Two-port store-and-forward Ethernet switch with 802.3x pause propagation
// (Sec. 4.7: "This protocol also works with intermediary switches, which
// will first pause locally before propagating the pause request further").
//
// Each direction has a bounded buffer: a pause from the egress side stops
// the switch's own transmitter first; once the internal buffer crosses its
// watermark, the switch emits pause toward the original sender.
#pragma once

#include <memory>

#include "eth/mac.hpp"

namespace snacc::eth {

class Switch {
 public:
  /// Wires: a_in/a_out face endpoint A; b_in/b_out face endpoint B.
  Switch(sim::Simulator& sim, const EthProfile& profile, Wire& a_in,
         Wire& a_out, Wire& b_in, Wire& b_out)
      : port_a_(sim, profile, a_out, a_in, "switch-port-a"),
        port_b_(sim, profile, b_out, b_in, "switch-port-b"),
        sim_(sim) {}

  void start() {
    port_a_.start();
    port_b_.start();
    sim_.spawn(forward(port_a_, port_b_));
    sim_.spawn(forward(port_b_, port_a_));
  }

  Mac& port_a() { return port_a_; }
  Mac& port_b() { return port_b_; }

 private:
  sim::Task forward(Mac& from, Mac& to) {
    while (true) {
      std::optional<Frame> frame;
      co_await from.recv_accounted(&frame);
      if (!frame) co_return;
      co_await to.send(std::move(*frame));
    }
  }

  Mac port_a_;
  Mac port_b_;
  sim::Simulator& sim_;
};

}  // namespace snacc::eth
