#include "eth/mac.hpp"

namespace snacc::eth {

sim::Task Wire::transmit(Frame frame) {
  // Serialization occupies the wire; propagation pipelines (the next frame
  // starts clocking out while this one is still in flight). Deliveries stay
  // ordered: the event queue is FIFO at equal delays and channel pushes
  // queue in arrival order.
  co_await server_.acquire(frame.wire_bytes());
  if (mailbox_) {
    // Domain boundary: the mailbox stamps arrival at now + latency, the
    // same schedule deliver() would produce. Push only parks when 64
    // frames are already in flight -- a wire-full condition the same-domain
    // path cannot hit either (its delivery channel has the same bound).
    co_await mailbox_->push(std::move(frame));
  } else {
    sim_.spawn(deliver(std::move(frame)));
  }
}

sim::Task Wire::deliver(Frame frame) {
  co_await sim_.delay(latency_);
  co_await frames_.push(std::move(frame));
}

sim::Task Wire::pump() {
  // Receiver-domain side of a cross-domain wire: surface mailbox arrivals
  // on the ordinary delivered() channel so Mac never knows the difference.
  while (auto f = co_await mailbox_->pop()) {
    co_await frames_.push(std::move(*f));
  }
  frames_.close();
}

Mac::Mac(sim::Simulator& sim, const EthProfile& profile, Wire& out, Wire& in,
         const char* name)
    : sim_(sim),
      profile_(profile),
      out_(out),
      in_(in),
      name_(name),
      tx_fifo_(sim, 32),
      rx_fifo_(sim, sim::Channel<Frame>::kUnbounded),
      tx_allowed_(sim, /*open=*/true) {}

void Mac::start() {
  sim_.spawn(tx_loop());
  sim_.spawn(rx_loop());
}

sim::Task Mac::tx_loop() {
  while (true) {
    auto frame = co_await tx_fifo_.pop();
    if (!frame) co_return;
    // Frames are fully buffered before transmission; the pause state is
    // sampled at frame boundaries (a started frame cannot be paused).
    while (!tx_allowed_.is_open()) co_await tx_allowed_.opened();
    ++frames_sent_;
    co_await out_.transmit(std::move(*frame));
  }
}

sim::Task Mac::rx_loop() {
  while (true) {
    auto frame = co_await in_.delivered().pop();
    if (!frame) co_return;
    if (frame->is_pause) {
      ++pauses_received_;
      if (frame->pause_quanta == 0) {
        tx_allowed_.open();  // XON
      } else {
        tx_allowed_.close();  // XOFF until released
      }
      continue;
    }
    ++frames_received_;
    rx_fifo_bytes_ += frame->payload.size();
    update_pause_state();
    co_await rx_fifo_.push(std::move(*frame));
  }
}

sim::Task Mac::recv_accounted(std::optional<Frame>* out) {
  auto frame = co_await rx_fifo_.pop();
  if (frame) {
    rx_fifo_bytes_ -= frame->payload.size();
    update_pause_state();
  }
  *out = std::move(frame);
}

void Mac::update_pause_state() {
  if (!pause_asserted_ && rx_fifo_bytes_ >= profile_.pause_on_threshold) {
    pause_asserted_ = true;
    ++pauses_sent_;
    sim_.trace(sim::TraceCat::kEth, "pause-on", rx_fifo_bytes_);
    // Pause frames preempt data in the MAC; they ride the reverse wire.
    sim_.spawn(out_.transmit(Frame::pause(0xFFFF)));
  } else if (pause_asserted_ && rx_fifo_bytes_ <= profile_.pause_off_threshold) {
    pause_asserted_ = false;
    ++pauses_sent_;
    sim_.trace(sim::TraceCat::kEth, "pause-off", rx_fifo_bytes_);
    sim_.spawn(out_.transmit(Frame::pause(0)));
  }
}

}  // namespace snacc::eth
