// Image types for the classification case study (Sec. 6).
//
// The paper streams 16384 images totalling 147 GB (~9 MB each -- a raw
// 1920x1560x3 capture) over 100 G Ethernet. Images here are synthetic:
// deterministic pseudo-random pixels when functional checks need real bytes,
// phantom payloads for bandwidth runs. The reference classifier is a pure
// function so FPGA/GPU/host paths can be cross-checked.
#pragma once

#include <cstdint>
#include <utility>

#include "common/payload.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace snacc::apps {

inline constexpr std::uint32_t kScaledDim = 224;  // MobileNet-V1 input
inline constexpr std::uint32_t kChannels = 3;
inline constexpr std::uint32_t kNumClasses = 1000;  // ImageNet-style
inline constexpr std::uint64_t kScaledBytes =
    static_cast<std::uint64_t>(kScaledDim) * kScaledDim * kChannels;

struct ImageStreamConfig {
  std::uint32_t width = 1920;
  std::uint32_t height = 1560;   // 1920*1560*3 = 8.99 MB, the paper's ~9 MB
  std::uint32_t count = 2048;
  bool real_data = false;        // real pixels (slow) vs phantom (bandwidth)
  std::uint64_t seed = 0x1337;

  std::uint64_t bytes_per_image() const {
    return static_cast<std::uint64_t>(width) * height * kChannels;
  }
  std::uint64_t total_bytes() const { return bytes_per_image() * count; }
};

struct Image {
  std::uint64_t id = 0;
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  Payload data;

  Image() = default;
  Image(std::uint64_t i, std::uint32_t w, std::uint32_t h, Payload d)
      : id(i), width(w), height(h), data(std::move(d)) {}
  Image(Image&&) noexcept = default;
  Image& operator=(Image&&) noexcept = default;
  Image(const Image&) = default;
  Image& operator=(const Image&) = default;
};

struct Classification {
  std::uint64_t image_id = 0;
  std::uint32_t class_id = 0;
  std::uint32_t confidence_q8 = 0;  // fixed-point score of the winner
};

/// Deterministic synthetic image: pixel (x, y, c) derives from (seed, id).
Image make_image(const ImageStreamConfig& cfg, std::uint64_t id);

/// Box-filter downscale to 224x224x3. Phantom in -> phantom out.
Payload downscale(const Image& img);

/// Reference classifier on a scaled 224x224x3 payload: a small fixed-point
/// network stand-in (per-class weighted pixel sums, argmax). Deterministic;
/// phantom inputs fall back to a hash of the image id (documented
/// substitution for bandwidth-only runs).
Classification classify_reference(const Payload& scaled, std::uint64_t image_id);

/// Database record layout: one 4 kB header block followed by the image
/// payload, padded to the next block (Sec. 6: "storing the images and their
/// classifications directly in a database").
struct DbRecord {
  static constexpr std::uint64_t kHeaderBytes = 4 * KiB;
  static constexpr std::uint64_t kMagic = 0x534E414343ull;  // "SNACC"

  static std::uint64_t padded_bytes(std::uint64_t image_bytes) {
    return kHeaderBytes + ((image_bytes + kPageSize - 1) & ~(kPageSize - 1));
  }
  static Payload make_header(std::uint64_t image_id, std::uint32_t class_id,
                             std::uint64_t image_bytes);
  static bool parse_header(const Payload& header, std::uint64_t* image_id,
                           std::uint32_t* class_id, std::uint64_t* image_bytes);
};

}  // namespace snacc::apps
