#include "apps/case_study.hpp"

#include <cassert>

#include "eth/frame.hpp"

namespace snacc::apps {

namespace {

/// An image paired with its classification, ready for storage.
struct Record {
  Image image;
  Classification cls;

  Record() = default;
  Record(Image img, Classification c) : image(std::move(img)), cls(c) {}
  Record(Record&&) noexcept = default;
  Record& operator=(Record&&) noexcept = default;
};

// ---------------------------------------------------------------------------
// Shared Ethernet ingest: transmitter FPGA -> 100 G wire -> receiver MAC ->
// reassembled images.

struct EthIngest {
  EthIngest(sim::Simulator& sim, const EthProfile& profile)
      : tx_wire(sim, profile),
        rx_wire(sim, profile),
        tx_mac(sim, profile, tx_wire, rx_wire, "transmitter"),
        rx_mac(sim, profile, rx_wire, tx_wire, "snacc-ingest"),
        images(sim, 2) {}

  void start(sim::Simulator& sim, const ImageStreamConfig& cfg) {
    tx_mac.start();
    rx_mac.start();
    sim.spawn(transmitter(this, cfg));
    sim.spawn(reassembler(this));
  }

  static sim::Task transmitter(EthIngest* self, ImageStreamConfig cfg) {
    EthProfile profile;
    for (std::uint64_t id = 0; id < cfg.count; ++id) {
      Image img = make_image(cfg, id);
      const std::uint64_t total = img.data.size();
      std::uint64_t off = 0;
      while (off < total) {
        const std::uint64_t n = std::min<std::uint64_t>(profile.mtu, total - off);
        const bool eoo = off + n == total;
        co_await self->tx_mac.send(
            eth::Frame(img.data.slice(off, n), id, off, eoo));
        off += n;
      }
    }
    self->tx_mac.close_tx();
  }

  static sim::Task reassembler(EthIngest* self) {
    std::vector<Payload> parts;
    std::uint64_t current_id = 0;
    while (true) {
      std::optional<eth::Frame> frame;
      co_await self->rx_mac.recv_accounted(&frame);
      if (!frame) {
        self->images.close();
        co_return;
      }
      if (parts.empty()) current_id = frame->stream_id;
      parts.push_back(std::move(frame->payload));
      if (frame->end_of_object) {
        Payload data = Payload::gather(parts);
        parts.clear();
        co_await self->images.push(Image(current_id, 0, 0, std::move(data)));
      }
    }
  }

  eth::Wire tx_wire;
  eth::Wire rx_wire;
  eth::Mac tx_mac;
  eth::Mac rx_mac;
  sim::Channel<Image> images;
};

// ---------------------------------------------------------------------------
// FINN classifier PE model: scale + classify at the PE's initiation interval.

struct FinnPe {
  FinnPe(sim::Simulator& sim, const FinnProfile& profile,
         const ImageStreamConfig& cfg)
      : cfg_(cfg),
        ii_(TimePs{static_cast<std::uint64_t>(1e12 / profile.inference_fps)}),
        latency_(profile.pipeline_latency),
        records(sim, 2) {}

  void start(sim::Simulator& sim, sim::Channel<Image>* in) {
    sim.spawn(run(this, &sim, in));
  }

  static sim::Task run(FinnPe* self, sim::Simulator* sim,
                       sim::Channel<Image>* in) {
    while (true) {
      auto img = co_await in->pop();
      if (!img) {
        self->records.close();
        co_return;
      }
      img->width = self->cfg_.width;
      img->height = self->cfg_.height;
      // The streaming scaler and the FINN PE are pipelined; their combined
      // initiation interval is the PE's (the scaler runs at line rate).
      co_await sim->delay(self->ii_);
      Payload scaled = downscale(*img);
      Classification cls = classify_reference(scaled, img->id);
      // Pipeline latency applies to the classification, not the image
      // bypass path; it is far below the per-image period and modeled as
      // part of the record hand-off.
      co_await self->records.push(Record(std::move(*img), cls));
    }
  }

  ImageStreamConfig cfg_;
  TimePs ii_;
  TimePs latency_;
  sim::Channel<Record> records;
};

void collect_pcie(CaseStudyResult* result, host::System& sys,
                  std::initializer_list<pcie::PortId> ports) {
  result->pcie_total_bytes = sys.fabric().total_bytes();
  for (pcie::PortId a : ports) {
    for (pcie::PortId b : ports) {
      if (a == b) continue;
      const auto& stats = sys.fabric().path(a, b);
      if (stats.bytes() == 0) continue;
      result->pcie_paths.push_back(PcieTraffic{
          sys.fabric().port_name(a) + " -> " + sys.fabric().port_name(b),
          stats.bytes()});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SNAcc pipeline (Fig. 5)

CaseStudyResult run_snacc_case_study(core::Variant variant,
                                     const ImageStreamConfig& cfg,
                                     const CalibrationProfile& profile) {
  CaseStudyResult result;
  host::SystemConfig sys_cfg;
  sys_cfg.host_memory_bytes = 2 * GiB;
  sys_cfg.profile = profile;
  host::System sys(sys_cfg);
  sys.ssd().nand().force_mode(true);

  host::SnaccDeviceConfig dev_cfg;
  dev_cfg.streamer.variant = variant;
  host::SnaccDevice dev(sys, dev_cfg);
  bool booted = false;
  auto boot = [](host::SnaccDevice* d, bool* flag) -> sim::Task {
    co_await d->init();
    *flag = true;
  };
  sys.sim().spawn(boot(&dev, &booted));
  sys.sim().run_until(seconds(1));
  if (!booted) return result;

  const auto& prof = sys.config().profile;
  EthIngest ingest(sys.sim(), prof.eth);
  FinnPe finn(sys.sim(), prof.finn, cfg);

  core::PeClient pe(dev.streamer());
  bool done = false;
  TimePs t0;
  TimePs t1;

  // Database controller: header + image per record, sequential on-device
  // layout, write responses reaped concurrently.
  struct Db {
    static sim::Task writer(core::PeClient* pe, sim::Channel<Record>* in,
                            CaseStudyResult* res, sim::WaitGroup* pending,
                            std::uint64_t expected_images, sim::Simulator* sim) {
      Bytes cursor;
      // The Ethernet stream has no end-of-stream marker (a real deployment
      // runs forever); the run terminates after the configured image count.
      while (res->images < expected_images) {
        auto rec = co_await in->pop();
        if (!rec) co_return;
        Payload header = DbRecord::make_header(rec->cls.image_id,
                                               rec->cls.class_id,
                                               rec->image.data.size());
        const Bytes record_span{DbRecord::padded_bytes(rec->image.data.size())};
        pending->add(2);
        co_await pe->start_write(cursor, std::move(header));
        co_await pe->start_write(cursor + Bytes{DbRecord::kHeaderBytes},
                                 std::move(rec->image.data));
        // snacc-lint: allow(value-escape): throughput accumulator is raw bytes
        res->bytes_stored += record_span.value();
        res->bytes_ingested += rec->image.data.size();
        ++res->images;
        cursor += record_span;
        (void)sim;
      }
    }
    static sim::Task reaper(core::PeClient* pe, sim::WaitGroup* pending,
                            std::uint64_t expected) {
      for (std::uint64_t i = 0; i < expected; ++i) {
        co_await pe->wait_write_response();
        pending->done();
      }
    }
  };

  sim::WaitGroup pending(sys.sim());
  auto orchestrate = [](host::System* sys, EthIngest* ingest, FinnPe* finn,
                        core::PeClient* pe, const ImageStreamConfig* cfg,
                        CaseStudyResult* res, sim::WaitGroup* pending,
                        TimePs* t0, TimePs* t1, bool* done) -> sim::Task {
    *t0 = sys->sim().now();
    ingest->start(sys->sim(), *cfg);
    finn->start(sys->sim(), &ingest->images);
    sys->sim().spawn(Db::reaper(pe, pending, 2ull * cfg->count));
    co_await Db::writer(pe, &finn->records, res, pending, cfg->count,
                        &sys->sim());
    co_await pending->wait();
    *t1 = sys->sim().now();
    *done = true;
  };
  sys.sim().spawn(orchestrate(&sys, &ingest, &finn, &pe, &cfg, &result,
                              &pending, &t0, &t1, &done));
  sys.sim().run_until(sys.sim().now() + seconds(300));
  if (!done) return result;

  result.elapsed = t1 - t0;
  result.cpu_utilization = 0.0;  // autonomous after init (Sec. 6.3)
  result.pause_frames = ingest.rx_mac.pauses_sent();
  result.ok = true;
  if (cfg.real_data) {
    result.db_verified =
        verify_database(sys.ssd().media(), cfg, cfg.count, &result.db_error);
  }
  collect_pcie(&result, sys,
               {sys.root_port(), sys.ssd().port(), dev.fpga_port()});
  return result;
}

// ---------------------------------------------------------------------------
// SPDK reference: FPGA classifies, host stores.

CaseStudyResult run_spdk_case_study(const ImageStreamConfig& cfg) {
  CaseStudyResult result;
  host::SystemConfig sys_cfg;
  sys_cfg.host_memory_bytes = 2 * GiB;
  host::System sys(sys_cfg);
  sys.ssd().nand().force_mode(true);

  // The FPGA acts as NIC + classifier; it DMAs records to host memory.
  const pcie::PortId acc_port =
      sys.fabric().add_port("fpga-acc", sys.config().profile.pcie.host_fpga_gb_s);
  // The kernel driver pins the staging buffers and grants the accelerator
  // DMA access to host memory.
  sys.fabric().iommu().grant(
      {acc_port, host::addr_map::kHostDramBase, Bytes{sys_cfg.host_memory_bytes},
       true, true});

  spdk::Driver driver(sys.sim(), sys.fabric(), sys.host_mem(),
                      host::addr_map::kHostDramBase, sys.ssd(),
                      sys.config().profile.host);
  bool booted = false;
  auto boot = [](spdk::Driver* d, bool* flag) -> sim::Task {
    co_await d->init();
    *flag = true;
  };
  sys.sim().spawn(boot(&driver, &booted));
  sys.sim().run_until(seconds(1));
  if (!booted) return result;

  const auto& profile = sys.config().profile;
  EthIngest ingest(sys.sim(), profile.eth);
  FinnPe finn(sys.sim(), profile.finn, cfg);

  // Staging buffers: batch-32 double buffering in pinned host memory.
  const std::uint64_t staging_base = 768 * MiB;
  const std::uint64_t slot_bytes = DbRecord::padded_bytes(cfg.bytes_per_image());
  constexpr std::uint32_t kBatch = 32;

  bool done = false;
  TimePs t0;
  TimePs t1;

  struct HostSide {
    static sim::Task run(host::System* sys, spdk::Driver* driver,
                         sim::Channel<Record>* in, pcie::PortId acc_port,
                         std::uint64_t staging_base, std::uint64_t slot_bytes,
                         const ImageStreamConfig* cfg, CaseStudyResult* res,
                         TimePs* t1, bool* done) {
      sim::Semaphore write_slots(sys->sim(), 6);
      sim::WaitGroup writes(sys->sim());
      Lba cursor_lba;
      std::uint64_t slot = 0;
      while (res->images < cfg->count) {
        auto rec = co_await in->pop();
        if (!rec) break;
        // DMA the image into the staging slot (double-buffered batches):
        // this is the FPGA->host hop SNAcc avoids.
        const pcie::Addr dst =
            host::addr_map::kHostDramBase +
            Bytes{staging_base + (slot % (2 * kBatch)) * slot_bytes};
        ++slot;
        auto dma = sys->fabric().write(acc_port, dst, rec->image.data);
        co_await dma;
        driver->cpu().charge(us(2));  // per-image transfer management

        const std::uint64_t record_span =
            DbRecord::padded_bytes(rec->image.data.size());
        Payload header = DbRecord::make_header(
            rec->cls.image_id, rec->cls.class_id, rec->image.data.size());
        Payload record = Payload::concat(header, rec->image.data);
        co_await write_slots.acquire();
        writes.add(1);
        sys->sim().spawn(write_record(driver, cursor_lba, std::move(record),
                                      &write_slots, &writes));
        res->bytes_stored += record_span;
        res->bytes_ingested += rec->image.data.size();
        ++res->images;
        cursor_lba = cursor_lba + record_span / nvme::kLbaSize;
      }
      co_await writes.wait();
      (void)cfg;
      *t1 = sys->sim().now();
      *done = true;
    }

    static sim::Task write_record(spdk::Driver* driver, Lba lba,
                                  Payload record, sim::Semaphore* slots,
                                  sim::WaitGroup* writes) {
      co_await driver->write(lba, std::move(record));
      slots->release();
      writes->done();
    }
  };

  auto orchestrate = [](host::System* sys, EthIngest* ingest, FinnPe* finn,
                        const ImageStreamConfig* cfg, TimePs* t0) -> sim::Task {
    *t0 = sys->sim().now();
    ingest->start(sys->sim(), *cfg);
    finn->start(sys->sim(), &ingest->images);
    co_return;
  };
  sys.sim().spawn(orchestrate(&sys, &ingest, &finn, &cfg, &t0));
  sys.sim().spawn(HostSide::run(&sys, &driver, &finn.records, acc_port,
                                staging_base, slot_bytes, &cfg, &result, &t1,
                                &done));
  sys.sim().run_until(sys.sim().now() + seconds(300));
  if (!done) return result;

  result.elapsed = t1 - t0;
  result.cpu_utilization = driver.cpu().utilization(result.elapsed);
  result.pause_frames = ingest.rx_mac.pauses_sent();
  result.ok = true;
  if (cfg.real_data) {
    result.db_verified =
        verify_database(sys.ssd().media(), cfg, cfg.count, &result.db_error);
  }
  collect_pcie(&result, sys, {sys.root_port(), sys.ssd().port(), acc_port});
  return result;
}

// ---------------------------------------------------------------------------
// GPU reference: A100 classifies thumbnails, host stores.

CaseStudyResult run_gpu_case_study(const ImageStreamConfig& cfg) {
  CaseStudyResult result;
  host::SystemConfig sys_cfg;
  sys_cfg.host_memory_bytes = 2 * GiB;
  host::System sys(sys_cfg);
  sys.ssd().nand().force_mode(true);

  const auto& profile = sys.config().profile;
  const pcie::PortId acc_port =
      sys.fabric().add_port("fpga-nic", profile.pcie.host_fpga_gb_s);
  const pcie::PortId gpu_port =
      sys.fabric().add_port("gpu", profile.gpu.pcie_gb_s);
  // GPU device memory window.
  auto gpu_mem = std::make_unique<pcie::HostMemory>(sys.sim(), 1 * GiB,
                                                    /*dram_gb_s=*/600.0,
                                                    ns(300));
  const pcie::Addr gpu_base{0x0060'0000'0000ull};
  sys.fabric().map(gpu_base, Bytes{1 * GiB}, gpu_mem.get(), gpu_port,
                   pcie::MemKind::kDevice);
  sys.fabric().iommu().grant(
      {gpu_port, pcie::Addr{}, Bytes{~std::uint64_t{0}}, true, true});
  sys.fabric().iommu().grant(
      {acc_port, pcie::Addr{}, Bytes{~std::uint64_t{0}}, true, true});

  spdk::Driver driver(sys.sim(), sys.fabric(), sys.host_mem(),
                      host::addr_map::kHostDramBase, sys.ssd(),
                      profile.host);
  bool booted = false;
  auto boot = [](spdk::Driver* d, bool* flag) -> sim::Task {
    co_await d->init();
    *flag = true;
  };
  sys.sim().spawn(boot(&driver, &booted));
  sys.sim().run_until(seconds(1));
  if (!booted) return result;

  EthIngest ingest(sys.sim(), profile.eth);

  // The FPGA is only a NIC + scaler here: images and thumbnails go to host.
  struct NicStage {
    static sim::Task run(host::System* sys, sim::Channel<Image>* in,
                         sim::Channel<Record>* out, pcie::PortId acc_port,
                         std::uint64_t staging_base, std::uint64_t slot_bytes,
                         const ImageStreamConfig* cfg) {
      std::uint64_t slot = 0;
      while (slot < cfg->count) {
        auto img = co_await in->pop();
        if (!img) break;
        img->width = cfg->width;
        img->height = cfg->height;
        const pcie::Addr dst = host::addr_map::kHostDramBase +
                               Bytes{staging_base + (slot % 64) * slot_bytes};
        ++slot;
        // Full image + thumbnail to host DRAM.
        auto dma = sys->fabric().write(acc_port, dst, img->data);
        co_await dma;
        Payload thumb = downscale(*img);
        auto dma2 = sys->fabric().write(
            acc_port, dst + Bytes{slot_bytes - kScaledBytes}, std::move(thumb));
        co_await dma2;
        co_await out->push(Record(std::move(*img), Classification{}));
      }
      out->close();
    }
  };

  // Host side: batches of 32 thumbnails to the GPU, classifications back,
  // then one extra host copy per image into the SPDK buffers (no GPUDirect)
  // before writing. The single io thread serializes the copy.
  struct HostSide {
    static sim::Task run(host::System* sys, spdk::Driver* driver,
                         sim::Channel<Record>* in, pcie::PortId gpu_port,
                         pcie::Addr gpu_base, const GpuProfile* gpu,
                         double memcpy_gb_s, CaseStudyResult* res, TimePs* t1,
                         bool* done) {
      sim::RateServer memcpy_server(sys->sim(), memcpy_gb_s);
      sim::Semaphore write_slots(sys->sim(), 6);
      sim::WaitGroup writes(sys->sim());
      Lba cursor_lba;
      std::vector<Record> batch;
      bool draining = true;
      while (draining) {
        batch.clear();
        while (batch.size() < gpu->batch_size) {
          auto rec = co_await in->pop();
          if (!rec) {
            draining = false;
            break;
          }
          batch.push_back(std::move(*rec));
        }
        if (batch.empty()) break;

        // Thumbnails to GPU memory, batched.
        const std::uint64_t thumb_bytes = batch.size() * kScaledBytes;
        auto h2d = sys->fabric().write(sys->root_port(), gpu_base,
                                       Payload::phantom(thumb_bytes));
        co_await h2d;
        driver->cpu().charge(gpu->batch_dispatch_overhead);
        co_await sys->sim().delay(
            gpu->batch_dispatch_overhead +
            TimePs{static_cast<std::uint64_t>(batch.size() * 1e12 /
                                              gpu->inference_fps)});
        // Classifications back to host (tiny DMA from the GPU).
        auto d2h = sys->fabric().write(
            gpu_port, host::addr_map::kHostDramBase + Bytes{700 * MiB},
            Payload::phantom(batch.size() * 16));
        co_await d2h;

        for (Record& rec : batch) {
          rec.cls = classify_reference(downscale(rec.image), rec.image.id);
          // Extra host copy into the pinned SPDK buffers (Sec. 6.1:
          // GPUDirect unavailable) -- serialized on the io thread.
          co_await memcpy_server.acquire(rec.image.data.size());
          driver->cpu().charge(
              transfer_time(rec.image.data.size(), memcpy_gb_s));
          const std::uint64_t record_span =
              DbRecord::padded_bytes(rec.image.data.size());
          Payload header = DbRecord::make_header(
              rec.cls.image_id, rec.cls.class_id, rec.image.data.size());
          Payload record = Payload::concat(header, rec.image.data);
          co_await write_slots.acquire();
          writes.add(1);
          sys->sim().spawn(write_record(driver, cursor_lba, std::move(record),
                                        &write_slots, &writes));
          res->bytes_stored += record_span;
          res->bytes_ingested += rec.image.data.size();
          ++res->images;
          cursor_lba = cursor_lba + record_span / nvme::kLbaSize;
        }
      }
      co_await writes.wait();
      *t1 = sys->sim().now();
      *done = true;
    }

    static sim::Task write_record(spdk::Driver* driver, Lba lba,
                                  Payload record, sim::Semaphore* slots,
                                  sim::WaitGroup* writes) {
      co_await driver->write(lba, std::move(record));
      slots->release();
      writes->done();
    }
  };

  const std::uint64_t staging_base = 768 * MiB;
  const std::uint64_t slot_bytes =
      DbRecord::padded_bytes(cfg.bytes_per_image()) + kScaledBytes + kPageSize;
  // Two batches of buffering so NIC DMA overlaps the host copy phase (the
  // staging region is double-buffered, Sec. 6.1).
  sim::Channel<Record> nic_out(sys.sim(), 64);

  bool done = false;
  TimePs t0;
  TimePs t1;
  auto orchestrate = [](host::System* sys, EthIngest* ingest,
                        const ImageStreamConfig* cfg, TimePs* t0) -> sim::Task {
    *t0 = sys->sim().now();
    ingest->start(sys->sim(), *cfg);
    co_return;
  };
  sys.sim().spawn(orchestrate(&sys, &ingest, &cfg, &t0));
  sys.sim().spawn(NicStage::run(&sys, &ingest.images, &nic_out, acc_port,
                                staging_base, slot_bytes, &cfg));
  // Calibrated single-thread copy bandwidth; see GpuProfile docs.
  sys.sim().spawn(HostSide::run(&sys, &driver, &nic_out, gpu_port, gpu_base,
                                &profile.gpu, /*memcpy_gb_s=*/6.9, &result,
                                &t1, &done));
  sys.sim().run_until(sys.sim().now() + seconds(300));
  if (!done) return result;

  result.elapsed = t1 - t0;
  result.cpu_utilization = driver.cpu().utilization(result.elapsed);
  result.pause_frames = ingest.rx_mac.pauses_sent();
  result.ok = true;
  if (cfg.real_data) {
    result.db_verified =
        verify_database(sys.ssd().media(), cfg, cfg.count, &result.db_error);
  }
  collect_pcie(&result, sys,
               {sys.root_port(), sys.ssd().port(), acc_port, gpu_port});
  return result;
}

// ---------------------------------------------------------------------------
// Database verification

bool verify_database(mem::SparseMemory& media, const ImageStreamConfig& cfg,
                     std::uint32_t records_to_check, std::string* error) {
  std::uint64_t cursor = 0;
  for (std::uint32_t i = 0; i < records_to_check; ++i) {
    Payload header = media.read(cursor, DbRecord::kHeaderBytes);
    std::uint64_t image_id = 0;
    std::uint32_t class_id = 0;
    std::uint64_t image_bytes = 0;
    if (!DbRecord::parse_header(header, &image_id, &class_id, &image_bytes)) {
      if (error) *error = "record " + std::to_string(i) + ": bad header";
      return false;
    }
    if (image_id != i) {
      if (error) *error = "record " + std::to_string(i) + ": wrong id";
      return false;
    }
    if (image_bytes != cfg.bytes_per_image()) {
      if (error) *error = "record " + std::to_string(i) + ": wrong size";
      return false;
    }
    Image expect = make_image(cfg, image_id);
    const Classification ref =
        classify_reference(downscale(expect), image_id);
    if (class_id != ref.class_id) {
      if (error) *error = "record " + std::to_string(i) + ": wrong class";
      return false;
    }
    if (cfg.real_data) {
      Payload stored = media.read(cursor + DbRecord::kHeaderBytes, image_bytes);
      if (!stored.has_data() || !stored.content_equals(expect.data)) {
        if (error) *error = "record " + std::to_string(i) + ": image corrupt";
        return false;
      }
    }
    cursor += DbRecord::padded_bytes(image_bytes);
  }
  return true;
}

}  // namespace snacc::apps
