// A log-structured key-value store on top of the SNAcc streamer -- the
// "network accessible database" workload the paper's introduction motivates.
//
// Layout: an append-only log of records on the NVMe device. Each record is a
// 4 kB header block (magic, sequence, key length, value length, key bytes)
// followed by the value, padded to the block size. An in-memory index maps
// keys to log offsets; `recover()` rebuilds it by scanning headers, so the
// store survives a restart of the FPGA-side state.
//
// All storage I/O goes through the public PE stream interface: puts are
// single streaming writes (the streamer splits at 1 MB internally), gets are
// two-phase (header probe when the value length is unknown, then the exact
// byte range -- exercising the sub-block read trimming).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "snacc/pe_client.hpp"

namespace snacc::apps {

class KvStore {
 public:
  static constexpr std::uint64_t kHeaderBytes = 4 * KiB;
  static constexpr std::uint64_t kMagic = 0x4B56'4C4F'47'31ull;  // "KVLOG1"
  static constexpr std::uint64_t kMaxKeyBytes = 3 * KiB;

  /// `log_base`/`log_capacity`: device byte range owned by this store.
  KvStore(core::NvmeStreamer& streamer, Bytes log_base, Bytes log_capacity);

  /// Appends key/value to the log and indexes it. Fails (returns false via
  /// *ok) when the key is oversized or the log is full.
  sim::Task put(std::string key, Payload value, bool* ok = nullptr);

  /// Looks the key up; *found says whether it exists, *out receives the
  /// value (latest version wins).
  sim::Task get(const std::string& key, Payload* out, bool* found);

  /// Rebuilds the index by scanning the log from `log_base` (e.g. after the
  /// in-memory state was lost). Returns the number of records recovered.
  sim::Task recover(std::uint64_t* records_out = nullptr);

  /// Log compaction: copies only the *live* version of every key into a
  /// fresh log at `scratch_base` (which must not overlap the current log),
  /// then switches over to it. Overwritten record versions are reclaimed.
  sim::Task compact(Bytes scratch_base, Bytes scratch_capacity,
                    Bytes* reclaimed_bytes = nullptr);

  std::uint64_t entries() const { return index_.size(); }
  Bytes log_bytes_used() const { return head_ - base_; }
  std::uint64_t puts() const { return puts_; }
  std::uint64_t gets() const { return gets_; }

  static Bytes record_span(Bytes value_bytes) {
    return Bytes{kHeaderBytes} + page_align_up(value_bytes);
  }

 private:
  struct Entry {
    Bytes record_addr;
    Bytes value_bytes;
  };

  Payload make_header(const std::string& key, Bytes value_bytes,
                      std::uint64_t sequence) const;
  static bool parse_header(const Payload& header, std::string* key,
                           std::uint64_t* value_bytes, std::uint64_t* sequence);

  core::PeClient pe_;
  Bytes base_;
  Bytes capacity_;
  Bytes head_;
  std::uint64_t sequence_ = 0;
  // Keyed lookups on the hot path; compact() sorts the keys before walking
  // so the rewritten log layout is deterministic.
  std::unordered_map<std::string, Entry> index_;
  std::uint64_t puts_ = 0;
  std::uint64_t gets_ = 0;
};

}  // namespace snacc::apps
