// A log-structured key-value store on top of the SNAcc streamer -- the
// "network accessible database" workload the paper's introduction motivates,
// hardened into the durability tier's write-ahead log (docs/DURABILITY.md).
//
// Region layout: the store owns [region_base, region_base + region_capacity)
// device bytes. The first two blocks are a dual-slot *superblock* (ping-pong
// by generation parity) naming the active log extent; the default log --
// before any compaction ever committed a superblock -- starts right after
// it. Each log record is a 4 kB header block (magic, sequence, generation,
// key/value lengths, value CRC-32C, header CRC-32C, key bytes) followed by
// the value, padded to the block size.
//
// Durability contract: put() appends and indexes but the record may still
// sit in the device's volatile write cache; commit() issues a flush barrier
// (group commit -- one barrier covers every put since the last). recover()
// rebuilds the index by scanning the active generation's log, verifying
// header and value checksums, and *truncating* at the first torn or corrupt
// record, so a power loss mid-put never resurrects garbage. compact() copies
// live records into a fresh generation and switches over with a journaled
// superblock write: recovery sees the old log or the new one, never a mix.
//
// All storage I/O goes through a StorageClient -- a PeClient over one
// streamer, or a ReplicatedClient mirroring N devices.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "snacc/pe_client.hpp"
#include "snacc/storage_client.hpp"

namespace snacc::apps {

/// put() outcome. Everything except kOk leaves the store unchanged, except
/// kIoError, which wedges the store (an unreadable hole in the log would
/// silently truncate every later record at recovery).
enum class PutStatus : std::uint8_t {
  kOk = 0,
  kOversizedKey,
  kLogFull,
  kIoError,
};

const char* put_status_name(PutStatus s);

class KvStore {
 public:
  static constexpr std::uint64_t kHeaderBytes = 4 * KiB;
  static constexpr std::uint64_t kMagic = 0x4B56'4C4F'47'32ull;   // "KVLOG2"
  static constexpr std::uint64_t kSuperMagic = 0x4B56'5355'5032ull;  // "KVSUP2"
  /// Two superblock slots ahead of the default log area.
  static constexpr std::uint64_t kSuperBytes = 2 * 4 * KiB;
  static constexpr std::uint64_t kMaxKeyBytes = 3 * KiB;

  /// `region_base`/`region_capacity`: device byte range owned by this store
  /// (superblock slots + log). Storage I/O goes through `client`.
  KvStore(core::StorageClient& client, Bytes region_base,
          Bytes region_capacity);
  /// Convenience: single-device store owning its PeClient.
  KvStore(core::NvmeStreamer& streamer, Bytes region_base,
          Bytes region_capacity);

  /// Appends key/value to the log and indexes it. The record is volatile
  /// until the next successful commit().
  sim::Task put(std::string key, Payload value, PutStatus* status = nullptr);

  /// Group commit: flush barrier covering every put acknowledged so far.
  sim::Task commit(bool* ok = nullptr);

  /// Looks the key up; *found says whether it exists, *out receives the
  /// value (latest version wins).
  sim::Task get(const std::string& key, Payload* out, bool* found);

  /// Rebuilds the index by reading the superblock and scanning the active
  /// log (e.g. after power loss): checksum-verifies every record and
  /// truncates the log at the first invalid one. Returns the number of
  /// records recovered.
  sim::Task recover(std::uint64_t* records_out = nullptr);

  /// Log compaction: copies only the *live* version of every key into a
  /// fresh-generation log at `scratch_base` (must not overlap the current
  /// log), flushes it, journals the switch-over through the superblock,
  /// flushes again, and only then adopts the new log. `*ok` reports whether
  /// the switch-over committed; on failure the old log stays authoritative.
  sim::Task compact(Bytes scratch_base, Bytes scratch_capacity,
                    Bytes* reclaimed_bytes = nullptr, bool* ok = nullptr);

  std::uint64_t entries() const { return index_.size(); }
  Bytes log_bytes_used() const { return head_ - base_; }
  std::uint64_t generation() const { return generation_; }
  std::uint64_t puts() const { return puts_; }
  std::uint64_t gets() const { return gets_; }
  std::uint64_t commits() const { return commits_; }
  /// Records dropped by recover() truncation over the store's lifetime.
  std::uint64_t truncated_records() const { return truncated_records_; }

  static Bytes record_span(Bytes value_bytes) {
    return Bytes{kHeaderBytes} + page_align_up(value_bytes);
  }

 private:
  struct Entry {
    Bytes record_addr;
    Bytes value_bytes;
  };

  Payload make_header(const std::string& key, Bytes value_bytes,
                      std::uint64_t sequence, std::uint64_t generation,
                      const Payload& value) const;
  struct ParsedHeader {
    std::string key;
    std::uint64_t value_bytes = 0;
    std::uint64_t sequence = 0;
    std::uint64_t generation = 0;
    std::uint32_t value_crc = 0;
    bool value_has_crc = false;
  };
  static bool parse_header(const Payload& header, ParsedHeader* out);

  Payload make_superblock(std::uint64_t generation, Bytes log_base,
                          Bytes log_capacity) const;
  static bool parse_superblock(const Payload& block, std::uint64_t* generation,
                               Bytes* log_base, Bytes* log_capacity);
  Bytes super_slot_addr(std::uint64_t generation) const {
    return region_base_ + Bytes{(generation % 2) * (4 * KiB)};
  }

  std::unique_ptr<core::PeClient> owned_pe_;  // convenience-ctor ownership
  core::StorageClient* client_;
  Bytes region_base_;
  Bytes region_capacity_;
  Bytes base_;      // active log base
  Bytes capacity_;  // active log capacity
  Bytes head_;
  std::uint64_t generation_ = 0;
  std::uint64_t sequence_ = 0;
  bool wedged_ = false;  // a put hit an I/O error; the log has a hole
  // Keyed lookups on the hot path; compact() sorts the keys before walking
  // so the rewritten log layout is deterministic.
  std::unordered_map<std::string, Entry> index_;
  std::uint64_t puts_ = 0;
  std::uint64_t gets_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t truncated_records_ = 0;
};

}  // namespace snacc::apps
