#include "apps/image.hpp"

#include <cstring>

namespace snacc::apps {

Image make_image(const ImageStreamConfig& cfg, std::uint64_t id) {
  const std::uint64_t bytes = cfg.bytes_per_image();
  if (!cfg.real_data) {
    return Image(id, cfg.width, cfg.height, Payload::phantom(bytes));
  }
  // Deterministic pixels: cheap block-structured noise so the downscaler and
  // classifier have real content to chew on.
  std::vector<std::byte> pix(bytes);
  std::uint64_t state = cfg.seed ^ (id * 0x9E3779B97F4A7C15ull);
  Xoshiro256 rng(splitmix64(state));
  for (std::size_t i = 0; i < pix.size(); i += 8) {
    const std::uint64_t v = rng.next();
    std::memcpy(pix.data() + i, &v, std::min<std::size_t>(8, pix.size() - i));
  }
  return Image(id, cfg.width, cfg.height, Payload::bytes(std::move(pix)));
}

Payload downscale(const Image& img) {
  if (!img.data.has_data()) return Payload::phantom(kScaledBytes);
  auto src = img.data.view();
  std::vector<std::byte> dst(kScaledBytes);
  // Nearest-region box average: each output pixel averages its source box.
  const std::uint32_t bx = img.width / kScaledDim;
  const std::uint32_t by = img.height / kScaledDim;
  for (std::uint32_t y = 0; y < kScaledDim; ++y) {
    for (std::uint32_t x = 0; x < kScaledDim; ++x) {
      for (std::uint32_t c = 0; c < kChannels; ++c) {
        std::uint64_t sum = 0;
        std::uint32_t n = 0;
        for (std::uint32_t sy = y * by; sy < y * by + by; sy += (by + 3) / 4) {
          for (std::uint32_t sx = x * bx; sx < x * bx + bx; sx += (bx + 3) / 4) {
            const std::size_t idx =
                (static_cast<std::size_t>(sy) * img.width + sx) * kChannels + c;
            if (idx < src.size()) {
              sum += static_cast<std::uint8_t>(src[idx]);
              ++n;
            }
          }
        }
        dst[(static_cast<std::size_t>(y) * kScaledDim + x) * kChannels + c] =
            static_cast<std::byte>(n ? sum / n : 0);
      }
    }
  }
  return Payload::bytes(std::move(dst));
}

Classification classify_reference(const Payload& scaled,
                                  std::uint64_t image_id) {
  Classification result;
  result.image_id = image_id;
  if (!scaled.has_data()) {
    // Bandwidth runs carry no pixels; derive a stable pseudo-class.
    std::uint64_t s = image_id;
    result.class_id = static_cast<std::uint32_t>(splitmix64(s) % kNumClasses);
    result.confidence_q8 = 200;
    return result;
  }
  auto pix = scaled.view();
  // Fixed-point stand-in network: 16 pooled regions feed per-class weighted
  // sums with a deterministic weight table; argmax wins. Cheap but real
  // arithmetic with real data dependence (moving one pixel can flip the
  // class), which is what the cross-path equivalence tests need.
  std::uint32_t pooled[16] = {};
  const std::size_t region = pix.size() / 16;
  for (std::size_t r = 0; r < 16; ++r) {
    std::uint64_t sum = 0;
    for (std::size_t i = r * region; i < (r + 1) * region; i += 97) {
      sum += static_cast<std::uint8_t>(pix[i]);
    }
    pooled[r] = static_cast<std::uint32_t>(sum & 0xFFFFFF);
  }
  std::uint64_t best_score = 0;
  std::uint32_t best_class = 0;
  for (std::uint32_t cls = 0; cls < 64; ++cls) {  // 64 head classes modeled
    std::uint64_t w = 0x9E37 + cls * 0x85EBCA6Bull;
    std::uint64_t score = 0;
    for (std::size_t r = 0; r < 16; ++r) {
      w = w * 6364136223846793005ull + 1442695040888963407ull;
      score += pooled[r] * ((w >> 33) & 0xFF);
    }
    if (score > best_score) {
      best_score = score;
      best_class = cls;
    }
  }
  result.class_id = best_class;
  result.confidence_q8 =
      static_cast<std::uint32_t>(best_score % 64 + 192);  // synthetic score
  return result;
}

Payload DbRecord::make_header(std::uint64_t image_id, std::uint32_t class_id,
                              std::uint64_t image_bytes) {
  std::vector<std::byte> raw(kHeaderBytes, std::byte{0});
  std::memcpy(raw.data() + 0, &kMagic, 8);
  std::memcpy(raw.data() + 8, &image_id, 8);
  std::memcpy(raw.data() + 16, &class_id, 4);
  std::memcpy(raw.data() + 24, &image_bytes, 8);
  return Payload::bytes(std::move(raw));
}

bool DbRecord::parse_header(const Payload& header, std::uint64_t* image_id,
                            std::uint32_t* class_id,
                            std::uint64_t* image_bytes) {
  if (!header.has_data() || header.size() < 32) return false;
  auto v = header.view();
  std::uint64_t magic = 0;
  std::memcpy(&magic, v.data(), 8);
  if (magic != kMagic) return false;
  std::memcpy(image_id, v.data() + 8, 8);
  std::memcpy(class_id, v.data() + 16, 4);
  std::memcpy(image_bytes, v.data() + 24, 8);
  return true;
}

}  // namespace snacc::apps
